(** Regular (buffer-to-buffer) MPI operations on managed objects.

    These are the paper's reshaped MPI bindings (Section 4.2.1): the unit
    of transfer is a single object, so there is no [count] and no
    [MPI_Datatype]; only objects {e without reference fields} (or arrays
    of simple types) may be transferred, which protects object-model
    integrity; array transfers accept offset/count element ranges; and a
    message can never write past the end of the receive object because the
    payload region bounds the sink.

    Transfers are zero-copy: the device reads and writes the object's heap
    payload directly, at the address captured when the operation starts —
    the pinning policy (see {!Pinning}) is what makes that safe. *)

module Comm = Mpi_core.Comm

exception Transport_error of string

val validate : Vm.Gc.t -> Vm.Object_model.obj -> unit
(** Raises {!Transport_error} if the object contains reference fields (or
    is a reference array) — such data must travel through the OO
    operations instead. *)

(** {1 Blocking} *)

val send :
  World.rank_ctx -> comm:Comm.t -> dst:int -> tag:int ->
  Vm.Object_model.obj -> unit

val ssend :
  World.rank_ctx -> comm:Comm.t -> dst:int -> tag:int ->
  Vm.Object_model.obj -> unit

val recv :
  World.rank_ctx -> comm:Comm.t -> src:int -> tag:int ->
  Vm.Object_model.obj -> Mpi_core.Status.t

val send_range :
  World.rank_ctx -> comm:Comm.t -> dst:int -> tag:int ->
  Vm.Object_model.obj -> offset:int -> count:int -> unit
(** Array element subrange (the overloaded array operations). *)

val recv_range :
  World.rank_ctx -> comm:Comm.t -> src:int -> tag:int ->
  Vm.Object_model.obj -> offset:int -> count:int -> Mpi_core.Status.t

(** {1 Non-blocking} *)

val isend :
  World.rank_ctx -> comm:Comm.t -> dst:int -> tag:int ->
  Vm.Object_model.obj -> Mpi_core.Request.t

val irecv :
  World.rank_ctx -> comm:Comm.t -> src:int -> tag:int ->
  Vm.Object_model.obj -> Mpi_core.Request.t

val wait : World.rank_ctx -> Mpi_core.Request.t -> Mpi_core.Status.t option
val test : World.rank_ctx -> Mpi_core.Request.t -> bool

val wait_all : World.rank_ctx -> Mpi_core.Request.t list -> unit
(** FCall-wrapped {!Fcall.polling_wait_all}: completes a mixed set of
    point-to-point and generalized collective requests while yielding to
    the collector. *)

(** {1 Internals shared with System.MP} *)

val view_of_region :
  World.rank_ctx -> Vm.Heap.addr * int -> Mpi_core.Buffer_view.t
(** Freeze a heap region into a device buffer view (the DMA model: the
    address is captured now; only pinning keeps it valid across a
    collection). *)
