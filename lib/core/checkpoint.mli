(** In-memory checkpoint/restart for a rank's VM state.

    A checkpoint is the rank's live object graph, captured with the same
    split-representation serializer that System.MP's OO operations use
    (paper Section 7.5), plus the step counter of the program taking it
    and a digest of the device's message state. The store is in-memory
    and world-global — the simulation's stand-in for a checkpoint server
    that survives the rank it describes.

    Restore is the recovery half of the ULFM flow: after a failed rank is
    re-admitted ({!Mpi_core.Mpi.revive_rank}), its replacement fiber
    deserializes the last image into its heap and resumes from the
    recorded step. Only {e quiescent} images (nothing in flight at save
    time) are restorable: replaying in-flight messages would need message
    logging, which this store deliberately does not implement — programs
    checkpoint at step boundaries, where a bulk-synchronous rank has no
    pending operations. *)

type image = {
  i_rank : int;
  i_step : int;  (** program step the image was taken at *)
  i_at_ns : float;  (** virtual time of the save *)
  i_data : Bytes.t;  (** serialized object graph (root + reachable) *)
  i_digest : string;  (** hex digest of [i_data] *)
  i_pending : string;  (** device message-state summary at save time *)
}

type store

val create_store : ?interval:int -> unit -> store
(** [interval] (default 1) is the checkpoint cadence in program steps,
    consulted by {!due}. Raises [Invalid_argument] if < 1. *)

val interval : store -> int

val due : store -> step:int -> bool
(** [due store ~step] is true when [step] is on the store's cadence
    (i.e. [step mod interval = 0]). *)

val save :
  store -> World.rank_ctx -> step:int -> Vm.Object_model.obj -> image
(** Serialize [root]'s object graph and record it as the rank's latest
    image (counted as [checkpoints], traced). The caller keeps ownership
    of [root]. *)

val latest : store -> rank:int -> image option

val restore : store -> World.rank_ctx -> Vm.Object_model.obj * int
(** Rebuild the rank's latest image into its heap; returns a fresh root
    handle and the step to resume from (counted as [restores], traced).
    Raises [Invalid_argument] if the rank has no image or the image was
    taken with messages in flight. *)

val digest : Bytes.t -> string
(** The digest function used for [i_digest] (exposed for round-trip
    properties: serialize → restore → re-serialize must be
    digest-equal). *)
