module Env = Simtime.Env
module Gc = Vm.Gc
module Om = Vm.Object_model
module Heap = Vm.Heap
module Classes = Vm.Classes
module Types = Vm.Types
module Mpi = Mpi_core.Mpi
module Comm = Mpi_core.Comm
module Bv = Mpi_core.Buffer_view

exception Transport_error of string

let err fmt = Format.kasprintf (fun s -> raise (Transport_error s)) fmt

let validate gc obj =
  let mt = Om.class_of gc obj in
  if mt.Classes.c_has_refs then
    err
      "%s contains object references; only reference-free objects and \
       simple-type arrays may use the regular MPI operations (use the OO \
       operations instead)"
      mt.Classes.c_name

let view_of_region (ctx : World.rank_ctx) (addr, len) =
  let mem = Heap.mem (Gc.heap (World.gc ctx)) in
  {
    Bv.len;
    blit_to =
      (fun ~pos ~dst ~dst_off ~len:n -> Bytes.blit mem (addr + pos) dst dst_off n);
    blit_from =
      (fun ~pos ~src ~src_off ~len:n -> Bytes.blit src src_off mem (addr + pos) n);
  }

let whole_view ctx obj =
  view_of_region ctx (Om.payload_region (World.gc ctx) obj)

let range_view ctx obj ~offset ~count =
  view_of_region ctx (Om.elem_region (World.gc ctx) obj ~offset ~count)

(* Managed-boundary per-byte toll: zero for Motor, nonzero for the wrapper
   presets that reuse this code path. *)
let charge_boundary ctx len =
  let env = World.env ctx.World.world in
  Env.charge_per_byte env env.Env.cost.binding_ns_per_byte len

(* ------------------------------------------------------------------ *)
(* Blocking operations: FCall entry, deferred pinning, polling wait.    *)
(* ------------------------------------------------------------------ *)

let blocking ctx obj view start =
  let gc = World.gc ctx in
  Fcall.enter gc;
  validate gc obj;
  charge_boundary ctx view.Bv.len;
  let guard = Pinning.before_blocking ctx.World.policy gc obj in
  let req = start view in
  let status =
    Fcall.polling_wait gc ctx.World.proc
      ~on_enter_wait:(fun () -> Pinning.on_enter_wait guard)
      req
  in
  Pinning.after_blocking guard;
  Fcall.exit_poll gc;
  status

let send ctx ~comm ~dst ~tag obj =
  let view = whole_view ctx obj in
  ignore
    (blocking ctx obj view (fun v -> Mpi.isend ctx.World.proc ~comm ~dst ~tag v))

let ssend ctx ~comm ~dst ~tag obj =
  let view = whole_view ctx obj in
  ignore
    (blocking ctx obj view (fun v ->
         Mpi.issend ctx.World.proc ~comm ~dst ~tag v))

let recv ctx ~comm ~src ~tag obj =
  let view = whole_view ctx obj in
  match
    blocking ctx obj view (fun v -> Mpi.irecv ctx.World.proc ~comm ~src ~tag v)
  with
  | Some st -> st
  | None -> Mpi_core.Status.empty

let send_range ctx ~comm ~dst ~tag obj ~offset ~count =
  let view = range_view ctx obj ~offset ~count in
  ignore
    (blocking ctx obj view (fun v -> Mpi.isend ctx.World.proc ~comm ~dst ~tag v))

let recv_range ctx ~comm ~src ~tag obj ~offset ~count =
  let view = range_view ctx obj ~offset ~count in
  match
    blocking ctx obj view (fun v -> Mpi.irecv ctx.World.proc ~comm ~src ~tag v)
  with
  | Some st -> st
  | None -> Mpi_core.Status.empty

(* ------------------------------------------------------------------ *)
(* Non-blocking operations: conditional pin requests.                   *)
(* ------------------------------------------------------------------ *)

let nonblocking ctx obj start =
  let gc = World.gc ctx in
  Fcall.enter gc;
  validate gc obj;
  let view = whole_view ctx obj in
  charge_boundary ctx view.Bv.len;
  let req = start view in
  Pinning.for_nonblocking ctx.World.policy gc obj ~req;
  Fcall.exit_poll gc;
  req

let isend ctx ~comm ~dst ~tag obj =
  nonblocking ctx obj (fun v -> Mpi.isend ctx.World.proc ~comm ~dst ~tag v)

let irecv ctx ~comm ~src ~tag obj =
  nonblocking ctx obj (fun v -> Mpi.irecv ctx.World.proc ~comm ~src ~tag v)

let wait ctx req =
  let gc = World.gc ctx in
  Fcall.enter gc;
  let st =
    Fcall.polling_wait gc ctx.World.proc ~on_enter_wait:(fun () -> ()) req
  in
  Fcall.exit_poll gc;
  st

let test ctx req =
  let gc = World.gc ctx in
  Fcall.enter gc;
  let done_ = Mpi.test ctx.World.proc req in
  Fcall.exit_poll gc;
  done_

let wait_all ctx reqs =
  let gc = World.gc ctx in
  Fcall.enter gc;
  Fcall.polling_wait_all gc ctx.World.proc
    ~on_enter_wait:(fun () -> ())
    reqs;
  Fcall.exit_poll gc
