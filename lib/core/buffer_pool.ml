module Env = Simtime.Env
module Key = Simtime.Stats.Key

type entry = {
  buf : Bytes.t;
  mutable last_used_epoch : int;
}

type t = {
  gc : Vm.Gc.t;
  env : Simtime.Env.t;
  owner : Domain.id;
  mutable entries : entry list;  (* sorted by capacity, ascending *)
}

(* A pool belongs to one VM instance, and a VM (like a rank) lives on a
   single domain; the pool's free list is plain mutable state on that
   assumption. The owner check turns a cross-domain use — silent
   corruption under parallel execution — into an immediate error. *)
let check_owner t =
  if not (Domain.self () = t.owner) then
    invalid_arg "Buffer_pool: used from a domain other than its creator"

let create gc =
  let t =
    {
      gc;
      env = Vm.Heap.env (Vm.Gc.heap gc);
      owner = Domain.self ();
      entries = [];
    }
  in
  Vm.Gc.add_post_gc_hook gc (fun () ->
      (* Reap buffers unused since the last collection. *)
      let epoch = Vm.Gc.collection_epoch gc in
      let keep, reap =
        List.partition (fun e -> e.last_used_epoch >= epoch - 1) t.entries
      in
      t.entries <- keep;
      List.iter
        (fun _ -> Env.count t.env Key.buffers_reaped)
        reap);
  t

let acquire t size =
  check_owner t;
  (* The pool is kept sorted by capacity (insertion in [release], and the
     reaping hook's partition preserves order), so the first adequate
     entry is the smallest one: best fit in a single scan, no per-acquire
     sort. *)
  let rec take acc = function
    | [] -> None
    | e :: rest when Bytes.length e.buf >= size ->
        t.entries <- List.rev_append acc rest;
        Some e
    | e :: rest -> take (e :: acc) rest
  in
  match take [] t.entries with
  | Some e ->
      e.last_used_epoch <- Vm.Gc.collection_epoch t.gc;
      Env.count t.env Key.buffers_reused;
      e.buf
  | None ->
      Env.count t.env Key.buffers_created;
      Env.charge t.env
        (t.env.Env.cost.alloc_obj_ns
        +. (t.env.Env.cost.alloc_ns_per_byte *. float_of_int size));
      Bytes.create size

let release t buf =
  check_owner t;
  (* Sorted insertion keeps the capacity order [acquire] relies on. *)
  let e = { buf; last_used_epoch = Vm.Gc.collection_epoch t.gc } in
  let len = Bytes.length buf in
  let rec insert = function
    | x :: rest when Bytes.length x.buf < len -> x :: insert rest
    | rest -> e :: rest
  in
  t.entries <- insert t.entries

let pooled t = List.length t.entries
