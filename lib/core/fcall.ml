module Env = Simtime.Env
module Key = Simtime.Stats.Key

let env gc = Vm.Heap.env (Vm.Gc.heap gc)

let enter gc =
  let e = env gc in
  let crossing = e.Env.cost.fcall_ns +. e.Env.cost.managed_wrapper_ns in
  Env.charge e crossing;
  (* The gate crossing itself, excluding any GC the safepoint poll runs
     (that lands in the gc pause histograms). *)
  Env.observe e Key.h_fcall_gate crossing;
  Env.count e Key.fcalls;
  Vm.Gc.poll gc

let exit_poll gc = Vm.Gc.poll gc

let call gc f =
  enter gc;
  let result = f () in
  exit_poll gc;
  result

let polling_wait gc proc ~on_enter_wait req =
  ignore (Mpi_core.Ch3.progress (Mpi_core.Mpi.device proc));
  if not (Mpi_core.Request.is_complete req) then begin
    on_enter_wait ();
    ignore
      (Mpi_core.Mpi.wait_poll proc ~poll:(fun () -> Vm.Gc.poll gc) req)
  end;
  Mpi_core.Request.status req

let polling_wait_all gc proc ~on_enter_wait reqs =
  ignore (Mpi_core.Ch3.progress (Mpi_core.Mpi.device proc));
  if not (List.for_all Mpi_core.Request.is_complete reqs) then begin
    on_enter_wait ();
    List.iter
      (fun req ->
        ignore
          (Mpi_core.Mpi.wait_poll proc ~poll:(fun () -> Vm.Gc.poll gc) req))
      reqs
  end
