module Om = Vm.Object_model
module Mpi = Mpi_core.Mpi
module Ch3 = Mpi_core.Ch3
module Key = Simtime.Stats.Key

type image = {
  i_rank : int;
  i_step : int;
  i_at_ns : float;
  i_data : Bytes.t;
  i_digest : string;
  i_pending : string;
}

type store = {
  s_interval : int;
  latest : (int, image) Hashtbl.t;
}

let create_store ?(interval = 1) () =
  if interval < 1 then invalid_arg "Checkpoint.create_store: interval < 1";
  { s_interval = interval; latest = Hashtbl.create 8 }

let interval s = s.s_interval
let due s ~step = step mod s.s_interval = 0
let latest s ~rank = Hashtbl.find_opt s.latest rank
let digest data = Digest.to_hex (Digest.bytes data)

(* The device-side half of a consistent checkpoint: a digest of the
   rank's message state at save time. A checkpoint taken at a step
   boundary of a bulk-synchronous program has nothing in flight, and the
   restore path asserts exactly that — replaying from an image with
   channel state baked in would need message logging, which this store
   deliberately does not implement. *)
let pending_digest ctx =
  let dev = Mpi.device ctx.World.proc in
  Printf.sprintf "out=%d rndv=%d hooks=%d" (Ch3.outstanding dev)
    (Ch3.pending_rendezvous dev)
    (Ch3.progress_hook_count dev)

let quiescent_pending = "out=0 rndv=0 hooks=0"

let save store ctx ~step root =
  let gc = World.gc ctx in
  let env = World.env ctx.World.world in
  let data = Serializer.serialize gc ~visited:ctx.World.visited root in
  let image =
    {
      i_rank = World.rank ctx;
      i_step = step;
      i_at_ns = Simtime.Clock.now_ns env.Simtime.Env.clock;
      i_data = data;
      i_digest = digest data;
      i_pending = pending_digest ctx;
    }
  in
  Hashtbl.replace store.latest image.i_rank image;
  Simtime.Env.count env Key.checkpoints;
  Mpi_core.Trace.record env ~rank:image.i_rank ~op:"checkpoint"
    ~detail:
      (Printf.sprintf "step=%d %dB %s [%s]" step (Bytes.length data)
         image.i_digest image.i_pending);
  image

let restore store ctx =
  let rank = World.rank ctx in
  match Hashtbl.find_opt store.latest rank with
  | None ->
      invalid_arg
        (Printf.sprintf "Checkpoint.restore: no image for rank %d" rank)
  | Some image ->
      if image.i_pending <> quiescent_pending then
        invalid_arg
          (Printf.sprintf
             "Checkpoint.restore: rank %d image taken with messages in \
              flight (%s) — not restorable without message logging"
             rank image.i_pending);
      let gc = World.gc ctx in
      let env = World.env ctx.World.world in
      let root = Serializer.deserialize gc image.i_data in
      Simtime.Env.count env Key.restores;
      Mpi_core.Trace.record env ~rank ~op:"restore"
        ~detail:
          (Printf.sprintf "step=%d %dB %s" image.i_step
             (Bytes.length image.i_data) image.i_digest);
      (root, image.i_step)
