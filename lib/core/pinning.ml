module Env = Simtime.Env
module Key = Simtime.Stats.Key
module Gc = Vm.Gc
module Om = Vm.Object_model

type policy = No_pin | Always_pin | Boundary_check | Deferred

let default = Deferred

let policy_name = function
  | No_pin -> "no-pin (unsafe)"
  | Always_pin -> "always-pin"
  | Boundary_check -> "boundary-check"
  | Deferred -> "deferred"

type blocking_guard = {
  gc : Gc.t;
  obj : Om.obj;
  mutable pinned : bool;
  mutable defer : bool;  (* pin still owed if the wait is entered *)
}

let env gc = Vm.Heap.env (Gc.heap gc)

(* The boundary test Motor performs against the young generation
   (Section 7.4): elder objects are never moved, so they never pin. *)
let movable gc obj =
  let e = env gc in
  Env.charge e e.Env.cost.pin_boundary_check_ns;
  Vm.Heap.in_young (Gc.heap gc) (Om.addr_of gc obj)

let before_blocking policy gc obj =
  match policy with
  | No_pin -> { gc; obj; pinned = false; defer = false }
  | Always_pin ->
      Gc.pin gc obj;
      { gc; obj; pinned = true; defer = false }
  | Boundary_check ->
      if movable gc obj then begin
        Gc.pin gc obj;
        { gc; obj; pinned = true; defer = false }
      end
      else begin
        Env.count (env gc) Key.pins_avoided;
        { gc; obj; pinned = false; defer = false }
      end
  | Deferred ->
      if movable gc obj then { gc; obj; pinned = false; defer = true }
      else begin
        Env.count (env gc) Key.pins_avoided;
        { gc; obj; pinned = false; defer = false }
      end

let on_enter_wait g =
  if g.defer then begin
    Gc.pin g.gc g.obj;
    g.pinned <- true;
    g.defer <- false
  end

let after_blocking g =
  if g.pinned then begin
    Gc.unpin g.gc g.obj;
    g.pinned <- false
  end
  else if not g.defer then ()
  else begin
    (* Deferred pin that was never taken: the operation completed without
       entering its polling wait. *)
    g.defer <- false;
    Env.count (env g.gc) Key.pins_deferred
  end

let for_window policy gc obj ~exposed =
  match policy with
  | No_pin -> false
  | Always_pin ->
      Gc.pin gc obj;
      true
  | Boundary_check ->
      if movable gc obj then begin
        Gc.pin gc obj;
        true
      end
      else begin
        Env.count (env gc) Key.pins_avoided;
        false
      end
  | Deferred ->
      (if movable gc obj then
         (* The window's exposure epoch plays the role a request's
            completion plays for a nonblocking transfer: the mark phase
            keeps the buffer put while [exposed ()] holds and drops the
            pin at the first collection after the window is freed. *)
         Gc.add_conditional_pin gc obj ~still_active:exposed
       else Env.count (env gc) Key.pins_avoided);
      false

let for_nonblocking policy gc obj ~req =
  match policy with
  | No_pin -> ()
  | Always_pin ->
      Gc.pin gc obj;
      Mpi_core.Request.on_complete req (fun () -> Gc.unpin gc obj)
  | Boundary_check ->
      if movable gc obj then begin
        Gc.pin gc obj;
        Mpi_core.Request.on_complete req (fun () -> Gc.unpin gc obj)
      end
      else Env.count (env gc) Key.pins_avoided
  | Deferred ->
      if movable gc obj then
        Gc.add_conditional_pin gc obj ~still_active:(fun () ->
            not (Mpi_core.Request.is_complete req))
      else Env.count (env gc) Key.pins_avoided
