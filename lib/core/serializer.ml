module Env = Simtime.Env
module Key = Simtime.Stats.Key
module Gc = Vm.Gc
module Om = Vm.Object_model
module Heap = Vm.Heap
module Classes = Vm.Classes
module Types = Vm.Types

exception Serialize_error of string

type visited_strategy = Linear | Hashed

let err fmt = Format.kasprintf (fun s -> raise (Serialize_error s)) fmt

let magic = 0x4D4F5452 (* "MOTR" *)

(* ------------------------------------------------------------------ *)
(* Wire primitives                                                     *)
(* ------------------------------------------------------------------ *)

let u8 b v = Buffer.add_uint8 b v
let u16 b v = Buffer.add_uint16_le b v
let u32 b v = Buffer.add_int32_le b (Int32.of_int v)

let str b s =
  u16 b (String.length s);
  Buffer.add_string b s

type reader = { data : Bytes.t; mutable pos : int }

(* Every read is bounds-checked so corrupted or truncated wire data
   surfaces as Serialize_error, never as a runtime crash or a silent
   mis-parse. *)
let need r n =
  if r.pos < 0 || r.pos + n > Bytes.length r.data then
    err "truncated representation (need %d bytes at offset %d of %d)" n
      r.pos (Bytes.length r.data)

let r_u8 r =
  need r 1;
  let v = Bytes.get_uint8 r.data r.pos in
  r.pos <- r.pos + 1;
  v

let r_u16 r =
  need r 2;
  let v = Bytes.get_uint16_le r.data r.pos in
  r.pos <- r.pos + 2;
  v

let r_u32 r =
  need r 4;
  let v = Int32.to_int (Bytes.get_int32_le r.data r.pos) in
  r.pos <- r.pos + 4;
  v

let r_str r =
  let n = r_u16 r in
  need r n;
  let s = Bytes.sub_string r.data r.pos n in
  r.pos <- r.pos + n;
  s

let r_skip r n =
  if n < 0 then err "negative payload length";
  need r n;
  r.pos <- r.pos + n

let prim_code = function
  | Types.I1 -> 1
  | Types.I2 -> 2
  | Types.I4 -> 3
  | Types.I8 -> 4
  | Types.R4 -> 5
  | Types.R8 -> 6
  | Types.Bool -> 7
  | Types.Char -> 8

let ref_code = 0xff

let field_code (fd : Classes.field_desc) =
  match fd.Classes.f_type with
  | Types.Prim p -> prim_code p
  | Types.Ref _ -> ref_code

let elem_code = function
  | Types.Eprim p -> prim_code p
  | Types.Eref _ -> ref_code

(* ------------------------------------------------------------------ *)
(* Visited structures                                                  *)
(* ------------------------------------------------------------------ *)

type visited = {
  lookup : Heap.addr -> int option;
  insert : Heap.addr -> int -> unit;
}

let make_visited env strategy =
  let charge_probes n =
    Env.charge env (env.Env.cost.visited_probe_ns *. float_of_int n);
    Env.count_n env Key.visited_probes n
  in
  match strategy with
  | Linear ->
      (* The paper's linear structure: every lookup walks the list. *)
      let entries : (Heap.addr * int) list ref = ref [] in
      {
        lookup =
          (fun a ->
            let probes = ref 0 in
            let rec go = function
              | [] -> None
              | (addr, id) :: rest ->
                  incr probes;
                  if addr = a then Some id else go rest
            in
            let result = go !entries in
            charge_probes (max 1 !probes);
            result);
        insert = (fun a id -> entries := (a, id) :: !entries);
      }
  | Hashed ->
      let table : (Heap.addr, int) Hashtbl.t = Hashtbl.create 64 in
      {
        lookup =
          (fun a ->
            charge_probes 1;
            Hashtbl.find_opt table a);
        insert = (fun a id -> Hashtbl.replace table a id);
      }

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

type root = Whole of Heap.addr | Slice of Heap.addr * int * int

(* Raw (non-moving) access: serialization allocates no managed memory, so
   addresses are stable for its whole duration and no pinning is needed
   (Section 7.4). *)
(* The encode pass proper: everything inside the ser/encode histogram
   ([serialize_raw] below wraps it with the timer and span). *)
let serialize_pass gc ~visited root =
  let env = Vm.Heap.env (Gc.heap gc) in
  let cost = env.Env.cost in
  let heap = Gc.heap gc in
  let v = make_visited env visited in
  let types = Buffer.create 256 in
  let objects = Buffer.create 1024 in
  let type_index : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let n_types = ref 0 in
  let intern_type (mt : Classes.method_table) =
    match Hashtbl.find_opt type_index mt.Classes.c_id with
    | Some i -> i
    | None ->
        let i = !n_types in
        incr n_types;
        Hashtbl.replace type_index mt.Classes.c_id i;
        (match mt.Classes.c_kind with
        | Classes.K_class ->
            u8 types 0;
            str types mt.Classes.c_name;
            u16 types (Array.length mt.Classes.c_fields);
            Array.iter
              (fun fd -> u8 types (field_code fd))
              mt.Classes.c_fields
        | Classes.K_array elem ->
            u8 types 1;
            str types mt.Classes.c_name;
            u8 types (elem_code elem)
        | Classes.K_md_array (elem, rank) ->
            u8 types 2;
            str types mt.Classes.c_name;
            u8 types (elem_code elem);
            u8 types rank);
        i
  in
  let n_objects = ref 0 in
  let queue = Queue.create () in
  (* Assign an id to a reachable object, enqueueing it on first sight. *)
  let id_of addr =
    if addr = Heap.null then 0
    else
      match v.lookup addr with
      | Some id -> id
      | None ->
          incr n_objects;
          let id = !n_objects in
          v.insert addr id;
          Queue.push addr queue;
          id
  in
  let emit_prim_payload src len =
    Buffer.add_subbytes objects (Heap.mem heap) src len;
    Env.charge_per_byte env cost.ser_ns_per_byte len
  in
  let emit_object addr =
    Env.charge env cost.ser_per_obj_ns;
    Env.count env Key.ser_objects;
    let mt = Gc.method_table_of gc addr in
    u32 objects (intern_type mt);
    let data = Heap.data_of addr in
    match mt.Classes.c_kind with
    | Classes.K_class ->
        Array.iter
          (fun (fd : Classes.field_desc) ->
            Env.charge env (cost.ser_per_field_ns +. cost.reflect_field_ns);
            let slot = data + fd.Classes.f_offset in
            match fd.Classes.f_type with
            | Types.Prim p ->
                emit_prim_payload slot (Types.prim_size p)
            | Types.Ref _ ->
                let target = Heap.get_ref heap slot in
                (* Only Transportable references propagate; the rest
                   serialize as null (Section 4.2.2). *)
                let id =
                  if fd.Classes.f_transportable then id_of target else 0
                in
                u32 objects id)
          mt.Classes.c_fields
    | Classes.K_array elem ->
        let len = Heap.get_i32 heap data in
        u32 objects len;
        (match elem with
        | Types.Eprim p ->
            emit_prim_payload (data + 4) (len * Types.prim_size p)
        | Types.Eref _ ->
            for i = 0 to len - 1 do
              Env.charge env cost.ser_per_field_ns;
              u32 objects (id_of (Heap.get_ref heap (data + 4 + (4 * i))))
            done)
    | Classes.K_md_array (elem, rank) ->
        let n = ref 1 in
        for d = 0 to rank - 1 do
          let dim = Heap.get_i32 heap (data + (4 * d)) in
          u32 objects dim;
          n := !n * dim
        done;
        let base = data + (4 * rank) in
        (match elem with
        | Types.Eprim p -> emit_prim_payload base (!n * Types.prim_size p)
        | Types.Eref _ ->
            for i = 0 to !n - 1 do
              Env.charge env cost.ser_per_field_ns;
              u32 objects (id_of (Heap.get_ref heap (base + (4 * i))))
            done)
  in
  (* Seed with the root. A slice root is synthesized: an array record that
     references the slice's elements without materializing a sub-array —
     this is what makes the split representation cheap. *)
  let root_id =
    match root with
    | Whole addr -> id_of addr
    | Slice (addr, offset, count) ->
        let mt = Gc.method_table_of gc addr in
        (match mt.Classes.c_kind with
        | Classes.K_array (Types.Eref _) -> ()
        | Classes.K_array (Types.Eprim _)
        | Classes.K_class | Classes.K_md_array _ ->
            err "slice root must be a reference array");
        incr n_objects;
        let id = !n_objects in
        Env.charge env cost.ser_per_obj_ns;
        Env.count env Key.ser_objects;
        u32 objects (intern_type mt);
        u32 objects count;
        let data = Heap.data_of addr in
        for i = offset to offset + count - 1 do
          Env.charge env cost.ser_per_field_ns;
          u32 objects (id_of (Heap.get_ref heap (data + 4 + (4 * i))))
        done;
        id
  in
  while not (Queue.is_empty queue) do
    emit_object (Queue.pop queue)
  done;
  let out = Buffer.create (Buffer.length types + Buffer.length objects + 32) in
  u32 out magic;
  u32 out !n_types;
  Buffer.add_buffer out types;
  u32 out !n_objects;
  Buffer.add_buffer out objects;
  u32 out root_id;
  Buffer.to_bytes out

let serialize_raw gc ~visited root =
  let env = Vm.Heap.env (Gc.heap gc) in
  Env.with_timer env Key.h_ser_encode (fun () ->
      Simtime.Probe.with_span env ~rank:(-1) ~cat:"ser" ~name:"ser/encode"
        (fun () -> serialize_pass gc ~visited root))

let serialize gc ~visited obj =
  serialize_raw gc ~visited (Whole (Om.addr_of gc obj))

let serialize_array_slice gc ~visited obj ~offset ~count =
  let len = Om.array_length gc obj in
  if offset < 0 || count < 0 || offset + count > len then
    err "slice [%d,%d) out of bounds [0,%d)" offset (offset + count) len;
  serialize_raw gc ~visited (Slice (Om.addr_of gc obj, offset, count))

(* ------------------------------------------------------------------ *)
(* Deserialization                                                     *)
(* ------------------------------------------------------------------ *)

(* Resolve a serialized type name against the receiving registry. Array
   names are rebuilt structurally ("Node[]" interns the array class of
   "Node"); unknown class names are an error — the receiving runtime must
   define the same classes. *)
let rec resolve_elem registry name : Types.elem =
  let n = String.length name in
  if n > 1 && name.[n - 1] = ']' then begin
    match String.rindex_opt name '[' with
    | None -> err "malformed type name %s" name
    | Some i ->
        let base = String.sub name 0 i in
        let rank = n - i - 1 in
        let elem = resolve_elem registry base in
        let mt =
          if rank = 1 then Classes.array_class registry elem
          else Classes.md_array_class registry elem ~rank
        in
        Types.Eref mt.Classes.c_id
  end
  else
    match name with
    | "int8" -> Types.Eprim Types.I1
    | "int16" -> Types.Eprim Types.I2
    | "int32" -> Types.Eprim Types.I4
    | "int64" -> Types.Eprim Types.I8
    | "float32" -> Types.Eprim Types.R4
    | "float64" -> Types.Eprim Types.R8
    | "bool" -> Types.Eprim Types.Bool
    | "char" -> Types.Eprim Types.Char
    | _ -> (
        match Classes.find_by_name registry name with
        | Some mt -> Types.Eref mt.Classes.c_id
        | None -> err "receiver has no class named %s" name)

type resolved =
  | R_class of Classes.method_table
  | R_array of Types.elem
  | R_md of Types.elem * int

let read_types gc r =
  let registry = Gc.registry gc in
  let n = r_u32 r in
  (* Each type entry takes at least 4 bytes: bound against the input. *)
  if n < 0 || n > (Bytes.length r.data - r.pos) / 4 then
    err "implausible type count %d" n;
  Array.init n (fun _ ->
      match r_u8 r with
      | 0 ->
          let name = r_str r in
          let n_fields = r_u16 r in
          let codes = Array.init n_fields (fun _ -> r_u8 r) in
          let mt =
            match Classes.find_by_name registry name with
            | Some mt -> mt
            | None -> err "receiver has no class named %s" name
          in
          if Array.length mt.Classes.c_fields <> n_fields then
            err "class %s: field count mismatch (%d vs %d)" name n_fields
              (Array.length mt.Classes.c_fields);
          Array.iteri
            (fun i fd ->
              if field_code fd <> codes.(i) then
                err "class %s: field %s signature mismatch" name
                  fd.Classes.f_name)
            mt.Classes.c_fields;
          R_class mt
      | 1 ->
          let name = r_str r in
          let elem_c = r_u8 r in
          let elem =
            match
              (* Strip one array suffix off the interned array name to get
                 the element type. *)
              resolve_elem registry name
            with
            | Types.Eref id -> (
                match (Classes.find registry id).Classes.c_kind with
                | Classes.K_array e -> e
                | Classes.K_class | Classes.K_md_array _ ->
                    err "%s is not an array class" name)
            | Types.Eprim _ -> err "%s is not an array class" name
          in
          if elem_code elem <> elem_c then
            err "array %s: element kind mismatch" name;
          R_array elem
      | 2 ->
          let name = r_str r in
          let elem_c = r_u8 r in
          let rank = r_u8 r in
          let elem =
            match resolve_elem registry name with
            | Types.Eref id -> (
                match (Classes.find registry id).Classes.c_kind with
                | Classes.K_md_array (e, rk) ->
                    if rk <> rank then err "md array %s: rank mismatch" name;
                    e
                | Classes.K_class | Classes.K_array _ ->
                    err "%s is not a multidimensional array class" name)
            | Types.Eprim _ -> err "%s is not an array class" name
          in
          if elem_code elem <> elem_c then
            err "md array %s: element kind mismatch" name;
          R_md (elem, rank)
      | k -> err "bad type kind %d" k)

let deserialize_pass gc data =
  let env = Vm.Heap.env (Gc.heap gc) in
  let cost = env.Env.cost in
  let r = { data; pos = 0 } in
  if r_u32 r <> magic then err "bad magic";
  let types = read_types gc r in
  let n_objects = r_u32 r in
  (* Each record takes at least 4 bytes (its type index). *)
  if n_objects < 0 || n_objects > (Bytes.length r.data - r.pos) / 4 then
    err "implausible object count %d" n_objects;
  (* Pass 1: parse records and allocate every object; remember each
     record's payload position for the fixup pass. *)
  let handles = Array.make (n_objects + 1) None in
  let payload_pos = Array.make (n_objects + 1) 0 in
  let type_of = Array.make (n_objects + 1) (-1) in
  for id = 1 to n_objects do
    Env.charge env cost.deser_per_obj_ns;
    Env.count env Key.deser_objects;
    let ti = r_u32 r in
    if ti < 0 || ti >= Array.length types then err "bad type index %d" ti;
    type_of.(id) <- ti;
    payload_pos.(id) <- r.pos;
    match types.(ti) with
    | R_class mt ->
        handles.(id) <- Some (Om.alloc_instance gc mt);
        (* Skip the payload: prim fields inline, refs as u32 ids. *)
        Array.iter
          (fun (fd : Classes.field_desc) ->
            match fd.Classes.f_type with
            | Types.Prim p -> r_skip r (Types.prim_size p)
            | Types.Ref _ -> r_skip r 4)
          mt.Classes.c_fields
    | R_array elem ->
        let len = r_u32 r in
        if len < 0 then err "negative array length %d" len;
        let esz =
          match elem with
          | Types.Eprim p -> Types.prim_size p
          | Types.Eref _ -> 4
        in
        (* Validate the payload bounds before allocating managed memory,
           so corrupt lengths cannot balloon the heap. *)
        r_skip r (len * esz);
        handles.(id) <- Some (Om.alloc_array gc elem len)
    | R_md (elem, rank) ->
        let dims = Array.init rank (fun _ -> r_u32 r) in
        Array.iter
          (fun d -> if d < 0 then err "negative array dimension %d" d)
          dims;
        let n = Array.fold_left ( * ) 1 dims in
        let esz =
          match elem with
          | Types.Eprim p -> Types.prim_size p
          | Types.Eref _ -> 4
        in
        r_skip r (n * esz);
        handles.(id) <- Some (Om.alloc_md_array gc elem dims)
  done;
  let root_id = r_u32 r in
  let handle_of id =
    if id = 0 then None
    else if id < 0 || id > n_objects then err "object id %d out of range" id
    else
      match handles.(id) with
      | Some h -> Some h
      | None -> err "dangling object id %d" id
  in
  (* Pass 2: fill payloads and patch references. *)
  for id = 1 to n_objects do
    let o = match handles.(id) with Some h -> h | None -> assert false in
    let rr = { data; pos = payload_pos.(id) } in
    match types.(type_of.(id)) with
    | R_class mt ->
        Array.iter
          (fun (fd : Classes.field_desc) ->
            Env.charge env cost.ser_per_field_ns;
            match fd.Classes.f_type with
            | Types.Prim p ->
                let size = Types.prim_size p in
                let addr = Om.addr_of gc o in
                Heap.blit_in (Gc.heap gc) ~src:rr.data ~src_off:rr.pos
                  ~dst:(Heap.data_of addr + fd.Classes.f_offset)
                  ~len:size;
                Env.charge_per_byte env cost.deser_ns_per_byte size;
                rr.pos <- rr.pos + size
            | Types.Ref _ ->
                let target = r_u32 rr in
                Om.set_ref gc o fd (handle_of target))
          mt.Classes.c_fields
    | R_array elem -> (
        let len = r_u32 rr in
        match elem with
        | Types.Eprim p ->
            let size = len * Types.prim_size p in
            let addr = Om.addr_of gc o in
            Heap.blit_in (Gc.heap gc) ~src:rr.data ~src_off:rr.pos
              ~dst:(Heap.data_of addr + 4)
              ~len:size;
            Env.charge_per_byte env cost.deser_ns_per_byte size
        | Types.Eref _ ->
            for i = 0 to len - 1 do
              Env.charge env cost.ser_per_field_ns;
              Om.set_elem_ref gc o i (handle_of (r_u32 rr))
            done)
    | R_md (elem, rank) -> (
        let dims = Array.init rank (fun _ -> r_u32 rr) in
        let n = Array.fold_left ( * ) 1 dims in
        match elem with
        | Types.Eprim p ->
            let size = n * Types.prim_size p in
            let addr = Om.addr_of gc o in
            Heap.blit_in (Gc.heap gc) ~src:rr.data ~src_off:rr.pos
              ~dst:(Heap.data_of addr + (4 * rank))
              ~len:size;
            Env.charge_per_byte env cost.deser_ns_per_byte size
        | Types.Eref _ ->
            for i = 0 to n - 1 do
              Env.charge env cost.ser_per_field_ns;
              Om.set_elem_ref gc o i (handle_of (r_u32 rr))
            done)
  done;
  (* Release every temporary handle except the root's. *)
  let root =
    if root_id = 0 then Om.null gc
    else if root_id < 0 || root_id > n_objects then
      err "root id %d out of range" root_id
    else
      match handles.(root_id) with
      | Some h -> h
      | None -> err "bad root id %d" root_id
  in
  for id = 1 to n_objects do
    if id <> root_id then
      match handles.(id) with
      | Some h -> Om.free gc h
      | None -> ()
  done;
  root

let deserialize gc data =
  let env = Vm.Heap.env (Gc.heap gc) in
  Env.with_timer env Key.h_ser_decode (fun () ->
      Simtime.Probe.with_span env ~rank:(-1) ~cat:"ser" ~name:"ser/decode"
        (fun () -> deserialize_pass gc data))

(* ------------------------------------------------------------------ *)
(* Split representation                                                *)
(* ------------------------------------------------------------------ *)

let split gc ~visited obj ~parts =
  if parts < 1 then err "split: need at least one part";
  let len = Om.array_length gc obj in
  let base = len / parts and extra = len mod parts in
  let segments = Array.make parts Bytes.empty in
  let offset = ref 0 in
  for i = 0 to parts - 1 do
    let count = base + (if i < extra then 1 else 0) in
    segments.(i) <-
      serialize_array_slice gc ~visited obj ~offset:!offset ~count;
    offset := !offset + count
  done;
  segments

let concat_arrays gc roots =
  match roots with
  | [] -> err "concat_arrays: no segments"
  | first :: _ ->
      let elem = Om.array_elem_type gc first in
      (match elem with
      | Types.Eref _ -> ()
      | Types.Eprim _ -> err "concat_arrays: not a reference array");
      let total =
        List.fold_left (fun acc o -> acc + Om.array_length gc o) 0 roots
      in
      let combined = Om.alloc_array gc elem total in
      let pos = ref 0 in
      List.iter
        (fun o ->
          let n = Om.array_length gc o in
          for i = 0 to n - 1 do
            let e = Om.get_elem_ref gc o i in
            Om.set_elem_ref gc combined !pos e;
            (match e with Some h -> Om.free gc h | None -> ());
            incr pos
          done)
        roots;
      combined

let object_count data =
  let r = { data; pos = 0 } in
  if r_u32 r <> magic then err "bad magic";
  let n_types = r_u32 r in
  for _ = 1 to n_types do
    match r_u8 r with
    | 0 ->
        let _ = r_str r in
        let n_fields = r_u16 r in
        r.pos <- r.pos + n_fields
    | 1 ->
        let _ = r_str r in
        r.pos <- r.pos + 1
    | 2 ->
        let _ = r_str r in
        r.pos <- r.pos + 2
    | k -> err "bad type kind %d" k
  done;
  r_u32 r
