(** System.MP — the managed message-passing library surface.

    Combines the two operation families of Section 4.2:

    - the {e regular MPI operations} (re-exported from
      {!Object_transport}): efficient zero-copy object-to-object transport
      of reference-free objects and simple-type arrays;
    - the {e extended object-oriented operations} ([OSend], [ORecv],
      [OBcast], [OScatter], [OGather]): transport of arbitrary objects,
      object arrays and object trees via the custom serializer, with
      automatic buffer management from the unmanaged pool and no pinning.

    As in the paper (Section 7.5), every OO transfer sends the serialized
    size ahead of the data so the receiver can prepare a buffer. *)

module Comm = Mpi_core.Comm

module Ot = Object_transport

val osend :
  World.rank_ctx -> comm:Comm.t -> dst:int -> tag:int ->
  Vm.Object_model.obj -> unit
(** Serialize (following Transportable references) and send. *)

val osend_range :
  World.rank_ctx -> comm:Comm.t -> dst:int -> tag:int ->
  Vm.Object_model.obj -> offset:int -> count:int -> unit
(** Array-subset OO transfer: sends a [count]-element slice of a
    reference array (the receiver obtains a fresh array of that length). *)

val orecv :
  World.rank_ctx -> comm:Comm.t -> src:int -> tag:int ->
  Vm.Object_model.obj * Mpi_core.Status.t
(** Receive and rebuild an object graph; returns a fresh root handle.
    [src] may be {!Mpi_core.Tag_match.any_source}. *)

val obcast :
  World.rank_ctx -> comm:Comm.t -> root:int ->
  Vm.Object_model.obj option -> Vm.Object_model.obj
(** Broadcast an object tree; the root passes [Some obj] (and gets the same
    handle back), the others pass [None] and receive a fresh copy. *)

val oscatter :
  World.rank_ctx -> comm:Comm.t -> root:int ->
  Vm.Object_model.obj option -> Vm.Object_model.obj
(** Scatter a reference array using the split representation: each member
    (root included) receives a fresh sub-array covering its contiguous
    share of the elements. This is the operation the paper singles out as
    impossible over standard atomic serialization. *)

val ogather :
  World.rank_ctx -> comm:Comm.t -> root:int ->
  Vm.Object_model.obj -> Vm.Object_model.obj option
(** Gather each member's reference array into one combined array at the
    root (in communicator-rank order). *)

(** {1 Regular collectives}

    Zero-copy collectives over objects that pass the regular-operation
    integrity rules (reference-free objects and simple-type arrays) —
    Section 7's "selected collective routines". *)

val bcast :
  World.rank_ctx -> comm:Comm.t -> root:int -> Vm.Object_model.obj -> unit
(** Every member passes an object with the same payload size; non-roots
    are overwritten in place. *)

val scatter_array :
  World.rank_ctx -> comm:Comm.t -> root:int ->
  send:Vm.Object_model.obj option -> recv:Vm.Object_model.obj -> unit
(** Scatter equal element ranges of the root's simple-type array into each
    member's [recv] array (whose length times the communicator size must
    equal the root array's length). *)

val gather_array :
  World.rank_ctx -> comm:Comm.t -> root:int ->
  send:Vm.Object_model.obj -> recv:Vm.Object_model.obj option -> unit
(** Dual of {!scatter_array}. *)

val allreduce_sum_f64 :
  World.rank_ctx -> comm:Comm.t -> Vm.Object_model.obj -> unit
(** Element-wise float64 sum across members, in place. *)

val barrier : World.rank_ctx -> Comm.t -> unit

(** {1 Fault tolerance}

    The ULFM-style recovery calls ({!Mpi_core.Mpi.comm_revoke} family),
    surfaced through the managed gate: an operation that loses a peer
    raises {!Mpi_core.Ft.Proc_failed} out of the System.MP call; the
    application revokes the communicator, shrinks it to the survivors and
    retries on the result. *)

val comm_revoke : World.rank_ctx -> Comm.t -> unit
(** Revoke [comm] on every rank (any member may call it, non-collective;
    idempotent). *)

val comm_agree : World.rank_ctx -> comm:Comm.t -> value:int -> int
(** Fault-tolerant agreement: bitwise AND over the surviving members'
    contributions; every survivor gets the same result. *)

val comm_shrink : World.rank_ctx -> Comm.t -> Comm.t
(** Collective over the survivors: a new communicator containing exactly
    the members all survivors agree are alive. *)

val failed_ranks : World.rank_ctx -> int list
(** World ranks currently declared dead (empty without a failure
    service). *)

(** {1 Nonblocking collectives}

    MPI-3 style: each returns the schedule's generalized request (kind
    [Coll_req]) immediately; complete it with {!Object_transport.wait},
    {!Object_transport.test} or {!Object_transport.wait_all}. The
    transfer buffer is protected by the same conditional-pin mechanism
    as nonblocking point-to-point: the GC mark phase polls the request,
    so a collection during the collective neither moves the buffer nor
    pins it for longer than the schedule is in flight. *)

val ibarrier : World.rank_ctx -> Comm.t -> Mpi_core.Request.t

val ibcast :
  World.rank_ctx -> comm:Comm.t -> root:int -> Vm.Object_model.obj ->
  Mpi_core.Request.t
(** Zero-copy nonblocking broadcast of a regular-operation object; the
    object is read (root) or overwritten (others) in place as the
    schedule runs. *)

val iallreduce_sum_f64 :
  World.rank_ctx -> comm:Comm.t -> Vm.Object_model.obj ->
  Mpi_core.Request.t
(** Element-wise float64 sum; the input is copied out at the call and
    the result is written back into the array when the request
    completes. *)

val comm_world : World.rank_ctx -> Comm.t
val rank : World.rank_ctx -> int
val size : World.rank_ctx -> Comm.t -> int

(** {1 One-sided windows}

    MPI-2 RMA over a managed object: the object's payload region is
    exposed {e in place} (no copy) as an {!Mpi_core.Rma} window, under
    the pinning policy. With the Motor ([Deferred]) policy the buffer is
    protected by a conditional pin whose liveness test is the window's
    exposure epoch — a full collection while the window is exposed marks
    the buffer unmovable, and the pin evaporates at the first collection
    after {!owin_free}. *)

type owin
(** A window whose memory is a managed object's payload. *)

val owin_create :
  ?eager_apply:bool -> World.rank_ctx -> comm:Comm.t ->
  Vm.Object_model.obj -> owin
(** Collective. The object must satisfy the regular-operation integrity
    rules (reference-free object or simple-type array — the same
    restriction as zero-copy transport, for the same reason: remote puts
    write raw bytes). [?eager_apply] threads through to
    {!Mpi_core.Rma.win_create} (test instrumentation only). *)

val owin_win : owin -> Mpi_core.Rma.win
(** The underlying window: issue {!Mpi_core.Rma.put} / [get] /
    [accumulate] / [win_fence] / [win_lock] against it. Window offset 0
    is the first payload byte of the exposed object. *)

val owin_obj : owin -> Vm.Object_model.obj

val owin_free : owin -> unit
(** Collective. Frees the window ({!Mpi_core.Rma.win_free} epoch checks
    included) and releases any sticky pin the policy took. *)
