(** The FCall gateway: how System.MP enters the runtime.

    FCalls are the SSCLI's internally trusted call mechanism (paper
    Section 5.1): no marshalling, no security checks, but the callee must
    behave like managed code — poll the collector so a pending collection
    is never blocked, and keep its object pointers GC-protected (our
    handles play the role of the SSCLI's protected-pointer macros).

    A typical blocking MPI FCall polls in three places (Section 7.4):
    on entry, in the polling wait, and immediately before exit. *)

val enter : Vm.Gc.t -> unit
(** Charge the FCall + managed-dispatch cost and poll the collector:
    the entry edge of an FCall. *)

val exit_poll : Vm.Gc.t -> unit
(** Poll the collector: the exit edge. *)

val call : Vm.Gc.t -> (unit -> 'a) -> 'a
(** [call gc f] = entry edge, [f ()], exit edge. *)

val polling_wait :
  Vm.Gc.t ->
  Mpi_core.Mpi.proc ->
  on_enter_wait:(unit -> unit) ->
  Mpi_core.Request.t ->
  Mpi_core.Status.t option
(** Complete a request. The first progress pump happens {e before}
    [on_enter_wait]: an operation that completes immediately never enters
    the wait — which is what lets the deferred pinning policy skip the pin
    entirely for fast blocking operations. Inside the wait, each poll
    pumps the progress engine and yields to the collector. *)

val polling_wait_all :
  Vm.Gc.t ->
  Mpi_core.Mpi.proc ->
  on_enter_wait:(unit -> unit) ->
  Mpi_core.Request.t list ->
  unit
(** {!polling_wait} over a request set (including generalized collective
    requests): one progress pump up front, then — only if some request is
    still pending — [on_enter_wait] once and a GC-polling wait for each. *)
