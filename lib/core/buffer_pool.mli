(** Unmanaged buffer pool for the OO message-passing operations.

    Serialization buffers live outside the managed heap ("static runtime
    memory", Section 7.5), so OO operations never need pinning. Buffers
    are created on demand, kept on a stack for reuse, and at each garbage
    collection any buffer not used since the previous collection is
    released — exactly the paper's reaping rule.

    A pool is single-domain by construction (a VM lives on one rank's
    fiber, and a fiber never migrates between domains — DESIGN.md §15);
    {!acquire}/{!release} raise [Invalid_argument] when called from any
    domain other than the creator's, turning a parallel-mode misuse into
    an immediate error instead of silent free-list corruption. *)

type t

val create : Vm.Gc.t -> t
(** Registers the reaping hook with the collector. *)

val acquire : t -> int -> Bytes.t
(** Smallest pooled buffer of at least the requested size, or a fresh one.
    The returned buffer may be larger than requested. The pool is kept
    sorted by capacity ({!release} inserts in order), so this is a single
    best-fit scan. *)

val release : t -> Bytes.t -> unit
(** Return a buffer to the pool (sorted insertion by capacity). *)

val pooled : t -> int
(** Buffers currently sitting in the pool. *)
