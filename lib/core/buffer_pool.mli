(** Unmanaged buffer pool for the OO message-passing operations.

    Serialization buffers live outside the managed heap ("static runtime
    memory", Section 7.5), so OO operations never need pinning. Buffers
    are created on demand, kept on a stack for reuse, and at each garbage
    collection any buffer not used since the previous collection is
    released — exactly the paper's reaping rule. *)

type t

val create : Vm.Gc.t -> t
(** Registers the reaping hook with the collector. *)

val acquire : t -> int -> Bytes.t
(** Smallest pooled buffer of at least the requested size, or a fresh one.
    The returned buffer may be larger than requested. The pool is kept
    sorted by capacity ({!release} inserts in order), so this is a single
    best-fit scan. *)

val release : t -> Bytes.t -> unit
(** Return a buffer to the pool (sorted insertion by capacity). *)

val pooled : t -> int
(** Buffers currently sitting in the pool. *)
