module Comm = Mpi_core.Comm
module Mpi = Mpi_core.Mpi

type config = {
  policy : Pinning.policy;
  visited : Serializer.visited_strategy;
  arena_bytes : int;
  block_bytes : int;
}

let default_config =
  {
    policy = Pinning.default;
    visited = Serializer.Linear;
    arena_bytes = 32 * 1024 * 1024;
    block_bytes = 256 * 1024;
  }

type t = {
  env : Simtime.Env.t;
  mpi_world : Mpi.world;
  config : config;
  mutable ctxs : rank_ctx array;
}

and rank_ctx = {
  world : t;
  proc : Mpi.proc;
  rt : Vm.Runtime.t;
  pool : Buffer_pool.t;
  mutable policy : Pinning.policy;
  mutable visited : Serializer.visited_strategy;
}

let make_ctx t i =
  let rt =
    Vm.Runtime.create ~arena_bytes:t.config.arena_bytes
      ~block_bytes:t.config.block_bytes ~env:t.env ()
  in
  {
    world = t;
    proc = Mpi.proc t.mpi_world i;
    rt;
    pool = Buffer_pool.create rt.Vm.Runtime.gc;
    policy = t.config.policy;
    visited = t.config.visited;
  }

let create ?channel ?(cost = Simtime.Cost.motor) ?(config = default_config)
    ?fault ?detector ~n () =
  let env = Simtime.Env.create ~cost () in
  let mpi_world = Mpi.create_world ?channel ~env ?fault ?detector ~n () in
  let t = { env; mpi_world; config; ctxs = [||] } in
  t.ctxs <- Array.init n (fun i -> make_ctx t i);
  t

let env t = t.env
let mpi t = t.mpi_world
let size t = Array.length t.ctxs

let rank_ctx t i =
  (* Indexed by world rank: spawned children land at the end, so search. *)
  match
    Array.find_opt (fun ctx -> Mpi.rank ctx.proc = i) t.ctxs
  with
  | Some ctx -> ctx
  | None -> invalid_arg "World.rank_ctx: bad rank"

let comm_world t = Mpi.comm_world t.mpi_world

let run t body =
  let fibers =
    List.init (size t) (fun i ->
        ( Printf.sprintf "motor-rank%d" i,
          fun () ->
            (* Fail-stop guard: a scheduled kill tears this rank's VM
               down instead of aborting the whole world. *)
            Mpi.rank_guard t.mpi_world i (fun () -> body (rank_ctx t i)) ))
  in
  Fiber.run fibers

(* A restarted incarnation gets a fresh VM instance — its old heap died
   with the process; the state it resumes from comes out of a checkpoint
   image, not the corpse. *)
let respawn_ctx t i =
  let ctx = make_ctx t i in
  t.ctxs <-
    Array.map (fun c -> if Mpi.rank c.proc = i then ctx else c) t.ctxs;
  ctx

let rank ctx = Mpi.rank ctx.proc
let gc ctx = ctx.rt.Vm.Runtime.gc
let registry ctx = ctx.rt.Vm.Runtime.registry

(* Build a rank_ctx around an already-created proc (dynamic spawn). *)
let ctx_of_proc t proc =
  let rt =
    Vm.Runtime.create ~arena_bytes:t.config.arena_bytes
      ~block_bytes:t.config.block_bytes ~env:t.env ()
  in
  let ctx =
    {
      world = t;
      proc;
      rt;
      pool = Buffer_pool.create rt.Vm.Runtime.gc;
      policy = t.config.policy;
      visited = t.config.visited;
    }
  in
  t.ctxs <- Array.append t.ctxs [| ctx |];
  ctx

let spawn ctx ~n body =
  let t = ctx.world in
  let comm = comm_world t in
  Mpi_core.Dynamic.spawn ctx.proc ~comm ~n (fun child_proc ic ->
      let child_ctx = ctx_of_proc t child_proc in
      body child_ctx ic)
