module Comm = Mpi_core.Comm
module Ot = Object_transport
module Gc = Vm.Gc
module Om = Vm.Object_model
module Mpi = Mpi_core.Mpi
module Bv = Mpi_core.Buffer_view
module Coll = Mpi_core.Collectives

let comm_world ctx = World.comm_world ctx.World.world
let rank ctx = World.rank ctx
let size _ctx comm = Comm.size comm
let gc_of ctx = World.gc ctx

let wait_gc ctx req =
  let gc = gc_of ctx in
  Fcall.polling_wait gc ctx.World.proc ~on_enter_wait:(fun () -> ()) req

let size_header size =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int size);
  b

let read_size_header b = Int64.to_int (Bytes.get_int64_le b 0)

(* ------------------------------------------------------------------ *)
(* OSend / ORecv                                                       *)
(* ------------------------------------------------------------------ *)

let send_serialized ctx ~comm ~dst ~tag data =
  let s1 =
    Mpi.isend ctx.World.proc ~comm ~dst ~tag
      (Bv.of_bytes (size_header (Bytes.length data)))
  in
  let s2 = Mpi.isend ctx.World.proc ~comm ~dst ~tag (Bv.of_bytes data) in
  ignore (wait_gc ctx s1);
  ignore (wait_gc ctx s2)

let osend ctx ~comm ~dst ~tag obj =
  let gc = gc_of ctx in
  Fcall.call gc (fun () ->
      let data = Serializer.serialize gc ~visited:ctx.World.visited obj in
      send_serialized ctx ~comm ~dst ~tag data)

let osend_range ctx ~comm ~dst ~tag obj ~offset ~count =
  let gc = gc_of ctx in
  Fcall.call gc (fun () ->
      let data =
        Serializer.serialize_array_slice gc ~visited:ctx.World.visited obj
          ~offset ~count
      in
      send_serialized ctx ~comm ~dst ~tag data)

let orecv ctx ~comm ~src ~tag =
  let gc = gc_of ctx in
  Fcall.call gc (fun () ->
      let hdr = Bytes.create 8 in
      let st =
        match
          wait_gc ctx (Mpi.irecv ctx.World.proc ~comm ~src ~tag (Bv.of_bytes hdr))
        with
        | Some st -> st
        | None -> Mpi_core.Status.empty
      in
      let nbytes = read_size_header hdr in
      (* The data always follows from the same sender (non-overtaking), so
         pin the source down even when the header matched a wildcard. *)
      let data_src =
        match Comm.comm_rank_of comm st.Mpi_core.Status.source with
        | Some r -> r
        | None -> src
      in
      let buf = Buffer_pool.acquire ctx.World.pool nbytes in
      ignore
        (wait_gc ctx
           (Mpi.irecv ctx.World.proc ~comm ~src:data_src ~tag
              (Bv.of_bytes_sub buf ~off:0 ~len:nbytes)));
      let obj = Serializer.deserialize gc buf in
      Buffer_pool.release ctx.World.pool buf;
      let st =
        {
          st with
          Mpi_core.Status.source = data_src;
          Mpi_core.Status.bytes = nbytes;
        }
      in
      (obj, st))

(* ------------------------------------------------------------------ *)
(* OO collectives over the split representation                        *)
(* ------------------------------------------------------------------ *)

let obcast ctx ~comm ~root obj =
  let gc = gc_of ctx in
  Fcall.call gc (fun () ->
      let me = Mpi.comm_rank ctx.World.proc comm in
      if me = root then begin
        let obj =
          match obj with
          | Some o -> o
          | None -> invalid_arg "System_mp.obcast: root must supply an object"
        in
        let data = Serializer.serialize gc ~visited:ctx.World.visited obj in
        Coll.bcast ctx.World.proc comm ~root
          (Bv.of_bytes (size_header (Bytes.length data)));
        Coll.bcast ctx.World.proc comm ~root (Bv.of_bytes data);
        obj
      end
      else begin
        let hdr = Bytes.create 8 in
        Coll.bcast ctx.World.proc comm ~root (Bv.of_bytes hdr);
        let nbytes = read_size_header hdr in
        let buf = Buffer_pool.acquire ctx.World.pool nbytes in
        Coll.bcast ctx.World.proc comm ~root
          (Bv.of_bytes_sub buf ~off:0 ~len:nbytes);
        let obj = Serializer.deserialize gc buf in
        Buffer_pool.release ctx.World.pool buf;
        obj
      end)

let oscatter ctx ~comm ~root obj =
  let gc = gc_of ctx in
  Fcall.call gc (fun () ->
      let me = Mpi.comm_rank ctx.World.proc comm in
      let n = Comm.size comm in
      let hdr = Bytes.create 8 in
      if me = root then begin
        let obj =
          match obj with
          | Some o -> o
          | None -> invalid_arg "System_mp.oscatter: root must supply an array"
        in
        (* The custom serializer produces the split representation
           directly: one independently deserializable segment per member,
           with no intermediate sub-arrays (Section 7.5). *)
        let segments =
          Serializer.split gc ~visited:ctx.World.visited obj ~parts:n
        in
        let size_parts =
          Array.map (fun s -> Bv.of_bytes (size_header (Bytes.length s))) segments
        in
        Coll.scatter ctx.World.proc comm ~root ~parts:(Some size_parts)
          ~recv:(Bv.of_bytes hdr);
        let data_parts = Array.map Bv.of_bytes segments in
        let nbytes = read_size_header hdr in
        let buf = Buffer_pool.acquire ctx.World.pool nbytes in
        Coll.scatter ctx.World.proc comm ~root ~parts:(Some data_parts)
          ~recv:(Bv.of_bytes_sub buf ~off:0 ~len:nbytes);
        let mine = Serializer.deserialize gc buf in
        Buffer_pool.release ctx.World.pool buf;
        mine
      end
      else begin
        Coll.scatter ctx.World.proc comm ~root ~parts:None
          ~recv:(Bv.of_bytes hdr);
        let nbytes = read_size_header hdr in
        let buf = Buffer_pool.acquire ctx.World.pool nbytes in
        Coll.scatter ctx.World.proc comm ~root ~parts:None
          ~recv:(Bv.of_bytes_sub buf ~off:0 ~len:nbytes);
        let mine = Serializer.deserialize gc buf in
        Buffer_pool.release ctx.World.pool buf;
        mine
      end)

let ogather ctx ~comm ~root obj =
  let gc = gc_of ctx in
  Fcall.call gc (fun () ->
      let me = Mpi.comm_rank ctx.World.proc comm in
      let n = Comm.size comm in
      let data = Serializer.serialize gc ~visited:ctx.World.visited obj in
      let my_hdr = size_header (Bytes.length data) in
      if me = root then begin
        let hdrs = Array.init n (fun _ -> Bytes.create 8) in
        Coll.gather ctx.World.proc comm ~root ~send:(Bv.of_bytes my_hdr)
          ~parts:(Some (Array.map Bv.of_bytes hdrs));
        let bufs =
          Array.map
            (fun h -> Buffer_pool.acquire ctx.World.pool (read_size_header h))
            hdrs
        in
        let sinks =
          Array.mapi
            (fun i b ->
              Bv.of_bytes_sub b ~off:0 ~len:(read_size_header hdrs.(i)))
            bufs
        in
        Coll.gather ctx.World.proc comm ~root ~send:(Bv.of_bytes data)
          ~parts:(Some sinks);
        (* Deserialize every member's segment and rebuild one array. *)
        let roots =
          Array.to_list (Array.map (fun b -> Serializer.deserialize gc b) bufs)
        in
        let combined = Serializer.concat_arrays gc roots in
        List.iter (fun o -> Om.free gc o) roots;
        Array.iter (fun b -> Buffer_pool.release ctx.World.pool b) bufs;
        Some combined
      end
      else begin
        Coll.gather ctx.World.proc comm ~root ~send:(Bv.of_bytes my_hdr)
          ~parts:None;
        Coll.gather ctx.World.proc comm ~root ~send:(Bv.of_bytes data)
          ~parts:None;
        None
      end)

(* ------------------------------------------------------------------ *)
(* Regular (zero-copy) collectives                                     *)
(* ------------------------------------------------------------------ *)

let whole_view ctx obj =
  Ot.view_of_region ctx (Om.payload_region (gc_of ctx) obj)

let bcast ctx ~comm ~root obj =
  let gc = gc_of ctx in
  Fcall.call gc (fun () ->
      Ot.validate gc obj;
      Coll.bcast ctx.World.proc comm ~root (whole_view ctx obj))

let scatter_array ctx ~comm ~root ~send ~recv =
  let gc = gc_of ctx in
  Fcall.call gc (fun () ->
      Ot.validate gc recv;
      let n = Comm.size comm in
      let per_rank = Om.array_length gc recv in
      let parts =
        match send with
        | None -> None
        | Some src ->
            Ot.validate gc src;
            let len = Om.array_length gc src in
            if len <> n * per_rank then
              raise
                (Ot.Transport_error
                   (Printf.sprintf
                      "scatter_array: root array has %d elements, expected \
                       %d x %d"
                      len n per_rank));
            Some
              (Array.init n (fun r ->
                   Ot.view_of_region ctx
                     (Om.elem_region gc src ~offset:(r * per_rank)
                        ~count:per_rank)))
      in
      Coll.scatter ctx.World.proc comm ~root ~parts
        ~recv:(whole_view ctx recv))

let gather_array ctx ~comm ~root ~send ~recv =
  let gc = gc_of ctx in
  Fcall.call gc (fun () ->
      Ot.validate gc send;
      let n = Comm.size comm in
      let per_rank = Om.array_length gc send in
      let parts =
        match recv with
        | None -> None
        | Some dst ->
            Ot.validate gc dst;
            let len = Om.array_length gc dst in
            if len <> n * per_rank then
              raise
                (Ot.Transport_error
                   (Printf.sprintf
                      "gather_array: root array has %d elements, expected \
                       %d x %d"
                      len n per_rank));
            Some
              (Array.init n (fun r ->
                   Ot.view_of_region ctx
                     (Om.elem_region gc dst ~offset:(r * per_rank)
                        ~count:per_rank)))
      in
      Coll.gather ctx.World.proc comm ~root ~send:(whole_view ctx send)
        ~parts)

let allreduce_sum_f64 ctx ~comm obj =
  let gc = gc_of ctx in
  Fcall.call gc (fun () ->
      Ot.validate gc obj;
      (match Om.array_elem_type gc obj with
      | Vm.Types.Eprim Vm.Types.R8 -> ()
      | _ ->
          raise (Ot.Transport_error "allreduce_sum_f64: need a float64 array"));
      let local = Om.read_array_bytes gc obj in
      let result = Coll.allreduce ctx.World.proc comm ~op:Coll.sum_f64 local in
      Om.fill_array_bytes gc obj result)

let barrier ctx comm =
  let gc = gc_of ctx in
  Fcall.call gc (fun () -> Coll.barrier ctx.World.proc comm)

(* ------------------------------------------------------------------ *)
(* Fault tolerance (ULFM surface for managed code)                     *)
(* ------------------------------------------------------------------ *)

(* Same gate crossing as every other System.MP operation: the managed
   caller pays the fcall cost and the safepoint polls run, so a recovery
   sequence (revoke / agree / shrink) interleaves with collections like
   any other message-passing call. *)

let comm_revoke ctx comm =
  let gc = gc_of ctx in
  Fcall.call gc (fun () -> Mpi.comm_revoke ctx.World.proc comm)

let comm_agree ctx ~comm ~value =
  let gc = gc_of ctx in
  Fcall.call gc (fun () -> Mpi.comm_agree ctx.World.proc comm ~value)

let comm_shrink ctx comm =
  let gc = gc_of ctx in
  Fcall.call gc (fun () -> Mpi.comm_shrink ctx.World.proc comm)

let failed_ranks ctx = Mpi.dead_ranks (World.mpi ctx.World.world)

(* ------------------------------------------------------------------ *)
(* Nonblocking collectives (MPI-3 style)                               *)
(* ------------------------------------------------------------------ *)

(* Same conditional-pin path as the nonblocking point-to-point
   operations: the schedule's generalized request (kind [Coll_req]) is
   what the GC mark phase polls to decide whether the buffer must stay
   put, so an in-flight collective survives a collection without an
   unconditional pin. Complete with {!Ot.wait} / {!Ot.test} /
   {!Ot.wait_all}. *)

let ibarrier ctx comm =
  let gc = gc_of ctx in
  Fcall.enter gc;
  let req = Coll.ibarrier ctx.World.proc comm in
  Fcall.exit_poll gc;
  req

let ibcast ctx ~comm ~root obj =
  let gc = gc_of ctx in
  Fcall.enter gc;
  Ot.validate gc obj;
  let req = Coll.ibcast ctx.World.proc comm ~root (whole_view ctx obj) in
  Pinning.for_nonblocking ctx.World.policy gc obj ~req;
  Fcall.exit_poll gc;
  req

let iallreduce_sum_f64 ctx ~comm obj =
  let gc = gc_of ctx in
  Fcall.enter gc;
  Ot.validate gc obj;
  (match Om.array_elem_type gc obj with
  | Vm.Types.Eprim Vm.Types.R8 -> ()
  | _ ->
      raise (Ot.Transport_error "iallreduce_sum_f64: need a float64 array"));
  let local = Om.read_array_bytes gc obj in
  let view = whole_view ctx obj in
  let req, result =
    Coll.iallreduce ctx.World.proc comm ~op:Coll.sum_f64 local
  in
  (* The write-back goes through the view captured here, so the object
     must not move while the schedule is in flight — exactly what the
     conditional pin guarantees. The completion callback runs inside the
     progress pump, before any further GC poll, so the address is still
     the pinned one when the result lands. *)
  Pinning.for_nonblocking ctx.World.policy gc obj ~req;
  Mpi_core.Request.on_complete req (fun () -> Bv.write_all view result);
  Fcall.exit_poll gc;
  req

(* ------------------------------------------------------------------ *)
(* Managed one-sided windows                                           *)
(* ------------------------------------------------------------------ *)

module Rma = Mpi_core.Rma

type owin = {
  ow_win : Rma.win;
  ow_gc : Gc.t;
  ow_obj : Om.obj;
  mutable ow_pinned : bool; (* sticky pin owed an unpin at free *)
}

let owin_create ?eager_apply ctx ~comm obj =
  let gc = gc_of ctx in
  Fcall.call gc (fun () ->
      Ot.validate gc obj;
      let addr, len = Om.payload_region gc obj in
      let win =
        Rma.win_create ?eager_apply ~sub:(addr, len) ctx.World.proc ~comm
          (Vm.Heap.mem (Gc.heap gc))
      in
      let pinned =
        Pinning.for_window ctx.World.policy gc obj ~exposed:(fun () ->
            Rma.exposed win)
      in
      { ow_win = win; ow_gc = gc; ow_obj = obj; ow_pinned = pinned })

let owin_win ow = ow.ow_win
let owin_obj ow = ow.ow_obj

let owin_free ow =
  Fcall.call ow.ow_gc (fun () ->
      Rma.win_free ow.ow_win;
      if ow.ow_pinned then begin
        Gc.unpin ow.ow_gc ow.ow_obj;
        ow.ow_pinned <- false
      end)
