(** A Motor world: one VM instance per MPI rank, sharing a virtual clock.

    This is the top-level object an application creates — the analogue of
    launching N Motor processes with mpiexec. Each rank owns a managed
    heap, a collector and a device; all ranks share the channel and the
    clock. *)

module Comm = Mpi_core.Comm

type config = {
  policy : Pinning.policy;
  visited : Serializer.visited_strategy;
  arena_bytes : int;
  block_bytes : int;
}

val default_config : config
(** Deferred pinning, linear visited list (the paper's Motor), 32 MiB
    arenas with 256 KiB blocks. *)

type t

type rank_ctx = {
  world : t;
  proc : Mpi_core.Mpi.proc;
  rt : Vm.Runtime.t;
  pool : Buffer_pool.t;
  mutable policy : Pinning.policy;
  mutable visited : Serializer.visited_strategy;
}
(** Per-rank handle: the state System.MP operations run against. [policy]
    and [visited] default from the world config and are mutable for
    ablation experiments. *)

val create :
  ?channel:[ `Shm | `Sock | `Rdma ] ->
  ?cost:Simtime.Cost.t ->
  ?config:config ->
  ?fault:Mpi_core.Fault.plan ->
  ?detector:Mpi_core.Ft.detector ->
  n:int ->
  unit ->
  t
(** [fault] and [detector] pass through to {!Mpi_core.Mpi.create_world}:
    a plan with {!Mpi_core.Fault.kill} events (or an explicit detector)
    gives the world a process-failure service, and {!run} guards each
    rank's fiber so a kill tears that VM down fail-stop instead of
    aborting the run. *)

val env : t -> Simtime.Env.t
val mpi : t -> Mpi_core.Mpi.world
val size : t -> int
val rank_ctx : t -> int -> rank_ctx
val comm_world : t -> Comm.t

val run : t -> (rank_ctx -> unit) -> unit
(** Run one fiber per rank to completion. Bodies are wrapped in
    {!Mpi_core.Mpi.rank_guard}, so under a kill plan a victim's death is
    survivable by the other ranks. *)

val respawn_ctx : t -> int -> rank_ctx
(** A fresh VM instance (heap, collector, registry, buffer pool) for a
    rank restarted after a failure: the old context's heap died with the
    process, and the new incarnation's state comes from a checkpoint
    image (the [Checkpoint] store). Replaces the
    rank's context, so later {!rank_ctx} calls see the new one. Call
    after {!Mpi_core.Mpi.revive_rank} and before spawning the
    replacement fiber. *)

val rank : rank_ctx -> int
val gc : rank_ctx -> Vm.Gc.t
val registry : rank_ctx -> Vm.Classes.t

val spawn :
  rank_ctx ->
  n:int ->
  (rank_ctx -> Mpi_core.Dynamic.intercomm -> unit) ->
  Mpi_core.Dynamic.intercomm
(** Transparent process management (the paper's stated future work,
    Section 9): collectively spawn [n] new Motor ranks. Each child is
    provisioned with a full VM instance (heap, collector, registry, buffer
    pool) before its body runs, and is connected to the parents through an
    intercommunicator. Must be called by every member of the world
    communicator, from inside {!run}. *)
