(** System.MP internal calls for managed MIL programs.

    This is the last layer of the paper's architecture: a managed
    application, written in the portable assembly, calling message-passing
    internal calls that land in the runtime-resident MPI core (Figure 8's
    Recv / InternalCall Recv / MP_Recv chain). All operations run on the
    world communicator. *)

val load : World.rank_ctx -> ?entry:string -> string -> Vm.Interp.t
(** Assemble a MIL program against this rank's runtime, register the base
    system library and the [mp.*] internal calls, verify, and return the
    execution context — the one-stop way to run a managed MPI program. *)

val register : Vm.Interp.t -> World.rank_ctx -> unit
(** Registers, in addition to the base system library:
    - [mp.rank : -> int64], [mp.size : -> int64]
    - [mp.send : object -> int64 -> int64 -> void] (dst, tag)
    - [mp.recv : object -> int64 -> int64 -> void] (src, tag)
    - [mp.osend : object -> int64 -> int64 -> void]
    - [mp.orecv : int64 -> int64 -> object]
    - [mp.barrier : -> void]
    - [mp.bcast : object -> int64 -> void] (root)
    - [mp.allreduce.f64 : object -> void] (element-wise sum, in place)
    - [mp.oscatter : object -> int64 -> object] (root's array or null ->
      root -> this rank's sub-array)
    - [mp.ogather : object -> int64 -> object] (my array -> root ->
      combined array at the root, null elsewhere)

    All operations run on the binding's {e current} communicator, which
    starts as the world. The fault-tolerance calls (MIL has no exception
    unwinding, so failures surface as status codes):
    - [mp.tryallreduce.f64 : object -> int64] — 0 = ok, 1 = a peer died
      ([Proc_failed]), 2 = communicator revoked
    - [mp.trybarrier : -> int64] — same codes
    - [mp.revoke : -> void] — revoke the current communicator
    - [mp.shrink : -> void] — replace the current communicator with its
      shrunken (survivors-only) version; [mp.size] and every subsequent
      operation reflect it
    - [mp.agree : int64 -> int64] — fault-tolerant AND-agreement
    - [mp.failed : -> int64] — number of ranks declared dead *)
