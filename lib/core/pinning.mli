(** Motor's pinning policy (paper Sections 4.3 and 7.4).

    Pinning is only required when a collection might occur {e and} the
    object could move in it. Living inside the runtime, Motor can test
    both conditions:

    - An object outside the young generation has already been promoted;
      the elder generation is never compacted, so it cannot move: no pin.
    - For blocking operations on young objects the pin is {e deferred}
      until the operation actually enters its polling wait; most blocking
      operations complete on the first progress check and never pin,
      because without a wait there is no collection opportunity.
    - For non-blocking operations on young objects a {e conditional pin}
      request is registered with the collector, resolved during the mark
      phase against the request's completion status.

    The [Always_pin] and [Boundary_check] policies exist as ablation
    baselines ([Always_pin] is what the managed-wrapper bindings do). *)

type policy =
  | No_pin
      (** never pin — UNSAFE: a collection during a transfer moves the
          buffer and the transport writes through a stale address. Exists
          to demonstrate the failure pinning prevents. *)
  | Always_pin  (** pin for every operation (wrapper behaviour) *)
  | Boundary_check  (** skip the pin for elder-generation objects *)
  | Deferred  (** boundary check + pin only on entering the wait *)

val default : policy
(** [Deferred] — the full Motor policy. *)

val policy_name : policy -> string

type blocking_guard
(** Tracks what a blocking operation must undo. *)

val before_blocking : policy -> Vm.Gc.t -> Vm.Object_model.obj -> blocking_guard
val on_enter_wait : blocking_guard -> unit
(** Where the deferred pin actually happens. *)

val after_blocking : blocking_guard -> unit
(** Unpin if (and only if) a pin was taken. *)

val for_window :
  policy ->
  Vm.Gc.t ->
  Vm.Object_model.obj ->
  exposed:(unit -> bool) ->
  bool
(** Protect an RMA window's backing object for its whole exposure epoch
    (from [Rma.win_create] to [Rma.win_free]). Under [Deferred] a
    conditional pin polls [exposed] during each mark phase — the buffer
    cannot move while the window is exposed, and the pin evaporates at
    the first collection after the free. Returns [true] iff a sticky pin
    was taken ([Always_pin], or [Boundary_check] on a movable object);
    the caller must then [Vm.Gc.unpin] once the window is freed. *)

val for_nonblocking :
  policy ->
  Vm.Gc.t ->
  Vm.Object_model.obj ->
  req:Mpi_core.Request.t ->
  unit
(** Protect a non-blocking operation's buffer. Under [Deferred] this is
    the conditional-pin mechanism; under [Always_pin] a sticky pin is
    taken and released when the request completes (the "test and release"
    alternative the paper rejects as requiring extra machinery).

    [req] may equally be a generalized collective request (kind
    [Coll_req], backing the [i*] collectives): the mark phase polls it
    through [still_active] exactly like a point-to-point request, so a
    buffer woven into an in-flight schedule stays put until every
    schedule step is done. *)
