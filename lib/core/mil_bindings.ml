module Il = Vm.Il
module Om = Vm.Object_model
module Gc = Vm.Gc
module Types = Vm.Types

let i64 = Types.Prim Types.I8

let as_int = function
  | Il.V_int v -> Int64.to_int v
  | Il.V_float _ | Il.V_ref _ ->
      raise (Vm.Interp.Runtime_error "mp: expected integer argument")

let register interp ctx =
  let gc = World.gc ctx in
  let obj_ty = Types.Ref (Vm.Classes.object_class (Gc.registry gc)).Vm.Classes.c_id in
  (* The communicator every mp.* operation runs on. Starts as the world;
     [mp.shrink] replaces it after a failure, so a managed program that
     recovers simply keeps calling the same operations — they continue on
     the shrunken communicator. *)
  let cur = ref (System_mp.comm_world ctx) in
  let reg name sg impl = Vm.Interp.register_intcall interp name sg impl in
  let with_obj v f =
    match v with
    | Il.V_ref a when a <> Vm.Heap.null ->
        let h = Gc.Handle.alloc gc a in
        Fun.protect ~finally:(fun () -> Gc.Handle.free gc h) (fun () -> f h)
    | Il.V_ref _ ->
        raise (Vm.Interp.Runtime_error "mp: null object argument")
    | Il.V_int _ | Il.V_float _ ->
        raise (Vm.Interp.Runtime_error "mp: expected object argument")
  in
  reg "mp.rank" ([], Some i64) (fun _ ->
      Some (Il.V_int (Int64.of_int (World.rank ctx))));
  reg "mp.size" ([], Some i64) (fun _ ->
      Some (Il.V_int (Int64.of_int (Mpi_core.Comm.size !cur))));
  reg "mp.send" ([ obj_ty; i64; i64 ], None) (fun args ->
      with_obj args.(0) (fun obj ->
          Object_transport.send ctx ~comm:!cur ~dst:(as_int args.(1))
            ~tag:(as_int args.(2)) obj);
      None);
  reg "mp.recv" ([ obj_ty; i64; i64 ], None) (fun args ->
      with_obj args.(0) (fun obj ->
          ignore
            (Object_transport.recv ctx ~comm:!cur ~src:(as_int args.(1))
               ~tag:(as_int args.(2)) obj));
      None);
  reg "mp.osend" ([ obj_ty; i64; i64 ], None) (fun args ->
      with_obj args.(0) (fun obj ->
          System_mp.osend ctx ~comm:!cur ~dst:(as_int args.(1))
            ~tag:(as_int args.(2)) obj);
      None);
  reg "mp.orecv" ([ i64; i64 ], Some obj_ty) (fun args ->
      let obj, _st =
        System_mp.orecv ctx ~comm:!cur ~src:(as_int args.(0))
          ~tag:(as_int args.(1))
      in
      let addr = Om.addr_of gc obj in
      Om.free gc obj;
      Some (Il.V_ref addr));
  reg "mp.barrier" ([], None) (fun _ ->
      System_mp.barrier ctx !cur;
      None);
  reg "mp.bcast" ([ obj_ty; i64 ], None) (fun args ->
      with_obj args.(0) (fun obj ->
          System_mp.bcast ctx ~comm:!cur ~root:(as_int args.(1)) obj);
      None);
  reg "mp.allreduce.f64" ([ obj_ty ], None) (fun args ->
      with_obj args.(0) (fun obj ->
          System_mp.allreduce_sum_f64 ctx ~comm:!cur obj);
      None);
  (* Fault tolerance: failures surface as status codes, not exceptions —
     MIL has no unwinding, so the try-variants catch the OCaml exception
     at the gate and let the managed program branch on the result. *)
  let code_of_exn = function
    | Mpi_core.Ft.Proc_failed _ -> 1L
    | Mpi_core.Ft.Revoked _ -> 2L
    | e -> raise e
  in
  reg "mp.tryallreduce.f64" ([ obj_ty ], Some i64) (fun args ->
      with_obj args.(0) (fun obj ->
          match System_mp.allreduce_sum_f64 ctx ~comm:!cur obj with
          | () -> Some (Il.V_int 0L)
          | exception e -> Some (Il.V_int (code_of_exn e))));
  reg "mp.trybarrier" ([], Some i64) (fun _ ->
      match System_mp.barrier ctx !cur with
      | () -> Some (Il.V_int 0L)
      | exception e -> Some (Il.V_int (code_of_exn e)));
  reg "mp.agree" ([ i64 ], Some i64) (fun args ->
      let v =
        System_mp.comm_agree ctx ~comm:!cur ~value:(as_int args.(0))
      in
      Some (Il.V_int (Int64.of_int v)));
  reg "mp.revoke" ([], None) (fun _ ->
      System_mp.comm_revoke ctx !cur;
      None);
  reg "mp.shrink" ([], None) (fun _ ->
      cur := System_mp.comm_shrink ctx !cur;
      None);
  reg "mp.failed" ([], Some i64) (fun _ ->
      Some (Il.V_int (Int64.of_int (List.length (System_mp.failed_ranks ctx)))));
  (* OO collectives: the root passes its array, the rest pass null. *)
  let opt_obj v f =
    match v with
    | Il.V_ref a when a <> Vm.Heap.null ->
        let h = Gc.Handle.alloc gc a in
        Fun.protect
          ~finally:(fun () -> Gc.Handle.free gc h)
          (fun () -> f (Some h))
    | Il.V_ref _ -> f None
    | Il.V_int _ | Il.V_float _ ->
        raise (Vm.Interp.Runtime_error "mp: expected object argument")
  in
  let return_obj obj =
    let addr = Om.addr_of gc obj in
    Om.free gc obj;
    Some (Il.V_ref addr)
  in
  reg "mp.oscatter" ([ obj_ty; i64 ], Some obj_ty) (fun args ->
      opt_obj args.(0) (fun input ->
          return_obj
            (System_mp.oscatter ctx ~comm:!cur ~root:(as_int args.(1)) input)));
  reg "mp.ogather" ([ obj_ty; i64 ], Some obj_ty) (fun args ->
      with_obj args.(0) (fun obj ->
          match System_mp.ogather ctx ~comm:!cur ~root:(as_int args.(1)) obj with
          | Some combined -> return_obj combined
          | None -> Some (Il.V_ref Vm.Heap.null)))

let load ctx ?entry src =
  let interp = Vm.Runtime.load ctx.World.rt ?entry ~verify:false src in
  register interp ctx;
  Vm.Interp.verify interp;
  interp
