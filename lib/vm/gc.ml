module Key = Simtime.Stats.Key

exception Null_reference

type conditional_pin = {
  cp_handle : int;
  cp_still_active : unit -> bool;
}

type pending = No_gc | Minor_gc | Full_gc

type t = {
  heap : Heap.t;
  registry : Classes.t;
  env : Simtime.Env.t;
  (* Handle table: slots.(i) holds an address; free slots form a list. *)
  mutable slots : int array;
  mutable free_handles : int list;
  mutable next_handle : int;
  (* Roots. *)
  scanners : (int, (Heap.addr -> Heap.addr) -> unit) Hashtbl.t;
  mutable next_scanner : int;
  remembered : (Heap.addr, unit) Hashtbl.t;  (* elder slots -> young *)
  (* Pins. *)
  sticky_pins : (int, int) Hashtbl.t;  (* handle index -> pin count *)
  mutable conditional_pins : conditional_pin list;
  (* State. *)
  mutable pending : pending;
  mutable minor_count : int;
  mutable full_count : int;
  mutable in_gc : bool;
  mutable post_gc_hooks : (unit -> unit) list;
}

module Handle = struct
  type gc = t
  type t = int

  let alloc (gc : gc) addr =
    match gc.free_handles with
    | i :: rest ->
        gc.free_handles <- rest;
        gc.slots.(i) <- addr;
        i
    | [] ->
        let i = gc.next_handle in
        if i >= Array.length gc.slots then begin
          let bigger = Array.make (2 * Array.length gc.slots) 0 in
          Array.blit gc.slots 0 bigger 0 (Array.length gc.slots);
          gc.slots <- bigger
        end;
        gc.next_handle <- i + 1;
        gc.slots.(i) <- addr;
        i

  (* Freed slots hold this sentinel so double frees and use-after-free
     fail fast instead of silently aliasing another object. *)
  let freed_sentinel = -1

  let free (gc : gc) i =
    if gc.slots.(i) = freed_sentinel then
      invalid_arg "Gc.Handle.free: handle already freed";
    gc.slots.(i) <- freed_sentinel;
    Hashtbl.remove gc.sticky_pins i;
    gc.free_handles <- i :: gc.free_handles

  let get (gc : gc) i =
    let a = gc.slots.(i) in
    if a = freed_sentinel then
      invalid_arg "Gc.Handle.get: use after free";
    a

  let set (gc : gc) i addr =
    if gc.slots.(i) = freed_sentinel then
      invalid_arg "Gc.Handle.set: use after free";
    gc.slots.(i) <- addr

  let is_null (gc : gc) i = get gc i = Heap.null
  let equal (a : t) (b : t) = a = b
end

let create heap registry =
  {
    heap;
    registry;
    env = Heap.env heap;
    slots = Array.make 256 0;
    free_handles = [];
    next_handle = 0;
    scanners = Hashtbl.create 8;
    next_scanner = 0;
    remembered = Hashtbl.create 64;
    sticky_pins = Hashtbl.create 16;
    conditional_pins = [];
    pending = No_gc;
    minor_count = 0;
    full_count = 0;
    in_gc = false;
    post_gc_hooks = [];
  }

let heap t = t.heap
let registry t = t.registry

type scanner_id = int

let add_scanner t scan =
  let id = t.next_scanner in
  t.next_scanner <- id + 1;
  Hashtbl.replace t.scanners id scan;
  id

let remove_scanner t id = Hashtbl.remove t.scanners id

let record_write t ~container ~value ~slot =
  if
    value <> Heap.null
    && Heap.in_young t.heap value
    && not (Heap.in_young t.heap container)
  then Hashtbl.replace t.remembered slot ()

let pin t h =
  let n = try Hashtbl.find t.sticky_pins h with Not_found -> 0 in
  Hashtbl.replace t.sticky_pins h (n + 1);
  let a = t.slots.(h) in
  if a > Heap.null then Heap.set_pinned_flag t.heap a true;
  Simtime.Env.count t.env Key.pins;
  Simtime.Env.charge t.env t.env.cost.pin_ns

let unpin t h =
  match Hashtbl.find_opt t.sticky_pins h with
  | None -> invalid_arg "Gc.unpin: object is not pinned"
  | Some 1 ->
      Hashtbl.remove t.sticky_pins h;
      let a = t.slots.(h) in
      if a > Heap.null then Heap.set_pinned_flag t.heap a false;
      Simtime.Env.count t.env Key.unpins;
      Simtime.Env.charge t.env t.env.cost.unpin_ns
  | Some n ->
      Hashtbl.replace t.sticky_pins h (n - 1);
      Simtime.Env.count t.env Key.unpins;
      Simtime.Env.charge t.env t.env.cost.unpin_ns

let add_conditional_pin t h ~still_active =
  t.conditional_pins <-
    { cp_handle = h; cp_still_active = still_active } :: t.conditional_pins;
  Simtime.Env.count t.env Key.conditional_pins

let conditional_pin_count t = List.length t.conditional_pins
let pinned_count t = Hashtbl.length t.sticky_pins
let minor_count t = t.minor_count
let full_count t = t.full_count

let method_table_of t addr =
  if addr = Heap.null then raise Null_reference;
  Classes.find t.registry (Heap.mt_id t.heap addr)

(* Reference-slot layout (must agree with Object_model):
   - class instance: slots at [data + ref_offset]
   - 1-D ref array:  length int32 at data, slots from data+4
   - MD ref array:   rank int32s of dims from data, slots after dims *)
let iter_ref_slots t addr f =
  let h = t.heap in
  let mt = method_table_of t addr in
  let data = Heap.data_of addr in
  match mt.Classes.c_kind with
  | Classes.K_class ->
      Array.iter (fun off -> f (data + off)) mt.Classes.c_ref_offsets
  | Classes.K_array elem ->
      if Types.elem_is_ref elem then begin
        let len = Heap.get_i32 h data in
        for i = 0 to len - 1 do
          f (data + 4 + (Types.ref_size * i))
        done
      end
  | Classes.K_md_array (elem, rank) ->
      if Types.elem_is_ref elem then begin
        let n = ref 1 in
        for d = 0 to rank - 1 do
          n := !n * Heap.get_i32 h (data + (4 * d))
        done;
        let base = data + (4 * rank) in
        for i = 0 to !n - 1 do
          f (base + (Types.ref_size * i))
        done
      end

(* ------------------------------------------------------------------ *)
(* Collection                                                          *)
(* ------------------------------------------------------------------ *)

(* Resolve conditional pin requests: the paper's mark-phase policy. Requests
   whose operation is still in flight pin their object for this cycle;
   completed ones are dropped for good. Returns the set of addresses pinned
   for this cycle (sticky pins included). *)
let resolve_pins t =
  let cycle = Hashtbl.create 16 in
  Hashtbl.iter
    (fun h _count ->
      let a = t.slots.(h) in
      if a > Heap.null then Hashtbl.replace cycle a ())
    t.sticky_pins;
  let still =
    List.filter
      (fun cp ->
        Simtime.Env.charge t.env t.env.cost.gc_pin_status_check_ns;
        if cp.cp_still_active () then begin
          let a = t.slots.(cp.cp_handle) in
          if a > Heap.null then Hashtbl.replace cycle a ();
          true
        end
        else begin
          Simtime.Env.count t.env Key.conditional_pins_dropped;
          false
        end)
      t.conditional_pins
  in
  t.conditional_pins <- still;
  cycle

let rec collect t ~full =
  if t.in_gc then invalid_arg "Gc.collect: re-entrant collection";
  t.in_gc <- true;
  Simtime.Env.with_timer t.env
    (if full then Key.h_gc_full_pause else Key.h_gc_young_pause)
    (fun () ->
      Simtime.Probe.with_span t.env ~rank:(-1) ~cat:"gc"
        ~name:(if full then "gc/full" else "gc/young")
        (fun () -> collect_timed t ~full));
  t.in_gc <- false;
  List.iter (fun hook -> hook ()) t.post_gc_hooks

(* The collection proper: everything inside the pause histogram and the
   "gc" span. Post-GC hooks run outside (they may start new work whose
   cost is not part of the pause). *)
and collect_timed t ~full =
  let h = t.heap in
  let cost = t.env.Simtime.Env.cost in
  Simtime.Env.charge t.env
    (if full then cost.gc_full_base_ns else cost.gc_young_base_ns);
  (* Mark phase (full collections): trace everything reachable, recording
     elder slots that point into the young generation so the evacuation can
     update them. The conditional pin requests are resolved here, "during
     the mark phase", exactly as Section 7.4 describes. *)
  let cycle_pins =
    Simtime.Env.with_timer t.env Key.h_gc_pin_poll (fun () -> resolve_pins t)
  in
  let in_young a = a <> Heap.null && Heap.in_young h a in
  let young_refs = ref [] in
  let marked = ref 0 in
  if full then begin
    let stack = Stack.create () in
    let mark_root a = if a <> Heap.null && not (Heap.is_marked h a) then begin
        Heap.set_marked h a true;
        Stack.push a stack
      end
    in
    Hashtbl.iter (fun a () -> mark_root a) cycle_pins;
    Array.iteri
      (fun i a -> if i < t.next_handle && a > Heap.null then mark_root a)
      t.slots;
    Hashtbl.iter
      (fun _ scan ->
        scan (fun a ->
            mark_root a;
            a))
      t.scanners;
    while not (Stack.is_empty stack) do
      let a = Stack.pop stack in
      incr marked;
      Simtime.Env.charge t.env cost.gc_mark_ns_per_obj;
      iter_ref_slots t a (fun slot ->
          let v = Heap.get_ref h slot in
          if v <> Heap.null then begin
            if in_young v && not (in_young a) then
              young_refs := slot :: !young_refs;
            if not (Heap.is_marked h v) then begin
              Heap.set_marked h v true;
              Stack.push v stack
            end
          end)
    done;
    Simtime.Env.count_n t.env Key.gc_objects_marked !marked
  end;
  (* Evacuation of the young generation. *)
  let promoted_in_place = Hashtbl.create 16 in
  let has_young_pins =
    Hashtbl.fold (fun a () acc -> acc || in_young a) cycle_pins false
  in
  (* Capture the old young extent, then (if pinned) promote the block. *)
  let young_lo = ref 0 in
  let young_hi = ref 0 in
  Heap.iter_young h (fun a ->
      if !young_lo = 0 then young_lo := a;
      young_hi := a + Heap.size_of h a);
  let in_old_young a = a >= !young_lo && a < !young_hi && !young_lo <> 0 in
  if has_young_pins then begin
    Heap.promote_young_block h;
    Simtime.Env.count t.env Key.young_blocks_promoted
  end;
  let scan_queue = Queue.create () in
  let visit a =
    if a = Heap.null then Heap.null
    else if not (in_old_young a) then a
    else if Heap.is_forwarded h a then Heap.forward_of h a
    else if Hashtbl.mem cycle_pins a then begin
      (* Pinned: promoted in place by the block reassignment above. *)
      if not (Hashtbl.mem promoted_in_place a) then begin
        Hashtbl.replace promoted_in_place a ();
        Queue.push a scan_queue
      end;
      a
    end
    else begin
      (* Copy to the elder generation (promotion on first survival). *)
      let size = Heap.size_of h a in
      let data_bytes = size - Heap.header_bytes in
      match Heap.try_alloc_elder h ~mt:(Heap.mt_id h a) ~data_bytes with
      | None -> raise Heap.Out_of_memory
      | Some dst ->
          Heap.blit_within h
            ~src:(Heap.data_of a)
            ~dst:(Heap.data_of dst)
            ~len:data_bytes;
          Heap.set_marked h dst (Heap.is_marked h a);
          Heap.set_forward h a dst;
          Simtime.Env.count_n t.env Key.gc_bytes_copied size;
          Simtime.Env.charge t.env
            (cost.gc_copy_ns_per_byte *. float_of_int size);
          Queue.push dst scan_queue;
          dst
    end
  in
  (* Roots: handles, scanners, remembered set (minor) or the young-pointing
     slots discovered during marking (full), and the cycle pins. *)
  for i = 0 to t.next_handle - 1 do
    (* Skip null and the freed-handle sentinel. *)
    if t.slots.(i) > Heap.null then t.slots.(i) <- visit t.slots.(i)
  done;
  Hashtbl.iter (fun _ scan -> scan visit) t.scanners;
  let update_slot slot =
    let v = Heap.get_ref h slot in
    if in_old_young v then Heap.set_ref_raw h slot (visit v)
  in
  if full then List.iter update_slot !young_refs
  else Hashtbl.iter (fun slot () -> update_slot slot) t.remembered;
  Hashtbl.iter (fun a () -> ignore (visit a)) cycle_pins;
  (* Transitive scan: update young references inside every evacuated or
     promoted-in-place object. *)
  while not (Queue.is_empty scan_queue) do
    let a = Queue.pop scan_queue in
    iter_ref_slots t a (fun slot ->
        let v = Heap.get_ref h slot in
        if in_old_young v then Heap.set_ref_raw h slot (visit v))
  done;
  (* Retire the old young block. *)
  if has_young_pins then begin
    (* Scrub the promoted block: forwarded corpses and dead objects become
       free chunks; pinned survivors stay in place. *)
    let p = ref !young_lo in
    while !young_lo <> 0 && !p < !young_hi do
      let a = !p in
      let size = Heap.size_of h a in
      p := a + size;
      if
        (not (Heap.is_free_chunk h a))
        && (Heap.is_forwarded h a || not (Hashtbl.mem promoted_in_place a))
      then Heap.free_object h a
    done
  end
  else Heap.reset_young h;
  Hashtbl.reset t.remembered;
  (* Sweep the elder generation (full collections only; never compacts). *)
  if full then begin
    let swept = ref 0 in
    ignore
      (Heap.sweep_elder h ~keep:(fun a ->
           incr swept;
           Simtime.Env.charge t.env cost.gc_sweep_ns_per_obj;
           Heap.is_marked h a));
    Heap.iter_elder h (fun a -> Heap.set_marked h a false)
  end;
  if full then begin
    t.full_count <- t.full_count + 1;
    Simtime.Env.count t.env Key.gc_full
  end
  else begin
    t.minor_count <- t.minor_count + 1;
    Simtime.Env.count t.env Key.gc_young
  end

let request_gc ?(full = false) t =
  t.pending <-
    (match (t.pending, full) with
    | Full_gc, _ | _, true -> Full_gc
    | _, false -> Minor_gc)

let gc_pending t = t.pending <> No_gc

let poll t =
  Simtime.Env.charge t.env t.env.Simtime.Env.cost.gc_safepoint_poll_ns;
  Simtime.Env.count t.env Key.safepoint_polls;
  match t.pending with
  | No_gc -> ()
  | Minor_gc ->
      t.pending <- No_gc;
      collect t ~full:false
  | Full_gc ->
      t.pending <- No_gc;
      collect t ~full:true

let alloc t ~mt ~data_bytes =
  let h = t.heap in
  let cost = t.env.Simtime.Env.cost in
  Simtime.Env.charge t.env
    (cost.alloc_obj_ns +. (cost.alloc_ns_per_byte *. float_of_int data_bytes));
  let total = Heap.total_size_for ~data_bytes in
  let mt_id = mt.Classes.c_id in
  if total > Heap.block_bytes h / 2 then begin
    match Heap.try_alloc_elder h ~mt:mt_id ~data_bytes with
    | Some a -> a
    | None -> (
        collect t ~full:true;
        match Heap.try_alloc_elder h ~mt:mt_id ~data_bytes with
        | Some a -> a
        | None -> raise Heap.Out_of_memory)
  end
  else begin
    match Heap.try_alloc_young h ~mt:mt_id ~data_bytes with
    | Some a -> a
    | None -> (
        collect t ~full:false;
        match Heap.try_alloc_young h ~mt:mt_id ~data_bytes with
        | Some a -> a
        | None -> (
            collect t ~full:true;
            match Heap.try_alloc_young h ~mt:mt_id ~data_bytes with
            | Some a -> a
            | None -> raise Heap.Out_of_memory))
  end

let add_post_gc_hook t hook = t.post_gc_hooks <- hook :: t.post_gc_hooks
let collection_epoch t = t.minor_count + t.full_count

let live_objects t =
  let n = ref 0 in
  Heap.iter_young t.heap (fun _ -> incr n);
  Heap.iter_elder t.heap (fun _ -> incr n);
  !n
