open Effect
open Effect.Deep

type _ Effect.t +=
  | Yield : unit Effect.t
  | Wait : ((unit -> bool) * string) -> unit Effect.t
  | Spawn : (string * (unit -> unit)) -> unit Effect.t

(* ------------------------------------------------------------------ *)
(* Decision traces                                                     *)
(* ------------------------------------------------------------------ *)

type trace = { mutable tr_buf : int array; mutable tr_len : int }

let new_trace () = { tr_buf = Array.make 64 0; tr_len = 0 }

let trace_of_list l =
  let a = Array.of_list l in
  { tr_buf = a; tr_len = Array.length a }

let trace_to_list t = Array.to_list (Array.sub t.tr_buf 0 t.tr_len)
let trace_length t = t.tr_len

let trace_push t d =
  if t.tr_len = Array.length t.tr_buf then begin
    let bigger = Array.make (max 64 (2 * t.tr_len)) 0 in
    Array.blit t.tr_buf 0 bigger 0 t.tr_len;
    t.tr_buf <- bigger
  end;
  t.tr_buf.(t.tr_len) <- d;
  t.tr_len <- t.tr_len + 1

(* ------------------------------------------------------------------ *)
(* Scheduling policies                                                 *)
(* ------------------------------------------------------------------ *)

type policy = Round_robin | Seeded_random of int | Replay of trace

let policy_name = function
  | Round_robin -> "round-robin"
  | Seeded_random seed -> Printf.sprintf "seeded-random(seed=%d)" seed
  | Replay t -> Printf.sprintf "replay(%d decisions)" t.tr_len

(* splitmix64, as in Fault.draw: a seed fully determines the decision
   stream, so a seeded run is exactly reproducible. *)
let mix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* A driver owns the mutable policy state (RNG position, replay cursor,
   recording buffer). One driver may span several nested [run]s — the
   scoped form installed by [with_policy] — so a recorded trace replays
   across the same nesting structure decision for decision. *)
type driver = {
  d_policy : policy;
  mutable d_rng : int64;
  d_record : trace option;
  mutable d_cursor : int;
}

let make_driver ?record policy =
  {
    d_policy = policy;
    d_rng =
      (match policy with
      | Seeded_random seed -> mix64 (Int64.of_int (seed + 0x5eed))
      | _ -> 0L);
    d_record = record;
    d_cursor = 0;
  }

(* Pick the next fiber among [n] runnable ones (slot 0 is the head of
   the FIFO, i.e. what strict round-robin runs next). Every decision is
   recorded when recording is on — forced decisions (n = 1) included, so
   a trace replays with a plain cursor and no lookahead. *)
let decide d n =
  let choice =
    match d.d_policy with
    | Round_robin -> 0
    | Seeded_random _ ->
        if n <= 1 then 0
        else begin
          d.d_rng <- Int64.add d.d_rng 0x9e3779b97f4a7c15L;
          (Int64.to_int (mix64 d.d_rng) land max_int) mod n
        end
    | Replay t ->
        let c = if d.d_cursor < t.tr_len then t.tr_buf.(d.d_cursor) else 0 in
        d.d_cursor <- d.d_cursor + 1;
        (* A shrunk trace may carry indices wider than the live run
           queue (earlier edits change queue sizes downstream); clamp
           instead of failing so every mutated trace stays replayable. *)
        if c <= 0 || n <= 1 then 0 else c mod n
  in
  (match d.d_record with Some t -> trace_push t choice | None -> ());
  choice

(* Scoped default policy: [run]s that don't pass ~policy pick it up.
   Domain-local: each domain of a parallel run owns an independent
   scheduler, and the explorer's ambient driver must never leak into a
   spawned domain. *)
let ambient_key : driver option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let get_ambient () = Domain.DLS.get ambient_key
let set_ambient d = Domain.DLS.set ambient_key d

let with_policy ?record policy f =
  let saved = get_ambient () in
  set_ambient (Some (make_driver ?record policy));
  Fun.protect ~finally:(fun () -> set_ambient saved) f

exception
  Deadlock of {
    policy : string;
    waiting : string list;
    pending : string list;
  }

(* Diagnostics dumps: subsystems (the MPI device layer) register a
   closure describing their pending operations; the deadlock report
   concatenates them so a hang names the requests that never completed
   (rank, kind, peer, tag, failure reason), not just the blocked wait
   labels. Registrations are capped to the most recent few — worlds are
   created per run and never unregister; a quiesced stale world
   contributes nothing but must not accumulate without bound. The list
   lives in an [Atomic] because worlds may be created while another
   domain is running (e.g. a bench fixture built during a parallel
   sweep); dumps themselves are only invoked at deadlock declaration,
   when every fiber is provably parked. *)
let max_dumps = 8
let dumps : (unit -> string list) list Atomic.t = Atomic.make []

let register_deadlock_dump f =
  let rec retry () =
    let cur = Atomic.get dumps in
    let next =
      f
      :: (if List.length cur >= max_dumps
          then List.filteri (fun i _ -> i < max_dumps - 1) cur
          else cur)
    in
    if not (Atomic.compare_and_set dumps cur next) then retry ()
  in
  retry ()

let pending_dump () =
  List.concat_map (fun f -> try f () with _ -> []) (List.rev (Atomic.get dumps))

type blocked = {
  pred : unit -> bool;
  wlabel : string;
  resume : unit -> unit;
}

(* The run queue is an indexable FIFO vector: round-robin takes slot 0
   (exactly the old Queue semantics), the random and replay policies take
   an arbitrary slot. Runnable counts are small (one per rank), so the
   O(n) shift on removal is noise. *)
type sched = {
  mutable runv : (unit -> unit) array;
  mutable runn : int;
  mutable blocked : blocked list;
  mutable activity : int;
  driver : driver;
}

let nop () = ()

let push sched thunk =
  if sched.runn = Array.length sched.runv then begin
    let bigger = Array.make (max 8 (2 * sched.runn)) nop in
    Array.blit sched.runv 0 bigger 0 sched.runn;
    sched.runv <- bigger
  end;
  sched.runv.(sched.runn) <- thunk;
  sched.runn <- sched.runn + 1

let take sched i =
  let t = sched.runv.(i) in
  Array.blit sched.runv (i + 1) sched.runv i (sched.runn - i - 1);
  sched.runn <- sched.runn - 1;
  sched.runv.(sched.runn) <- nop;
  t

(* Stack of active schedulers: runs may nest, and each domain of a
   parallel run carries its own stack. *)
let stack_key : sched list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let in_scheduler () = Domain.DLS.get stack_key <> []

(* ------------------------------------------------------------------ *)
(* Parallel execution mode                                             *)
(* ------------------------------------------------------------------ *)

type mode = Cooperative | Parallel of { domains : int; place : int -> int }

(* Per-domain parking state. [pd_wake] counts wakeups delivered to this
   domain (cross-domain sends targeting one of its fibers); it is the
   condition-variable predicate, so a wakeup sent before the domain
   parks is never lost. [pd_wait_mark] is the wake count the domain
   decided to sleep on — a deadlock declarer uses it to verify that a
   parked peer has no undelivered wakeup in flight. *)
type pdomain = {
  pd_mu : Mutex.t;
  pd_cv : Condition.t;
  mutable pd_wake : int; (* guarded by pd_mu *)
  mutable pd_wait_mark : int option; (* guarded by pd_mu *)
  mutable pd_done : bool; (* guarded by pd_mu *)
}

type prun = {
  pr_place : int -> int; (* fiber index -> domain slot *)
  pr_doms : pdomain array;
  pr_activity : int Atomic.t; (* global progress stamp *)
  pr_parked : int Atomic.t; (* domains currently parked *)
  pr_live : int Atomic.t; (* domains not yet finished *)
  pr_poison : exn option Atomic.t; (* first escaping exception *)
}

(* At most one parallel run at a time (they own real domains); the
   channel layer reads this to route wakeups to the receiving domain. *)
let current_prun : prun option Atomic.t = Atomic.make None

let parallel_active () = Option.is_some (Atomic.get current_prun)

let note_activity () =
  (match Atomic.get current_prun with
  | Some pr -> Atomic.incr pr.pr_activity
  | None -> ());
  match Domain.DLS.get stack_key with
  | s :: _ -> s.activity <- s.activity + 1
  | [] -> ()

let wake_domain pd =
  Mutex.lock pd.pd_mu;
  pd.pd_wake <- pd.pd_wake + 1;
  Condition.signal pd.pd_cv;
  Mutex.unlock pd.pd_mu

let notify_fiber i =
  match Atomic.get current_prun with
  | None -> ()
  | Some pr ->
      Atomic.incr pr.pr_activity;
      let d = pr.pr_place i in
      if d >= 0 && d < Array.length pr.pr_doms then wake_domain pr.pr_doms.(d)

let poison pr exn =
  ignore (Atomic.compare_and_set pr.pr_poison None (Some exn));
  Array.iter wake_domain pr.pr_doms

let poisoned pr = Option.is_some (Atomic.get pr.pr_poison)

let yield () = perform Yield
let wait_until ?(label = "wait") pred = perform (Wait (pred, label))
let spawn label f = perform (Spawn (label, f))

let rec exec sched label body =
  match_with body ()
    {
      retc = (fun () -> ());
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              Some
                (fun (k : (a, _) continuation) ->
                  push sched (fun () -> continue k ()))
          | Wait (pred, wlabel) ->
              Some
                (fun (k : (a, _) continuation) ->
                  if pred () then continue k ()
                  else
                    let b =
                      {
                        pred;
                        wlabel = label ^ "/" ^ wlabel;
                        resume = (fun () -> continue k ());
                      }
                    in
                    sched.blocked <- b :: sched.blocked)
          | Spawn (l, f) ->
              Some
                (fun (k : (a, _) continuation) ->
                  push sched (fun () -> exec sched l f);
                  continue k ())
          | _ -> None);
    }

(* One pass over the blocked list, oldest first (exactly the cooperative
   loop's order): woken fibers move to the run queue. Returns whether
   anyone woke. *)
let scan_blocked sched =
  let woken, still =
    List.partition (fun b -> b.pred ()) (List.rev sched.blocked)
  in
  sched.blocked <- List.rev still;
  List.iter (fun b -> push sched b.resume) woken;
  woken <> []

(* ------------------------------------------------------------------ *)
(* Cooperative (deterministic) main loop                               *)
(* ------------------------------------------------------------------ *)

(* Drain the run queue (the policy picks which runnable fiber goes
   next); when empty, re-test blocked predicates. Deadlock is declared
   only when a full scan wakes nobody and no subsystem reported
   activity, so multi-step progress (e.g. one packet per poll) is never
   mistaken for a hang — under any policy. *)
let run_cooperative ?policy ?record fibers =
  let driver =
    match policy with
    | Some p -> make_driver ?record p
    | None -> (
        match get_ambient () with
        | Some d -> d
        | None -> make_driver ?record Round_robin)
  in
  let sched =
    { runv = Array.make 8 nop; runn = 0; blocked = []; activity = 0; driver }
  in
  List.iter
    (fun (label, f) -> push sched (fun () -> exec sched label f))
    fibers;
  let saved = Domain.DLS.get stack_key in
  Domain.DLS.set stack_key (sched :: saved);
  let finish () = Domain.DLS.set stack_key saved in
  let rec loop () =
    if sched.runn > 0 then begin
      let thunk = take sched (decide driver sched.runn) in
      thunk ();
      loop ()
    end
    else if sched.blocked <> [] then begin
      let activity_before = sched.activity in
      if scan_blocked sched then loop ()
      else if sched.activity = activity_before then
        raise
          (Deadlock
             {
               policy = policy_name driver.d_policy;
               waiting = List.map (fun b -> b.wlabel) sched.blocked;
               pending = pending_dump ();
             })
      else loop ()
    end
  in
  match loop () with
  | () -> finish ()
  | exception e ->
      finish ();
      raise e

(* ------------------------------------------------------------------ *)
(* Parallel main loop                                                  *)
(* ------------------------------------------------------------------ *)

(* Each domain runs a plain round-robin cooperative scheduler over its
   own fiber group; cross-domain interaction happens only through
   whatever shared structures the fibers use (the sharded channel), plus
   the wakeup protocol above. When a domain finds nothing runnable and a
   predicate scan makes no local progress, it parks on its condition
   variable — but first it snapshots its wake counter and re-scans, so a
   send that lands between the scan and the sleep is never lost.

   Deadlock is declared distributedly: the last domain to park checks
   that every other live domain is asleep with no undelivered wakeup
   ([pd_wait_mark] = [pd_wake]) and that the global activity stamp did
   not move across the whole check. Only then can no message be in
   flight anywhere, so the hang is real; the declarer poisons the run
   with a [Deadlock] carrying its own blocked labels and wakes everyone
   up to unwind. *)
let run_domain pr d fibers =
  let pd = pr.pr_doms.(d) in
  let driver = make_driver Round_robin in
  let sched =
    { runv = Array.make 8 nop; runn = 0; blocked = []; activity = 0; driver }
  in
  List.iter
    (fun (label, f) -> push sched (fun () -> exec sched label f))
    fibers;
  let saved = Domain.DLS.get stack_key in
  Domain.DLS.set stack_key (sched :: saved);
  let finish () =
    Domain.DLS.set stack_key saved;
    Mutex.lock pd.pd_mu;
    pd.pd_done <- true;
    Mutex.unlock pd.pd_mu;
    ignore (Atomic.fetch_and_add pr.pr_live (-1));
    (* A peer may be parked waiting for parked = live to re-evaluate. *)
    Array.iter wake_domain pr.pr_doms
  in
  let declare_deadlock g0 =
    (* Candidate: we are the last domain to park and nothing global has
       happened since stamp [g0]. Confirm that every other live domain
       is committed to sleep with no pending wakeup; then no fiber can
       run and no message is in flight, so the hang is real. *)
    let confirmed = ref (Atomic.get pr.pr_activity = g0) in
    Array.iteri
      (fun i pd' ->
        if !confirmed && i <> d then begin
          Mutex.lock pd'.pd_mu;
          (if not pd'.pd_done then
             match pd'.pd_wait_mark with
             | Some m when m = pd'.pd_wake -> ()
             | _ -> confirmed := false);
          Mutex.unlock pd'.pd_mu
        end)
      pr.pr_doms;
    if !confirmed && Atomic.get pr.pr_activity = g0 then begin
      poison pr
        (Deadlock
           {
             policy =
               Printf.sprintf "parallel(%d domains)" (Array.length pr.pr_doms);
             waiting = List.map (fun b -> b.wlabel) sched.blocked;
             pending = pending_dump ();
           });
      true
    end
    else false
  in
  let park w0 g0 =
    (* Commit to sleeping on wake count [w0] (or bail if it moved). *)
    Mutex.lock pd.pd_mu;
    if pd.pd_wake <> w0 || poisoned pr then Mutex.unlock pd.pd_mu
    else begin
      pd.pd_wait_mark <- Some w0;
      Mutex.unlock pd.pd_mu;
      let parked = 1 + Atomic.fetch_and_add pr.pr_parked 1 in
      let declared =
        parked >= Atomic.get pr.pr_live && declare_deadlock g0
      in
      Mutex.lock pd.pd_mu;
      if not declared then
        while pd.pd_wake = w0 && not (poisoned pr) do
          Condition.wait pd.pd_cv pd.pd_mu
        done;
      pd.pd_wait_mark <- None;
      Mutex.unlock pd.pd_mu;
      ignore (Atomic.fetch_and_add pr.pr_parked (-1))
    end
  in
  let rec loop () =
    if poisoned pr then ()
    else if sched.runn > 0 then begin
      let thunk = take sched 0 in
      thunk ();
      loop ()
    end
    else if sched.blocked <> [] then begin
      let a0 = sched.activity in
      if scan_blocked sched then loop ()
      else if sched.activity <> a0 then loop ()
      else begin
        (* Nothing runnable, nobody woke, no local progress: snapshot
           the wake counter, close the send-before-park window with one
           more scan, then park. *)
        let w0 =
          Mutex.lock pd.pd_mu;
          let w = pd.pd_wake in
          Mutex.unlock pd.pd_mu;
          w
        in
        let g0 = Atomic.get pr.pr_activity in
        if scan_blocked sched then loop ()
        else begin
          park w0 g0;
          loop ()
        end
      end
    end
  in
  (match loop () with () -> () | exception e -> poison pr e);
  finish ()

let run_parallel ~domains ~place fibers =
  if domains < 1 then invalid_arg "Fiber.run: need at least one domain";
  (match get_ambient () with
  | None | Some { d_policy = Round_robin; d_record = None; _ } -> ()
  | Some d ->
      invalid_arg
        (Printf.sprintf
           "Fiber.run: parallel execution cannot honour the ambient %s \
            policy%s — schedule exploration and trace replay require the \
            deterministic cooperative scheduler"
           (policy_name d.d_policy)
           (match d.d_record with Some _ -> " (recording)" | None -> "")));
  let arr = Array.of_list fibers in
  let n = Array.length arr in
  let slot i = ((place i mod domains) + domains) mod domains in
  let groups = Array.make domains [] in
  for i = n - 1 downto 0 do
    groups.(slot i) <- arr.(i) :: groups.(slot i)
  done;
  let pr =
    {
      pr_place = slot;
      pr_doms =
        Array.init domains (fun _ ->
            {
              pd_mu = Mutex.create ();
              pd_cv = Condition.create ();
              pd_wake = 0;
              pd_wait_mark = None;
              pd_done = false;
            });
      pr_activity = Atomic.make 0;
      pr_parked = Atomic.make 0;
      pr_live = Atomic.make domains;
      pr_poison = Atomic.make None;
    }
  in
  if not (Atomic.compare_and_set current_prun None (Some pr)) then
    invalid_arg "Fiber.run: a parallel run is already active";
  (* Domain 0 runs on the calling domain (so nested setup — ambient
     stats, trace sinks — stays visible to it); the rest are real
     spawns. [run_domain] never raises: fiber exceptions poison the run
     and every domain unwinds, so joins are clean. *)
  let spawned =
    Array.init (domains - 1) (fun k ->
        Domain.spawn (fun () -> run_domain pr (k + 1) groups.(k + 1)))
  in
  run_domain pr 0 groups.(0);
  Array.iter Domain.join spawned;
  Atomic.set current_prun None;
  match Atomic.get pr.pr_poison with Some e -> raise e | None -> ()

let run ?(mode = Cooperative) ?policy ?record fibers =
  match mode with
  | Cooperative -> run_cooperative ?policy ?record fibers
  | Parallel { domains; place } ->
      if Option.is_some policy then
        invalid_arg
          "Fiber.run: ~policy is incompatible with parallel execution — \
           deterministic scheduling requires the cooperative scheduler";
      if Option.is_some record then
        invalid_arg
          "Fiber.run: ~record is incompatible with parallel execution — \
           decision traces only exist under the cooperative scheduler";
      run_parallel ~domains ~place fibers
