open Effect
open Effect.Deep

type _ Effect.t +=
  | Yield : unit Effect.t
  | Wait : ((unit -> bool) * string) -> unit Effect.t
  | Spawn : (string * (unit -> unit)) -> unit Effect.t

(* ------------------------------------------------------------------ *)
(* Decision traces                                                     *)
(* ------------------------------------------------------------------ *)

type trace = { mutable tr_buf : int array; mutable tr_len : int }

let new_trace () = { tr_buf = Array.make 64 0; tr_len = 0 }

let trace_of_list l =
  let a = Array.of_list l in
  { tr_buf = a; tr_len = Array.length a }

let trace_to_list t = Array.to_list (Array.sub t.tr_buf 0 t.tr_len)
let trace_length t = t.tr_len

let trace_push t d =
  if t.tr_len = Array.length t.tr_buf then begin
    let bigger = Array.make (max 64 (2 * t.tr_len)) 0 in
    Array.blit t.tr_buf 0 bigger 0 t.tr_len;
    t.tr_buf <- bigger
  end;
  t.tr_buf.(t.tr_len) <- d;
  t.tr_len <- t.tr_len + 1

(* ------------------------------------------------------------------ *)
(* Scheduling policies                                                 *)
(* ------------------------------------------------------------------ *)

type policy = Round_robin | Seeded_random of int | Replay of trace

let policy_name = function
  | Round_robin -> "round-robin"
  | Seeded_random seed -> Printf.sprintf "seeded-random(seed=%d)" seed
  | Replay t -> Printf.sprintf "replay(%d decisions)" t.tr_len

(* splitmix64, as in Fault.draw: a seed fully determines the decision
   stream, so a seeded run is exactly reproducible. *)
let mix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* A driver owns the mutable policy state (RNG position, replay cursor,
   recording buffer). One driver may span several nested [run]s — the
   scoped form installed by [with_policy] — so a recorded trace replays
   across the same nesting structure decision for decision. *)
type driver = {
  d_policy : policy;
  mutable d_rng : int64;
  d_record : trace option;
  mutable d_cursor : int;
}

let make_driver ?record policy =
  {
    d_policy = policy;
    d_rng =
      (match policy with
      | Seeded_random seed -> mix64 (Int64.of_int (seed + 0x5eed))
      | _ -> 0L);
    d_record = record;
    d_cursor = 0;
  }

(* Pick the next fiber among [n] runnable ones (slot 0 is the head of
   the FIFO, i.e. what strict round-robin runs next). Every decision is
   recorded when recording is on — forced decisions (n = 1) included, so
   a trace replays with a plain cursor and no lookahead. *)
let decide d n =
  let choice =
    match d.d_policy with
    | Round_robin -> 0
    | Seeded_random _ ->
        if n <= 1 then 0
        else begin
          d.d_rng <- Int64.add d.d_rng 0x9e3779b97f4a7c15L;
          (Int64.to_int (mix64 d.d_rng) land max_int) mod n
        end
    | Replay t ->
        let c = if d.d_cursor < t.tr_len then t.tr_buf.(d.d_cursor) else 0 in
        d.d_cursor <- d.d_cursor + 1;
        (* A shrunk trace may carry indices wider than the live run
           queue (earlier edits change queue sizes downstream); clamp
           instead of failing so every mutated trace stays replayable. *)
        if c <= 0 || n <= 1 then 0 else c mod n
  in
  (match d.d_record with Some t -> trace_push t choice | None -> ());
  choice

(* Scoped default policy: [run]s that don't pass ~policy pick it up. *)
let ambient : driver option ref = ref None

let with_policy ?record policy f =
  let saved = !ambient in
  ambient := Some (make_driver ?record policy);
  Fun.protect ~finally:(fun () -> ambient := saved) f

exception
  Deadlock of {
    policy : string;
    waiting : string list;
    pending : string list;
  }

(* Diagnostics dumps: subsystems (the MPI device layer) register a
   closure describing their pending operations; the deadlock report
   concatenates them so a hang names the requests that never completed
   (rank, kind, peer, tag, failure reason), not just the blocked wait
   labels. Registrations are capped to the most recent few — worlds are
   created per run and never unregister; a quiesced stale world
   contributes nothing but must not accumulate without bound. *)
let max_dumps = 8
let dumps : (unit -> string list) list ref = ref []

let register_deadlock_dump f =
  dumps := f :: (if List.length !dumps >= max_dumps
                 then List.filteri (fun i _ -> i < max_dumps - 1) !dumps
                 else !dumps)

let pending_dump () =
  List.concat_map (fun f -> try f () with _ -> []) (List.rev !dumps)

type blocked = {
  pred : unit -> bool;
  wlabel : string;
  resume : unit -> unit;
}

(* The run queue is an indexable FIFO vector: round-robin takes slot 0
   (exactly the old Queue semantics), the random and replay policies take
   an arbitrary slot. Runnable counts are small (one per rank), so the
   O(n) shift on removal is noise. *)
type sched = {
  mutable runv : (unit -> unit) array;
  mutable runn : int;
  mutable blocked : blocked list;
  mutable activity : int;
  driver : driver;
}

let nop () = ()

let push sched thunk =
  if sched.runn = Array.length sched.runv then begin
    let bigger = Array.make (max 8 (2 * sched.runn)) nop in
    Array.blit sched.runv 0 bigger 0 sched.runn;
    sched.runv <- bigger
  end;
  sched.runv.(sched.runn) <- thunk;
  sched.runn <- sched.runn + 1

let take sched i =
  let t = sched.runv.(i) in
  Array.blit sched.runv (i + 1) sched.runv i (sched.runn - i - 1);
  sched.runn <- sched.runn - 1;
  sched.runv.(sched.runn) <- nop;
  t

(* Stack of active schedulers: runs may nest. *)
let stack : sched list ref = ref []

let in_scheduler () = !stack <> []

let note_activity () =
  match !stack with s :: _ -> s.activity <- s.activity + 1 | [] -> ()

let yield () = perform Yield
let wait_until ?(label = "wait") pred = perform (Wait (pred, label))
let spawn label f = perform (Spawn (label, f))

let rec exec sched label body =
  match_with body ()
    {
      retc = (fun () -> ());
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              Some
                (fun (k : (a, _) continuation) ->
                  push sched (fun () -> continue k ()))
          | Wait (pred, wlabel) ->
              Some
                (fun (k : (a, _) continuation) ->
                  if pred () then continue k ()
                  else
                    let b =
                      {
                        pred;
                        wlabel = label ^ "/" ^ wlabel;
                        resume = (fun () -> continue k ());
                      }
                    in
                    sched.blocked <- b :: sched.blocked)
          | Spawn (l, f) ->
              Some
                (fun (k : (a, _) continuation) ->
                  push sched (fun () -> exec sched l f);
                  continue k ())
          | _ -> None);
    }

(* Main loop: drain the run queue (the policy picks which runnable fiber
   goes next); when empty, re-test blocked predicates. Deadlock is
   declared only when a full scan wakes nobody and no subsystem reported
   activity, so multi-step progress (e.g. one packet per poll) is never
   mistaken for a hang — under any policy. *)
let run ?policy ?record fibers =
  let driver =
    match policy with
    | Some p -> make_driver ?record p
    | None -> (
        match !ambient with
        | Some d -> d
        | None -> make_driver ?record Round_robin)
  in
  let sched =
    { runv = Array.make 8 nop; runn = 0; blocked = []; activity = 0; driver }
  in
  List.iter
    (fun (label, f) -> push sched (fun () -> exec sched label f))
    fibers;
  stack := sched :: !stack;
  let finish () = stack := List.tl !stack in
  let rec loop () =
    if sched.runn > 0 then begin
      let thunk = take sched (decide driver sched.runn) in
      thunk ();
      loop ()
    end
    else if sched.blocked <> [] then begin
      let activity_before = sched.activity in
      let woken, still =
        List.partition (fun b -> b.pred ()) (List.rev sched.blocked)
      in
      sched.blocked <- List.rev still;
      match woken with
      | [] ->
          if sched.activity = activity_before then
            raise
              (Deadlock
                 {
                   policy = policy_name driver.d_policy;
                   waiting = List.map (fun b -> b.wlabel) still;
                   pending = pending_dump ();
                 })
          else loop ()
      | _ ->
          List.iter (fun b -> push sched b.resume) woken;
          loop ()
    end
  in
  match loop () with
  | () -> finish ()
  | exception e ->
      finish ();
      raise e
