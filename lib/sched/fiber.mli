(** Cooperative fibers: the simulation's stand-in for OS processes.

    Each MPI rank runs as a fiber with its own managed heap; the scheduler
    is deterministic — by default a strict round-robin, so every run is
    reproducible. Blocking MPI operations suspend with {!wait_until}; the
    predicate typically pumps the progress engine, mirroring the paper's
    polling-wait (Section 7.4).

    The scheduling {e policy} is pluggable (DESIGN.md §12): a seeded
    pseudo-random policy explores alternative interleavings of the same
    program, and every scheduling decision can be recorded as a compact
    {!trace} that the replay policy re-executes decision for decision.
    This is the substrate of the schedule-exploration harness
    ([lib/check]): races between progress pumping, GC pin polling,
    retransmission timers and collective schedule steps that a fixed
    round-robin can never exhibit become reachable, reproducible and
    shrinkable.

    GC interactions are preserved exactly under every policy: a rank's
    garbage collector can run only while that rank's own fiber executes,
    so remote ranks never move local objects — the same invariant the
    paper gets from per-process address spaces. *)

(** {1 Decision traces} *)

type trace
(** A growable record of scheduling decisions: the index of the chosen
    fiber among the runnable ones (0 = strict round-robin head) for every
    decision the scheduler made, in order, across nested runs. *)

val new_trace : unit -> trace
val trace_of_list : int list -> trace
val trace_to_list : trace -> int list
val trace_length : trace -> int

(** {1 Scheduling policies} *)

type policy =
  | Round_robin  (** strict FIFO — the historical, default behaviour *)
  | Seeded_random of int
      (** uniformly random among runnable fibers; the seed fully
          determines the decision stream (splitmix64), so a run is
          reproducible from its seed alone *)
  | Replay of trace
      (** re-execute a recorded decision stream; an exhausted or
          out-of-range entry falls back to the round-robin choice, so
          shrunk (edited) traces always stay runnable *)

val policy_name : policy -> string
(** Human-readable descriptor, e.g. ["seeded-random(seed=42)"] — embedded
    in {!Deadlock} diagnostics so a failing schedule is reproducible from
    the error alone. *)

exception
  Deadlock of {
    policy : string;
    waiting : string list;
    pending : string list;
  }
(** Raised by {!run} when every live fiber is blocked and no predicate
    can make progress. Carries the labels of the blocked waits, the
    {!policy_name} of the active scheduling policy (with its seed), so a
    deadlock found by exploration is reproducible from the report — and
    [pending], the registered subsystems' dumps of their incomplete
    operations (per-rank posted receives, rendezvous in flight, hooks),
    which is what makes a hang under a kill plan triageable. *)

val register_deadlock_dump : (unit -> string list) -> unit
(** Register a closure contributing lines to {!Deadlock}'s [pending]
    dump ({!Mpi.create_world} registers one per world, describing every
    device's pending requests). Only the most recent registrations are
    kept (bounded); a dump that raises contributes nothing. *)

(** {1 Execution modes} *)

type mode =
  | Cooperative
      (** everything on the calling domain, scheduled by the active
          {!policy} — byte-for-byte deterministic; the default, and the
          only mode the explorer and replay accept *)
  | Parallel of { domains : int; place : int -> int }
      (** execute fiber groups on real OCaml 5 domains: fiber [i] runs
          on domain [place i mod domains]; fibers sharing a domain stay
          cooperative (strict round-robin) among themselves, so a rank's
          GC still only runs while its own fiber does. Interleaving
          {e across} domains is whatever the hardware does: wall-clock
          real, not deterministic. Incompatible with [?policy],
          [?record] and any recording/non-round-robin ambient driver
          ([Invalid_argument]). *)

val run :
  ?mode:mode ->
  ?policy:policy ->
  ?record:trace ->
  (string * (unit -> unit)) list ->
  unit
(** [run fibers] executes the labelled fibers until all complete, picking
    the next runnable fiber according to [policy]. The default policy is
    the ambient one installed by {!with_policy}, or [Round_robin] — byte
    for byte the historical schedule. Decisions are appended to [record]
    when given. An exception escaping any fiber aborts the whole run and
    is re-raised. Runs may nest (a fiber may start an inner scheduler);
    a nested run without an explicit [policy] shares the ambient driver,
    so one trace covers the whole nesting structure.

    With [~mode:(Parallel _)] the fiber groups execute on real domains
    (DESIGN.md §15). A blocked domain parks on a condition variable;
    cross-domain channels wake the destination with {!notify_fiber}.
    Deadlock detection is distributed — the last domain to park verifies
    every peer is asleep with no wakeup in flight and no global activity,
    then the whole run unwinds with {!Deadlock} (policy
    ["parallel(N domains)"]). At most one parallel run may be active per
    process. An exception escaping any fiber aborts every domain and is
    re-raised on the calling domain. *)

val parallel_active : unit -> bool
(** True while a [Parallel] run is executing (on any domain). The
    explorer and replay entry points use this to refuse to run inside a
    nondeterministic execution. *)

val notify_fiber : int -> unit
(** [notify_fiber i] wakes the domain hosting fiber [i] of the active
    parallel run, if any — called by cross-domain channels after
    publishing a message so a parked receiver re-scans its predicates.
    Also bumps the global activity stamp. No-op outside parallel runs
    (the cooperative scheduler polls; it never sleeps). *)

val with_policy : ?record:trace -> policy -> (unit -> 'a) -> 'a
(** [with_policy p f] runs [f] with [p] as the default policy for every
    {!run} inside it that does not pass [~policy] — including runs buried
    under library layers ([Mpi.run], [World.run]). All such runs share
    one policy driver: the RNG stream and the replay cursor continue
    across them, and decisions accumulate into [record] in execution
    order. Restores the previous ambient policy on exit. *)

val yield : unit -> unit
(** Suspend and reschedule at the back of the run queue. Must be called
    from within {!run}. *)

val wait_until : ?label:string -> (unit -> bool) -> unit
(** [wait_until pred] suspends until [pred ()] is true. [pred] runs in
    scheduler context: it must not yield or wait, but it may perform plain
    side effects (e.g. pumping a progress engine). Predicates that move
    data without yet becoming true must call {!note_activity} (the
    channels do this) so the deadlock detector is not fooled by multi-step
    progress. *)

val spawn : string -> (unit -> unit) -> unit
(** Add a fiber to the running scheduler (used by dynamic process
    management). Must be called from within {!run}. *)

val note_activity : unit -> unit
(** Record that useful work happened outside of fiber resumption; resets
    the deadlock detector. Safe to call when no scheduler is running. *)

val in_scheduler : unit -> bool
(** True when called from inside {!run}. *)
