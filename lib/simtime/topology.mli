(** The fabric model: [nodes] machines of [cores] ranks each, block-mapped
    (world rank [r] lives on node [r / cores]; ranks past the last full
    node fold onto the last node). The channel layer prices each message
    by tier — intra-node endpoints pay the shm-class figures, inter-node
    endpoints the sock-class figures — and the collectives layer switches
    to two-level (hierarchical) algorithms when {!multi_node} holds. *)

type t

val make : nodes:int -> cores:int -> t
(** Raises [Invalid_argument] unless both are at least 1. *)

val single : n:int -> t
(** The flat world: one node of [n] cores (every message intra-tier). *)

val nodes : t -> int
val cores : t -> int

val size : t -> int
(** [nodes * cores]. A world may hold fewer ranks (a partial last node)
    but never more. *)

val multi_node : t -> bool

val node_of : t -> int -> int
(** Node id of a world rank; clamped to the last node for ranks beyond
    [size] (dynamically spawned processes land on the last node). *)

val same_node : t -> int -> int -> bool
val leader_of : t -> int -> int
(** World rank of the first (leader) rank on the argument's node. *)

val is_leader : t -> int -> bool
val pp : Format.formatter -> t -> unit
