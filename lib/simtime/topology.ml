(* The fabric model: [nodes] machines of [cores] ranks each, mapped
   block-wise (world rank r lives on node r / cores). Two cost tiers —
   endpoints sharing a node use the intra-node (shm-class) figures, all
   other traffic the inter-node (sock-class) figures; the channel layer
   consults {!same_node} per message. A world built without a topology
   behaves as one big node (every message intra-tier), which is exactly
   the flat model this generalizes. *)

type t = { nodes : int; cores : int }

let make ~nodes ~cores =
  if nodes < 1 then invalid_arg "Topology.make: need at least one node";
  if cores < 1 then invalid_arg "Topology.make: need at least one core";
  { nodes; cores }

let single ~n =
  if n < 1 then invalid_arg "Topology.single: need at least one rank";
  { nodes = 1; cores = n }

let nodes t = t.nodes
let cores t = t.cores
let size t = t.nodes * t.cores
let multi_node t = t.nodes > 1

let node_of t rank =
  if rank < 0 then invalid_arg "Topology.node_of: negative rank";
  min (rank / t.cores) (t.nodes - 1)

let same_node t a b = node_of t a = node_of t b
let leader_of t rank = node_of t rank * t.cores
let is_leader t rank = rank = leader_of t rank

let pp ppf t =
  Format.fprintf ppf "topology{%d node(s) x %d core(s)}" t.nodes t.cores
