(* Layer-neutral span emission.

   The VM and serializer live below the MPI library, so they cannot call
   Mpi_core.Trace directly; instead every layer emits spans through this
   registry and Trace installs itself as the sink when tracing is enabled
   on an environment. With no sink installed, emission is a registry miss
   — safe on hot paths, exactly like Trace.record. *)

type kind = Begin | End | Instant

type sink =
  kind:kind ->
  id:int option ->
  rank:int ->
  cat:string ->
  name:string ->
  args:(string * string) list ->
  unit

(* Environments are few and long-lived (same reasoning as the Trace
   registry): a small association list keyed by identity is enough. *)
let sinks : (Env.t * sink) list ref = ref []

let set_sink env sink =
  sinks := (env, sink) :: List.filter (fun (e, _) -> not (e == env)) !sinks

let clear_sink env =
  sinks := List.filter (fun (e, _) -> not (e == env)) !sinks

let installed () = List.length !sinks

let emit env ~kind ?id ~rank ~cat ~name ?(args = []) () =
  match
    List.find_map (fun (e, s) -> if e == env then Some s else None) !sinks
  with
  | Some sink -> sink ~kind ~id ~rank ~cat ~name ~args
  | None -> ()

let span_begin env ?id ~rank ~cat ~name ?(args = []) () =
  emit env ~kind:Begin ?id ~rank ~cat ~name ~args ()

let span_end env ?id ~rank ~cat ~name ?(args = []) () =
  emit env ~kind:End ?id ~rank ~cat ~name ~args ()

let instant env ~rank ~cat ~name ?(args = []) () =
  emit env ~kind:Instant ~rank ~cat ~name ~args ()

let with_span env ~rank ~cat ~name ?(args = []) f =
  span_begin env ~rank ~cat ~name ~args ();
  Fun.protect ~finally:(fun () -> span_end env ~rank ~cat ~name ()) f
