(* Layer-neutral span emission.

   The VM and serializer live below the MPI library, so they cannot call
   Mpi_core.Trace directly; instead every layer emits spans through this
   registry and Trace installs itself as the sink when tracing is enabled
   on an environment. With no sink installed, emission is a registry miss
   — safe on hot paths, exactly like Trace.record. *)

type kind = Begin | End | Instant

type sink =
  kind:kind ->
  id:int option ->
  rank:int ->
  cat:string ->
  name:string ->
  args:(string * string) list ->
  unit

(* Environments are few and long-lived (same reasoning as the Trace
   registry): a small association list keyed by identity is enough. The
   list lives in an [Atomic] because under parallel execution every
   domain reads it on emission (and a main-domain enable/disable could
   race a spawned domain's read); each domain emits only into its own
   environment's sink, so the sinks themselves stay single-domain. *)
let sinks : (Env.t * sink) list Atomic.t = Atomic.make []

let rec update f =
  let cur = Atomic.get sinks in
  if not (Atomic.compare_and_set sinks cur (f cur)) then update f

let set_sink env sink =
  update (fun l -> (env, sink) :: List.filter (fun (e, _) -> not (e == env)) l)

let clear_sink env = update (List.filter (fun (e, _) -> not (e == env)))
let installed () = List.length (Atomic.get sinks)

let emit env ~kind ?id ~rank ~cat ~name ?(args = []) () =
  match
    List.find_map
      (fun (e, s) -> if e == env then Some s else None)
      (Atomic.get sinks)
  with
  | Some sink -> sink ~kind ~id ~rank ~cat ~name ~args
  | None -> ()

let span_begin env ?id ~rank ~cat ~name ?(args = []) () =
  emit env ~kind:Begin ?id ~rank ~cat ~name ~args ()

let span_end env ?id ~rank ~cat ~name ?(args = []) () =
  emit env ~kind:End ?id ~rank ~cat ~name ~args ()

let instant env ~rank ~cat ~name ?(args = []) () =
  emit env ~kind:Instant ~rank ~cat ~name ~args ()

let with_span env ~rank ~cat ~name ?(args = []) f =
  span_begin env ~rank ~cat ~name ~args ();
  Fun.protect ~finally:(fun () -> span_end env ~rank ~cat ~name ()) f
