(** Cost model for the virtual-time simulation.

    Every mechanism the paper blames for performance differences has an
    explicit cost knob here: call mechanisms (FCall vs P/Invoke vs JNI),
    pinning, GC phases, transport, MPI bookkeeping and serialization. A
    "system under test" (Motor, native C++, Indiana bindings on SSCLI or
    .NET, mpiJava) is a preset of this record; all presets share the same
    transport costs because the paper re-hosted every binding over the same
    MPICH2 1.0.2 (Section 8).

    Units are nanoseconds of virtual time unless noted. Values are calibrated
    to the magnitudes readable off the paper's log-scale Figures 9 and 10 on
    a Pentium M 1.7 GHz; shapes, not absolute values, are the reproduction
    target (DESIGN.md §4). *)

(** SSCLI build flavour, per the paper's footnote 4: fastchecked builds make
    pinning considerably more expensive than Free builds. *)
type build = Free | Fastchecked

type t = {
  name : string;
  (* Call mechanisms (per managed -> library crossing). *)
  fcall_ns : float;  (** runtime-internal call: trusted, no marshalling *)
  pinvoke_ns : float;  (** P/Invoke base cost incl. security checks *)
  jni_ns : float;  (** JNI base cost incl. security checks *)
  marshal_per_arg_ns : float;  (** per-argument marshalling (P/Invoke, JNI) *)
  managed_wrapper_ns : float;  (** managed-side dispatch per MPI call *)
  binding_ns_per_byte : float;
      (** per-byte overhead of crossing the managed/native boundary with a
          pinned buffer (zero for Motor and native) *)
  (* Pinning. *)
  pin_ns : float;
  unpin_ns : float;
  pin_boundary_check_ns : float;
      (** Motor's young-generation address-range test *)
  (* Memory. *)
  memcpy_ns_per_byte : float;
  alloc_obj_ns : float;
  alloc_ns_per_byte : float;
  managed_instr_ns : float;
      (** virtual cost of executing one managed (MIL) instruction *)
  (* Garbage collection. *)
  gc_safepoint_poll_ns : float;
  gc_young_base_ns : float;
  gc_full_base_ns : float;
  gc_copy_ns_per_byte : float;
  gc_mark_ns_per_obj : float;
  gc_sweep_ns_per_obj : float;
  gc_pin_status_check_ns : float;
      (** mark-phase check of a conditional pin request *)
  (* Transport (shared by all systems). *)
  sock_per_msg_ns : float;
  sock_ns_per_byte : float;
  shm_per_msg_ns : float;
  shm_ns_per_byte : float;
  rndv_handshake_ns : float;
  mtu_bytes : int;
  eager_threshold_bytes : int;
  (* RDMA-class channel ([Mpi_core.Rdma_channel]): kernel-bypass
     transport with explicit memory registration, as in "MPICH2 over
     InfiniBand with RDMA Support". *)
  rdma_per_msg_ns : float;  (** per-descriptor cost (kernel bypass) *)
  rdma_write_ns_per_byte : float;  (** RDMA-write streaming *)
  rdma_read_ns_per_byte : float;
      (** RDMA-read streaming (slower: responder DMA turnaround) *)
  rdma_reg_base_ns : float;  (** pin-down registration base cost *)
  rdma_reg_ns_per_byte : float;  (** page-pinning cost per byte *)
  rdma_eager_threshold_bytes : int;
      (** below: copy through pre-registered bounce buffers; above:
          rendezvous into registered memory *)
  rdma_cache_capacity_bytes : int;
      (** default registration-cache capacity (LRU eviction past it) *)
  (* MPI bookkeeping. *)
  queue_probe_ns : float;  (** per queue element inspected during matching *)
  request_ns : float;  (** request allocation / completion *)
  progress_poll_ns : float;
  sched_step_ns : float;
      (** dispatching one step of a collective schedule ([Coll_sched]):
          callback bookkeeping plus kickoff of the underlying operation.
          The blocking collectives paid an equivalent per-round fiber
          rescheduling toll, so the [coll_*] crossovers measured against
          them remain valid for the schedule engine. *)
  (* Collective algorithm selection (see [Mpi_core.Collectives]): the
     thresholds are part of the cost model so algorithm choice is a
     measurable, tunable policy rather than hard-wired. *)
  coll_binomial_min_ranks : int;
      (** scatter/gather switch from a flat root-fan to a binomial tree at
          this communicator size (equal-block mode only) *)
  coll_binomial_max_block : int;
      (** ... but only up to this block size: the tree's internal nodes
          forward their whole subtree, so past this the extra store-and-
          forward bandwidth costs more than the saved root latency *)
  coll_rabenseifner_min_bytes : int;
      (** allreduce switches from recursive doubling to Rabenseifner
          (reduce-scatter + allgather) at this payload size *)
  coll_bcast_scatter_min_bytes : int;
      (** bcast switches from the binomial tree to the pipelined
          scatter + ring-allgather algorithm at this payload size on an
          8-member communicator; the switch point scales as n^2/64 times
          this value, because the ring phase costs Theta(n) messages per
          member *)
  coll_allgather_rd_max_bytes : int;
      (** allgather uses recursive doubling up to this total (size x block)
          payload on power-of-two communicators, the ring beyond *)
  (* Serialization. *)
  ser_per_obj_ns : float;
  ser_per_field_ns : float;
  ser_ns_per_byte : float;
  deser_per_obj_ns : float;
  deser_ns_per_byte : float;
  visited_probe_ns : float;
      (** one comparison in the serializer's visited structure *)
  reflect_field_ns : float;
      (** metadata-based reflection per field (standard serializers) *)
}

val native_cpp : t
(** The paper's "native C++ application using MPICH2": no VM, no pinning,
    no managed boundary. *)

val motor : t
(** Motor: FCall entry, pinning policy, FieldDesc-bit serializer. *)

val indiana_sscli : t
(** Indiana C# bindings hosted on the SSCLI (Free build): P/Invoke and a pin
    per operation; standard CLI binary serializer (SSCLI speed). *)

val indiana_sscli_fastchecked : t
(** Same, on a fastchecked SSCLI build (footnote 4): expensive pinning. *)

val indiana_dotnet : t
(** Indiana C# bindings hosted on commercial .NET v1.1: faster runtime and
    serializer than the SSCLI, same wrapper architecture. *)

val mpijava : t
(** mpiJava 1.2.5 on Sun JDK 1.5: JNI with automatic pin/unpin and the
    standard Java serialization mechanism. *)

val with_build : build -> t -> t
(** Adjust a preset's pinning costs for the given SSCLI build flavour. *)

val all_presets : t list

val pp : Format.formatter -> t -> unit
