(** Simulation environment: one clock + one cost model + one counter set.

    A single [Env.t] is threaded through a whole simulated world (all ranks of
    one run share the clock; per-rank state lives in the VM and MPI layers).
    The [charge_*] helpers are the only way subsystems spend virtual time, so
    every cost is attributable to a named mechanism. *)

type t = {
  clock : Clock.t;
  cost : Cost.t;
  stats : Stats.t;
}

val create : ?cost:Cost.t -> unit -> t
(** Fresh environment; the cost model defaults to {!Cost.motor}. *)

val with_cost : Cost.t -> t -> t
(** Same clock and stats, different cost model. Used by managed-wrapper
    baselines that share a world with other systems. *)

val now_us : t -> float
val now_ns : t -> float
val charge : t -> float -> unit
(** Charge raw nanoseconds. *)

val charge_per_byte : t -> float -> int -> unit
(** [charge_per_byte env ns_per_byte n] charges [ns_per_byte *. n]. *)

val count : t -> string -> unit
val count_n : t -> string -> int -> unit

val observe : t -> string -> float -> unit
(** Record a virtual-time sample (ns) into the named {!Stats} histogram. *)

val with_timer : t -> string -> (unit -> 'a) -> 'a
(** Run a scope and observe the virtual time it charged into the named
    histogram: the standard way to attribute a pause or a pass to a
    mechanism. *)
