type build = Free | Fastchecked

type t = {
  name : string;
  fcall_ns : float;
  pinvoke_ns : float;
  jni_ns : float;
  marshal_per_arg_ns : float;
  managed_wrapper_ns : float;
  binding_ns_per_byte : float;
  pin_ns : float;
  unpin_ns : float;
  pin_boundary_check_ns : float;
  memcpy_ns_per_byte : float;
  alloc_obj_ns : float;
  alloc_ns_per_byte : float;
  managed_instr_ns : float;
  gc_safepoint_poll_ns : float;
  gc_young_base_ns : float;
  gc_full_base_ns : float;
  gc_copy_ns_per_byte : float;
  gc_mark_ns_per_obj : float;
  gc_sweep_ns_per_obj : float;
  gc_pin_status_check_ns : float;
  sock_per_msg_ns : float;
  sock_ns_per_byte : float;
  shm_per_msg_ns : float;
  shm_ns_per_byte : float;
  rndv_handshake_ns : float;
  mtu_bytes : int;
  eager_threshold_bytes : int;
  rdma_per_msg_ns : float;
  rdma_write_ns_per_byte : float;
  rdma_read_ns_per_byte : float;
  rdma_reg_base_ns : float;
  rdma_reg_ns_per_byte : float;
  rdma_eager_threshold_bytes : int;
  rdma_cache_capacity_bytes : int;
  queue_probe_ns : float;
  request_ns : float;
  progress_poll_ns : float;
  sched_step_ns : float;
  coll_binomial_min_ranks : int;
  coll_binomial_max_block : int;
  coll_rabenseifner_min_bytes : int;
  coll_bcast_scatter_min_bytes : int;
  coll_allgather_rd_max_bytes : int;
  ser_per_obj_ns : float;
  ser_per_field_ns : float;
  ser_ns_per_byte : float;
  deser_per_obj_ns : float;
  deser_ns_per_byte : float;
  visited_probe_ns : float;
  reflect_field_ns : float;
}

(* Transport and raw-memory numbers model the paper's testbed (Pentium M
   1.7 GHz, Windows XP, both ranks on one node, MPICH2 sock channel over
   loopback): ~11 us one-way small-message latency, ~300 MB/s loopback
   streaming, ~1.1 GB/s memcpy. These are shared by every preset. *)
let native_cpp =
  {
    name = "C++ (native MPICH2)";
    fcall_ns = 0.0;
    pinvoke_ns = 0.0;
    jni_ns = 0.0;
    marshal_per_arg_ns = 0.0;
    managed_wrapper_ns = 0.0;
    binding_ns_per_byte = 0.0;
    pin_ns = 0.0;
    unpin_ns = 0.0;
    pin_boundary_check_ns = 0.0;
    managed_instr_ns = 0.0;
    memcpy_ns_per_byte = 0.9;
    alloc_obj_ns = 90.0;
    alloc_ns_per_byte = 0.12;
    gc_safepoint_poll_ns = 0.0;
    gc_young_base_ns = 0.0;
    gc_full_base_ns = 0.0;
    gc_copy_ns_per_byte = 0.0;
    gc_mark_ns_per_obj = 0.0;
    gc_sweep_ns_per_obj = 0.0;
    gc_pin_status_check_ns = 0.0;
    sock_per_msg_ns = 11_000.0;
    sock_ns_per_byte = 3.2;
    shm_per_msg_ns = 1_400.0;
    shm_ns_per_byte = 1.1;
    rndv_handshake_ns = 9_000.0;
    mtu_bytes = 16_384;
    eager_threshold_bytes = 65_536;
    (* RDMA-class fabric (InfiniBand figures in the spirit of "MPICH2
       over InfiniBand with RDMA Support"): kernel-bypass per-message
       cost far below the sock channel, RDMA-write streaming faster than
       RDMA-read (the read path pays the responder's DMA turnaround),
       and an expensive pin-down registration whose base cost is what
       the registration cache exists to amortize. The write/read
       per-byte split puts the rendezvous-variant crossover at
       per_msg / (read - write) = 12 KiB: a rendezvous below it saves
       the extra control hop with RDMA-read, above it RDMA-write's
       bandwidth wins. *)
    rdma_per_msg_ns = 3_000.0;
    rdma_write_ns_per_byte = 0.55;
    rdma_read_ns_per_byte = 0.8;
    rdma_reg_base_ns = 20_000.0;
    rdma_reg_ns_per_byte = 0.3;
    rdma_eager_threshold_bytes = 4_096;
    rdma_cache_capacity_bytes = 1_048_576;
    queue_probe_ns = 80.0;
    request_ns = 300.0;
    progress_poll_ns = 150.0;
    (* Dispatching one step of a collective schedule (MPIR_Sched-style):
       callback bookkeeping, completion-counter update, kickoff of the
       underlying operation. The blocking collectives paid an equivalent
       toll in fiber rescheduling between rounds; charging it here keeps
       the measured coll_* crossovers below valid for the schedule
       engine that replaced them. *)
    sched_step_ns = 900.0;
    (* Collective algorithm selection (shared by every preset, like the
       transport): below/above these the collectives layer switches
       algorithms. The values are placed at the measured crossovers of
       the coll_sweep experiment on this transport (~11us/msg, ~300 MB/s
       sock channel); see DESIGN.md and results/coll_sweep.csv. *)
    coll_binomial_min_ranks = 8;
    coll_binomial_max_block = 4_096;
    coll_rabenseifner_min_bytes = 131_072;
    coll_bcast_scatter_min_bytes = 262_144;
    coll_allgather_rd_max_bytes = 1_048_576;
    ser_per_obj_ns = 0.0;
    ser_per_field_ns = 0.0;
    ser_ns_per_byte = 0.9;
    deser_per_obj_ns = 0.0;
    deser_ns_per_byte = 0.9;
    visited_probe_ns = 0.0;
    reflect_field_ns = 0.0;
  }

(* A managed runtime hosted on the SSCLI Free build. GC costs are shared by
   all managed presets; what distinguishes the systems is the call mechanism,
   the pinning discipline and the serializer. *)
let sscli_runtime =
  {
    native_cpp with
    pin_ns = 350.0;
    unpin_ns = 250.0;
    pin_boundary_check_ns = 40.0;
    (* interpreted managed code; the SSCLI JIT would be ~5x faster *)
    managed_instr_ns = 12.0;
    gc_safepoint_poll_ns = 18.0;
    gc_young_base_ns = 25_000.0;
    gc_full_base_ns = 120_000.0;
    gc_copy_ns_per_byte = 1.4;
    gc_mark_ns_per_obj = 55.0;
    gc_sweep_ns_per_obj = 40.0;
    gc_pin_status_check_ns = 60.0;
    alloc_obj_ns = 60.0;
    (* bump allocation is cheap *)
    alloc_ns_per_byte = 0.05;
  }

let motor =
  {
    sscli_runtime with
    name = "Motor";
    fcall_ns = 250.0;
    managed_wrapper_ns = 300.0;
    (* Custom serializer driven by the Transportable bit on FieldDesc:
       no metadata reflection; a linear visited list (paper Section 8). *)
    ser_per_obj_ns = 600.0;
    ser_per_field_ns = 120.0;
    deser_per_obj_ns = 700.0;
    visited_probe_ns = 3.0;
    reflect_field_ns = 0.0;
  }

let indiana_sscli =
  {
    sscli_runtime with
    name = "Indiana SSCLI";
    pinvoke_ns = 1_750.0;
    marshal_per_arg_ns = 130.0;
    managed_wrapper_ns = 300.0;
    binding_ns_per_byte = 0.12;
    (* Standard CLI binary serializer, SSCLI implementation: reflection
       driven and markedly slower than commercial .NET (Figure 10 caption). *)
    ser_per_obj_ns = 8_200.0;
    ser_per_field_ns = 350.0;
    deser_per_obj_ns = 2_600.0;
    visited_probe_ns = 0.0;
    (* hash-based handle table *)
    reflect_field_ns = 900.0;
  }

let indiana_dotnet =
  {
    indiana_sscli with
    name = "Indiana .NET";
    (* Commercial .NET v1.1: faster P/Invoke path and a much faster binary
       serializer than the shared-source build. *)
    pinvoke_ns = 1_500.0;
    marshal_per_arg_ns = 110.0;
    managed_wrapper_ns = 220.0;
    binding_ns_per_byte = 0.09;
    pin_ns = 260.0;
    unpin_ns = 190.0;
    ser_per_obj_ns = 2_400.0;
    ser_per_field_ns = 160.0;
    deser_per_obj_ns = 900.0;
    reflect_field_ns = 300.0;
  }

let mpijava =
  {
    sscli_runtime with
    name = "Java (mpiJava)";
    jni_ns = 2_200.0;
    marshal_per_arg_ns = 170.0;
    managed_wrapper_ns = 550.0;
    (* JNI array access on the Sun JVM pays a per-byte toll on the critical
       path (copy-or-pin GetArrayElements discipline). *)
    binding_ns_per_byte = 1.1;
    pin_ns = 420.0;
    unpin_ns = 300.0;
    (* Standard Java serialization: handle table plus block-data buffering;
       the per-object figures here are the small-count (block-data) regime,
       Java_serializer switches to a slower regime for large counts. *)
    ser_per_obj_ns = 3_000.0;
    ser_per_field_ns = 260.0;
    deser_per_obj_ns = 1_400.0;
    visited_probe_ns = 0.0;
    reflect_field_ns = 450.0;
  }

let with_build build t =
  match build with
  | Free -> t
  | Fastchecked ->
      {
        t with
        name = t.name ^ " (fastchecked)";
        pin_ns = 2_800.0;
        unpin_ns = 2_000.0;
      }

let indiana_sscli_fastchecked = with_build Fastchecked indiana_sscli

let all_presets =
  [
    native_cpp;
    motor;
    indiana_sscli;
    indiana_sscli_fastchecked;
    indiana_dotnet;
    mpijava;
  ]

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%s:@ fcall=%.0fns pinvoke=%.0fns jni=%.0fns pin=%.0fns@ \
     sock=%.0fns+%.2fns/B eager<=%dB@ ser/obj=%.0fns visited=%.0fns@]"
    t.name t.fcall_ns t.pinvoke_ns t.jni_ns t.pin_ns t.sock_per_msg_ns
    t.sock_ns_per_byte t.eager_threshold_bytes t.ser_per_obj_ns
    t.visited_probe_ns
