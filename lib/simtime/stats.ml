type t = (string, int ref) Hashtbl.t

let create () : t = Hashtbl.create 64

let cell t key =
  match Hashtbl.find_opt t key with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t key r;
      r

let add t key n =
  if n < 0 then invalid_arg "Stats.add: negative amount";
  let r = cell t key in
  r := !r + n

let incr t key = add t key 1
let get t key = match Hashtbl.find_opt t key with Some r -> !r | None -> 0
let reset t = Hashtbl.iter (fun _ r -> r := 0) t

let to_alist t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp ppf t =
  Format.pp_open_vbox ppf 0;
  List.iter
    (fun (k, v) -> Format.fprintf ppf "%-28s %d@," k v)
    (to_alist t);
  Format.pp_close_box ppf ()

module Key = struct
  let pins = "pins"
  let unpins = "unpins"
  let pins_avoided = "pins_avoided"
  let pins_deferred = "pins_deferred"
  let conditional_pins = "conditional_pins"
  let conditional_pins_dropped = "conditional_pins_dropped"
  let gc_young = "gc_young"
  let gc_full = "gc_full"
  let gc_bytes_copied = "gc_bytes_copied"
  let gc_objects_marked = "gc_objects_marked"
  let young_blocks_promoted = "young_blocks_promoted"
  let fcalls = "fcalls"
  let pinvokes = "pinvokes"
  let jni_calls = "jni_calls"
  let safepoint_polls = "safepoint_polls"
  let msgs_sent = "msgs_sent"
  let bytes_sent = "bytes_sent"
  let eager_sends = "eager_sends"
  let rndv_sends = "rndv_sends"
  let unexpected_msgs = "unexpected_msgs"
  let retransmits = "retransmits"
  let retx_giveups = "retx_giveups"
  let acks = "acks"
  let dup_drops = "dup_drops"
  let ooo_drops = "ooo_drops"
  let corrupt_drops = "corrupt_drops"
  let fault_drops = "fault_drops"
  let fault_dups = "fault_dups"
  let fault_delays = "fault_delays"
  let fault_corrupts = "fault_corrupts"
  let ser_objects = "ser_objects"
  let deser_objects = "deser_objects"
  let visited_probes = "visited_probes"
  let buffers_created = "buffers_created"
  let buffers_reused = "buffers_reused"
  let buffers_reaped = "buffers_reaped"
end
