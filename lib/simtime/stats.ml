(* Counters plus named histograms over virtual time.

   Histograms use half-octave log2 buckets: bucket [i] holds values in
   (2^((i-1)/2), 2^(i/2)]. Quantiles are read off the bucket boundaries,
   so p50/p99 are upper bounds accurate to ~41% — plenty for "mechanism X
   cost about T" assertions, and entirely deterministic. *)

let n_buckets = 128

(* Values <= 1 ns land in bucket 0. *)
let bucket_of v =
  if v <= 1.0 then 0
  else
    let i = int_of_float (Float.ceil (2.0 *. Float.log2 v)) in
    if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i

let bucket_upper i = Float.pow 2.0 (float_of_int i /. 2.0)

type hist = {
  mutable h_n : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array;
}

let fresh_hist () =
  {
    h_n = 0;
    h_sum = 0.0;
    h_min = infinity;
    h_max = neg_infinity;
    h_buckets = Array.make n_buckets 0;
  }

type t = {
  counters : (string, int ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

let create () : t =
  { counters = Hashtbl.create 64; hists = Hashtbl.create 16 }

let cell t key =
  match Hashtbl.find_opt t.counters key with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counters key r;
      r

let add t key n =
  if n < 0 then invalid_arg "Stats.add: negative amount";
  let r = cell t key in
  r := !r + n

let incr t key = add t key 1

let get t key =
  match Hashtbl.find_opt t.counters key with Some r -> !r | None -> 0

let hist_cell t key =
  match Hashtbl.find_opt t.hists key with
  | Some h -> h
  | None ->
      let h = fresh_hist () in
      Hashtbl.add t.hists key h;
      h

let observe t key v =
  if v < 0.0 then invalid_arg "Stats.observe: negative value";
  let h = hist_cell t key in
  h.h_n <- h.h_n + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let b = bucket_of v in
  h.h_buckets.(b) <- h.h_buckets.(b) + 1

let with_timer t key ~now f =
  let t0 = now () in
  Fun.protect
    ~finally:(fun () -> observe t key (Float.max 0.0 (now () -. t0)))
    f

let reset t =
  Hashtbl.iter (fun _ r -> r := 0) t.counters;
  Hashtbl.reset t.hists

(* Fold [from] into [t]: counters add; histogram counts, sums and buckets
   add, extrema combine. The parallel execution mode gives each domain
   its own accumulator and merges on snapshot, so hot-path increments
   never cross domains (DESIGN.md §15). Call only when [from]'s owning
   domain is quiescent (after the run joins). *)
let absorb t ~from =
  Hashtbl.iter (fun k r -> add t k !r) from.counters;
  Hashtbl.iter
    (fun k h ->
      let dst = hist_cell t k in
      dst.h_n <- dst.h_n + h.h_n;
      dst.h_sum <- dst.h_sum +. h.h_sum;
      if h.h_n > 0 then begin
        if h.h_min < dst.h_min then dst.h_min <- h.h_min;
        if h.h_max > dst.h_max then dst.h_max <- h.h_max
      end;
      Array.iteri
        (fun i v -> dst.h_buckets.(i) <- dst.h_buckets.(i) + v)
        h.h_buckets)
    from.hists

let merged ts =
  let acc = create () in
  List.iter (fun t -> absorb acc ~from:t) ts;
  acc

(* ------------------------------------------------------------------ *)
(* Summaries                                                           *)
(* ------------------------------------------------------------------ *)

type summary = {
  n : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p99 : float;
}

let quantile h q =
  if h.h_n = 0 then 0.0
  else begin
    let target = Float.max 1.0 (Float.ceil (q *. float_of_int h.h_n)) in
    let cum = ref 0 in
    let idx = ref (n_buckets - 1) in
    (try
       for i = 0 to n_buckets - 1 do
         cum := !cum + h.h_buckets.(i);
         if float_of_int !cum >= target then begin
           idx := i;
           raise Exit
         end
       done
     with Exit -> ());
    Float.min h.h_max (Float.max h.h_min (bucket_upper !idx))
  end

let summarize h =
  {
    n = h.h_n;
    sum = h.h_sum;
    min = (if h.h_n = 0 then 0.0 else h.h_min);
    max = (if h.h_n = 0 then 0.0 else h.h_max);
    p50 = quantile h 0.5;
    p99 = quantile h 0.99;
  }

let hist t key = Option.map summarize (Hashtbl.find_opt t.hists key)

let to_alist t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let hists_alist t =
  Hashtbl.fold (fun k h acc -> (k, summarize h) :: acc) t.hists []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp ppf t =
  Format.pp_open_vbox ppf 0;
  List.iter
    (fun (k, v) -> Format.fprintf ppf "%-28s %d@," k v)
    (to_alist t);
  List.iter
    (fun (k, s) ->
      Format.fprintf ppf "%-28s n=%d sum=%.0f min=%.0f max=%.0f p50=%.0f \
                          p99=%.0f@,"
        k s.n s.sum s.min s.max s.p50 s.p99)
    (hists_alist t);
  Format.pp_close_box ppf ()

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  snap_counters : (string * int) list;  (* sorted by key *)
  snap_hists : (string * hist) list;  (* sorted by key; private copies *)
}

let copy_hist h = { h with h_buckets = Array.copy h.h_buckets }

let snapshot t =
  {
    snap_counters = to_alist t;
    snap_hists =
      Hashtbl.fold (fun k h acc -> (k, copy_hist h) :: acc) t.hists []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
  }

(* Merge two sorted assoc lists over the union of their keys. *)
let rec merge_assoc f xs ys =
  match (xs, ys) with
  | [], [] -> []
  | (k, x) :: xs', [] -> (k, f (Some x) None) :: merge_assoc f xs' []
  | [], (k, y) :: ys' -> (k, f None (Some y)) :: merge_assoc f [] ys'
  | (kx, x) :: xs', (ky, y) :: ys' ->
      let c = String.compare kx ky in
      if c = 0 then (kx, f (Some x) (Some y)) :: merge_assoc f xs' ys'
      else if c < 0 then (kx, f (Some x) None) :: merge_assoc f xs' ys
      else (ky, f None (Some y)) :: merge_assoc f xs ys'

(* [diff later earlier]: counter and histogram deltas. A histogram delta
   keeps the later snapshot's min/max (the deltas of extrema are not
   recoverable from summaries); count, sum and the buckets — hence
   p50/p99 — are true deltas. *)
let diff later earlier =
  let counters =
    merge_assoc
      (fun l e ->
        Option.value ~default:0 l - Option.value ~default:0 e)
      later.snap_counters earlier.snap_counters
  in
  let hists =
    merge_assoc
      (fun l e ->
        match (l, e) with
        | Some l, None -> copy_hist l
        | None, Some _ -> fresh_hist ()
        | None, None -> fresh_hist ()
        | Some l, Some e ->
            let h = copy_hist l in
            h.h_n <- l.h_n - e.h_n;
            h.h_sum <- l.h_sum -. e.h_sum;
            Array.iteri
              (fun i v -> h.h_buckets.(i) <- v - e.h_buckets.(i))
              l.h_buckets;
            h)
      later.snap_hists earlier.snap_hists
  in
  { snap_counters = counters; snap_hists = hists }

let snapshot_counters s = s.snap_counters
let snapshot_hists s = List.map (fun (k, h) -> (k, summarize h)) s.snap_hists

let counter_value s key =
  match List.assoc_opt key s.snap_counters with Some v -> v | None -> 0

let hist_summary s key = Option.map summarize (List.assoc_opt key s.snap_hists)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Field order and float formatting are fixed so the output is stable
   across runs: tests golden-compare it and the CI gate parses it. *)
let to_json s =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "{\n  \"counters\": {";
  List.iteri
    (fun i (k, v) ->
      out "%s\n    \"%s\": %d" (if i = 0 then "" else ",") (json_escape k) v)
    s.snap_counters;
  out "\n  },\n  \"histograms\": {";
  List.iteri
    (fun i (k, h) ->
      let sm = summarize h in
      out
        "%s\n    \"%s\": {\"count\": %d, \"sum\": %.3f, \"min\": %.3f, \
         \"max\": %.3f, \"p50\": %.3f, \"p99\": %.3f}"
        (if i = 0 then "" else ",")
        (json_escape k) sm.n sm.sum sm.min sm.max sm.p50 sm.p99)
    s.snap_hists;
  out "\n  }\n}\n";
  Buffer.contents buf

module Key = struct
  let pins = "pins"
  let unpins = "unpins"
  let pins_avoided = "pins_avoided"
  let pins_deferred = "pins_deferred"
  let conditional_pins = "conditional_pins"
  let conditional_pins_dropped = "conditional_pins_dropped"
  let gc_young = "gc_young"
  let gc_full = "gc_full"
  let gc_bytes_copied = "gc_bytes_copied"
  let gc_objects_marked = "gc_objects_marked"
  let young_blocks_promoted = "young_blocks_promoted"
  let fcalls = "fcalls"
  let pinvokes = "pinvokes"
  let jni_calls = "jni_calls"
  let safepoint_polls = "safepoint_polls"
  let msgs_sent = "msgs_sent"
  let bytes_sent = "bytes_sent"
  let msgs_intra_node = "msgs_intra_node"
  let msgs_inter_node = "msgs_inter_node"
  let bytes_intra_node = "bytes_intra_node"
  let bytes_inter_node = "bytes_inter_node"
  let eager_sends = "eager_sends"
  let rndv_sends = "rndv_sends"
  let rma_puts = "rma_puts"
  let rma_gets = "rma_gets"
  let rma_accumulates = "rma_accumulates"
  let rma_fences = "rma_fences"
  let rma_locks = "rma_locks"
  let rdma_reg_hits = "rdma_reg_hits"
  let rdma_reg_misses = "rdma_reg_misses"
  let rdma_reg_evictions = "rdma_reg_evictions"
  let rdma_write_rndv = "rdma_write_rndv"
  let rdma_read_rndv = "rdma_read_rndv"
  let rdma_eager_copies = "rdma_eager_copies"
  let unexpected_msgs = "unexpected_msgs"
  let retransmits = "retransmits"
  let retx_giveups = "retx_giveups"
  let acks = "acks"
  let dup_drops = "dup_drops"
  let ooo_drops = "ooo_drops"
  let corrupt_drops = "corrupt_drops"
  let fault_drops = "fault_drops"
  let fault_dups = "fault_dups"
  let fault_delays = "fault_delays"
  let fault_corrupts = "fault_corrupts"
  let proc_kills = "proc_kills"
  let proc_detections = "proc_detections"
  let ft_silenced = "ft_silenced"
  let checkpoints = "checkpoints"
  let restores = "restores"
  let ser_objects = "ser_objects"
  let deser_objects = "deser_objects"
  let visited_probes = "visited_probes"
  let buffers_created = "buffers_created"
  let buffers_reused = "buffers_reused"
  let buffers_reaped = "buffers_reaped"

  (* Histogram keys (virtual nanoseconds unless noted). *)
  let h_ch3_send = "ch3/send_ns"
  let h_ch3_eager = "ch3/eager_send_ns"
  let h_ch3_rndv = "ch3/rndv_send_ns"
  let h_ch3_retransmit = "ch3/retransmit_backoff_ns"
  let h_ft_detect = "ft/detect_latency_ns"
  let h_sched_step = "sched/step_ns"
  let h_gc_young_pause = "gc/young_pause_ns"
  let h_gc_full_pause = "gc/full_pause_ns"
  let h_gc_pin_poll = "gc/pin_poll_ns"
  let h_ser_encode = "ser/encode_ns"
  let h_ser_decode = "ser/decode_ns"
  let h_fcall_gate = "gate/fcall_ns"
  let h_pinvoke_gate = "gate/pinvoke_ns"
  let h_jni_gate = "gate/jni_ns"
end
