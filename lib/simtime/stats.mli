(** Named event counters.

    Each simulated subsystem records how often its mechanisms fire (pins,
    pins avoided by the policy, GC collections, messages, FCalls, visited-
    list probes, ...). Counters back the ablation tables and let tests assert
    on mechanism behaviour rather than only on timings. *)

type t

val create : unit -> t

val incr : t -> string -> unit
(** Increment a counter by one, creating it at zero if absent. *)

val add : t -> string -> int -> unit
(** Add [n] (which may be any non-negative int) to a counter. *)

val get : t -> string -> int
(** Current value, 0 if the counter was never touched. *)

val reset : t -> unit
(** Zero every counter. *)

val to_alist : t -> (string * int) list
(** All counters, sorted by name. *)

val pp : Format.formatter -> t -> unit

(** Conventional counter names used across the codebase, so that tests, the
    harness and the libraries agree on spelling. *)
module Key : sig
  val pins : string
  val unpins : string
  val pins_avoided : string
  val pins_deferred : string
  val conditional_pins : string
  val conditional_pins_dropped : string
  val gc_young : string
  val gc_full : string
  val gc_bytes_copied : string
  val gc_objects_marked : string
  val young_blocks_promoted : string
  val fcalls : string
  val pinvokes : string
  val jni_calls : string
  val safepoint_polls : string
  val msgs_sent : string
  val bytes_sent : string
  val eager_sends : string
  val rndv_sends : string
  val unexpected_msgs : string

  val retransmits : string
  (** Frames re-sent by the reliable-delivery layer after an ack timeout. *)

  val retx_giveups : string
  (** Peers declared unreachable after [max_retries] timeouts. *)

  val acks : string
  (** Cumulative acknowledgements sent by the reliable-delivery layer. *)

  val dup_drops : string
  (** Duplicate (already-delivered) frames and stale control packets
      suppressed on receive. *)

  val ooo_drops : string
  (** Out-of-order (future-sequence) frames dropped pending go-back-N
      retransmission. *)

  val corrupt_drops : string
  (** Frames whose payload failed the wire checksum and were discarded. *)

  val fault_drops : string
  (** Packets destroyed by the fault-injection channel (loss + partition). *)

  val fault_dups : string
  (** Packets duplicated by the fault-injection channel. *)

  val fault_delays : string
  (** Packets held back (reordered) by the fault-injection channel. *)

  val fault_corrupts : string
  (** Packets whose bits were flipped by the fault-injection channel. *)

  val ser_objects : string
  val deser_objects : string
  val visited_probes : string
  val buffers_created : string
  val buffers_reused : string
  val buffers_reaped : string
end
