(** Named event counters and virtual-time histograms.

    Each simulated subsystem records how often its mechanisms fire (pins,
    pins avoided by the policy, GC collections, messages, FCalls, visited-
    list probes, ...) and — via histograms — how much virtual time each
    firing cost. Counters back the ablation tables; histograms back the
    profile snapshot and the CI perf gate, letting tests assert "mechanism
    X fired N times and cost at most T" instead of eyeballing timelines. *)

type t

val create : unit -> t

val incr : t -> string -> unit
(** Increment a counter by one, creating it at zero if absent. *)

val add : t -> string -> int -> unit
(** Add [n] (which may be any non-negative int) to a counter. *)

val get : t -> string -> int
(** Current value, 0 if the counter was never touched. *)

val observe : t -> string -> float -> unit
(** Record a non-negative sample (virtual nanoseconds by convention) into
    the named histogram, creating it if absent. *)

val with_timer : t -> string -> now:(unit -> float) -> (unit -> 'a) -> 'a
(** [with_timer t key ~now f] runs [f] and observes [now() - now()@entry]
    into [key] — including when [f] raises. [now] is typically the
    environment's virtual clock ({!Env.with_timer} wires that up). *)

val reset : t -> unit
(** Zero every counter and drop every histogram. *)

val absorb : t -> from:t -> unit
(** Fold [from]'s counters and histograms into [t] (counters and bucket
    populations add; extrema combine). The merge half of per-domain
    accumulation under parallel execution — call only once [from]'s
    owning domain has quiesced (after the run joins). *)

val merged : t list -> t
(** A fresh accumulator absorbing each input in order. *)

(** Derived view of one histogram. [p50]/[p99] are read off half-octave
    log2 bucket boundaries: deterministic upper bounds, accurate to ~41%,
    clamped into [[min], [max]]. *)
type summary = {
  n : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p99 : float;
}

val hist : t -> string -> summary option
(** Summary of a histogram, or [None] if nothing was ever observed. *)

val to_alist : t -> (string * int) list
(** All counters, sorted by name. *)

val hists_alist : t -> (string * summary) list
(** All histograms, sorted by name. *)

val pp : Format.formatter -> t -> unit

(** {1 Snapshots}

    An immutable copy of every counter and histogram, cheap enough to take
    around a region of interest. [diff] turns two snapshots into the
    activity between them; [to_json] is the stable machine-readable form
    written to [results/profile_snapshot.json]. *)

type snapshot

val snapshot : t -> snapshot

val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier] subtracts counter values, histogram counts, sums
    and buckets (so quantiles of a diff describe only the interval).
    Histogram min/max are carried from [later] — interval extrema are not
    recoverable from two endpoint summaries. *)

val snapshot_counters : snapshot -> (string * int) list
val snapshot_hists : snapshot -> (string * summary) list
val counter_value : snapshot -> string -> int
val hist_summary : snapshot -> string -> summary option

val to_json : snapshot -> string
(** Stable field order (keys sorted, fixed float formatting): suitable for
    golden tests and the CI gate. *)

(** Conventional counter and histogram names used across the codebase, so
    that tests, the harness and the libraries agree on spelling. *)
module Key : sig
  val pins : string
  val unpins : string
  val pins_avoided : string
  val pins_deferred : string
  val conditional_pins : string
  val conditional_pins_dropped : string
  val gc_young : string
  val gc_full : string
  val gc_bytes_copied : string
  val gc_objects_marked : string
  val young_blocks_promoted : string
  val fcalls : string
  val pinvokes : string
  val jni_calls : string
  val safepoint_polls : string
  val msgs_sent : string
  val bytes_sent : string
  val msgs_intra_node : string
  val msgs_inter_node : string
  val bytes_intra_node : string
  val bytes_inter_node : string
  val eager_sends : string
  val rndv_sends : string
  val unexpected_msgs : string

  (* One-sided RMA ([Mpi_core.Rma]) and the RDMA channel's pin-down
     registration cache ([Mpi_core.Rdma_channel]). *)
  val rma_puts : string
  val rma_gets : string
  val rma_accumulates : string
  val rma_fences : string
  val rma_locks : string

  val rdma_reg_hits : string
  (** Registration requests covered by a cached (still-pinned) region. *)

  val rdma_reg_misses : string
  (** Registrations that had to pin fresh memory (base + per-byte cost). *)

  val rdma_reg_evictions : string
  (** LRU registrations deregistered to make room under the capacity. *)

  val rdma_write_rndv : string
  (** Rendezvous transfers that chose the RDMA-write variant. *)

  val rdma_read_rndv : string
  (** Rendezvous transfers that chose the RDMA-read variant. *)

  val rdma_eager_copies : string
  (** Small transfers staged through pre-registered bounce buffers. *)

  val retransmits : string
  (** Frames re-sent by the reliable-delivery layer after an ack timeout. *)

  val retx_giveups : string
  (** Peers declared unreachable after [max_retries] timeouts. *)

  val acks : string
  (** Cumulative acknowledgements sent by the reliable-delivery layer. *)

  val dup_drops : string
  (** Duplicate (already-delivered) frames and stale control packets
      suppressed on receive. *)

  val ooo_drops : string
  (** Out-of-order (future-sequence) frames dropped pending go-back-N
      retransmission. *)

  val corrupt_drops : string
  (** Frames whose payload failed the wire checksum and were discarded. *)

  val fault_drops : string
  (** Packets destroyed by the fault-injection channel (loss + partition). *)

  val fault_dups : string
  (** Packets duplicated by the fault-injection channel. *)

  val fault_delays : string
  (** Packets held back (reordered) by the fault-injection channel. *)

  val fault_corrupts : string
  (** Packets whose bits were flipped by the fault-injection channel. *)

  val proc_kills : string
  (** Ranks torn down by a fail-stop kill event ({!Fault.kill}). *)

  val proc_detections : string
  (** Rank failures declared by the heartbeat/timeout detector. *)

  val ft_silenced : string
  (** Packets dropped because an endpoint (sender or receiver) is a dead
      rank — the failure layer's silencer. *)

  val checkpoints : string
  (** VM-state checkpoints taken (serialized heap images stored). *)

  val restores : string
  (** VM-state restores (checkpoint images deserialized into a heap). *)

  val ser_objects : string
  val deser_objects : string
  val visited_probes : string
  val buffers_created : string
  val buffers_reused : string
  val buffers_reaped : string

  (** {2 Histogram keys} — all in virtual nanoseconds. *)

  val h_ch3_send : string
  (** Every point-to-point send, eager and rendezvous together. *)

  val h_ch3_eager : string
  val h_ch3_rndv : string
  (** Rendezvous sends, measured from RTS to sender-side completion. *)

  val h_ch3_retransmit : string
  (** The backoff that elapsed before each go-back-N retransmission. *)

  val h_ft_detect : string
  (** Failure-detection latency: kill event to the detector declaring the
      rank dead. *)

  val h_sched_step : string
  (** Collective schedule step dispatch; per-algorithm variants live under
      ["sched/step_ns/<schedule name>"]. *)

  val h_gc_young_pause : string
  val h_gc_full_pause : string

  val h_gc_pin_poll : string
  (** Mark-phase resolution of conditional pin requests. *)

  val h_ser_encode : string
  val h_ser_decode : string
  val h_fcall_gate : string
  val h_pinvoke_gate : string
  val h_jni_gate : string
end
