type t = {
  clock : Clock.t;
  cost : Cost.t;
  stats : Stats.t;
}

let create ?(cost = Cost.motor) () =
  { clock = Clock.create (); cost; stats = Stats.create () }

let with_cost cost t = { t with cost }
let now_us t = Clock.now_us t.clock
let now_ns t = Clock.now_ns t.clock
let charge t ns = Clock.advance t.clock ns

let charge_per_byte t ns_per_byte n =
  if n < 0 then invalid_arg "Env.charge_per_byte: negative byte count";
  Clock.advance t.clock (ns_per_byte *. float_of_int n)

let count t key = Stats.incr t.stats key
let count_n t key n = Stats.add t.stats key n
let observe t key v = Stats.observe t.stats key v

let with_timer t key f =
  Stats.with_timer t.stats key ~now:(fun () -> Clock.now_ns t.clock) f
