(** Layer-neutral span emission.

    Subsystems below the MPI library (the GC, the serializer, the call
    gates) cannot depend on [Mpi_core.Trace]; they emit typed span events
    here instead, and [Trace.enable] installs a sink per environment that
    forwards them into its ring buffer. Without a sink, emission is a
    cheap no-op.

    Spans come in two flavours, mirroring the Chrome trace format they
    export to: {e sync} spans (no [id]) must nest properly per rank —
    begin/end brackets around a scope on one fiber; {e async} spans carry
    an [id] and may overlap freely (a rendezvous in flight, a collective
    schedule trickling forward). *)

type kind = Begin | End | Instant

type sink =
  kind:kind ->
  id:int option ->
  rank:int ->
  cat:string ->
  name:string ->
  args:(string * string) list ->
  unit

val set_sink : Env.t -> sink -> unit
(** Install (or replace) the environment's sink. *)

val clear_sink : Env.t -> unit
val installed : unit -> int
(** Number of environments with a sink (leak tests). *)

val emit :
  Env.t ->
  kind:kind ->
  ?id:int ->
  rank:int ->
  cat:string ->
  name:string ->
  ?args:(string * string) list ->
  unit ->
  unit
(** Rank [-1] denotes the runtime itself (GC, serializer) rather than a
    communicating rank. *)

val span_begin :
  Env.t ->
  ?id:int ->
  rank:int ->
  cat:string ->
  name:string ->
  ?args:(string * string) list ->
  unit ->
  unit

val span_end :
  Env.t ->
  ?id:int ->
  rank:int ->
  cat:string ->
  name:string ->
  ?args:(string * string) list ->
  unit ->
  unit

val instant :
  Env.t ->
  rank:int ->
  cat:string ->
  name:string ->
  ?args:(string * string) list ->
  unit ->
  unit

val with_span :
  Env.t ->
  rank:int ->
  cat:string ->
  name:string ->
  ?args:(string * string) list ->
  (unit -> 'a) ->
  'a
(** Sync span around a scope; the end event is emitted even on raise. *)
