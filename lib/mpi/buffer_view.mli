(** User-buffer abstraction for the device layer.

    MPICH's channel interface moves bytes between address spaces; in Motor
    the "address space" may be the managed heap (a pinned object's payload)
    and in the native baseline a plain [Bytes.t]. A view captures the length
    plus blit functions, so the device performs zero-copy transfers into
    whatever memory the binding resolved — including a stale address if the
    binding failed to pin a movable object, which is exactly the corruption
    hazard the paper's pinning policy exists to prevent. *)

type t = {
  len : int;
  blit_to : pos:int -> dst:Bytes.t -> dst_off:int -> len:int -> unit;
      (** copy out of the user buffer (sends) *)
  blit_from : pos:int -> src:Bytes.t -> src_off:int -> len:int -> unit;
      (** copy into the user buffer (receives) *)
}

val length : t -> int
val of_bytes : Bytes.t -> t
val of_bytes_sub : Bytes.t -> off:int -> len:int -> t

val sub_view : t -> off:int -> len:int -> t
(** A window [off, off + len) of an existing view. Transfers read from /
    land in the parent's memory directly, so block algorithms (van de
    Geijn bcast, recursive-doubling allgather, binomial scatter/gather)
    never stage a scratch copy of the payload — which would charge n×
    global time under the serial virtual clock (DESIGN.md §9). *)

val concat : t list -> t
(** The views laid end to end as one logical buffer. A message sent from
    (or received into) a concat view blits each fragment straight
    between its own memory and the wire — the zero-copy equivalent of
    packing subtree blocks into a staging buffer. *)

val read_all : t -> Bytes.t
val write_all : t -> Bytes.t -> unit
(** Raises [Invalid_argument] if sizes differ. *)
