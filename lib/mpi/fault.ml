module Key = Simtime.Stats.Key

type partition = {
  pt_src : int;
  pt_dst : int;
  pt_from_ns : float;
  pt_until_ns : float;
}

type kill = {
  k_rank : int;
  k_at_ns : float;
  k_restart_ns : float option;
}

let kill ?restart_after_ns ~rank ~at_ns () =
  if rank < 0 then invalid_arg "Fault.kill: rank must be >= 0";
  if at_ns < 0.0 then invalid_arg "Fault.kill: at_ns must be >= 0";
  (match restart_after_ns with
  | Some d when d < 0.0 ->
      invalid_arg "Fault.kill: restart_after_ns must be >= 0"
  | _ -> ());
  { k_rank = rank; k_at_ns = at_ns; k_restart_ns = restart_after_ns }

type plan = {
  seed : int;
  drop : float;
  duplicate : float;
  corrupt : float;
  delay : float;
  delay_ns : float;
  partitions : partition list;
  kills : kill list;
}

let plan ?(seed = 1) ?(drop = 0.0) ?(duplicate = 0.0) ?(corrupt = 0.0)
    ?(delay = 0.0) ?(delay_ns = 100_000.0) ?(partitions = []) ?(kills = []) ()
    =
  let check name p =
    if p < 0.0 || p > 1.0 then
      invalid_arg (Printf.sprintf "Fault.plan: %s must be in [0, 1]" name)
  in
  check "drop" drop;
  check "duplicate" duplicate;
  check "corrupt" corrupt;
  check "delay" delay;
  if delay_ns < 0.0 then invalid_arg "Fault.plan: delay_ns must be >= 0";
  (match
     List.find_opt
       (fun k -> List.length (List.filter (fun k' -> k'.k_rank = k.k_rank) kills) > 1)
       kills
   with
  | Some k ->
      invalid_arg
        (Printf.sprintf "Fault.plan: multiple kills for rank %d" k.k_rank)
  | None -> ());
  { seed; drop; duplicate; corrupt; delay; delay_ns; partitions; kills }

(* ------------------------------------------------------------------ *)
(* Deterministic randomness: a splitmix64-style hash of                 *)
(* (seed, packet index, draw index). Every draw is a pure function of   *)
(* the plan and the global send order, so identical seeds replay        *)
(* identical fault schedules regardless of how many draws other packets *)
(* consumed. No Random.self_init anywhere.                              *)
(* ------------------------------------------------------------------ *)

let golden = 0x9e3779b97f4a7c15L

let mix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let draw ~seed ~packet ~salt =
  let z =
    Int64.add
      (Int64.add (Int64.of_int seed)
         (Int64.mul (Int64.of_int (packet + 1)) golden))
      (Int64.mul (Int64.of_int (salt + 1)) 0xd1342543de82ef95L)
  in
  (* 53 random bits -> [0, 1) *)
  Int64.to_float (Int64.shift_right_logical (mix64 z) 11)
  *. (1.0 /. 9007199254740992.0)

(* ------------------------------------------------------------------ *)
(* The decorator                                                        *)
(* ------------------------------------------------------------------ *)

type delayed = {
  d_release : float;
  d_id : int;  (* injection order: stable tiebreak *)
  d_src : int;
  d_dst : int;
  d_packet : Packet.t;
}

type t = {
  fplan : plan;
  env : Simtime.Env.t;
  chan : Channel.t;
  mutable counter : int;  (* physical sends observed, drives the PRNG *)
  mutable held : delayed list;  (* unsorted; sorted at release time *)
}

let now t = Simtime.Clock.now_ns t.env.Simtime.Env.clock

let partitioned t ~src ~dst at =
  List.exists
    (fun p ->
      (p.pt_src = -1 || p.pt_src = src)
      && (p.pt_dst = -1 || p.pt_dst = dst)
      && at >= p.pt_from_ns && at < p.pt_until_ns)
    t.fplan.partitions

(* Flip one payload bit, or perturb a header field when there is no
   payload. Corruption of an unframed Ack cannot be detected by the
   receiver's checksum (acks carry none), so it is modelled as a loss --
   on real links the NIC's CRC discards such packets the same way. *)
let corrupt_packet ~bit p =
  let flip_payload b =
    let b = Bytes.copy b in
    let pos = bit mod (Bytes.length b * 8) in
    let byte = pos / 8 and shift = pos mod 8 in
    Bytes.set b byte
      (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl shift)));
    b
  in
  let rec go = function
    | Packet.Eager (e, b) when Bytes.length b > 0 ->
        Some (Packet.Eager (e, flip_payload b))
    | Packet.Eager (e, b) ->
        Some (Packet.Eager ({ e with Packet.e_tag = e.Packet.e_tag lxor 1 }, b))
    | Packet.Rndv_data (id, b) when Bytes.length b > 0 ->
        Some (Packet.Rndv_data (id, flip_payload b))
    | Packet.Rndv_data (id, b) -> Some (Packet.Rndv_data (id lxor 1, b))
    | Packet.Rts (e, id) ->
        Some
          (Packet.Rts ({ e with Packet.e_bytes = e.Packet.e_bytes lxor 1 }, id))
    | Packet.Cts id -> Some (Packet.Cts (id lxor 1))
    | Packet.Nak (id, msg) -> Some (Packet.Nak (id lxor 1, msg))
    | Packet.Frame (f, inner) -> (
        match go inner with
        | Some inner -> Some (Packet.Frame (f, inner))
        | None -> None)
    | Packet.Ack _ -> None
  in
  go p

let flush_due t =
  match t.held with
  | [] -> ()
  | _ ->
      let horizon = now t in
      let due, rest =
        List.partition (fun d -> d.d_release <= horizon) t.held
      in
      t.held <- rest;
      List.iter
        (fun d -> t.chan.Channel.send ~src:d.d_src ~dst:d.d_dst d.d_packet)
        (List.sort
           (fun a b -> compare (a.d_release, a.d_id) (b.d_release, b.d_id))
           due)

let send t ~src ~dst packet =
  flush_due t;
  let at = now t in
  if partitioned t ~src ~dst at then begin
    Simtime.Env.count t.env Key.fault_drops;
    Trace.record t.env ~rank:src ~op:"drop"
      ~detail:(Printf.sprintf "partition %d->%d %s" src dst
                 (Packet.describe packet))
  end
  else begin
    let id = t.counter in
    t.counter <- id + 1;
    let p = t.fplan in
    let roll salt = draw ~seed:p.seed ~packet:id ~salt in
    if roll 0 < p.drop then begin
      Simtime.Env.count t.env Key.fault_drops;
      Trace.record t.env ~rank:src ~op:"drop"
        ~detail:(Printf.sprintf "loss %d->%d %s" src dst
                   (Packet.describe packet))
    end
    else begin
      let packet, lost =
        if roll 1 < p.corrupt then begin
          Simtime.Env.count t.env Key.fault_corrupts;
          match corrupt_packet ~bit:(int_of_float (roll 2 *. 1_000_003.0))
                  packet
          with
          | Some corrupted -> (corrupted, false)
          | None -> (packet, true)
        end
        else (packet, false)
      in
      if lost then begin
        Simtime.Env.count t.env Key.fault_drops;
        Trace.record t.env ~rank:src ~op:"drop"
          ~detail:(Printf.sprintf "corrupt-ack %d->%d" src dst)
      end
      else begin
        if roll 3 < p.delay then begin
          Simtime.Env.count t.env Key.fault_delays;
          let release = at +. (roll 4 *. p.delay_ns) in
          t.held <-
            { d_release = release; d_id = id; d_src = src; d_dst = dst;
              d_packet = packet }
            :: t.held
        end
        else t.chan.Channel.send ~src ~dst packet;
        if roll 5 < p.duplicate then begin
          Simtime.Env.count t.env Key.fault_dups;
          t.chan.Channel.send ~src ~dst packet
        end
      end
    end
  end

let poll t ~rank =
  flush_due t;
  (* Held packets are progress pending on the clock, not a deadlock. *)
  if t.held <> [] then Fiber.note_activity ();
  t.chan.Channel.poll ~rank

let wrap ~env fplan chan =
  let t = { fplan; env; chan; counter = 0; held = [] } in
  {
    Channel.name = chan.Channel.name ^ "+fault";
    send = (fun ~src ~dst p -> send t ~src ~dst p);
    poll = (fun ~rank -> poll t ~rank);
    add_rank = chan.Channel.add_rank;
    n_ranks = chan.Channel.n_ranks;
  }
