let create ?topo env ~n_ranks =
  let cost = env.Simtime.Env.cost in
  (* One cost tier: shared memory is intra-node by construction, so the
     topology only feeds the per-tier traffic counters. *)
  Channel.make ~name:"shm" ~per_msg_ns:cost.shm_per_msg_ns
    ~per_byte_ns:cost.shm_ns_per_byte ?topo ~syscall_fraction:0.5 ~env
    ~n_ranks ()

(* ------------------------------------------------------------------ *)
(* Sharded cross-domain variant                                        *)
(* ------------------------------------------------------------------ *)

(* A Channel.t whose transport is real shared memory between OCaml 5
   domains: one SPSC ring per (src, dst) pair, so two domains exchanging
   messages touch only their own rings — sends never funnel through a
   process-wide lock. There is no virtual arrival gating (wall-clock
   replaces the latency model when execution is parallel); the sender
   still charges its own domain's clock the modelled CPU cost and counts
   traffic into its own domain's stats, so per-domain virtual accounting
   stays meaningful and the merged snapshot is comparable with
   cooperative runs.

   Ordering: per-(src,dst) FIFO holds trivially (one ring per pair);
   cross-pair ordering is whatever real time gives, exactly as between
   two sockets. The receiver's poll rotates a cursor over source rings
   so no sender is starved. *)

let max_parallel_ranks = 4096
let ring_capacity = 1024

let create_parallel ~env_for ~n_ranks =
  if n_ranks < 1 then invalid_arg "shm-sharded channel: need at least 1 rank";
  if n_ranks > max_parallel_ranks then
    invalid_arg
      (Printf.sprintf
         "shm-sharded channel: %d ranks exceeds the %d limit (rings are \
          allocated per pair)"
         n_ranks max_parallel_ranks);
  let rings =
    Array.init n_ranks (fun _ ->
        Array.init n_ranks (fun _ -> Spsc.create ~capacity:ring_capacity))
  in
  (* cursors.(r) is touched only by rank r's domain. *)
  let cursors = Array.make n_ranks 0 in
  let send ~src ~dst packet =
    if dst < 0 || dst >= n_ranks then
      invalid_arg
        (Printf.sprintf "shm-sharded channel: bad destination %d" dst);
    let env : Simtime.Env.t = env_for src in
    let cost = env.Simtime.Env.cost in
    let wire = Packet.wire_bytes packet in
    let frags = max 1 ((wire + cost.mtu_bytes - 1) / cost.mtu_bytes) in
    Simtime.Env.charge env
      (0.5 *. cost.shm_per_msg_ns *. float_of_int frags);
    Simtime.Env.count env Simtime.Stats.Key.msgs_sent;
    Simtime.Env.count_n env Simtime.Stats.Key.bytes_sent wire;
    Spsc.push rings.(src).(dst) packet;
    Fiber.note_activity ();
    Fiber.notify_fiber dst
  in
  let poll ~rank =
    if rank < 0 || rank >= n_ranks then
      invalid_arg (Printf.sprintf "shm-sharded channel: bad rank %d" rank);
    let start = cursors.(rank) in
    let found = ref None in
    (try
       for k = 0 to n_ranks - 1 do
         let src = (start + k) mod n_ranks in
         match Spsc.pop rings.(src).(rank) with
         | Some p ->
             cursors.(rank) <- (src + 1) mod n_ranks;
             found := Some p;
             raise Exit
         | None -> ()
       done
     with Exit -> ());
    (match !found with Some _ -> Fiber.note_activity () | None -> ());
    !found
  in
  let add_rank () =
    invalid_arg "shm-sharded channel: dynamic ranks not supported in parallel mode"
  in
  {
    Channel.name = "shm-sharded";
    send;
    poll;
    add_rank;
    n_ranks = (fun () -> n_ranks);
  }
