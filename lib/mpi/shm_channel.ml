let create ?topo env ~n_ranks =
  let cost = env.Simtime.Env.cost in
  (* One cost tier: shared memory is intra-node by construction, so the
     topology only feeds the per-tier traffic counters. *)
  Channel.make ~name:"shm" ~per_msg_ns:cost.shm_per_msg_ns
    ~per_byte_ns:cost.shm_ns_per_byte ?topo ~syscall_fraction:0.5 ~env
    ~n_ranks ()
