(** Event tracing for message-passing runs (in the spirit of MPICH's MPE
    logging): every device-level operation can be recorded with its
    virtual timestamp and rank, as an instant event or a typed span
    (begin/end with a category and key/value args), then dumped as a
    readable timeline, exported as a Chrome-trace JSON that loads in
    [chrome://tracing] and Perfetto, or handed to tests.

    Tracing is per-environment and off by default; enabling it attaches a
    bounded ring buffer (oldest events are dropped once full) and installs
    the environment's {!Simtime.Probe} sink, so spans emitted by the VM
    and serializer layers land in the same buffer as device events. *)

type kind = Instant | Span_begin | Span_end

type event = {
  t_us : float;  (** virtual time at which the event was recorded *)
  rank : int;  (** [-1] denotes the runtime (GC, serializer) *)
  op : string;  (** e.g. "isend", "eager", or a span name like "gc/full" *)
  detail : string;
  kind : kind;
  cat : string;  (** span category: "ch3", "coll", "gc", "ser", ... *)
  args : (string * string) list;
  span_id : int option;
      (** [Some id] marks an async span (rendezvous, schedule) that may
          overlap others; sync spans nest per rank. *)
}

type t

val enable : ?capacity:int -> Simtime.Env.t -> t
(** Attach a trace (default capacity 4096 events) to an environment.
    Subsequent device activity in any world sharing the environment is
    recorded. Enabling twice returns the existing trace. *)

val disable : Simtime.Env.t -> unit
(** Detach the environment's trace (if any) from the global registry and
    remove its probe sink, so long simulation campaigns that enable
    tracing per world do not accumulate dead environments. No-op if
    tracing was never enabled. *)

val registered : unit -> int
(** Number of environments currently holding a trace (leak tests). *)

val find : Simtime.Env.t -> t option
val record : Simtime.Env.t -> rank:int -> op:string -> detail:string -> unit
(** No-op when tracing is not enabled — safe on hot paths. *)

(** {1 Spans}

    Thin wrappers over {!Simtime.Probe}: no-ops unless tracing is enabled
    on the environment. Pass [id] for async spans (operations that overlap
    other activity on the same rank); omit it for scoped sync spans. *)

val span_begin :
  Simtime.Env.t ->
  ?id:int ->
  rank:int ->
  cat:string ->
  name:string ->
  ?args:(string * string) list ->
  unit ->
  unit

val span_end :
  Simtime.Env.t ->
  ?id:int ->
  rank:int ->
  cat:string ->
  name:string ->
  ?args:(string * string) list ->
  unit ->
  unit

val with_span :
  Simtime.Env.t ->
  rank:int ->
  cat:string ->
  name:string ->
  ?args:(string * string) list ->
  (unit -> 'a) ->
  'a

val open_spans : t -> int
(** Span begins minus span ends ever recorded: 0 when every span emitted
    so far is balanced (leak tests). *)

val events : t -> event list
(** Oldest first. *)

val merge_events : t list -> event list
(** Stable merge of several buffers by timestamp (ties keep per-buffer
    order, earlier buffers first): the read side of per-domain trace
    accumulation under parallel execution. Call after the run joins. *)

val length : t -> int
val dropped : t -> int
(** Events lost to the ring-buffer bound. *)

val clear : t -> unit

val pp_timeline : Format.formatter -> t -> unit
(** One line per event: [  123.4us r0 isend    dst=1 tag=0 64B]; span
    begins/ends are marked with [[] and []]. *)

val to_chrome_json : ?topo:Simtime.Topology.t -> t -> string
(** The trace as Chrome-trace JSON ("traceEvents" array): instants as
    ["i"], sync spans as ["B"]/["E"] pairs, async spans as ["b"]/["e"]
    pairs keyed by id, plus process/thread-name metadata. With [topo],
    each node becomes a Chrome process (pid = node id, named
    ["node N"]), so Perfetto groups the per-rank timelines by machine;
    without it everything lives in the single ["motor"] process. Span
    pairs are always well formed even after ring-buffer overflow: orphan
    ends are dropped, dangling begins are closed at the trace's last
    timestamp. Field order is fixed, so output is golden-testable. *)

val write_chrome : ?topo:Simtime.Topology.t -> path:string -> t -> unit
