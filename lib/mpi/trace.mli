(** Event tracing for message-passing runs (in the spirit of MPICH's MPE
    logging): every device-level operation can be recorded with its
    virtual timestamp and rank, then dumped as a readable timeline or
    handed to tests.

    Tracing is per-environment and off by default; enabling it attaches a
    bounded ring buffer (oldest events are dropped once full). *)

type event = {
  t_us : float;  (** virtual time at which the event was recorded *)
  rank : int;
  op : string;  (** e.g. "isend", "irecv", "eager", "cts" *)
  detail : string;
}

type t

val enable : ?capacity:int -> Simtime.Env.t -> t
(** Attach a trace (default capacity 4096 events) to an environment.
    Subsequent device activity in any world sharing the environment is
    recorded. Enabling twice returns the existing trace. *)

val disable : Simtime.Env.t -> unit
(** Detach the environment's trace (if any) from the global registry, so
    long simulation campaigns that enable tracing per world do not
    accumulate dead environments. No-op if tracing was never enabled. *)

val registered : unit -> int
(** Number of environments currently holding a trace (leak tests). *)

val find : Simtime.Env.t -> t option
val record : Simtime.Env.t -> rank:int -> op:string -> detail:string -> unit
(** No-op when tracing is not enabled — safe on hot paths. *)

val events : t -> event list
(** Oldest first. *)

val length : t -> int
val dropped : t -> int
(** Events lost to the ring-buffer bound. *)

val clear : t -> unit

val pp_timeline : Format.formatter -> t -> unit
(** One line per event: [  123.4us r0 isend    dst=1 tag=0 64B]. *)
