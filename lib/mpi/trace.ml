type kind = Instant | Span_begin | Span_end

type event = {
  t_us : float;
  rank : int;
  op : string;
  detail : string;
  kind : kind;
  cat : string;
  args : (string * string) list;
  span_id : int option;
}

type t = {
  env : Simtime.Env.t;
  capacity : int;
  buf : event option array;
  mutable next : int;  (* total events ever recorded *)
  mutable open_spans : int;  (* begins minus ends, ever *)
}

(* Traces attach to environments by identity; environments are few and
   long-lived, so a small association list is enough. Atomic so that
   under parallel execution each domain can look up its own trace while
   another domain enables/disables one — each [t] itself is still
   written by its environment's domain only, giving per-domain buffers
   with a stable merge on read (DESIGN.md §15). *)
let registry : (Simtime.Env.t * t) list Atomic.t = Atomic.make []

let rec registry_update f =
  let cur = Atomic.get registry in
  if not (Atomic.compare_and_set registry cur (f cur)) then registry_update f

let find env =
  List.find_map
    (fun (e, t) -> if e == env then Some t else None)
    (Atomic.get registry)

let push t ev =
  t.buf.(t.next mod t.capacity) <- Some ev;
  t.next <- t.next + 1

let pp_args = function
  | [] -> ""
  | args ->
      String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) args)

(* The Probe sink: spans emitted anywhere below us (GC, serializer, call
   gates) land in the same ring buffer as device events. *)
let sink t ~kind ~id ~rank ~cat ~name ~args =
  let kind =
    match kind with
    | Simtime.Probe.Begin ->
        t.open_spans <- t.open_spans + 1;
        Span_begin
    | Simtime.Probe.End ->
        t.open_spans <- t.open_spans - 1;
        Span_end
    | Simtime.Probe.Instant -> Instant
  in
  push t
    {
      t_us = Simtime.Env.now_us t.env;
      rank;
      op = name;
      detail = pp_args args;
      kind;
      cat;
      args;
      span_id = id;
    }

let enable ?(capacity = 4096) env =
  match find env with
  | Some t -> t
  | None ->
      let t =
        {
          env;
          capacity;
          buf = Array.make capacity None;
          next = 0;
          open_spans = 0;
        }
      in
      registry_update (fun l -> (env, t) :: l);
      Simtime.Probe.set_sink env (fun ~kind ~id ~rank ~cat ~name ~args ->
          sink t ~kind ~id ~rank ~cat ~name ~args);
      t

let disable env =
  Simtime.Probe.clear_sink env;
  registry_update (List.filter (fun (e, _) -> not (e == env)))

let registered () = List.length (Atomic.get registry)

let record env ~rank ~op ~detail =
  match find env with
  | None -> ()
  | Some t ->
      push t
        {
          t_us = Simtime.Env.now_us env;
          rank;
          op;
          detail;
          kind = Instant;
          cat = "";
          args = [];
          span_id = None;
        }

(* Span emission delegates to Probe so the MPI layers and the VM share one
   path (and one no-op fast path when tracing is off). *)
let span_begin env ?id ~rank ~cat ~name ?(args = []) () =
  Simtime.Probe.span_begin env ?id ~rank ~cat ~name ~args ()

let span_end env ?id ~rank ~cat ~name ?(args = []) () =
  Simtime.Probe.span_end env ?id ~rank ~cat ~name ~args ()

let with_span env ~rank ~cat ~name ?(args = []) f =
  Simtime.Probe.with_span env ~rank ~cat ~name ~args f

let open_spans t = t.open_spans
let length t = min t.next t.capacity
let dropped t = max 0 (t.next - t.capacity)

let events t =
  let n = length t in
  let start = if t.next > t.capacity then t.next mod t.capacity else 0 in
  List.init n (fun i ->
      match t.buf.((start + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let clear t =
  Array.fill t.buf 0 t.capacity None;
  t.next <- 0;
  t.open_spans <- 0

(* Stable merge of several per-domain buffers by timestamp: events with
   equal timestamps keep their per-buffer order, and buffers earlier in
   the list sort first among ties — so merging a parallel run's traces
   is deterministic given the buffers' contents. *)
let merge_events ts =
  List.concat_map events ts
  |> List.stable_sort (fun a b -> Float.compare a.t_us b.t_us)

let pp_timeline ppf t =
  List.iter
    (fun e ->
      let mark =
        match e.kind with
        | Instant -> " "
        | Span_begin -> "["
        | Span_end -> "]"
      in
      Format.fprintf ppf "%10.1fus r%-2d %s%-8s %s@." e.t_us e.rank mark e.op
        e.detail)
    (events t);
  if dropped t > 0 then
    Format.fprintf ppf "(%d earlier events dropped)@." (dropped t)

(* ------------------------------------------------------------------ *)
(* Chrome-trace (chrome://tracing / Perfetto) export                    *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* The runtime (rank -1) gets its own thread lane. *)
let tid_of_rank rank = if rank >= 0 then rank else 1000

(* A ring-buffer overflow can behead span pairs: an End whose Begin was
   overwritten, or (at the live end) a Begin whose End never happened.
   The exporter repairs both — orphan Ends are dropped, dangling Begins
   are closed at the last timestamp — so the output always loads. Sync
   spans (no id) pair per rank on a nesting stack; async spans pair on
   (cat, name, id). *)
type resolved = Keep | Drop

let to_chrome_json ?topo t =
  (* With a topology, each node becomes a Chrome process (pid = node id)
     so Perfetto groups the per-rank timelines by machine; the runtime
     lane stays with node 0. *)
  let pid_of_rank rank =
    match topo with
    | Some tp when rank >= 0 -> Simtime.Topology.node_of tp rank
    | _ -> 0
  in
  let evs = Array.of_list (events t) in
  let n = Array.length evs in
  let state = Array.make n Keep in
  let stacks : (int, (string * string * int) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let stack_of rank =
    match Hashtbl.find_opt stacks rank with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.replace stacks rank s;
        s
  in
  let async_open : (string * string * int, int) Hashtbl.t =
    Hashtbl.create 8
  in
  Array.iteri
    (fun i ev ->
      match (ev.kind, ev.span_id) with
      | Instant, _ -> ()
      | Span_begin, None ->
          let s = stack_of ev.rank in
          s := (ev.cat, ev.op, i) :: !s
      | Span_end, None -> (
          let s = stack_of ev.rank in
          match !s with
          | (cat, op, _) :: rest when cat = ev.cat && op = ev.op ->
              s := rest
          | _ -> state.(i) <- Drop)
      | Span_begin, Some id ->
          Hashtbl.replace async_open (ev.cat, ev.op, id) i
      | Span_end, Some id ->
          let key = (ev.cat, ev.op, id) in
          if Hashtbl.mem async_open key then Hashtbl.remove async_open key
          else state.(i) <- Drop)
    evs;
  let t_end =
    if n = 0 then 0.0 else (Array.fold_left (fun a e -> Float.max a e.t_us)) 0.0 evs
  in
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf "    "
  in
  let emit_args args =
    match args with
    | [] -> ()
    | args ->
        out ", \"args\": {";
        List.iteri
          (fun i (k, v) ->
            out "%s\"%s\": \"%s\""
              (if i = 0 then "" else ", ")
              (json_escape k) (json_escape v))
          args;
        out "}"
  in
  out "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  (* Name the process and each thread lane so Perfetto shows ranks, not
     bare tids. *)
  let ranks =
    Array.fold_left (fun acc e -> if List.mem e.rank acc then acc else e.rank :: acc) [] evs
    |> List.sort compare
  in
  (match topo with
  | None ->
      sep ();
      out
        "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": 0, \
         \"args\": {\"name\": \"motor\"}}"
  | Some _ ->
      let pids =
        List.sort_uniq compare (List.map pid_of_rank ranks)
      in
      let pids = if List.mem 0 pids then pids else 0 :: pids in
      List.iter
        (fun pid ->
          sep ();
          out
            "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %d, \
             \"tid\": 0, \"args\": {\"name\": \"node %d\"}}"
            pid pid)
        pids);
  List.iter
    (fun rank ->
      sep ();
      out
        "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": %d, \"tid\": %d, \
         \"args\": {\"name\": \"%s\"}}"
        (pid_of_rank rank) (tid_of_rank rank)
        (if rank >= 0 then Printf.sprintf "rank %d" rank else "runtime"))
    ranks;
  let emit_event ?ph_override ev =
    sep ();
    let ph =
      match ph_override with
      | Some p -> p
      | None -> (
          match (ev.kind, ev.span_id) with
          | Instant, _ -> "i"
          | Span_begin, None -> "B"
          | Span_end, None -> "E"
          | Span_begin, Some _ -> "b"
          | Span_end, Some _ -> "e")
    in
    let name_field =
      if ev.kind = Instant && ev.detail <> "" && ev.args = [] then
        ev.op ^ " " ^ ev.detail
      else ev.op
    in
    out "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%s\", \"ts\": %.3f, \
         \"pid\": %d, \"tid\": %d"
      (json_escape name_field)
      (json_escape (if ev.cat = "" then "event" else ev.cat))
      ph ev.t_us (pid_of_rank ev.rank) (tid_of_rank ev.rank);
    (match ev.span_id with Some id -> out ", \"id\": %d" id | None -> ());
    if ph = "i" then out ", \"s\": \"t\"";
    emit_args ev.args;
    out "}"
  in
  Array.iteri
    (fun i ev -> if state.(i) = Keep then emit_event ev)
    evs;
  (* Close dangling sync spans, innermost first. *)
  Hashtbl.iter
    (fun _rank stack ->
      List.iter
        (fun (cat, op, i) ->
          let ev = evs.(i) in
          emit_event ?ph_override:(Some "E")
            { ev with t_us = t_end; cat; op; args = []; detail = "" })
        !stack)
    stacks;
  (* Close dangling async spans. *)
  Hashtbl.iter
    (fun (_cat, _op, _id) i ->
      let ev = evs.(i) in
      emit_event ?ph_override:(Some "e") { ev with t_us = t_end; args = [] })
    async_open;
  out "\n]\n}\n";
  Buffer.contents buf

let write_chrome ?topo ~path t =
  let oc = open_out path in
  output_string oc (to_chrome_json ?topo t);
  close_out oc
