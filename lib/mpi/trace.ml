type event = {
  t_us : float;
  rank : int;
  op : string;
  detail : string;
}

type t = {
  env : Simtime.Env.t;
  capacity : int;
  buf : event option array;
  mutable next : int;  (* total events ever recorded *)
}

(* Traces attach to environments by identity; environments are few and
   long-lived, so a small association list is enough. *)
let registry : (Simtime.Env.t * t) list ref = ref []

let find env =
  List.find_map
    (fun (e, t) -> if e == env then Some t else None)
    !registry

let enable ?(capacity = 4096) env =
  match find env with
  | Some t -> t
  | None ->
      let t = { env; capacity; buf = Array.make capacity None; next = 0 } in
      registry := (env, t) :: !registry;
      t

let disable env =
  registry := List.filter (fun (e, _) -> not (e == env)) !registry

let registered () = List.length !registry

let record env ~rank ~op ~detail =
  match find env with
  | None -> ()
  | Some t ->
      t.buf.(t.next mod t.capacity) <-
        Some { t_us = Simtime.Env.now_us env; rank; op; detail };
      t.next <- t.next + 1

let length t = min t.next t.capacity
let dropped t = max 0 (t.next - t.capacity)

let events t =
  let n = length t in
  let start = if t.next > t.capacity then t.next mod t.capacity else 0 in
  List.init n (fun i ->
      match t.buf.((start + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let clear t =
  Array.fill t.buf 0 t.capacity None;
  t.next <- 0

let pp_timeline ppf t =
  List.iter
    (fun e ->
      Format.fprintf ppf "%10.1fus r%-2d %-8s %s@." e.t_us e.rank e.op
        e.detail)
    (events t);
  if dropped t > 0 then
    Format.fprintf ppf "(%d earlier events dropped)@." (dropped t)
