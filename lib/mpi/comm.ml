(* Membership is a descriptor, not necessarily an array: identity
   communicators (the world, contiguous shards, strided leader slices)
   are arithmetic progressions stored in O(1) — start, step, count — so a
   64k-rank world costs each rank three ints of membership state, not a
   64k-entry array per communicator. General enumerated memberships keep
   the dense representation, with a lazily-built reverse index so
   [comm_rank_of] is O(1) there too. *)

type membership =
  | Range of { start : int; step : int; count : int }
  | Enum of { ranks : int array; index : (int, int) Hashtbl.t Lazy.t }

type t = { ctx : int; ctx_coll : int; membership : membership }

let index_of ranks =
  lazy
    (let h = Hashtbl.create (Array.length ranks) in
     Array.iteri (fun i r -> Hashtbl.replace h r i) ranks;
     h)

(* Recognize an arithmetic progression with positive step, so [make]
   yields the O(1) descriptor whenever the membership admits one. *)
let normalize ranks =
  let n = Array.length ranks in
  if n = 1 then Range { start = ranks.(0); step = 1; count = 1 }
  else begin
    let step = ranks.(1) - ranks.(0) in
    let rec arith i =
      i >= n || (ranks.(i) - ranks.(i - 1) = step && arith (i + 1))
    in
    if step >= 1 && arith 2 then
      Range { start = ranks.(0); step; count = n }
    else Enum { ranks; index = index_of ranks }
  end

let make ~ctx ~members =
  if Array.length members = 0 then invalid_arg "Comm.make: empty group";
  { ctx; ctx_coll = ctx + 1; membership = normalize members }

let range ~ctx ?(step = 1) ~start ~count () =
  if count < 1 then invalid_arg "Comm.range: empty range";
  if step < 1 then invalid_arg "Comm.range: step must be positive";
  if start < 0 then invalid_arg "Comm.range: negative start";
  { ctx; ctx_coll = ctx + 1; membership = Range { start; step; count } }

let with_ctx t ~ctx = { t with ctx; ctx_coll = ctx + 1 }

let size t =
  match t.membership with
  | Range { count; _ } -> count
  | Enum { ranks; _ } -> Array.length ranks

let world_rank_of t r =
  if r < 0 || r >= size t then
    invalid_arg (Printf.sprintf "Comm.world_rank_of: rank %d out of range" r);
  match t.membership with
  | Range { start; step; _ } -> start + (r * step)
  | Enum { ranks; _ } -> ranks.(r)

let comm_rank_of t world_rank =
  match t.membership with
  | Range { start; step; count } ->
      let d = world_rank - start in
      if d >= 0 && d mod step = 0 && d / step < count then Some (d / step)
      else None
  | Enum { index; _ } -> Hashtbl.find_opt (Lazy.force index) world_rank

let members t =
  match t.membership with
  | Range { start; step; count } ->
      Array.init count (fun i -> start + (i * step))
  | Enum { ranks; _ } -> Array.copy ranks

let range_info t =
  match t.membership with
  | Range { start; step; count } -> Some (start, step, count)
  | Enum _ -> None

let is_range t = range_info t <> None

(* A compact deterministic description of the membership, used in context
   allocation keys: O(1) long for ranges, the member list otherwise. *)
let descriptor t =
  match t.membership with
  | Range { start; step; count } ->
      Printf.sprintf "r%d+%dx%d" start step count
  | Enum { ranks; _ } ->
      String.concat "," (List.map string_of_int (Array.to_list ranks))

let pp ppf t =
  match t.membership with
  | Range { start; step; count } ->
      Format.fprintf ppf "comm{ctx=%d; range start=%d step=%d count=%d}"
        t.ctx start step count
  | Enum { ranks; _ } ->
      Format.fprintf ppf "comm{ctx=%d; members=[%s]}" t.ctx
        (String.concat ";"
           (Array.to_list (Array.map string_of_int ranks)))
