(** Process groups ([MPI_Group]): ordered sets of world ranks with the
    standard set algebra, used to derive communicators.

    Membership mirrors {!Comm}'s sparse representation: arithmetic
    progressions are O(1) descriptors (so [of_comm] on a 64k-rank world
    communicator allocates no array), everything else a dense array with
    a lazy reverse index. {!rank_of} is O(1); the set algebra
    ({!union}, {!intersection}, {!difference}, {!similar}) is
    hashtable-backed and O(n + m). *)

type t

val of_comm : Comm.t -> t
(** Preserves the communicator's descriptor: O(1) for range comms. *)

val of_ranks : int list -> t
(** Raises [Invalid_argument] on duplicates or negative ranks. *)

val size : t -> int
val rank_of : t -> int -> int option
(** Group rank of a world rank, if a member. O(1). *)

val world_rank : t -> int -> int
(** World rank of a group rank; raises [Invalid_argument] out of range. *)

val members : t -> int array
(** Materialized membership (a fresh array). O(size). *)

val is_range : t -> bool
(** [true] iff the membership is held as an O(1) range descriptor. *)

val incl : t -> int list -> t
(** Subgroup of the given group ranks, in the given order ([MPI_Group_incl]). *)

val excl : t -> int list -> t
(** Remove the given group ranks, preserving order ([MPI_Group_excl]). *)

val union : t -> t -> t
(** Members of the first, then members of the second not in the first. *)

val intersection : t -> t -> t
(** Members of the first that are also in the second, first's order. *)

val difference : t -> t -> t
(** Members of the first not in the second, first's order. *)

val equal : t -> t -> bool
(** Same members in the same order ([MPI_IDENT]). *)

val similar : t -> t -> bool
(** Same members, any order ([MPI_SIMILAR]). *)

val comm_create : Mpi.proc -> Comm.t -> t -> Comm.t option
(** Collective over [comm]: members of the group receive the new
    communicator, others get [None] ([MPI_Comm_create]). The group must be
    a subset of the communicator. *)

val pp : Format.formatter -> t -> unit
