type t = {
  len : int;
  blit_to : pos:int -> dst:Bytes.t -> dst_off:int -> len:int -> unit;
  blit_from : pos:int -> src:Bytes.t -> src_off:int -> len:int -> unit;
}

let length t = t.len

let of_bytes_sub b ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Buffer_view.of_bytes_sub: range out of bounds";
  {
    len;
    blit_to =
      (fun ~pos ~dst ~dst_off ~len:n -> Bytes.blit b (off + pos) dst dst_off n);
    blit_from =
      (fun ~pos ~src ~src_off ~len:n -> Bytes.blit src src_off b (off + pos) n);
  }

let of_bytes b = of_bytes_sub b ~off:0 ~len:(Bytes.length b)

(* A window [off, off + len) of an existing view: sends read and receives
   land directly in the parent's memory, so block algorithms never need a
   charged scratch copy of the whole payload. *)
let sub_view v ~off ~len =
  if off < 0 || len < 0 || off + len > v.len then
    invalid_arg "Buffer_view.sub_view: range out of bounds";
  {
    len;
    blit_to =
      (fun ~pos ~dst ~dst_off ~len:l ->
        v.blit_to ~pos:(off + pos) ~dst ~dst_off ~len:l);
    blit_from =
      (fun ~pos ~src ~src_off ~len:l ->
        v.blit_from ~pos:(off + pos) ~src ~src_off ~len:l);
  }

(* One logical buffer over several views laid end to end: a gathered
   subtree (scatter/gather trees, allgather blocks) moves as a single
   message with no packing copy — each fragment blits straight between
   its own memory and the wire. *)
let concat views =
  let parts = Array.of_list views in
  let total = Array.fold_left (fun a v -> a + v.len) 0 parts in
  (* Walk the fragments overlapping [pos, pos + len). *)
  let iter_range ~pos ~len f =
    if pos < 0 || len < 0 || pos + len > total then
      invalid_arg "Buffer_view.concat: range out of bounds";
    let off = ref 0 and remaining = ref len and cursor = ref pos in
    Array.iter
      (fun v ->
        if !remaining > 0 && !cursor < !off + v.len then begin
          let local = max 0 (!cursor - !off) in
          let l = min (v.len - local) !remaining in
          if l > 0 then begin
            f v ~local ~outer:(!cursor - pos) ~len:l;
            cursor := !cursor + l;
            remaining := !remaining - l
          end
        end;
        off := !off + v.len)
      parts
  in
  {
    len = total;
    blit_to =
      (fun ~pos ~dst ~dst_off ~len ->
        iter_range ~pos ~len (fun v ~local ~outer ~len ->
            v.blit_to ~pos:local ~dst ~dst_off:(dst_off + outer) ~len));
    blit_from =
      (fun ~pos ~src ~src_off ~len ->
        iter_range ~pos ~len (fun v ~local ~outer ~len ->
            v.blit_from ~pos:local ~src ~src_off:(src_off + outer) ~len));
  }

let read_all t =
  let out = Bytes.create t.len in
  t.blit_to ~pos:0 ~dst:out ~dst_off:0 ~len:t.len;
  out

let write_all t src =
  if Bytes.length src <> t.len then
    invalid_arg "Buffer_view.write_all: size mismatch";
  t.blit_from ~pos:0 ~src ~src_off:0 ~len:t.len
