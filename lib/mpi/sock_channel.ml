let create ?topo env ~n_ranks =
  let cost = env.Simtime.Env.cost in
  (* Same-node peers bypass the socket and pay shared-memory figures. *)
  Channel.make ~name:"sock" ~per_msg_ns:cost.sock_per_msg_ns
    ~per_byte_ns:cost.sock_ns_per_byte ?topo
    ~intra:(cost.shm_per_msg_ns, cost.shm_ns_per_byte)
    ~syscall_fraction:0.25 ~env ~n_ranks ()
