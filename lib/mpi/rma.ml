module Env = Simtime.Env
module Key = Simtime.Stats.Key

(* One context per window carries every one-sided message. Requests to
   the target (put/acc/get/lock/unlock/free) all travel under [tag_ops]
   and are demultiplexed by a kind byte, so the target needs exactly one
   posted service receive; replies (get data, lock grant, unlock ack)
   use their own tags toward the origin. Fence count exchanges use one
   fresh tag per fence round so a member one round ahead can never
   satisfy a slower member's previous-round receive. *)
let tag_ops = 0x5201
let tag_grant = 0x5202
let tag_ack = 0x5203
let tag_size = 0x5204
let tag_fence_base = 0x10000
let tag_reply_base = 0x20000

let k_put = 1
let k_acc = 2
let k_get = 3
let k_lock = 4
let k_unlock = 5
let k_free = 6

type accum_op = Sum | Prod | Min | Max | Bxor | Replace | Matmul

let op_code = function
  | Sum -> 0
  | Prod -> 1
  | Min -> 2
  | Max -> 3
  | Bxor -> 4
  | Replace -> 5
  | Matmul -> 6

let op_of_code = function
  | 0 -> Sum
  | 1 -> Prod
  | 2 -> Min
  | 3 -> Max
  | 4 -> Bxor
  | 5 -> Replace
  | 6 -> Matmul
  | c -> invalid_arg (Printf.sprintf "Rma: bad accumulate op code %d" c)

(* Target-side lock state (passive target). *)
type lock_state = Unlocked | Shared of int list | Excl of int

(* A deferred update: queued at receipt, applied at the closing sync.
   [q_epoch] is the origin's fence round, or -1 for a passive (lock)
   epoch. *)
type queued = {
  q_kind : [ `Put | `Acc of accum_op ];
  q_epoch : int;
  q_off : int;
  q_data : Bytes.t;
}

(* A get request that arrived before this target entered the origin's
   fence round: serving it now would leak pre-fence window contents, so
   it waits until the closing sync has applied that round's updates. *)
type pending_get = {
  g_origin : int;
  g_off : int;
  g_len : int;
  g_tag : int;
  g_epoch : int;
}

type win = {
  w_proc : Mpi.proc;
  w_comm : Comm.t;
  w_ctx : int;
  w_buf : Bytes.t; (* backing storage; the window is [w_base, w_base+w_len) *)
  w_base : int;
  w_len : int;
  w_me : int; (* comm rank *)
  w_n : int;
  w_sizes : int array;
  w_rdma : Rdma_channel.t option;
  w_eager_apply : bool;
  mutable w_freed : bool;
  mutable w_hook : int;
  mutable w_service : Request.t option;
  w_service_buf : Bytes.t;
  (* Origin side. *)
  w_out : int array; (* ops issued per target, current fence epoch *)
  mutable w_seq : int; (* per-window op/reply-tag counter *)
  w_held : (int, int ref) Hashtbl.t; (* target -> ops under my lock *)
  (* Target side. *)
  w_queued : queued list ref array; (* per origin, in arrival order *)
  mutable w_gets : pending_get list; (* reads waiting on a future round *)
  w_got : (int, int array) Hashtbl.t; (* epoch -> per-origin arrivals *)
  mutable w_fence_no : int;
  mutable w_lock : lock_state;
  w_waiters : (int * bool) Queue.t; (* (origin, exclusive), FIFO *)
}

let local win = win.w_buf
let exposed win = not win.w_freed
let comm win = win.w_comm

let size_of win ~rank =
  if rank < 0 || rank >= win.w_n then invalid_arg "Rma.size_of: bad rank";
  win.w_sizes.(rank)

let dev win = Mpi.device win.w_proc
let wenv win = Ch3.env (dev win)
let world_rank win r = Comm.world_rank_of win.w_comm r

let check_open win =
  if win.w_freed then invalid_arg "Rma: operation on a freed window"

let check_target win ~target ~target_off ~len =
  check_open win;
  if target < 0 || target >= win.w_n then invalid_arg "Rma: bad target rank";
  if target_off < 0 || len < 0 || target_off + len > win.w_sizes.(target) then
    invalid_arg
      (Printf.sprintf
         "Rma: remote range [%d,+%d) outside target %d's %d-byte window"
         target_off len target win.w_sizes.(target))

(* ------------------------------------------------------------------ *)
(* Wire format                                                         *)
(* ------------------------------------------------------------------ *)

let hdr_len = 40

(* [0] kind; [1] op code (acc) / exclusive flag (lock); [4..] origin comm
   rank; [8..] per-origin sequence (for a get, the reply tag is
   [tag_reply_base + seq]); [16..] target offset; [24..] length;
   [32..] aux: the origin's epoch (put/acc/get), the op count (unlock).
   Payload follows for put/acc. *)
let encode ~kind ~code ~origin ~seq ~off ~len ~aux payload =
  let b = Bytes.create (hdr_len + Bytes.length payload) in
  Bytes.fill b 0 hdr_len '\000';
  Bytes.set_uint8 b 0 kind;
  Bytes.set_uint8 b 1 code;
  Bytes.set_int32_le b 4 (Int32.of_int origin);
  Bytes.set_int64_le b 8 (Int64.of_int seq);
  Bytes.set_int64_le b 16 (Int64.of_int off);
  Bytes.set_int64_le b 24 (Int64.of_int len);
  Bytes.set_int64_le b 32 (Int64.of_int aux);
  Bytes.blit payload 0 b hdr_len (Bytes.length payload);
  b

let i64 b = let x = Bytes.create 8 in Bytes.set_int64_le x 0 (Int64.of_int b); x
let of_i64 b = Int64.to_int (Bytes.get_int64_le b 0)

(* ------------------------------------------------------------------ *)
(* Applying updates                                                    *)
(* ------------------------------------------------------------------ *)

(* 2x2 matrix multiply over Z/256 on 4-byte blocks: [dst := dst * src].
   Mirrors Check.Explore's reduce operator so rank-order folding is
   observable end to end. *)
let matmul_block dst doff src soff =
  let g b i = Char.code (Bytes.get b i) in
  let a0 = g dst doff and a1 = g dst (doff + 1) in
  let a2 = g dst (doff + 2) and a3 = g dst (doff + 3) in
  let b0 = g src soff and b1 = g src (soff + 1) in
  let b2 = g src (soff + 2) and b3 = g src (soff + 3) in
  Bytes.set dst doff (Char.chr (((a0 * b0) + (a1 * b2)) land 0xff));
  Bytes.set dst (doff + 1) (Char.chr (((a0 * b1) + (a1 * b3)) land 0xff));
  Bytes.set dst (doff + 2) (Char.chr (((a2 * b0) + (a3 * b2)) land 0xff));
  Bytes.set dst (doff + 3) (Char.chr (((a2 * b1) + (a3 * b3)) land 0xff))

let accum_into dst ~off src op =
  let len = Bytes.length src in
  match op with
  | Replace -> Bytes.blit src 0 dst off len
  | Matmul ->
      let blocks = len / 4 in
      for i = 0 to blocks - 1 do
        matmul_block dst (off + (4 * i)) src (4 * i)
      done
  | (Sum | Prod | Min | Max | Bxor) as op ->
      let f =
        match op with
        | Sum -> Int64.add
        | Prod -> Int64.mul
        | Min -> Int64.min
        | Max -> Int64.max
        | Bxor -> Int64.logxor
        | _ -> assert false
      in
      let lanes = len / 8 in
      for i = 0 to lanes - 1 do
        let t = Bytes.get_int64_le dst (off + (8 * i)) in
        let s = Bytes.get_int64_le src (8 * i) in
        Bytes.set_int64_le dst (off + (8 * i)) (f t s)
      done

let apply_op win q =
  match q.q_kind with
  | `Put ->
      Bytes.blit q.q_data 0 win.w_buf (win.w_base + q.q_off)
        (Bytes.length q.q_data)
  | `Acc op -> accum_into win.w_buf ~off:(win.w_base + q.q_off) q.q_data op

(* ------------------------------------------------------------------ *)
(* Target-side service                                                 *)
(* ------------------------------------------------------------------ *)

let got_row win epoch =
  match Hashtbl.find_opt win.w_got epoch with
  | Some a -> a
  | None ->
      let a = Array.make win.w_n 0 in
      Hashtbl.add win.w_got epoch a;
      a

let post_service win =
  let req =
    Ch3.irecv (dev win) ~src:Tag_match.any_source ~tag:tag_ops
      ~context:win.w_ctx
      (Buffer_view.of_bytes win.w_service_buf)
  in
  win.w_service <- Some req

let reply win ~origin ~tag payload =
  ignore
    (Ch3.isend (dev win)
       ~dst:(world_rank win origin)
       ~tag ~context:win.w_ctx
       (Buffer_view.of_bytes payload))

let can_grant win exclusive =
  match win.w_lock with
  | Unlocked -> true
  | Shared _ -> not exclusive
  | Excl _ -> false

let grant win ~origin ~exclusive =
  (win.w_lock <-
     (match (win.w_lock, exclusive) with
     | Unlocked, true -> Excl origin
     | Unlocked, false -> Shared [ origin ]
     | Shared l, false -> Shared (origin :: l)
     | _ -> assert false));
  reply win ~origin ~tag:tag_grant (i64 0)

let release_lock win ~origin =
  (match win.w_lock with
  | Excl o when o = origin -> win.w_lock <- Unlocked
  | Shared l ->
      let l = List.filter (fun o -> o <> origin) l in
      win.w_lock <- (if l = [] then Unlocked else Shared l)
  | _ ->
      failwith
        (Printf.sprintf "Rma: unlock from origin %d which holds no lock"
           origin));
  (* Serve waiters FIFO; consecutive shared requests coalesce. *)
  let rec serve () =
    match Queue.peek_opt win.w_waiters with
    | Some (o, excl) when can_grant win excl ->
        ignore (Queue.pop win.w_waiters);
        grant win ~origin:o ~exclusive:excl;
        serve ()
    | _ -> ()
  in
  serve ()

let handle_update win ~origin ~kind ~code ~off ~len ~epoch =
  let data = Bytes.sub win.w_service_buf hdr_len len in
  let q_kind = if kind = k_put then `Put else `Acc (op_of_code code) in
  let q = { q_kind; q_epoch = epoch; q_off = off; q_data = data } in
  if epoch >= 0 then begin
    let row = got_row win epoch in
    row.(origin) <- row.(origin) + 1
  end;
  if win.w_eager_apply then
    (* The planted epoch bug: visible before the closing sync. *)
    apply_op win q
  else begin
    let cell = win.w_queued.(origin) in
    cell := q :: !cell
  end

let handle_unlock win ~origin ~count =
  (if not win.w_eager_apply then begin
     (* Channel FIFO per (src,dst) guarantees the epoch's updates were
        matched before this unlock, so they are all queued by now. *)
     let mine, rest =
       List.partition (fun q -> q.q_epoch = -1) (List.rev !(win.w_queued.(origin)))
     in
     if List.length mine <> count then
       failwith
         (Printf.sprintf
            "Rma: unlock from %d announces %d ops but %d are queued" origin
            count (List.length mine));
     List.iter (apply_op win) mine;
     win.w_queued.(origin) := List.rev rest
   end);
  reply win ~origin ~tag:tag_ack (i64 count);
  release_lock win ~origin

(* The service loop: runs from a CH3 progress hook on the window's
   context. Handles every already-completed service message (an irecv
   re-armed against a non-empty unexpected queue completes immediately,
   so one progress call drains the backlog in arrival order), re-posting
   after each; a FREE message retires the service instead. *)
let rec handle win =
  match win.w_service with
  | None -> false
  | Some req when not (Request.is_complete req) -> false
  | Some req ->
      (match Request.reason req with
      | Some _ ->
          (* Aborted (context abort / purge): stop servicing. *)
          win.w_service <- None
      | None -> dispatch win);
      ignore (handle win);
      true

and dispatch win =
  let b = win.w_service_buf in
  let kind = Bytes.get_uint8 b 0 in
  let code = Bytes.get_uint8 b 1 in
  let origin = Int32.to_int (Bytes.get_int32_le b 4) in
  let seq = Int64.to_int (Bytes.get_int64_le b 8) in
  let off = Int64.to_int (Bytes.get_int64_le b 16) in
  let len = Int64.to_int (Bytes.get_int64_le b 24) in
  let aux = Int64.to_int (Bytes.get_int64_le b 32) in
  if kind = k_free then begin
    win.w_service <- None;
    if win.w_hook >= 0 then Ch3.remove_progress_hook (dev win) win.w_hook
  end
  else begin
    (match kind with
    | k when k = k_put || k = k_acc ->
        handle_update win ~origin ~kind ~code ~off ~len ~epoch:aux
    | k when k = k_get ->
        (* Reads see the committed window: deferred updates invisible.
           A read stamped with a round we have not closed into yet
           ([aux] beyond our fence count) must wait for that round's
           updates to be applied; passive reads (epoch -1, origin holds
           our lock) are ordered by the lock itself. *)
        let rtag = tag_reply_base + seq in
        if aux < 0 || aux <= win.w_fence_no then
          reply win ~origin ~tag:rtag (Bytes.sub win.w_buf (win.w_base + off) len)
        else
          win.w_gets <-
            { g_origin = origin; g_off = off; g_len = len; g_tag = rtag;
              g_epoch = aux }
            :: win.w_gets
    | k when k = k_lock ->
        let exclusive = code <> 0 in
        if can_grant win exclusive && Queue.is_empty win.w_waiters then
          grant win ~origin ~exclusive
        else Queue.push (origin, exclusive) win.w_waiters
    | k when k = k_unlock -> handle_unlock win ~origin ~count:aux
    | k -> failwith (Printf.sprintf "Rma: bad message kind %d" k));
    post_service win
  end

(* ------------------------------------------------------------------ *)
(* Progress pumping                                                    *)
(* ------------------------------------------------------------------ *)

let pump_until p ~label pred =
  let d = Mpi.device p in
  let step () =
    ignore (Ch3.progress d);
    pred ()
  in
  if Fiber.in_scheduler () then Fiber.wait_until ~label step
  else begin
    let spins = ref 0 in
    while not (step ()) do
      incr spins;
      if !spins > 1_000_000 then
        failwith "Rma: no progress outside a scheduler"
    done
  end

(* ------------------------------------------------------------------ *)
(* RDMA cost modelling (only on worlds built with the [`Rdma] channel)  *)
(* ------------------------------------------------------------------ *)

let rdma_transfer win buf ~off ~len =
  match win.w_rdma with
  | None -> ()
  | Some h ->
      if len < Rdma_channel.eager_threshold h then
        Rdma_channel.charge_eager h ~len
      else begin
        let addr = Rdma_channel.addr_of h buf + off in
        ignore
          (Rdma_channel.register h ~rank:(Mpi.rank win.w_proc) ~addr ~len);
        ignore (Rdma_channel.charge_rndv h ~len)
      end

(* ------------------------------------------------------------------ *)
(* Window lifecycle                                                    *)
(* ------------------------------------------------------------------ *)

let win_create ?(eager_apply = false) ?sub p ~comm buf =
  let base, len =
    match sub with
    | None -> (0, Bytes.length buf)
    | Some (off, len) ->
        if off < 0 || len < 0 || off + len > Bytes.length buf then
          invalid_arg "Rma.win_create: sub-range outside the buffer";
        (off, len)
  in
  let w = Mpi.world_of p in
  let me = Mpi.comm_rank p comm in
  let n = Comm.size comm in
  let e = Mpi.next_epoch p comm in
  let ctx =
    Mpi.alloc_context w ~key:(Printf.sprintf "rma/%d/%d" comm.Comm.ctx e)
  in
  let d = Mpi.device p in
  (* Exchange window sizes so remote ranges are origin-checked; this also
     means no member returns before every other member has entered the
     call. *)
  let sizes = Array.make n 0 in
  sizes.(me) <- len;
  let slots = Array.init n (fun _ -> Bytes.create 8) in
  let reqs = ref [] in
  for s = 0 to n - 1 do
    if s <> me then begin
      reqs :=
        Ch3.irecv d
          ~src:(Comm.world_rank_of comm s)
          ~tag:tag_size ~context:ctx
          (Buffer_view.of_bytes slots.(s))
        :: Ch3.isend d
             ~dst:(Comm.world_rank_of comm s)
             ~tag:tag_size ~context:ctx
             (Buffer_view.of_bytes (i64 sizes.(me)))
        :: !reqs
    end
  done;
  Mpi.wait_all p !reqs;
  for s = 0 to n - 1 do
    if s <> me then sizes.(s) <- of_i64 slots.(s)
  done;
  let rdma = Mpi.rdma_handle w in
  (match rdma with
  | Some h when len > 0 ->
      (* Window memory stays registered (and pinned in the cache) for the
         window's whole lifetime: every incoming RDMA lands in it. *)
      Rdma_channel.pin_region h ~rank:(Mpi.rank p)
        ~addr:(Rdma_channel.addr_of h buf + base)
        ~len
  | _ -> ());
  let win =
    {
      w_proc = p;
      w_comm = comm;
      w_ctx = ctx;
      w_buf = buf;
      w_base = base;
      w_len = len;
      w_me = me;
      w_n = n;
      w_sizes = sizes;
      w_rdma = rdma;
      w_eager_apply = eager_apply;
      w_freed = false;
      w_hook = -1;
      w_service = None;
      w_service_buf = Bytes.create (hdr_len + Stdlib.max 64 len);
      w_out = Array.make n 0;
      w_seq = 0;
      w_held = Hashtbl.create 4;
      w_queued = Array.init n (fun _ -> ref []);
      w_gets = [];
      w_got = Hashtbl.create 4;
      w_fence_no = 0;
      w_lock = Unlocked;
      w_waiters = Queue.create ();
    }
  in
  post_service win;
  win.w_hook <- Ch3.add_progress_hook ~ctx d (fun () -> handle win);
  win

(* ------------------------------------------------------------------ *)
(* One-sided operations                                                *)
(* ------------------------------------------------------------------ *)

let next_seq win =
  let s = win.w_seq in
  win.w_seq <- s + 1;
  s

(* The origin's epoch stamp for an update toward [target]: the current
   fence round, or -1 (passive) when the origin holds that target's
   lock. *)
let epoch_for win ~target =
  match Hashtbl.find_opt win.w_held target with
  | Some ops ->
      incr ops;
      -1
  | None ->
      win.w_out.(target) <- win.w_out.(target) + 1;
      win.w_fence_no

let send_update win ~kind ~code ~target ~target_off buf ~off ~len =
  let epoch = epoch_for win ~target in
  let payload = Bytes.sub buf off len in
  let msg =
    encode ~kind ~code ~origin:win.w_me ~seq:(next_seq win) ~off:target_off
      ~len ~aux:epoch payload
  in
  rdma_transfer win buf ~off ~len;
  ignore
    (Mpi.wait win.w_proc
       (Ch3.isend (dev win)
          ~dst:(world_rank win target)
          ~tag:tag_ops ~context:win.w_ctx
          (Buffer_view.of_bytes msg)))

let put win ~target ~target_off buf ~off ~len =
  check_target win ~target ~target_off ~len;
  if off < 0 || off + len > Bytes.length buf then
    invalid_arg "Rma.put: local range outside the buffer";
  Env.count (wenv win) Key.rma_puts;
  send_update win ~kind:k_put ~code:0 ~target ~target_off buf ~off ~len

let accumulate win ~target ~target_off ~op buf ~off ~len =
  check_target win ~target ~target_off ~len;
  if off < 0 || off + len > Bytes.length buf then
    invalid_arg "Rma.accumulate: local range outside the buffer";
  (match op with
  | Matmul ->
      if len mod 4 <> 0 then
        invalid_arg "Rma.accumulate: Matmul needs a multiple of 4 bytes"
  | Replace -> ()
  | _ ->
      if len mod 8 <> 0 then
        invalid_arg "Rma.accumulate: arithmetic ops combine 8-byte lanes");
  Env.count (wenv win) Key.rma_accumulates;
  send_update win ~kind:k_acc ~code:(op_code op) ~target ~target_off buf ~off
    ~len

let get win ~target ~target_off buf ~off ~len =
  check_target win ~target ~target_off ~len;
  if off < 0 || off + len > Bytes.length buf then
    invalid_arg "Rma.get: local range outside the buffer";
  Env.count (wenv win) Key.rma_gets;
  rdma_transfer win buf ~off ~len;
  let seq = next_seq win in
  let rtag = tag_reply_base + seq in
  let epoch = if Hashtbl.mem win.w_held target then -1 else win.w_fence_no in
  let rreq =
    Ch3.irecv (dev win)
      ~src:(world_rank win target)
      ~tag:rtag ~context:win.w_ctx
      (Buffer_view.of_bytes_sub buf ~off ~len)
  in
  let msg =
    encode ~kind:k_get ~code:0 ~origin:win.w_me ~seq ~off:target_off ~len
      ~aux:epoch Bytes.empty
  in
  ignore
    (Mpi.wait win.w_proc
       (Ch3.isend (dev win)
          ~dst:(world_rank win target)
          ~tag:tag_ops ~context:win.w_ctx
          (Buffer_view.of_bytes msg)));
  ignore (Mpi.wait win.w_proc rreq)

(* ------------------------------------------------------------------ *)
(* Synchronization                                                     *)
(* ------------------------------------------------------------------ *)

(* Exchange per-peer counts for round [w_fence_no] and wait until every
   update addressed to us in that round has arrived. Shared by
   [win_fence] and the pre-free barrier. *)
let fence_exchange win =
  let p = win.w_proc in
  let d = dev win in
  let tag = tag_fence_base + win.w_fence_no in
  let announced = Array.make win.w_n 0 in
  announced.(win.w_me) <- win.w_out.(win.w_me);
  let slots = Array.init win.w_n (fun _ -> Bytes.create 8) in
  let reqs = ref [] in
  for s = 0 to win.w_n - 1 do
    if s <> win.w_me then
      reqs :=
        Ch3.irecv d ~src:(world_rank win s) ~tag ~context:win.w_ctx
          (Buffer_view.of_bytes slots.(s))
        :: Ch3.isend d ~dst:(world_rank win s) ~tag ~context:win.w_ctx
             (Buffer_view.of_bytes (i64 win.w_out.(s)))
        :: !reqs
  done;
  Mpi.wait_all p !reqs;
  for s = 0 to win.w_n - 1 do
    if s <> win.w_me then announced.(s) <- of_i64 slots.(s)
  done;
  let round = win.w_fence_no in
  let drained () =
    let row = got_row win round in
    let ok = ref true in
    for o = 0 to win.w_n - 1 do
      if row.(o) < announced.(o) then ok := false
    done;
    !ok
  in
  pump_until p ~label:"rma-fence" drained

(* Serve reads that were waiting for the window to close into their
   round (now that its updates are committed). *)
let serve_gets win =
  let ready, rest =
    List.partition (fun g -> g.g_epoch <= win.w_fence_no) (List.rev win.w_gets)
  in
  win.w_gets <- List.rev rest;
  List.iter
    (fun g ->
      reply win ~origin:g.g_origin ~tag:g.g_tag
        (Bytes.sub win.w_buf (win.w_base + g.g_off) g.g_len))
    ready

let win_fence win =
  check_open win;
  Env.count (wenv win) Key.rma_fences;
  fence_exchange win;
  let round = win.w_fence_no in
  (* Deferred application, origin-rank order then issue order: the
     moment updates become visible, and the order a non-commutative
     accumulate folds in. *)
  for o = 0 to win.w_n - 1 do
    let cell = win.w_queued.(o) in
    let mine, rest =
      List.partition (fun q -> q.q_epoch = round) (List.rev !cell)
    in
    List.iter (apply_op win) mine;
    cell := List.rev rest
  done;
  Hashtbl.remove win.w_got round;
  Array.fill win.w_out 0 win.w_n 0;
  win.w_fence_no <- win.w_fence_no + 1;
  serve_gets win

let win_lock ?(exclusive = true) win ~target =
  check_open win;
  if target < 0 || target >= win.w_n then invalid_arg "Rma.win_lock: bad rank";
  if Hashtbl.mem win.w_held target then
    invalid_arg "Rma.win_lock: already holding this window's lock";
  Env.count (wenv win) Key.rma_locks;
  let d = dev win in
  let ack = Bytes.create 8 in
  let rreq =
    Ch3.irecv d ~src:(world_rank win target) ~tag:tag_grant
      ~context:win.w_ctx (Buffer_view.of_bytes ack)
  in
  let msg =
    encode ~kind:k_lock
      ~code:(if exclusive then 1 else 0)
      ~origin:win.w_me ~seq:(next_seq win) ~off:0 ~len:0 ~aux:0 Bytes.empty
  in
  ignore
    (Mpi.wait win.w_proc
       (Ch3.isend d ~dst:(world_rank win target) ~tag:tag_ops
          ~context:win.w_ctx (Buffer_view.of_bytes msg)));
  ignore (Mpi.wait win.w_proc rreq);
  Hashtbl.replace win.w_held target (ref 0)

let win_unlock win ~target =
  check_open win;
  let ops =
    match Hashtbl.find_opt win.w_held target with
    | Some c -> !c
    | None -> invalid_arg "Rma.win_unlock: lock not held"
  in
  let d = dev win in
  let ack = Bytes.create 8 in
  let rreq =
    Ch3.irecv d ~src:(world_rank win target) ~tag:tag_ack ~context:win.w_ctx
      (Buffer_view.of_bytes ack)
  in
  let msg =
    encode ~kind:k_unlock ~code:0 ~origin:win.w_me ~seq:(next_seq win) ~off:0
      ~len:0 ~aux:ops Bytes.empty
  in
  ignore
    (Mpi.wait win.w_proc
       (Ch3.isend d ~dst:(world_rank win target) ~tag:tag_ops
          ~context:win.w_ctx (Buffer_view.of_bytes msg)));
  ignore (Mpi.wait win.w_proc rreq);
  Hashtbl.remove win.w_held target

let win_free win =
  check_open win;
  (* A dangling registration is exactly what this check prevents: no
     open epoch of any flavour may survive the window. *)
  if Hashtbl.length win.w_held > 0 then
    invalid_arg "Rma.win_free: a lock is still held by this process";
  if Array.exists (fun c -> c > 0) win.w_out then
    invalid_arg "Rma.win_free: unfenced one-sided operations outstanding";
  if win.w_lock <> Unlocked || not (Queue.is_empty win.w_waiters) then
    invalid_arg "Rma.win_free: this window's lock is held or contended";
  if Array.exists (fun c -> !c <> []) win.w_queued then
    invalid_arg "Rma.win_free: queued updates never applied by a sync";
  (* Synchronize all members (a zero-count fence round) so nothing can
     still be in flight toward this window, then retire the service with
     a self-addressed FREE — completing the posted receive and removing
     the progress hook, so quiescence checks stay clean. *)
  fence_exchange win;
  win.w_fence_no <- win.w_fence_no + 1;
  serve_gets win;
  let msg =
    encode ~kind:k_free ~code:0 ~origin:win.w_me ~seq:(next_seq win) ~off:0
      ~len:0 ~aux:0 Bytes.empty
  in
  ignore
    (Mpi.wait win.w_proc
       (Ch3.isend (dev win)
          ~dst:(world_rank win win.w_me)
          ~tag:tag_ops ~context:win.w_ctx (Buffer_view.of_bytes msg)));
  pump_until win.w_proc ~label:"rma-free" (fun () -> win.w_service = None);
  (match win.w_rdma with
  | Some h when win.w_len > 0 ->
      Rdma_channel.unpin_region h
        ~rank:(Mpi.rank win.w_proc)
        ~addr:(Rdma_channel.addr_of h win.w_buf + win.w_base)
        ~len:win.w_len
  | _ -> ());
  win.w_freed <- true
