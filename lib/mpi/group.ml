(* Process groups share the communicator's sparse representation: an
   arithmetic-progression descriptor when the membership admits one
   (O(1) state, O(1) rank queries), a dense array plus a lazily-built
   reverse index otherwise. The set algebra is hashtable-backed — O(n+m)
   for union/intersection/difference and O(n) for similar — replacing the
   List.filter-with-mem scans that made them O(n^2). *)

type repr =
  | Range of { start : int; step : int; count : int }
  | Enum of { ranks : int array; index : (int, int) Hashtbl.t Lazy.t }

type t = { r : repr }

let index_of ranks =
  lazy
    (let h = Hashtbl.create (Array.length ranks) in
     Array.iteri (fun i r -> Hashtbl.replace h r i) ranks;
     h)

let normalize ranks =
  let n = Array.length ranks in
  if n = 1 then Range { start = ranks.(0); step = 1; count = 1 }
  else begin
    let step = ranks.(1) - ranks.(0) in
    let rec arith i =
      i >= n || (ranks.(i) - ranks.(i - 1) = step && arith (i + 1))
    in
    if n >= 2 && step >= 1 && arith 2 then
      Range { start = ranks.(0); step; count = n }
    else Enum { ranks; index = index_of ranks }
  end

let of_array ranks =
  if Array.length ranks = 0 then { r = Enum { ranks; index = index_of ranks } }
  else { r = normalize ranks }

let of_ranks ranks =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun r ->
      if r < 0 then invalid_arg "Group.of_ranks: negative rank";
      if Hashtbl.mem seen r then invalid_arg "Group.of_ranks: duplicate rank";
      Hashtbl.add seen r ())
    ranks;
  of_array (Array.of_list ranks)

(* Preserve the communicator's descriptor: deriving the world group from
   a 64k-rank range comm stays O(1). *)
let of_comm comm =
  match Comm.range_info comm with
  | Some (start, step, count) -> { r = Range { start; step; count } }
  | None -> of_array (Comm.members comm)

let size t =
  match t.r with
  | Range { count; _ } -> count
  | Enum { ranks; _ } -> Array.length ranks

let rank_of t world_rank =
  match t.r with
  | Range { start; step; count } ->
      let d = world_rank - start in
      if d >= 0 && d mod step = 0 && d / step < count then Some (d / step)
      else None
  | Enum { index; _ } -> Hashtbl.find_opt (Lazy.force index) world_rank

let world_rank t i =
  if i < 0 || i >= size t then invalid_arg "Group.world_rank: out of range";
  match t.r with
  | Range { start; step; _ } -> start + (i * step)
  | Enum { ranks; _ } -> ranks.(i)

let members t =
  match t.r with
  | Range { start; step; count } ->
      Array.init count (fun i -> start + (i * step))
  | Enum { ranks; _ } -> Array.copy ranks

let is_range t = match t.r with Range _ -> true | Enum _ -> false

let mem t world_rank = rank_of t world_rank <> None

let incl t group_ranks = of_ranks (List.map (world_rank t) group_ranks)

let excl t group_ranks =
  let n = size t in
  List.iter
    (fun i ->
      if i < 0 || i >= n then invalid_arg "Group.excl: out of range")
    group_ranks;
  let dropped = Hashtbl.create 16 in
  List.iter
    (fun i ->
      if Hashtbl.mem dropped i then invalid_arg "Group.excl: duplicate rank";
      Hashtbl.add dropped i ())
    group_ranks;
  let out = ref [] in
  for i = n - 1 downto 0 do
    if not (Hashtbl.mem dropped i) then out := world_rank t i :: !out
  done;
  of_array (Array.of_list !out)

(* Set algebra: one O(n) pass over the left operand's index (implicit
   for ranges), one over the right's elements — no quadratic scans. *)
let union a b =
  let out = ref [] in
  for i = size b - 1 downto 0 do
    let r = world_rank b i in
    if not (mem a r) then out := r :: !out
  done;
  of_array (Array.append (members a) (Array.of_list !out))

let intersection a b =
  let out = ref [] in
  for i = size a - 1 downto 0 do
    let r = world_rank a i in
    if mem b r then out := r :: !out
  done;
  of_array (Array.of_list !out)

let difference a b =
  let out = ref [] in
  for i = size a - 1 downto 0 do
    let r = world_rank a i in
    if not (mem b r) then out := r :: !out
  done;
  of_array (Array.of_list !out)

let equal a b =
  match (a.r, b.r) with
  | Range ra, Range rb ->
      ra.start = rb.start && ra.step = rb.step && ra.count = rb.count
  | _ ->
      size a = size b
      && (let n = size a in
          let rec go i = i >= n || (world_rank a i = world_rank b i && go (i + 1)) in
          go 0)

(* Same member set in any order: sizes equal and every member of [a] is
   in [b] (no duplicates exist, so the containment is an equality). *)
let similar a b =
  size a = size b
  && (let n = size a in
      let rec go i = i >= n || (mem b (world_rank a i) && go (i + 1)) in
      go 0)

(* A compact deterministic membership description for context keys:
   O(1) characters for ranges (a 64k-member identity group must not cost
   a 64k-entry key string), the member list otherwise. *)
let descriptor t =
  match t.r with
  | Range { start; step; count } ->
      Printf.sprintf "r%d+%dx%d" start step count
  | Enum { ranks; _ } ->
      String.concat "," (List.map string_of_int (Array.to_list ranks))

(* Collective communicator creation: all members of [comm] call it with
   the same group; agreement on the context id comes from the shared
   deterministic allocator keyed by the group's membership. *)
let comm_create p comm group =
  for i = 0 to size group - 1 do
    if Comm.comm_rank_of comm (world_rank group i) = None then
      invalid_arg "Group.comm_create: group member outside the communicator"
  done;
  let e = Mpi.next_epoch p comm in
  let key =
    Printf.sprintf "create/%d/%d/%s" comm.Comm.ctx e (descriptor group)
  in
  let ctx = Mpi.alloc_context (Mpi.world_of p) ~key in
  (* Synchronise as MPI_Comm_create does. *)
  Collectives.barrier p comm;
  if mem group (Mpi.rank p) then
    Some
      (match group.r with
       | Range { start; step; count } ->
           Comm.range ~ctx ~step ~start ~count ()
       | Enum { ranks; _ } -> Comm.make ~ctx ~members:ranks)
  else None

let pp ppf t =
  Format.fprintf ppf "group[%s]"
    (String.concat ";" (List.map string_of_int (Array.to_list (members t))))
