(* The process-failure service (ULFM's RTE analogue).

   One instance per world, shared by every rank — the moral equivalent of
   the runtime's out-of-band failure plumbing. It owns three pieces of
   state:

   - the {e life cycle} of each rank: Alive -> (Finished | Torn_down ->
     Dead). A kill event (Fault.kill) tears the rank's fiber down
     (Torn_down); the heartbeat detector later *declares* it Dead, which
     is when survivors' pending operations fail with [Proc_failed] —
     detection is asynchronous, exactly as in a real cluster;
   - the {e heartbeat detector}: every progress pump "beats" the pumping
     rank and sweeps the others' last-beat timestamps against a virtual
     -time timeout. No heartbeat packets travel on the wire — wire
     traffic would consume the fault injector's per-send PRNG counter and
     perturb seeded fault schedules — so the detector models an
     out-of-band watchdog. A rank that stops pumping (torn down, or stuck
     in a long compute phase, which is how a too-short timeout produces
     ULFM's classic false positive) is declared dead once the shared
     clock outruns its last beat by [hb_timeout_ns];
   - the {e revocation registry}: context ids revoked by [Comm.revoke],
     consulted by every device so late traffic on a revoked communicator
     is refused.

   The channel silencer ([wrap_channel]) sits on top of the whole channel
   stack (above reliable delivery): packets to or from a dead rank are
   discarded before they reach framing, which is the "NIC went dark"
   model — nothing a dead rank ever did keeps retransmitting. *)

module Key = Simtime.Stats.Key

exception Killed of int
exception Proc_failed of int
exception Revoked of int

type detector = { hb_period_ns : float; hb_timeout_ns : float }

(* The timeout must exceed both the reliable layer's backoff ceiling
   (2 ms) and any single compute charge a workload performs between
   progress pumps, or a slow-but-alive rank gets declared dead. *)
let default_detector = { hb_period_ns = 20_000.0; hb_timeout_ns = 5_000_000.0 }

type rank_state = Alive | Finished | Torn_down | Dead

type t = {
  env : Simtime.Env.t;
  det : detector;
  kills : Fault.kill list;
  mutable states : rank_state array;
  mutable last_beat : float array;
  mutable consumed : bool array;  (* the rank's kill event already fired *)
  mutable killed_at : float array;  (* actual teardown time, for latency *)
  mutable on_death : (int -> unit) list;
  mutable on_revive : (int -> unit) list;
  mutable revoked : int list;
  mutable detections : (int * float) list;  (* (rank, declared at) *)
}

let now t = Simtime.Env.now_ns t.env

let create ~env ?(detector = default_detector) ?(kills = []) ~n () =
  if detector.hb_timeout_ns <= 0.0 then
    invalid_arg "Ft.create: hb_timeout_ns must be > 0";
  let t0 = Simtime.Env.now_ns env in
  {
    env;
    det = detector;
    kills;
    states = Array.make n Alive;
    last_beat = Array.make n t0;
    consumed = Array.make n false;
    killed_at = Array.make n nan;
    on_death = [];
    on_revive = [];
    revoked = [];
    detections = [];
  }

let detector t = t.det

let ensure t rank =
  let n = Array.length t.states in
  if rank >= n then begin
    let grow make a = Array.init (rank + 1) (fun i -> if i < n then a.(i) else make) in
    t.states <- grow Alive t.states;
    t.last_beat <- grow (now t) t.last_beat;
    t.consumed <- grow false t.consumed;
    t.killed_at <- grow nan t.killed_at
  end

let state t rank =
  ensure t rank;
  t.states.(rank)

let is_down t rank = state t rank = Dead
let is_out t rank = match state t rank with Torn_down | Dead -> true | _ -> false
let dead_ranks t =
  let acc = ref [] in
  Array.iteri (fun r s -> if s = Dead then acc := r :: !acc) t.states;
  List.rev !acc

let out_ranks t =
  let acc = ref [] in
  Array.iteri
    (fun r s -> match s with Torn_down | Dead -> acc := r :: !acc | _ -> ())
    t.states;
  List.rev !acc

let detections t = List.rev t.detections

let kill_of t rank =
  List.find_opt (fun k -> k.Fault.k_rank = rank) t.kills

let self_doomed t ~rank =
  state t rank = Alive
  && (not t.consumed.(rank))
  && (match kill_of t rank with
     | Some k -> k.Fault.k_at_ns <= now t
     | None -> false)

let check_self t ~rank = if self_doomed t ~rank then raise (Killed rank)

let mark_killed t ~rank =
  ensure t rank;
  if t.states.(rank) = Alive then begin
    t.states.(rank) <- Torn_down;
    t.consumed.(rank) <- true;
    t.killed_at.(rank) <- now t;
    Simtime.Env.count t.env Key.proc_kills;
    Trace.record t.env ~rank ~op:"kill"
      ~detail:(Printf.sprintf "fail-stop at t=%.0fns" (now t))
  end

let finish t ~rank =
  ensure t rank;
  if t.states.(rank) = Alive then t.states.(rank) <- Finished

let on_death t f = t.on_death <- f :: t.on_death
let on_revive t f = t.on_revive <- f :: t.on_revive

let declare_dead t rank =
  ensure t rank;
  match t.states.(rank) with
  | Dead -> ()
  | Finished -> ()
  | Alive | Torn_down ->
      t.states.(rank) <- Dead;
      let at = now t in
      t.detections <- (rank, at) :: t.detections;
      Simtime.Env.count t.env Key.proc_detections;
      if not (Float.is_nan t.killed_at.(rank)) then
        Simtime.Env.observe t.env Key.h_ft_detect (at -. t.killed_at.(rank));
      Trace.record t.env ~rank ~op:"detect"
        ~detail:(Printf.sprintf "rank %d declared dead at t=%.0fns" rank at);
      List.iter (fun f -> f rank) (List.rev t.on_death)

let revive t ~rank =
  ensure t rank;
  (match t.states.(rank) with
  | Torn_down | Dead -> ()
  | _ -> invalid_arg "Ft.revive: rank is not down");
  t.states.(rank) <- Alive;
  t.last_beat.(rank) <- now t;
  Trace.record t.env ~rank ~op:"revive"
    ~detail:(Printf.sprintf "rank %d restarted at t=%.0fns" rank (now t));
  List.iter (fun f -> f rank) (List.rev t.on_revive)

let restart_after t ~rank =
  match kill_of t rank with
  | Some k -> k.Fault.k_restart_ns
  | None -> None

(* Kills not yet declared (or not yet fired) mean progress is a matter of
   virtual time — the detector will resolve them — so the scheduler must
   not call a blocked configuration a deadlock yet. *)
let pending_detection t =
  Array.exists (fun s -> s = Torn_down) t.states
  || List.exists
       (fun k ->
         let r = k.Fault.k_rank in
         r < Array.length t.states
         && (not t.consumed.(r))
         && t.states.(r) = Alive)
       t.kills

let sweep t ~observer =
  let horizon = now t in
  Array.iteri
    (fun r s ->
      match s with
      | (Alive | Torn_down) when r <> observer ->
          if horizon -. t.last_beat.(r) > t.det.hb_timeout_ns then
            declare_dead t r
      | _ -> ())
    t.states

let tick t ~rank =
  ensure t rank;
  if t.states.(rank) = Alive then t.last_beat.(rank) <- now t;
  if pending_detection t then Fiber.note_activity ();
  sweep t ~observer:rank

(* ------------------------------------------------------------------ *)
(* Revocation registry                                                  *)
(* ------------------------------------------------------------------ *)

let revoke t ctx = if not (List.mem ctx t.revoked) then t.revoked <- ctx :: t.revoked
let is_revoked t ctx = List.mem ctx t.revoked

(* ------------------------------------------------------------------ *)
(* Channel silencer                                                     *)
(* ------------------------------------------------------------------ *)

let wrap_channel t chan =
  {
    Channel.name = chan.Channel.name ^ "+ft";
    send =
      (fun ~src ~dst p ->
        if is_out t src || is_out t dst then begin
          Simtime.Env.count t.env Key.ft_silenced;
          Trace.record t.env ~rank:src ~op:"drop"
            ~detail:
              (Printf.sprintf "dead endpoint %d->%d %s" src dst
                 (Packet.describe p))
        end
        else chan.Channel.send ~src ~dst p);
    poll =
      (fun ~rank -> if is_out t rank then None else chan.Channel.poll ~rank);
    add_rank = chan.Channel.add_rank;
    n_ranks = chan.Channel.n_ranks;
  }
