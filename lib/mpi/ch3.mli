(** The device layer (MPICH2's ADI/CH3 analogue).

    One device per process. Implements message queuing and matching,
    packetization, the eager and rendezvous protocols, and data transfer
    over a {!Channel.t}. All transport-independent logic lives here; the
    channel below it only moves packets. *)

exception Mpi_error of string
(** Protocol-level failures (e.g. a message longer than its receive
    buffer — the truncation error that protects object integrity).
    Raised by waiters ({!Mpi.wait}) when a request was failed with a
    categorized error; the progress engine itself never throws on stale
    or duplicated packets — those are counted and dropped, so a lossy
    channel (see {!Fault} and {!Reliable}) cannot crash it. *)

type t

type send_mode =
  | Standard  (** eager below the threshold, rendezvous above *)
  | Synchronous  (** always rendezvous: completion implies a match *)

val create :
  Simtime.Env.t -> Channel.t -> rank:int -> fresh_id:(unit -> int) -> t
(** [fresh_id] must be shared by all devices of a world (request and
    rendezvous identifiers). *)

val rank : t -> int
val env : t -> Simtime.Env.t
val queues : t -> Queues.t

val fresh_req_id : t -> int
(** Draw a request id from the world-shared counter (for generalized
    requests created outside the device, e.g. collective schedules). *)

val isend :
  t ->
  dst:int ->
  tag:int ->
  context:int ->
  ?mode:send_mode ->
  Buffer_view.t ->
  Request.t
(** Start a send. An eager send completes immediately (buffered on the
    wire); a rendezvous send completes once CTS arrives and the data has
    been handed to the channel. *)

val irecv :
  t -> src:int -> tag:int -> context:int -> Buffer_view.t -> Request.t
(** Start a receive; [src]/[tag] may be {!Tag_match.any_source} /
    {!Tag_match.any_tag}. If a matched message is larger than the buffer
    the request is failed with a truncation error (and a rendezvous
    sender is NAKed so it releases its state); {!Mpi.wait} raises it as
    {!Mpi_error}. *)

val progress : t -> bool
(** Drain arrived packets, then run the registered progress hooks (the
    collective schedule engine); true if any packet was handled or a hook
    made progress. Never blocks. *)

val add_progress_hook :
  ?ctx:int -> ?on_abort:(Request.reason -> unit) -> t -> (unit -> bool) -> int
(** Register a closure invoked by every {!progress} call after the
    channel drain (MPICH's progress-hook slot, used by {!Coll_sched} to
    advance in-flight collective schedules). The closure returns true if
    it made progress. Returns a handle for {!remove_progress_hook}.
    [ctx] tags the hook with its schedule's context id and [on_abort] is
    invoked (after the hook is dropped) when that context is revoked or
    the device is purged, so the schedule can fail its generalized
    request instead of leaking. *)

val remove_progress_hook : t -> int -> unit
(** Deregister a hook; hooks remove themselves when their schedule
    completes. Safe to call from inside the hook. *)

val progress_hook_count : t -> int
(** Live progress hooks. Every in-flight collective schedule holds one;
    a clean run drains to 0, so the schedule-exploration harness checks
    this as a quiescence invariant (a leaked hook is a leaked schedule). *)

val set_match_observer : t -> (Packet.envelope -> unit) option -> unit
(** Install (or clear) an observer invoked at every match decision — a
    posted receive meeting an arriving message, or a new receive meeting
    a queued unexpected message — with the matched envelope. The envelope
    carries the sender's per-send sequence number, so an observer can
    check MPI's non-overtaking rule per (source, tag, context) stream;
    this is what [Check.Invariant] builds on. At most one observer per
    device; [None] removes it. Not called for probes (no match is
    consumed). *)

val track_request : t -> Request.t -> unit
(** Count [req] in {!outstanding} until it completes. The schedule engine
    tracks its generalized collective requests here so
    [Mpi.quiescence_report] catches leaked (never-completed) schedules. *)

val outstanding : t -> int
(** Requests started on this device and not yet completed. *)

val pending_rendezvous : t -> int
(** Rendezvous transfers awaiting CTS or DATA. *)

(** {1 Failure plumbing}

    All installed by {!Mpi.create_world} when the world has a failure
    service ({!Ft}); absent (and free) otherwise. *)

val set_tick : t -> (unit -> unit) option -> unit
(** Closure run at the head of every {!progress} pump — the failure
    detector's beat + sweep. Must never raise. *)

val set_revoked_check : t -> (int -> bool) option -> unit
(** Predicate consulted on every operation start and packet arrival:
    operations on a revoked context fail immediately with
    {!Request.Comm_revoked}; arriving traffic on one is refused. *)

val set_dead_check : t -> (int -> bool) option -> unit
(** Predicate for declared-dead world ranks: sends to (and receives
    from) a dead peer fail immediately with {!Request.Proc_failed} —
    ULFM's [MPI_ERR_PROC_FAILED] — and stale in-flight traffic from one
    is discarded. *)

val set_coll_failed : t -> (int -> Request.reason -> unit) option -> unit
(** Flood callback for collective failure: invoked by the schedule
    engine when an in-flight collective on this device fails with a
    process failure, with the schedule's context id. The world installs
    a closure that aborts that context on {e every} device, so the error
    surfaces at all ranks of the collective (ULFM's uniform
    [MPI_ERR_PROC_FAILED] guarantee) instead of only at ranks whose own
    steps touched the dead peer. *)

val notify_coll_failed : t -> ctx:int -> Request.reason -> unit
(** Invoke the installed flood callback (no-op without one). *)

val ctx_revoked : t -> int -> bool
(** The installed revoked-check's verdict ([false] without one). *)

val peer_dead : t -> int -> bool
(** The installed dead-check's verdict ([false] without one). *)

val fail_peer : t -> peer:int -> unit
(** A peer was declared dead: complete every operation on this device
    that only [peer] could satisfy (rendezvous toward it, posted receives
    naming it) with [Proc_failed], and discard unexpected messages it
    left behind. Any-source receives stay posted. *)

val abort_context : t -> ctx:int -> reason:Request.reason -> unit
(** Revocation sweep: fail every pending operation on [ctx] (posted and
    rendezvous state on both sides), NAK queued rendezvous announcements
    so remote senders release theirs, and abort in-flight schedule hooks
    registered with this [ctx]. *)

val purge : t -> reason:Request.reason -> unit
(** Fail-stop teardown of the device's own rank: fail everything, drop
    all unexpected messages, abort every hook. *)

val describe_pending : t -> string list
(** One line per pending operation (posted receives, rendezvous in both
    directions, unexpected backlog, live hooks) — the deadlock
    diagnostics dump. *)
