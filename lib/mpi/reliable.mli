(** Reliable delivery over a lossy channel (go-back-N under CH3).

    Wraps any {!Channel.t} so the device above sees exactly-once,
    in-order, integrity-checked delivery per (src, dst) pair, whatever
    the channel below drops, duplicates, reorders or corrupts:

    - every packet is framed with a per-(src, dst) sequence number and a
      {!Packet.checksum} of its contents;
    - the receiver accepts frames strictly in order, answers each with a
      cumulative {!Packet.Ack}, suppresses duplicates, discards
      out-of-order futures (go-back-N) and drops checksum failures as if
      they were lost;
    - the sender keeps unacked frames in a retransmission queue and
      resends the window when the virtual clock passes a deadline, with
      exponential backoff between attempts; after [max_retries] timeouts
      the destination is declared unreachable and retransmission stops,
      so a fully partitioned run degrades to incomplete requests instead
      of spinning forever.

    Retransmission timers are pumped from {!Ch3.progress} via the
    wrapped [poll]; any rank's pump services every sender's timers
    (shared address space), so frames whose sending fiber already
    finished still get retransmitted. All timing comes from the
    simulation clock — behaviour is fully deterministic. *)

type config = {
  rto_base_ns : float;  (** first retransmission timeout *)
  rto_max_ns : float;  (** backoff ceiling *)
  max_retries : int;  (** timeouts before declaring the peer unreachable *)
}

val default_config : config
(** 100us base, 2ms ceiling, 16 retries — a few round trips of headroom
    over the sock channel's ~11us one-way latency. *)

type t
(** Handle on the layer's internal state (inspection / tests). *)

val wrap : ?config:config -> env:Simtime.Env.t -> Channel.t -> Channel.t * t
(** Decorate a channel with reliable delivery. Counts [retransmits],
    [acks], [dup_drops], [ooo_drops], [corrupt_drops] and [retx_giveups]
    in the environment's stats; records [retx], [ack] and [drop] trace
    events. *)

val wrap_channel : ?config:config -> env:Simtime.Env.t -> Channel.t -> Channel.t
(** {!wrap} without the handle. *)

val stranded : t -> int
(** Frames still in retransmission queues (unacked). A clean run drains
    to 0; a partitioned run strands the frames the partition swallowed. *)

val reset_peer : t -> peer:int -> int
(** Drop every tx/rx state involving [peer], in both directions: frames
    toward a dead rank stop retransmitting (and stop counting as
    {!stranded}), and a restarted incarnation of the rank renegotiates
    sequence numbers from zero. Returns the number of frames abandoned.
    Called by the failure layer at declaration and at revive. *)
