(** Collective operations, built over point-to-point on the communicator's
    collective context (so they can never match user receives).

    Each collective is an {e algorithm-selection layer} in the MPICH2
    style: the implementation is chosen from the payload size and the
    communicator size, with the switch-over thresholds living in
    {!Simtime.Cost} ([coll_*] fields) so selection is a measurable,
    tunable policy. The naive reference algorithms are kept reachable
    (via the [?algo] arguments and the [*_linear] exports) as correctness
    oracles and for ablation.

    Every algorithm compiles into a {!Coll_sched} schedule executed by
    the device progress engine, so each collective also has an MPI-3
    style nonblocking form ([ibarrier], [ibcast], [iallreduce], ...)
    returning a generalized {!Request.t} of kind [Coll_req]; the
    blocking forms are start + wait shims over them. Collectives whose
    result is materialized at completion ([iallgather], [iallreduce],
    [ireduce], [iscan], [ialltoall]) return the result buffer alongside
    the request — its contents are defined only once the request
    completes. As in MPI, at most one collective {e of the same kind}
    may be in flight per communicator (different kinds overlap safely:
    the tag table keeps their traffic disjoint).

    Selection must {e agree} across the communicator: it depends only on
    the shared cost model, the communicator size and the payload length,
    plus caller-supplied arguments ([algo], [block], [granule],
    [commutative]) — every member must pass the same values for those,
    exactly as every rank passes the same counts to an MPI collective. *)

(** {1 Algorithm choices} *)

type allreduce_algo = [ `Auto | `Linear | `Rd | `Rabenseifner | `Hier ]
(** [`Linear]: binomial reduce to rank 0 + binomial bcast (the reference
    oracle). [`Rd]: recursive doubling — log n rounds of whole-payload
    exchange; preserves rank order, so safe for non-commutative
    operators. [`Rabenseifner]: reduce-scatter (recursive halving) +
    allgather (recursive doubling) — each member moves ~2x the payload
    instead of log n x; requires a commutative operator. [`Hier]:
    two-level (topology-aware) — binomial reduce within each node's
    shard, allreduce of the shard results across the per-node leaders
    (itself size-selected at n = #nodes), binomial bcast down each
    shard; preserves rank order. *)

type bcast_algo = [ `Auto | `Binomial | `Scatter_allgather | `Hier ]
(** [`Scatter_allgather] (van de Geijn): binomial scatter of blocks + ring
    allgather; pipelines large payloads so no member sends more than ~2x
    the buffer. [`Hier]: leader tree across nodes, then a binomial tree
    inside each node's shard. *)

type allgather_algo = [ `Auto | `Ring | `Rd | `Hier ]
(** [`Rd] (recursive doubling) runs in log n rounds but needs a
    power-of-two communicator; the ring works for any size. [`Hier]:
    gather at each node's leader, ring of shard aggregates across
    leaders, bcast down each shard — needs a node-aligned communicator
    (equal shards). *)

type barrier_algo = [ `Auto | `Dissemination | `Hier ]
(** [`Dissemination]: ceil(log2 n) pairwise rounds. [`Hier]: fan-in to
    each node's leader, dissemination across leaders, fan-out release —
    only ceil(log2 #nodes) rounds cross the wire. *)

type fan_algo = [ `Auto | `Linear | `Binomial ]
(** Scatter/gather: [`Binomial] needs the equal-block mode ([~block]).

    The [`Hier] variants apply when the world's topology is multi-node
    and the communicator is a contiguous range spanning more than one
    node ({!hier_applicable}); [`Auto] then prefers them. Forcing
    [`Hier] where it does not apply raises [Invalid_argument]. *)

(** {1 Selection policy}

    Exposed so tests and sweeps can interrogate the policy directly. *)

val allreduce_algo_for :
  Simtime.Cost.t ->
  n:int ->
  bytes:int ->
  granule:int ->
  commutative:bool ->
  [ `Linear | `Rd | `Rabenseifner ]

val bcast_algo_for :
  Simtime.Cost.t -> n:int -> bytes:int -> [ `Binomial | `Scatter_allgather ]

val allgather_algo_for :
  Simtime.Cost.t -> n:int -> bytes:int -> [ `Ring | `Rd ]

val fan_algo_for :
  Simtime.Cost.t -> n:int -> block:int option -> [ `Linear | `Binomial ]

val hier_applicable : Mpi.proc -> Comm.t -> bool
(** Whether the two-level algorithms apply: the world's topology is
    multi-node and [comm] is a contiguous range spanning more than one
    node. Depends only on shared state, so it agrees across members. *)

val hier_allgather_applicable : Mpi.proc -> Comm.t -> bool
(** {!hier_applicable} plus node alignment (equal shards), which the
    hier allgather's block layout requires. *)

(** {1 Tag table}

    Every collective owns a disjoint range of the internal tag space on
    the collective context; {!tag_overlap} is the static uniqueness check
    (asserted by a test — a shared base once let scan cross-match stale
    scatter messages). *)

val tag_table : (string * int * int) list
(** [(name, base, width)] per collective; the range is
    [base, base + width). *)

val tag_overlap : unit -> (string * string) option
(** [None] iff all ranges in {!tag_table} are pairwise disjoint; otherwise
    the first offending pair. *)

(** {1 Nonblocking collectives}

    Each returns immediately with the schedule's generalized request
    (plus the result buffer where one is materialized); complete with
    {!Mpi.wait} / {!Mpi.test} or any request-set call. Argument
    validation ([Invalid_argument]) still happens synchronously at the
    call. *)

val ibarrier : ?algo:barrier_algo -> Mpi.proc -> Comm.t -> Request.t

val ibcast :
  ?algo:bcast_algo ->
  Mpi.proc ->
  Comm.t ->
  root:int ->
  Buffer_view.t ->
  Request.t

val iscatter :
  ?algo:fan_algo ->
  ?block:int ->
  Mpi.proc ->
  Comm.t ->
  root:int ->
  parts:Buffer_view.t array option ->
  recv:Buffer_view.t ->
  Request.t

val igather :
  ?algo:fan_algo ->
  ?block:int ->
  Mpi.proc ->
  Comm.t ->
  root:int ->
  send:Buffer_view.t ->
  parts:Buffer_view.t array option ->
  Request.t

val iallgather :
  ?algo:allgather_algo ->
  Mpi.proc ->
  Comm.t ->
  send:Bytes.t ->
  Request.t * Bytes.t array
(** The returned blocks (one per member, in communicator-rank order) are
    filled in as the schedule runs; read them only after completion. *)

val ialltoall :
  Mpi.proc -> Comm.t -> send:Bytes.t array -> Request.t * Bytes.t array

val ireduce :
  Mpi.proc ->
  Comm.t ->
  root:int ->
  op:(Bytes.t -> Bytes.t -> unit) ->
  Bytes.t ->
  Request.t * Bytes.t option
(** [Some buffer] at the root (valid at completion), [None] elsewhere. *)

val iallreduce :
  ?algo:allreduce_algo ->
  ?granule:int ->
  ?commutative:bool ->
  Mpi.proc ->
  Comm.t ->
  op:(Bytes.t -> Bytes.t -> unit) ->
  Bytes.t ->
  Request.t * Bytes.t
(** The returned buffer holds the reduction at completion; the input is
    copied at the call, so it may be reused (or collected) immediately. *)

val iscan :
  Mpi.proc ->
  Comm.t ->
  op:(Bytes.t -> Bytes.t -> unit) ->
  Bytes.t ->
  Request.t * Bytes.t

(** {1 Blocking collectives} *)

val barrier : ?algo:barrier_algo -> Mpi.proc -> Comm.t -> unit
(** Dissemination barrier, ceil(log2 n) rounds; [`Auto] switches to the
    two-level form on multi-node topologies. *)

val bcast :
  ?algo:bcast_algo -> Mpi.proc -> Comm.t -> root:int -> Buffer_view.t -> unit
(** Every member passes a buffer of the same length; on non-roots it is
    overwritten. [`Auto] switches from the binomial tree to
    scatter + allgather at [coll_bcast_scatter_min_bytes] scaled by
    [(n/8)^2] (see {!Simtime.Cost}). *)

val scatter :
  ?algo:fan_algo ->
  ?block:int ->
  Mpi.proc ->
  Comm.t ->
  root:int ->
  parts:Buffer_view.t array option ->
  recv:Buffer_view.t ->
  unit
(** [parts] is [Some arr] (one source per member, in communicator-rank
    order; sizes may differ, making this scatterv) at the root and [None]
    elsewhere. Passing [~block] declares the equal-block mode (every part
    and [recv] exactly [block] bytes — the analogue of [MPI_Scatter]'s
    recvcount, passed identically by every member), which enables the
    binomial tree at [coll_binomial_min_ranks] for blocks up to
    [coll_binomial_max_block]; without it the scatter is the linear
    root-fan. *)

val gather :
  ?algo:fan_algo ->
  ?block:int ->
  Mpi.proc ->
  Comm.t ->
  root:int ->
  send:Buffer_view.t ->
  parts:Buffer_view.t array option ->
  unit
(** Dual of {!scatter}: [parts] is [Some arr] at the root. *)

val allgather :
  ?algo:allgather_algo -> Mpi.proc -> Comm.t -> send:Bytes.t -> Bytes.t array
(** Allgather of equal-size blocks; returns one block per member in
    communicator-rank order. [`Auto] uses recursive doubling on
    power-of-two communicators up to [coll_allgather_rd_max_bytes] total,
    the ring otherwise. Forcing [`Rd] on a non-power-of-two communicator
    raises [Invalid_argument]. *)

val alltoall : Mpi.proc -> Comm.t -> send:Bytes.t array -> Bytes.t array
(** Personalised all-to-all of equal-size blocks: [send.(r)] goes to
    member [r]; the result's element [r] came from member [r]. All blocks
    must have the same length. *)

val reduce :
  Mpi.proc ->
  Comm.t ->
  root:int ->
  op:(Bytes.t -> Bytes.t -> unit) ->
  Bytes.t ->
  Bytes.t option
(** Binomial-tree reduction: [op acc x] folds [x] into [acc] in place,
    and the tree folds in rank order, so the operator need not commute
    (associativity is still required). Returns [Some result] at the root,
    [None] elsewhere. The input is not modified. *)

val allreduce :
  ?algo:allreduce_algo ->
  ?granule:int ->
  ?commutative:bool ->
  Mpi.proc ->
  Comm.t ->
  op:(Bytes.t -> Bytes.t -> unit) ->
  Bytes.t ->
  Bytes.t
(** [`Auto] selects Rabenseifner for payloads of at least
    [coll_rabenseifner_min_bytes] when the operator is commutative and
    the buffer splits into at least one [granule]-aligned piece per
    member, recursive doubling otherwise. [granule] (default 8) is the
    element size in bytes: Rabenseifner never splits the payload inside a
    granule, so the default is safe for every predefined operator.
    [commutative] defaults to [true]; pass [~commutative:false] for
    order-sensitive operators — [`Auto] then stays on recursive doubling,
    which folds in rank order. *)

val allreduce_linear :
  Mpi.proc -> Comm.t -> op:(Bytes.t -> Bytes.t -> unit) -> Bytes.t -> Bytes.t
(** The reference oracle: binomial reduce to rank 0 + binomial bcast. *)

val scan :
  Mpi.proc -> Comm.t -> op:(Bytes.t -> Bytes.t -> unit) -> Bytes.t -> Bytes.t
(** Inclusive prefix reduction ([MPI_Scan]): member [r] receives the fold
    of members [0..r], in rank order (the operator need not commute). *)

val reduce_scatter_block :
  Mpi.proc -> Comm.t -> op:(Bytes.t -> Bytes.t -> unit) -> Bytes.t -> Bytes.t
(** [MPI_Reduce_scatter_block]: element-wise reduce the input (whose length
    must be size x block) and return this member's block of the result. *)

(** {1 Predefined reduction operators} *)

val sum_f64 : Bytes.t -> Bytes.t -> unit
val sum_i32 : Bytes.t -> Bytes.t -> unit
val sum_i64 : Bytes.t -> Bytes.t -> unit
val max_f64 : Bytes.t -> Bytes.t -> unit
val min_f64 : Bytes.t -> Bytes.t -> unit
val max_i32 : Bytes.t -> Bytes.t -> unit
