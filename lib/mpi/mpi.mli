(** The MPI facade: worlds, processes and point-to-point operations.

    A {e world} bundles one channel, one device per rank and one virtual
    clock. A {e proc} is the per-rank handle a rank program uses. Blocking
    operations suspend the calling fiber in a polling wait that pumps the
    progress engine — the structure Motor instruments with GC polling
    (paper Section 7.4). *)

type world
type proc

(** {1 World management} *)

val create_world :
  ?channel:[ `Shm | `Sock | `Rdma ] ->
  ?cost:Simtime.Cost.t ->
  ?env:Simtime.Env.t ->
  ?fault:Fault.plan ->
  ?reliable:Reliable.config ->
  ?detector:Ft.detector ->
  ?topology:Simtime.Topology.t ->
  ?parallel:int ->
  n:int ->
  unit ->
  world
(** Default channel is [`Sock] (the paper's configuration); [`Rdma] is
    the kernel-bypass fabric with a pin-down registration cache
    ({!Rdma_channel}, consumed by {!Rma}). A [fault]
    plan makes the wire lossy (seeded, deterministic — see {!Fault}) and
    automatically stacks the {!Reliable} go-back-N layer on top so MPI
    semantics survive; [reliable] installs (or configures) that layer
    explicitly, with or without faults.

    A fault plan with {!Fault.kill} events, or an explicit [detector],
    installs the process-failure service ({!Ft}): a heartbeat failure
    detector runs off every progress pump, killed ranks are torn down
    fail-stop, and operations that can no longer complete raise
    {!Ft.Proc_failed} instead of hanging (see the {!section-ft} section
    below).

    [?parallel:d] builds a world meant to execute on [d] real OCaml 5
    domains (DESIGN.md §15): one environment (clock + stats) per domain,
    each rank's device bound to its domain's environment via the
    topology placement (default: [d] nodes of [ceil(n/d)] cores — one
    simulated node per domain), and the sharded SPSC shm transport
    instead of a modelled channel. [d] is clamped to the rank count and,
    under an explicit [?topology], to its node count — extra domains
    would never be assigned a rank ({!parallelism} reports the effective
    value). Virtual time stops being a global
    order (each domain's clock advances independently; wall-clock is the
    metric); {!merged_stats} recombines accounting after the run.
    Incompatible with [?fault]/[?reliable]/[?detector] (their teardown
    and windows span devices across domains) and with a shared [?env] —
    all raise [Invalid_argument]. Dynamic process management
    ({!add_rank}) is likewise rejected by the sharded transport. *)

(** [?topology] places ranks on a nodes-by-cores machine model
    ({!Simtime.Topology}): the channel prices same-node traffic at the
    shared-memory tier, per-tier traffic counters are recorded, and the
    collectives' selection policy may pick hierarchical (two-level)
    algorithms. Defaults to a single node holding all [n] ranks; must be
    at least as large as the world. *)

val env : world -> Simtime.Env.t
(** Domain 0's environment — the world's only one unless it was created
    with [?parallel]. *)

val domain_envs : world -> Simtime.Env.t array
(** One environment per execution domain (length 1 unless [?parallel]).
    Read them only when their domains are quiescent (after {!run}
    returns). *)

val parallelism : world -> int option
(** [Some domains] when the world was created with [?parallel]. *)

val merged_stats : world -> Simtime.Stats.t
(** Per-domain stats folded into one accumulator ({!Simtime.Stats.merged});
    on a cooperative world this is just a copy of the env's stats. Call
    after the run completes. *)

val world_size : world -> int

val topology : world -> Simtime.Topology.t
(** The machine model ranks were placed on ([Topology.single ~n] unless a
    topology was passed at creation). *)

val reliable_handle : world -> Reliable.t option
(** Handle on the world's go-back-N layer when one was installed
    ([?fault] or [?reliable]); lets tests and the schedule-exploration
    harness assert that retransmission queues drained
    ({!Reliable.stranded} = 0) as a quiescence invariant. *)

val rdma_handle : world -> Rdma_channel.t option
(** The RDMA fabric handle when the world was created with
    [?channel:`Rdma]: per-rank registration caches and the cost-model
    helpers {!Rma} charges registration and rendezvous-variant costs
    through. [None] on other channels (one-sided operations still work,
    without registration modelling). *)

val ft_handle : world -> Ft.t option
(** The process-failure service, when installed (kills or [?detector]). *)

val dead_ranks : world -> int list
(** Ranks currently declared dead (empty without a failure service). *)

val revive_rank : world -> int -> unit
(** Re-admit a torn-down or dead rank (checkpoint/restart): its state
    returns to alive, the detector starts trusting it again and the
    reliable layer's sequence state toward it is reset so the new
    incarnation starts from sequence zero. The caller then respawns a
    fiber for it (see {!Ft.revive}). Raises [Invalid_argument] if the
    rank is alive or the world has no failure service. *)

val proc : world -> int -> proc
val comm_world : world -> Comm.t
(** The communicator over the world's {e initial} ranks; processes added
    later by dynamic spawning are not members (as in MPI, where spawned
    children get their own world). *)

val rank : proc -> int
(** World rank. *)

val comm_rank : proc -> Comm.t -> int
(** This process's rank within [comm]; raises [Invalid_argument] if it is
    not a member. *)

val world_of : proc -> world
val device : proc -> Ch3.t

val alloc_context : world -> key:string -> int
(** Deterministic context allocation: the first caller with a given key
    allocates a fresh pair of context ids, later callers get the same id.
    This is how every member of a collective communicator-creation agrees
    on the new context. *)

val add_rank : world -> proc
(** Extend the world by one process (dynamic process management). *)

val quiescence_report : world -> (int * string) list
(** Leftover communication state per rank — outstanding requests, posted
    receives never matched, unexpected messages never received, rendezvous
    transfers never finished. A clean program ends with an empty report
    (the check MPI_Finalize performs); tests use it to catch leaks.
    Torn-down (killed) ranks are exempt: their devices were purged at
    death, and survivors' state referring to them was completed with
    [Proc_failed]. *)

val run :
  ?channel:[ `Shm | `Sock | `Rdma ] ->
  ?cost:Simtime.Cost.t ->
  ?env:Simtime.Env.t ->
  ?fault:Fault.plan ->
  ?reliable:Reliable.config ->
  ?detector:Ft.detector ->
  ?topology:Simtime.Topology.t ->
  ?parallel:int ->
  n:int ->
  (proc -> unit) ->
  world
(** Create a world and run one fiber per rank to completion; returns the
    world (whose env carries the clock and counters). [fault], [reliable]
    and [detector] as in {!create_world}. Each rank's fiber runs under
    {!rank_guard}, so a scheduled kill tears the rank down instead of
    aborting the run. With [?parallel:d] the fibers execute on [d] real
    domains ({!Fiber.Parallel}) — see {!create_world} for the
    restrictions. *)

val rank_guard : world -> int -> (unit -> unit) -> unit
(** [rank_guard w rank body] runs [body], implementing fail-stop
    semantics: if {!Ft.Killed}[ rank] escapes, the rank's device is
    purged, the rank transitions to torn-down (its endpoints go silent;
    survivors find out via the detector) and the fiber exits normally. A
    clean return marks the rank finished so the detector never declares
    an exited rank dead. Custom drivers that spawn their own fibers
    (checkpoint/restart respawns) must wrap bodies in this. *)

(** {1 Point-to-point}

    Ranks and sources are communicator ranks; [src] may be
    {!Tag_match.any_source}, [tag] may be {!Tag_match.any_tag} on
    receives. *)

val isend :
  proc -> comm:Comm.t -> dst:int -> tag:int -> Buffer_view.t -> Request.t

val issend :
  proc -> comm:Comm.t -> dst:int -> tag:int -> Buffer_view.t -> Request.t

val irecv :
  proc -> comm:Comm.t -> src:int -> tag:int -> Buffer_view.t -> Request.t

val send : proc -> comm:Comm.t -> dst:int -> tag:int -> Buffer_view.t -> unit
val ssend : proc -> comm:Comm.t -> dst:int -> tag:int -> Buffer_view.t -> unit

val recv :
  proc -> comm:Comm.t -> src:int -> tag:int -> Buffer_view.t -> Status.t
(** The returned status's [source] is a communicator rank. *)

val wait : proc -> Request.t -> Status.t option
(** Polling wait: pumps progress until the request completes. The optional
    [poll] hook of {!wait_poll} is how Motor injects GC yields. Raises
    {!Ch3.Mpi_error} if the request completed with a categorized failure
    (truncation, rendezvous refused). *)

val wait_poll : proc -> poll:(unit -> unit) -> Request.t -> Status.t option
val test : proc -> Request.t -> bool
(** One progress pump, then completion check ([MPI_Test]). *)

val wait_all : proc -> Request.t list -> unit

val wait_any : proc -> Request.t list -> Request.t
(** Block until at least one of the requests completes; returns the first
    complete one in list order ([MPI_Waitany]). The list must not be
    empty. *)

val test_all : proc -> Request.t list -> bool
(** One progress pump, then [true] iff every request is complete
    ([MPI_Testall]). An empty list is trivially complete. *)

val test_any : proc -> Request.t list -> Request.t option
(** One progress pump, then the first complete request in list order, if
    any ([MPI_Testany]). *)

val wait_some : proc -> Request.t list -> Request.t list
(** Block until at least one request completes; returns {e all} the
    complete ones, in list order ([MPI_Waitsome]). The list must not be
    empty. *)

val sendrecv :
  proc ->
  comm:Comm.t ->
  dst:int ->
  send_tag:int ->
  send:Buffer_view.t ->
  src:int ->
  recv_tag:int ->
  recv:Buffer_view.t ->
  Status.t
(** Combined send and receive without deadlock ([MPI_Sendrecv]): both
    operations are started non-blocking, then completed together. *)

val iprobe : proc -> comm:Comm.t -> src:int -> tag:int -> Status.t option
(** Non-destructive match against the unexpected queue after one progress
    pump ([MPI_Iprobe]). *)

(** {1 Communicator management} *)

val next_epoch : proc -> Comm.t -> int
(** Per-process count of collective communicator-creating calls on [comm].
    MPI requires all members to make such calls in the same order, so the
    value agrees across ranks; {!comm_split}, {!comm_dup} and
    [Dynamic.spawn] use it to build agreement keys for {!alloc_context}. *)

val spawn_table : world -> (string, int array) Hashtbl.t
(** Rendezvous table for dynamic process spawning (see [Dynamic]). *)

val comm_dup : proc -> Comm.t -> Comm.t
val comm_split : proc -> Comm.t -> color:int -> key:int -> Comm.t
(** Collective over [comm]: every member must call it. Members with equal
    [color] land in the same new communicator, ordered by [key] (ties by
    old rank). Implemented with real messages (allgather of (color, key)). *)

(** {1 Hierarchical communicators}

    A contiguous communicator on a multi-node topology decomposes into
    per-node {e shards} and a cross-node {e leader} slice (the first
    member on each node). Both derived communicators are O(1)
    descriptors — a contiguous sub-range and a strided slice — and their
    context ids come from the deterministic allocator keyed by the
    parent's context, so constructing them needs {e no communication}.
    All three calls raise [Invalid_argument] if [comm] is not contiguous
    or the caller is not a member. *)

val shard_comm : proc -> Comm.t -> Comm.t
(** The members of [comm] on the calling process's node, in rank order.
    With a single-node topology this is [comm] itself (fresh context). *)

val leader_comm : proc -> Comm.t -> Comm.t
(** One member per node covered by [comm]: each node's lowest-ranked
    member. The same communicator value on every caller — non-leaders may
    use it for membership queries but must not run operations on it. *)

val is_shard_leader : proc -> Comm.t -> bool
(** Whether the caller is the first member of [comm] on its node. *)

(** {1:ft Fault tolerance (ULFM-style)}

    The recovery calls below follow MPI's User-Level Failure Mitigation
    proposal: an operation touching a dead process raises
    {!Ft.Proc_failed}; the application then {!comm_revoke}s the broken
    communicator (so no member stays blocked in it), {!comm_shrink}s it
    to the survivors, and continues — optionally re-admitting a restarted
    incarnation of the dead rank via {!revive_rank} + checkpoint restore.
    All three require the world to have a failure service. *)

val comm_revoke : proc -> Comm.t -> unit
(** Revoke [comm] (both its point-to-point and collective contexts):
    every rank's pending operations on it complete with
    {!Ft.Revoked}, in-flight collective schedules abort, and new
    operations on it fail immediately. Idempotent. Unlike most MPI calls
    this is {e not} collective — any member may revoke unilaterally; the
    simulation propagates the revocation instantly, standing in for
    ULFM's reliable revoke flood. *)

val comm_agree : proc -> Comm.t -> value:int -> int
(** Fault-tolerant agreement ([MPI_Comm_agree]): returns the bitwise AND
    of the values contributed by the surviving members — the same result
    on every survivor, even if members die mid-call. Collective over the
    survivors of [comm]; tolerates any number of failures (including the
    internal root's). A dead member's contribution is included only if it
    was received before the death was declared. *)

val comm_shrink : proc -> Comm.t -> Comm.t
(** Fault-tolerant shrink ([MPI_Comm_shrink]): collective over the
    survivors, returns a new communicator containing exactly the members
    every survivor agrees are alive, in [comm]'s rank order. Built on
    {!comm_agree} over an alive-bitmap, so stragglers' divergent failure
    views are reconciled; communicators up to 62 members (an OCaml int
    bitmap). *)
