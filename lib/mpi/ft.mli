(** Process-failure service: fail-stop kills, heartbeat detection,
    revocation — the runtime plumbing under the ULFM-style recovery API.

    One instance per world (created by {!Mpi.create_world} when the fault
    plan carries kills, or when a detector is requested explicitly). Rank
    life cycle: [Alive -> Finished] on normal return, or
    [Alive -> Torn_down -> Dead] under a {!Fault.kill} — [Torn_down] when
    the victim's fiber is dismantled, [Dead] once the heartbeat detector
    declares the failure to the survivors. Only the declaration triggers
    {!Request.Proc_failed} completions; the window in between models real
    detection latency.

    The detector is driven from {!Ch3.progress}: each pump beats the
    pumping rank and sweeps every other rank's last-beat timestamp
    against [hb_timeout_ns] of virtual time. No heartbeat packets travel
    on the wire (they would perturb the fault injector's seeded per-send
    PRNG), so the detector models an out-of-band watchdog. A rank that
    merely computes for longer than the timeout without pumping progress
    is declared dead anyway — the false positive a too-aggressive timeout
    buys, observable with the schedule explorer's planted detector bug. *)

exception Killed of int
(** Raised (in fiber context) by the victim's own MPI calls once its kill
    time has passed; {!Mpi.rank_guard} catches it and tears the rank
    down. *)

exception Proc_failed of int
(** Raised by waiters when a request failed with
    {!Request.Proc_failed} — the peer world rank is carried. *)

exception Revoked of int
(** Raised by waiters / operation entry when the communicator's context
    was revoked. *)

type detector = { hb_period_ns : float; hb_timeout_ns : float }

val default_detector : detector
(** 20us beat granularity, 5ms timeout — safely above the reliable
    layer's 2ms backoff ceiling so retransmission storms are never
    mistaken for death. *)

type rank_state = Alive | Finished | Torn_down | Dead

type t

val create :
  env:Simtime.Env.t ->
  ?detector:detector ->
  ?kills:Fault.kill list ->
  n:int ->
  unit ->
  t

val detector : t -> detector
val state : t -> int -> rank_state
val is_down : t -> int -> bool
(** Declared dead by the detector. *)

val is_out : t -> int -> bool
(** Torn down or declared dead (endpoints silent either way). *)

val dead_ranks : t -> int list
val out_ranks : t -> int list

val detections : t -> (int * float) list
(** Every declaration, oldest first: (rank, virtual time declared). *)

val self_doomed : t -> rank:int -> bool
(** The rank's kill time has passed but its fiber hasn't been torn down
    yet. Safe to call from scheduler context (never raises) — wait
    predicates use it to wake a doomed fiber. *)

val check_self : t -> rank:int -> unit
(** Raise {!Killed} if {!self_doomed}. Call only from fiber context. *)

val mark_killed : t -> rank:int -> unit
(** Record the fail-stop: state [Torn_down], endpoints silent. Called by
    {!Mpi.rank_guard} during teardown; idempotent. *)

val finish : t -> rank:int -> unit
(** Normal completion: the rank stops beating without being a failure. *)

val declare_dead : t -> int -> unit
(** Detector declaration (also exposed for tests): fires the on-death
    subscribers once. No-op on [Finished] or already-[Dead] ranks. *)

val revive : t -> rank:int -> unit
(** Restart a down rank: state back to [Alive], heartbeat reset, on-revive
    subscribers fired. Raises [Invalid_argument] if the rank is not
    down. *)

val restart_after : t -> rank:int -> float option
(** The kill plan's restart delay for the rank, if any. *)

val on_death : t -> (int -> unit) -> unit
val on_revive : t -> (int -> unit) -> unit

val pending_detection : t -> bool
(** A kill has fired but not been declared (or is still scheduled): the
    detector guarantees progress, so a blocked configuration is not yet a
    deadlock. *)

val tick : t -> rank:int -> unit
(** One detector step, called from every progress pump: beat [rank],
    report pending detections as scheduler activity, sweep the other
    ranks' timeouts. Never raises. *)

val revoke : t -> int -> unit
(** Mark a context id revoked (idempotent). *)

val is_revoked : t -> int -> bool

val wrap_channel : t -> Channel.t -> Channel.t
(** The silencer: discard packets to or from dead/torn-down ranks. Stack
    it {e above} reliable delivery so nothing keeps retransmitting on a
    dead rank's behalf. Counts [ft_silenced]. *)
