(* Bounded single-producer/single-consumer ring.

   The sharded shm channel allocates one ring per (src, dst) pair, so
   each ring has exactly one producing domain (src's) and one consuming
   domain (dst's) — the cheapest possible memory-model contract:

   - [tail] is written only by the producer, [head] only by the
     consumer; both are [Atomic] so the counter updates are release
     stores and the cross-domain reads acquire loads (OCaml atomics are
     SC, which is stronger than we need).
   - The slot array itself holds plain (non-atomic) fields. The
     producer writes slot [tail land mask] and THEN publishes with
     [Atomic.set tail (tail+1)]; the consumer reads [tail] first, so
     the slot write happens-before the slot read. Symmetrically the
     consumer clears the slot before releasing it via [head], so the
     producer never overwrites a slot still being read. No torn reads,
     no lost updates, TSan-clean.

   Capacity is rounded up to a power of two; indices grow monotonically
   and are masked on access, so full/empty distinguish by subtraction
   (never ambiguous with ints wrapping at 2^62). *)

type 'a t = {
  buf : 'a option array;
  mask : int;
  head : int Atomic.t; (* next slot to read; written by the consumer *)
  tail : int Atomic.t; (* next slot to write; written by the producer *)
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Spsc.create: capacity must be positive";
  let cap = ref 2 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  {
    buf = Array.make !cap None;
    mask = !cap - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
  }

let capacity t = t.mask + 1
let length t = Atomic.get t.tail - Atomic.get t.head

let try_push t v =
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  if tail - head > t.mask then false
  else begin
    t.buf.(tail land t.mask) <- Some v;
    Atomic.set t.tail (tail + 1);
    true
  end

(* Blocking push: spin with [cpu_relax] until the consumer frees a slot.
   The consumer drains its rings every poll, so a full ring means it is
   merely behind, not parked — backpressure, not deadlock. *)
let push t v =
  while not (try_push t v) do
    Domain.cpu_relax ()
  done

let pop t =
  let head = Atomic.get t.head in
  let tail = Atomic.get t.tail in
  if tail = head then None
  else begin
    let i = head land t.mask in
    let v = t.buf.(i) in
    t.buf.(i) <- None;
    Atomic.set t.head (head + 1);
    v
  end
