type intercomm = {
  ic_local : Comm.t;
  ic_remote : Comm.t;
  ic_merge_ctx : int;
  ic_is_parent : bool;
}

let remote_size ic = Comm.size ic.ic_remote

let spawn p ~comm ~n body =
  if n < 1 then invalid_arg "Dynamic.spawn: need at least one child";
  if not (Fiber.in_scheduler ()) then
    failwith "Dynamic.spawn: requires a running fiber scheduler";
  let w = Mpi.world_of p in
  let me = Mpi.comm_rank p comm in
  let e = Mpi.next_epoch p comm in
  let key = Printf.sprintf "spawn/%d/%d" comm.Comm.ctx e in
  let inter_ctx = Mpi.alloc_context w ~key:(key ^ "/inter") in
  let child_ctx = Mpi.alloc_context w ~key:(key ^ "/children") in
  let merge_ctx = Mpi.alloc_context w ~key:(key ^ "/merge") in
  let parent_members = Comm.members comm in
  let table = Mpi.spawn_table w in
  if me = 0 then begin
    let children = Array.init n (fun _ -> Mpi.add_rank w) in
    let child_members = Array.map Mpi.rank children in
    let child_ic =
      {
        ic_local = Comm.make ~ctx:child_ctx ~members:child_members;
        ic_remote = Comm.make ~ctx:inter_ctx ~members:parent_members;
        ic_merge_ctx = merge_ctx;
        ic_is_parent = false;
      }
    in
    Array.iter
      (fun cp ->
        Fiber.spawn
          (Printf.sprintf "spawned%d" (Mpi.rank cp))
          (fun () -> body cp child_ic))
      children;
    Hashtbl.replace table key child_members
  end
  else
    Fiber.wait_until ~label:"spawn-rendezvous" (fun () ->
        Hashtbl.mem table key);
  let child_members = Hashtbl.find table key in
  {
    ic_local = comm;
    ic_remote = Comm.make ~ctx:inter_ctx ~members:child_members;
    ic_merge_ctx = merge_ctx;
    ic_is_parent = true;
  }

let merge _p ic =
  let parents, children =
    if ic.ic_is_parent then (Comm.members ic.ic_local, Comm.members ic.ic_remote)
    else (Comm.members ic.ic_remote, Comm.members ic.ic_local)
  in
  Comm.make ~ctx:ic.ic_merge_ctx ~members:(Array.append parents children)

(* Intercommunicator traffic uses the shared context with the REMOTE
   group's ranks; both sides constructed their remote comm with the same
   context id, so envelopes match. *)
let send p ic ~dst ~tag buf =
  ignore
    (Mpi.wait p
       (Ch3.isend (Mpi.device p)
          ~dst:(Comm.world_rank_of ic.ic_remote dst)
          ~tag
          ~context:ic.ic_remote.Comm.ctx buf))

let recv p ic ~src ~tag buf =
  let src =
    if src = Tag_match.any_source then src
    else Comm.world_rank_of ic.ic_remote src
  in
  match
    Mpi.wait p
      (Ch3.irecv (Mpi.device p) ~src ~tag ~context:ic.ic_remote.Comm.ctx buf)
  with
  | Some st -> (
      match Comm.comm_rank_of ic.ic_remote st.Status.source with
      | Some r -> { st with Status.source = r }
      | None -> st)
  | None -> Status.empty
