(** Seeded, deterministic fault injection for any {!Channel.t}.

    Wrapping a channel with a {!plan} makes it lossy in a perfectly
    reproducible way: per-packet drop / duplicate / delay-reorder /
    bit-corruption decisions come from a splitmix64-style hash of
    [(seed, send index, draw index)], so the same seed over the same
    (deterministic) workload replays the exact same fault schedule —
    byte for byte, counter for counter. Rank-pair partition windows cut
    all traffic on matching pairs for an interval of virtual time.

    The decorator injects faults {e below} the reliable-delivery layer:
    stack it as [Reliable.wrap (Fault.wrap plan base)]. Without
    {!Reliable}'s checksummed framing above it, corrupted payloads are
    delivered silently (as on a real link without CRC) and lost packets
    are simply gone; {!Mpi.create_world}'s [?fault] argument always
    installs both layers. *)

type partition = {
  pt_src : int;  (** sending world rank, [-1] for any *)
  pt_dst : int;  (** receiving world rank, [-1] for any *)
  pt_from_ns : float;  (** window start, virtual ns (inclusive) *)
  pt_until_ns : float;  (** window end, virtual ns (exclusive) *)
}
(** While the virtual clock is inside the window, every packet from a
    matching (src, dst) pair is dropped (and counted as a fault drop). A
    symmetric partition needs two entries, one per direction. *)

type kill = {
  k_rank : int;  (** world rank to fail-stop *)
  k_at_ns : float;  (** virtual time at which the rank dies *)
  k_restart_ns : float option;
      (** delay after the kill at which the rank may be restarted from a
          checkpoint ([None]: the rank stays down) *)
}
(** A fail-stop process-failure event. The rank's fiber is torn down at
    the first MPI operation or wait after [k_at_ns]; its channel endpoints
    go silent; surviving ranks learn of the death through the heartbeat
    detector ({!Ft}) and see {!Request.Proc_failed} completions. *)

val kill : ?restart_after_ns:float -> rank:int -> at_ns:float -> unit -> kill
(** Raises [Invalid_argument] on a negative rank or time. *)

type plan = {
  seed : int;
  drop : float;  (** per-packet loss probability, [0, 1] *)
  duplicate : float;  (** probability a packet is delivered twice *)
  corrupt : float;  (** probability one payload/header bit is flipped *)
  delay : float;  (** probability a packet is held back (reordering) *)
  delay_ns : float;  (** maximum extra delay for held packets *)
  partitions : partition list;
  kills : kill list;  (** fail-stop process failures (at most one per rank) *)
}

val plan :
  ?seed:int ->
  ?drop:float ->
  ?duplicate:float ->
  ?corrupt:float ->
  ?delay:float ->
  ?delay_ns:float ->
  ?partitions:partition list ->
  ?kills:kill list ->
  unit ->
  plan
(** All probabilities default to 0 (a transparent plan); [seed] defaults
    to 1, [delay_ns] to 100us; [kills] defaults to none. Raises
    [Invalid_argument] on probabilities outside [0, 1] or two kills for
    the same rank. *)

val wrap : env:Simtime.Env.t -> plan -> Channel.t -> Channel.t
(** Decorate a channel with the plan's fault schedule. Counts
    [fault_drops] / [fault_dups] / [fault_delays] / [fault_corrupts] in
    the environment's stats and records [drop] trace events. Held
    (delayed) packets re-enter the underlying channel once the clock
    passes their release time — after later traffic, which is exactly the
    reordering the delay models. *)

val draw : seed:int -> packet:int -> salt:int -> float
(** The underlying deterministic uniform draw in [0, 1) (exposed for
    tests of schedule reproducibility). *)
