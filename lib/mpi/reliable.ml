module Key = Simtime.Stats.Key

type config = {
  rto_base_ns : float;
  rto_max_ns : float;
  max_retries : int;
}

let default_config =
  { rto_base_ns = 100_000.0; rto_max_ns = 2_000_000.0; max_retries = 16 }

(* Sender-side state for one (src, dst) direction. *)
type tx = {
  mutable next_seq : int;
  unacked : (int * Packet.t) Queue.t;  (* (seq, framed), oldest first *)
  mutable rto_ns : float;
  mutable deadline : float;  (* meaningful only while unacked non-empty *)
  mutable retries : int;
  mutable gave_up : bool;
}

(* Receiver-side state for one (src, dst) direction. *)
type rx = { mutable expected : int }

type t = {
  env : Simtime.Env.t;
  cfg : config;
  chan : Channel.t;
  txs : (int * int, tx) Hashtbl.t;
  rxs : (int * int, rx) Hashtbl.t;
}

let now t = Simtime.Clock.now_ns t.env.Simtime.Env.clock

let tx_state t ~src ~dst =
  match Hashtbl.find_opt t.txs (src, dst) with
  | Some st -> st
  | None ->
      let st =
        { next_seq = 0; unacked = Queue.create ();
          rto_ns = t.cfg.rto_base_ns; deadline = infinity; retries = 0;
          gave_up = false }
      in
      Hashtbl.replace t.txs (src, dst) st;
      st

let rx_state t ~src ~dst =
  match Hashtbl.find_opt t.rxs (src, dst) with
  | Some st -> st
  | None ->
      let st = { expected = 0 } in
      Hashtbl.replace t.rxs (src, dst) st;
      st

let send t ~src ~dst packet =
  let st = tx_state t ~src ~dst in
  let seq = st.next_seq in
  st.next_seq <- seq + 1;
  let framed =
    Packet.Frame
      ( { Packet.f_src = src; f_seq = seq; f_check = Packet.checksum packet },
        packet )
  in
  if Queue.is_empty st.unacked then begin
    st.rto_ns <- t.cfg.rto_base_ns;
    st.deadline <- now t +. st.rto_ns;
    st.retries <- 0;
    st.gave_up <- false
  end;
  Queue.add (seq, framed) st.unacked;
  t.chan.Channel.send ~src ~dst framed

(* Retransmission is pumped from every rank's poll: all devices of a
   world share the address space and the clock, so any progress pump can
   service every sender's timers. This keeps fire-and-forget senders
   honest — their frames are retransmitted even after their fiber has
   finished its program, as long as anyone still polls. Go-back-N: on
   timeout the whole unacked window is resent with doubled backoff. *)
let pump_retransmits t =
  let states =
    Hashtbl.fold (fun k st acc -> (k, st) :: acc) t.txs []
    |> List.filter (fun (_, st) -> not (Queue.is_empty st.unacked))
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun ((src, dst), st) ->
      if not st.gave_up then begin
        (* Pending frames mean progress is a matter of time, not deadlock. *)
        Fiber.note_activity ();
        if now t >= st.deadline then
          if st.retries >= t.cfg.max_retries then begin
            st.gave_up <- true;
            Simtime.Env.count t.env Key.retx_giveups;
            Trace.record t.env ~rank:src ~op:"retx"
              ~detail:
                (Printf.sprintf "giving up on dst=%d after %d timeouts (%d \
                                 frames stranded)"
                   dst st.retries (Queue.length st.unacked))
          end
          else begin
            (* The backoff that had to elapse before this timeout fired:
               the per-retransmission latency toll paid by the workload. *)
            Simtime.Env.observe t.env Key.h_ch3_retransmit st.rto_ns;
            Queue.iter
              (fun (_, framed) ->
                Simtime.Env.count t.env Key.retransmits;
                Trace.record t.env ~rank:src ~op:"retx"
                  ~detail:(Packet.describe framed);
                t.chan.Channel.send ~src ~dst framed)
              st.unacked;
            st.retries <- st.retries + 1;
            st.rto_ns <- Float.min (st.rto_ns *. 2.0) t.cfg.rto_max_ns;
            st.deadline <- now t +. st.rto_ns
          end
      end)
    states

let send_ack t ~src ~dst ~cum =
  Simtime.Env.count t.env Key.acks;
  Trace.record t.env ~rank:src ~op:"ack"
    ~detail:(Printf.sprintf "dst=%d cum=%d" dst cum);
  t.chan.Channel.send ~src ~dst (Packet.Ack (src, cum))

let rec poll t ~rank =
  pump_retransmits t;
  match t.chan.Channel.poll ~rank with
  | None -> None
  | Some (Packet.Frame (f, inner)) ->
      let src = f.Packet.f_src in
      let rx = rx_state t ~src ~dst:rank in
      if Packet.checksum inner <> f.Packet.f_check then begin
        (* Detected corruption behaves like loss: no ack, the sender's
           retransmission recovers the frame. Never a silent bad
           delivery. *)
        Simtime.Env.count t.env Key.corrupt_drops;
        Trace.record t.env ~rank ~op:"drop"
          ~detail:("checksum mismatch " ^ Packet.describe inner);
        poll t ~rank
      end
      else if f.Packet.f_seq = rx.expected then begin
        rx.expected <- rx.expected + 1;
        send_ack t ~src:rank ~dst:src ~cum:(rx.expected - 1);
        Some inner
      end
      else if f.Packet.f_seq < rx.expected then begin
        (* Duplicate (fault-injected or a retransmission that crossed the
           ack): suppress, but re-ack so the sender stops resending. *)
        Simtime.Env.count t.env Key.dup_drops;
        Trace.record t.env ~rank ~op:"drop"
          ~detail:
            (Printf.sprintf "dup seq=%d (expected %d) %s" f.Packet.f_seq
               rx.expected (Packet.describe inner));
        send_ack t ~src:rank ~dst:src ~cum:(rx.expected - 1);
        poll t ~rank
      end
      else begin
        (* A gap: an earlier frame is missing. Go-back-N discards the
           future frame and re-acks the last in-order sequence. *)
        Simtime.Env.count t.env Key.ooo_drops;
        Trace.record t.env ~rank ~op:"drop"
          ~detail:
            (Printf.sprintf "out-of-order seq=%d (expected %d)"
               f.Packet.f_seq rx.expected);
        send_ack t ~src:rank ~dst:src ~cum:(rx.expected - 1);
        poll t ~rank
      end
  | Some (Packet.Ack (peer, cum)) ->
      let st = tx_state t ~src:rank ~dst:peer in
      (* Cumulative ack: drop the window's acked prefix — O(acked), not
         O(window). *)
      let trimmed = ref false in
      while
        (not (Queue.is_empty st.unacked))
        && fst (Queue.peek st.unacked) <= cum
      do
        ignore (Queue.pop st.unacked);
        trimmed := true
      done;
      if !trimmed then begin
        (* Forward progress: reset the backoff. *)
        st.retries <- 0;
        st.rto_ns <- t.cfg.rto_base_ns;
        st.deadline <- now t +. st.rto_ns;
        st.gave_up <- false
      end;
      poll t ~rank
  | Some other ->
      (* Unframed traffic (a peer not using the reliable layer): pass
         through untouched. *)
      Some other

let stranded t =
  Hashtbl.fold (fun _ st acc -> acc + Queue.length st.unacked) t.txs 0

(* A dead peer's sequence spaces are meaningless: frames toward it will
   never be acked (abandoning them keeps [stranded] honest and stops the
   retransmission pump from servicing a dead NIC), and frames from it
   must not constrain a restarted incarnation, which starts again at
   sequence 0. Dropping the state entirely covers both directions; a
   fresh tx/rx pair is recreated on demand with matching zeros. *)
let reset_peer t ~peer =
  let dropped = ref 0 in
  let involved (src, dst) = src = peer || dst = peer in
  Hashtbl.iter
    (fun k st -> if involved k then dropped := !dropped + Queue.length st.unacked)
    t.txs;
  let purge tbl =
    let keys = Hashtbl.fold (fun k _ acc -> if involved k then k :: acc else acc) tbl [] in
    List.iter (Hashtbl.remove tbl) keys
  in
  purge t.txs;
  purge t.rxs;
  if !dropped > 0 then
    Trace.record t.env ~rank:peer ~op:"retx"
      ~detail:(Printf.sprintf "abandoned %d frame(s) for dead rank %d" !dropped peer);
  !dropped

let wrap ?(config = default_config) ~env chan =
  let t =
    { env; cfg = config; chan; txs = Hashtbl.create 16;
      rxs = Hashtbl.create 16 }
  in
  ( {
      Channel.name = chan.Channel.name ^ "+reliable";
      send = (fun ~src ~dst p -> send t ~src ~dst p);
      poll = (fun ~rank -> poll t ~rank);
      add_rank = chan.Channel.add_rank;
      n_ranks = chan.Channel.n_ranks;
    },
    t )

let wrap_channel ?config ~env chan = fst (wrap ?config ~env chan)
