(** MPI-2 one-sided communication (RMA): windows, [put]/[get]/[accumulate]
    and both synchronization flavours — active-target {!win_fence} epochs
    and passive-target {!win_lock}/{!win_unlock}.

    A window exposes one local byte buffer per communicator member. Data
    movement rides the existing CH3 machinery: every one-sided operation
    is a real message on a dedicated context, handled at the target by a
    {e service} receive re-armed from a CH3 progress hook — so a passive
    target makes progress whenever its fiber pumps the engine, without
    ever calling into the window.

    Epoch semantics are the checkable core (and what the test battery
    exercises): updates received inside an epoch are {e deferred} — queued
    per origin, stamped with the origin's epoch — and applied only at the
    closing synchronization ({!win_fence} or the target's handling of
    {!win_unlock}), sorted by origin rank then per-origin order. Until
    then the target's buffer is bit-for-bit untouched, which is what the
    explorer's epoch-discipline invariant checks; it also makes a
    non-commutative accumulate fold deterministically in rank order.
    [get]s read the committed window (deferred updates invisible), the
    MPI-legal choice for reads concurrent with same-epoch updates.

    On a world created with the [`Rdma] channel, operations additionally
    model pin-down registration through the per-rank
    {!Rdma_channel.Cache}: window memory is registered (and pinned) for
    the window's lifetime at {!win_create}, origin buffers of
    rendezvous-sized transfers are registered through the LRU cache, and
    each rendezvous charges the modelled RDMA-write/RDMA-read variant
    crossover. Transfers under the RDMA eager threshold stage through
    bounce buffers instead.

    The GC side: {!exposed} is the predicate a conditional pin on the
    window buffer polls (see [Motor.System_mp.owin_create]) — true from
    {!win_create} until {!win_free}, so a full collection during an open
    epoch must leave the buffer in place, and the pin drops at the first
    collection after the window is freed. *)

type win

(** Element-wise accumulate operators. Arithmetic operators combine
    little-endian [int64] lanes (length must be a multiple of 8);
    [Replace] is [MPI_REPLACE]; [Matmul] combines 4-byte blocks as 2x2
    matrices over Z/256 ([target := target * incoming]) — associative but
    {e not} commutative, so it observably folds in rank order. *)
type accum_op = Sum | Prod | Min | Max | Bxor | Replace | Matmul

val win_create :
  ?eager_apply:bool -> ?sub:int * int -> Mpi.proc -> comm:Comm.t ->
  Bytes.t -> win
(** Collective over [comm] (every member must call, in the same order
    relative to other context-allocating collectives). The buffer is the
    caller's exposed window memory; member window sizes may differ and
    are exchanged here, so out-of-range remote offsets are checked at
    the origin.

    [?sub:(off, len)] exposes only that range of [buf] — window offset 0
    is [buf[off]]. This is how a managed heap object's payload region
    becomes a window without copying (see [Motor.System_mp.owin_create]);
    raises [Invalid_argument] if the range is outside the buffer.

    [?eager_apply] is {b test instrumentation}: the planted epoch bug.
    When true, the target applies updates the moment they are received
    instead of deferring to the closing synchronization — a put becomes
    visible before [win_fence], which schedule search catches (see
    [Check.Explore]'s [rma_fence_bug] workload). Production callers must
    leave it false. *)

val win_free : win -> unit
(** Collective. Synchronizes members (so no one-sided traffic can still
    be in flight toward the caller), retires the service receive and its
    progress hook, and — on an RDMA world — unpins the window's
    registration. Freeing a window with an {e open epoch} (a lock held
    by or on the caller, unfenced outbound operations, or queued
    unapplied updates) raises [Invalid_argument] instead of leaving a
    dangling registration. *)

val put :
  win -> target:int -> target_off:int -> Bytes.t -> off:int -> len:int -> unit
(** One-sided write of [buf[off, off+len)] into the target's window at
    [target_off]. Completes locally when the message is handed off; the
    update becomes visible at the target only at the epoch's closing
    synchronization. [target] is a [comm] rank (the caller's own rank is
    allowed). *)

val get :
  win -> target:int -> target_off:int -> Bytes.t -> off:int -> len:int -> unit
(** One-sided read of the target's committed window into
    [buf[off, off+len)]. Blocking (waits for the reply); deferred
    same-epoch updates are not visible. *)

val accumulate :
  win ->
  target:int ->
  target_off:int ->
  op:accum_op ->
  Bytes.t ->
  off:int ->
  len:int ->
  unit
(** Like {!put}, but combined into the target data with [op] at the
    closing synchronization. Updates from different origins in one epoch
    are folded in origin-rank order (observable with [Matmul]). *)

val win_fence : win -> unit
(** Active-target synchronization closing the current epoch and opening
    the next. Every member exchanges per-peer operation counts, pumps
    until all updates addressed to it this epoch have arrived, applies
    them (origin order, then issue order), and resets. A fence with no
    pending operations degenerates to a barrier. *)

val win_lock : ?exclusive:bool -> win -> target:int -> unit
(** Passive-target: acquire the target window's lock (default
    exclusive; [~exclusive:false] is [MPI_LOCK_SHARED] — concurrent with
    other shared holders). Blocks until granted; waiters are served
    FIFO. Operations issued while holding the lock form the access
    epoch. *)

val win_unlock : win -> target:int -> unit
(** Close the passive epoch: the target applies every update this origin
    issued under the lock (in issue order), acknowledges, and releases
    the lock. Blocks until the acknowledgement — at return the updates
    are visible in the target window. *)

(** {1 Introspection} *)

val local : win -> Bytes.t
(** The caller's own window buffer (the one passed to {!win_create}). *)

val exposed : win -> bool
(** True until {!win_free} completes: the window's registration epoch,
    polled by the GC's conditional pin on the buffer. *)

val size_of : win -> rank:int -> int
(** The given member's window size in bytes. *)

val comm : win -> Comm.t
