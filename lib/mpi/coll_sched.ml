(* The collective schedule engine (MPICH's MPIR_Sched / TSP analogue).

   A collective algorithm no longer *runs*; it *compiles* into a per-rank
   schedule — a DAG of steps over the device layer — which the progress
   engine executes incrementally. The DAG shape is the restricted one
   MPICH uses: steps are grouped into rounds, and a round may start only
   when every step of all earlier rounds has completed (the
   "sched_barrier" dependency rule). That is exactly the dependency
   structure of the round-based algorithms in {!Collectives}
   (dissemination barrier, binomial trees, recursive doubling / halving,
   rings), so nothing is lost, and the builder API stays a straight-line
   transcription of the blocking loops it replaces.

   Execution is driven by {!Ch3.progress} through a progress hook: every
   progress pump advances every in-flight schedule on the device, which
   is what makes the collectives genuinely nonblocking — a rank can
   compute, or run other collectives on disjoint tag ranges, while its
   schedule trickles forward underneath. Completion of the generalized
   {!Request.t} (kind [Coll_req]) is "all steps done", which is all the
   GC's conditional-pin mechanism needs to poll collective buffers in the
   mark phase. *)

type action =
  | Isend of { dst : int; tag : int; view : Buffer_view.t }
  | Irecv of { src : int; tag : int; view : Buffer_view.t }
  | Reduce of { label : string; f : unit -> unit }
  | Copy of { src : Buffer_view.t; dst : Buffer_view.t }

type state = Pending | Started | Done

type step = {
  s_round : int;
  s_action : action;
  mutable s_state : state;
}

type t = {
  sc_dev : Ch3.t;
  sc_context : int;
  sc_name : string;
  sc_steps : step array;
  sc_req : Request.t;
  mutable sc_cursor : int;  (* steps before this index are all Done *)
  mutable sc_hook : int option;
}

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)
(* ------------------------------------------------------------------ *)

type builder = {
  b_dev : Ch3.t;
  b_context : int;
  b_name : string;
  mutable b_round : int;
  mutable b_open : bool;  (* the current round has steps *)
  mutable b_rev_steps : step list;
  mutable b_started : bool;
}

let make dev ~context ~name =
  {
    b_dev = dev;
    b_context = context;
    b_name = name;
    b_round = 0;
    b_open = false;
    b_rev_steps = [];
    b_started = false;
  }

let add b action =
  b.b_rev_steps <-
    { s_round = b.b_round; s_action = action; s_state = Pending }
    :: b.b_rev_steps;
  b.b_open <- true

let isend b ~dst ~tag view = add b (Isend { dst; tag; view })
let irecv b ~src ~tag view = add b (Irecv { src; tag; view })
let reduce b ?(label = "op") f = add b (Reduce { label; f })
let copy b ~src ~dst = add b (Copy { src; dst })

(* The dependency rule: everything scheduled after a fence waits for
   everything scheduled before it. An empty round is collapsed, so a
   defensive fence at the head or tail of a phase costs nothing. *)
let fence b =
  if b.b_open then begin
    b.b_round <- b.b_round + 1;
    b.b_open <- false
  end

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let describe_action = function
  | Isend { dst; tag; view } ->
      Printf.sprintf "isend dst=%d tag=%d %dB" dst tag
        (Buffer_view.length view)
  | Irecv { src; tag; view } ->
      Printf.sprintf "irecv src=%d tag=%d %dB" src tag
        (Buffer_view.length view)
  | Reduce { label; _ } -> Printf.sprintf "reduce %s" label
  | Copy { dst; _ } -> Printf.sprintf "copy %dB" (Buffer_view.length dst)

let trace_step sc op i (st : step) =
  Trace.record (Ch3.env sc.sc_dev) ~rank:(Ch3.rank sc.sc_dev) ~op
    ~detail:
      (Printf.sprintf "%s[%d] r%d %s" sc.sc_name i st.s_round
         (describe_action st.s_action))

let finish sc =
  (match sc.sc_hook with
  | Some id ->
      Ch3.remove_progress_hook sc.sc_dev id;
      sc.sc_hook <- None
  | None -> ());
  Trace.span_end (Ch3.env sc.sc_dev)
    ~id:(Request.id sc.sc_req)
    ~rank:(Ch3.rank sc.sc_dev) ~cat:"coll" ~name:sc.sc_name ();
  Trace.record (Ch3.env sc.sc_dev) ~rank:(Ch3.rank sc.sc_dev) ~op:"sched/done"
    ~detail:
      (Printf.sprintf "%s %d step(s)%s" sc.sc_name (Array.length sc.sc_steps)
         (match Request.error sc.sc_req with
         | Some m -> " FAILED: " ^ m
         | None -> ""))

(* Mark [st] done when its device request retires; a failed transfer
   (truncation, rendezvous refused, a dead peer, a revoked context) fails
   the whole schedule — remaining steps are never started, and the waiter
   surfaces the error exactly as for point-to-point. Typed reasons
   (process failure, revocation) propagate unchanged so recovery code can
   branch on them. *)
let watch sc i st req =
  Request.on_complete req (fun () ->
      match Request.reason req with
      | Some (Request.Error msg) ->
          Request.fail sc.sc_req
            (Printf.sprintf "%s step %d (%s): %s" sc.sc_name i
               (describe_action st.s_action) msg)
      | Some ((Request.Proc_failed _ | Request.Comm_revoked _) as reason) ->
          Request.fail_reason sc.sc_req reason;
          (* A process failure inside a collective must surface at every
             member (ULFM): flood the abort to the peer devices, whose
             own steps may only involve live ranks and would otherwise
             wait forever on this one. Revocation already reaches every
             device through the revoked-context check. *)
          (match reason with
          | Request.Proc_failed _ ->
              Ch3.notify_coll_failed sc.sc_dev ~ctx:sc.sc_context reason
          | _ -> ())
      | None ->
          st.s_state <- Done;
          trace_step sc "sched/step-done" i st)

let start_step sc i st =
  st.s_state <- Started;
  (* Dispatching a step is not free: callback bookkeeping, completion
     counter, kickoff of the underlying operation (MPIR_Sched pays the
     same). The blocking engine charged the equivalent implicitly by
     rescheduling the calling fiber between rounds. *)
  let env = Ch3.env sc.sc_dev in
  Simtime.Env.with_timer env Simtime.Stats.Key.h_sched_step (fun () ->
      Simtime.Env.with_timer env
        (Simtime.Stats.Key.h_sched_step ^ "/" ^ sc.sc_name)
        (fun () ->
          Simtime.Env.charge env env.Simtime.Env.cost.sched_step_ns;
          trace_step sc "sched/step" i st;
          match st.s_action with
          | Isend { dst; tag; view } ->
              watch sc i st
                (Ch3.isend sc.sc_dev ~dst ~tag ~context:sc.sc_context view)
          | Irecv { src; tag; view } ->
              watch sc i st
                (Ch3.irecv sc.sc_dev ~src ~tag ~context:sc.sc_context view)
          | Reduce { f; _ } ->
              (* Operator application is not charged virtual time, matching
                 the blocking engine this replaces. *)
              f ();
              st.s_state <- Done;
              trace_step sc "sched/step-done" i st
          | Copy { src; dst } ->
              let len = Buffer_view.length dst in
              Buffer_view.write_all dst (Buffer_view.read_all src);
              Simtime.Env.charge_per_byte env
                env.Simtime.Env.cost.memcpy_ns_per_byte len;
              st.s_state <- Done;
              trace_step sc "sched/step-done" i st))

(* One advance pass: retire the Done prefix, then start every Pending
   step of the frontier round. Repeats while frontier steps complete
   synchronously (a Reduce/Copy, an eager send, a receive matched from
   the unexpected queue), so a locally-satisfiable chain of rounds costs
   one pump, not one per round. *)
let advance sc =
  let n = Array.length sc.sc_steps in
  let progressed = ref false in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    if Request.is_complete sc.sc_req then begin
      (* Completed by a step failure: tear the hook down. *)
      if sc.sc_hook <> None then begin
        finish sc;
        progressed := true
      end
    end
    else begin
      while sc.sc_cursor < n && sc.sc_steps.(sc.sc_cursor).s_state = Done do
        sc.sc_cursor <- sc.sc_cursor + 1
      done;
      if sc.sc_cursor >= n then begin
        Request.complete sc.sc_req None;
        finish sc;
        progressed := true
      end
      else if sc.sc_steps.(sc.sc_cursor).s_state = Pending then begin
        (* Steps are appended round-by-round, so the array is sorted by
           round and a Done prefix reaching [cursor] certifies every
           earlier round complete: the frontier round may start. *)
        let round = sc.sc_steps.(sc.sc_cursor).s_round in
        let closed = ref true in
        let i = ref sc.sc_cursor in
        while !i < n && sc.sc_steps.(!i).s_round = round do
          let st = sc.sc_steps.(!i) in
          if st.s_state = Pending then begin
            start_step sc !i st;
            progressed := true
          end;
          if st.s_state <> Done then closed := false;
          incr i
        done;
        (* If the whole round retired synchronously, take another pass
           to open the next round (or complete). *)
        if !closed then continue_ := true
      end
    end
  done;
  !progressed

(* Shape registry: (rounds, steps) per started schedule, keyed by its
   request id, so tests and the scaling harness can compare a measured
   schedule against an analytic round model. Bounded by periodic reset —
   the map is diagnostic, not load-bearing. It is process-global (request
   ids are world-unique), so under parallel execution ranks on different
   domains start schedules concurrently: a mutex serializes the two
   touch points. Uncontended lock/unlock is a few ns — noise next to
   building the step array. *)
let infos : (int, int * int) Hashtbl.t = Hashtbl.create 64
let infos_mu = Mutex.create ()

let info req =
  Mutex.protect infos_mu (fun () -> Hashtbl.find_opt infos (Request.id req))

let start b =
  if b.b_started then invalid_arg "Coll_sched.start: schedule already started";
  b.b_started <- true;
  let steps = Array.of_list (List.rev b.b_rev_steps) in
  let req = Request.create ~id:(Ch3.fresh_req_id b.b_dev) Request.Coll_req in
  let rounds =
    if Array.length steps = 0 then 0
    else steps.(Array.length steps - 1).s_round + 1
  in
  Mutex.protect infos_mu (fun () ->
      if Hashtbl.length infos > 1 lsl 20 then Hashtbl.reset infos;
      Hashtbl.replace infos (Request.id req) (rounds, Array.length steps));
  let sc =
    {
      sc_dev = b.b_dev;
      sc_context = b.b_context;
      sc_name = b.b_name;
      sc_steps = steps;
      sc_req = req;
      sc_cursor = 0;
      sc_hook = None;
    }
  in
  Ch3.track_request b.b_dev req;
  Trace.span_begin (Ch3.env b.b_dev) ~id:(Request.id req)
    ~rank:(Ch3.rank b.b_dev) ~cat:"coll" ~name:sc.sc_name
    ~args:[ ("steps", string_of_int (Array.length steps)) ]
    ();
  Trace.record (Ch3.env b.b_dev) ~rank:(Ch3.rank b.b_dev) ~op:"sched/start"
    ~detail:
      (Printf.sprintf "%s %d step(s) %d round(s)" sc.sc_name
         (Array.length steps)
         (if Array.length steps = 0 then 0
          else steps.(Array.length steps - 1).s_round + 1));
  (* A collective started on an already-revoked communicator fails
     before any step runs (entry check ULFM prescribes for every op). *)
  if Ch3.ctx_revoked b.b_dev b.b_context then begin
    Request.fail_reason req (Request.Comm_revoked b.b_context);
    finish sc;
    req
  end
  else begin
    (* Post round 0 immediately (an empty schedule completes here); the
       device progress hook drives the rest. *)
    ignore (advance sc);
    if not (Request.is_complete req) then
      sc.sc_hook <-
        Some
          (Ch3.add_progress_hook ~ctx:b.b_context
             ~on_abort:(fun reason ->
               (* The context was revoked or the rank torn down: fail the
                  generalized request and close the span. The hook itself
                  was already dropped by the aborter. *)
               sc.sc_hook <- None;
               Request.fail_reason sc.sc_req reason;
               finish sc)
             b.b_dev
             (fun () -> advance sc));
    req
  end
