type posted = {
  p_pattern : Tag_match.pattern;
  p_sink : Buffer_view.t;
  p_req : Request.t;
}

type unexpected =
  | U_eager of Packet.envelope * Bytes.t
  | U_rts of Packet.envelope * int

(* A FIFO with amortized-O(1) append: [front] holds the oldest elements
   in order, [back] the newest in reverse. Appending conses onto [back];
   a search walks [front] and, only if it must, folds [back] into [front]
   (one reversal per element over its lifetime). The naive
   [list @ [x]] append this replaces was O(n) per message — O(n^2) under
   backlog, exactly where an unexpected-message flood hurts most. *)
type 'a fifo = {
  mutable front : 'a list; (* oldest first *)
  mutable back : 'a list; (* newest first *)
  mutable size : int;
}

let fifo_create () = { front = []; back = []; size = 0 }

let fifo_append q x =
  q.back <- x :: q.back;
  q.size <- q.size + 1

let fifo_norm q =
  if q.back <> [] then begin
    q.front <- q.front @ List.rev q.back;
    q.back <- []
  end

(* Remove and return the first element satisfying [pred], probing (and
   charging, via [probe]) each element inspected, in arrival order. *)
let fifo_take q ~probe ~pred =
  fifo_norm q;
  let rec go acc = function
    | [] -> None
    | x :: rest ->
        probe ();
        if pred x then begin
          q.front <- List.rev_append acc rest;
          q.size <- q.size - 1;
          Some x
        end
        else go (x :: acc) rest
  in
  go [] q.front

let fifo_find q ~probe ~pred =
  fifo_norm q;
  let rec go = function
    | [] -> None
    | x :: rest ->
        probe ();
        if pred x then Some x else go rest
  in
  go q.front

type t = {
  env : Simtime.Env.t;
  posted : posted fifo; (* in post order *)
  unexpected : unexpected fifo; (* in arrival order *)
}

let create env =
  { env; posted = fifo_create (); unexpected = fifo_create () }

let post_recv t p = fifo_append t.posted p

let charge_probe t =
  Simtime.Env.charge t.env t.env.Simtime.Env.cost.queue_probe_ns

let take_posted t envelope =
  fifo_take t.posted
    ~probe:(fun () -> charge_probe t)
    ~pred:(fun p -> Tag_match.matches p.p_pattern envelope)

let add_unexpected t u =
  Simtime.Env.count t.env Simtime.Stats.Key.unexpected_msgs;
  fifo_append t.unexpected u

let envelope_of = function U_eager (e, _) -> e | U_rts (e, _) -> e

let take_unexpected t pattern =
  fifo_take t.unexpected
    ~probe:(fun () -> charge_probe t)
    ~pred:(fun u -> Tag_match.matches pattern (envelope_of u))

let peek_unexpected t pattern =
  match
    fifo_find t.unexpected
      ~probe:(fun () -> charge_probe t)
      ~pred:(fun u -> Tag_match.matches pattern (envelope_of u))
  with
  | Some u -> Some (envelope_of u)
  | None -> None

let posted_length t = t.posted.size
let unexpected_length t = t.unexpected.size

(* Administrative removal (failure teardown, revocation): unlike the
   matching paths above this charges no probe time — it models the
   runtime sweeping its own tables, not the device searching a queue. *)
let fifo_extract q ~pred =
  fifo_norm q;
  let gone, kept = List.partition pred q.front in
  q.front <- kept;
  q.size <- List.length kept;
  gone

let remove_posted t ~pred = fifo_extract t.posted ~pred
let remove_unexpected t ~pred = fifo_extract t.unexpected ~pred

let iter_posted t f =
  fifo_norm t.posted;
  List.iter f t.posted.front

let iter_unexpected t f =
  fifo_norm t.unexpected;
  List.iter f t.unexpected.front
