type t = {
  name : string;
  send : src:int -> dst:int -> Packet.t -> unit;
  poll : rank:int -> Packet.t option;
  add_rank : unit -> int;
  n_ranks : unit -> int;
}

type inflight = {
  arrival : float;
  seq : int;  (* global send order: stable tiebreak *)
  packet : Packet.t;
}

let make ~name ~per_msg_ns ~per_byte_ns ?topo ?intra ~syscall_fraction ~env
    ~n_ranks () =
  let inboxes : inflight list ref array ref =
    ref (Array.init n_ranks (fun _ -> ref []))
  in
  let count = ref n_ranks in
  let send_seq = ref 0 in
  let last_arrival : (int * int, float) Hashtbl.t = Hashtbl.create 16 in
  let clock = env.Simtime.Env.clock in
  let cost = env.Simtime.Env.cost in
  (* Per-tier pricing: with a topology and an intra-node profile,
     same-node endpoints pay the (cheaper) intra figures; everything
     else pays this channel's base figures. *)
  let tier src dst =
    match (topo, intra) with
    | Some tp, Some (im, ib) when Simtime.Topology.same_node tp src dst ->
        (im, ib, true)
    | Some tp, _ -> (per_msg_ns, per_byte_ns, Simtime.Topology.same_node tp src dst)
    | None, _ -> (per_msg_ns, per_byte_ns, true)
  in
  let send ~src ~dst packet =
    if dst < 0 || dst >= !count then
      invalid_arg (Printf.sprintf "%s channel: bad destination %d" name dst);
    let per_msg_ns, per_byte_ns, intra_node = tier src dst in
    let wire = Packet.wire_bytes packet in
    let frags = max 1 ((wire + cost.mtu_bytes - 1) / cost.mtu_bytes) in
    (* Sender-side CPU: one syscall per fragment. *)
    Simtime.Env.charge env
      (syscall_fraction *. per_msg_ns *. float_of_int frags);
    (if topo <> None then
       if intra_node then begin
         Simtime.Env.count env Simtime.Stats.Key.msgs_intra_node;
         Simtime.Env.count_n env Simtime.Stats.Key.bytes_intra_node wire
       end
       else begin
         Simtime.Env.count env Simtime.Stats.Key.msgs_inter_node;
         Simtime.Env.count_n env Simtime.Stats.Key.bytes_inter_node wire
       end);
    let now = Simtime.Clock.now_ns clock in
    let computed = now +. per_msg_ns +. (per_byte_ns *. float_of_int wire) in
    let key = (src, dst) in
    let floor =
      match Hashtbl.find_opt last_arrival key with
      | Some t -> t +. 1.0
      | None -> 0.0
    in
    let arrival = Float.max computed floor in
    Hashtbl.replace last_arrival key arrival;
    incr send_seq;
    let entry = { arrival; seq = !send_seq; packet } in
    let inbox = !inboxes.(dst) in
    (* Insert keeping (arrival, seq) order. *)
    let rec insert = function
      | [] -> [ entry ]
      | e :: rest ->
          if
            e.arrival < entry.arrival
            || (e.arrival = entry.arrival && e.seq < entry.seq)
          then e :: insert rest
          else entry :: e :: rest
    in
    inbox := insert !inbox;
    Simtime.Env.count env Simtime.Stats.Key.msgs_sent;
    Simtime.Env.count_n env Simtime.Stats.Key.bytes_sent wire
  in
  let poll ~rank =
    if rank < 0 || rank >= !count then
      invalid_arg (Printf.sprintf "%s channel: bad rank %d" name rank);
    let inbox = !inboxes.(rank) in
    match !inbox with
    | [] -> None
    | e :: rest ->
        if e.arrival <= Simtime.Clock.now_ns clock then begin
          inbox := rest;
          Fiber.note_activity ();
          Some e.packet
        end
        else begin
          (* In flight: progress is a matter of time, not deadlock. *)
          Fiber.note_activity ();
          None
        end
  in
  let add_rank () =
    let rank = !count in
    let bigger = Array.init (rank + 1) (fun _ -> ref []) in
    Array.blit !inboxes 0 bigger 0 rank;
    inboxes := bigger;
    incr count;
    rank
  in
  { name; send; poll; add_rank; n_ranks = (fun () -> !count) }
