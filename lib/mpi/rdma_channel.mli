(** RDMA-class channel: kernel-bypass transport with explicit memory
    registration, modelled after "Design and Implementation of MPICH2 over
    InfiniBand with RDMA Support" (Liu et al.).

    Three things distinguish it from {!Sock_channel}/{!Shm_channel}:

    - a far lower per-descriptor cost ([Cost.rdma_per_msg_ns]) but an
      expensive pin-down {e registration} step for any user memory the
      HCA touches ([rdma_reg_base_ns] + per-byte page pinning);
    - a per-rank LRU {e registration cache} that amortizes the pin-down
      cost across transfers reusing the same buffers (the paper's
      "pin-down cache"), with capacity-based eviction and hit/miss/
      eviction counters;
    - two rendezvous variants — RDMA-write (extra control hop, streams at
      [rdma_write_ns_per_byte]) and RDMA-read (one hop fewer, but pays the
      responder's DMA turnaround at [rdma_read_ns_per_byte]) — chosen per
      transfer by modelled cost. Transfers under
      [rdma_eager_threshold_bytes] instead stage through pre-registered
      bounce buffers (two memcpys, no registration).

    Packet delivery itself rides the generic {!Channel.make} machinery
    (ordering, MTU fragmentation, topology tiers), priced at the RDMA
    figures; the registration and variant-selection costs are charged on
    top by the {!Rma} layer through the helpers below. *)

(** The registration cache, exposed standalone so unit and property tests
    can drive it against a model without a channel. Entries are
    [(addr, len)] ranges; a request is a {e hit} when some cached entry
    covers it entirely. Window registrations are {e pinned} and never
    evicted; deregistration is lazy — an unpinned entry stays cached (and
    LRU-evictable) so re-registration of a hot buffer is a hit. *)
module Cache : sig
  type t

  type outcome =
    | Hit
    | Miss of { evicted : (int * int) list }
        (** Fresh registration; [evicted] lists the [(addr, len)] ranges
            deregistered (LRU-first) to fit under the capacity. *)

  val create : ?capacity_bytes:int -> unit -> t
  (** Default capacity is {!Cost.native_cpp}[.rdma_cache_capacity_bytes]. *)

  val access : t -> addr:int -> len:int -> outcome
  (** Look up (and on miss, insert) a registration for [addr, addr+len).
      A single region larger than the whole capacity is still registered
      (pinned I/O cannot be split); it becomes the next eviction victim. *)

  val pin : t -> addr:int -> len:int -> outcome
  (** Like {!access}, but the covering entry's pin count is raised: the
      entry cannot be evicted until {!unpin}. Used for window memory whose
      registration must outlive any individual transfer. *)

  val unpin : t -> addr:int -> len:int -> unit
  (** Drop one pin from the entry covering the range. The entry remains
      cached (lazy deregistration). @raise Invalid_argument if no pinned
      entry covers the range. *)

  val mem : t -> addr:int -> len:int -> bool
  (** Is the range covered by a cached registration (without touching
      LRU order or counters)? *)

  val entries : t -> int
  val registered_bytes : t -> int
  val capacity_bytes : t -> int
  val pinned_bytes : t -> int
  val hits : t -> int
  val misses : t -> int
  val evictions : t -> int
end

type t

val create :
  ?topo:Simtime.Topology.t ->
  ?capacity_bytes:int ->
  Simtime.Env.t ->
  n_ranks:int ->
  t
(** [?capacity_bytes] overrides [Cost.rdma_cache_capacity_bytes] for every
    per-rank cache. With [?topo], same-node endpoints are priced at the
    shared-memory tier (the fabric only carries inter-node traffic). *)

val channel : t -> Channel.t
val eager_threshold : t -> int

val cache : t -> rank:int -> Cache.t
(** The per-rank registration cache (created on first use, so dynamically
    spawned ranks get one too). *)

val addr_of : t -> Bytes.t -> int
(** Stable synthetic base address for a buffer, keyed by physical
    identity: the same [Bytes.t] always maps to the same page-aligned
    address, distinct buffers never overlap. This stands in for the
    virtual address an HCA would be given. *)

val register : t -> rank:int -> addr:int -> len:int -> bool
(** Consult [rank]'s cache for a transfer touching [addr, addr+len):
    counts a hit ([Stats.Key.rdma_reg_hits]) or charges the pin-down cost
    and counts the miss and any evictions. Returns [true] on a hit. *)

val pin_region : t -> rank:int -> addr:int -> len:int -> unit
(** Register-and-pin window memory (charged like a miss when not cached);
    paired with {!unpin_region} at [win_free]. *)

val unpin_region : t -> rank:int -> addr:int -> len:int -> unit

val charge_rndv : t -> len:int -> [ `Write | `Read ]
(** Charge the chosen rendezvous variant's cost {e beyond} what the
    packet layer already prices (which streams at the RDMA-write rate):
    RDMA-write pays one extra control descriptor, RDMA-read pays the
    read/write per-byte delta. The crossover sits at
    [rdma_per_msg_ns / (read - write per-byte)] = 12 KiB on the default
    model: below it RDMA-read's saved hop wins, above it RDMA-write's
    bandwidth does. Counts the pick under the matching stats key. *)

val charge_eager : t -> len:int -> unit
(** Charge the bounce-buffer staging copies (origin copy-in + target
    copy-out) for a small transfer and count it. *)
