(* Collective algorithms over point-to-point, with size/rank-aware
   algorithm selection (the MPICH2 pattern: each collective picks an
   algorithm from the payload size and communicator size; the thresholds
   live in the cost model so selection is a measurable, tunable policy).
   The naive reference versions are kept as [*_linear] (and the ring
   allgather) for correctness oracles and ablations. *)

(* ------------------------------------------------------------------ *)
(* Tag table                                                           *)
(* ------------------------------------------------------------------ *)

(* Every collective owns a disjoint range [base, base + width) of the
   internal tag space on the communicator's collective context.
   Multi-round algorithms derive per-round tags inside their range
   ([rtag] wraps modulo the width, so a round tag can never escape into a
   neighbour's range). Disjointness is checked by {!tag_overlap} and
   asserted by a test — a duplicate base (scan once shared scatter's
   0x5343) lets one collective cross-match another's stale messages. *)

type tag_range = { tr_name : string; tr_base : int; tr_width : int }

let r_barrier = { tr_name = "barrier"; tr_base = 0x4200; tr_width = 64 }
let r_bcast = { tr_name = "bcast"; tr_base = 0x4300; tr_width = 1 }

let r_bcast_scag =
  { tr_name = "bcast_scag"; tr_base = 0x4310; tr_width = 0x140 }

let r_scatter = { tr_name = "scatter"; tr_base = 0x4500; tr_width = 1 }

let r_scatter_binomial =
  { tr_name = "scatter_binomial"; tr_base = 0x4510; tr_width = 1 }

let r_gather = { tr_name = "gather"; tr_base = 0x4520; tr_width = 1 }

let r_gather_binomial =
  { tr_name = "gather_binomial"; tr_base = 0x4530; tr_width = 1 }

let r_allgather_ring =
  { tr_name = "allgather_ring"; tr_base = 0x4600; tr_width = 0x100 }

let r_allgather_rd =
  { tr_name = "allgather_rd"; tr_base = 0x4700; tr_width = 64 }

let r_reduce = { tr_name = "reduce"; tr_base = 0x4800; tr_width = 1 }

let r_allreduce_rd =
  { tr_name = "allreduce_rd"; tr_base = 0x4810; tr_width = 64 }

let r_rabenseifner =
  { tr_name = "rabenseifner"; tr_base = 0x4900; tr_width = 128 }

let r_alltoall = { tr_name = "alltoall"; tr_base = 0x4a00; tr_width = 1 }
let r_scan = { tr_name = "scan"; tr_base = 0x4a10; tr_width = 1 }

let ranges =
  [
    r_barrier; r_bcast; r_bcast_scag; r_scatter; r_scatter_binomial;
    r_gather; r_gather_binomial; r_allgather_ring; r_allgather_rd;
    r_reduce; r_allreduce_rd; r_rabenseifner; r_alltoall; r_scan;
  ]

let tag_table =
  List.map (fun r -> (r.tr_name, r.tr_base, r.tr_width)) ranges

let tag_overlap () =
  let rec go = function
    | [] -> None
    | a :: rest -> (
        match
          List.find_opt
            (fun b ->
              a.tr_base < b.tr_base + b.tr_width
              && b.tr_base < a.tr_base + a.tr_width)
            rest
        with
        | Some b -> Some (a.tr_name, b.tr_name)
        | None -> go rest)
  in
  go ranges

let tag r = r.tr_base
let rtag r i = r.tr_base + (i mod r.tr_width)

(* ------------------------------------------------------------------ *)
(* Point-to-point plumbing                                             *)
(* ------------------------------------------------------------------ *)

let csend p comm ~dst ~tag buf =
  Ch3.isend (Mpi.device p)
    ~dst:(Comm.world_rank_of comm dst)
    ~tag ~context:comm.Comm.ctx_coll buf

let crecv p comm ~src ~tag buf =
  Ch3.irecv (Mpi.device p)
    ~src:(Comm.world_rank_of comm src)
    ~tag ~context:comm.Comm.ctx_coll buf

let csend_wait p comm ~dst ~tag buf =
  ignore (Mpi.wait p (csend p comm ~dst ~tag buf))

let crecv_wait p comm ~src ~tag buf =
  ignore (Mpi.wait p (crecv p comm ~src ~tag buf))

let empty = Buffer_view.of_bytes Bytes.empty
let env_of p = Mpi.env (Mpi.world_of p)
let cost_of p = (env_of p).Simtime.Env.cost

let charge_memcpy p len =
  Simtime.Env.charge_per_byte (env_of p) (cost_of p).memcpy_ns_per_byte len

(* A window [off, off + len) of an existing view: sends read and receives
   land directly in the parent's memory, so block algorithms never need a
   charged scratch copy of the whole payload. *)
let sub_view (v : Buffer_view.t) ~off ~len =
  if off < 0 || len < 0 || off + len > v.Buffer_view.len then
    invalid_arg "Collectives.sub_view";
  {
    Buffer_view.len;
    blit_to =
      (fun ~pos ~dst ~dst_off ~len:l ->
        v.Buffer_view.blit_to ~pos:(off + pos) ~dst ~dst_off ~len:l);
    blit_from =
      (fun ~pos ~src ~src_off ~len:l ->
        v.Buffer_view.blit_from ~pos:(off + pos) ~src ~src_off ~len:l);
  }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let floor_pow2 n =
  let rec go v = if 2 * v <= n then go (2 * v) else v in
  go 1

let ceil_pow2 n =
  let rec go v = if v < n then go (2 * v) else v in
  go 1

(* Lowest set bit; the binomial-tree parent of relative rank [r > 0] is
   [r - lsb r] and its subtree spans relative ranks [r, r + extent). *)
let lsb r = r land -r

(* ------------------------------------------------------------------ *)
(* Algorithm selection                                                 *)
(* ------------------------------------------------------------------ *)

type allreduce_algo = [ `Auto | `Linear | `Rd | `Rabenseifner ]
type bcast_algo = [ `Auto | `Binomial | `Scatter_allgather ]
type allgather_algo = [ `Auto | `Ring | `Rd ]
type fan_algo = [ `Auto | `Linear | `Binomial ]

let allreduce_algo_for (c : Simtime.Cost.t) ~n ~bytes ~granule ~commutative
    : [ `Linear | `Rd | `Rabenseifner ] =
  let pof2 = floor_pow2 n in
  if
    commutative
    && bytes >= c.Simtime.Cost.coll_rabenseifner_min_bytes
    && granule > 0
    && bytes mod granule = 0
    && bytes / granule >= pof2
    && pof2 >= 2
  then `Rabenseifner
  else `Rd

(* The scatter + ring-allgather bcast saves (log n - 1) x payload of
   store-and-forward bandwidth but pays Theta(n) ring messages per
   member, so its win region scales with n^2: the threshold field is the
   switch point at n = 8 and the comparison scales it by (n/8)^2. *)
let bcast_algo_for (c : Simtime.Cost.t) ~n ~bytes :
    [ `Binomial | `Scatter_allgather ] =
  if n >= 4 && bytes * 64 >= c.Simtime.Cost.coll_bcast_scatter_min_bytes * n * n
  then `Scatter_allgather
  else `Binomial

let allgather_algo_for (c : Simtime.Cost.t) ~n ~bytes : [ `Ring | `Rd ] =
  if is_pow2 n && n >= 4 && n * bytes <= c.Simtime.Cost.coll_allgather_rd_max_bytes
  then `Rd
  else `Ring

let fan_algo_for (c : Simtime.Cost.t) ~n ~block : [ `Linear | `Binomial ] =
  match block with
  | Some b
    when n >= c.Simtime.Cost.coll_binomial_min_ranks
         && b <= c.Simtime.Cost.coll_binomial_max_block ->
      `Binomial
  | _ -> `Linear

(* ------------------------------------------------------------------ *)
(* Barrier (dissemination)                                             *)
(* ------------------------------------------------------------------ *)

let barrier p comm =
  let n = Comm.size comm in
  let me = Mpi.comm_rank p comm in
  let round = ref 0 in
  let step = ref 1 in
  while !step < n do
    let dst = (me + !step) mod n in
    let src = (me - !step + n) mod n in
    let t = rtag r_barrier !round in
    let s = csend p comm ~dst ~tag:t empty in
    crecv_wait p comm ~src ~tag:t empty;
    ignore (Mpi.wait p s);
    incr round;
    step := !step lsl 1
  done

(* ------------------------------------------------------------------ *)
(* Broadcast                                                           *)
(* ------------------------------------------------------------------ *)

let bcast_binomial p comm ~root buf =
  let n = Comm.size comm in
  let me = Mpi.comm_rank p comm in
  let rel = (me - root + n) mod n in
  let abs r = (r + root) mod n in
  (* Receive from the parent (clear the lowest set bit of rel). *)
  let mask = ref 1 in
  let recv_mask = ref 0 in
  while !mask < n && !recv_mask = 0 do
    if rel land !mask <> 0 then begin
      crecv_wait p comm ~src:(abs (rel - !mask)) ~tag:(tag r_bcast) buf;
      recv_mask := !mask
    end
    else mask := !mask lsl 1
  done;
  (* Forward to children: bits below my lowest set bit (or below n for
     the root). *)
  let top = if rel = 0 then ceil_pow2 n else !recv_mask in
  let m = ref (top lsr 1) in
  while !m > 0 do
    if rel + !m < n then
      csend_wait p comm ~dst:(abs (rel + !m)) ~tag:(tag r_bcast) buf;
    m := !m lsr 1
  done

(* Van de Geijn large-message broadcast: binomial-scatter the buffer into
   one block per member, then a ring allgather whose rounds pipeline —
   every rank moves ~2x the payload instead of the binomial tree's
   (log n) x payload on internal ranks. The block layout is a pure
   function of (length, size), so every member computes it locally. *)
let bcast_scatter_allgather p comm ~root buf =
  let n = Comm.size comm in
  let me = Mpi.comm_rank p comm in
  let rel = (me - root + n) mod n in
  let abs r = (r + root) mod n in
  let len = Buffer_view.length buf in
  let base = len / n and extra = len mod n in
  let off j = (j * base) + min j extra in
  let size j = base + if j < extra then 1 else 0 in
  let extent r = if r = 0 then n else min (lsb r) (n - r) in
  (* All traffic reads from / lands in windows of the user buffer: no
     scratch copy of the payload. *)
  let window lo hi = sub_view buf ~off:lo ~len:(hi - lo) in
  (* Phase 1: binomial scatter. The subtree of relative rank r holds the
     contiguous byte range [off r, off (r + extent r)). *)
  if rel <> 0 then begin
    let lo = off rel and hi = off (rel + extent rel) in
    crecv_wait p comm
      ~src:(abs (rel - lsb rel))
      ~tag:(rtag r_bcast_scag 0)
      (window lo hi)
  end;
  let top = if rel = 0 then ceil_pow2 n else lsb rel in
  let m = ref (top lsr 1) in
  while !m > 0 do
    let child = rel + !m in
    if child < n then begin
      let lo = off child and hi = off (child + extent child) in
      csend_wait p comm ~dst:(abs child)
        ~tag:(rtag r_bcast_scag 0)
        (window lo hi)
    end;
    m := !m lsr 1
  done;
  (* Phase 2: ring allgather of the blocks (block j lives with relative
     rank j after the scatter). *)
  let right = (me + 1) mod n and left = (me - 1 + n) mod n in
  for step = 0 to n - 2 do
    let sidx = (rel - step + n) mod n in
    let ridx = (rel - step - 1 + n) mod n in
    let t = rtag r_bcast_scag (step + 1) in
    let s =
      csend p comm ~dst:right ~tag:t (window (off sidx) (off sidx + size sidx))
    in
    crecv_wait p comm ~src:left ~tag:t
      (window (off ridx) (off ridx + size ridx));
    ignore (Mpi.wait p s)
  done

let bcast ?(algo : bcast_algo = `Auto) p comm ~root buf =
  let n = Comm.size comm in
  if n > 1 then
    let algo =
      match algo with
      | `Auto -> bcast_algo_for (cost_of p) ~n ~bytes:(Buffer_view.length buf)
      | (`Binomial | `Scatter_allgather) as a -> a
    in
    match algo with
    | `Binomial -> bcast_binomial p comm ~root buf
    | `Scatter_allgather -> bcast_scatter_allgather p comm ~root buf

(* ------------------------------------------------------------------ *)
(* Scatter                                                             *)
(* ------------------------------------------------------------------ *)

let root_parts ~what ~n parts =
  match parts with
  | Some a ->
      if Array.length a <> n then
        invalid_arg ("Collectives." ^ what ^ ": need one part per member");
      a
  | None -> invalid_arg ("Collectives." ^ what ^ ": root must supply parts")

let scatter_linear p comm ~root ~parts ~recv =
  let n = Comm.size comm in
  let me = Mpi.comm_rank p comm in
  if me = root then begin
    let parts = root_parts ~what:"scatter" ~n parts in
    let sends = ref [] in
    for r = 0 to n - 1 do
      if r <> root then
        sends := csend p comm ~dst:r ~tag:(tag r_scatter) parts.(r) :: !sends
    done;
    (* Root's own part: local copy. *)
    Buffer_view.write_all recv (Buffer_view.read_all parts.(root));
    charge_memcpy p (Buffer_view.length recv);
    List.iter (fun s -> ignore (Mpi.wait p s)) !sends
  end
  else crecv_wait p comm ~src:root ~tag:(tag r_scatter) recv

(* Binomial scatter of equal [block]-byte parts: the root packs the parts
   in relative-rank order and each internal node forwards its children's
   contiguous sub-ranges, so the root sends log n messages instead of
   n - 1. Every member must pass the same [block] (MPI_Scatter's
   recvcount), which is how non-roots size their subtree buffers. *)
let scatter_binomial p comm ~root ~parts ~recv ~block =
  let n = Comm.size comm in
  let me = Mpi.comm_rank p comm in
  let rel = (me - root + n) mod n in
  let abs r = (r + root) mod n in
  let extent r = if r = 0 then n else min (lsb r) (n - r) in
  if Buffer_view.length recv <> block then
    invalid_arg "Collectives.scatter: recv buffer must be block-sized";
  let forward staging =
    let top = if rel = 0 then ceil_pow2 n else lsb rel in
    let m = ref (top lsr 1) in
    let sends = ref [] in
    while !m > 0 do
      let child = rel + !m in
      if child < n then begin
        let cnt = extent child in
        sends :=
          csend p comm ~dst:(abs child)
            ~tag:(tag r_scatter_binomial)
            (Buffer_view.of_bytes_sub staging ~off:(!m * block)
               ~len:(cnt * block))
          :: !sends
      end;
      m := !m lsr 1
    done;
    List.iter (fun s -> ignore (Mpi.wait p s)) !sends
  in
  if rel = 0 then begin
    let parts = root_parts ~what:"scatter" ~n parts in
    Array.iter
      (fun part ->
        if Buffer_view.length part <> block then
          invalid_arg "Collectives.scatter: binomial parts must be block-sized")
      parts;
    (* Pack in relative order so every subtree is contiguous. *)
    let staging = Bytes.create (n * block) in
    for j = 0 to n - 1 do
      (parts.(abs j)).Buffer_view.blit_to ~pos:0 ~dst:staging
        ~dst_off:(j * block) ~len:block
    done;
    charge_memcpy p (n * block);
    recv.Buffer_view.blit_from ~pos:0 ~src:staging ~src_off:0 ~len:block;
    charge_memcpy p block;
    forward staging
  end
  else begin
    let cnt = extent rel in
    if cnt = 1 then
      crecv_wait p comm
        ~src:(abs (rel - lsb rel))
        ~tag:(tag r_scatter_binomial) recv
    else begin
      let staging = Bytes.create (cnt * block) in
      crecv_wait p comm
        ~src:(abs (rel - lsb rel))
        ~tag:(tag r_scatter_binomial)
        (Buffer_view.of_bytes staging);
      recv.Buffer_view.blit_from ~pos:0 ~src:staging ~src_off:0 ~len:block;
      charge_memcpy p block;
      forward staging
    end
  end

let scatter ?(algo : fan_algo = `Auto) ?block p comm ~root ~parts ~recv =
  let n = Comm.size comm in
  let algo =
    match algo with
    | `Auto -> fan_algo_for (cost_of p) ~n ~block
    | (`Linear | `Binomial) as a -> a
  in
  match (algo, block) with
  | `Binomial, Some b when n > 1 ->
      scatter_binomial p comm ~root ~parts ~recv ~block:b
  | `Binomial, None ->
      invalid_arg "Collectives.scatter: the binomial algorithm needs ~block"
  | _ -> scatter_linear p comm ~root ~parts ~recv

(* ------------------------------------------------------------------ *)
(* Gather                                                              *)
(* ------------------------------------------------------------------ *)

let gather_linear p comm ~root ~send ~parts =
  let n = Comm.size comm in
  let me = Mpi.comm_rank p comm in
  if me = root then begin
    let parts = root_parts ~what:"gather" ~n parts in
    let recvs = ref [] in
    for r = 0 to n - 1 do
      if r <> root then
        recvs := crecv p comm ~src:r ~tag:(tag r_gather) parts.(r) :: !recvs
    done;
    Buffer_view.write_all parts.(root) (Buffer_view.read_all send);
    charge_memcpy p (Buffer_view.length send);
    List.iter (fun r -> ignore (Mpi.wait p r)) !recvs
  end
  else csend_wait p comm ~dst:root ~tag:(tag r_gather) send

(* Mirror of {!scatter_binomial}: leaves send their block up; internal
   nodes collect their subtree into a staging buffer and forward it as
   one message. *)
let gather_binomial p comm ~root ~send ~parts ~block =
  let n = Comm.size comm in
  let me = Mpi.comm_rank p comm in
  let rel = (me - root + n) mod n in
  let abs r = (r + root) mod n in
  let extent r = if r = 0 then n else min (lsb r) (n - r) in
  if Buffer_view.length send <> block then
    invalid_arg "Collectives.gather: send buffer must be block-sized";
  let cnt = extent rel in
  let collect staging =
    send.Buffer_view.blit_to ~pos:0 ~dst:staging ~dst_off:0 ~len:block;
    charge_memcpy p block;
    let recvs = ref [] in
    let m = ref 1 in
    while !m < cnt do
      let child = rel + !m in
      if child < n then begin
        let ccnt = extent child in
        recvs :=
          crecv p comm ~src:(abs child)
            ~tag:(tag r_gather_binomial)
            (Buffer_view.of_bytes_sub staging ~off:(!m * block)
               ~len:(ccnt * block))
          :: !recvs
      end;
      m := !m lsl 1
    done;
    List.iter (fun r -> ignore (Mpi.wait p r)) !recvs
  in
  if rel = 0 then begin
    let parts = root_parts ~what:"gather" ~n parts in
    Array.iter
      (fun part ->
        if Buffer_view.length part <> block then
          invalid_arg "Collectives.gather: binomial parts must be block-sized")
      parts;
    let staging = Bytes.create (n * block) in
    collect staging;
    for j = 0 to n - 1 do
      (parts.(abs j)).Buffer_view.blit_from ~pos:0 ~src:staging
        ~src_off:(j * block) ~len:block
    done;
    charge_memcpy p (n * block)
  end
  else if cnt = 1 then
    csend_wait p comm ~dst:(abs (rel - lsb rel)) ~tag:(tag r_gather_binomial)
      send
  else begin
    let staging = Bytes.create (cnt * block) in
    collect staging;
    csend_wait p comm ~dst:(abs (rel - lsb rel)) ~tag:(tag r_gather_binomial)
      (Buffer_view.of_bytes staging)
  end

let gather ?(algo : fan_algo = `Auto) ?block p comm ~root ~send ~parts =
  let n = Comm.size comm in
  let algo =
    match algo with
    | `Auto -> fan_algo_for (cost_of p) ~n ~block
    | (`Linear | `Binomial) as a -> a
  in
  match (algo, block) with
  | `Binomial, Some b when n > 1 ->
      gather_binomial p comm ~root ~send ~parts ~block:b
  | `Binomial, None ->
      invalid_arg "Collectives.gather: the binomial algorithm needs ~block"
  | _ -> gather_linear p comm ~root ~send ~parts

(* ------------------------------------------------------------------ *)
(* Allgather                                                           *)
(* ------------------------------------------------------------------ *)

let allgather_ring p comm ~send =
  let n = Comm.size comm in
  let me = Mpi.comm_rank p comm in
  let blk = Bytes.length send in
  let blocks = Array.init n (fun _ -> Bytes.create blk) in
  Bytes.blit send 0 blocks.(me) 0 blk;
  let right = (me + 1) mod n in
  let left = (me - 1 + n) mod n in
  for step = 0 to n - 2 do
    let send_idx = (me - step + n) mod n in
    let recv_idx = (me - step - 1 + n) mod n in
    let t = rtag r_allgather_ring step in
    let s =
      csend p comm ~dst:right ~tag:t (Buffer_view.of_bytes blocks.(send_idx))
    in
    crecv_wait p comm ~src:left ~tag:t
      (Buffer_view.of_bytes blocks.(recv_idx));
    ignore (Mpi.wait p s)
  done;
  blocks

(* Recursive-doubling allgather (power-of-two members only): log n rounds
   of pairwise exchange of doubling aligned block ranges, against the
   ring's n - 1 rounds — the latency-bound winner for small payloads. *)
let allgather_rd p comm ~send =
  let n = Comm.size comm in
  if not (is_pow2 n) then
    invalid_arg
      "Collectives.allgather: recursive doubling needs a power-of-two \
       communicator";
  let me = Mpi.comm_rank p comm in
  let blk = Bytes.length send in
  let staging = Bytes.create (n * blk) in
  Bytes.blit send 0 staging (me * blk) blk;
  let mask = ref 1 and round = ref 0 in
  while !mask < n do
    let partner = me lxor !mask in
    let lo = me land lnot (!mask - 1) in
    let plo = lo lxor !mask in
    let t = rtag r_allgather_rd !round in
    let s =
      csend p comm ~dst:partner ~tag:t
        (Buffer_view.of_bytes_sub staging ~off:(lo * blk) ~len:(!mask * blk))
    in
    crecv_wait p comm ~src:partner ~tag:t
      (Buffer_view.of_bytes_sub staging ~off:(plo * blk) ~len:(!mask * blk));
    ignore (Mpi.wait p s);
    mask := !mask lsl 1;
    incr round
  done;
  Array.init n (fun r -> Bytes.sub staging (r * blk) blk)

let allgather ?(algo : allgather_algo = `Auto) p comm ~send =
  let n = Comm.size comm in
  let algo =
    match algo with
    | `Auto -> allgather_algo_for (cost_of p) ~n ~bytes:(Bytes.length send)
    | (`Ring | `Rd) as a -> a
  in
  match algo with
  | `Ring -> allgather_ring p comm ~send
  | `Rd -> allgather_rd p comm ~send

(* ------------------------------------------------------------------ *)
(* Alltoall                                                            *)
(* ------------------------------------------------------------------ *)

let alltoall p comm ~send =
  let n = Comm.size comm in
  let me = Mpi.comm_rank p comm in
  if Array.length send <> n then
    invalid_arg "Collectives.alltoall: need one block per member";
  let blk = Bytes.length send.(0) in
  Array.iter
    (fun b ->
      if Bytes.length b <> blk then
        invalid_arg "Collectives.alltoall: blocks must have equal length")
    send;
  let recv = Array.init n (fun _ -> Bytes.create blk) in
  Bytes.blit send.(me) 0 recv.(me) 0 blk;
  (* Post everything non-blocking, then drain: no ordering deadlocks. *)
  let reqs = ref [] in
  for r = 0 to n - 1 do
    if r <> me then begin
      reqs :=
        crecv p comm ~src:r ~tag:(tag r_alltoall)
          (Buffer_view.of_bytes recv.(r))
        :: csend p comm ~dst:r ~tag:(tag r_alltoall)
             (Buffer_view.of_bytes send.(r))
        :: !reqs
    end
  done;
  List.iter (fun req -> ignore (Mpi.wait p req)) !reqs;
  recv

(* ------------------------------------------------------------------ *)
(* Reduce (binomial)                                                   *)
(* ------------------------------------------------------------------ *)

(* The tree is rooted at rank 0 rather than rotated to the caller's
   root: rank rotation would fold in rotated order, silently breaking
   non-commutative operators at any root but 0. Rooting at 0 keeps the
   fold in absolute rank order; one extra message relocates the result
   when another root was asked for. (Rank 0 never sends inside the tree,
   so the relocation cannot be confused with a tree message.) *)
let reduce p comm ~root ~op send =
  let n = Comm.size comm in
  let me = Mpi.comm_rank p comm in
  let len = Bytes.length send in
  let acc = Bytes.copy send in
  let tmp = Bytes.create len in
  let mask = ref 1 in
  let sent = ref false in
  while !mask < n && not !sent do
    if me land !mask = 0 then begin
      let src = me lor !mask in
      if src < n then begin
        crecv_wait p comm ~src ~tag:(tag r_reduce)
          (Buffer_view.of_bytes tmp);
        op acc tmp
      end
    end
    else begin
      csend_wait p comm ~dst:(me land lnot !mask) ~tag:(tag r_reduce)
        (Buffer_view.of_bytes acc);
      sent := true
    end;
    mask := !mask lsl 1
  done;
  if root = 0 then if me = 0 then Some acc else None
  else if me = 0 then begin
    csend_wait p comm ~dst:root ~tag:(tag r_reduce)
      (Buffer_view.of_bytes acc);
    None
  end
  else if me = root then begin
    crecv_wait p comm ~src:0 ~tag:(tag r_reduce) (Buffer_view.of_bytes acc);
    Some acc
  end
  else None

(* ------------------------------------------------------------------ *)
(* Allreduce                                                           *)
(* ------------------------------------------------------------------ *)

(* The naive reference: a binomial reduce to rank 0 followed by a
   binomial bcast — 2 log n rounds on a serial chain through rank 0. *)
let allreduce_linear p comm ~op send =
  let result =
    match reduce p comm ~root:0 ~op send with
    | Some acc -> acc
    | None -> Bytes.create (Bytes.length send)
  in
  bcast_binomial p comm ~root:0 (Buffer_view.of_bytes result);
  result

(* Non-power-of-two pre-phase shared by recursive doubling and
   Rabenseifner: the first 2 * rem members collapse pairwise (even ranks
   fold into their odd neighbour and drop out), leaving a power-of-two
   set of "new ranks" whose order preserves old-rank order — so a
   non-commutative (but associative) operator still folds in rank
   order. Returns the new rank, or -1 for a dropped-out member. *)
let fold_pairs p comm ~trange ~op ~acc ~tmp ~me ~rem =
  if me < 2 * rem then
    if me land 1 = 0 then begin
      csend_wait p comm ~dst:(me + 1) ~tag:(rtag trange 0)
        (Buffer_view.of_bytes !acc);
      -1
    end
    else begin
      crecv_wait p comm ~src:(me - 1) ~tag:(rtag trange 0)
        (Buffer_view.of_bytes !tmp);
      (* The lower rank's data folds first: acc := recv (+) acc. *)
      op !tmp !acc;
      let t = !acc in
      acc := !tmp;
      tmp := t;
      me asr 1
    end
  else me - rem

(* Send the finished result back to the members dropped in the
   pre-phase. *)
let unfold_pairs p comm ~trange ~round ~acc ~me ~rem =
  if me < 2 * rem then
    if me land 1 = 1 then
      csend_wait p comm ~dst:(me - 1) ~tag:(rtag trange round)
        (Buffer_view.of_bytes !acc)
    else
      crecv_wait p comm ~src:(me + 1) ~tag:(rtag trange round)
        (Buffer_view.of_bytes !acc)

let old_rank_of ~rem pn = if pn < rem then (2 * pn) + 1 else pn + rem

(* Recursive doubling: log n rounds of pairwise whole-buffer exchange.
   At every step the two sides hold folds of adjacent contiguous rank
   blocks, and the fold direction follows block order, so the operator
   need not commute. *)
let allreduce_rd p comm ~op send =
  let n = Comm.size comm in
  let me = Mpi.comm_rank p comm in
  let len = Bytes.length send in
  let acc = ref (Bytes.copy send) in
  let tmp = ref (Bytes.create len) in
  let pof2 = floor_pow2 n in
  let rem = n - pof2 in
  let newrank = fold_pairs p comm ~trange:r_allreduce_rd ~op ~acc ~tmp ~me ~rem in
  if newrank >= 0 then begin
    let mask = ref 1 and round = ref 1 in
    while !mask < pof2 do
      let pn = newrank lxor !mask in
      let po = old_rank_of ~rem pn in
      let t = rtag r_allreduce_rd !round in
      let s = csend p comm ~dst:po ~tag:t (Buffer_view.of_bytes !acc) in
      crecv_wait p comm ~src:po ~tag:t (Buffer_view.of_bytes !tmp);
      ignore (Mpi.wait p s);
      if newrank land !mask = 0 then (* my block is the lower one *)
        op !acc !tmp
      else begin
        op !tmp !acc;
        let x = !acc in
        acc := !tmp;
        tmp := x
      end;
      mask := !mask lsl 1;
      incr round
    done
  end;
  unfold_pairs p comm ~trange:r_allreduce_rd
    ~round:(r_allreduce_rd.tr_width - 1)
    ~acc ~me ~rem;
  !acc

(* Rabenseifner: reduce-scatter by recursive halving, then allgather by
   recursive doubling. Each member moves ~2x the payload in 2 log n
   rounds instead of recursive doubling's (log n) x payload — the
   bandwidth-bound winner. The halving phase combines non-adjacent rank
   groups, so this algorithm requires a commutative operator (as in
   MPICH2); {!allreduce_algo_for} only selects it when [commutative].
   [granule] is the element size in bytes: segment boundaries are aligned
   to it so the opaque byte-wise operator never sees a torn element. *)
let allreduce_rabenseifner p comm ~op ~granule send =
  let n = Comm.size comm in
  let me = Mpi.comm_rank p comm in
  let len = Bytes.length send in
  if granule <= 0 || len mod granule <> 0 then
    invalid_arg "Collectives.allreduce: granule must divide the payload";
  let pof2 = floor_pow2 n in
  let rem = n - pof2 in
  let elems = len / granule in
  if elems < pof2 then
    invalid_arg
      "Collectives.allreduce: Rabenseifner needs at least one element per \
       member";
  (* Block b spans bytes [boff b, boff (b + 1)); balanced element split. *)
  let bbase = elems / pof2 and bextra = elems mod pof2 in
  let boff b = granule * ((b * bbase) + min b bextra) in
  let acc = ref (Bytes.copy send) in
  let tmp = ref (Bytes.create len) in
  let newrank = fold_pairs p comm ~trange:r_rabenseifner ~op ~acc ~tmp ~me ~rem in
  if newrank >= 0 then begin
    (* Reduce-scatter by recursive halving: narrow [lo, hi) down to my
       own block, folding the half I keep. *)
    let lo = ref 0 and hi = ref pof2 in
    let mask = ref (pof2 asr 1) and round = ref 1 in
    while !mask >= 1 do
      let pn = newrank lxor !mask in
      let po = old_rank_of ~rem pn in
      let mid = !lo + !mask in
      let (slo, shi), (klo, khi) =
        if newrank land !mask = 0 then ((mid, !hi), (!lo, mid))
        else ((!lo, mid), (mid, !hi))
      in
      let sb = boff slo and se = boff shi in
      let kb = boff klo and ke = boff khi in
      let t = rtag r_rabenseifner !round in
      let seg = Bytes.create (ke - kb) in
      let s =
        csend p comm ~dst:po ~tag:t
          (Buffer_view.of_bytes_sub !acc ~off:sb ~len:(se - sb))
      in
      crecv_wait p comm ~src:po ~tag:t (Buffer_view.of_bytes seg);
      ignore (Mpi.wait p s);
      (* Fold the received half into the kept range (commutative op, so
         direction is free); the operator needs a whole buffer, hence the
         sub-copy in and out. Like [op] application everywhere else in
         this module, the fold is not charged virtual time. *)
      let mine = Bytes.sub !acc kb (ke - kb) in
      op mine seg;
      Bytes.blit mine 0 !acc kb (ke - kb);
      lo := klo;
      hi := khi;
      mask := !mask asr 1;
      incr round
    done;
    (* Allgather by recursive doubling: exchange doubling aligned block
       ranges until everyone holds the whole reduced buffer. *)
    let mask = ref 1 in
    while !mask < pof2 do
      let pn = newrank lxor !mask in
      let po = old_rank_of ~rem pn in
      let rlo = newrank land lnot (!mask - 1) in
      let plo = rlo lxor !mask in
      let sb = boff rlo and se = boff (rlo + !mask) in
      let rb = boff plo and re = boff (plo + !mask) in
      let t = rtag r_rabenseifner !round in
      let s =
        csend p comm ~dst:po ~tag:t
          (Buffer_view.of_bytes_sub !acc ~off:sb ~len:(se - sb))
      in
      crecv_wait p comm ~src:po ~tag:t
        (Buffer_view.of_bytes_sub !acc ~off:rb ~len:(re - rb));
      ignore (Mpi.wait p s);
      mask := !mask lsl 1;
      incr round
    done
  end;
  unfold_pairs p comm ~trange:r_rabenseifner
    ~round:(r_rabenseifner.tr_width - 1)
    ~acc ~me ~rem;
  !acc

let allreduce ?(algo : allreduce_algo = `Auto) ?(granule = 8)
    ?(commutative = true) p comm ~op send =
  let n = Comm.size comm in
  if n = 1 then Bytes.copy send
  else
    let algo =
      match algo with
      | `Auto ->
          allreduce_algo_for (cost_of p) ~n ~bytes:(Bytes.length send)
            ~granule ~commutative
      | (`Linear | `Rd | `Rabenseifner) as a -> a
    in
    match algo with
    | `Linear -> allreduce_linear p comm ~op send
    | `Rd -> allreduce_rd p comm ~op send
    | `Rabenseifner -> allreduce_rabenseifner p comm ~op ~granule send

(* ------------------------------------------------------------------ *)
(* Scan                                                                *)
(* ------------------------------------------------------------------ *)

(* Linear pipeline scan: member r receives the prefix of 0..r-1 from its
   left neighbour, folds its own contribution, and forwards. MPI requires
   rank order for non-commutative operators, which this preserves. *)
let scan p comm ~op send =
  let n = Comm.size comm in
  let me = Mpi.comm_rank p comm in
  let acc = Bytes.copy send in
  if me > 0 then begin
    let prefix = Bytes.create (Bytes.length send) in
    crecv_wait p comm ~src:(me - 1) ~tag:(tag r_scan)
      (Buffer_view.of_bytes prefix);
    (* acc := prefix op mine, keeping rank order. *)
    let mine = Bytes.copy acc in
    Bytes.blit prefix 0 acc 0 (Bytes.length acc);
    op acc mine
  end;
  if me < n - 1 then
    csend_wait p comm ~dst:(me + 1) ~tag:(tag r_scan)
      (Buffer_view.of_bytes acc);
  acc

(* ------------------------------------------------------------------ *)
(* Reduce-scatter                                                      *)
(* ------------------------------------------------------------------ *)

let reduce_scatter_block p comm ~op send =
  let n = Comm.size comm in
  let total = Bytes.length send in
  if total mod n <> 0 then
    invalid_arg
      "Collectives.reduce_scatter_block: length must be a multiple of the \
       communicator size";
  let block = total / n in
  let me = Mpi.comm_rank p comm in
  let full =
    match reduce p comm ~root:0 ~op send with
    | Some acc -> acc
    | None -> Bytes.create total
  in
  let mine = Bytes.create block in
  let parts =
    if me = 0 then
      Some
        (Array.init n (fun r ->
             Buffer_view.of_bytes_sub full ~off:(r * block) ~len:block))
    else None
  in
  scatter ~block p comm ~root:0 ~parts ~recv:(Buffer_view.of_bytes mine);
  mine

(* ------------------------------------------------------------------ *)
(* Predefined operators                                                *)
(* ------------------------------------------------------------------ *)

let fold_f64 f acc x =
  let n = Bytes.length acc / 8 in
  for i = 0 to n - 1 do
    let a = Int64.float_of_bits (Bytes.get_int64_le acc (8 * i)) in
    let b = Int64.float_of_bits (Bytes.get_int64_le x (8 * i)) in
    Bytes.set_int64_le acc (8 * i) (Int64.bits_of_float (f a b))
  done

let fold_i32 f acc x =
  let n = Bytes.length acc / 4 in
  for i = 0 to n - 1 do
    let a = Int32.to_int (Bytes.get_int32_le acc (4 * i)) in
    let b = Int32.to_int (Bytes.get_int32_le x (4 * i)) in
    Bytes.set_int32_le acc (4 * i) (Int32.of_int (f a b))
  done

let fold_i64 f acc x =
  let n = Bytes.length acc / 8 in
  for i = 0 to n - 1 do
    let a = Bytes.get_int64_le acc (8 * i) in
    let b = Bytes.get_int64_le x (8 * i) in
    Bytes.set_int64_le acc (8 * i) (f a b)
  done

let sum_f64 acc x = fold_f64 ( +. ) acc x
let sum_i32 acc x = fold_i32 ( + ) acc x
let sum_i64 acc x = fold_i64 Int64.add acc x
let max_f64 acc x = fold_f64 Float.max acc x
let min_f64 acc x = fold_f64 Float.min acc x
let max_i32 acc x = fold_i32 max acc x
