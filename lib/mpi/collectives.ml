(* Collective algorithms over point-to-point, with size/rank-aware
   algorithm selection (the MPICH2 pattern: each collective picks an
   algorithm from the payload size and communicator size; the thresholds
   live in the cost model so selection is a measurable, tunable policy).

   Since PR 3 every algorithm *compiles* into a {!Coll_sched} schedule —
   a per-rank DAG of isend/irecv/reduce/copy steps in rounds — executed
   incrementally by the device progress engine. The [i*] entry points
   return the schedule's generalized request; the blocking entry points
   are start + wait shims over them, so selection policy, [?algo]
   oracles and the tag table carry over unchanged. The naive reference
   versions are kept as [*_linear] (and the ring allgather) for
   correctness oracles and ablations. *)

(* ------------------------------------------------------------------ *)
(* Tag table                                                           *)
(* ------------------------------------------------------------------ *)

(* Every collective owns a disjoint range [base, base + width) of the
   internal tag space on the communicator's collective context.
   Multi-round algorithms derive per-round tags inside their range
   ([rtag] wraps modulo the width, so a round tag can never escape into a
   neighbour's range). Disjointness is checked by {!tag_overlap} and
   asserted by a test — a duplicate base (scan once shared scatter's
   0x5343) lets one collective cross-match another's stale messages. *)

type tag_range = { tr_name : string; tr_base : int; tr_width : int }

let r_barrier = { tr_name = "barrier"; tr_base = 0x4200; tr_width = 64 }
let r_bcast = { tr_name = "bcast"; tr_base = 0x4300; tr_width = 1 }

let r_bcast_scag =
  { tr_name = "bcast_scag"; tr_base = 0x4310; tr_width = 0x140 }

let r_scatter = { tr_name = "scatter"; tr_base = 0x4500; tr_width = 1 }

let r_scatter_binomial =
  { tr_name = "scatter_binomial"; tr_base = 0x4510; tr_width = 1 }

let r_gather = { tr_name = "gather"; tr_base = 0x4520; tr_width = 1 }

let r_gather_binomial =
  { tr_name = "gather_binomial"; tr_base = 0x4530; tr_width = 1 }

let r_allgather_ring =
  { tr_name = "allgather_ring"; tr_base = 0x4600; tr_width = 0x100 }

let r_allgather_rd =
  { tr_name = "allgather_rd"; tr_base = 0x4700; tr_width = 64 }

let r_reduce = { tr_name = "reduce"; tr_base = 0x4800; tr_width = 1 }

let r_allreduce_rd =
  { tr_name = "allreduce_rd"; tr_base = 0x4810; tr_width = 64 }

let r_rabenseifner =
  { tr_name = "rabenseifner"; tr_base = 0x4900; tr_width = 128 }

let r_alltoall = { tr_name = "alltoall"; tr_base = 0x4a00; tr_width = 1 }
let r_scan = { tr_name = "scan"; tr_base = 0x4a10; tr_width = 1 }

(* Hierarchical (two-level) collectives: each phase gets its own range so
   an in-flight hier collective can never cross-match a concurrent flat
   collective reusing the same algorithm (e.g. hier allreduce's shard
   reduce vs. a user ireduce). *)
let r_hier_reduce =
  { tr_name = "hier_reduce"; tr_base = 0x4b00; tr_width = 1 }

let r_hier_rd = { tr_name = "hier_rd"; tr_base = 0x4b10; tr_width = 64 }
let r_hier_rs = { tr_name = "hier_rs"; tr_base = 0x4b50; tr_width = 128 }

let r_hier_bcast =
  { tr_name = "hier_bcast"; tr_base = 0x4bd0; tr_width = 1 }

let r_hier_xbcast =
  { tr_name = "hier_xbcast"; tr_base = 0x4be0; tr_width = 1 }

let r_hier_root = { tr_name = "hier_root"; tr_base = 0x4bf0; tr_width = 1 }

let r_hier_barrier =
  { tr_name = "hier_barrier"; tr_base = 0x4c00; tr_width = 64 }

let r_hier_fan = { tr_name = "hier_fan"; tr_base = 0x4c40; tr_width = 2 }

let r_hier_gather =
  { tr_name = "hier_gather"; tr_base = 0x4c50; tr_width = 1 }

let r_hier_ring =
  { tr_name = "hier_ring"; tr_base = 0x4d00; tr_width = 0x100 }

let ranges =
  [
    r_barrier; r_bcast; r_bcast_scag; r_scatter; r_scatter_binomial;
    r_gather; r_gather_binomial; r_allgather_ring; r_allgather_rd;
    r_reduce; r_allreduce_rd; r_rabenseifner; r_alltoall; r_scan;
    r_hier_reduce; r_hier_rd; r_hier_rs; r_hier_bcast; r_hier_xbcast;
    r_hier_root; r_hier_barrier; r_hier_fan; r_hier_gather; r_hier_ring;
  ]

let tag_table =
  List.map (fun r -> (r.tr_name, r.tr_base, r.tr_width)) ranges

let tag_overlap () =
  let rec go = function
    | [] -> None
    | a :: rest -> (
        match
          List.find_opt
            (fun b ->
              a.tr_base < b.tr_base + b.tr_width
              && b.tr_base < a.tr_base + a.tr_width)
            rest
        with
        | Some b -> Some (a.tr_name, b.tr_name)
        | None -> go rest)
  in
  go ranges

let tag r = r.tr_base
let rtag r i = r.tr_base + (i mod r.tr_width)

(* ------------------------------------------------------------------ *)
(* Schedule plumbing                                                   *)
(* ------------------------------------------------------------------ *)

let empty = Buffer_view.of_bytes Bytes.empty
let env_of p = Mpi.env (Mpi.world_of p)
let cost_of p = (env_of p).Simtime.Env.cost

(* All schedule traffic runs on the communicator's collective context,
   so it can never match user receives; [dst]/[src] below are
   communicator ranks, translated to world ranks at build time. *)
let builder p comm ~name =
  Coll_sched.make (Mpi.device p) ~context:comm.Comm.ctx_coll ~name

let ssend b comm ~dst ~tag v =
  Coll_sched.isend b ~dst:(Comm.world_rank_of comm dst) ~tag v

let srecv b comm ~src ~tag v =
  Coll_sched.irecv b ~src:(Comm.world_rank_of comm src) ~tag v

let wait_sched p req = ignore (Mpi.wait p req)

let is_pow2 n = n > 0 && n land (n - 1) = 0

let floor_pow2 n =
  let rec go v = if 2 * v <= n then go (2 * v) else v in
  go 1

let ceil_pow2 n =
  let rec go v = if v < n then go (2 * v) else v in
  go 1

(* Lowest set bit; the binomial-tree parent of relative rank [r > 0] is
   [r - lsb r] and its subtree spans relative ranks [r, r + extent). *)
let lsb r = r land -r

(* ------------------------------------------------------------------ *)
(* Algorithm selection                                                 *)
(* ------------------------------------------------------------------ *)

type allreduce_algo = [ `Auto | `Linear | `Rd | `Rabenseifner | `Hier ]
type bcast_algo = [ `Auto | `Binomial | `Scatter_allgather | `Hier ]
type allgather_algo = [ `Auto | `Ring | `Rd | `Hier ]
type barrier_algo = [ `Auto | `Dissemination | `Hier ]
type fan_algo = [ `Auto | `Linear | `Binomial ]

let allreduce_algo_for (c : Simtime.Cost.t) ~n ~bytes ~granule ~commutative
    : [ `Linear | `Rd | `Rabenseifner ] =
  let pof2 = floor_pow2 n in
  if
    commutative
    && bytes >= c.Simtime.Cost.coll_rabenseifner_min_bytes
    && granule > 0
    && bytes mod granule = 0
    && bytes / granule >= pof2
    && pof2 >= 2
  then `Rabenseifner
  else `Rd

(* The scatter + ring-allgather bcast saves (log n - 1) x payload of
   store-and-forward bandwidth but pays Theta(n) ring messages per
   member, so its win region scales with n^2: the threshold field is the
   switch point at n = 8 and the comparison scales it by (n/8)^2. *)
let bcast_algo_for (c : Simtime.Cost.t) ~n ~bytes :
    [ `Binomial | `Scatter_allgather ] =
  if n >= 4 && bytes * 64 >= c.Simtime.Cost.coll_bcast_scatter_min_bytes * n * n
  then `Scatter_allgather
  else `Binomial

let allgather_algo_for (c : Simtime.Cost.t) ~n ~bytes : [ `Ring | `Rd ] =
  if is_pow2 n && n >= 4 && n * bytes <= c.Simtime.Cost.coll_allgather_rd_max_bytes
  then `Rd
  else `Ring

let fan_algo_for (c : Simtime.Cost.t) ~n ~block : [ `Linear | `Binomial ] =
  match block with
  | Some b
    when n >= c.Simtime.Cost.coll_binomial_min_ranks
         && b <= c.Simtime.Cost.coll_binomial_max_block ->
      `Binomial
  | _ -> `Linear

(* ------------------------------------------------------------------ *)
(* Hierarchical (two-level) decomposition                              *)
(* ------------------------------------------------------------------ *)

(* A contiguous communicator on a multi-node topology decomposes into
   per-node shards plus the cross-node leader slice (each node's lowest
   member). Everything here is an O(1) descriptor computed locally: no
   communication, no O(world) membership arrays. The derived comms only
   serve rank translation — all hier traffic is scheduled on the
   {e parent}'s collective context under the dedicated [r_hier_*] tag
   ranges, so their own ctx fields are inert (the parent's is reused). *)
type hier = {
  hp_shard : Comm.t;  (* my node's slice of the parent, in rank order *)
  hp_leaders : Comm.t;  (* one member per node, in node order *)
  hp_sme : int;  (* my shard rank; 0 = I am my shard's leader *)
  hp_lme : int;  (* my leader rank, or -1 if I am not a leader *)
}

(* The two-level algorithms apply when the topology is real (multi-node)
   and the communicator is a contiguous range spanning more than one
   node. *)
let hier_applicable p comm =
  let topo = Mpi.topology (Mpi.world_of p) in
  Simtime.Topology.multi_node topo
  &&
  match Comm.range_info comm with
  | Some (start, 1, count) ->
      count > 1
      && Simtime.Topology.node_of topo start
         <> Simtime.Topology.node_of topo (start + count - 1)
  | _ -> false

(* The hier allgather additionally needs equal shards (its block layout
   is arithmetic in the shard size). *)
let hier_allgather_applicable p comm =
  hier_applicable p comm
  &&
  let cores = Simtime.Topology.cores (Mpi.topology (Mpi.world_of p)) in
  match Comm.range_info comm with
  | Some (start, 1, count) -> start mod cores = 0 && count mod cores = 0
  | _ -> false

let hier_parts p comm =
  let topo = Mpi.topology (Mpi.world_of p) in
  let start, count =
    match Comm.range_info comm with
    | Some (s, 1, c) -> (s, c)
    | _ ->
        invalid_arg
          "Collectives: hierarchical algorithms need a contiguous \
           communicator"
  in
  let cores = Simtime.Topology.cores topo in
  let me = Mpi.rank p in
  let node = Simtime.Topology.node_of topo me in
  let first_node = Simtime.Topology.node_of topo start in
  let last_node = Simtime.Topology.node_of topo (start + count - 1) in
  let shards = last_node - first_node + 1 in
  let lo = max start (node * cores) in
  let hi = min (start + count) ((node + 1) * cores) in
  let ctx = comm.Comm.ctx in
  let hp_shard = Comm.range ~ctx ~start:lo ~count:(hi - lo) () in
  let hp_leaders =
    if start mod cores = 0 then
      (* Aligned parent: the leaders are a pure strided slice. *)
      Comm.range ~ctx ~step:cores ~start ~count:shards ()
    else
      Comm.make ~ctx
        ~members:
          (Array.init shards (fun i ->
               if i = 0 then start else (first_node + i) * cores))
  in
  {
    hp_shard;
    hp_leaders;
    hp_sme = me - lo;
    hp_lme =
      (match Comm.comm_rank_of hp_leaders me with Some r -> r | None -> -1);
  }

(* ------------------------------------------------------------------ *)
(* Barrier (dissemination)                                             *)
(* ------------------------------------------------------------------ *)

let sched_barrier ?(trange = r_barrier) b comm ~me =
  let n = Comm.size comm in
  let round = ref 0 and step = ref 1 in
  while !step < n do
    let dst = (me + !step) mod n in
    let src = (me - !step + n) mod n in
    let t = rtag trange !round in
    ssend b comm ~dst ~tag:t empty;
    srecv b comm ~src ~tag:t empty;
    Coll_sched.fence b;
    incr round;
    step := !step lsl 1
  done

(* Two-level barrier: fan-in to each shard leader, dissemination barrier
   across the leaders, fan-out release — 2 + ceil(log2 L) rounds of
   inter-node latency instead of ceil(log2 n). *)
let sched_barrier_hier b p comm =
  let h = hier_parts p comm in
  let s = Comm.size h.hp_shard in
  if s > 1 then begin
    if h.hp_sme = 0 then
      for j = 1 to s - 1 do
        srecv b h.hp_shard ~src:j ~tag:(rtag r_hier_fan 0) empty
      done
    else ssend b h.hp_shard ~dst:0 ~tag:(rtag r_hier_fan 0) empty;
    Coll_sched.fence b
  end;
  if h.hp_lme >= 0 && Comm.size h.hp_leaders > 1 then
    sched_barrier ~trange:r_hier_barrier b h.hp_leaders ~me:h.hp_lme;
  Coll_sched.fence b;
  if s > 1 then
    if h.hp_sme = 0 then
      for j = 1 to s - 1 do
        ssend b h.hp_shard ~dst:j ~tag:(rtag r_hier_fan 1) empty
      done
    else srecv b h.hp_shard ~src:0 ~tag:(rtag r_hier_fan 1) empty

let ibarrier ?(algo : barrier_algo = `Auto) p comm =
  let b = builder p comm ~name:"barrier" in
  let algo =
    match algo with
    | `Auto -> if hier_applicable p comm then `Hier else `Dissemination
    | (`Dissemination | `Hier) as a -> a
  in
  (match algo with
  | `Dissemination -> sched_barrier b comm ~me:(Mpi.comm_rank p comm)
  | `Hier ->
      if not (hier_applicable p comm) then
        invalid_arg
          "Collectives.barrier: `Hier needs a multi-node topology and a \
           contiguous communicator";
      sched_barrier_hier b p comm);
  Coll_sched.start b

let barrier ?algo p comm = wait_sched p (ibarrier ?algo p comm)

(* ------------------------------------------------------------------ *)
(* Broadcast                                                           *)
(* ------------------------------------------------------------------ *)

let sched_bcast_binomial ?(trange = r_bcast) b comm ~root ~me buf =
  let n = Comm.size comm in
  let rel = (me - root + n) mod n in
  let abs r = (r + root) mod n in
  (* Receive from the parent (clear the lowest set bit of rel). *)
  let mask = ref 1 in
  let recv_mask = ref 0 in
  while !mask < n && !recv_mask = 0 do
    if rel land !mask <> 0 then begin
      srecv b comm ~src:(abs (rel - !mask)) ~tag:(tag trange) buf;
      Coll_sched.fence b;
      recv_mask := !mask
    end
    else mask := !mask lsl 1
  done;
  (* Forward to children: bits below my lowest set bit (or below n for
     the root). All forwards go out in one round. *)
  let top = if rel = 0 then ceil_pow2 n else !recv_mask in
  let m = ref (top lsr 1) in
  while !m > 0 do
    if rel + !m < n then
      ssend b comm ~dst:(abs (rel + !m)) ~tag:(tag trange) buf;
    m := !m lsr 1
  done

(* Van de Geijn large-message broadcast: binomial-scatter the buffer into
   one block per member, then a ring allgather whose rounds pipeline —
   every rank moves ~2x the payload instead of the binomial tree's
   (log n) x payload on internal ranks. The block layout is a pure
   function of (length, size), so every member computes it locally. *)
let sched_bcast_scag b comm ~root ~me buf =
  let n = Comm.size comm in
  let rel = (me - root + n) mod n in
  let abs r = (r + root) mod n in
  let len = Buffer_view.length buf in
  let base = len / n and extra = len mod n in
  let off j = (j * base) + min j extra in
  let size j = base + if j < extra then 1 else 0 in
  let extent r = if r = 0 then n else min (lsb r) (n - r) in
  (* All traffic reads from / lands in windows of the user buffer: no
     scratch copy of the payload. *)
  let window lo hi = Buffer_view.sub_view buf ~off:lo ~len:(hi - lo) in
  (* Phase 1: binomial scatter. The subtree of relative rank r holds the
     contiguous byte range [off r, off (r + extent r)). *)
  if rel <> 0 then begin
    let lo = off rel and hi = off (rel + extent rel) in
    srecv b comm
      ~src:(abs (rel - lsb rel))
      ~tag:(rtag r_bcast_scag 0)
      (window lo hi);
    Coll_sched.fence b
  end;
  let top = if rel = 0 then ceil_pow2 n else lsb rel in
  let m = ref (top lsr 1) in
  while !m > 0 do
    let child = rel + !m in
    if child < n then begin
      let lo = off child and hi = off (child + extent child) in
      ssend b comm ~dst:(abs child)
        ~tag:(rtag r_bcast_scag 0)
        (window lo hi)
    end;
    m := !m lsr 1
  done;
  Coll_sched.fence b;
  (* Phase 2: ring allgather of the blocks (block j lives with relative
     rank j after the scatter). *)
  let right = (me + 1) mod n and left = (me - 1 + n) mod n in
  for step = 0 to n - 2 do
    let sidx = (rel - step + n) mod n in
    let ridx = (rel - step - 1 + n) mod n in
    let t = rtag r_bcast_scag (step + 1) in
    ssend b comm ~dst:right ~tag:t (window (off sidx) (off sidx + size sidx));
    srecv b comm ~src:left ~tag:t
      (window (off ridx) (off ridx + size ridx));
    Coll_sched.fence b
  done

(* Two-level broadcast: one relocation hop if the root is not its
   shard's leader, a binomial bcast across the leaders rooted at the
   root's node, then a binomial bcast down every shard — log L rounds of
   inter-node latency plus log s rounds at the shared-memory tier. *)
let sched_bcast_hier b p comm ~root buf =
  let h = hier_parts p comm in
  let s = Comm.size h.hp_shard in
  let topo = Mpi.topology (Mpi.world_of p) in
  let cores = Simtime.Topology.cores topo in
  let start =
    match Comm.range_info comm with Some (st, _, _) -> st | None -> 0
  in
  let root_w = Comm.world_rank_of comm root in
  let my_w = Mpi.rank p in
  let root_leader_w =
    max start (Simtime.Topology.node_of topo root_w * cores)
  in
  (* Phase 0: relocate the payload to the root's shard leader. *)
  if root_w <> root_leader_w then
    if my_w = root_w then
      ssend b comm
        ~dst:(Option.get (Comm.comm_rank_of comm root_leader_w))
        ~tag:(tag r_hier_root) buf
    else if my_w = root_leader_w then begin
      srecv b comm ~src:root ~tag:(tag r_hier_root) buf;
      Coll_sched.fence b
    end;
  (* Phase 1: across the leaders, rooted at the root's node. *)
  if h.hp_lme >= 0 && Comm.size h.hp_leaders > 1 then begin
    let lroot = Option.get (Comm.comm_rank_of h.hp_leaders root_leader_w) in
    sched_bcast_binomial ~trange:r_hier_xbcast b h.hp_leaders ~root:lroot
      ~me:h.hp_lme buf
  end;
  Coll_sched.fence b;
  (* Phase 2: down each shard. The root re-receives its own payload —
     one redundant shared-memory message buys a root-oblivious shard
     phase. *)
  if s > 1 then
    sched_bcast_binomial ~trange:r_hier_bcast b h.hp_shard ~root:0
      ~me:h.hp_sme buf

let ibcast ?(algo : bcast_algo = `Auto) p comm ~root buf =
  let n = Comm.size comm in
  let b = builder p comm ~name:"bcast" in
  if n > 1 then begin
    let me = Mpi.comm_rank p comm in
    let algo =
      match algo with
      | `Auto ->
          if hier_applicable p comm then `Hier
          else
            (bcast_algo_for (cost_of p) ~n ~bytes:(Buffer_view.length buf)
              :> [ `Binomial | `Scatter_allgather | `Hier ])
      | (`Binomial | `Scatter_allgather | `Hier) as a -> a
    in
    match algo with
    | `Binomial -> sched_bcast_binomial b comm ~root ~me buf
    | `Scatter_allgather -> sched_bcast_scag b comm ~root ~me buf
    | `Hier ->
        if not (hier_applicable p comm) then
          invalid_arg
            "Collectives.bcast: `Hier needs a multi-node topology and a \
             contiguous communicator";
        sched_bcast_hier b p comm ~root buf
  end;
  Coll_sched.start b

let bcast ?algo p comm ~root buf = wait_sched p (ibcast ?algo p comm ~root buf)

(* ------------------------------------------------------------------ *)
(* Scatter                                                             *)
(* ------------------------------------------------------------------ *)

let root_parts ~what ~n parts =
  match parts with
  | Some a ->
      if Array.length a <> n then
        invalid_arg ("Collectives." ^ what ^ ": need one part per member");
      a
  | None -> invalid_arg ("Collectives." ^ what ^ ": root must supply parts")

let sched_scatter_linear b comm ~root ~me ~parts ~recv =
  let n = Comm.size comm in
  if me = root then begin
    let parts = root_parts ~what:"scatter" ~n parts in
    for r = 0 to n - 1 do
      if r <> root then ssend b comm ~dst:r ~tag:(tag r_scatter) parts.(r)
    done;
    (* Root's own part: local copy. *)
    Coll_sched.copy b ~src:parts.(root) ~dst:recv
  end
  else srecv b comm ~src:root ~tag:(tag r_scatter) recv

(* Binomial scatter of equal [block]-byte parts: each internal node
   forwards its children's contiguous sub-ranges, so the root sends log n
   messages instead of n - 1. The root's message for a child subtree is a
   {!Buffer_view.concat} of the parts in relative-rank order — sent
   straight out of the caller's buffers, where the blocking engine staged
   a packed copy (n x block of charged memcpy). Every member must pass
   the same [block] (MPI_Scatter's recvcount), which is how non-roots
   size their subtree buffers. *)
let sched_scatter_binomial b comm ~root ~me ~parts ~recv ~block =
  let n = Comm.size comm in
  let rel = (me - root + n) mod n in
  let abs r = (r + root) mod n in
  let extent r = if r = 0 then n else min (lsb r) (n - r) in
  if Buffer_view.length recv <> block then
    invalid_arg "Collectives.scatter: recv buffer must be block-sized";
  if rel = 0 then begin
    let parts = root_parts ~what:"scatter" ~n parts in
    Array.iter
      (fun part ->
        if Buffer_view.length part <> block then
          invalid_arg "Collectives.scatter: binomial parts must be block-sized")
      parts;
    (* One concat view per child subtree: relative ranks [m, m + cnt). *)
    let top = ceil_pow2 n in
    let m = ref (top lsr 1) in
    while !m > 0 do
      let child = !m in
      if child < n then begin
        let cnt = extent child in
        let sub =
          Buffer_view.concat
            (List.init cnt (fun j -> parts.(abs (child + j))))
        in
        ssend b comm ~dst:(abs child) ~tag:(tag r_scatter_binomial) sub
      end;
      m := !m lsr 1
    done;
    Coll_sched.copy b ~src:parts.(abs 0) ~dst:recv
  end
  else begin
    let cnt = extent rel in
    if cnt = 1 then
      srecv b comm
        ~src:(abs (rel - lsb rel))
        ~tag:(tag r_scatter_binomial) recv
    else begin
      (* Internal node: my own block lands in [recv]; descendants' blocks
         land in a scratch that exists only for store-and-forward (they
         are not mine to keep), received as one concat view. *)
      let staging = Bytes.create ((cnt - 1) * block) in
      srecv b comm
        ~src:(abs (rel - lsb rel))
        ~tag:(tag r_scatter_binomial)
        (Buffer_view.concat [ recv; Buffer_view.of_bytes staging ]);
      Coll_sched.fence b;
      let m = ref (lsb rel lsr 1) in
      while !m > 0 do
        let child = rel + !m in
        if child < n then begin
          let ccnt = extent child in
          ssend b comm ~dst:(abs child)
            ~tag:(tag r_scatter_binomial)
            (Buffer_view.of_bytes_sub staging
               ~off:((!m - 1) * block)
               ~len:(ccnt * block))
        end;
        m := !m lsr 1
      done
    end
  end

let iscatter ?(algo : fan_algo = `Auto) ?block p comm ~root ~parts ~recv =
  let n = Comm.size comm in
  let me = Mpi.comm_rank p comm in
  let b = builder p comm ~name:"scatter" in
  let algo =
    match algo with
    | `Auto -> fan_algo_for (cost_of p) ~n ~block
    | (`Linear | `Binomial) as a -> a
  in
  (match (algo, block) with
  | `Binomial, Some blk when n > 1 ->
      sched_scatter_binomial b comm ~root ~me ~parts ~recv ~block:blk
  | `Binomial, None ->
      invalid_arg "Collectives.scatter: the binomial algorithm needs ~block"
  | _ -> sched_scatter_linear b comm ~root ~me ~parts ~recv);
  Coll_sched.start b

let scatter ?algo ?block p comm ~root ~parts ~recv =
  wait_sched p (iscatter ?algo ?block p comm ~root ~parts ~recv)

(* ------------------------------------------------------------------ *)
(* Gather                                                              *)
(* ------------------------------------------------------------------ *)

let sched_gather_linear b comm ~root ~me ~send ~parts =
  let n = Comm.size comm in
  if me = root then begin
    let parts = root_parts ~what:"gather" ~n parts in
    for r = 0 to n - 1 do
      if r <> root then srecv b comm ~src:r ~tag:(tag r_gather) parts.(r)
    done;
    Coll_sched.copy b ~src:send ~dst:parts.(root)
  end
  else ssend b comm ~dst:root ~tag:(tag r_gather) send

(* Mirror of {!sched_scatter_binomial}: leaves send their block up;
   internal nodes receive their subtree and forward it (own block +
   descendants) as one concat message; the root receives each child
   subtree directly into the caller's parts — no packed staging copy at
   either end. *)
let sched_gather_binomial b comm ~root ~me ~send ~parts ~block =
  let n = Comm.size comm in
  let rel = (me - root + n) mod n in
  let abs r = (r + root) mod n in
  let extent r = if r = 0 then n else min (lsb r) (n - r) in
  if Buffer_view.length send <> block then
    invalid_arg "Collectives.gather: send buffer must be block-sized";
  let cnt = extent rel in
  if rel = 0 then begin
    let parts = root_parts ~what:"gather" ~n parts in
    Array.iter
      (fun part ->
        if Buffer_view.length part <> block then
          invalid_arg "Collectives.gather: binomial parts must be block-sized")
      parts;
    Coll_sched.copy b ~src:send ~dst:parts.(abs 0);
    let m = ref 1 in
    while !m < n do
      let child = !m in
      if child < n then begin
        let ccnt = extent child in
        let sub =
          Buffer_view.concat
            (List.init ccnt (fun j -> parts.(abs (child + j))))
        in
        srecv b comm ~src:(abs child) ~tag:(tag r_gather_binomial) sub
      end;
      m := !m lsl 1
    done
  end
  else if cnt = 1 then
    ssend b comm ~dst:(abs (rel - lsb rel)) ~tag:(tag r_gather_binomial) send
  else begin
    let staging = Bytes.create ((cnt - 1) * block) in
    let m = ref 1 in
    while !m < cnt do
      let child = rel + !m in
      if child < n then begin
        let ccnt = extent child in
        srecv b comm ~src:(abs child)
          ~tag:(tag r_gather_binomial)
          (Buffer_view.of_bytes_sub staging
             ~off:((!m - 1) * block)
             ~len:(ccnt * block))
      end;
      m := !m lsl 1
    done;
    Coll_sched.fence b;
    ssend b comm
      ~dst:(abs (rel - lsb rel))
      ~tag:(tag r_gather_binomial)
      (Buffer_view.concat [ send; Buffer_view.of_bytes staging ])
  end

let igather ?(algo : fan_algo = `Auto) ?block p comm ~root ~send ~parts =
  let n = Comm.size comm in
  let me = Mpi.comm_rank p comm in
  let b = builder p comm ~name:"gather" in
  let algo =
    match algo with
    | `Auto -> fan_algo_for (cost_of p) ~n ~block
    | (`Linear | `Binomial) as a -> a
  in
  (match (algo, block) with
  | `Binomial, Some blk when n > 1 ->
      sched_gather_binomial b comm ~root ~me ~send ~parts ~block:blk
  | `Binomial, None ->
      invalid_arg "Collectives.gather: the binomial algorithm needs ~block"
  | _ -> sched_gather_linear b comm ~root ~me ~send ~parts);
  Coll_sched.start b

let gather ?algo ?block p comm ~root ~send ~parts =
  wait_sched p (igather ?algo ?block p comm ~root ~send ~parts)

(* ------------------------------------------------------------------ *)
(* Allgather                                                           *)
(* ------------------------------------------------------------------ *)

let sched_allgather_ring b comm ~me ~send =
  let n = Comm.size comm in
  let blk = Bytes.length send in
  let blocks = Array.init n (fun _ -> Bytes.create blk) in
  Coll_sched.copy b
    ~src:(Buffer_view.of_bytes send)
    ~dst:(Buffer_view.of_bytes blocks.(me));
  Coll_sched.fence b;
  let right = (me + 1) mod n in
  let left = (me - 1 + n) mod n in
  for step = 0 to n - 2 do
    let send_idx = (me - step + n) mod n in
    let recv_idx = (me - step - 1 + n) mod n in
    let t = rtag r_allgather_ring step in
    ssend b comm ~dst:right ~tag:t (Buffer_view.of_bytes blocks.(send_idx));
    srecv b comm ~src:left ~tag:t (Buffer_view.of_bytes blocks.(recv_idx));
    Coll_sched.fence b
  done;
  blocks

(* Recursive-doubling allgather (power-of-two members only): log n rounds
   of pairwise exchange of doubling aligned block ranges, against the
   ring's n - 1 rounds — the latency-bound winner for small payloads.
   The doubling ranges are concat views over the result blocks, so the
   exchanged data lands where it lives: the blocking engine's contiguous
   staging buffer (and its final n sub-copies) is gone. *)
let sched_allgather_rd b comm ~me ~send =
  let n = Comm.size comm in
  if not (is_pow2 n) then
    invalid_arg
      "Collectives.allgather: recursive doubling needs a power-of-two \
       communicator";
  let blk = Bytes.length send in
  let blocks = Array.init n (fun _ -> Bytes.create blk) in
  let range lo cnt =
    Buffer_view.concat
      (List.init cnt (fun j -> Buffer_view.of_bytes blocks.(lo + j)))
  in
  Coll_sched.copy b
    ~src:(Buffer_view.of_bytes send)
    ~dst:(Buffer_view.of_bytes blocks.(me));
  Coll_sched.fence b;
  let mask = ref 1 and round = ref 0 in
  while !mask < n do
    let partner = me lxor !mask in
    let lo = me land lnot (!mask - 1) in
    let plo = lo lxor !mask in
    let t = rtag r_allgather_rd !round in
    ssend b comm ~dst:partner ~tag:t (range lo !mask);
    srecv b comm ~src:partner ~tag:t (range plo !mask);
    Coll_sched.fence b;
    mask := !mask lsl 1;
    incr round
  done;
  blocks

(* Two-level allgather (equal shards only): gather each shard's blocks
   at its leader, ring the shard aggregates across the leaders (each
   hop moves s blocks at once), then broadcast the assembled table down
   every shard. L - 1 inter-node rounds of s x block bytes, against the
   flat ring's n - 1. *)
let sched_allgather_hier b p comm ~me ~send =
  let h = hier_parts p comm in
  let n = Comm.size comm in
  let s = Comm.size h.hp_shard in
  let nl = Comm.size h.hp_leaders in
  if n <> s * nl then
    invalid_arg "Collectives.allgather: `Hier needs equal shards";
  let blk = Bytes.length send in
  let blocks = Array.init n (fun _ -> Bytes.create blk) in
  let view j = Buffer_view.of_bytes blocks.(j) in
  let range lo cnt =
    Buffer_view.concat (List.init cnt (fun j -> view (lo + j)))
  in
  let shard_base = me - h.hp_sme in
  Coll_sched.copy b ~src:(Buffer_view.of_bytes send) ~dst:(view me);
  Coll_sched.fence b;
  (* Phase 1: gather the shard's blocks at the leader. *)
  if s > 1 then begin
    if h.hp_sme = 0 then
      for j = 1 to s - 1 do
        srecv b h.hp_shard ~src:j ~tag:(tag r_hier_gather)
          (view (shard_base + j))
      done
    else
      ssend b h.hp_shard ~dst:0 ~tag:(tag r_hier_gather)
        (Buffer_view.of_bytes send);
    Coll_sched.fence b
  end;
  (* Phase 2: ring the shard aggregates across the leaders. *)
  if h.hp_sme = 0 && nl > 1 then begin
    let lme = h.hp_lme in
    let right = (lme + 1) mod nl and left = (lme - 1 + nl) mod nl in
    for step = 0 to nl - 2 do
      let sidx = (lme - step + nl) mod nl in
      let ridx = (lme - step - 1 + nl) mod nl in
      let t = rtag r_hier_ring step in
      ssend b h.hp_leaders ~dst:right ~tag:t (range (sidx * s) s);
      srecv b h.hp_leaders ~src:left ~tag:t (range (ridx * s) s);
      Coll_sched.fence b
    done
  end;
  Coll_sched.fence b;
  (* Phase 3: each leader broadcasts the full table down its shard. *)
  if s > 1 then
    sched_bcast_binomial ~trange:r_hier_bcast b h.hp_shard ~root:0
      ~me:h.hp_sme (range 0 n);
  blocks

let iallgather ?(algo : allgather_algo = `Auto) p comm ~send =
  let n = Comm.size comm in
  let me = Mpi.comm_rank p comm in
  let b = builder p comm ~name:"allgather" in
  let algo =
    match algo with
    | `Auto ->
        if hier_allgather_applicable p comm then `Hier
        else
          (allgather_algo_for (cost_of p) ~n ~bytes:(Bytes.length send)
            :> [ `Ring | `Rd | `Hier ])
    | (`Ring | `Rd | `Hier) as a -> a
  in
  let blocks =
    match algo with
    | `Ring -> sched_allgather_ring b comm ~me ~send
    | `Rd -> sched_allgather_rd b comm ~me ~send
    | `Hier ->
        if not (hier_allgather_applicable p comm) then
          invalid_arg
            "Collectives.allgather: `Hier needs a multi-node topology and \
             a node-aligned contiguous communicator";
        sched_allgather_hier b p comm ~me ~send
  in
  (Coll_sched.start b, blocks)

let allgather ?algo p comm ~send =
  let req, blocks = iallgather ?algo p comm ~send in
  wait_sched p req;
  blocks

(* ------------------------------------------------------------------ *)
(* Alltoall                                                            *)
(* ------------------------------------------------------------------ *)

let ialltoall p comm ~send =
  let n = Comm.size comm in
  let me = Mpi.comm_rank p comm in
  if Array.length send <> n then
    invalid_arg "Collectives.alltoall: need one block per member";
  let blk = Bytes.length send.(0) in
  Array.iter
    (fun bl ->
      if Bytes.length bl <> blk then
        invalid_arg "Collectives.alltoall: blocks must have equal length")
    send;
  let b = builder p comm ~name:"alltoall" in
  let recv = Array.init n (fun _ -> Bytes.create blk) in
  Coll_sched.copy b
    ~src:(Buffer_view.of_bytes send.(me))
    ~dst:(Buffer_view.of_bytes recv.(me));
  (* Everything in one round: no ordering deadlocks. *)
  for r = 0 to n - 1 do
    if r <> me then begin
      srecv b comm ~src:r ~tag:(tag r_alltoall)
        (Buffer_view.of_bytes recv.(r));
      ssend b comm ~dst:r ~tag:(tag r_alltoall)
        (Buffer_view.of_bytes send.(r))
    end
  done;
  (Coll_sched.start b, recv)

let alltoall p comm ~send =
  let req, recv = ialltoall p comm ~send in
  wait_sched p req;
  recv

(* ------------------------------------------------------------------ *)
(* Reduce (binomial)                                                   *)
(* ------------------------------------------------------------------ *)

(* The tree is rooted at rank 0 rather than rotated to the caller's
   root: rank rotation would fold in rotated order, silently breaking
   non-commutative operators at any root but 0. Rooting at 0 keeps the
   fold in absolute rank order; one extra message relocates the result
   when another root was asked for. (Rank 0 never sends inside the tree,
   so the relocation cannot be confused with a tree message.) *)
let sched_reduce ?(trange = r_reduce) b comm ~root ~me ~op send =
  let n = Comm.size comm in
  let len = Bytes.length send in
  let acc = Bytes.copy send in
  let tmp = Bytes.create len in
  let mask = ref 1 in
  let sent = ref false in
  while !mask < n && not !sent do
    if me land !mask = 0 then begin
      let src = me lor !mask in
      if src < n then begin
        srecv b comm ~src ~tag:(tag trange) (Buffer_view.of_bytes tmp);
        Coll_sched.fence b;
        Coll_sched.reduce b ~label:"fold" (fun () -> op acc tmp);
        Coll_sched.fence b
      end
    end
    else begin
      ssend b comm ~dst:(me land lnot !mask) ~tag:(tag trange)
        (Buffer_view.of_bytes acc);
      sent := true
    end;
    mask := !mask lsl 1
  done;
  Coll_sched.fence b;
  if root = 0 then if me = 0 then Some acc else None
  else if me = 0 then begin
    ssend b comm ~dst:root ~tag:(tag trange) (Buffer_view.of_bytes acc);
    None
  end
  else if me = root then begin
    srecv b comm ~src:0 ~tag:(tag trange) (Buffer_view.of_bytes acc);
    Some acc
  end
  else None

let ireduce p comm ~root ~op send =
  let me = Mpi.comm_rank p comm in
  let b = builder p comm ~name:"reduce" in
  let out = sched_reduce b comm ~root ~me ~op send in
  (Coll_sched.start b, out)

let reduce p comm ~root ~op send =
  let req, out = ireduce p comm ~root ~op send in
  wait_sched p req;
  out

(* ------------------------------------------------------------------ *)
(* Allreduce                                                           *)
(* ------------------------------------------------------------------ *)

(* The naive reference: a binomial reduce to rank 0 followed by a
   binomial bcast — 2 log n rounds on a serial chain through rank 0. *)
let sched_allreduce_linear b comm ~me ~op send =
  let result =
    match sched_reduce b comm ~root:0 ~me ~op send with
    | Some acc -> acc
    | None -> Bytes.create (Bytes.length send)
  in
  Coll_sched.fence b;
  sched_bcast_binomial b comm ~root:0 ~me (Buffer_view.of_bytes result);
  result

(* Non-power-of-two pre-phase shared by recursive doubling and
   Rabenseifner: the first 2 * rem members collapse pairwise (even ranks
   fold into their odd neighbour and drop out), leaving a power-of-two
   set of "new ranks" whose order preserves old-rank order — so a
   non-commutative (but associative) operator still folds in rank
   order. Returns the new rank, or -1 for a dropped-out member.

   The acc/tmp buffer roles rotate deterministically, so the compiler
   tracks which physical buffer holds the accumulator at every round and
   captures it in the step closures — the schedule never re-reads the
   refs at run time. *)
let sched_fold_pairs b comm ~trange ~op ~acc ~tmp ~me ~rem =
  if me < 2 * rem then
    if me land 1 = 0 then begin
      ssend b comm ~dst:(me + 1) ~tag:(rtag trange 0)
        (Buffer_view.of_bytes !acc);
      Coll_sched.fence b;
      -1
    end
    else begin
      let a = !acc and t = !tmp in
      srecv b comm ~src:(me - 1) ~tag:(rtag trange 0)
        (Buffer_view.of_bytes t);
      Coll_sched.fence b;
      (* The lower rank's data folds first: acc := recv (+) acc. *)
      Coll_sched.reduce b ~label:"fold-pair" (fun () -> op t a);
      Coll_sched.fence b;
      acc := t;
      tmp := a;
      me asr 1
    end
  else me - rem

(* Send the finished result back to the members dropped in the
   pre-phase. *)
let sched_unfold_pairs b comm ~trange ~round ~acc ~me ~rem =
  if me < 2 * rem then
    if me land 1 = 1 then
      ssend b comm ~dst:(me - 1) ~tag:(rtag trange round)
        (Buffer_view.of_bytes !acc)
    else
      srecv b comm ~src:(me + 1) ~tag:(rtag trange round)
        (Buffer_view.of_bytes !acc)

let old_rank_of ~rem pn = if pn < rem then (2 * pn) + 1 else pn + rem

(* Recursive doubling: log n rounds of pairwise whole-buffer exchange.
   At every step the two sides hold folds of adjacent contiguous rank
   blocks, and the fold direction follows block order, so the operator
   need not commute. *)
let sched_allreduce_rd ?(trange = r_allreduce_rd) ?acc:acc0 b comm ~me ~op
    send =
  let n = Comm.size comm in
  let len = Bytes.length send in
  (* [?acc]: start from this buffer in place (its contents materialize at
     run time — e.g. a preceding in-shard reduce phase) instead of a
     build-time copy of [send]. *)
  let acc = ref (match acc0 with Some a -> a | None -> Bytes.copy send) in
  let tmp = ref (Bytes.create len) in
  let pof2 = floor_pow2 n in
  let rem = n - pof2 in
  let newrank = sched_fold_pairs b comm ~trange ~op ~acc ~tmp ~me ~rem in
  if newrank >= 0 then begin
    let mask = ref 1 and round = ref 1 in
    while !mask < pof2 do
      let pn = newrank lxor !mask in
      let po = old_rank_of ~rem pn in
      let t = rtag trange !round in
      let a = !acc and tm = !tmp in
      ssend b comm ~dst:po ~tag:t (Buffer_view.of_bytes a);
      srecv b comm ~src:po ~tag:t (Buffer_view.of_bytes tm);
      Coll_sched.fence b;
      if newrank land !mask = 0 then (* my block is the lower one *)
        Coll_sched.reduce b ~label:"fold-lower" (fun () -> op a tm)
      else begin
        Coll_sched.reduce b ~label:"fold-upper" (fun () -> op tm a);
        acc := tm;
        tmp := a
      end;
      Coll_sched.fence b;
      mask := !mask lsl 1;
      incr round
    done
  end;
  sched_unfold_pairs b comm ~trange ~round:(trange.tr_width - 1) ~acc ~me
    ~rem;
  !acc

(* Rabenseifner: reduce-scatter by recursive halving, then allgather by
   recursive doubling. Each member moves ~2x the payload in 2 log n
   rounds instead of recursive doubling's (log n) x payload — the
   bandwidth-bound winner. The halving phase combines non-adjacent rank
   groups, so this algorithm requires a commutative operator (as in
   MPICH2); {!allreduce_algo_for} only selects it when [commutative].
   [granule] is the element size in bytes: segment boundaries are aligned
   to it so the opaque byte-wise operator never sees a torn element. *)
let sched_allreduce_rabenseifner ?(trange = r_rabenseifner) ?acc:acc0 b comm
    ~me ~op ~granule send =
  let n = Comm.size comm in
  let len = Bytes.length send in
  if granule <= 0 || len mod granule <> 0 then
    invalid_arg "Collectives.allreduce: granule must divide the payload";
  let pof2 = floor_pow2 n in
  let rem = n - pof2 in
  let elems = len / granule in
  if elems < pof2 then
    invalid_arg
      "Collectives.allreduce: Rabenseifner needs at least one element per \
       member";
  (* Block b spans bytes [boff b, boff (b + 1)); balanced element split. *)
  let bbase = elems / pof2 and bextra = elems mod pof2 in
  let boff b = granule * ((b * bbase) + min b bextra) in
  let acc = ref (match acc0 with Some a -> a | None -> Bytes.copy send) in
  let tmp = ref (Bytes.create len) in
  let newrank = sched_fold_pairs b comm ~trange ~op ~acc ~tmp ~me ~rem in
  if newrank >= 0 then begin
    (* The buffer roles are fixed from here on. *)
    let a = !acc in
    (* Reduce-scatter by recursive halving: narrow [lo, hi) down to my
       own block, folding the half I keep. *)
    let lo = ref 0 and hi = ref pof2 in
    let mask = ref (pof2 asr 1) and round = ref 1 in
    while !mask >= 1 do
      let pn = newrank lxor !mask in
      let po = old_rank_of ~rem pn in
      let mid = !lo + !mask in
      let (slo, shi), (klo, khi) =
        if newrank land !mask = 0 then ((mid, !hi), (!lo, mid))
        else ((!lo, mid), (mid, !hi))
      in
      let sb = boff slo and se = boff shi in
      let kb = boff klo and ke = boff khi in
      let t = rtag trange !round in
      let seg = Bytes.create (ke - kb) in
      ssend b comm ~dst:po ~tag:t
        (Buffer_view.of_bytes_sub a ~off:sb ~len:(se - sb));
      srecv b comm ~src:po ~tag:t (Buffer_view.of_bytes seg);
      Coll_sched.fence b;
      (* Fold the received half into the kept range (commutative op, so
         direction is free); the operator needs a whole buffer, hence the
         sub-copy in and out — the one staging copy that must stay. *)
      Coll_sched.reduce b ~label:"fold-half" (fun () ->
          let mine = Bytes.sub a kb (ke - kb) in
          op mine seg;
          Bytes.blit mine 0 a kb (ke - kb));
      Coll_sched.fence b;
      lo := klo;
      hi := khi;
      mask := !mask asr 1;
      incr round
    done;
    (* Allgather by recursive doubling: exchange doubling aligned block
       ranges until everyone holds the whole reduced buffer. *)
    let mask = ref 1 in
    while !mask < pof2 do
      let pn = newrank lxor !mask in
      let po = old_rank_of ~rem pn in
      let rlo = newrank land lnot (!mask - 1) in
      let plo = rlo lxor !mask in
      let sb = boff rlo and se = boff (rlo + !mask) in
      let rb = boff plo and re = boff (plo + !mask) in
      let t = rtag trange !round in
      ssend b comm ~dst:po ~tag:t
        (Buffer_view.of_bytes_sub a ~off:sb ~len:(se - sb));
      srecv b comm ~src:po ~tag:t
        (Buffer_view.of_bytes_sub a ~off:rb ~len:(re - rb));
      Coll_sched.fence b;
      mask := !mask lsl 1;
      incr round
    done
  end;
  sched_unfold_pairs b comm ~trange ~round:(trange.tr_width - 1) ~acc ~me
    ~rem;
  !acc

(* Two-level allreduce: binomial reduce within each shard (rank order,
   so non-commutative operators stay correct), allreduce of the shard
   results across the leaders — picked by the same size-aware policy as
   the flat path, at n = #nodes — then binomial bcast down each shard.
   Total messages with equal shards: 2S(s - 1) intra-node plus the
   leader phase's 2 rem + pof2 log2(pof2) inter-node; the critical path
   is ~2 log s shared-memory hops + 2 log L wire hops instead of the
   flat algorithm's 2 log n wire hops. *)
let sched_allreduce_hier b p comm ~op ~granule ~commutative send =
  let h = hier_parts p comm in
  let s = Comm.size h.hp_shard in
  let nl = Comm.size h.hp_leaders in
  let len = Bytes.length send in
  (* Phase 1: fold the shard into its leader. *)
  let acc =
    if s > 1 then
      match
        sched_reduce ~trange:r_hier_reduce b h.hp_shard ~root:0 ~me:h.hp_sme
          ~op send
      with
      | Some acc -> acc
      | None -> Bytes.create len (* filled by the phase-3 bcast *)
    else Bytes.copy send
  in
  Coll_sched.fence b;
  (* Phase 2: leaders combine the shard results across nodes. The
     accumulator is threaded in place ([?acc]): its contents exist only
     at run time, after phase 1 retires. *)
  let result =
    if h.hp_sme = 0 && nl > 1 then begin
      match
        allreduce_algo_for (cost_of p) ~n:nl ~bytes:len ~granule ~commutative
      with
      | `Rabenseifner ->
          sched_allreduce_rabenseifner ~trange:r_hier_rs ~acc b h.hp_leaders
            ~me:h.hp_lme ~op ~granule acc
      | `Rd | `Linear ->
          sched_allreduce_rd ~trange:r_hier_rd ~acc b h.hp_leaders
            ~me:h.hp_lme ~op acc
    end
    else acc
  in
  Coll_sched.fence b;
  (* Phase 3: each leader broadcasts the finished result down its
     shard. *)
  if s > 1 then
    sched_bcast_binomial ~trange:r_hier_bcast b h.hp_shard ~root:0
      ~me:h.hp_sme
      (Buffer_view.of_bytes result);
  result

let iallreduce ?(algo : allreduce_algo = `Auto) ?(granule = 8)
    ?(commutative = true) p comm ~op send =
  let n = Comm.size comm in
  let b = builder p comm ~name:"allreduce" in
  if n = 1 then (Coll_sched.start b, Bytes.copy send)
  else begin
    let me = Mpi.comm_rank p comm in
    let algo =
      match algo with
      | `Auto ->
          if hier_applicable p comm then `Hier
          else
            (allreduce_algo_for (cost_of p) ~n ~bytes:(Bytes.length send)
               ~granule ~commutative
              :> [ `Linear | `Rd | `Rabenseifner | `Hier ])
      | (`Linear | `Rd | `Rabenseifner | `Hier) as a -> a
    in
    let out =
      match algo with
      | `Linear -> sched_allreduce_linear b comm ~me ~op send
      | `Rd -> sched_allreduce_rd b comm ~me ~op send
      | `Rabenseifner -> sched_allreduce_rabenseifner b comm ~me ~op ~granule send
      | `Hier ->
          if not (hier_applicable p comm) then
            invalid_arg
              "Collectives.allreduce: `Hier needs a multi-node topology \
               and a contiguous communicator";
          sched_allreduce_hier b p comm ~op ~granule ~commutative send
    in
    (Coll_sched.start b, out)
  end

let allreduce ?algo ?granule ?commutative p comm ~op send =
  let req, out = iallreduce ?algo ?granule ?commutative p comm ~op send in
  wait_sched p req;
  out

let allreduce_linear p comm ~op send = allreduce ~algo:`Linear p comm ~op send

(* ------------------------------------------------------------------ *)
(* Scan                                                                *)
(* ------------------------------------------------------------------ *)

(* Linear pipeline scan: member r receives the prefix of 0..r-1 from its
   left neighbour, folds its own contribution, and forwards. MPI requires
   rank order for non-commutative operators, which this preserves. The
   fold runs as [op prefix mine] with the result living in the prefix
   buffer, dropping the blocking engine's copy-swap of the accumulator. *)
let iscan p comm ~op send =
  let n = Comm.size comm in
  let me = Mpi.comm_rank p comm in
  let b = builder p comm ~name:"scan" in
  let mine = Bytes.copy send in
  let result =
    if me > 0 then begin
      let prefix = Bytes.create (Bytes.length send) in
      srecv b comm ~src:(me - 1) ~tag:(tag r_scan)
        (Buffer_view.of_bytes prefix);
      Coll_sched.fence b;
      (* prefix := prefix op mine, keeping rank order. *)
      Coll_sched.reduce b ~label:"fold-prefix" (fun () -> op prefix mine);
      Coll_sched.fence b;
      prefix
    end
    else mine
  in
  if me < n - 1 then
    ssend b comm ~dst:(me + 1) ~tag:(tag r_scan)
      (Buffer_view.of_bytes result);
  (Coll_sched.start b, result)

let scan p comm ~op send =
  let req, out = iscan p comm ~op send in
  wait_sched p req;
  out

(* ------------------------------------------------------------------ *)
(* Reduce-scatter                                                      *)
(* ------------------------------------------------------------------ *)

let reduce_scatter_block p comm ~op send =
  let n = Comm.size comm in
  let total = Bytes.length send in
  if total mod n <> 0 then
    invalid_arg
      "Collectives.reduce_scatter_block: length must be a multiple of the \
       communicator size";
  let block = total / n in
  let me = Mpi.comm_rank p comm in
  let full =
    match reduce p comm ~root:0 ~op send with
    | Some acc -> acc
    | None -> Bytes.create total
  in
  let mine = Bytes.create block in
  let parts =
    if me = 0 then
      Some
        (Array.init n (fun r ->
             Buffer_view.of_bytes_sub full ~off:(r * block) ~len:block))
    else None
  in
  scatter ~block p comm ~root:0 ~parts ~recv:(Buffer_view.of_bytes mine);
  mine

(* ------------------------------------------------------------------ *)
(* Predefined operators                                                *)
(* ------------------------------------------------------------------ *)

let fold_f64 f acc x =
  let n = Bytes.length acc / 8 in
  for i = 0 to n - 1 do
    let a = Int64.float_of_bits (Bytes.get_int64_le acc (8 * i)) in
    let b = Int64.float_of_bits (Bytes.get_int64_le x (8 * i)) in
    Bytes.set_int64_le acc (8 * i) (Int64.bits_of_float (f a b))
  done

let fold_i32 f acc x =
  let n = Bytes.length acc / 4 in
  for i = 0 to n - 1 do
    let a = Int32.to_int (Bytes.get_int32_le acc (4 * i)) in
    let b = Int32.to_int (Bytes.get_int32_le x (4 * i)) in
    Bytes.set_int32_le acc (4 * i) (Int32.of_int (f a b))
  done

let fold_i64 f acc x =
  let n = Bytes.length acc / 8 in
  for i = 0 to n - 1 do
    let a = Bytes.get_int64_le acc (8 * i) in
    let b = Bytes.get_int64_le x (8 * i) in
    Bytes.set_int64_le acc (8 * i) (f a b)
  done

let sum_f64 acc x = fold_f64 ( +. ) acc x
let sum_i32 acc x = fold_i32 ( + ) acc x
let sum_i64 acc x = fold_i64 Int64.add acc x
let max_f64 acc x = fold_f64 Float.max acc x
let min_f64 acc x = fold_f64 Float.min acc x
let max_i32 acc x = fold_i32 max acc x
