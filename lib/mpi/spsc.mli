(** Bounded single-producer/single-consumer ring (DESIGN.md §15).

    The building block of the sharded shm channel: one ring per
    (src, dst) rank pair, so each ring is written by exactly one domain
    and read by exactly one domain. Publication is by the [Atomic]
    head/tail counters alone — slots are plain fields, made safe by the
    release/acquire ordering of the counter updates. *)

type 'a t

val create : capacity:int -> 'a t
(** Capacity is rounded up to the next power of two (min 2). *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Racy snapshot — exact only when called by the producer or consumer. *)

val try_push : 'a t -> 'a -> bool
(** Producer side. False when the ring is full. *)

val push : 'a t -> 'a -> unit
(** Producer side; spins ([Domain.cpu_relax]) until space is available.
    The consumer drains opportunistically on every poll, so a full ring
    is backpressure, not a deadlock. *)

val pop : 'a t -> 'a option
(** Consumer side. *)
