(** The channel layer: moves packets between address spaces.

    MPICH2's channel interface reduces a port to a handful of functions
    (Section 6 of the paper, citing Gropp & Lusk's channel-interface
    report); ours is the same idea: [send], [poll], [add_rank] and a name.
    Implementations differ only in their cost profile — {!Shm_channel} and
    {!Sock_channel} are both built on {!make}.

    Delivery model: a packet sent at virtual time [t] with wire size [w]
    becomes visible to the receiver's [poll] at
    [t + per_msg_ns + w * per_byte_ns]. Per-(src,dst) ordering is enforced
    (no overtaking, as on a TCP stream). The sender is charged a syscall
    cost per MTU-sized fragment. *)

type t = {
  name : string;
  send : src:int -> dst:int -> Packet.t -> unit;
  poll : rank:int -> Packet.t option;
      (** Next deliverable packet for [rank], if any has arrived. When
          packets are in flight but not yet arrived this calls
          {!Fiber.note_activity} so waiting on the clock is not mistaken
          for deadlock. *)
  add_rank : unit -> int;  (** returns the new rank id *)
  n_ranks : unit -> int;
}

val make :
  name:string ->
  per_msg_ns:float ->
  per_byte_ns:float ->
  ?topo:Simtime.Topology.t ->
  ?intra:float * float ->
  syscall_fraction:float ->
  env:Simtime.Env.t ->
  n_ranks:int ->
  unit ->
  t
(** Generic latency/bandwidth-modelled channel. [syscall_fraction] is the
    share of [per_msg_ns] charged to the sender's CPU per fragment.

    With [?topo] and [?intra:(per_msg_ns, per_byte_ns)], messages whose
    endpoints share a node (per {!Simtime.Topology.same_node}) are priced
    at the intra-node figures; all other traffic pays the base figures.
    When [?topo] is present, per-tier traffic is also counted under
    [msgs_intra_node]/[msgs_inter_node] and the matching byte keys. *)
