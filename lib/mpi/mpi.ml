type world = {
  env : Simtime.Env.t;
  chan : Channel.t;
  mutable devices : Ch3.t array;
  mutable id_counter : int;
  contexts : (string, int) Hashtbl.t;
  mutable next_context : int;
  split_epochs : (int * int, int ref) Hashtbl.t;  (* (rank, ctx) -> count *)
  spawned : (string, int array) Hashtbl.t;  (* dynamic-spawn rendezvous *)
  initial_n : int;  (* comm_world is fixed at creation, as in MPI *)
  reliable : Reliable.t option;  (* handle on the go-back-N layer, if any *)
}

type proc = { world : world; prank : int; dev : Ch3.t }

let fresh_id world () =
  world.id_counter <- world.id_counter + 1;
  world.id_counter

let create_world ?(channel = `Sock) ?cost ?env ?fault ?reliable ~n () =
  if n < 1 then invalid_arg "Mpi.create_world: need at least one rank";
  let env =
    match env with Some e -> e | None -> Simtime.Env.create ?cost ()
  in
  let base =
    match channel with
    | `Shm -> Shm_channel.create env ~n_ranks:n
    | `Sock -> Sock_channel.create env ~n_ranks:n
  in
  let faulty =
    match fault with
    | None -> base
    | Some plan -> Fault.wrap ~env plan base
  in
  (* A fault plan without reliable delivery would violate MPI semantics,
     so injecting faults always installs the reliable layer on top. *)
  let chan, rel =
    match (fault, reliable) with
    | None, None -> (faulty, None)
    | _, Some config ->
        let c, r = Reliable.wrap ~config ~env faulty in
        (c, Some r)
    | Some _, None ->
        let c, r = Reliable.wrap ~env faulty in
        (c, Some r)
  in
  let world =
    {
      env;
      chan;
      devices = [||];
      id_counter = 0;
      contexts = Hashtbl.create 16;
      next_context = 10;
      split_epochs = Hashtbl.create 16;
      spawned = Hashtbl.create 4;
      initial_n = n;
      reliable = rel;
    }
  in
  world.devices <-
    Array.init n (fun rank ->
        Ch3.create env chan ~rank ~fresh_id:(fresh_id world));
  world

let env w = w.env
let world_size w = Array.length w.devices
let reliable_handle w = w.reliable

let proc w i =
  if i < 0 || i >= Array.length w.devices then
    invalid_arg "Mpi.proc: bad rank";
  { world = w; prank = i; dev = w.devices.(i) }

let comm_world w =
  Comm.make ~ctx:0 ~members:(Array.init w.initial_n (fun i -> i))

let rank p = p.prank

let comm_rank p comm =
  match Comm.comm_rank_of comm p.prank with
  | Some r -> r
  | None -> invalid_arg "Mpi.comm_rank: not a member of this communicator"

let world_of p = p.world
let device p = p.dev

let alloc_context w ~key =
  match Hashtbl.find_opt w.contexts key with
  | Some ctx -> ctx
  | None ->
      let ctx = w.next_context in
      w.next_context <- ctx + 2;
      Hashtbl.replace w.contexts key ctx;
      ctx

let add_rank w =
  let rank = w.chan.Channel.add_rank () in
  let dev = Ch3.create w.env w.chan ~rank ~fresh_id:(fresh_id w) in
  w.devices <- Array.append w.devices [| dev |];
  { world = w; prank = rank; dev }

(* ------------------------------------------------------------------ *)
(* Point-to-point                                                      *)
(* ------------------------------------------------------------------ *)

let isend p ~comm ~dst ~tag buf =
  Ch3.isend p.dev
    ~dst:(Comm.world_rank_of comm dst)
    ~tag ~context:comm.Comm.ctx buf

let issend p ~comm ~dst ~tag buf =
  Ch3.isend p.dev
    ~dst:(Comm.world_rank_of comm dst)
    ~tag ~context:comm.Comm.ctx ~mode:Ch3.Synchronous buf

let irecv p ~comm ~src ~tag buf =
  let src =
    if src = Tag_match.any_source then src else Comm.world_rank_of comm src
  in
  Ch3.irecv p.dev ~src ~tag ~context:comm.Comm.ctx buf

(* Polling wait. Inside a fiber scheduler we suspend; in plain code (unit
   tests, self-sends) we spin on the progress engine with a safety bound. *)
let wait_poll p ~poll req =
  if Fiber.in_scheduler () then
    Fiber.wait_until ~label:"mpi-wait" (fun () ->
        poll ();
        ignore (Ch3.progress p.dev);
        Request.is_complete req)
  else begin
    let spins = ref 0 in
    while not (Request.is_complete req) do
      poll ();
      if not (Ch3.progress p.dev) then begin
        incr spins;
        if !spins > 1_000_000 then
          failwith "Mpi.wait: no progress outside a scheduler"
      end
      else spins := 0
    done
  end;
  match Request.error req with
  | Some msg -> raise (Ch3.Mpi_error msg)
  | None -> Request.status req

let wait p req = wait_poll p ~poll:(fun () -> ()) req

let test p req =
  ignore (Ch3.progress p.dev);
  Request.is_complete req

let wait_all p reqs = List.iter (fun r -> ignore (wait p r)) reqs

let wait_any p reqs =
  match reqs with
  | [] -> invalid_arg "Mpi.wait_any: empty request list"
  | _ ->
      let found = ref None in
      let check () =
        ignore (Ch3.progress p.dev);
        match List.find_opt Request.is_complete reqs with
        | Some r ->
            found := Some r;
            true
        | None -> false
      in
      if Fiber.in_scheduler () then Fiber.wait_until ~label:"mpi-waitany" check
      else begin
        let spins = ref 0 in
        while not (check ()) do
          incr spins;
          if !spins > 1_000_000 then
            failwith "Mpi.wait_any: no progress outside a scheduler"
        done
      end;
      Option.get !found

let test_all p reqs =
  ignore (Ch3.progress p.dev);
  List.for_all Request.is_complete reqs

let test_any p reqs =
  ignore (Ch3.progress p.dev);
  List.find_opt Request.is_complete reqs

let wait_some p reqs =
  match reqs with
  | [] -> invalid_arg "Mpi.wait_some: empty request list"
  | _ ->
      let done_ () = List.filter Request.is_complete reqs in
      let check () =
        ignore (Ch3.progress p.dev);
        done_ () <> []
      in
      if not (check ()) then
        if Fiber.in_scheduler () then
          Fiber.wait_until ~label:"mpi-waitsome" check
        else begin
          let spins = ref 0 in
          while not (check ()) do
            incr spins;
            if !spins > 1_000_000 then
              failwith "Mpi.wait_some: no progress outside a scheduler"
          done
        end;
      done_ ()

let comm_status comm (st : Status.t) =
  match Comm.comm_rank_of comm st.Status.source with
  | Some r -> { st with Status.source = r }
  | None -> st

let send p ~comm ~dst ~tag buf = ignore (wait p (isend p ~comm ~dst ~tag buf))
let ssend p ~comm ~dst ~tag buf = ignore (wait p (issend p ~comm ~dst ~tag buf))

let recv p ~comm ~src ~tag buf =
  match wait p (irecv p ~comm ~src ~tag buf) with
  | Some st -> comm_status comm st
  | None -> Status.empty

let sendrecv p ~comm ~dst ~send_tag ~send:sbuf ~src ~recv_tag ~recv:rbuf =
  let sreq = isend p ~comm ~dst ~tag:send_tag sbuf in
  let rreq = irecv p ~comm ~src ~tag:recv_tag rbuf in
  ignore (wait p sreq);
  match wait p rreq with
  | Some st -> comm_status comm st
  | None -> Status.empty

let iprobe p ~comm ~src ~tag =
  ignore (Ch3.progress p.dev);
  let src =
    if src = Tag_match.any_source then src else Comm.world_rank_of comm src
  in
  let pattern =
    { Tag_match.m_src = src; m_tag = tag; m_context = comm.Comm.ctx }
  in
  match Queues.peek_unexpected (Ch3.queues p.dev) pattern with
  | Some e ->
      Some
        (comm_status comm
           {
             Status.source = e.Packet.e_src;
             tag = e.Packet.e_tag;
             bytes = e.Packet.e_bytes;
           })
  | None -> None

(* ------------------------------------------------------------------ *)
(* Communicator management                                             *)
(* ------------------------------------------------------------------ *)

let next_epoch p comm =
  let key = (p.prank, comm.Comm.ctx) in
  let cell =
    match Hashtbl.find_opt p.world.split_epochs key with
    | Some c -> c
    | None ->
        let c = ref 0 in
        Hashtbl.replace p.world.split_epochs key c;
        c
  in
  incr cell;
  !cell

let comm_split p comm ~color ~key =
  let size = Comm.size comm in
  let me = comm_rank p comm in
  let ctx = comm.Comm.ctx_coll in
  let tag = 0x5350 (* "SP" *) in
  (* Gather (color, key) triples at comm rank 0, then broadcast the table:
     a linear allgather with real messages. *)
  let record me_rank =
    let b = Bytes.create 12 in
    Bytes.set_int32_le b 0 (Int32.of_int color);
    Bytes.set_int32_le b 4 (Int32.of_int key);
    Bytes.set_int32_le b 8 (Int32.of_int me_rank);
    b
  in
  let table = Bytes.create (12 * size) in
  if me = 0 then begin
    Bytes.blit (record me) 0 table 0 12;
    for _ = 1 to size - 1 do
      let slot = Bytes.create 12 in
      let st =
        Ch3.irecv p.dev ~src:Tag_match.any_source ~tag ~context:ctx
          (Buffer_view.of_bytes slot)
        |> wait p
      in
      (match st with
      | Some s -> (
          match Comm.comm_rank_of comm s.Status.source with
          | Some r -> Bytes.blit slot 0 table (12 * r) 12
          | None -> failwith "comm_split: sender not in communicator")
      | None -> assert false)
    done;
    for r = 1 to size - 1 do
      Ch3.isend p.dev
        ~dst:(Comm.world_rank_of comm r)
        ~tag:(tag + 1) ~context:ctx
        (Buffer_view.of_bytes table)
      |> wait p |> ignore
    done
  end
  else begin
    Ch3.isend p.dev
      ~dst:(Comm.world_rank_of comm 0)
      ~tag ~context:ctx
      (Buffer_view.of_bytes (record me))
    |> wait p |> ignore;
    Ch3.irecv p.dev
      ~src:(Comm.world_rank_of comm 0)
      ~tag:(tag + 1) ~context:ctx
      (Buffer_view.of_bytes table)
    |> wait p |> ignore
  end;
  (* Decode and build my group deterministically. *)
  let entries =
    List.init size (fun r ->
        let c = Int32.to_int (Bytes.get_int32_le table (12 * r)) in
        let k = Int32.to_int (Bytes.get_int32_le table ((12 * r) + 4)) in
        (c, k, r))
  in
  let mine = List.filter (fun (c, _, _) -> c = color) entries in
  let sorted =
    List.sort (fun (_, k1, r1) (_, k2, r2) -> compare (k1, r1) (k2, r2)) mine
  in
  let members =
    Array.of_list
      (List.map (fun (_, _, r) -> Comm.world_rank_of comm r) sorted)
  in
  let e = next_epoch p comm in
  let new_ctx =
    alloc_context p.world
      ~key:(Printf.sprintf "split/%d/%d/%d" comm.Comm.ctx e color)
  in
  Comm.make ~ctx:new_ctx ~members

let comm_dup p comm =
  let e = next_epoch p comm in
  let new_ctx =
    alloc_context p.world ~key:(Printf.sprintf "dup/%d/%d" comm.Comm.ctx e)
  in
  Comm.make ~ctx:new_ctx ~members:(Array.copy comm.Comm.members)

let spawn_table w = w.spawned

let quiescence_report w =
  Array.to_list w.devices
  |> List.filter_map (fun dev ->
         (* Drain anything already delivered before judging. *)
         ignore (Ch3.progress dev);
         let issues = ref [] in
         let add fmt = Printf.ksprintf (fun s -> issues := s :: !issues) fmt in
         let q = Ch3.queues dev in
         let posted = Queues.posted_length q in
         let unexpected = Queues.unexpected_length q in
         let outstanding = Ch3.outstanding dev in
         let rndv = Ch3.pending_rendezvous dev in
         if posted > 0 then add "%d posted receive(s) never matched" posted;
         if unexpected > 0 then
           add "%d unexpected message(s) never received" unexpected;
         if outstanding > 0 then
           add "%d outstanding request(s)" outstanding;
         if rndv > 0 then add "%d unfinished rendezvous transfer(s)" rndv;
         match !issues with
         | [] -> None
         | list -> Some (Ch3.rank dev, String.concat "; " (List.rev list)))

(* ------------------------------------------------------------------ *)
(* Running worlds                                                      *)
(* ------------------------------------------------------------------ *)

let run ?channel ?cost ?env ?fault ?reliable ~n body =
  let w = create_world ?channel ?cost ?env ?fault ?reliable ~n () in
  let fibers =
    List.init n (fun i ->
        (Printf.sprintf "rank%d" i, fun () -> body (proc w i)))
  in
  Fiber.run fibers;
  w
