type world = {
  env : Simtime.Env.t;  (* domain 0's environment (the only one when
                           cooperative) *)
  envs : Simtime.Env.t array;  (* one per domain; length 1 unless parallel *)
  parallel : int option;  (* Some domains when running on real domains *)
  place : int -> int;  (* rank -> domain slot (constant 0 cooperative) *)
  chan : Channel.t;  (* full stack (failure silencer on top, if any) *)
  inner_chan : Channel.t;  (* below the silencer: teardown drains here *)
  mutable devices : Ch3.t array;
  id_counter : int Atomic.t;
  ctl_mu : Mutex.t;  (* control plane: contexts/split_epochs allocation *)
  contexts : (string, int) Hashtbl.t;
  mutable next_context : int;
  split_epochs : (int * int, int ref) Hashtbl.t;  (* (rank, ctx) -> count *)
  spawned : (string, int array) Hashtbl.t;  (* dynamic-spawn rendezvous *)
  initial_n : int;  (* comm_world is fixed at creation, as in MPI *)
  topology : Simtime.Topology.t;  (* nodes x cores placement of ranks *)
  reliable : Reliable.t option;  (* handle on the go-back-N layer, if any *)
  ft : Ft.t option;  (* process-failure service, if kills or a detector *)
  rdma : Rdma_channel.t option;  (* the RDMA fabric, when channel = `Rdma *)
}

type proc = { world : world; prank : int; dev : Ch3.t }

(* Request ids key the process-global Coll_sched shape registry, so they
   must stay unique even when ranks on different domains allocate
   concurrently — hence the atomic. Cooperative runs see the identical
   1, 2, 3, ... sequence as before. *)
let fresh_id world () = Atomic.fetch_and_add world.id_counter 1 + 1

let create_world ?(channel = `Sock) ?cost ?env ?fault ?reliable ?detector
    ?topology ?parallel ~n () =
  if n < 1 then invalid_arg "Mpi.create_world: need at least one rank";
  (* Parallel mode executes each simulated node's ranks on a real OCaml 5
     domain (DESIGN.md §15). The layers that iterate cross-device from
     one fiber — fault injection, the reliable-delivery window, the
     failure detector — are cooperative-only, and a caller-supplied
     environment cannot be shared across domains; reject the
     combinations rather than corrupt state. *)
  (match parallel with
  | None -> ()
  | Some d ->
      if d < 1 then
        invalid_arg "Mpi.create_world: ?parallel needs at least one domain";
      if Option.is_some fault then
        invalid_arg
          "Mpi.create_world: ?fault is cooperative-only (the injector and \
           kill teardown iterate every device); drop ?parallel";
      if Option.is_some detector then
        invalid_arg
          "Mpi.create_world: ?detector is cooperative-only (heartbeat \
           bookkeeping spans all devices); drop ?parallel";
      if Option.is_some reliable then
        invalid_arg
          "Mpi.create_world: ?reliable is cooperative-only (go-back-N \
           windows share per-pair sequence state); drop ?parallel";
      if Option.is_some env then
        invalid_arg
          "Mpi.create_world: ?parallel builds one environment per domain; \
           a shared ?env cannot be used");
  let domains =
    match parallel with
    | None -> None
    | Some d ->
        (* An explicit topology with fewer nodes than requested domains
           would leave domains idle forever: placement maps ranks to
           nodes, so only [nodes] distinct domain slots are ever used.
           Clamp rather than spawn dead domains (DESIGN.md §15);
           [parallelism] reports the effective count. *)
        let d = min d n in
        Some
          (match topology with
          | Some t -> min d (Simtime.Topology.nodes t)
          | None -> d)
  in
  let topology =
    match (topology, domains) with
    | Some t, _ ->
        if Simtime.Topology.size t < n then
          invalid_arg "Mpi.create_world: topology smaller than the world";
        t
    | None, Some d ->
        (* One simulated node per domain: cores within a node stay
           cooperative, nodes run truly in parallel. *)
        Simtime.Topology.make ~nodes:d ~cores:((n + d - 1) / d)
    | None, None -> Simtime.Topology.single ~n
  in
  let place =
    match domains with
    | None -> fun _ -> 0
    | Some d ->
        let tp = topology in
        fun rank -> Simtime.Topology.node_of tp rank mod d
  in
  let envs =
    match domains with
    | None -> [||] (* filled below from [env] *)
    | Some d -> Array.init d (fun _ -> Simtime.Env.create ?cost ())
  in
  let env =
    match (env, domains) with
    | Some e, _ -> e
    | None, Some _ -> envs.(0)
    | None, None -> Simtime.Env.create ?cost ()
  in
  let envs = if Array.length envs = 0 then [| env |] else envs in
  (* A single-node topology (the default) is "no placement information":
     the channel keeps its flat pricing, exactly as before topologies
     existed. Only a real multi-node layout turns on tiered pricing. *)
  let topo =
    if Simtime.Topology.multi_node topology then Some topology else None
  in
  let base, rdma =
    match domains with
    | Some _ ->
        (* The transport is real shared memory between domains; the
           modelled [channel] flavour does not apply. *)
        ( Shm_channel.create_parallel
            ~env_for:(fun rank -> envs.(place rank))
            ~n_ranks:n,
          None )
    | None -> (
        match channel with
        | `Shm -> (Shm_channel.create ?topo env ~n_ranks:n, None)
        | `Sock -> (Sock_channel.create ?topo env ~n_ranks:n, None)
        | `Rdma ->
            let h = Rdma_channel.create ?topo env ~n_ranks:n in
            (Rdma_channel.channel h, Some h))
  in
  let faulty =
    match fault with
    | None -> base
    | Some plan -> Fault.wrap ~env plan base
  in
  (* A fault plan without reliable delivery would violate MPI semantics,
     so injecting faults always installs the reliable layer on top. *)
  let inner_chan, rel =
    match (fault, reliable) with
    | None, None -> (faulty, None)
    | _, Some config ->
        let c, r = Reliable.wrap ~config ~env faulty in
        (c, Some r)
    | Some _, None ->
        let c, r = Reliable.wrap ~env faulty in
        (c, Some r)
  in
  let kills = match fault with Some p -> p.Fault.kills | None -> [] in
  let ft =
    match (kills, detector) with
    | [], None -> None
    | _ -> Some (Ft.create ~env ?detector ~kills ~n ())
  in
  (* The silencer sits on top of the whole stack: nothing is framed (or
     retransmitted) toward a dead rank once the failure is known. *)
  let chan =
    match ft with None -> inner_chan | Some ft -> Ft.wrap_channel ft inner_chan
  in
  let world =
    {
      env;
      envs;
      parallel = domains;
      place;
      chan;
      inner_chan;
      devices = [||];
      id_counter = Atomic.make 0;
      ctl_mu = Mutex.create ();
      contexts = Hashtbl.create 16;
      next_context = 10;
      split_epochs = Hashtbl.create 16;
      spawned = Hashtbl.create 4;
      initial_n = n;
      topology;
      reliable = rel;
      ft;
      rdma;
    }
  in
  (* Each device charges and counts into its own domain's environment, so
     hot-path accounting never crosses domains; [merged_stats] recombines
     after the run joins. *)
  world.devices <-
    Array.init n (fun rank ->
        Ch3.create envs.(place rank) chan ~rank ~fresh_id:(fresh_id world));
  (match ft with
  | None -> ()
  | Some ft ->
      Array.iter
        (fun dev ->
          Ch3.set_tick dev (Some (fun () -> Ft.tick ft ~rank:(Ch3.rank dev)));
          Ch3.set_revoked_check dev (Some (Ft.is_revoked ft));
          Ch3.set_dead_check dev (Some (Ft.is_down ft));
          Ch3.set_coll_failed dev
            (Some
               (fun ctx reason ->
                 (* Flood only failures of declared-dead peers: the
                    victim's own teardown also completes its schedule
                    with Proc_failed, but at that point nobody else can
                    know — the error must not outrun the detector. *)
                 match reason with
                 | Request.Proc_failed r when Ft.is_down ft r ->
                     Array.iter
                       (fun d -> Ch3.abort_context d ~ctx ~reason)
                       world.devices
                 | _ -> ())))
        world.devices;
      Ft.on_death ft (fun dead ->
          (* Discard whatever the dead rank's inbox still holds (its NIC
             is gone), then drop the reliable layer's sequence state on
             both directions so nothing retransmits on its behalf and a
             restarted incarnation starts from sequence zero. *)
          let rec drain () =
            match world.inner_chan.Channel.poll ~rank:dead with
            | Some _ -> drain ()
            | None -> ()
          in
          drain ();
          (match rel with
          | Some r -> ignore (Reliable.reset_peer r ~peer:dead)
          | None -> ());
          (* Every survivor's operations that only the dead rank could
             satisfy complete now, with Proc_failed. *)
          Array.iter
            (fun dev ->
              if Ch3.rank dev <> dead then Ch3.fail_peer dev ~peer:dead)
            world.devices);
      Ft.on_revive ft (fun rank ->
          match rel with
          | Some r -> ignore (Reliable.reset_peer r ~peer:rank)
          | None -> ()));
  (* Deadlock reports name the requests that never completed. *)
  Fiber.register_deadlock_dump (fun () ->
      Array.to_list world.devices |> List.concat_map Ch3.describe_pending);
  world

let env w = w.env
let domain_envs w = Array.copy w.envs
let parallelism w = w.parallel

let merged_stats w =
  Simtime.Stats.merged
    (Array.to_list (Array.map (fun e -> e.Simtime.Env.stats) w.envs))

let world_size w = Array.length w.devices
let topology w = w.topology
let reliable_handle w = w.reliable
let rdma_handle w = w.rdma
let ft_handle w = w.ft
let dead_ranks w = match w.ft with Some ft -> Ft.dead_ranks ft | None -> []

let ft_of p =
  match p.world.ft with
  | Some ft -> ft
  | None ->
      invalid_arg
        "Mpi: this world has no failure service (pass kills or ?detector)"

(* Entry guard, fiber context only: a rank whose kill time has passed
   dies at its next MPI call. *)
let check_self p =
  match p.world.ft with
  | Some ft -> Ft.check_self ft ~rank:p.prank
  | None -> ()

let self_doomed p =
  match p.world.ft with
  | Some ft -> Ft.self_doomed ft ~rank:p.prank
  | None -> false

let raise_reason = function
  | Request.Proc_failed r -> raise (Ft.Proc_failed r)
  | Request.Comm_revoked ctx -> raise (Ft.Revoked ctx)
  | Request.Error msg -> raise (Ch3.Mpi_error msg)

let proc w i =
  if i < 0 || i >= Array.length w.devices then
    invalid_arg "Mpi.proc: bad rank";
  { world = w; prank = i; dev = w.devices.(i) }

(* The world is a pure descriptor: no O(n) membership array even at 64k
   ranks. *)
let comm_world w = Comm.range ~ctx:0 ~start:0 ~count:w.initial_n ()

let rank p = p.prank

let comm_rank p comm =
  match Comm.comm_rank_of comm p.prank with
  | Some r -> r
  | None -> invalid_arg "Mpi.comm_rank: not a member of this communicator"

let world_of p = p.world
let device p = p.dev

(* Control-plane allocation: serialized so parallel-mode ranks splitting
   the same communicator from different domains agree on one context id
   per key. Uncontended in cooperative mode. *)
let alloc_context w ~key =
  Mutex.protect w.ctl_mu (fun () ->
      match Hashtbl.find_opt w.contexts key with
      | Some ctx -> ctx
      | None ->
          let ctx = w.next_context in
          w.next_context <- ctx + 2;
          Hashtbl.replace w.contexts key ctx;
          ctx)

let add_rank w =
  let rank = w.chan.Channel.add_rank () in
  let dev = Ch3.create w.env w.chan ~rank ~fresh_id:(fresh_id w) in
  w.devices <- Array.append w.devices [| dev |];
  { world = w; prank = rank; dev }

(* ------------------------------------------------------------------ *)
(* Point-to-point                                                      *)
(* ------------------------------------------------------------------ *)

let isend p ~comm ~dst ~tag buf =
  check_self p;
  Ch3.isend p.dev
    ~dst:(Comm.world_rank_of comm dst)
    ~tag ~context:comm.Comm.ctx buf

let issend p ~comm ~dst ~tag buf =
  check_self p;
  Ch3.isend p.dev
    ~dst:(Comm.world_rank_of comm dst)
    ~tag ~context:comm.Comm.ctx ~mode:Ch3.Synchronous buf

let irecv p ~comm ~src ~tag buf =
  check_self p;
  let src =
    if src = Tag_match.any_source then src else Comm.world_rank_of comm src
  in
  Ch3.irecv p.dev ~src ~tag ~context:comm.Comm.ctx buf

(* Polling wait. Inside a fiber scheduler we suspend; in plain code (unit
   tests, self-sends) we spin on the progress engine with a safety bound.
   A doomed rank (its kill time passed) wakes from the wait and dies via
   [check_self] — the raise happens in fiber context, never inside the
   predicate (predicates run in scheduler context, where an exception
   would abort the whole run). *)
let wait_poll p ~poll req =
  check_self p;
  if Fiber.in_scheduler () then
    Fiber.wait_until ~label:"mpi-wait" (fun () ->
        poll ();
        ignore (Ch3.progress p.dev);
        Request.is_complete req || self_doomed p)
  else begin
    let spins = ref 0 in
    while not (Request.is_complete req || self_doomed p) do
      poll ();
      if not (Ch3.progress p.dev) then begin
        incr spins;
        if !spins > 1_000_000 then
          failwith "Mpi.wait: no progress outside a scheduler"
      end
      else spins := 0
    done
  end;
  check_self p;
  match Request.reason req with
  | Some reason -> raise_reason reason
  | None -> Request.status req

let wait p req = wait_poll p ~poll:(fun () -> ()) req

let test p req =
  ignore (Ch3.progress p.dev);
  Request.is_complete req

let wait_all p reqs = List.iter (fun r -> ignore (wait p r)) reqs

let wait_any p reqs =
  match reqs with
  | [] -> invalid_arg "Mpi.wait_any: empty request list"
  | _ ->
      check_self p;
      let found = ref None in
      let check () =
        ignore (Ch3.progress p.dev);
        match List.find_opt Request.is_complete reqs with
        | Some r ->
            found := Some r;
            true
        | None -> self_doomed p
      in
      if Fiber.in_scheduler () then Fiber.wait_until ~label:"mpi-waitany" check
      else begin
        let spins = ref 0 in
        while not (check ()) do
          incr spins;
          if !spins > 1_000_000 then
            failwith "Mpi.wait_any: no progress outside a scheduler"
        done
      end;
      check_self p;
      Option.get !found

let test_all p reqs =
  ignore (Ch3.progress p.dev);
  List.for_all Request.is_complete reqs

let test_any p reqs =
  ignore (Ch3.progress p.dev);
  List.find_opt Request.is_complete reqs

let wait_some p reqs =
  match reqs with
  | [] -> invalid_arg "Mpi.wait_some: empty request list"
  | _ ->
      check_self p;
      let done_ () = List.filter Request.is_complete reqs in
      let check () =
        ignore (Ch3.progress p.dev);
        done_ () <> [] || self_doomed p
      in
      if not (check ()) then
        if Fiber.in_scheduler () then
          Fiber.wait_until ~label:"mpi-waitsome" check
        else begin
          let spins = ref 0 in
          while not (check ()) do
            incr spins;
            if !spins > 1_000_000 then
              failwith "Mpi.wait_some: no progress outside a scheduler"
          done
        end;
      check_self p;
      done_ ()

let comm_status comm (st : Status.t) =
  match Comm.comm_rank_of comm st.Status.source with
  | Some r -> { st with Status.source = r }
  | None -> st

let send p ~comm ~dst ~tag buf = ignore (wait p (isend p ~comm ~dst ~tag buf))
let ssend p ~comm ~dst ~tag buf = ignore (wait p (issend p ~comm ~dst ~tag buf))

let recv p ~comm ~src ~tag buf =
  match wait p (irecv p ~comm ~src ~tag buf) with
  | Some st -> comm_status comm st
  | None -> Status.empty

let sendrecv p ~comm ~dst ~send_tag ~send:sbuf ~src ~recv_tag ~recv:rbuf =
  let sreq = isend p ~comm ~dst ~tag:send_tag sbuf in
  let rreq = irecv p ~comm ~src ~tag:recv_tag rbuf in
  ignore (wait p sreq);
  match wait p rreq with
  | Some st -> comm_status comm st
  | None -> Status.empty

let iprobe p ~comm ~src ~tag =
  ignore (Ch3.progress p.dev);
  let src =
    if src = Tag_match.any_source then src else Comm.world_rank_of comm src
  in
  let pattern =
    { Tag_match.m_src = src; m_tag = tag; m_context = comm.Comm.ctx }
  in
  match Queues.peek_unexpected (Ch3.queues p.dev) pattern with
  | Some e ->
      Some
        (comm_status comm
           {
             Status.source = e.Packet.e_src;
             tag = e.Packet.e_tag;
             bytes = e.Packet.e_bytes;
           })
  | None -> None

(* ------------------------------------------------------------------ *)
(* Communicator management                                             *)
(* ------------------------------------------------------------------ *)

let next_epoch p comm =
  let key = (p.prank, comm.Comm.ctx) in
  Mutex.protect p.world.ctl_mu (fun () ->
      let cell =
        match Hashtbl.find_opt p.world.split_epochs key with
        | Some c -> c
        | None ->
            let c = ref 0 in
            Hashtbl.replace p.world.split_epochs key c;
            c
      in
      incr cell;
      !cell)

let comm_split p comm ~color ~key =
  let size = Comm.size comm in
  let me = comm_rank p comm in
  let ctx = comm.Comm.ctx_coll in
  let tag = 0x5350 (* "SP" *) in
  (* Gather (color, key) triples at comm rank 0, then broadcast the table:
     a linear allgather with real messages. *)
  let record me_rank =
    let b = Bytes.create 12 in
    Bytes.set_int32_le b 0 (Int32.of_int color);
    Bytes.set_int32_le b 4 (Int32.of_int key);
    Bytes.set_int32_le b 8 (Int32.of_int me_rank);
    b
  in
  let table = Bytes.create (12 * size) in
  if me = 0 then begin
    Bytes.blit (record me) 0 table 0 12;
    for _ = 1 to size - 1 do
      let slot = Bytes.create 12 in
      let st =
        Ch3.irecv p.dev ~src:Tag_match.any_source ~tag ~context:ctx
          (Buffer_view.of_bytes slot)
        |> wait p
      in
      (match st with
      | Some s -> (
          match Comm.comm_rank_of comm s.Status.source with
          | Some r -> Bytes.blit slot 0 table (12 * r) 12
          | None -> failwith "comm_split: sender not in communicator")
      | None -> assert false)
    done;
    for r = 1 to size - 1 do
      Ch3.isend p.dev
        ~dst:(Comm.world_rank_of comm r)
        ~tag:(tag + 1) ~context:ctx
        (Buffer_view.of_bytes table)
      |> wait p |> ignore
    done
  end
  else begin
    Ch3.isend p.dev
      ~dst:(Comm.world_rank_of comm 0)
      ~tag ~context:ctx
      (Buffer_view.of_bytes (record me))
    |> wait p |> ignore;
    Ch3.irecv p.dev
      ~src:(Comm.world_rank_of comm 0)
      ~tag:(tag + 1) ~context:ctx
      (Buffer_view.of_bytes table)
    |> wait p |> ignore
  end;
  (* Decode and build my group deterministically. *)
  let entries =
    List.init size (fun r ->
        let c = Int32.to_int (Bytes.get_int32_le table (12 * r)) in
        let k = Int32.to_int (Bytes.get_int32_le table ((12 * r) + 4)) in
        (c, k, r))
  in
  let mine = List.filter (fun (c, _, _) -> c = color) entries in
  let sorted =
    List.sort (fun (_, k1, r1) (_, k2, r2) -> compare (k1, r1) (k2, r2)) mine
  in
  let members =
    Array.of_list
      (List.map (fun (_, _, r) -> Comm.world_rank_of comm r) sorted)
  in
  let e = next_epoch p comm in
  let new_ctx =
    alloc_context p.world
      ~key:(Printf.sprintf "split/%d/%d/%d" comm.Comm.ctx e color)
  in
  Comm.make ~ctx:new_ctx ~members

let comm_dup p comm =
  let e = next_epoch p comm in
  let new_ctx =
    alloc_context p.world ~key:(Printf.sprintf "dup/%d/%d" comm.Comm.ctx e)
  in
  (* Membership descriptor is shared, not copied: dup of the 64k world is
     O(1). *)
  Comm.with_ctx comm ~ctx:new_ctx

(* ------------------------------------------------------------------ *)
(* Hierarchical communicators                                          *)
(* ------------------------------------------------------------------ *)

(* A contiguous communicator on a multi-node topology decomposes into
   per-node shards plus a cross-node leader slice. Both derived comms
   are O(1) descriptors (a contiguous sub-range; a strided slice), and
   context ids come from the shared deterministic allocator keyed by the
   parent context, so no communication is needed to agree on them. *)

let contiguous_info comm =
  match Comm.range_info comm with
  | Some (start, 1, count) -> (start, count)
  | _ ->
      invalid_arg
        "Mpi: hierarchical communicators need a contiguous communicator"

let shard_bounds topo ~start ~count node =
  let cores = Simtime.Topology.cores topo in
  let lo = max start (node * cores) in
  let hi = min (start + count) ((node + 1) * cores) in
  (lo, hi - lo)

let shard_comm p comm =
  let start, count = contiguous_info comm in
  if Comm.comm_rank_of comm p.prank = None then
    invalid_arg "Mpi.shard_comm: not a member of this communicator";
  let topo = p.world.topology in
  let node = Simtime.Topology.node_of topo p.prank in
  let lo, n = shard_bounds topo ~start ~count node in
  let ctx =
    alloc_context p.world
      ~key:(Printf.sprintf "hshard/%d/%d" comm.Comm.ctx node)
  in
  Comm.range ~ctx ~start:lo ~count:n ()

let leader_comm p comm =
  let start, count = contiguous_info comm in
  if Comm.comm_rank_of comm p.prank = None then
    invalid_arg "Mpi.leader_comm: not a member of this communicator";
  let topo = p.world.topology in
  let cores = Simtime.Topology.cores topo in
  let first_node = Simtime.Topology.node_of topo start in
  let last_node = Simtime.Topology.node_of topo (start + count - 1) in
  let shards = last_node - first_node + 1 in
  let ctx =
    alloc_context p.world ~key:(Printf.sprintf "hlead/%d" comm.Comm.ctx)
  in
  if start mod cores = 0 then
    (* Aligned: leaders are a pure strided slice — an O(1) descriptor
       even with thousands of nodes. *)
    Comm.range ~ctx ~step:cores ~start ~count:shards ()
  else
    Comm.make ~ctx
      ~members:
        (Array.init shards (fun i ->
             if i = 0 then start else (first_node + i) * cores))

let is_shard_leader p comm =
  let start, count = contiguous_info comm in
  let topo = p.world.topology in
  let node = Simtime.Topology.node_of topo p.prank in
  let lo, _ = shard_bounds topo ~start ~count node in
  p.prank = lo

(* ------------------------------------------------------------------ *)
(* ULFM-style recovery: revoke / agree / shrink                        *)
(* ------------------------------------------------------------------ *)

let comm_revoke p comm =
  check_self p;
  let ft = ft_of p in
  if not (Ft.is_revoked ft comm.Comm.ctx) then begin
    Ft.revoke ft comm.Comm.ctx;
    Ft.revoke ft comm.Comm.ctx_coll;
    Trace.record p.world.env ~rank:p.prank ~op:"revoke"
      ~detail:(Printf.sprintf "ctx=%d" comm.Comm.ctx);
    (* The revocation reaches every rank "now" — the simulation's
       stand-in for ULFM's reliable revoke flood. Every device cancels
       its pending operations on the context, so no rank stays blocked
       on a communicator that can no longer complete collectively. *)
    Array.iter
      (fun dev ->
        Ch3.abort_context dev ~ctx:comm.Comm.ctx
          ~reason:(Request.Comm_revoked comm.Comm.ctx);
        Ch3.abort_context dev ~ctx:comm.Comm.ctx_coll
          ~reason:(Request.Comm_revoked comm.Comm.ctx))
      p.world.devices
  end

(* Fault-tolerant agreement (ULFM's MPI_Comm_agree): bitwise AND of the
   surviving members' contributions. A linear gather at the lowest-rank
   survivor, then one atomic broadcast of the verdict.

   Protocol notes, load-bearing for correctness under failures:
   - each participant sends its contribution at most once per root; on a
     root change (the old root died) it re-sends to the new root, whose
     gather would otherwise miss contributions consumed by the dead one;
   - the root remembers contributions across retries ([got]), because a
     survivor that already delivered will not send again;
   - the verdict broadcast is a sequence of eager sends with no fiber
     suspension in between, so for a single failure it is all-or-nothing:
     either every survivor learns the verdict or none does. Survivors that
     die mid-agreement are routed around on retry; their contribution is
     included only if it was received (ULFM leaves exactly this choice to
     the implementation). *)
let comm_agree p comm ~value =
  check_self p;
  let ft = ft_of p in
  let w = p.world in
  let me = p.prank in
  let members = Array.to_list (Comm.members comm) in
  if not (List.mem me members) then
    invalid_arg "Mpi.comm_agree: not a member of this communicator";
  let e = next_epoch p comm in
  let ctx =
    alloc_context w ~key:(Printf.sprintf "agree/%d/%d" comm.Comm.ctx e)
  in
  let tag_gather = 1 and tag_verdict = 2 in
  let survivors () = List.filter (fun r -> not (Ft.is_down ft r)) members in
  let buf_of v =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 (Int64.of_int v);
    b
  in
  let int_of b = Int64.to_int (Bytes.get_int64_le b 0) in
  let got : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let sent_to = ref [] in
  let rec attempt () =
    check_self p;
    let svs = survivors () in
    let root = List.fold_left min me svs in
    try
      if root = me then begin
        List.iter
          (fun s ->
            if s <> me && not (Hashtbl.mem got s) then begin
              let b = Bytes.create 8 in
              ignore
                (wait p
                   (Ch3.irecv p.dev ~src:s ~tag:tag_gather ~context:ctx
                      (Buffer_view.of_bytes b)));
              Hashtbl.replace got s (int_of b)
            end)
          svs;
        let acc =
          List.fold_left
            (fun acc s ->
              if s = me then acc land value
              else
                match Hashtbl.find_opt got s with
                | Some v -> acc land v
                | None -> acc)
            (-1) svs
        in
        List.iter
          (fun s ->
            if s <> me then
              (* 8 bytes is far below the eager threshold: the send
                 completes synchronously, keeping the verdict broadcast
                 atomic with respect to the fiber scheduler. *)
              ignore
                (Ch3.isend p.dev ~dst:s ~tag:tag_verdict ~context:ctx
                   (Buffer_view.of_bytes (buf_of acc))))
          svs;
        acc
      end
      else begin
        if not (List.mem root !sent_to) then begin
          sent_to := root :: !sent_to;
          ignore
            (wait p
               (Ch3.isend p.dev ~dst:root ~tag:tag_gather ~context:ctx
                  (Buffer_view.of_bytes (buf_of value))))
        end;
        let b = Bytes.create 8 in
        ignore
          (wait p
             (Ch3.irecv p.dev ~src:root ~tag:tag_verdict ~context:ctx
                (Buffer_view.of_bytes b)));
        int_of b
      end
    with Ft.Proc_failed _ ->
      (* Someone died mid-agreement: recompute survivors and retry. The
         dead set only grows, so this terminates. *)
      attempt ()
  in
  attempt ()

let max_shrink_members = 62  (* agreement value is an OCaml int bitmap *)

let comm_shrink p comm =
  check_self p;
  let ft = ft_of p in
  let members = Comm.members comm in
  if Array.length members > max_shrink_members then
    invalid_arg "Mpi.comm_shrink: communicator too large for the bitmap \
                 agreement";
  let bitmap = ref 0 in
  Array.iteri
    (fun i r -> if not (Ft.is_down ft r) then bitmap := !bitmap lor (1 lsl i))
    members;
  (* Agree on the intersection of everyone's alive-view, so all survivors
     build the identical member list even if detections straggle. *)
  let agreed = comm_agree p comm ~value:!bitmap in
  let alive =
    Array.to_list members
    |> List.filteri (fun i _ -> agreed land (1 lsl i) <> 0)
  in
  let e = next_epoch p comm in
  let ctx =
    alloc_context p.world
      ~key:(Printf.sprintf "shrink/%d/%d/%x" comm.Comm.ctx e agreed)
  in
  Trace.record p.world.env ~rank:p.prank ~op:"shrink"
    ~detail:
      (Printf.sprintf "ctx=%d -> ctx=%d survivors=[%s]" comm.Comm.ctx ctx
         (String.concat ";" (List.map string_of_int alive)));
  Comm.make ~ctx ~members:(Array.of_list alive)

let revive_rank w rank =
  match w.ft with
  | Some ft -> Ft.revive ft ~rank
  | None -> invalid_arg "Mpi.revive_rank: no failure service"

let spawn_table w = w.spawned

let quiescence_report w =
  Array.to_list w.devices
  |> List.filter_map (fun dev ->
         (* A torn-down rank is exempt: its device was purged at death
            and judging it would blame the victim for its own murder. *)
         if
           match w.ft with
           | Some ft -> Ft.is_out ft (Ch3.rank dev)
           | None -> false
         then None
         else begin
         (* Drain anything already delivered before judging. *)
         ignore (Ch3.progress dev);
         let issues = ref [] in
         let add fmt = Printf.ksprintf (fun s -> issues := s :: !issues) fmt in
         let q = Ch3.queues dev in
         let posted = Queues.posted_length q in
         let unexpected = Queues.unexpected_length q in
         let outstanding = Ch3.outstanding dev in
         let rndv = Ch3.pending_rendezvous dev in
         if posted > 0 then add "%d posted receive(s) never matched" posted;
         if unexpected > 0 then
           add "%d unexpected message(s) never received" unexpected;
         if outstanding > 0 then
           add "%d outstanding request(s)" outstanding;
         if rndv > 0 then add "%d unfinished rendezvous transfer(s)" rndv;
         match !issues with
         | [] -> None
         | list -> Some (Ch3.rank dev, String.concat "; " (List.rev list))
         end)

(* ------------------------------------------------------------------ *)
(* Running worlds                                                      *)
(* ------------------------------------------------------------------ *)

(* Fail-stop semantics for a rank's fiber: [Ft.Killed] escaping [body]
   tears the rank down — its device is purged (every local request fails,
   hooks abort, queues empty) and the rank transitions to [Torn_down],
   after which the silencer drops its traffic. The fiber then returns
   normally; survivors learn of the death only when the detector declares
   it. A clean return marks the rank [Finished] so the detector never
   suspects a rank that merely exited. *)
let rank_guard w rank body =
  match w.ft with
  | None -> body ()
  | Some ft -> (
      match body () with
      | () -> Ft.finish ft ~rank
      | exception Ft.Killed r when r = rank ->
          Ch3.purge w.devices.(rank) ~reason:(Request.Proc_failed rank);
          Ft.mark_killed ft ~rank;
          Trace.record w.env ~rank ~op:"kill" ~detail:"fiber torn down")

let run ?channel ?cost ?env ?fault ?reliable ?detector ?topology ?parallel ~n
    body =
  let w =
    create_world ?channel ?cost ?env ?fault ?reliable ?detector ?topology
      ?parallel ~n ()
  in
  let fibers =
    List.init n (fun i ->
        ( Printf.sprintf "rank%d" i,
          fun () -> rank_guard w i (fun () -> body (proc w i)) ))
  in
  (match w.parallel with
  | None -> Fiber.run fibers
  | Some domains ->
      Fiber.run ~mode:(Fiber.Parallel { domains; place = w.place }) fibers);
  w
