type envelope = {
  e_src : int;
  e_dst : int;
  e_tag : int;
  e_context : int;
  e_bytes : int;
  e_seq : int;
}

type frame = { f_src : int; f_seq : int; f_check : int }

type t =
  | Eager of envelope * Bytes.t
  | Rts of envelope * int
  | Cts of int
  | Rndv_data of int * Bytes.t
  | Nak of int * string
  | Frame of frame * t
  | Ack of int * int

let header_bytes = 48
let frame_bytes = 16

let rec wire_bytes = function
  | Eager (_, b) -> header_bytes + Bytes.length b
  | Rts (_, _) -> header_bytes
  | Cts _ -> header_bytes
  | Rndv_data (_, b) -> header_bytes + Bytes.length b
  | Nak (_, msg) -> header_bytes + String.length msg
  | Frame (_, inner) -> frame_bytes + wire_bytes inner
  | Ack (_, _) -> header_bytes

(* FNV-1a over a canonical field-by-field encoding; the reliable layer
   stores the result in the frame header so bit corruption anywhere in the
   inner packet is detected on receive. Truncated to 30 bits so it stays a
   small OCaml int on every platform. *)
let fnv_prime = 0x100000001b3L
let fnv_basis = 0xcbf29ce484222325L

let mix_byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let mix_int h n =
  let rec go h k n =
    if k = 8 then h else go (mix_byte h (n land 0xff)) (k + 1) (n asr 8)
  in
  go h 0 n

let mix_bytes h b =
  let h = ref (mix_int h (Bytes.length b)) in
  Bytes.iter (fun c -> h := mix_byte !h (Char.code c)) b;
  !h

let mix_string h s = mix_bytes h (Bytes.unsafe_of_string s)

let mix_envelope h e =
  let h = mix_int h e.e_src in
  let h = mix_int h e.e_dst in
  let h = mix_int h e.e_tag in
  let h = mix_int h e.e_context in
  let h = mix_int h e.e_bytes in
  mix_int h e.e_seq

let rec digest h = function
  | Eager (e, b) -> mix_bytes (mix_envelope (mix_int h 1) e) b
  | Rts (e, id) -> mix_int (mix_envelope (mix_int h 2) e) id
  | Cts id -> mix_int (mix_int h 3) id
  | Rndv_data (id, b) -> mix_bytes (mix_int (mix_int h 4) id) b
  | Nak (id, msg) -> mix_string (mix_int (mix_int h 5) id) msg
  | Frame (f, inner) ->
      let h = mix_int (mix_int h 6) f.f_src in
      let h = mix_int h f.f_seq in
      digest (mix_int h f.f_check) inner
  | Ack (src, cum) -> mix_int (mix_int (mix_int h 7) src) cum

let checksum p = Int64.to_int (Int64.logand (digest fnv_basis p) 0x3FFFFFFFL)

let rec describe = function
  | Eager (e, b) ->
      Printf.sprintf "eager %d->%d tag=%d %dB" e.e_src e.e_dst e.e_tag
        (Bytes.length b)
  | Rts (e, id) ->
      Printf.sprintf "rts %d->%d tag=%d %dB id=%d" e.e_src e.e_dst e.e_tag
        e.e_bytes id
  | Cts id -> Printf.sprintf "cts id=%d" id
  | Rndv_data (id, b) ->
      Printf.sprintf "data id=%d %dB" id (Bytes.length b)
  | Nak (id, msg) -> Printf.sprintf "nak id=%d (%s)" id msg
  | Frame (f, inner) ->
      Printf.sprintf "frame src=%d seq=%d [%s]" f.f_src f.f_seq
        (describe inner)
  | Ack (src, cum) -> Printf.sprintf "ack src=%d cum=%d" src cum
