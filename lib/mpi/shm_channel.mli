(** Shared-memory channel (MPICH2's "shm"): low latency, high bandwidth.

    [?topo] does not change pricing (shared memory is one tier) but
    feeds the per-tier traffic counters. *)

val create : ?topo:Simtime.Topology.t -> Simtime.Env.t -> n_ranks:int -> Channel.t

val create_parallel :
  env_for:(int -> Simtime.Env.t) -> n_ranks:int -> Channel.t
(** Sharded variant for parallel ({!Fiber.Parallel}) execution: one
    {!Spsc} ring per (src, dst) pair, so cross-domain sends never share a
    lock (DESIGN.md §15). No virtual arrival gating — wall-clock replaces
    the latency model — but the sender still charges the modelled CPU
    cost and counts traffic into [env_for src], its own domain's
    environment, keeping per-domain accounting mergeable. Sends wake the
    destination's domain via {!Fiber.notify_fiber}. [add_rank] (dynamic
    process management) is rejected. *)
