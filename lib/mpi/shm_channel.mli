(** Shared-memory channel (MPICH2's "shm"): low latency, high bandwidth.

    [?topo] does not change pricing (shared memory is one tier) but
    feeds the per-tier traffic counters. *)

val create : ?topo:Simtime.Topology.t -> Simtime.Env.t -> n_ranks:int -> Channel.t
