module Key = Simtime.Stats.Key

exception Mpi_error of string

type send_mode = Standard | Synchronous

type pending_send = {
  ps_source : Buffer_view.t;
  ps_dst : int;
  ps_req : Request.t;
}

type pending_recv = {
  pr_sink : Buffer_view.t;
  pr_env : Packet.envelope;
  pr_req : Request.t;
}

type t = {
  rank : int;
  env : Simtime.Env.t;
  chan : Channel.t;
  queues : Queues.t;
  pending_sends : (int, pending_send) Hashtbl.t;
  pending_recvs : (int, pending_recv) Hashtbl.t;
  mutable seq : int;
  mutable outstanding : int;
  fresh_id : unit -> int;
  (* Progress hooks: the schedule engine (Coll_sched) registers one
     closure per in-flight collective; [progress] invokes them after
     draining the channel so schedules advance on every pump, exactly as
     MPICH's progress engine drives MPIR_Sched. A hook returns true if
     it made progress (started or retired a step). *)
  mutable hooks : (int * (unit -> bool)) list;
  mutable next_hook : int;
  (* Observer invoked at every match decision (posted receive meets
     message), with the matched envelope — the hook the schedule
     explorer's non-overtaking invariant builds on. *)
  mutable on_match : (Packet.envelope -> unit) option;
}

let create env chan ~rank ~fresh_id =
  {
    rank;
    env;
    chan;
    queues = Queues.create env;
    pending_sends = Hashtbl.create 8;
    pending_recvs = Hashtbl.create 8;
    seq = 0;
    outstanding = 0;
    fresh_id;
    hooks = [];
    next_hook = 0;
    on_match = None;
  }

let rank t = t.rank
let env t = t.env
let queues t = t.queues
let fresh_req_id t = t.fresh_id ()
let outstanding t = t.outstanding

let pending_rendezvous t =
  Hashtbl.length t.pending_sends + Hashtbl.length t.pending_recvs

let charge_request t =
  Simtime.Env.charge t.env t.env.Simtime.Env.cost.request_ns

let track t req =
  t.outstanding <- t.outstanding + 1;
  Request.on_complete req (fun () -> t.outstanding <- t.outstanding - 1);
  req

let track_request t req = ignore (track t req)

let add_progress_hook t fn =
  let id = t.next_hook in
  t.next_hook <- id + 1;
  t.hooks <- (id, fn) :: t.hooks;
  id

let remove_progress_hook t id =
  t.hooks <- List.filter (fun (i, _) -> i <> id) t.hooks

let progress_hook_count t = List.length t.hooks
let set_match_observer t obs = t.on_match <- obs

let notify_match t envelope =
  match t.on_match with Some f -> f envelope | None -> ()

let fits_error (env : Packet.envelope) (sink : Buffer_view.t) =
  if env.Packet.e_bytes > sink.Buffer_view.len then
    Some
      (Printf.sprintf
         "message truncated: %d bytes arriving into a %d-byte buffer"
         env.Packet.e_bytes sink.Buffer_view.len)
  else None

let status_of (env : Packet.envelope) =
  {
    Status.source = env.Packet.e_src;
    tag = env.Packet.e_tag;
    bytes = env.Packet.e_bytes;
  }

let isend t ~dst ~tag ~context ?(mode = Standard) source =
  let t0 = Simtime.Env.now_ns t.env in
  charge_request t;
  let req = Request.create ~id:(t.fresh_id ()) Request.Send_req in
  let len = Buffer_view.length source in
  t.seq <- t.seq + 1;
  let envelope =
    {
      Packet.e_src = t.rank;
      e_dst = dst;
      e_tag = tag;
      e_context = context;
      e_bytes = len;
      e_seq = t.seq;
    }
  in
  let eager =
    match mode with
    | Standard -> len <= t.env.Simtime.Env.cost.eager_threshold_bytes
    | Synchronous -> false
  in
  Trace.record t.env ~rank:t.rank
    ~op:(if eager then "isend" else "isend/rndv")
    ~detail:(Printf.sprintf "dst=%d tag=%d %dB" dst tag len);
  if eager then begin
    Trace.span_begin t.env ~rank:t.rank ~cat:"ch3" ~name:"eager"
      ~args:[ ("dst", string_of_int dst); ("bytes", string_of_int len) ]
      ();
    let data = Bytes.create len in
    source.Buffer_view.blit_to ~pos:0 ~dst:data ~dst_off:0 ~len;
    t.chan.Channel.send ~src:t.rank ~dst (Packet.Eager (envelope, data));
    Simtime.Env.count t.env Key.eager_sends;
    Request.complete req None;
    let dt = Simtime.Env.now_ns t.env -. t0 in
    Simtime.Env.observe t.env Key.h_ch3_send dt;
    Simtime.Env.observe t.env Key.h_ch3_eager dt;
    Trace.span_end t.env ~rank:t.rank ~cat:"ch3" ~name:"eager" ();
    req
  end
  else begin
    let id = t.fresh_id () in
    Hashtbl.replace t.pending_sends id
      { ps_source = source; ps_dst = dst; ps_req = req };
    Trace.span_begin t.env ~id ~rank:t.rank ~cat:"ch3" ~name:"rndv"
      ~args:[ ("dst", string_of_int dst); ("bytes", string_of_int len) ]
      ();
    (* Sender-side cost of a rendezvous transfer: RTS to local
       completion (data handed to the wire after CTS, or failure). *)
    Request.on_complete req (fun () ->
        let dt = Simtime.Env.now_ns t.env -. t0 in
        Simtime.Env.observe t.env Key.h_ch3_send dt;
        Simtime.Env.observe t.env Key.h_ch3_rndv dt;
        Trace.span_end t.env ~id ~rank:t.rank ~cat:"ch3" ~name:"rndv" ());
    t.chan.Channel.send ~src:t.rank ~dst (Packet.Rts (envelope, id));
    Simtime.Env.count t.env Key.rndv_sends;
    ignore (track t req);
    req
  end

let accept_rts t (envelope : Packet.envelope) rndv_id (sink : Buffer_view.t)
    req =
  match fits_error envelope sink with
  | Some msg ->
      (* Refuse the transfer instead of leaking it: fail the local
         receive and NAK the sender so its pending_sends entry (and
         request) are released too. *)
      Request.fail req msg;
      t.chan.Channel.send ~src:t.rank ~dst:envelope.Packet.e_src
        (Packet.Nak (rndv_id, msg))
  | None ->
      Hashtbl.replace t.pending_recvs rndv_id
        { pr_sink = sink; pr_env = envelope; pr_req = req };
      t.chan.Channel.send ~src:t.rank ~dst:envelope.Packet.e_src
        (Packet.Cts rndv_id)

let deliver_eager t (envelope : Packet.envelope) data
    (sink : Buffer_view.t) req ~buffered =
  match fits_error envelope sink with
  | Some msg -> Request.fail req msg
  | None ->
      let len = Bytes.length data in
      sink.Buffer_view.blit_from ~pos:0 ~src:data ~src_off:0 ~len;
      (* A message that sat in the unexpected queue costs one extra copy; a
         matched receive lands directly in the user buffer. *)
      if buffered then
        Simtime.Env.charge_per_byte t.env
          t.env.Simtime.Env.cost.memcpy_ns_per_byte len;
      Request.complete req (Some (status_of envelope))

let irecv t ~src ~tag ~context sink =
  charge_request t;
  Trace.record t.env ~rank:t.rank ~op:"irecv"
    ~detail:(Printf.sprintf "src=%d tag=%d %dB" src tag
               (Buffer_view.length sink));
  let req = Request.create ~id:(t.fresh_id ()) Request.Recv_req in
  let pattern =
    { Tag_match.m_src = src; m_tag = tag; m_context = context }
  in
  (match Queues.take_unexpected t.queues pattern with
  | Some (Queues.U_eager (envelope, data)) ->
      notify_match t envelope;
      deliver_eager t envelope data sink req ~buffered:true
  | Some (Queues.U_rts (envelope, rndv_id)) ->
      notify_match t envelope;
      accept_rts t envelope rndv_id sink req;
      ignore (track t req)
  | None ->
      Queues.post_recv t.queues
        { Queues.p_pattern = pattern; p_sink = sink; p_req = req };
      ignore (track t req));
  req

(* A control packet that no longer matches live rendezvous state is a
   stale duplicate (a retransmission whose original already landed, or a
   NAK/CTS crossing on the wire). On a lossy transport these are normal;
   they are counted and dropped, never fatal. *)
let stale_drop t what detail =
  Simtime.Env.count t.env Key.dup_drops;
  Trace.record t.env ~rank:t.rank ~op:"drop"
    ~detail:(Printf.sprintf "stale %s: %s" what detail)

let handle_packet t packet =
  Trace.record t.env ~rank:t.rank
    ~op:
      (match packet with
      | Packet.Eager _ -> "eager"
      | Packet.Rts _ -> "rts"
      | Packet.Cts _ -> "cts"
      | Packet.Rndv_data _ -> "data"
      | Packet.Nak _ -> "nak"
      | Packet.Frame _ -> "frame"
      | Packet.Ack _ -> "ack")
    ~detail:(Packet.describe packet);
  match packet with
  | Packet.Eager (envelope, data) -> (
      match Queues.take_posted t.queues envelope with
      | Some p ->
          notify_match t envelope;
          deliver_eager t envelope data p.Queues.p_sink p.Queues.p_req
            ~buffered:false
      | None ->
          Queues.add_unexpected t.queues (Queues.U_eager (envelope, data)))
  | Packet.Rts (envelope, rndv_id) -> (
      match Queues.take_posted t.queues envelope with
      | Some p ->
          notify_match t envelope;
          accept_rts t envelope rndv_id p.Queues.p_sink p.Queues.p_req
      | None ->
          Queues.add_unexpected t.queues (Queues.U_rts (envelope, rndv_id)))
  | Packet.Cts rndv_id -> (
      match Hashtbl.find_opt t.pending_sends rndv_id with
      | None -> stale_drop t "cts" (Packet.describe packet)
      | Some ps ->
          Hashtbl.remove t.pending_sends rndv_id;
          let len = Buffer_view.length ps.ps_source in
          let data = Bytes.create len in
          ps.ps_source.Buffer_view.blit_to ~pos:0 ~dst:data ~dst_off:0 ~len;
          t.chan.Channel.send ~src:t.rank ~dst:ps.ps_dst
            (Packet.Rndv_data (rndv_id, data));
          Request.complete ps.ps_req None)
  | Packet.Rndv_data (rndv_id, data) -> (
      match Hashtbl.find_opt t.pending_recvs rndv_id with
      | None -> stale_drop t "data" (Packet.describe packet)
      | Some pr ->
          Hashtbl.remove t.pending_recvs rndv_id;
          let len = Bytes.length data in
          pr.pr_sink.Buffer_view.blit_from ~pos:0 ~src:data ~src_off:0 ~len;
          Request.complete pr.pr_req (Some (status_of pr.pr_env)))
  | Packet.Nak (rndv_id, msg) -> (
      match Hashtbl.find_opt t.pending_sends rndv_id with
      | None -> stale_drop t "nak" (Packet.describe packet)
      | Some ps ->
          Hashtbl.remove t.pending_sends rndv_id;
          Request.fail ps.ps_req ("rendezvous refused by receiver: " ^ msg))
  | Packet.Frame _ | Packet.Ack _ ->
      (* Transport-layer framing leaking past a missing Reliable layer:
         not addressed to the device; drop rather than crash. *)
      stale_drop t "transport frame" (Packet.describe packet)

let progress t =
  Simtime.Env.charge t.env t.env.Simtime.Env.cost.progress_poll_ns;
  let did = ref false in
  let rec drain () =
    match t.chan.Channel.poll ~rank:t.rank with
    | Some packet ->
        did := true;
        handle_packet t packet;
        drain ()
    | None -> ()
  in
  drain ();
  (* Snapshot before invoking: a hook that completes its schedule removes
     itself (and completion callbacks may start new collectives, adding
     hooks) while we iterate. *)
  let hooks = t.hooks in
  List.iter (fun (_, fn) -> if fn () then did := true) hooks;
  !did
