module Key = Simtime.Stats.Key

exception Mpi_error of string

type send_mode = Standard | Synchronous

type pending_send = {
  ps_source : Buffer_view.t;
  ps_dst : int;
  ps_ctx : int;
  ps_req : Request.t;
}

type pending_recv = {
  pr_sink : Buffer_view.t;
  pr_env : Packet.envelope;
  pr_req : Request.t;
}

type t = {
  rank : int;
  env : Simtime.Env.t;
  chan : Channel.t;
  queues : Queues.t;
  pending_sends : (int, pending_send) Hashtbl.t;
  pending_recvs : (int, pending_recv) Hashtbl.t;
  mutable seq : int;
  mutable outstanding : int;
  fresh_id : unit -> int;
  (* Progress hooks: the schedule engine (Coll_sched) registers one
     closure per in-flight collective; [progress] invokes them after
     draining the channel so schedules advance on every pump, exactly as
     MPICH's progress engine drives MPIR_Sched. A hook returns true if
     it made progress (started or retired a step). Hooks may carry their
     schedule's context id and an abort callback so failure teardown and
     communicator revocation can cancel in-flight schedules cleanly. *)
  mutable hooks : hook list;
  mutable next_hook : int;
  (* Observer invoked at every match decision (posted receive meets
     message), with the matched envelope — the hook the schedule
     explorer's non-overtaking invariant builds on. *)
  mutable on_match : (Packet.envelope -> unit) option;
  (* Failure-layer plumbing (all None in a world without kills):
     [tick] runs at the head of every progress pump (heartbeat + sweep);
     [revoked] says whether a context id was revoked; [dead] whether a
     world rank was declared dead. None of them may raise. *)
  mutable tick : (unit -> unit) option;
  mutable revoked : (int -> bool) option;
  mutable dead : (int -> bool) option;
  (* Collective-failure flood: when one rank's in-flight schedule fails
     with a process failure, ULFM requires the error to surface at every
     rank of the collective — survivors whose own steps only touch live
     peers would otherwise wait forever on the rank that bailed. The
     world installs a closure here that aborts the context on all
     devices. *)
  mutable coll_failed : (int -> Request.reason -> unit) option;
}

and hook = {
  h_id : int;
  h_fn : unit -> bool;
  h_ctx : int option;
  h_abort : (Request.reason -> unit) option;
}

let create env chan ~rank ~fresh_id =
  {
    rank;
    env;
    chan;
    queues = Queues.create env;
    pending_sends = Hashtbl.create 8;
    pending_recvs = Hashtbl.create 8;
    seq = 0;
    outstanding = 0;
    fresh_id;
    hooks = [];
    next_hook = 0;
    on_match = None;
    tick = None;
    revoked = None;
    dead = None;
    coll_failed = None;
  }

let rank t = t.rank
let env t = t.env
let queues t = t.queues
let fresh_req_id t = t.fresh_id ()
let outstanding t = t.outstanding

let pending_rendezvous t =
  Hashtbl.length t.pending_sends + Hashtbl.length t.pending_recvs

let charge_request t =
  Simtime.Env.charge t.env t.env.Simtime.Env.cost.request_ns

let track t req =
  t.outstanding <- t.outstanding + 1;
  Request.on_complete req (fun () -> t.outstanding <- t.outstanding - 1);
  req

let track_request t req = ignore (track t req)

let add_progress_hook ?ctx ?on_abort t fn =
  let id = t.next_hook in
  t.next_hook <- id + 1;
  t.hooks <- { h_id = id; h_fn = fn; h_ctx = ctx; h_abort = on_abort } :: t.hooks;
  id

let remove_progress_hook t id =
  t.hooks <- List.filter (fun h -> h.h_id <> id) t.hooks

let set_tick t f = t.tick <- f
let set_revoked_check t f = t.revoked <- f
let set_dead_check t f = t.dead <- f
let set_coll_failed t f = t.coll_failed <- f

let notify_coll_failed t ~ctx reason =
  match t.coll_failed with Some f -> f ctx reason | None -> ()
let ctx_revoked t ctx = match t.revoked with Some f -> f ctx | None -> false
let peer_dead t peer = match t.dead with Some f -> f peer | None -> false

let progress_hook_count t = List.length t.hooks
let set_match_observer t obs = t.on_match <- obs

let notify_match t envelope =
  match t.on_match with Some f -> f envelope | None -> ()

let fits_error (env : Packet.envelope) (sink : Buffer_view.t) =
  if env.Packet.e_bytes > sink.Buffer_view.len then
    Some
      (Printf.sprintf
         "message truncated: %d bytes arriving into a %d-byte buffer"
         env.Packet.e_bytes sink.Buffer_view.len)
  else None

let status_of (env : Packet.envelope) =
  {
    Status.source = env.Packet.e_src;
    tag = env.Packet.e_tag;
    bytes = env.Packet.e_bytes;
  }

let isend t ~dst ~tag ~context ?(mode = Standard) source =
  let t0 = Simtime.Env.now_ns t.env in
  charge_request t;
  let req = Request.create ~id:(t.fresh_id ()) Request.Send_req in
  if ctx_revoked t context then begin
    Request.fail_reason req (Request.Comm_revoked context);
    req
  end
  else if peer_dead t dst then begin
    (* ULFM semantics: an operation naming a failed peer completes with
       MPI_ERR_PROC_FAILED instead of hanging. *)
    Request.fail_reason req (Request.Proc_failed dst);
    req
  end
  else begin
  let len = Buffer_view.length source in
  t.seq <- t.seq + 1;
  let envelope =
    {
      Packet.e_src = t.rank;
      e_dst = dst;
      e_tag = tag;
      e_context = context;
      e_bytes = len;
      e_seq = t.seq;
    }
  in
  let eager =
    match mode with
    | Standard -> len <= t.env.Simtime.Env.cost.eager_threshold_bytes
    | Synchronous -> false
  in
  Trace.record t.env ~rank:t.rank
    ~op:(if eager then "isend" else "isend/rndv")
    ~detail:(Printf.sprintf "dst=%d tag=%d %dB" dst tag len);
  if eager then begin
    Trace.span_begin t.env ~rank:t.rank ~cat:"ch3" ~name:"eager"
      ~args:[ ("dst", string_of_int dst); ("bytes", string_of_int len) ]
      ();
    let data = Bytes.create len in
    source.Buffer_view.blit_to ~pos:0 ~dst:data ~dst_off:0 ~len;
    t.chan.Channel.send ~src:t.rank ~dst (Packet.Eager (envelope, data));
    Simtime.Env.count t.env Key.eager_sends;
    Request.complete req None;
    let dt = Simtime.Env.now_ns t.env -. t0 in
    Simtime.Env.observe t.env Key.h_ch3_send dt;
    Simtime.Env.observe t.env Key.h_ch3_eager dt;
    Trace.span_end t.env ~rank:t.rank ~cat:"ch3" ~name:"eager" ();
    req
  end
  else begin
    let id = t.fresh_id () in
    Hashtbl.replace t.pending_sends id
      { ps_source = source; ps_dst = dst; ps_ctx = context; ps_req = req };
    Trace.span_begin t.env ~id ~rank:t.rank ~cat:"ch3" ~name:"rndv"
      ~args:[ ("dst", string_of_int dst); ("bytes", string_of_int len) ]
      ();
    (* Sender-side cost of a rendezvous transfer: RTS to local
       completion (data handed to the wire after CTS, or failure). *)
    Request.on_complete req (fun () ->
        let dt = Simtime.Env.now_ns t.env -. t0 in
        Simtime.Env.observe t.env Key.h_ch3_send dt;
        Simtime.Env.observe t.env Key.h_ch3_rndv dt;
        Trace.span_end t.env ~id ~rank:t.rank ~cat:"ch3" ~name:"rndv" ());
    t.chan.Channel.send ~src:t.rank ~dst (Packet.Rts (envelope, id));
    Simtime.Env.count t.env Key.rndv_sends;
    ignore (track t req);
    req
  end
  end

let accept_rts t (envelope : Packet.envelope) rndv_id (sink : Buffer_view.t)
    req =
  match fits_error envelope sink with
  | Some msg ->
      (* Refuse the transfer instead of leaking it: fail the local
         receive and NAK the sender so its pending_sends entry (and
         request) are released too. *)
      Request.fail req msg;
      t.chan.Channel.send ~src:t.rank ~dst:envelope.Packet.e_src
        (Packet.Nak (rndv_id, msg))
  | None ->
      Hashtbl.replace t.pending_recvs rndv_id
        { pr_sink = sink; pr_env = envelope; pr_req = req };
      t.chan.Channel.send ~src:t.rank ~dst:envelope.Packet.e_src
        (Packet.Cts rndv_id)

let deliver_eager t (envelope : Packet.envelope) data
    (sink : Buffer_view.t) req ~buffered =
  match fits_error envelope sink with
  | Some msg -> Request.fail req msg
  | None ->
      let len = Bytes.length data in
      sink.Buffer_view.blit_from ~pos:0 ~src:data ~src_off:0 ~len;
      (* A message that sat in the unexpected queue costs one extra copy; a
         matched receive lands directly in the user buffer. *)
      if buffered then
        Simtime.Env.charge_per_byte t.env
          t.env.Simtime.Env.cost.memcpy_ns_per_byte len;
      Request.complete req (Some (status_of envelope))

let irecv t ~src ~tag ~context sink =
  charge_request t;
  Trace.record t.env ~rank:t.rank ~op:"irecv"
    ~detail:(Printf.sprintf "src=%d tag=%d %dB" src tag
               (Buffer_view.length sink));
  let req = Request.create ~id:(t.fresh_id ()) Request.Recv_req in
  if ctx_revoked t context then begin
    Request.fail_reason req (Request.Comm_revoked context);
    req
  end
  else if src <> Tag_match.any_source && peer_dead t src then begin
    Request.fail_reason req (Request.Proc_failed src);
    req
  end
  else begin
  let pattern =
    { Tag_match.m_src = src; m_tag = tag; m_context = context }
  in
  (match Queues.take_unexpected t.queues pattern with
  | Some (Queues.U_eager (envelope, data)) ->
      notify_match t envelope;
      deliver_eager t envelope data sink req ~buffered:true
  | Some (Queues.U_rts (envelope, rndv_id)) ->
      notify_match t envelope;
      accept_rts t envelope rndv_id sink req;
      ignore (track t req)
  | None ->
      Queues.post_recv t.queues
        { Queues.p_pattern = pattern; p_sink = sink; p_req = req };
      ignore (track t req));
  req
  end

(* A control packet that no longer matches live rendezvous state is a
   stale duplicate (a retransmission whose original already landed, or a
   NAK/CTS crossing on the wire). On a lossy transport these are normal;
   they are counted and dropped, never fatal. *)
let stale_drop t what detail =
  Simtime.Env.count t.env Key.dup_drops;
  Trace.record t.env ~rank:t.rank ~op:"drop"
    ~detail:(Printf.sprintf "stale %s: %s" what detail)

let handle_packet t packet =
  Trace.record t.env ~rank:t.rank
    ~op:
      (match packet with
      | Packet.Eager _ -> "eager"
      | Packet.Rts _ -> "rts"
      | Packet.Cts _ -> "cts"
      | Packet.Rndv_data _ -> "data"
      | Packet.Nak _ -> "nak"
      | Packet.Frame _ -> "frame"
      | Packet.Ack _ -> "ack")
    ~detail:(Packet.describe packet);
  match packet with
  | Packet.Eager (envelope, _)
    when ctx_revoked t envelope.Packet.e_context ->
      stale_drop t "eager on revoked comm" (Packet.describe packet)
  | Packet.(Eager (envelope, _) | Rts (envelope, _))
    when peer_dead t envelope.Packet.e_src ->
      (* In-flight traffic from a rank declared dead while the packet was
         on the wire: the failure model discards it (endpoints silent). *)
      stale_drop t "message from dead rank" (Packet.describe packet)
  | Packet.Rts (envelope, rndv_id)
    when ctx_revoked t envelope.Packet.e_context ->
      (* Refuse the transfer so the sender releases its rendezvous state
         (its own request was already failed when it aborted the
         context; the NAK covers senders outside the revoking world). *)
      stale_drop t "rts on revoked comm" (Packet.describe packet);
      t.chan.Channel.send ~src:t.rank ~dst:envelope.Packet.e_src
        (Packet.Nak (rndv_id, "communicator revoked"))
  | Packet.Eager (envelope, data) -> (
      match Queues.take_posted t.queues envelope with
      | Some p ->
          notify_match t envelope;
          deliver_eager t envelope data p.Queues.p_sink p.Queues.p_req
            ~buffered:false
      | None ->
          Queues.add_unexpected t.queues (Queues.U_eager (envelope, data)))
  | Packet.Rts (envelope, rndv_id) -> (
      match Queues.take_posted t.queues envelope with
      | Some p ->
          notify_match t envelope;
          accept_rts t envelope rndv_id p.Queues.p_sink p.Queues.p_req
      | None ->
          Queues.add_unexpected t.queues (Queues.U_rts (envelope, rndv_id)))
  | Packet.Cts rndv_id -> (
      match Hashtbl.find_opt t.pending_sends rndv_id with
      | None -> stale_drop t "cts" (Packet.describe packet)
      | Some ps ->
          Hashtbl.remove t.pending_sends rndv_id;
          let len = Buffer_view.length ps.ps_source in
          let data = Bytes.create len in
          ps.ps_source.Buffer_view.blit_to ~pos:0 ~dst:data ~dst_off:0 ~len;
          t.chan.Channel.send ~src:t.rank ~dst:ps.ps_dst
            (Packet.Rndv_data (rndv_id, data));
          Request.complete ps.ps_req None)
  | Packet.Rndv_data (rndv_id, data) -> (
      match Hashtbl.find_opt t.pending_recvs rndv_id with
      | None -> stale_drop t "data" (Packet.describe packet)
      | Some pr ->
          Hashtbl.remove t.pending_recvs rndv_id;
          let len = Bytes.length data in
          pr.pr_sink.Buffer_view.blit_from ~pos:0 ~src:data ~src_off:0 ~len;
          Request.complete pr.pr_req (Some (status_of pr.pr_env)))
  | Packet.Nak (rndv_id, msg) -> (
      match Hashtbl.find_opt t.pending_sends rndv_id with
      | None -> stale_drop t "nak" (Packet.describe packet)
      | Some ps ->
          Hashtbl.remove t.pending_sends rndv_id;
          Request.fail ps.ps_req ("rendezvous refused by receiver: " ^ msg))
  | Packet.Frame _ | Packet.Ack _ ->
      (* Transport-layer framing leaking past a missing Reliable layer:
         not addressed to the device; drop rather than crash. *)
      stale_drop t "transport frame" (Packet.describe packet)

let progress t =
  Simtime.Env.charge t.env t.env.Simtime.Env.cost.progress_poll_ns;
  (* Failure detector first: beat this rank, sweep the others. Pending
     declarations may fail requests, which the hooks below observe. *)
  (match t.tick with Some f -> f () | None -> ());
  let did = ref false in
  let rec drain () =
    match t.chan.Channel.poll ~rank:t.rank with
    | Some packet ->
        did := true;
        handle_packet t packet;
        drain ()
    | None -> ()
  in
  drain ();
  (* Snapshot before invoking: a hook that completes its schedule removes
     itself (and completion callbacks may start new collectives, adding
     hooks) while we iterate. *)
  let hooks = t.hooks in
  List.iter (fun h -> if h.h_fn () then did := true) hooks;
  !did

(* ------------------------------------------------------------------ *)
(* Failure teardown and communicator revocation                        *)
(* ------------------------------------------------------------------ *)

let abort_hooks t ~keep ~reason =
  let gone, kept = List.partition (fun h -> not (keep h)) t.hooks in
  (* Drop before aborting: an abort callback typically finishes its
     schedule, which calls remove_progress_hook — already gone is fine. *)
  t.hooks <- kept;
  List.iter
    (fun h -> match h.h_abort with Some f -> f reason | None -> ())
    gone

let fail_pending t ~keep_send ~keep_recv ~reason =
  let failed_sends =
    Hashtbl.fold
      (fun id ps acc -> if keep_send ps then acc else (id, ps) :: acc)
      t.pending_sends []
  in
  List.iter
    (fun (id, ps) ->
      Hashtbl.remove t.pending_sends id;
      Request.fail_reason ps.ps_req reason)
    failed_sends;
  let failed_recvs =
    Hashtbl.fold
      (fun id pr acc -> if keep_recv pr then acc else (id, pr) :: acc)
      t.pending_recvs []
  in
  List.iter
    (fun (id, pr) ->
      Hashtbl.remove t.pending_recvs id;
      Request.fail_reason pr.pr_req reason)
    failed_recvs

(* A peer was declared dead: everything on this device that can only be
   satisfied by that peer completes with [Proc_failed]. Receives from
   any-source stay posted (a survivor can still match them); unexpected
   messages the dead rank got onto the wire before dying are discarded —
   the fail-stop model's "endpoints go silent". *)
let fail_peer t ~peer =
  let reason = Request.Proc_failed peer in
  fail_pending t
    ~keep_send:(fun ps -> ps.ps_dst <> peer)
    ~keep_recv:(fun pr -> pr.pr_env.Packet.e_src <> peer)
    ~reason;
  Queues.remove_posted t.queues ~pred:(fun p ->
      p.Queues.p_pattern.Tag_match.m_src = peer)
  |> List.iter (fun p -> Request.fail_reason p.Queues.p_req reason);
  Queues.remove_unexpected t.queues ~pred:(fun u ->
      (match u with
       | Queues.U_eager (e, _) | Queues.U_rts (e, _) ->
           e.Packet.e_src = peer))
  |> List.iter (fun _ -> stale_drop t "message from dead rank" "purged")

(* Revocation: cancel every operation on the context, including in-flight
   collective schedules (their abort hook fails the generalized request),
   so no pin, hook or rendezvous state leaks. *)
let abort_context t ~ctx ~reason =
  fail_pending t
    ~keep_send:(fun ps -> ps.ps_ctx <> ctx)
    ~keep_recv:(fun pr -> pr.pr_env.Packet.e_context <> ctx)
    ~reason;
  Queues.remove_posted t.queues ~pred:(fun p ->
      p.Queues.p_pattern.Tag_match.m_context = ctx)
  |> List.iter (fun p -> Request.fail_reason p.Queues.p_req reason);
  Queues.remove_unexpected t.queues ~pred:(fun u ->
      (match u with
       | Queues.U_eager (e, _) | Queues.U_rts (e, _) ->
           e.Packet.e_context = ctx))
  |> List.iter (function
       | Queues.U_rts (e, rndv_id) ->
           (* Release the sender's rendezvous state. *)
           t.chan.Channel.send ~src:t.rank ~dst:e.Packet.e_src
             (Packet.Nak (rndv_id, "communicator revoked"))
       | Queues.U_eager _ -> ());
  abort_hooks t ~keep:(fun h -> h.h_ctx <> Some ctx) ~reason

(* Fail-stop teardown of this device's own rank: every local endpoint
   dies with the fiber. *)
let purge t ~reason =
  fail_pending t ~keep_send:(fun _ -> false) ~keep_recv:(fun _ -> false)
    ~reason;
  Queues.remove_posted t.queues ~pred:(fun _ -> true)
  |> List.iter (fun p -> Request.fail_reason p.Queues.p_req reason);
  ignore (Queues.remove_unexpected t.queues ~pred:(fun _ -> true));
  abort_hooks t ~keep:(fun _ -> false) ~reason

(* ------------------------------------------------------------------ *)
(* Diagnostics                                                         *)
(* ------------------------------------------------------------------ *)

let describe_pending t =
  let lines = ref [] in
  let add fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
  let show_reason req =
    match Request.error req with Some m -> " FAILED: " ^ m | None -> ""
  in
  Queues.iter_posted t.queues (fun p ->
      let pat = p.Queues.p_pattern in
      add "rank %d: recv req#%d src=%d tag=%d ctx=%d (posted)%s" t.rank
        (Request.id p.Queues.p_req)
        pat.Tag_match.m_src pat.Tag_match.m_tag pat.Tag_match.m_context
        (show_reason p.Queues.p_req));
  Hashtbl.iter
    (fun id ps ->
      add "rank %d: rndv-send req#%d dst=%d ctx=%d (rndv %d awaiting CTS)%s"
        t.rank (Request.id ps.ps_req) ps.ps_dst ps.ps_ctx id
        (show_reason ps.ps_req))
    t.pending_sends;
  Hashtbl.iter
    (fun id pr ->
      add "rank %d: rndv-recv req#%d src=%d tag=%d ctx=%d (rndv %d awaiting \
           DATA)%s"
        t.rank (Request.id pr.pr_req) pr.pr_env.Packet.e_src
        pr.pr_env.Packet.e_tag pr.pr_env.Packet.e_context id
        (show_reason pr.pr_req))
    t.pending_recvs;
  let unexpected = Queues.unexpected_length t.queues in
  if unexpected > 0 then
    add "rank %d: %d unexpected message(s) never received" t.rank unexpected;
  List.iter
    (fun h ->
      add "rank %d: progress hook #%d%s (in-flight schedule)" t.rank h.h_id
        (match h.h_ctx with
        | Some c -> Printf.sprintf " ctx=%d" c
        | None -> ""))
    t.hooks;
  List.rev !lines
