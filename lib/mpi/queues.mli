(** The device's two matching queues, as in MPICH2's CH3:

    - the {e posted-receive queue}: receives waiting for a message;
    - the {e unexpected-message queue}: messages that arrived before any
      matching receive was posted.

    Both are searched in arrival order, preserving MPI's non-overtaking
    guarantee; every element inspected during a search charges the
    cost-model's [queue_probe_ns]. Appending is amortized O(1) (a
    two-list FIFO), so a backlog of n unmatched messages costs O(n) to
    build, not O(n^2). *)

type posted = {
  p_pattern : Tag_match.pattern;
  p_sink : Buffer_view.t;
  p_req : Request.t;
}

type unexpected =
  | U_eager of Packet.envelope * Bytes.t
  | U_rts of Packet.envelope * int  (** rendezvous id *)

type t

val create : Simtime.Env.t -> t
val post_recv : t -> posted -> unit
val take_posted : t -> Packet.envelope -> posted option
(** First posted receive matching the envelope, removed from the queue. *)

val add_unexpected : t -> unexpected -> unit
val take_unexpected : t -> Tag_match.pattern -> unexpected option
(** First unexpected message matching the pattern, removed. *)

val peek_unexpected : t -> Tag_match.pattern -> Packet.envelope option
(** Non-destructive variant ([MPI_Iprobe]). *)

val posted_length : t -> int
val unexpected_length : t -> int

val remove_posted : t -> pred:(posted -> bool) -> posted list
(** Remove (and return, in arrival order) every posted receive matching
    the predicate. Administrative — used by failure teardown and
    communicator revocation — so no [queue_probe_ns] is charged. *)

val remove_unexpected : t -> pred:(unexpected -> bool) -> unexpected list
(** Same, over the unexpected queue. *)

val iter_posted : t -> (posted -> unit) -> unit
(** Visit every posted receive in arrival order (diagnostics). *)

val iter_unexpected : t -> (unexpected -> unit) -> unit
