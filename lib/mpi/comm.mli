(** Communicators: an ordered member group plus isolated context ids.

    Point-to-point traffic uses [ctx]; collectives use [ctx_coll] — the
    MPICH convention of allocating two context ids per communicator so a
    user receive can never match a collective's internal message.

    Membership is a {e descriptor}: identity communicators (the world,
    contiguous shards, strided slices — any arithmetic progression of
    world ranks) are stored as O(1) [start]/[step]/[count] triples, so
    per-rank membership state is O(1) no matter the world size. General
    enumerated memberships keep a dense array plus a lazily-built reverse
    index. Both directions of the rank mapping ({!world_rank_of},
    {!comm_rank_of}) are O(1) in either representation. *)

type t = private {
  ctx : int;  (** point-to-point context id *)
  ctx_coll : int;  (** collective context id *)
  membership : membership;
}

and membership = private
  | Range of { start : int; step : int; count : int }
  | Enum of { ranks : int array; index : (int, int) Hashtbl.t Lazy.t }

val make : ctx:int -> members:int array -> t
(** [ctx_coll] is [ctx + 1]; allocate contexts in steps of two. The
    membership is normalized: an arithmetic progression with positive
    step becomes the O(1) range descriptor; anything else stays an
    enumerated array. *)

val range : ctx:int -> ?step:int -> start:int -> count:int -> unit -> t
(** Build an identity communicator directly as a descriptor — no array
    is ever materialized. [step] defaults to 1 (contiguous). *)

val with_ctx : t -> ctx:int -> t
(** Same membership (shared, not copied), fresh context pair. *)

val size : t -> int
val world_rank_of : t -> int -> int
(** O(1). Raises [Invalid_argument] on an out-of-range communicator
    rank. *)

val comm_rank_of : t -> int -> int option
(** Communicator rank of a world rank, if a member. O(1). *)

val members : t -> int array
(** Materialize the membership (a fresh array, in communicator-rank
    order). O(size) — callers on the scale path should prefer
    {!world_rank_of}/{!comm_rank_of}. *)

val range_info : t -> (int * int * int) option
(** [(start, step, count)] when the membership is a range descriptor. *)

val is_range : t -> bool
(** [true] iff the membership is an O(1) range descriptor — the
    no-O(world)-arrays property tests assert for identity comms. *)

val descriptor : t -> string
(** Compact deterministic membership description for context-allocation
    keys: O(1) characters for ranges, the member list otherwise. *)

val pp : Format.formatter -> t -> unit
