(** TCP-socket channel (MPICH2's "sock", the configuration the paper's
    experiments use over localhost).

    With [?topo], same-node endpoints are priced at the shared-memory
    tier — the MPICH "ssm" (sock + shared memory) configuration. *)

val create : ?topo:Simtime.Topology.t -> Simtime.Env.t -> n_ranks:int -> Channel.t
