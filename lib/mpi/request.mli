(** Nonblocking operation handles, mirroring [MPI_Request].

    A request is the unit the paper's conditional pin mechanism watches: the
    garbage collector's mark phase asks [is_complete] to decide whether a
    non-blocking operation still needs its buffer pinned (Section 4.3). *)

type kind =
  | Send_req
  | Recv_req
  | Coll_req
      (** A generalized request backed by a collective schedule
          ({!Coll_sched}): complete once every step of the schedule is
          done. The conditional-pin machinery needs nothing beyond
          [is_complete], so the GC mark phase polls collective requests
          exactly like point-to-point ones. *)

type reason =
  | Error of string  (** categorized protocol error (truncation, NAK, ...) *)
  | Proc_failed of int
      (** the operation touched a peer (world rank) declared dead by the
          failure detector — ULFM's [MPI_ERR_PROC_FAILED] *)
  | Comm_revoked of int
      (** the operation's communicator (context id) was revoked —
          ULFM's [MPI_ERR_REVOKED] *)

val reason_message : reason -> string
(** Human-readable form (what {!error} returns for the reason). *)

type t

val create : id:int -> kind -> t
val id : t -> int
val kind : t -> kind
val is_complete : t -> bool

val complete : t -> Status.t option -> unit
(** Idempotent: completing an already-complete request is a no-op, so a
    duplicated control packet on a lossy transport can never crash the
    progress engine. The first completion (or failure) wins. *)

val fail : t -> string -> unit
(** Complete the request with a categorized error instead of a status
    (e.g. truncation, rendezvous refused). Waiters surface the error as
    {!Ch3.Mpi_error}; callbacks still fire so tracking stays balanced.
    No-op if the request already completed. Equivalent to
    [fail_reason t (Error msg)]. *)

val fail_reason : t -> reason -> unit
(** Complete the request with a typed failure reason. [Proc_failed] and
    [Comm_revoked] are raised by waiters as {!Ft.Proc_failed} /
    {!Ft.Revoked} so recovery code can branch without string matching.
    First completion wins, as with {!complete}. *)

val status : t -> Status.t option
(** [Some] once a receive has completed. *)

val reason : t -> reason option
(** The typed failure reason, if the request was failed. *)

val error : t -> string option
(** The failure reason as a message, if the request was failed. *)

val on_complete : t -> (unit -> unit) -> unit
(** Register a callback fired at completion (buffer-pool recycling, tests).
    Fires immediately if already complete. *)
