(** Nonblocking operation handles, mirroring [MPI_Request].

    A request is the unit the paper's conditional pin mechanism watches: the
    garbage collector's mark phase asks [is_complete] to decide whether a
    non-blocking operation still needs its buffer pinned (Section 4.3). *)

type kind =
  | Send_req
  | Recv_req
  | Coll_req
      (** A generalized request backed by a collective schedule
          ({!Coll_sched}): complete once every step of the schedule is
          done. The conditional-pin machinery needs nothing beyond
          [is_complete], so the GC mark phase polls collective requests
          exactly like point-to-point ones. *)

type t

val create : id:int -> kind -> t
val id : t -> int
val kind : t -> kind
val is_complete : t -> bool

val complete : t -> Status.t option -> unit
(** Idempotent: completing an already-complete request is a no-op, so a
    duplicated control packet on a lossy transport can never crash the
    progress engine. The first completion (or failure) wins. *)

val fail : t -> string -> unit
(** Complete the request with a categorized error instead of a status
    (e.g. truncation, rendezvous refused). Waiters surface the error as
    {!Ch3.Mpi_error}; callbacks still fire so tracking stays balanced.
    No-op if the request already completed. *)

val status : t -> Status.t option
(** [Some] once a receive has completed. *)

val error : t -> string option
(** The failure reason, if the request was completed by {!fail}. *)

val on_complete : t -> (unit -> unit) -> unit
(** Register a callback fired at completion (buffer-pool recycling, tests).
    Fires immediately if already complete. *)
