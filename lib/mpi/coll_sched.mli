(** The collective schedule engine (MPICH's [MPIR_Sched] / TSP analogue).

    A collective algorithm {e compiles} into a per-rank schedule: a DAG
    of device-level steps grouped into rounds, where a round may start
    only once every step of all earlier rounds has completed (the
    [sched_barrier] dependency rule — {!fence}). {!start} posts the
    first round and registers the schedule with the device's progress
    hooks, so every {!Ch3.progress} pump advances it; the returned
    generalized request (kind {!Request.Coll_req}) completes when all
    steps are done. This is what makes collectives nonblocking: the
    caller can compute — or run other collectives on disjoint tag
    ranges — while the schedule trickles forward under the progress
    engine, and the GC mark phase polls the request like any other
    (conditional pins, paper §4.3).

    Step start and finish are recorded to {!Trace} as ["sched/step"] /
    ["sched/step-done"] events (plus ["sched/start"] / ["sched/done"]
    for the schedule itself), so round structure is testable. *)

type builder

val make : Ch3.t -> context:int -> name:string -> builder
(** A schedule over [context] (a communicator's collective context).
    [name] labels trace events and error messages. *)

(** {1 Steps}

    Each call appends one step to the current round. Steps in the same
    round may start in any order and run concurrently. *)

val isend : builder -> dst:int -> tag:int -> Buffer_view.t -> unit
(** [dst] is a {e world} rank. The view is read when the step starts
    (eager) or when the receiver's CTS arrives (rendezvous) — it must
    stay valid until the round completes, which the round rule
    guarantees for the buffer-window algorithms in {!Collectives}. *)

val irecv : builder -> src:int -> tag:int -> Buffer_view.t -> unit
(** [src] is a world rank. *)

val reduce : builder -> ?label:string -> (unit -> unit) -> unit
(** A local operator application, executed when its round starts.
    Not charged virtual time (operator folds never were). *)

val copy : builder -> src:Buffer_view.t -> dst:Buffer_view.t -> unit
(** A local copy between equal-length views, charged at
    [memcpy_ns_per_byte]. *)

val fence : builder -> unit
(** Close the current round: steps added afterwards start only when
    every step before the fence has completed. Collapses empty rounds,
    so defensive fences are free. *)

(** {1 Execution} *)

val start : builder -> Request.t
(** Post the first round, register the schedule with the device progress
    engine, and return its generalized request (kind [Coll_req]); wait
    on it with {!Mpi.wait} / {!Mpi.test} or any of the request-set
    calls. An empty schedule's request is already complete. A failed
    step (truncation, rendezvous refused) fails the request with the
    step's description prepended; unstarted steps are abandoned.
    A builder can be started once. *)

val info : Request.t -> (int * int) option
(** [(rounds, steps)] of a started schedule, looked up by its request —
    the measured shape tests compare against analytic round models
    (e.g. the two-level collectives' [2 log s + 2 log L] structure).
    Entries live in a bounded diagnostic registry and may be evicted. *)
