type kind = Send_req | Recv_req | Coll_req

type reason =
  | Error of string
  | Proc_failed of int
  | Comm_revoked of int

let reason_message = function
  | Error msg -> msg
  | Proc_failed r -> Printf.sprintf "process failure: rank %d is dead" r
  | Comm_revoked ctx -> Printf.sprintf "communicator revoked (ctx %d)" ctx

type t = {
  r_id : int;
  r_kind : kind;
  mutable r_complete : bool;
  mutable r_status : Status.t option;
  mutable r_reason : reason option;
  mutable r_callbacks : (unit -> unit) list;
}

let create ~id kind =
  { r_id = id; r_kind = kind; r_complete = false; r_status = None;
    r_reason = None; r_callbacks = [] }

let id t = t.r_id
let kind t = t.r_kind
let is_complete t = t.r_complete

let fire_callbacks t =
  let cbs = List.rev t.r_callbacks in
  t.r_callbacks <- [];
  List.iter (fun f -> f ()) cbs

(* Idempotent: a retransmitted CTS or DATA packet that slips past duplicate
   suppression must not crash the progress engine; the first completion
   wins. *)
let complete t status =
  if not t.r_complete then begin
    t.r_complete <- true;
    t.r_status <- status;
    fire_callbacks t
  end

let fail_reason t reason =
  if not t.r_complete then begin
    t.r_complete <- true;
    t.r_status <- None;
    t.r_reason <- Some reason;
    fire_callbacks t
  end

let fail t msg = fail_reason t (Error msg)
let status t = t.r_status
let reason t = t.r_reason
let error t = Option.map reason_message t.r_reason

let on_complete t f =
  if t.r_complete then f () else t.r_callbacks <- f :: t.r_callbacks
