module Env = Simtime.Env
module Key = Simtime.Stats.Key

module Cache = struct
  type entry = {
    e_addr : int;
    e_len : int;
    mutable e_pins : int;
    mutable e_stamp : int;
  }

  type t = {
    capacity : int;
    mutable entries : entry list;
    mutable bytes : int;
    mutable tick : int;
    mutable c_hits : int;
    mutable c_misses : int;
    mutable c_evictions : int;
  }

  type outcome = Hit | Miss of { evicted : (int * int) list }

  let create ?capacity_bytes () =
    let capacity =
      match capacity_bytes with
      | Some c -> c
      | None -> Simtime.Cost.native_cpp.rdma_cache_capacity_bytes
    in
    {
      capacity;
      entries = [];
      bytes = 0;
      tick = 0;
      c_hits = 0;
      c_misses = 0;
      c_evictions = 0;
    }

  let covering t ~addr ~len =
    List.find_opt
      (fun e -> e.e_addr <= addr && addr + len <= e.e_addr + e.e_len)
      t.entries

  let touch t e =
    t.tick <- t.tick + 1;
    e.e_stamp <- t.tick

  (* Evict least-recently-used unpinned entries until [need] more bytes fit
     under the capacity, or nothing evictable remains (pinned window
     registrations may legitimately exceed it). *)
  let evict_for t need =
    let rec go acc =
      if t.bytes + need <= t.capacity then List.rev acc
      else
        match List.filter (fun e -> e.e_pins = 0) t.entries with
        | [] -> List.rev acc
        | e0 :: rest ->
            let victim =
              List.fold_left
                (fun a e -> if e.e_stamp < a.e_stamp then e else a)
                e0 rest
            in
            t.entries <- List.filter (fun e -> e != victim) t.entries;
            t.bytes <- t.bytes - victim.e_len;
            t.c_evictions <- t.c_evictions + 1;
            go ((victim.e_addr, victim.e_len) :: acc)
    in
    go []

  let insert t ~addr ~len ~pins =
    let evicted = evict_for t len in
    let e = { e_addr = addr; e_len = len; e_pins = pins; e_stamp = 0 } in
    touch t e;
    t.entries <- e :: t.entries;
    t.bytes <- t.bytes + len;
    Miss { evicted }

  let access t ~addr ~len =
    match covering t ~addr ~len with
    | Some e ->
        t.c_hits <- t.c_hits + 1;
        touch t e;
        Hit
    | None ->
        t.c_misses <- t.c_misses + 1;
        insert t ~addr ~len ~pins:0

  let pin t ~addr ~len =
    match covering t ~addr ~len with
    | Some e ->
        t.c_hits <- t.c_hits + 1;
        touch t e;
        e.e_pins <- e.e_pins + 1;
        Hit
    | None ->
        t.c_misses <- t.c_misses + 1;
        insert t ~addr ~len ~pins:1

  let unpin t ~addr ~len =
    match
      List.find_opt
        (fun e ->
          e.e_pins > 0 && e.e_addr <= addr && addr + len <= e.e_addr + e.e_len)
        t.entries
    with
    | Some e -> e.e_pins <- e.e_pins - 1
    | None ->
        invalid_arg
          (Printf.sprintf "Rdma_channel.Cache.unpin: no pinned entry covers \
                           [%d,+%d)" addr len)

  let mem t ~addr ~len = Option.is_some (covering t ~addr ~len)
  let entries t = List.length t.entries
  let registered_bytes t = t.bytes
  let capacity_bytes t = t.capacity

  let pinned_bytes t =
    List.fold_left
      (fun acc e -> if e.e_pins > 0 then acc + e.e_len else acc)
      0 t.entries

  let hits t = t.c_hits
  let misses t = t.c_misses
  let evictions t = t.c_evictions
end

type t = {
  env : Env.t;
  chan : Channel.t;
  cache_capacity : int;
  caches : (int, Cache.t) Hashtbl.t;
  mutable addrs : (Bytes.t * int) list;
  mutable next_addr : int;
}

let page = 4096

let create ?topo ?capacity_bytes env ~n_ranks =
  let cost = env.Env.cost in
  (* The fabric only carries inter-node traffic; same-node peers pay the
     shared-memory tier, as with the other channels. *)
  let chan =
    Channel.make ~name:"rdma" ~per_msg_ns:cost.rdma_per_msg_ns
      ~per_byte_ns:cost.rdma_write_ns_per_byte ?topo
      ~intra:(cost.shm_per_msg_ns, cost.shm_ns_per_byte)
      ~syscall_fraction:0.05 ~env ~n_ranks ()
  in
  let cache_capacity =
    match capacity_bytes with
    | Some c -> c
    | None -> cost.rdma_cache_capacity_bytes
  in
  {
    env;
    chan;
    cache_capacity;
    caches = Hashtbl.create 16;
    addrs = [];
    next_addr = 0x1000_0000;
  }

let channel t = t.chan
let eager_threshold t = t.env.Env.cost.rdma_eager_threshold_bytes

let cache t ~rank =
  match Hashtbl.find_opt t.caches rank with
  | Some c -> c
  | None ->
      let c = Cache.create ~capacity_bytes:t.cache_capacity () in
      Hashtbl.add t.caches rank c;
      c

(* Synthetic page-aligned addresses, keyed by physical identity: content
   equality must NOT alias two live buffers to one registration. The table
   is a linear scan — windows and message buffers per world are few. *)
let addr_of t b =
  match List.find_opt (fun (b', _) -> b' == b) t.addrs with
  | Some (_, a) -> a
  | None ->
      let a = t.next_addr in
      let extent = ((Stdlib.max 1 (Bytes.length b) + page - 1) / page) * page in
      t.next_addr <- t.next_addr + extent + page;
      t.addrs <- (b, a) :: t.addrs;
      a

let charge_miss t ~len evicted =
  let cost = t.env.Env.cost in
  Env.count t.env Key.rdma_reg_misses;
  Env.count_n t.env Key.rdma_reg_evictions (List.length evicted);
  Env.charge t.env cost.rdma_reg_base_ns;
  Env.charge_per_byte t.env cost.rdma_reg_ns_per_byte len

let register t ~rank ~addr ~len =
  match Cache.access (cache t ~rank) ~addr ~len with
  | Cache.Hit ->
      Env.count t.env Key.rdma_reg_hits;
      true
  | Cache.Miss { evicted } ->
      charge_miss t ~len evicted;
      false

let pin_region t ~rank ~addr ~len =
  match Cache.pin (cache t ~rank) ~addr ~len with
  | Cache.Hit -> Env.count t.env Key.rdma_reg_hits
  | Cache.Miss { evicted } -> charge_miss t ~len evicted

let unpin_region t ~rank ~addr ~len = Cache.unpin (cache t ~rank) ~addr ~len

let charge_rndv t ~len =
  let cost = t.env.Env.cost in
  let write =
    (2.0 *. cost.rdma_per_msg_ns)
    +. (float_of_int len *. cost.rdma_write_ns_per_byte)
  in
  let read =
    cost.rdma_per_msg_ns +. (float_of_int len *. cost.rdma_read_ns_per_byte)
  in
  if write <= read then begin
    (* Packet layer already streams at the write rate; the write variant
       adds one extra control descriptor (the target's address reply). *)
    Env.count t.env Key.rdma_write_rndv;
    Env.charge t.env cost.rdma_per_msg_ns;
    `Write
  end
  else begin
    Env.count t.env Key.rdma_read_rndv;
    Env.charge_per_byte t.env
      (cost.rdma_read_ns_per_byte -. cost.rdma_write_ns_per_byte)
      len;
    `Read
  end

let charge_eager t ~len =
  Env.count t.env Key.rdma_eager_copies;
  (* copy-in to the origin's bounce buffer + copy-out at the target *)
  Env.charge_per_byte t.env (2.0 *. t.env.Env.cost.memcpy_ns_per_byte) len
