(** Wire packets exchanged by the CH3-style device through a channel.

    Two protocols, as in MPICH2:
    - {e eager}: payload travels with the envelope; used up to the eager
      threshold. An unmatched eager message is buffered in the receiver's
      unexpected queue and copied again when the receive is finally posted.
    - {e rendezvous}: RTS announces the message; the receiver replies CTS
      once a matching receive provides a buffer; DATA then moves the payload
      in one pass, zero-copy into the user buffer. Synchronous-mode sends
      (MPI_Ssend) always take this path regardless of size. A receiver that
      cannot accept the transfer (truncation) answers NAK so the sender can
      release its rendezvous state instead of leaking it.

    On lossy channels the {!Reliable} layer wraps every device packet in a
    {!Frame} carrying a per-(src,dst) sequence number and a {!checksum} of
    the inner packet, and acknowledges delivery with {!Ack} packets. *)

type envelope = {
  e_src : int;  (** world rank of sender *)
  e_dst : int;
  e_tag : int;
  e_context : int;  (** communicator context id *)
  e_bytes : int;  (** payload size *)
  e_seq : int;  (** per-sender sequence number (debugging / ordering) *)
}

type frame = {
  f_src : int;  (** sending world rank (selects the sequence space) *)
  f_seq : int;  (** per-(src,dst) reliable-delivery sequence number *)
  f_check : int;  (** {!checksum} of the inner packet at send time *)
}

type t =
  | Eager of envelope * Bytes.t
  | Rts of envelope * int  (** rendezvous id *)
  | Cts of int  (** rendezvous id, sent back to the RTS sender *)
  | Rndv_data of int * Bytes.t
  | Nak of int * string
      (** rendezvous id refused by the receiver, with the reason; the
          sender fails the request and drops its rendezvous state *)
  | Frame of frame * t  (** reliable-delivery framing around any packet *)
  | Ack of int * int  (** cumulative ack: (acking rank, highest seq) *)

val header_bytes : int
(** Fixed per-packet header size used for wire-cost accounting. *)

val frame_bytes : int
(** Extra wire bytes a reliable-delivery {!Frame} adds to its inner
    packet (sequence number + checksum). *)

val wire_bytes : t -> int

val checksum : t -> int
(** Deterministic integrity checksum (FNV-1a over a canonical encoding,
    truncated to 30 bits). Any single bit flip in a payload or header
    field changes the value. *)

val describe : t -> string
