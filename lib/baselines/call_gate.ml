module Env = Simtime.Env
module Key = Simtime.Stats.Key

type mechanism = Pinvoke | Jni

let enter mech env ~args =
  let cost = env.Env.cost in
  let base, hist_key =
    match mech with
    | Pinvoke ->
        Env.count env Key.pinvokes;
        (cost.pinvoke_ns, Key.h_pinvoke_gate)
    | Jni ->
        Env.count env Key.jni_calls;
        (cost.jni_ns, Key.h_jni_gate)
  in
  let crossing =
    base
    +. (cost.marshal_per_arg_ns *. float_of_int args)
    +. cost.managed_wrapper_ns
  in
  Env.charge env crossing;
  Env.observe env hist_key crossing

let mechanism_name = function Pinvoke -> "P/Invoke" | Jni -> "JNI"
