module Env = Simtime.Env
module Cost = Simtime.Cost
module World = Motor.World
module Ot = Motor.Object_transport
module Smp = Motor.System_mp
module Om = Vm.Object_model
module Gc = Vm.Gc
module Classes = Vm.Classes
module Types = Vm.Types
module Mpi = Mpi_core.Mpi
module Std = Baselines.Std_serializer
module Wt = Baselines.Wrapper_transport

type protocol = { iters : int; timed : int; trials : int }

let paper_protocol = { iters = 200; timed = 100; trials = 3 }

let fig10_protocol ~total_objects =
  if total_objects <= 256 then { iters = 20; timed = 10; trials = 1 }
  else if total_objects <= 2048 then { iters = 8; timed = 4; trials = 1 }
  else { iters = 4; timed = 2; trials = 1 }

(* Shared ping-pong skeleton: rank 0 initiates and is timed; rank 1
   echoes. The round-trip count includes warmup, only the tail is
   measured. *)
let pingpong_skeleton ~env ~protocol ~rank ~send ~recv result =
  let warmup = protocol.iters - protocol.timed in
  if rank = 0 then begin
    for _ = 1 to warmup do
      send ();
      recv ()
    done;
    let t0 = Env.now_us env in
    for _ = 1 to protocol.timed do
      send ();
      recv ()
    done;
    result := ((Env.now_us env -. t0) /. float_of_int protocol.timed) :: !result
  end
  else
    for _ = 1 to protocol.iters do
      recv ();
      send ()
    done

let average = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* ------------------------------------------------------------------ *)
(* Figure 9: regular buffer-to-buffer ping-pong                        *)
(* ------------------------------------------------------------------ *)

let bytes_trial_native ~protocol ~size =
  let env = Env.create ~cost:Cost.native_cpp () in
  let w = Mpi.create_world ~env ~n:2 () in
  let comm = Mpi.comm_world w in
  let result = ref [] in
  let body rank () =
    let p = Mpi.proc w rank in
    let buf = Bytes.create size in
    let other = 1 - rank in
    pingpong_skeleton ~env ~protocol ~rank
      ~send:(fun () -> Baselines.Native.send p ~comm ~dst:other ~tag:0 buf)
      ~recv:(fun () ->
        ignore (Baselines.Native.recv p ~comm ~src:other ~tag:0 buf))
      result
  in
  Fiber.run [ ("pp0", body 0); ("pp1", body 1) ];
  average !result

let bytes_trial_motor ~protocol ~size =
  let w = World.create ~cost:Cost.motor ~n:2 () in
  let comm = World.comm_world w in
  let env = World.env w in
  let result = ref [] in
  World.run w (fun ctx ->
      let gc = World.gc ctx in
      let rank = World.rank ctx in
      let other = 1 - rank in
      let buf = Om.alloc_array gc (Types.Eprim Types.I1) size in
      pingpong_skeleton ~env ~protocol ~rank
        ~send:(fun () -> Ot.send ctx ~comm ~dst:other ~tag:0 buf)
        ~recv:(fun () -> ignore (Ot.recv ctx ~comm ~src:other ~tag:0 buf))
        result);
  average !result

let bytes_trial_wrapper ~protocol ~size ~cost ~mech =
  let w = World.create ~cost ~n:2 () in
  let comm = World.comm_world w in
  let env = World.env w in
  let result = ref [] in
  World.run w (fun ctx ->
      let gc = World.gc ctx in
      let rank = World.rank ctx in
      let other = 1 - rank in
      let buf = Om.alloc_array gc (Types.Eprim Types.I1) size in
      pingpong_skeleton ~env ~protocol ~rank
        ~send:(fun () -> Wt.send ~mech ctx ~comm ~dst:other ~tag:0 buf)
        ~recv:(fun () ->
          ignore (Wt.recv ~mech ctx ~comm ~src:other ~tag:0 buf))
        result);
  average !result

let pingpong_bytes ?(protocol = paper_protocol) system ~size =
  let trial () =
    match system with
    | Systems.Native_cpp -> bytes_trial_native ~protocol ~size
    | Systems.Motor_sys -> bytes_trial_motor ~protocol ~size
    | Systems.Indiana_sscli | Systems.Indiana_sscli_fastchecked
    | Systems.Indiana_dotnet | Systems.Mpijava ->
        let mech = Option.get (Systems.gate system) in
        bytes_trial_wrapper ~protocol ~size ~cost:(Systems.cost system) ~mech
  in
  average (List.init protocol.trials (fun _ -> trial ()))

(* ------------------------------------------------------------------ *)
(* Figure 10: linked-list (structured data) ping-pong                  *)
(* ------------------------------------------------------------------ *)

(* The benchmark structure of Section 8: a linked list whose elements each
   hold a data buffer; the total payload is spread evenly; total objects =
   2 x elements (each element's array is itself an object). *)
let linked_array_class registry =
  match Classes.find_by_name registry "LinkedArray" with
  | Some mt -> mt
  | None ->
      let id = Classes.declare registry ~name:"LinkedArray" in
      let arr = Classes.array_class registry (Types.Eprim Types.I1) in
      Classes.complete registry id ~transportable:true
        ~fields:
          [
            ("array", Types.Ref arr.Classes.c_id, true);
            ("next", Types.Ref id, true);
          ]
        ()

let make_linked_list gc registry ~elems ~total_data_bytes =
  if elems < 1 then invalid_arg "make_linked_list: need at least 1 element";
  let mt = linked_array_class registry in
  let farray = Classes.field mt "array" in
  let fnext = Classes.field mt "next" in
  let base = total_data_bytes / elems in
  let extra = total_data_bytes mod elems in
  let head = ref (Om.null gc) in
  for i = elems - 1 downto 0 do
    let node = Om.alloc_instance gc mt in
    let bytes = base + (if i < extra then 1 else 0) in
    let arr = Om.alloc_array gc (Types.Eprim Types.I1) bytes in
    for j = 0 to min (bytes - 1) 7 do
      Om.set_elem_int gc arr j ((i + j) land 0x7f)
    done;
    Om.set_ref gc node farray (Some arr);
    Om.free gc arr;
    if not (Om.is_null gc !head) then begin
      Om.set_ref gc node fnext (Some !head);
      Om.free gc !head
    end;
    head := node
  done;
  !head

module Bv = Mpi_core.Buffer_view

(* ------------------------------------------------------------------ *)
(* Fault-tolerance workloads                                           *)
(* ------------------------------------------------------------------ *)

(* A ring exchange whose payload evolves every round as a function of what
   was received, so any lost, duplicated or corrupted delivery the
   transport fails to mask changes the final digest. Deterministic: the
   same n/rounds/size/fault seed always produces the same digest. *)
let ring ?fault ?reliable ?parallel ~n ~rounds ~size () =
  if n < 2 then invalid_arg "Workloads.ring: need at least two ranks";
  if size < 1 then invalid_arg "Workloads.ring: need a positive size";
  let finals = Array.make n Bytes.empty in
  let w =
    Mpi.run ?fault ?reliable ?parallel ~n (fun p ->
        let comm = Mpi.comm_world (Mpi.world_of p) in
        let rank = Mpi.rank p in
        let buf =
          Bytes.init size (fun i -> Char.chr ((rank + i) land 0xff))
        in
        let inb = Bytes.create size in
        for round = 1 to rounds do
          ignore
            (Mpi.sendrecv p ~comm
               ~dst:((rank + 1) mod n)
               ~send_tag:round ~send:(Bv.of_bytes buf)
               ~src:((rank + n - 1) mod n)
               ~recv_tag:round ~recv:(Bv.of_bytes inb));
          for i = 0 to size - 1 do
            Bytes.set buf i
              (Char.chr
                 ((Char.code (Bytes.get buf i)
                  + (Char.code (Bytes.get inb i) * 31)
                  + round)
                 land 0xff))
          done
        done;
        finals.(rank) <- Bytes.copy buf)
  in
  let digest =
    Digest.to_hex
      (Digest.bytes (Bytes.concat Bytes.empty (Array.to_list finals)))
  in
  (digest, w)

(* Collective counterpart: repeated allreduce whose input depends on the
   previous round's result. Every rank must end with the same value. *)
let allreduce_chain ?fault ?reliable ?parallel ~n ~rounds () =
  if n < 2 then
    invalid_arg "Workloads.allreduce_chain: need at least two ranks";
  let finals = Array.make n 0L in
  let w =
    Mpi.run ?fault ?reliable ?parallel ~n (fun p ->
        let comm = Mpi.comm_world (Mpi.world_of p) in
        let rank = Mpi.rank p in
        let acc = ref (Int64.of_int (rank + 1)) in
        for round = 1 to rounds do
          let b = Bytes.create 8 in
          Bytes.set_int64_le b 0
            (Int64.add !acc (Int64.of_int (round * (rank + 1))));
          let out =
            Mpi_core.Collectives.allreduce p comm
              ~op:Mpi_core.Collectives.sum_i64 b
          in
          acc := Bytes.get_int64_le out 0
        done;
        finals.(rank) <- !acc)
  in
  let digest =
    Digest.to_hex
      (Digest.string
         (String.concat ","
            (Array.to_list (Array.map Int64.to_string finals))))
  in
  (digest, w)

(* Compute-heavy collective workload for the wall-clock speedup bench: a
   vector allreduce (sum over i64 lanes) whose input each rank remixes
   locally every round. Both the reduction and the remix are O(size) per
   rank per round, so the work parallelizes across domains; the result
   is schedule-independent (sums are deterministic, the remix is a pure
   function of the previous result, the round and the rank), so the
   digest must agree between cooperative and parallel executions. The
   algorithm is pinned to recursive doubling to keep the communication
   pattern identical at every domain count. *)
let allreduce_bytes ?parallel ~n ~rounds ~size () =
  if n < 2 then
    invalid_arg "Workloads.allreduce_bytes: need at least two ranks";
  if size < 8 || size mod 8 <> 0 then
    invalid_arg "Workloads.allreduce_bytes: size must be a positive \
                 multiple of 8";
  let finals = Array.make n Bytes.empty in
  let w =
    Mpi.run ?parallel ~n (fun p ->
        let comm = Mpi.comm_world (Mpi.world_of p) in
        let rank = Mpi.rank p in
        let buf =
          Bytes.init size (fun i -> Char.chr (((rank * 7) + i) land 0xff))
        in
        for round = 1 to rounds do
          let out =
            Mpi_core.Collectives.allreduce ~algo:`Rd p comm
              ~op:Mpi_core.Collectives.sum_i64 buf
          in
          for i = 0 to size - 1 do
            Bytes.set buf i
              (Char.chr
                 (((Char.code (Bytes.get out i) * 31)
                  + round
                  + ((rank + 1) * (i + 1)))
                 land 0xff))
          done
        done;
        finals.(rank) <- Bytes.copy buf)
  in
  let digest =
    Digest.to_hex
      (Digest.bytes (Bytes.concat Bytes.empty (Array.to_list finals)))
  in
  (digest, w)

type object_result = Time_us of float | Crashed of string

exception Crashed_exn of string

let objects_trial_motor ~protocol ~visited ~elems ~total_data_bytes =
  let config = { World.default_config with visited } in
  let w = World.create ~cost:Cost.motor ~config ~n:2 () in
  let comm = World.comm_world w in
  let env = World.env w in
  let result = ref [] in
  World.run w (fun ctx ->
      let gc = World.gc ctx in
      let rank = World.rank ctx in
      let other = 1 - rank in
      let registry = World.registry ctx in
      if rank = 0 then begin
        let head = make_linked_list gc registry ~elems ~total_data_bytes in
        pingpong_skeleton ~env ~protocol ~rank
          ~send:(fun () -> Smp.osend ctx ~comm ~dst:other ~tag:0 head)
          ~recv:(fun () ->
            let obj, _ = Smp.orecv ctx ~comm ~src:other ~tag:0 in
            Om.free gc obj)
          result
      end
      else begin
        (* The echo side receives the structure and sends back what it
           received, so each round trip pays 2 serializations and 2
           deserializations in total. *)
        let held = ref (Om.null gc) in
        ignore (linked_array_class registry);
        pingpong_skeleton ~env ~protocol ~rank
          ~send:(fun () ->
            Smp.osend ctx ~comm ~dst:other ~tag:0 !held;
            Om.free gc !held;
            held := Om.null gc)
          ~recv:(fun () ->
            let obj, _ = Smp.orecv ctx ~comm ~src:other ~tag:0 in
            held := obj)
          result
      end);
  average !result

let objects_trial_wrapper ~protocol ~cost ~mech ~profile ~elems
    ~total_data_bytes =
  let w = World.create ~cost ~n:2 () in
  let comm = World.comm_world w in
  let env = World.env w in
  let result = ref [] in
  (try
     World.run w (fun ctx ->
         let gc = World.gc ctx in
         let rank = World.rank ctx in
         let other = 1 - rank in
         let registry = World.registry ctx in
         if rank = 0 then begin
           let head = make_linked_list gc registry ~elems ~total_data_bytes in
           pingpong_skeleton ~env ~protocol ~rank
             ~send:(fun () ->
               let data = Std.serialize profile gc head in
               Wt.send_serialized ~mech ctx ~comm ~dst:other ~tag:0 data)
             ~recv:(fun () ->
               let data =
                 Wt.recv_serialized ~mech ctx ~comm ~src:other ~tag:0
               in
               Om.free gc (Std.deserialize profile gc data))
             result
         end
         else begin
           ignore (linked_array_class registry);
           let held = ref (Om.null gc) in
           pingpong_skeleton ~env ~protocol ~rank
             ~send:(fun () ->
               let data = Std.serialize profile gc !held in
               Om.free gc !held;
               held := Om.null gc;
               Wt.send_serialized ~mech ctx ~comm ~dst:other ~tag:0 data)
             ~recv:(fun () ->
               let data =
                 Wt.recv_serialized ~mech ctx ~comm ~src:other ~tag:0
               in
               held := Std.deserialize profile gc data)
             result
         end)
   with Std.Stack_overflow_sim ->
     raise
       (Crashed_exn
          "stack overflow in the recursive serialization mechanism"));
  average !result

let pingpong_objects ?protocol ?(visited = Motor.Serializer.Linear) system
    ~total_objects ~total_data_bytes =
  if total_objects < 2 || total_objects mod 2 <> 0 then
    invalid_arg "pingpong_objects: total_objects must be even and >= 2";
  let elems = total_objects / 2 in
  let protocol =
    match protocol with
    | Some p -> p
    | None -> fig10_protocol ~total_objects
  in
  let trial () =
    match system with
    | Systems.Motor_sys ->
        objects_trial_motor ~protocol ~visited ~elems ~total_data_bytes
    | Systems.Native_cpp ->
        invalid_arg "pingpong_objects: native C++ has no object transport"
    | Systems.Indiana_sscli | Systems.Indiana_sscli_fastchecked
    | Systems.Indiana_dotnet | Systems.Mpijava ->
        let mech = Option.get (Systems.gate system) in
        let profile = Option.get (Systems.serializer_profile system) in
        objects_trial_wrapper ~protocol ~cost:(Systems.cost system) ~mech
          ~profile ~elems ~total_data_bytes
  in
  match List.init protocol.trials (fun _ -> trial ()) with
  | times -> Time_us (average times)
  | exception Crashed_exn msg -> Crashed msg
