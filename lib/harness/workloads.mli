(** Workload drivers for the paper's experiments.

    The measurement protocol follows Section 8: a ping-pong between two
    processes, a configurable number of iterations with only the last so
    many timed, averaged over trials. Time is virtual time from the
    world's shared clock, read on rank 0 at round-trip boundaries. *)

type protocol = {
  iters : int;  (** total round trips (paper: 200) *)
  timed : int;  (** timed round trips at the end (paper: 100) *)
  trials : int;  (** runs averaged (paper: 3) *)
}

val paper_protocol : protocol
(** 200 / 100 / 3 — used for Figure 9. *)

val fig10_protocol : total_objects:int -> protocol
(** Scaled-down protocol for the object-transport experiment: the virtual
    clock is deterministic, so extra repetitions only cost real time; the
    iteration count shrinks as the linear visited list's quadratic real
    cost grows. *)

val pingpong_bytes :
  ?protocol:protocol -> Systems.t -> size:int -> float
(** Figure 9's unit: average microseconds per round-trip of a [size]-byte
    buffer under the given system's binding semantics. *)

(** {1 Fault-tolerance workloads}

    Both drivers return a digest of the final application state together
    with the world (whose env carries the virtual clock and the fault /
    reliability counters). Workloads and fault schedules are fully
    deterministic, so for a fixed fault seed the digest must equal the
    fault-free digest — the property the loss-sweep experiment and the
    robustness tests assert. *)

val ring :
  ?fault:Mpi_core.Fault.plan ->
  ?reliable:Mpi_core.Reliable.config ->
  ?parallel:int ->
  n:int ->
  rounds:int ->
  size:int ->
  unit ->
  string * Mpi_core.Mpi.world
(** [rounds] neighbour exchanges around an [n]-rank ring of [size]-byte
    messages; each rank folds what it received into what it sends next,
    so any unmasked loss, duplication or corruption changes the digest.
    The per-round byte-mixing fold is also real CPU work, which makes
    this the reference workload for wall-clock speedup measurements:
    with [?parallel:d] the ranks execute on [d] domains
    ({!Mpi_core.Mpi.run}) and the digest must equal the cooperative
    one — the result is schedule-independent. *)

val allreduce_chain :
  ?fault:Mpi_core.Fault.plan ->
  ?reliable:Mpi_core.Reliable.config ->
  ?parallel:int ->
  n:int ->
  rounds:int ->
  unit ->
  string * Mpi_core.Mpi.world
(** Collective counterpart: [rounds] chained [allreduce] sums whose
    inputs depend on the previous result. *)

val allreduce_bytes :
  ?parallel:int ->
  n:int ->
  rounds:int ->
  size:int ->
  unit ->
  string * Mpi_core.Mpi.world
(** Vector allreduce ([size]-byte payload, sum over i64 lanes, pinned to
    recursive doubling) with a local O(size) remix between rounds: the
    compute-heavy collective workload for wall-clock speedup runs.
    [size] must be a positive multiple of 8. Digest is
    schedule-independent, so parallel and cooperative runs must agree. *)

type object_result = Time_us of float | Crashed of string

val pingpong_objects :
  ?protocol:protocol ->
  ?visited:Motor.Serializer.visited_strategy ->
  Systems.t ->
  total_objects:int ->
  total_data_bytes:int ->
  object_result
(** Figure 10's unit: ping-pong of a linked list ([total_objects/2]
    elements, each an object plus its int8 data array, the data divided
    evenly), serialization and deserialization on both ends included in
    the time. mpiJava's recursive serializer reports [Crashed] past its
    stack budget, as in the paper. [visited] overrides Motor's visited
    structure (ablation abl3); ignored for other systems. *)

val make_linked_list :
  Vm.Gc.t -> Vm.Classes.t -> elems:int -> total_data_bytes:int ->
  Vm.Object_model.obj
(** The benchmark's LinkedArray list builder (shared with tests). *)

(** {1 Building blocks for the ablation drivers} *)

val pingpong_skeleton :
  env:Simtime.Env.t ->
  protocol:protocol ->
  rank:int ->
  send:(unit -> unit) ->
  recv:(unit -> unit) ->
  float list ref ->
  unit
(** Rank 0 initiates and appends its measured microseconds-per-round-trip
    to the list; rank 1 echoes. *)

val average : float list -> float
