module Env = Simtime.Env
module Cost = Simtime.Cost
module World = Motor.World
module Ot = Motor.Object_transport
module Om = Vm.Object_model
module Types = Vm.Types
module Gc = Vm.Gc
module Key = Simtime.Stats.Key

type point = { x : int; result : Workloads.object_result }
type series = { system : string; points : point list }

let pow2_range lo hi =
  let rec go v acc = if v > hi then List.rev acc else go (2 * v) (v :: acc) in
  go lo []

let fig9_sizes = pow2_range 4 262_144
let fig10_objects = pow2_range 2 8192

(* ------------------------------------------------------------------ *)
(* Figure 9                                                            *)
(* ------------------------------------------------------------------ *)

let fig9 ?(protocol = Workloads.paper_protocol) () =
  List.map
    (fun system ->
      {
        system = Systems.name system;
        points =
          List.map
            (fun size ->
              {
                x = size;
                result =
                  Workloads.Time_us
                    (Workloads.pingpong_bytes ~protocol system ~size);
              })
            fig9_sizes;
      })
    Systems.fig9_systems

(* ------------------------------------------------------------------ *)
(* Figure 10                                                           *)
(* ------------------------------------------------------------------ *)

let total_data_bytes = 4096 (* the paper's fixed payload *)

let fig10 ?(quick = false) () =
  let xs =
    if quick then List.filter (fun n -> n <= 512) fig10_objects
    else fig10_objects
  in
  List.map
    (fun system ->
      {
        system = Systems.name system;
        points =
          List.map
            (fun n ->
              {
                x = n;
                result =
                  Workloads.pingpong_objects system ~total_objects:n
                    ~total_data_bytes;
              })
            xs;
      })
    Systems.fig10_systems

(* ------------------------------------------------------------------ *)
(* Table A: the in-text Motor vs Indiana-SSCLI percentages             *)
(* ------------------------------------------------------------------ *)

type taba_row = { metric : string; paper_pct : float; measured_pct : float }

let find_series name series =
  match List.find_opt (fun s -> s.system = name) series with
  | Some s -> s
  | None -> invalid_arg ("taba: missing series " ^ name)

let time_at s x =
  match List.find_opt (fun p -> p.x = x) s.points with
  | Some { result = Workloads.Time_us t; _ } -> t
  | Some { result = Workloads.Crashed _; _ } | None ->
      invalid_arg "taba: missing point"

let taba series =
  let motor = find_series "Motor" series in
  let indiana = find_series "Indiana SSCLI" series in
  let pct x =
    let m = time_at motor x and i = time_at indiana x in
    100.0 *. (i -. m) /. i
  in
  let sizes = List.map (fun p -> p.x) motor.points in
  let pcts = List.map pct sizes in
  let avg xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
  let large = List.filter (fun x -> x > 65_536) sizes in
  [
    {
      metric = "peak improvement";
      paper_pct = 16.0;
      measured_pct = List.fold_left Float.max neg_infinity pcts;
    };
    { metric = "average improvement"; paper_pct = 8.0; measured_pct = avg pcts };
    {
      metric = "average above 64 KiB";
      paper_pct = 3.0;
      measured_pct = avg (List.map pct large);
    };
  ]

(* ------------------------------------------------------------------ *)
(* Table B: footnote 4 — pinning on Free vs fastchecked builds          *)
(* ------------------------------------------------------------------ *)

let tabb ?(protocol = { Workloads.iters = 60; timed = 30; trials = 1 }) () =
  List.map
    (fun system ->
      ( Systems.name system,
        Workloads.pingpong_bytes ~protocol system ~size:64 ))
    [ Systems.Indiana_sscli; Systems.Indiana_sscli_fastchecked ]

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let default_abl_protocol = { Workloads.iters = 60; timed = 30; trials = 1 }

let motor_policy_run ~protocol ~policy ~size =
  let config = { World.default_config with policy } in
  let w = World.create ~cost:Cost.motor ~config ~n:2 () in
  let comm = World.comm_world w in
  let env = World.env w in
  let result = ref [] in
  World.run w (fun ctx ->
      let gc = World.gc ctx in
      let rank = World.rank ctx in
      let other = 1 - rank in
      let buf = Om.alloc_array gc (Types.Eprim Types.I1) size in
      Workloads.pingpong_skeleton ~env ~protocol ~rank
        ~send:(fun () -> Ot.send ctx ~comm ~dst:other ~tag:0 buf)
        ~recv:(fun () -> ignore (Ot.recv ctx ~comm ~src:other ~tag:0 buf))
        result);
  (Workloads.average !result, Simtime.Stats.get env.Env.stats Key.pins)

let abl_pinning_policy ?(protocol = default_abl_protocol) ~size () =
  List.map
    (fun policy ->
      let us, pins = motor_policy_run ~protocol ~policy ~size in
      (Motor.Pinning.policy_name policy, us, pins))
    [ Motor.Pinning.Always_pin; Motor.Pinning.Boundary_check;
      Motor.Pinning.Deferred ]

let abl_call_mechanism ?(protocol = default_abl_protocol) ~size () =
  (* Same Motor stack; only the priced cost of the entry gate changes. *)
  let gates =
    [
      ("FCall", Cost.motor.Cost.fcall_ns);
      ( "P/Invoke",
        Cost.indiana_sscli.Cost.pinvoke_ns
        +. (6.0 *. Cost.indiana_sscli.Cost.marshal_per_arg_ns) );
      ( "JNI",
        Cost.mpijava.Cost.jni_ns
        +. (6.0 *. Cost.mpijava.Cost.marshal_per_arg_ns) );
    ]
  in
  List.map
    (fun (name, gate_ns) ->
      let cost = { Cost.motor with Cost.fcall_ns = gate_ns } in
      let w = World.create ~cost ~n:2 () in
      let comm = World.comm_world w in
      let env = World.env w in
      let result = ref [] in
      World.run w (fun ctx ->
          let gc = World.gc ctx in
          let rank = World.rank ctx in
          let other = 1 - rank in
          let buf = Om.alloc_array gc (Types.Eprim Types.I1) size in
          Workloads.pingpong_skeleton ~env ~protocol ~rank
            ~send:(fun () -> Ot.send ctx ~comm ~dst:other ~tag:0 buf)
            ~recv:(fun () -> ignore (Ot.recv ctx ~comm ~src:other ~tag:0 buf))
            result);
      (name, Workloads.average !result))
    gates

let abl_visited ?(quick = false) () =
  let xs =
    if quick then List.filter (fun n -> n <= 512) fig10_objects
    else fig10_objects
  in
  List.map
    (fun visited ->
      {
        system =
          (match visited with
          | Motor.Serializer.Linear -> "Motor (linear visited list)"
          | Motor.Serializer.Hashed -> "Motor (hashed visited set)");
        points =
          List.map
            (fun n ->
              {
                x = n;
                result =
                  Workloads.pingpong_objects ~visited Systems.Motor_sys
                    ~total_objects:n ~total_data_bytes;
              })
            xs;
      })
    [ Motor.Serializer.Linear; Motor.Serializer.Hashed ]

let abl_eager_threshold ?(protocol = default_abl_protocol) () =
  let thresholds = [ 0; 4096; 65_536; 1_048_576 ] in
  let sizes = [ 1024; 16_384; 131_072 ] in
  List.map
    (fun threshold ->
      let cost =
        { Cost.native_cpp with Cost.eager_threshold_bytes = threshold }
      in
      let points =
        List.map
          (fun size ->
            let env = Env.create ~cost () in
            let w = Mpi_core.Mpi.create_world ~env ~n:2 () in
            let comm = Mpi_core.Mpi.comm_world w in
            let result = ref [] in
            let body rank () =
              let p = Mpi_core.Mpi.proc w rank in
              let buf = Bytes.create size in
              let other = 1 - rank in
              Workloads.pingpong_skeleton ~env ~protocol ~rank
                ~send:(fun () ->
                  Baselines.Native.send p ~comm ~dst:other ~tag:0 buf)
                ~recv:(fun () ->
                  ignore
                    (Baselines.Native.recv p ~comm ~src:other ~tag:0 buf))
                result
            in
            Fiber.run [ ("e0", body 0); ("e1", body 1) ];
            (size, Workloads.average !result))
          sizes
      in
      (threshold, points))
    thresholds

let abl_channel ?(protocol = default_abl_protocol) () =
  let sizes = [ 64; 4096; 131_072 ] in
  List.map
    (fun (name, channel) ->
      let points =
        List.map
          (fun size ->
            let w = World.create ~channel ~cost:Cost.motor ~n:2 () in
            let comm = World.comm_world w in
            let env = World.env w in
            let result = ref [] in
            World.run w (fun ctx ->
                let gc = World.gc ctx in
                let rank = World.rank ctx in
                let other = 1 - rank in
                let buf = Om.alloc_array gc (Types.Eprim Types.I1) size in
                Workloads.pingpong_skeleton ~env ~protocol ~rank
                  ~send:(fun () -> Ot.send ctx ~comm ~dst:other ~tag:0 buf)
                  ~recv:(fun () ->
                    ignore (Ot.recv ctx ~comm ~src:other ~tag:0 buf))
                  result);
            (size, Workloads.average !result))
          sizes
      in
      (name, points))
    [ ("sock channel", `Sock); ("shm channel", `Shm) ]

(* Object-array scatter: Motor's split representation vs the wrapper
   emulation the paper describes in Section 2.4. *)
let item_class registry =
  match Vm.Classes.find_by_name registry "WorkItem" with
  | Some mt -> mt
  | None ->
      let id = Vm.Classes.declare registry ~name:"WorkItem" in
      let arr =
        Vm.Classes.array_class registry (Types.Eprim Types.I1)
      in
      Vm.Classes.complete registry id ~transportable:true
        ~fields:[ ("data", Types.Ref arr.Vm.Classes.c_id, true) ]
        ()

let build_items gc registry ~elements =
  let mt = item_class registry in
  let fd = Vm.Classes.field mt "data" in
  let arr = Om.alloc_array gc (Types.Eref mt.Vm.Classes.c_id) elements in
  for i = 0 to elements - 1 do
    let item = Om.alloc_instance gc mt in
    let data = Om.alloc_array gc (Types.Eprim Types.I1) 32 in
    Om.set_elem_int gc data 0 (i land 0x7f);
    Om.set_ref gc item fd (Some data);
    Om.set_elem_ref gc arr i (Some item);
    Om.free gc item;
    Om.free gc data
  done;
  arr

let abl_split_scatter ?(elements = 64) () =
  let scatter_time ~n ~use_motor =
    let cost =
      if use_motor then Cost.motor else Cost.indiana_dotnet
    in
    let w = World.create ~cost ~n () in
    let comm = World.comm_world w in
    let env = World.env w in
    let t = ref 0.0 in
    World.run w (fun ctx ->
        let gc = World.gc ctx in
        let registry = World.registry ctx in
        ignore (item_class registry);
        let input =
          if World.rank ctx = 0 then
            Some (build_items gc registry ~elements)
          else None
        in
        Mpi_core.Collectives.barrier ctx.World.proc comm;
        let t0 = Env.now_us env in
        let mine =
          if use_motor then
            Motor.System_mp.oscatter ctx ~comm ~root:0 input
          else
            Baselines.Wrapper_scatter.scatter_objects
              ~mech:Baselines.Call_gate.Pinvoke
              ~profile:Baselines.Std_serializer.clr_dotnet ctx ~comm ~root:0
              input
        in
        ignore mine;
        Mpi_core.Collectives.barrier ctx.World.proc comm;
        if World.rank ctx = 0 then t := Env.now_us env -. t0);
    !t
  in
  List.map
    (fun n ->
      ( n,
        scatter_time ~n ~use_motor:true,
        scatter_time ~n ~use_motor:false ))
    [ 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Loss sweep: the ring workload under increasing fault rates           *)
(* ------------------------------------------------------------------ *)

type loss_point = {
  loss : float;
  time_us : float;
  goodput_mb_s : float;
  retransmits : int;
  acks : int;
  fault_drops : int;
  fault_dups : int;
  fault_corrupts : int;
  dup_drops : int;
  corrupt_drops : int;
  digest : string;
}

let default_losses = [ 0.0; 0.02; 0.05; 0.1; 0.2; 0.3 ]

let loss_sweep ?(n = 4) ?(rounds = 30) ?(size = 2048)
    ?(losses = default_losses) () =
  List.map
    (fun loss ->
      let fault =
        if loss = 0.0 then None
        else
          Some
            (Mpi_core.Fault.plan ~seed:1234 ~drop:loss
               ~duplicate:(loss /. 2.0) ~corrupt:(loss /. 4.0) ~delay:loss
               ~delay_ns:100_000.0 ())
      in
      (* The reliable layer is always on, so the zero-loss point pays the
         same framing/ack overhead and the sweep isolates the cost of the
         faults themselves. *)
      let digest, w =
        Workloads.ring ?fault ~reliable:Mpi_core.Reliable.default_config ~n
          ~rounds ~size ()
      in
      let env = Mpi_core.Mpi.env w in
      let stats = env.Env.stats in
      let time_us = Env.now_us env in
      let payload = float_of_int (n * rounds * size) in
      {
        loss;
        time_us;
        goodput_mb_s = payload /. time_us (* bytes/us = MB/s *);
        retransmits = Simtime.Stats.get stats Key.retransmits;
        acks = Simtime.Stats.get stats Key.acks;
        fault_drops = Simtime.Stats.get stats Key.fault_drops;
        fault_dups = Simtime.Stats.get stats Key.fault_dups;
        fault_corrupts = Simtime.Stats.get stats Key.fault_corrupts;
        dup_drops = Simtime.Stats.get stats Key.dup_drops;
        corrupt_drops = Simtime.Stats.get stats Key.corrupt_drops;
        digest;
      })
    losses

(* Non-blocking receive stress: post a batch of irecvs on young buffers,
   churn allocations to force collections while they are outstanding, and
   account for how each policy protected the buffers. *)
let abl_nonblocking_unpin () =
  let policies =
    [ Motor.Pinning.Always_pin; Motor.Pinning.Boundary_check;
      Motor.Pinning.Deferred ]
  in
  List.map
    (fun policy ->
      let config = { World.default_config with policy } in
      let w = World.create ~cost:Cost.motor ~config ~n:2 () in
      let comm = World.comm_world w in
      let env = World.env w in
      let batch = 16 in
      let t0 = ref 0.0 and t1 = ref 0.0 in
      World.run w (fun ctx ->
          let gc = World.gc ctx in
          if World.rank ctx = 0 then begin
            (* Stagger the sends so receives stay outstanding a while. *)
            for i = 0 to batch - 1 do
              for _ = 1 to 3 do
                Fiber.yield ()
              done;
              let a = Om.alloc_array gc (Types.Eprim Types.I4) 64 in
              Om.set_elem_int gc a 0 i;
              Ot.send ctx ~comm ~dst:1 ~tag:i a;
              Om.free gc a
            done
          end
          else begin
            t0 := Env.now_us env;
            let bufs =
              Array.init batch (fun _ ->
                  Om.alloc_array gc (Types.Eprim Types.I4) 64)
            in
            let reqs =
              Array.mapi
                (fun i buf -> Ot.irecv ctx ~comm ~src:0 ~tag:i buf)
                bufs
            in
            (* Allocation churn: forces minor collections while the
               receives are in flight. *)
            for _ = 1 to 400 do
              Om.free gc (Om.alloc_array gc (Types.Eprim Types.I8) 256)
            done;
            Array.iter (fun r -> ignore (Ot.wait ctx r)) reqs;
            Array.iteri
              (fun i buf ->
                if Om.get_elem_int gc buf 0 <> i then
                  failwith "nonblocking stress: payload corrupted")
              bufs;
            (* One more collection: its mark phase finds every request
               complete and drops the conditional pin entries. *)
            Gc.collect gc ~full:false;
            t1 := Env.now_us env
          end);
      ( Motor.Pinning.policy_name policy,
        !t1 -. !t0,
        Simtime.Stats.get env.Env.stats Key.pins,
        Simtime.Stats.get env.Env.stats Key.conditional_pins_dropped ))
    policies

(* ------------------------------------------------------------------ *)
(* Collective algorithm sweep                                          *)
(* ------------------------------------------------------------------ *)

type coll_point = {
  c_coll : string;
  c_algo : string;
  c_ranks : int;
  c_bytes : int;
  c_time_us : float;
  c_msgs : int;
}

let default_coll_ranks = [ 2; 4; 8; 16; 32 ]
let default_coll_sizes = [ 64; 1024; 16_384; 262_144 ]

let floor_pow2 n =
  let rec go v = if 2 * v <= n then go (2 * v) else v in
  go 1

(* One measured collective: a fresh world, a barrier fence on each side,
   virtual time and message count deltas read on rank 0. *)
let coll_run ~n body =
  let env = Env.create ~cost:Cost.native_cpp () in
  let t0 = ref 0.0 and t1 = ref 0.0 in
  let m0 = ref 0 and m1 = ref 0 in
  ignore
    (Mpi_core.Mpi.run ~env ~n (fun p ->
         let comm = Mpi_core.Mpi.comm_world (Mpi_core.Mpi.world_of p) in
         Mpi_core.Collectives.barrier p comm;
         if Mpi_core.Mpi.rank p = 0 then begin
           t0 := Env.now_us env;
           m0 := Simtime.Stats.get env.Env.stats Key.msgs_sent
         end;
         body p comm;
         Mpi_core.Collectives.barrier p comm;
         if Mpi_core.Mpi.rank p = 0 then begin
           t1 := Env.now_us env;
           m1 := Simtime.Stats.get env.Env.stats Key.msgs_sent
         end));
  (!t1 -. !t0, !m1 - !m0)

(* ------------------------------------------------------------------ *)
(* Communication/computation overlap                                   *)
(* ------------------------------------------------------------------ *)

type overlap_point = {
  v_ranks : int;
  v_bytes : int;
  v_compute_us : float;
  v_comm_us : float;
  v_block_us : float;
  v_overlap_us : float;
  v_efficiency : float;
}

let overlap_chunks = 32

(* One overlap measurement. The compute load is sized so its aggregate
   (over all members, since virtual time is one serial clock) equals the
   collective's own latency — the regime where perfect overlap would
   hide the whole collective. Blocking: allreduce, then charge the
   compute. Overlapped: iallreduce, then charge the compute in chunks
   with an [Mpi.test] poll between chunks (the MPI-3 overlap idiom), and
   wait for the tail. Efficiency is the fraction of the hideable time
   ([min comm aggregate-compute]) actually hidden. *)
let overlap_point ~n ~bytes =
  let module C = Mpi_core.Collectives in
  let payload () = Bytes.create bytes in
  let comm_us, _ =
    coll_run ~n (fun p comm ->
        ignore (C.allreduce p comm ~op:C.sum_i64 (payload ())))
  in
  let compute_us = comm_us /. float_of_int n in
  let compute_ns = compute_us *. 1000.0 in
  let block_us, _ =
    coll_run ~n (fun p comm ->
        let env = Mpi_core.Mpi.env (Mpi_core.Mpi.world_of p) in
        ignore (C.allreduce p comm ~op:C.sum_i64 (payload ()));
        Env.charge env compute_ns)
  in
  let overlap_us, _ =
    coll_run ~n (fun p comm ->
        let env = Mpi_core.Mpi.env (Mpi_core.Mpi.world_of p) in
        let req, _result = C.iallreduce p comm ~op:C.sum_i64 (payload ()) in
        let chunk = compute_ns /. float_of_int overlap_chunks in
        for _ = 1 to overlap_chunks do
          Env.charge env chunk;
          ignore (Mpi_core.Mpi.test p req);
          (* Each member computes on its own processor: yield so the
             chunks interleave across members (and with the schedule's
             message rounds) instead of serializing per member. *)
          Fiber.yield ()
        done;
        ignore (Mpi_core.Mpi.wait p req))
  in
  let hideable = Float.min comm_us (compute_us *. float_of_int n) in
  {
    v_ranks = n;
    v_bytes = bytes;
    v_compute_us = compute_us;
    v_comm_us = comm_us;
    v_block_us = block_us;
    v_overlap_us = overlap_us;
    v_efficiency = (block_us -. overlap_us) /. hideable;
  }

(* Overlap is a small-communicator effect in this model: the hideable
   part of a collective is its wire-idle time, and with one serial
   virtual clock the send-side work of n members serializes, so idle
   shrinks as n grows (by 8 members the extra test pumps cost more than
   the idle they recover). The paper's testbed is the small end — two
   ranks on one node. *)
let default_overlap_ranks = [ 2; 4 ]
let default_overlap_sizes = [ 16_384; 65_536; 262_144 ]

let overlap_sweep ?(ranks = default_overlap_ranks)
    ?(sizes = default_overlap_sizes) () =
  List.concat_map
    (fun n -> List.map (fun bytes -> overlap_point ~n ~bytes) sizes)
    ranks

let coll_sweep ?(ranks = default_coll_ranks) ?(sizes = default_coll_sizes) ()
    =
  let module C = Mpi_core.Collectives in
  let measure c_coll c_algo c_ranks c_bytes body =
    let c_time_us, c_msgs = coll_run ~n:c_ranks body in
    { c_coll; c_algo; c_ranks; c_bytes; c_time_us; c_msgs }
  in
  List.concat_map
    (fun n ->
      List.concat_map
        (fun size ->
          let allreduce algo name =
            measure "allreduce" name n size (fun p comm ->
                ignore
                  (C.allreduce ~algo p comm ~op:C.sum_i64
                     (Bytes.create size)))
          in
          let bcast algo name =
            measure "bcast" name n size (fun p comm ->
                C.bcast ~algo p comm ~root:0
                  (Mpi_core.Buffer_view.of_bytes (Bytes.create size)))
          in
          let allgather algo name =
            measure "allgather" name n size (fun p comm ->
                ignore (C.allgather ~algo p comm ~send:(Bytes.create size)))
          in
          let scatter algo name =
            measure "scatter" name n size (fun p comm ->
                let me = Mpi_core.Mpi.rank p in
                let parts =
                  if me = 0 then
                    Some
                      (Array.init n (fun _ ->
                           Mpi_core.Buffer_view.of_bytes (Bytes.create size)))
                  else None
                in
                C.scatter ~algo ~block:size p comm ~root:0 ~parts
                  ~recv:(Mpi_core.Buffer_view.of_bytes (Bytes.create size)))
          in
          let gather algo name =
            measure "gather" name n size (fun p comm ->
                let me = Mpi_core.Mpi.rank p in
                let parts =
                  if me = 0 then
                    Some
                      (Array.init n (fun _ ->
                           Mpi_core.Buffer_view.of_bytes (Bytes.create size)))
                  else None
                in
                C.gather ~algo ~block:size p comm ~root:0
                  ~send:(Mpi_core.Buffer_view.of_bytes (Bytes.create size))
                  ~parts)
          in
          let rab_ok = size mod 8 = 0 && size / 8 >= floor_pow2 n in
          let pow2 = n land (n - 1) = 0 in
          [ allreduce `Linear "linear"; allreduce `Rd "rd" ]
          @ (if rab_ok then [ allreduce `Rabenseifner "rabenseifner" ]
             else [])
          @ [
              bcast `Binomial "binomial";
              bcast `Scatter_allgather "scatter_allgather";
              allgather `Ring "ring";
            ]
          @ (if pow2 then [ allgather `Rd "rd" ] else [])
          @ [
              scatter `Linear "linear"; scatter `Binomial "binomial";
              gather `Linear "linear"; gather `Binomial "binomial";
            ])
        sizes)
    ranks

(* ------------------------------------------------------------------ *)
(* Scale sweep: two-level collectives at 1k-64k simulated ranks        *)
(* ------------------------------------------------------------------ *)

type scale_point = {
  sc_ranks : int;
  sc_nodes : int;
  sc_cores : int;
  sc_bytes : int;
  sc_algo : string;
  sc_time_us : float;
  sc_msgs_intra : int;
  sc_msgs_inter : int;
  sc_rounds : int;
  sc_model_msgs : int;
  sc_model_rounds : int;
}

let scale_ok p =
  p.sc_msgs_intra + p.sc_msgs_inter = p.sc_model_msgs
  && p.sc_rounds = p.sc_model_rounds

let default_scale_ranks = [ 1024; 4096; 16384; 65536 ]
let quick_scale_ranks = [ 256; 1024 ]
let scale_cores = 64

let log2i n =
  let r = ref 0 and v = ref n in
  while !v > 1 do
    incr r;
    v := !v lsr 1
  done;
  !r

(* One fresh world per point whose body is exactly one allreduce, so the
   whole-run counters are the algorithm's traffic and the final virtual
   clock is its makespan. The 8-byte payload keeps every transfer eager
   (no RTS/CTS in the counts) and the comparison latency-bound — the
   regime where the two-level win is the (log s + log L) round
   structure. *)
let scale_run ~nodes ~cores ~bytes ~algo =
  let n = nodes * cores in
  let env = Env.create ~cost:Cost.native_cpp () in
  let topology = Simtime.Topology.make ~nodes ~cores in
  let rounds = ref 0 in
  ignore
    (Mpi_core.Mpi.run ~env ~topology ~n (fun p ->
         let comm = Mpi_core.Mpi.comm_world (Mpi_core.Mpi.world_of p) in
         let mine = Bytes.create bytes in
         Bytes.set_int64_le mine 0 (Int64.of_int (Mpi_core.Mpi.rank p + 1));
         let req, acc =
           Mpi_core.Collectives.iallreduce ~algo p comm
             ~op:Mpi_core.Collectives.sum_i64 mine
         in
         (* Read the shape before yielding into the wait: the registry is
            bounded and a 64k-rank world starts 64k schedules, so a
            post-wait lookup can race its periodic reset. *)
         if Mpi_core.Mpi.rank p = 0 then
           Option.iter
             (fun (r, _) -> rounds := r)
             (Mpi_core.Coll_sched.info req);
         ignore (Mpi_core.Mpi.wait p req);
         if Mpi_core.Mpi.rank p = 0 then begin
           let expect = Int64.of_int (n * (n + 1) / 2) in
           if Bytes.get_int64_le acc 0 <> expect then
             failwith "scale_run: allreduce converged to the wrong sum"
         end));
  let get k = Simtime.Stats.get env.Env.stats k in
  ( Env.now_us env,
    get Key.msgs_intra_node,
    get Key.msgs_inter_node,
    !rounds )

let scale_sweep ?(quick = false) ?ranks () =
  let ranks =
    match ranks with
    | Some r -> r
    | None -> if quick then quick_scale_ranks else default_scale_ranks
  in
  let bytes = 8 in
  List.concat_map
    (fun n ->
      if n mod scale_cores <> 0 || n land (n - 1) <> 0 then
        invalid_arg "Experiments.scale_sweep: ranks must be pow2 x 64";
      let nodes = n / scale_cores and cores = scale_cores in
      let point algo sc_algo sc_model_msgs sc_model_rounds =
        let sc_time_us, sc_msgs_intra, sc_msgs_inter, sc_rounds =
          scale_run ~nodes ~cores ~bytes ~algo
        in
        {
          sc_ranks = n; sc_nodes = nodes; sc_cores = cores;
          sc_bytes = bytes; sc_algo; sc_time_us; sc_msgs_intra;
          sc_msgs_inter; sc_rounds; sc_model_msgs; sc_model_rounds;
        }
      in
      (* Two-level: a binomial reduce and bcast per shard plus recursive
         doubling across the leaders; rank 0 (a leader) runs recv+fold
         rounds up the shard, exchange+fold rounds across leaders, and
         one bcast fan-out round. *)
      let hier =
        point `Hier "hier"
          ((2 * nodes * (cores - 1)) + (nodes * log2i nodes))
          ((2 * log2i cores) + (2 * log2i nodes) + 1)
      in
      (* The flat oracle stops at 4k ranks: recursive doubling's
         n log2 n messages would dominate the sweep's runtime without
         adding information past the crossover. *)
      if n <= 4096 then
        [ hier; point `Rd "rd" (n * log2i n) (2 * log2i n) ]
      else [ hier ])
    ranks

(* ------------------------------------------------------------------ *)
(* One-sided RMA sweep: put size x registration-cache capacity         *)
(* ------------------------------------------------------------------ *)

type rma_point = {
  m_bytes : int;
  m_cache_bytes : int;
  m_puts : int;
  m_time_us : float;
  m_hits : int;
  m_misses : int;
  m_evictions : int;
  m_eager : int;
  m_write_rndv : int;
  m_read_rndv : int;
}

(* Per-row accounting the transfer paths must satisfy: every put went
   down exactly one path; every rendezvous put consulted the cache once,
   on top of the two window pins; eviction never outruns insertion. *)
let rma_ok p =
  p.m_puts > 0
  && p.m_time_us > 0.0
  && p.m_eager + p.m_write_rndv + p.m_read_rndv = p.m_puts
  && p.m_hits + p.m_misses = 2 + p.m_write_rndv + p.m_read_rndv
  && p.m_evictions <= p.m_misses

let default_rma_sizes = [ 1_024; 8_192; 65_536; 262_144 ]
let default_rma_caches = [ 65_536; 262_144; 1_048_576 ]
let rma_buffers = 4
let rma_rounds = 6

(* Two ranks exchange puts from [rma_buffers] distinct origin buffers
   over [rma_rounds] fence epochs. The origin working set
   ([rma_buffers] x size per rank) against the cache capacity decides
   whether round 2+ re-registrations hit (amortized pin-down) or keep
   evicting (LRU thrash); window pins stay resident throughout. *)
let rma_point ~bytes ~cache =
  let cost = { Cost.native_cpp with rdma_cache_capacity_bytes = cache } in
  let env = Env.create ~cost () in
  let stat k = Simtime.Stats.get env.Env.stats k in
  let n = 2 in
  let t0 = ref 0.0 and t1 = ref 0.0 in
  ignore
    (Mpi_core.Mpi.run ~env ~channel:`Rdma ~n (fun p ->
         let comm = Mpi_core.Mpi.comm_world (Mpi_core.Mpi.world_of p) in
         let r = Mpi_core.Mpi.rank p in
         let bufs =
           Array.init rma_buffers (fun b ->
               Bytes.init bytes (fun i -> Char.chr (((r * 67) + b + i) land 0xff)))
         in
         let mine = Bytes.make bytes '\000' in
         let win = Mpi_core.Rma.win_create p ~comm mine in
         if r = 0 then t0 := Env.now_us env;
         for _ = 1 to rma_rounds do
           Array.iter
             (fun buf ->
               Mpi_core.Rma.put win ~target:(1 - r) ~target_off:0 buf ~off:0
                 ~len:bytes)
             bufs;
           Mpi_core.Rma.win_fence win
         done;
         if r = 0 then t1 := Env.now_us env;
         Mpi_core.Rma.win_free win));
  {
    m_bytes = bytes;
    m_cache_bytes = cache;
    m_puts = stat Key.rma_puts;
    m_time_us = !t1 -. !t0;
    m_hits = stat Key.rdma_reg_hits;
    m_misses = stat Key.rdma_reg_misses;
    m_evictions = stat Key.rdma_reg_evictions;
    m_eager = stat Key.rdma_eager_copies;
    m_write_rndv = stat Key.rdma_write_rndv;
    m_read_rndv = stat Key.rdma_read_rndv;
  }

let rma_sweep ?(sizes = default_rma_sizes) ?(caches = default_rma_caches) ()
    =
  List.concat_map
    (fun bytes -> List.map (fun cache -> rma_point ~bytes ~cache) caches)
    sizes
