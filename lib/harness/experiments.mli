(** Drivers for every figure and table of the paper, plus the ablations
    DESIGN.md commits to. Each function returns data; rendering is up to
    the caller ({!Table}, bin/figures, the benches). *)

type point = { x : int; result : Workloads.object_result }
type series = { system : string; points : point list }

val fig9_sizes : int list
(** 4 B … 256 KiB in powers of two — Figure 9's x axis. *)

val fig10_objects : int list
(** 2 … 8192 total objects in powers of two — Figure 10's x axis. *)

val fig9 : ?protocol:Workloads.protocol -> unit -> series list
(** Ping-pong of regular MPI operations, five systems. *)

val fig10 : ?quick:bool -> unit -> series list
(** Linked-list transport, four systems; mpiJava's line ends in a crash
    past 1024 objects. [quick] trims the largest sizes (tests). *)

type taba_row = { metric : string; paper_pct : float; measured_pct : float }

val taba : series list -> taba_row list
(** The in-text Motor-vs-Indiana-SSCLI claims computed from a fig9 run:
    peak improvement, average improvement, average above 64 KiB (paper:
    16 / 8 / 3 per cent). *)

val tabb : ?protocol:Workloads.protocol -> unit -> (string * float) list
(** Footnote 4: ping-pong time per iteration for the Indiana bindings on
    Free vs fastchecked SSCLI builds (small buffers, where pinning cost
    shows). *)

(** {1 Ablations} *)

val abl_pinning_policy :
  ?protocol:Workloads.protocol -> size:int -> unit ->
  (string * float * int) list
(** (policy, us/iter, pins) for always-pin / boundary-check / deferred. *)

val abl_call_mechanism :
  ?protocol:Workloads.protocol -> size:int -> unit -> (string * float) list
(** Identical Motor stacks whose entry gate is priced as FCall, P/Invoke
    or JNI. *)

val abl_visited : ?quick:bool -> unit -> series list
(** Motor's linear visited list vs the hashed structure (future work) on
    the Figure 10 workload. *)

val abl_eager_threshold :
  ?protocol:Workloads.protocol -> unit -> (int * (int * float) list) list
(** For each eager threshold, (message size, us/iter) points. *)

val abl_nonblocking_unpin : unit -> (string * float * int * int) list
(** Non-blocking receive stress under GC pressure:
    (policy, total us, pins, conditional pins dropped). *)

val abl_channel :
  ?protocol:Workloads.protocol -> unit -> (string * (int * float) list) list
(** The layered-portability claim (paper Sections 4.1, 7): the same Motor
    stack re-deployed over the sock and shm channels; per channel,
    (message size, us/iter) points. *)

(** {1 Robustness: loss sweep} *)

type loss_point = {
  loss : float;  (** per-packet drop probability injected *)
  time_us : float;  (** virtual completion time of the whole workload *)
  goodput_mb_s : float;  (** application payload delivered / time *)
  retransmits : int;
  acks : int;
  fault_drops : int;
  fault_dups : int;
  fault_corrupts : int;
  dup_drops : int;
  corrupt_drops : int;
  digest : string;  (** final application state; must match loss 0 *)
}

val default_losses : float list
(** 0, 2, 5, 10, 20, 30 per cent. *)

val loss_sweep :
  ?n:int ->
  ?rounds:int ->
  ?size:int ->
  ?losses:float list ->
  unit ->
  loss_point list
(** Run {!Workloads.ring} (default 4 ranks, 30 rounds, 2 KiB messages)
    under each loss rate, with duplication, corruption and delay scaled
    off the loss rate and the {!Mpi_core.Reliable} layer always on.
    Completion time grows with loss while the digest stays byte-identical
    to the fault-free run — the correctness-under-loss claim. *)

val abl_split_scatter :
  ?elements:int -> unit -> (int * float * float) list
(** Section 2.4's scatter claim quantified: OScatter of an [elements]-long
    object array (default 64) via Motor's split representation vs the
    wrapper emulation (materialize one sub-array per member, serialize
    each atomically). Returns (ranks, motor us, wrapper us) rows; the
    wrapper's cost should grow faster with the member count. *)

(** {1 Collective algorithm sweep} *)

type coll_point = {
  c_coll : string;  (** collective name: allreduce, bcast, ... *)
  c_algo : string;  (** algorithm within the collective *)
  c_ranks : int;
  c_bytes : int;  (** payload per member *)
  c_time_us : float;  (** virtual time of the collective, barrier-fenced *)
  c_msgs : int;  (** point-to-point messages the algorithm issued *)
}

val default_coll_ranks : int list
(** 2, 4, 8, 16, 32. *)

val default_coll_sizes : int list
(** 64 B, 1 KiB, 16 KiB, 256 KiB. *)

(** {1 Communication/computation overlap} *)

type overlap_point = {
  v_ranks : int;
  v_bytes : int;  (** allreduce payload per member *)
  v_compute_us : float;  (** compute charged per member *)
  v_comm_us : float;  (** the allreduce alone, barrier-fenced *)
  v_block_us : float;  (** blocking allreduce, then the compute *)
  v_overlap_us : float;
      (** [iallreduce], compute in chunks with a test poll between
          chunks, then wait for the tail *)
  v_efficiency : float;
      (** fraction of the hideable time (min of comm and aggregate
          compute) actually hidden: [(block - overlap) / hideable] *)
}

val default_overlap_ranks : int list
(** 2, 4 — the wire-idle-dominated regime where overlap exists; past 8
    members the serialized send-side work leaves nothing to hide. *)

val default_overlap_sizes : int list
(** 16 KiB, 64 KiB, 256 KiB. *)

val overlap_sweep :
  ?ranks:int list -> ?sizes:int list -> unit -> overlap_point list
(** The claim behind the nonblocking collectives: computing through an
    in-flight [iallreduce] schedule recovers wait time a blocking
    allreduce burns polling. Efficiency must be strictly positive at
    every point (asserted by a test and the CI smoke run); 1.0 would be
    perfect overlap. Per-member compute is sized to [comm / n] so the
    aggregate compute equals the collective latency. Feeds
    [figures.exe -- overlap] and [results/overlap_sweep.csv]. *)

val coll_sweep :
  ?ranks:int list -> ?sizes:int list -> unit -> coll_point list
(** Latency versus ranks x payload for every collective algorithm in
    {!Mpi_core.Collectives} (each forced explicitly, not just the [`Auto]
    pick), one fresh world per point, on the native-C++ cost model.
    Infeasible combinations are skipped (Rabenseifner needs one granule
    per member, recursive-doubling allgather needs a power-of-two
    communicator). Feeds [figures.exe -- coll] and
    [results/coll_sweep.csv]. *)

(** {1 Scale sweep: two-level collectives at 1k-64k simulated ranks} *)

type scale_point = {
  sc_ranks : int;
  sc_nodes : int;
  sc_cores : int;  (** ranks per node (64 throughout the sweep) *)
  sc_bytes : int;  (** allreduce payload per member (8 B: latency-bound) *)
  sc_algo : string;  (** ["hier"] (two-level) or ["rd"] (flat oracle) *)
  sc_time_us : float;  (** virtual makespan of the one allreduce *)
  sc_msgs_intra : int;  (** measured same-node messages *)
  sc_msgs_inter : int;  (** measured cross-node messages *)
  sc_rounds : int;  (** measured rank-0 schedule rounds *)
  sc_model_msgs : int;  (** analytic total: 2S(s-1) + L log2 L (hier) *)
  sc_model_rounds : int;  (** analytic rank-0: 2 log2 s + 2 log2 L + 1 *)
}

val scale_ok : scale_point -> bool
(** Measured traffic and rounds equal the analytic model — the gate the
    CI smoke run enforces on every row. *)

val default_scale_ranks : int list
(** 1024, 4096, 16384, 65536 — as 64-core nodes. *)

val scale_sweep : ?quick:bool -> ?ranks:int list -> unit -> scale_point list
(** One fresh [nodes x 64] world per point, one 8-byte allreduce per
    world: the two-level algorithm at every size, the flat recursive
    doubling oracle up to 4096 ranks. Every rank count must be a power
    of two divisible by 64. [quick] sweeps 256 and 1024 ranks (CI
    smoke). Feeds [figures.exe -- scale] and
    [results/scale_sweep.csv]. *)

(** {1 One-sided RMA: put size x registration-cache capacity} *)

type rma_point = {
  m_bytes : int;  (** put payload *)
  m_cache_bytes : int;  (** per-rank registration cache capacity *)
  m_puts : int;  (** puts issued across the world *)
  m_time_us : float;  (** virtual time of all fence epochs *)
  m_hits : int;  (** registration cache hits *)
  m_misses : int;  (** registration cache misses (incl. 2 window pins) *)
  m_evictions : int;
  m_eager : int;  (** bounce-buffer puts (below the RDMA eager cutoff) *)
  m_write_rndv : int;  (** RDMA-write rendezvous picks *)
  m_read_rndv : int;  (** RDMA-read rendezvous picks *)
}

val rma_ok : rma_point -> bool
(** Row-level accounting: the three transfer paths partition the puts,
    cache lookups equal window pins plus rendezvous registrations, and
    evictions never exceed misses. The CI smoke run enforces this on
    every row. *)

val default_rma_sizes : int list
(** 1 KiB (eager), 8 KiB (RDMA-read rendezvous), 64 KiB and 256 KiB
    (RDMA-write rendezvous). *)

val default_rma_caches : int list
(** 64 KiB, 256 KiB, 1 MiB. *)

val rma_sweep :
  ?sizes:int list -> ?caches:int list -> unit -> rma_point list
(** One fresh 2-rank [`Rdma] world per point: six fence epochs of puts
    from four distinct origin buffers per rank, so the origin working
    set (4 x size) against the cache capacity decides between amortized
    pin-down (hits) and LRU thrash (evictions). Feeds
    [figures.exe -- rma] and [results/rma_sweep.csv]. *)
