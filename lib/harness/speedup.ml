(* Wall-clock speedup sweep (DESIGN.md §15): the same workload run with
   1, 2 and 4 domains, timed with a real clock. Unlike every other
   number in the harness this is NOT virtual time — it measures whether
   executing rank fibers on OCaml 5 domains actually buys wall-clock
   time on the machine at hand. Medians of [reps] runs: domain spawn
   and GC make the distribution long-tailed, and a median of a handful
   of runs is what the CI gate can afford. *)

module W = Workloads

type point = {
  p_workload : string;
  p_domains : int;
  p_ranks : int;
  p_reps : int;
  p_median_wall_ms : float;
  p_speedup : float;  (** 1-domain median / this median *)
}

let default_domains = [ 1; 2; 4 ]
let cores () = Domain.recommended_domain_count ()

let median samples =
  let sorted = List.sort compare samples in
  List.nth sorted (List.length sorted / 2)

let time_ms f =
  let t0 = Unix.gettimeofday () in
  f ();
  (Unix.gettimeofday () -. t0) *. 1e3

(* Rank counts and payloads sized so a 1-domain run takes tens of
   milliseconds: long enough to dwarf domain spawn (~100us each), short
   enough that the sweep stays a smoke test. Both workloads do real
   per-byte CPU work each round, so they scale with domains instead of
   serializing on the channel. *)
let workloads ~quick =
  let ranks = 8 in
  let scale n = if quick then max 1 (n / 4) else n in
  [
    ( "shm-ring",
      ranks,
      fun d -> ignore (W.ring ~parallel:d ~n:ranks ~rounds:(scale 64) ~size:32768 ()) );
    ( "allreduce",
      ranks,
      fun d ->
        ignore
          (W.allreduce_bytes ~parallel:d ~n:ranks ~rounds:(scale 16)
             ~size:65536 ()) );
  ]

let sweep ?(quick = false) ?(domains = default_domains) ?(reps = 5) () =
  List.concat_map
    (fun (name, ranks, run) ->
      List.map
        (fun d ->
          let ms = median (List.init reps (fun _ -> time_ms (fun () -> run d))) in
          {
            p_workload = name;
            p_domains = d;
            p_ranks = ranks;
            p_reps = reps;
            p_median_wall_ms = ms;
            p_speedup = 1.0 (* filled in below *);
          })
        domains
      |> fun points ->
      let base =
        match List.find_opt (fun p -> p.p_domains = 1) points with
        | Some p -> p.p_median_wall_ms
        | None -> (List.hd points).p_median_wall_ms
      in
      List.map (fun p -> { p with p_speedup = base /. p.p_median_wall_ms }) points)
    (workloads ~quick)

let csv_header = "workload,domains,ranks,reps,cores,median_wall_ms,speedup"

let write_csv ~path points =
  let oc = open_out path in
  output_string oc (csv_header ^ "\n");
  let c = cores () in
  List.iter
    (fun p ->
      Printf.fprintf oc "%s,%d,%d,%d,%d,%.3f,%.3f\n" p.p_workload p.p_domains
        p.p_ranks p.p_reps c p.p_median_wall_ms p.p_speedup)
    points;
  close_out oc
