(** Wall-clock speedup sweep: rank fibers on 1/2/4 OCaml 5 domains.

    The only harness numbers measured with a real clock rather than the
    virtual one. Feeds the "speedup" bench group ([bench/main.exe
    --speedup-only --json]) and [figures speedup] (the committed
    [results/speedup_sweep.csv]). The CI gate enforces the 1-domain /
    max-domain ratio only on machines with enough cores
    ({!Gate.check_speedup} via tools/check_bench). *)

type point = {
  p_workload : string;
  p_domains : int;
  p_ranks : int;
  p_reps : int;
  p_median_wall_ms : float;
  p_speedup : float;  (** 1-domain median / this point's median *)
}

val default_domains : int list
(** [1; 2; 4]. *)

val cores : unit -> int
(** [Domain.recommended_domain_count ()] — recorded alongside results so
    the gate can tell a real scaling failure from a 1-core machine. *)

val sweep : ?quick:bool -> ?domains:int list -> ?reps:int -> unit -> point list
(** Median-of-[reps] (default 5) wall times for each workload at each
    domain count. [quick] shrinks the per-run work ~4x (CI smoke). *)

val csv_header : string

val write_csv : path:string -> point list -> unit
