(** The schedule explorer: run workloads under many scheduling policies,
    check invariants, shrink what fails (DESIGN.md §12).

    Exploration is CHESS-style interleaving fuzzing over the cooperative
    scheduler: each {e workload} is a small deterministic program over the
    MPI/VM stack whose correctness is expressed as {!Invariant} oracles
    plus a schedule-independent digest. The explorer runs the workload
    once under round-robin (the baseline — byte for byte the historical
    schedule), then under [seeds] seeded-random schedules, optionally
    crossing each schedule seed with a derived fault-plan seed; every
    failing run's recorded decision trace is minimized with {!Shrink}
    into a replayable {!Corpus} entry. *)

type workload

val name : workload -> string
val faultable : workload -> bool

val default_workloads : unit -> workload list
(** The exploration set: [ring] (sendrecv rounds plus a synchronous-mode
    neighbour exchange, so the rendezvous path is exercised),
    [allreduce_chain] (chained allreduce plus a non-commutative reduce
    against the rank-order oracle), [hier_allreduce] (two-level
    collectives on a 2x2-node topology: chained [`Auto] allreduces that
    route through the hierarchical algorithms, a [`Hier]-vs-[`Linear]
    cross-check on a non-commutative operator, a barrier and a bcast from
    a non-leader root), [icoll_overlap] (ibarrier + ibcast + iallreduce +
    point-to-point all in flight, completed by one [wait_all]),
    [osend_gc] (OSend/ORecv and zero-copy transfers with collections
    forced mid-flight, checking the pin table drains), [rma_fence]
    (one-sided put/get/accumulate rings on the RDMA channel across
    three fence epochs, with eager and rendezvous transfer sizes and a
    pre-fence visibility probe) and [rma_lock] (passive-target
    lock/unlock: an exclusive-lock read-modify-write counter plus
    per-rank slots, audited under a shared lock). *)

val all_workloads : unit -> workload list
(** {!default_workloads} plus the planted-bug, rma-epoch-bug and
    planted-detector-bug self-tests (which fail by design and are
    therefore excluded from exploration) and the {!kill_workloads}
    (driven by the kill sweep rather than the default exploration
    set). *)

val find : string -> workload option
(** Look up by name among {!all_workloads} (corpus replay, CLI). *)

val planted_bug : buggy:bool -> workload
(** The harness self-test: three fibers share an unsynchronized counter.
    With [~buggy:true] ("planted_bug") the two incrementing fibers each
    read, yield through a window, then write — but the windows are
    phase-shifted so strict round-robin keeps them disjoint: the planted
    lost-update races {e only} under schedule perturbation, which is
    exactly what the explorer must be able to catch (and round-robin must
    not). [~buggy:false] ("planted_bug_fixed") writes without yielding
    inside the window and passes under every schedule. *)

val rma_epoch_bug : buggy:bool -> workload
(** The one-sided self-test: a ring of 4 KiB puts on windows created
    with the [eager_apply] instrumentation, probed between the put and
    the closing fence. With [~buggy:true] ("rma_fence_bug") the target
    applies updates on arrival, so a put can become visible {e before}
    [win_fence] — but only when the virtual clock passes the put's
    arrival floor before some rank's pre-fence probe, which strict
    round-robin never does (its probes run before the charges
    accumulate) and perturbed schedules do: exactly the
    schedule-dependent epoch violation the explorer must catch, shrink
    and commit to the corpus. [~buggy:false] ("rma_fence_bug_fixed")
    uses the production deferred-apply path and is clean under every
    schedule. *)

val planted_detector_bug : buggy:bool -> workload
(** The failure-detector self-test: a two-rank exchange whose busy rank
    computes 500us of virtual time before replying. With [~buggy:true]
    ("planted_detector_bug") the world runs a heartbeat timeout of 200us
    — shorter than that silence — so a {e live} rank is swept into the
    declared-dead set and the workload reports a ["planted-detector"]
    violation; the explorer must catch and shrink this. [~buggy:false]
    uses {!Mpi_core.Ft.default_detector}, whose timeout dwarfs the
    compute phase, and passes under every schedule. *)

val kill_workloads : unit -> workload list
(** The rank-death workloads ("kill_allreduce", "kill_p2p",
    "kill_hier_leader" — the latter on a 2x2-node topology with the
    victim drawn from the shard leaders, so the two-level schedule is
    torn at its fan-in point and the shrunken communicator exercises
    both the uneven-shard and flat-fallback paths): [4]-rank
    jobs that run their work inside the uniform ULFM recovery loop
    (attempt, [comm_agree] on the outcome, on failure revoke + shrink +
    retry over the survivors) under a fault plan extended with one
    {!Mpi_core.Fault.kill} whose victim and time derive from the fault
    seed ({!kill_of_fault}). Checked with
    {!Invariant.survivor_convergence} plus a membership-implies-value
    oracle; the digest is the constant ["converged"], since which ranks
    survive legitimately varies with the fault seed. Not in the default
    exploration set — the kill sweep ([figures killsweep], CI) drives
    them across seeds. *)

val hier_leader_victims : int list
(** The shard-leader ranks "kill_hier_leader" draws its victim from
    (exposed so the sweep CSV annotates that workload's rows with the
    right victim). *)

val kill_of_fault :
  ?victims:int list -> seed:int option -> n:int -> unit -> Mpi_core.Fault.kill
(** The kill a fault seed implies for an [n]-rank kill workload: victim
    uniform over ranks (or over [victims] when a workload restricts the
    candidate set, e.g. to shard leaders), time uniform over the
    workload's active window (so sweeps hit pre-operation, mid-collective
    and after-completion deaths). [None] (no fault seed) kills the last
    candidate at its first operation. Exposed so the sweep CSV can
    annotate rows. *)

type outcome = {
  o_workload : string;
  o_policy : Policy.t;
  o_fault_seed : int option;
  o_digest : string;  (** ["<crash>"] / ["<deadlock>"] on abnormal exit *)
  o_violations : Invariant.violation list;
  o_trace : int list;  (** the recorded decision stream *)
}

val failed : outcome -> bool

val run_one :
  ?fault_seed:int -> ?quick:bool -> workload -> Policy.t -> outcome
(** One run under one policy, decisions recorded. Exceptions (including
    {!Fiber.Deadlock}) become a ["crash"] violation, never an escape.
    [quick] shrinks rank counts and round counts (CI smoke). *)

type report = {
  r_runs : int;
  r_baselines : (string * string) list;
      (** per workload: the round-robin digest every seeded run must
          reproduce *)
  r_failures : outcome list;  (** all failing outcomes, traces dropped *)
  r_shrunk : (string * Corpus.entry) list;
      (** per workload with failures: the first failure's trace,
          minimized and packaged for the corpus *)
}

val explore :
  ?quick:bool ->
  ?faults:bool ->
  ?progress:(outcome -> unit) ->
  workloads:workload list ->
  seeds:int ->
  unit ->
  report
(** Baseline + seeds 1..[seeds] per workload; with [faults] each seed is
    additionally crossed with [Policy.fault_seed] (faultable workloads
    only — the reliable layer must mask the faults, so the digest and all
    invariants still hold). A seeded digest differing from the baseline
    is reported as a ["digest"] violation. [progress] sees every outcome
    as it completes (the CLI's per-run CSV hook). *)

val minimize_failure :
  ?fault_seed:int ->
  ?quick:bool ->
  ?baseline:string ->
  workload ->
  int list ->
  int list
(** Shrink a failing decision trace with {!Shrink.minimize}, replaying
    under [Policy.Replay]; a run counts as failing if it reports any
    violation or (when [baseline] is given) its digest diverges. *)

val replay_entry : ?quick:bool -> Corpus.entry -> (outcome, string) result
(** Replay a corpus entry and check it against its expectation:
    [Must_fail] entries must still produce a violation (the detector
    works), [Must_pass] entries must stay clean. [Error] carries a
    human-readable mismatch description. *)
