module Mpi = Mpi_core.Mpi
module Collectives = Mpi_core.Collectives
module Fault = Mpi_core.Fault
module Ft = Mpi_core.Ft
module Comm = Mpi_core.Comm
module Bv = Mpi_core.Buffer_view
module Rma = Mpi_core.Rma
module Tm = Mpi_core.Tag_match
module World = Motor.World
module Ot = Motor.Object_transport
module Smp = Motor.System_mp
module Om = Vm.Object_model
module Classes = Vm.Classes
module Types = Vm.Types

type workload = {
  w_name : string;
  w_faultable : bool;
  w_default : bool;
  w_run :
    fault:Fault.plan option -> quick:bool -> string * Invariant.violation list;
}

let name w = w.w_name
let faultable w = w.w_faultable

(* ------------------------------------------------------------------ *)
(* Workload: point-to-point ring (eager sendrecv + rendezvous ssend)   *)
(* ------------------------------------------------------------------ *)

(* Payload evolves every round as a function of what was received, so any
   reordering or corruption the stack fails to mask changes the digest.
   The final exchange uses synchronous mode in parity order (even ranks
   send first), covering the RTS/CTS rendezvous path without deadlock. *)
let ring_run ~fault ~quick =
  let n = if quick then 3 else 4 in
  let rounds = if quick then 3 else 5 in
  let size = 48 in
  let w = Mpi.create_world ?fault ~n () in
  let mon = Invariant.attach w in
  let comm = Mpi.comm_world w in
  let finals = Array.make n Bytes.empty in
  let body r () =
    let p = Mpi.proc w r in
    let buf = Bytes.init size (fun i -> Char.chr ((r + i) land 0xff)) in
    let inb = Bytes.create size in
    let mix round =
      for i = 0 to size - 1 do
        Bytes.set buf i
          (Char.chr
             ((Char.code (Bytes.get buf i)
              + (Char.code (Bytes.get inb i) * 31)
              + round)
             land 0xff))
      done
    in
    for round = 1 to rounds do
      ignore
        (Mpi.sendrecv p ~comm
           ~dst:((r + 1) mod n)
           ~send_tag:round ~send:(Bv.of_bytes buf)
           ~src:((r + n - 1) mod n)
           ~recv_tag:round ~recv:(Bv.of_bytes inb));
      mix round
    done;
    (if r mod 2 = 0 then begin
       Mpi.ssend p ~comm ~dst:((r + 1) mod n) ~tag:99 (Bv.of_bytes buf);
       ignore
         (Mpi.recv p ~comm ~src:((r + n - 1) mod n) ~tag:99
            (Bv.of_bytes inb))
     end
     else begin
       ignore
         (Mpi.recv p ~comm ~src:((r + n - 1) mod n) ~tag:99
            (Bv.of_bytes inb));
       Mpi.ssend p ~comm ~dst:((r + 1) mod n) ~tag:99 (Bv.of_bytes buf)
     end);
    mix 0;
    finals.(r) <- Bytes.copy buf
  in
  Fiber.run (List.init n (fun r -> (Printf.sprintf "ring%d" r, body r)));
  let digest =
    Digest.to_hex
      (Digest.bytes (Bytes.concat Bytes.empty (Array.to_list finals)))
  in
  let bad = Invariant.order_violations mon @ Invariant.quiescence w in
  Invariant.detach mon;
  (digest, bad)

(* ------------------------------------------------------------------ *)
(* Workload: chained allreduce + non-commutative reduce                *)
(* ------------------------------------------------------------------ *)

(* 2x2 matrix multiply over Z/256: associative, not commutative — the
   binomial reduce must fold in rank order under every schedule. *)
let matmul acc x =
  let g b i = Char.code (Bytes.get b i) in
  let a0 = g acc 0 and a1 = g acc 1 and a2 = g acc 2 and a3 = g acc 3 in
  let b0 = g x 0 and b1 = g x 1 and b2 = g x 2 and b3 = g x 3 in
  Bytes.set acc 0 (Char.chr (((a0 * b0) + (a1 * b2)) land 0xff));
  Bytes.set acc 1 (Char.chr (((a0 * b1) + (a1 * b3)) land 0xff));
  Bytes.set acc 2 (Char.chr (((a2 * b0) + (a3 * b2)) land 0xff));
  Bytes.set acc 3 (Char.chr (((a2 * b1) + (a3 * b3)) land 0xff))

let matrix_of_rank r =
  Bytes.init 4 (fun i -> Char.chr (((r * 5) + (i * 3) + 1) land 0xff))

let seq_product lo hi =
  let acc = Bytes.copy (matrix_of_rank lo) in
  for r = lo + 1 to hi do
    matmul acc (matrix_of_rank r)
  done;
  acc

let allreduce_chain_run ~fault ~quick =
  let n = if quick then 3 else 4 in
  let rounds = if quick then 2 else 4 in
  let w = Mpi.create_world ?fault ~n () in
  let mon = Invariant.attach w in
  let comm = Mpi.comm_world w in
  let finals = Array.make n 0L in
  let reduced = Array.make n Bytes.empty in
  let body r () =
    let p = Mpi.proc w r in
    let acc = ref (Int64.of_int (r + 1)) in
    for round = 1 to rounds do
      let b = Bytes.create 8 in
      Bytes.set_int64_le b 0
        (Int64.add !acc (Int64.of_int (round * (r + 1))));
      let out = Collectives.allreduce p comm ~op:Collectives.sum_i64 b in
      acc := Bytes.get_int64_le out 0
    done;
    finals.(r) <- !acc;
    match Collectives.reduce p comm ~root:0 ~op:matmul (matrix_of_rank r) with
    | Some res -> reduced.(r) <- Bytes.copy res
    | None -> ()
  in
  Fiber.run (List.init n (fun r -> (Printf.sprintf "chain%d" r, body r)));
  let semantic = ref [] in
  Array.iteri
    (fun r f ->
      if f <> finals.(0) then
        semantic :=
          Invariant.v "agreement" "rank %d ended with %Ld, rank 0 with %Ld" r
            f finals.(0)
          :: !semantic)
    finals;
  if not (Bytes.equal reduced.(0) (seq_product 0 (n - 1))) then
    semantic :=
      Invariant.v "reduce-order"
        "non-commutative reduce result differs from the rank-order fold"
      :: !semantic;
  let digest =
    Digest.to_hex
      (Digest.string
         (String.concat ","
            (Array.to_list (Array.map Int64.to_string finals))
         ^ "|"
         ^ Bytes.to_string reduced.(0)))
  in
  let bad =
    Invariant.order_violations mon @ Invariant.quiescence w
    @ List.rev !semantic
  in
  Invariant.detach mon;
  (digest, bad)

(* ------------------------------------------------------------------ *)
(* Workload: two-level collectives on a multi-node topology            *)
(* ------------------------------------------------------------------ *)

(* A 2x2-node world, so [`Auto] routes every collective through the
   hierarchical (shard + leader) algorithms: chained allreduces, an
   explicit `Hier-vs-`Linear cross-check, a non-commutative fold and a
   bcast from a non-leader root, digested for schedule invariance. *)
let hier_allreduce_run ~fault ~quick =
  let nodes = 2 and cores = 2 in
  let n = nodes * cores in
  let rounds = if quick then 2 else 4 in
  let w =
    Mpi.create_world ?fault
      ~topology:(Simtime.Topology.make ~nodes ~cores)
      ~n ()
  in
  let mon = Invariant.attach w in
  let comm = Mpi.comm_world w in
  let finals = Array.make n 0L in
  let bcasts = Array.make n Bytes.empty in
  let semantic = ref [] in
  let body r () =
    let p = Mpi.proc w r in
    let acc = ref (Int64.of_int ((r * 3) + 1)) in
    for round = 1 to rounds do
      let b = Bytes.create 8 in
      Bytes.set_int64_le b 0
        (Int64.add !acc (Int64.of_int (round * (r + 2))));
      (* `Auto: hierarchical, multi-node topology. *)
      let out = Collectives.allreduce p comm ~op:Collectives.sum_i64 b in
      acc := Bytes.get_int64_le out 0
    done;
    finals.(r) <- !acc;
    (* The two-level result must equal the flat oracle's, including for
       a non-commutative operator (rank-order fold across shards). *)
    let hier =
      Collectives.allreduce ~algo:`Hier ~commutative:false p comm
        ~op:matmul (matrix_of_rank r)
    in
    let flat =
      Collectives.allreduce ~algo:`Linear ~commutative:false p comm
        ~op:matmul (matrix_of_rank r)
    in
    if not (Bytes.equal hier flat) then
      semantic :=
        Invariant.v "hier-oracle"
          "rank %d: hierarchical allreduce differs from the flat oracle" r
        :: !semantic;
    Collectives.barrier p comm;
    (* Bcast from a non-leader root exercises the relocation hop. *)
    let bb =
      if r = n - 1 then
        Bytes.init 12 (fun i -> Char.chr (((i * 13) + 5) land 0xff))
      else Bytes.create 12
    in
    Collectives.bcast p comm ~root:(n - 1) (Bv.of_bytes bb);
    bcasts.(r) <- Bytes.copy bb
  in
  Fiber.run (List.init n (fun r -> (Printf.sprintf "hier%d" r, body r)));
  Array.iteri
    (fun r f ->
      if f <> finals.(0) then
        semantic :=
          Invariant.v "agreement" "rank %d ended with %Ld, rank 0 with %Ld"
            r f finals.(0)
          :: !semantic)
    finals;
  let digest =
    Digest.to_hex
      (Digest.string
         (String.concat ","
            (Array.to_list (Array.map Int64.to_string finals))
         ^ "|"
         ^ String.concat "," (Array.to_list (Array.map Bytes.to_string bcasts))))
  in
  let bad =
    Invariant.order_violations mon @ Invariant.quiescence w
    @ List.rev !semantic
  in
  Invariant.detach mon;
  (digest, bad)

(* ------------------------------------------------------------------ *)
(* Workload: overlapping nonblocking collectives + point-to-point      *)
(* ------------------------------------------------------------------ *)

let icoll_overlap_run ~fault ~quick =
  let n = if quick then 3 else 4 in
  let w = Mpi.create_world ?fault ~n () in
  let mon = Invariant.attach w in
  let comm = Mpi.comm_world w in
  let per_rank = Array.make n "" in
  let body r () =
    let p = Mpi.proc w r in
    let rb = Collectives.ibarrier p comm in
    let bbuf =
      Bytes.init 16 (fun i ->
          if r = 0 then Char.chr (((i * 11) + 3) land 0xff) else '\000')
    in
    let rbc = Collectives.ibcast p comm ~root:0 (Bv.of_bytes bbuf) in
    let ab = Bytes.create 8 in
    Bytes.set_int64_le ab 0 (Int64.of_int ((r + 1) * 1000));
    let rar, asum =
      Collectives.iallreduce p comm ~op:Collectives.sum_i64 ab
    in
    let out = Bytes.init 24 (fun i -> Char.chr (((r * 17) + i) land 0xff)) in
    let inb = Bytes.create 24 in
    let rs =
      Mpi.isend p ~comm ~dst:((r + 1) mod n) ~tag:77 (Bv.of_bytes out)
    in
    let rr =
      Mpi.irecv p ~comm ~src:((r + n - 1) mod n) ~tag:77 (Bv.of_bytes inb)
    in
    Mpi.wait_all p [ rb; rbc; rar; rs; rr ];
    per_rank.(r) <-
      Printf.sprintf "%s|%s|%Ld" (Bytes.to_string bbuf)
        (Bytes.to_string inb)
        (Bytes.get_int64_le asum 0)
  in
  Fiber.run (List.init n (fun r -> (Printf.sprintf "icoll%d" r, body r)));
  let digest =
    Digest.to_hex (Digest.string (String.concat "#" (Array.to_list per_rank)))
  in
  let bad = Invariant.order_violations mon @ Invariant.quiescence w in
  Invariant.detach mon;
  (digest, bad)

(* ------------------------------------------------------------------ *)
(* Workload: object transport with collections forced mid-flight       *)
(* ------------------------------------------------------------------ *)

let node_class registry =
  match Classes.find_by_name registry "CheckNode" with
  | Some mt -> mt
  | None ->
      let id = Classes.declare registry ~name:"CheckNode" in
      let arr = Classes.array_class registry (Types.Eprim Types.I1) in
      Classes.complete registry id ~transportable:true
        ~fields:
          [
            ("data", Types.Ref arr.Classes.c_id, true);
            ("next", Types.Ref id, true);
          ]
        ()

let osend_gc_run ~fault:_ ~quick:_ =
  let w = World.create ~n:2 () in
  let mon = Invariant.attach (World.mpi w) in
  let comm = World.comm_world w in
  let per_rank = Array.make 2 "" in
  let pins = ref [] in
  World.run w (fun ctx ->
      let gc = World.gc ctx in
      let registry = World.registry ctx in
      let mt = node_class registry in
      let fdata = Classes.field mt "data" in
      let fnext = Classes.field mt "next" in
      if World.rank ctx = 0 then begin
        (* Zero-copy send with a collection while the request is in
           flight: the conditional pin must keep the payload in place. *)
        let arr = Om.alloc_array gc (Types.Eprim Types.I1) 64 in
        for i = 0 to 63 do
          Om.set_elem_int gc arr i (((i * 7) + 1) land 0xff)
        done;
        let req = Ot.isend ctx ~comm ~dst:1 ~tag:1 arr in
        Vm.Gc.collect gc ~full:false;
        ignore (Ot.wait ctx req);
        Om.free gc arr;
        (* A three-node linked graph through the serializer. *)
        let head = ref (Om.null gc) in
        for i = 2 downto 0 do
          let node = Om.alloc_instance gc mt in
          let data = Om.alloc_array gc (Types.Eprim Types.I1) 8 in
          for j = 0 to 7 do
            Om.set_elem_int gc data j (((i * 13) + j) land 0xff)
          done;
          Om.set_ref gc node fdata (Some data);
          Om.free gc data;
          if not (Om.is_null gc !head) then begin
            Om.set_ref gc node fnext (Some !head);
            Om.free gc !head
          end;
          head := node
        done;
        Smp.osend ctx ~comm ~dst:1 ~tag:2 !head;
        Om.free gc !head;
        let back = Om.alloc_array gc (Types.Eprim Types.I1) 64 in
        ignore (Ot.recv ctx ~comm ~src:1 ~tag:3 back);
        let sum = ref 0 in
        for i = 0 to 63 do
          sum := !sum + Om.get_elem_int gc back i
        done;
        Om.free gc back;
        per_rank.(0) <- Printf.sprintf "echo=%d" !sum;
        pins := Invariant.pin_table ~rank:0 gc @ !pins
      end
      else begin
        let arr = Om.alloc_array gc (Types.Eprim Types.I1) 64 in
        let req = Ot.irecv ctx ~comm ~src:0 ~tag:1 arr in
        Vm.Gc.collect gc ~full:false;
        ignore (Ot.wait ctx req);
        let graph, _ = Smp.orecv ctx ~comm ~src:0 ~tag:2 in
        let gsum = ref 0 and len = ref 0 in
        let node = ref graph in
        while not (Om.is_null gc !node) do
          incr len;
          (match Om.get_ref gc !node fdata with
          | Some data ->
              for j = 0 to 7 do
                gsum := !gsum + Om.get_elem_int gc data j
              done;
              Om.free gc data
          | None -> ());
          let next = Om.get_ref gc !node fnext in
          Om.free gc !node;
          node := (match next with Some nx -> nx | None -> Om.null gc)
        done;
        let echo = Om.alloc_array gc (Types.Eprim Types.I1) 64 in
        for i = 0 to 63 do
          Om.set_elem_int gc echo i
            ((Om.get_elem_int gc arr i + !gsum + !len) land 0xff)
        done;
        Om.free gc arr;
        Ot.send ctx ~comm ~dst:0 ~tag:3 echo;
        Om.free gc echo;
        per_rank.(1) <- Printf.sprintf "graph=%d/%d" !gsum !len;
        pins := Invariant.pin_table ~rank:1 gc @ !pins
      end);
  let digest =
    Digest.to_hex (Digest.string (String.concat "#" (Array.to_list per_rank)))
  in
  let bad =
    Invariant.order_violations mon
    @ Invariant.quiescence (World.mpi w)
    @ !pins
  in
  Invariant.detach mon;
  (digest, bad)

(* ------------------------------------------------------------------ *)
(* Workload: one-sided fence epochs (put/accumulate/get + oracles)     *)
(* ------------------------------------------------------------------ *)

let rma_pattern ~rank ~len =
  Bytes.init len (fun i -> Char.chr (((rank * 37) + i + 5) land 0xff))

(* Active-target RMA on the RDMA channel: three fence epochs covering an
   eager put ring, accumulates into rank 0 (a commutative sum and a
   non-commutative matmul that must fold in rank order), a
   rendezvous-sized put ring (above the CH3 eager threshold, so a fault
   plan exercises RTS/CTS retransmission under the reliable layer and
   the RDMA rendezvous cost path), and a get ring. The epoch-discipline
   invariant: a probe between the puts and the closing fence must find
   the local window untouched — updates become visible only at the
   sync. *)
let rma_fence_run ~fault ~quick =
  let n = if quick then 3 else 4 in
  let small = 2048 in
  let big = if quick then 66_000 else 80_000 in
  let blk = 4096 + big in
  let w = Mpi.create_world ?fault ~channel:`Rdma ~n () in
  let mon = Invariant.attach w in
  let comm = Mpi.comm_world w in
  let semantic = ref [] in
  let finals = Array.make n "" in
  let flag inv r fmt = semantic := Invariant.v inv fmt r :: !semantic in
  let body r () =
    let p = Mpi.proc w r in
    let right = (r + 1) mod n and left = (r + n - 1) mod n in
    let mine = Bytes.make blk '\000' in
    if r = 0 then begin
      (* Matmul identity at the accumulate cell. *)
      Bytes.set mine 8 '\001';
      Bytes.set mine 11 '\001'
    end;
    let win = Rma.win_create p ~comm mine in
    let before = Bytes.copy mine in
    (* Epoch 0: eager put ring + accumulates into rank 0. *)
    Rma.put win ~target:right ~target_off:1024 (rma_pattern ~rank:r ~len:small)
      ~off:0 ~len:small;
    let contrib = Bytes.create 8 in
    Bytes.set_int64_le contrib 0 (Int64.of_int ((r + 1) * 11));
    Rma.accumulate win ~target:0 ~target_off:0 ~op:Rma.Sum contrib ~off:0
      ~len:8;
    Rma.accumulate win ~target:0 ~target_off:8 ~op:Rma.Matmul
      (matrix_of_rank r) ~off:0 ~len:4;
    (* The epoch invariant: nothing is visible before the closing sync,
       under any schedule (iprobe pumps progress, so arrived updates
       would have their chance to leak here if the target applied them
       eagerly). *)
    ignore (Mpi.iprobe p ~comm ~src:Tm.any_source ~tag:424242);
    if not (Bytes.equal mine before) then
      flag "rma-epoch" r "rank %d: window mutated before win_fence";
    Rma.win_fence win;
    if
      not
        (Bytes.equal
           (Bytes.sub mine 1024 small)
           (rma_pattern ~rank:left ~len:small))
    then flag "rma-put" r "rank %d: fence did not deliver the put ring";
    if r = 0 then begin
      let expect_sum =
        Int64.of_int (11 * (n * (n + 1) / 2))
      in
      if Bytes.get_int64_le mine 0 <> expect_sum then
        flag "rma-acc" r "rank %d: commutative accumulate sum wrong";
      if not (Bytes.equal (Bytes.sub mine 8 4) (seq_product 0 (n - 1))) then
        flag "rma-order" r
          "rank %d: non-commutative accumulate broke rank order"
    end;
    (* Epoch 1: rendezvous-sized put ring. *)
    Rma.put win ~target:right ~target_off:4096 (rma_pattern ~rank:(r + n) ~len:big)
      ~off:0 ~len:big;
    Rma.win_fence win;
    if
      not
        (Bytes.equal (Bytes.sub mine 4096 big)
           (rma_pattern ~rank:(left + n) ~len:big))
    then flag "rma-rndv" r "rank %d: rendezvous put ring wrong";
    (* Epoch 2: read the right neighbour's small slot back. *)
    let fetched = Bytes.create small in
    Rma.get win ~target:right ~target_off:1024 fetched ~off:0 ~len:small;
    if not (Bytes.equal fetched (rma_pattern ~rank:r ~len:small)) then
      flag "rma-get" r "rank %d: get disagrees with the committed window";
    Rma.win_fence win;
    finals.(r) <-
      Digest.to_hex (Digest.bytes mine) ^ Digest.to_hex (Digest.bytes fetched);
    Rma.win_free win
  in
  Fiber.run (List.init n (fun r -> (Printf.sprintf "rmaf%d" r, body r)));
  let digest =
    Digest.to_hex (Digest.string (String.concat "#" (Array.to_list finals)))
  in
  let bad =
    Invariant.order_violations mon @ Invariant.quiescence w
    @ List.rev !semantic
  in
  Invariant.detach mon;
  (digest, bad)

(* ------------------------------------------------------------------ *)
(* Workload: passive-target lock/unlock mutual exclusion               *)
(* ------------------------------------------------------------------ *)

(* Every rank runs two exclusive-lock read-modify-write sessions against
   rank 0's window (get the counter, add, put it back — the put applies
   at unlock, before the next grant, so the increments are atomic under
   every grant order), writes its own slot, and finally checks the
   total under a shared lock. Grant order varies with the schedule; the
   final state must not. *)
let rma_lock_run ~fault ~quick =
  let n = if quick then 3 else 4 in
  let rounds = 2 in
  let blk = 8 * (n + 1) in
  let w = Mpi.create_world ?fault ~n () in
  let mon = Invariant.attach w in
  let comm = Mpi.comm_world w in
  let semantic = ref [] in
  let finals = Array.make n "" in
  let body r () =
    let p = Mpi.proc w r in
    let mine = Bytes.make blk '\000' in
    let win = Rma.win_create p ~comm mine in
    let cell = Bytes.create 8 in
    for round = 1 to rounds do
      Rma.win_lock win ~target:0;
      Rma.get win ~target:0 ~target_off:0 cell ~off:0 ~len:8;
      Bytes.set_int64_le cell 0
        (Int64.add (Bytes.get_int64_le cell 0) (Int64.of_int (r + 1)));
      Rma.put win ~target:0 ~target_off:0 cell ~off:0 ~len:8;
      if round = 1 then begin
        (* My slot, same session: applied atomically at the unlock. *)
        Bytes.set_int64_le cell 0 (Int64.of_int ((r * 1000) + 7));
        Rma.put win ~target:0 ~target_off:(8 * (r + 1)) cell ~off:0 ~len:8
      end;
      Rma.win_unlock win ~target:0
    done;
    (* Everyone waits for all sessions, then audits under a shared
       lock. *)
    Rma.win_fence win;
    Rma.win_lock ~exclusive:false win ~target:0;
    let audit = Bytes.create blk in
    Rma.get win ~target:0 ~target_off:0 audit ~off:0 ~len:blk;
    Rma.win_unlock win ~target:0;
    (* Second barrier: rank 0 must not reach win_free while a delayed
       audit lock from another rank is still held on its window. *)
    Rma.win_fence win;
    let expect = Int64.of_int (rounds * (n * (n + 1) / 2)) in
    if Bytes.get_int64_le audit 0 <> expect then
      semantic :=
        Invariant.v "rma-lock-atomic"
          "rank %d read counter %Ld, expected %Ld (lost update under \
           lock)"
          r
          (Bytes.get_int64_le audit 0)
          expect
        :: !semantic;
    for s = 0 to n - 1 do
      if Bytes.get_int64_le audit (8 * (s + 1)) <> Int64.of_int ((s * 1000) + 7)
      then
        semantic :=
          Invariant.v "rma-lock-slot" "rank %d sees a corrupted slot %d" r s
          :: !semantic
    done;
    finals.(r) <- Digest.to_hex (Digest.bytes audit);
    Rma.win_free win
  in
  Fiber.run (List.init n (fun r -> (Printf.sprintf "rmal%d" r, body r)));
  let digest =
    Digest.to_hex (Digest.string (String.concat "#" (Array.to_list finals)))
  in
  let bad =
    Invariant.order_violations mon @ Invariant.quiescence w
    @ List.rev !semantic
  in
  Invariant.detach mon;
  (digest, bad)

(* ------------------------------------------------------------------ *)
(* Workload: the planted epoch bug (one-sided self-test)               *)
(* ------------------------------------------------------------------ *)

(* A window created with [eager_apply] applies updates the moment they
   arrive instead of at the closing fence. Whether the probe between a
   neighbour's put and the fence can see the leak depends on virtual
   time: the 4 KiB puts have an arrival floor well past the charges a
   rank accumulates before its probe, so strict round-robin always
   probes too early and stays clean — only a perturbed schedule lets
   the clock (driven by the other ranks' charges) pass the floor before
   some rank's probe pumps its device. The fixed variant defers (the
   production path) and is clean under every schedule. *)
let rma_epoch_run ~buggy ~fault:_ ~quick =
  let n = if quick then 3 else 4 in
  let blk = 4096 in
  let w = Mpi.create_world ~n () in
  let mon = Invariant.attach w in
  let comm = Mpi.comm_world w in
  let semantic = ref [] in
  let finals = Array.make n "" in
  let body r () =
    let p = Mpi.proc w r in
    let right = (r + 1) mod n and left = (r + n - 1) mod n in
    let mine = Bytes.make blk '\000' in
    let win = Rma.win_create ~eager_apply:buggy p ~comm mine in
    let before = Bytes.copy mine in
    Rma.put win ~target:right ~target_off:0 (rma_pattern ~rank:r ~len:blk)
      ~off:0 ~len:blk;
    (* One pre-fence probe, directly after the put: it pumps the device
       once, so an arrived eager-applied update gets exactly one chance
       to leak here. Under round-robin the probe runs before the
       neighbour's put has crossed its virtual-time arrival floor; a
       perturbed schedule can park this rank while the others' charges
       (or a blocked-world clock leap) pass the floor first. *)
    ignore (Mpi.iprobe p ~comm ~src:Tm.any_source ~tag:424242);
    if not (Bytes.equal mine before) then
      semantic :=
        Invariant.v "rma-epoch"
          "rank %d: put visible before win_fence (eager apply)" r
        :: !semantic;
    Rma.win_fence win;
    if not (Bytes.equal mine (rma_pattern ~rank:left ~len:blk)) then
      semantic :=
        Invariant.v "rma-put" "rank %d: fence did not deliver the put" r
        :: !semantic;
    finals.(r) <- Digest.to_hex (Digest.bytes mine);
    Rma.win_free win
  in
  Fiber.run (List.init n (fun r -> (Printf.sprintf "rmab%d" r, body r)));
  let digest =
    Digest.to_hex (Digest.string (String.concat "#" (Array.to_list finals)))
  in
  let bad =
    Invariant.order_violations mon @ Invariant.quiescence w
    @ List.rev !semantic
  in
  Invariant.detach mon;
  (digest, bad)

(* ------------------------------------------------------------------ *)
(* Workloads: rank death under the ULFM recovery loop                  *)
(* ------------------------------------------------------------------ *)

(* A detector fast enough that detecting a death costs microseconds of
   virtual time, not the default milliseconds — the kill sweep runs
   hundreds of worlds. *)
let sweep_detector = { Ft.hb_period_ns = 5_000.0; hb_timeout_ns = 200_000.0 }

let kill_ranks = 4

(* Victim and kill time come from the fault seed, so a seed sweep
   exercises deaths in every phase of the workload: before the victim's
   first operation, mid-collective (mixed outcomes — some ranks complete
   the round, others see [Proc_failed]; reconciling that asymmetry is
   what [comm_agree] is for), or after the work finished (no failure
   observed at all, the rank simply exits). Without a fault seed the
   victim is the last rank, killed at its first operation. When
   [victims] restricts the candidate set (e.g. to shard leaders), the
   seed draws an index into that list instead of a raw rank. *)
let kill_of_fault ?victims ~seed ~n () =
  let candidates =
    match victims with None -> List.init n Fun.id | Some vs -> vs
  in
  let k = List.length candidates in
  match seed with
  | None -> Fault.kill ~rank:(List.nth candidates (k - 1)) ~at_ns:1_000.0 ()
  | Some s ->
      let idx =
        min (k - 1)
          (int_of_float
             (Fault.draw ~seed:s ~packet:0 ~salt:901 *. float_of_int k))
      in
      let at_ns =
        500.0 +. (Fault.draw ~seed:s ~packet:0 ~salt:902 *. 80_000.0)
      in
      Fault.kill ~rank:(List.nth candidates idx) ~at_ns ()

(* The uniform ULFM recovery loop: attempt the work, agree on whether
   every member succeeded, and on any failure revoke, shrink and retry
   over the survivors. The unilateral revoke in the failure arm matters
   for point-to-point work: a survivor blocked on a pairwise operation
   with a live partner that already bailed out would otherwise hang. *)
let recover p comm work =
  let rec attempt () =
    let ok =
      match work !comm with
      | () -> 1
      | exception (Ft.Proc_failed _ | Ft.Revoked _) ->
          Mpi.comm_revoke p !comm;
          0
    in
    if Mpi.comm_agree p !comm ~value:ok <> 1 then begin
      Mpi.comm_revoke p !comm;
      comm := Mpi.comm_shrink p !comm;
      attempt ()
    end
  in
  attempt ()

(* Shared driver: run [work] (which must leave this rank's converged
   value in a string) under the recovery loop on every rank, then check
   survivor convergence plus a per-workload oracle tying the value to the
   final membership. The digest is constant: which ranks survive depends
   on the fault seed, so correctness is judged by the invariants, not by
   comparing against the no-fault baseline digest. *)
let kill_run ?topology ?victims ~wname ~work ~oracle ~fault ~quick:_ () =
  let n = kill_ranks in
  let kill =
    kill_of_fault ?victims
      ~seed:(Option.map (fun p -> p.Fault.seed) fault)
      ~n ()
  in
  let plan =
    match fault with
    | Some p -> { p with Fault.kills = [ kill ] }
    | None -> Fault.plan ~kills:[ kill ] ()
  in
  let w =
    Mpi.create_world ?topology ~fault:plan ~detector:sweep_detector ~n ()
  in
  let mon = Invariant.attach w in
  let reports = ref [] in
  let semantic = ref [] in
  let body r () =
    let p = Mpi.proc w r in
    let comm = ref (Mpi.comm_world w) in
    let value = ref 0L in
    recover p comm (fun c -> work p c value);
    let members = Comm.members !comm in
    let expect = oracle members in
    if !value <> expect then
      semantic :=
        Invariant.v "oracle"
          "rank %d converged to %Ld but its membership implies %Ld" r !value
          expect
        :: !semantic;
    reports := (r, members, Int64.to_string !value) :: !reports
  in
  Fiber.run
    (List.init n (fun r ->
         ( Printf.sprintf "%s%d" wname r,
           fun () -> Mpi.rank_guard w r (body r) )));
  (* "Survivor" means the rank finished alive: a victim killed after
     its last operation is torn down but never declared (nobody had to
     detect it), so [dead_ranks] alone would under-count the dead. *)
  let out =
    match Mpi.ft_handle w with
    | Some ft -> Ft.out_ranks ft
    | None -> []
  in
  let survivors =
    List.filter (fun r -> not (List.mem r out)) (List.init n Fun.id)
  in
  let bad =
    Invariant.order_violations mon
    @ Invariant.quiescence w
    @ Invariant.survivor_convergence ~survivors !reports
    @ List.rev !semantic
  in
  Invariant.detach mon;
  ("converged", bad)

(* Collective flavor: a summing allreduce; the aborted-schedule path,
   the collective-failure flood and agreement over mixed outcomes. *)
let kill_allreduce_run ~fault ~quick =
  let work p c value =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 (Int64.of_int (Mpi.rank p + 1));
    let out = Collectives.allreduce p c ~op:Collectives.sum_i64 b in
    value := Bytes.get_int64_le out 0
  in
  let oracle members =
    Array.fold_left
      (fun acc m -> Int64.add acc (Int64.of_int (m + 1)))
      0L members
  in
  kill_run ~wname:"killall" ~work ~oracle ~fault ~quick ()

(* Point-to-point flavor: a ring allreduce by token passing, so failures
   surface on pairwise operations (and on ranks not adjacent to the
   victim only via the revoke flood). *)
let kill_p2p_run ~fault ~quick =
  let work p c value =
    let size = Comm.size c in
    let me = Mpi.comm_rank p c in
    let cur = ref (Int64.of_int ((Mpi.rank p + 1) * 7)) in
    let acc = ref !cur in
    let sbuf = Bytes.create 8 and rbuf = Bytes.create 8 in
    for _ = 1 to size - 1 do
      Bytes.set_int64_le sbuf 0 !cur;
      ignore
        (Mpi.sendrecv p ~comm:c
           ~dst:((me + 1) mod size)
           ~send_tag:5 ~send:(Bv.of_bytes sbuf)
           ~src:((me + size - 1) mod size)
           ~recv_tag:5 ~recv:(Bv.of_bytes rbuf));
      cur := Bytes.get_int64_le rbuf 0;
      acc := Int64.add !acc !cur
    done;
    value := !acc
  in
  let oracle members =
    Array.fold_left
      (fun acc m -> Int64.add acc (Int64.of_int ((m + 1) * 7)))
      0L members
  in
  kill_run ~wname:"killp2p" ~work ~oracle ~fault ~quick ()

(* Hierarchical flavor: the summing allreduce again, but on a 2x2-node
   topology with the victim drawn from the shard leaders (ranks 0 and 2).
   Killing a leader tears the two-level schedule at its fan-in point;
   after the shrink the survivors form either an uneven contiguous
   communicator (victim 0 -> {1,2,3}, still hierarchical with a short
   first shard) or a non-contiguous one (victim 2 -> {0,1,3}, which falls
   back to the flat algorithms) — the recovery retry must converge on
   both shapes. *)
let hier_leader_victims = [ 0; 2 ]

let kill_hier_leader_run ~fault ~quick =
  let work p c value =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 (Int64.of_int (Mpi.rank p + 1));
    let out = Collectives.allreduce p c ~op:Collectives.sum_i64 b in
    value := Bytes.get_int64_le out 0
  in
  let oracle members =
    Array.fold_left
      (fun acc m -> Int64.add acc (Int64.of_int (m + 1)))
      0L members
  in
  kill_run
    ~topology:(Simtime.Topology.make ~nodes:2 ~cores:2)
    ~victims:hier_leader_victims ~wname:"killhier" ~work ~oracle ~fault
    ~quick ()

(* ------------------------------------------------------------------ *)
(* Workload: the planted detector bug (harness self-test)              *)
(* ------------------------------------------------------------------ *)

(* A heartbeat timeout shorter than the workload's longest silence: rank
   1 computes 500us of virtual time between arriving and replying — it
   beats on nothing while busy, so under the buggy 200us timeout the
   waiter's own progress pumps sweep the merely-busy rank into the
   declared-dead set and the wait completes with [Proc_failed]. (Under
   some schedules the busy rank finishes first and its reply declares
   the idle waiter instead — either way a live rank is declared.) The
   fixed variant uses the default detector, whose timeout dwarfs any
   compute phase here. *)
let planted_detector_run ~buggy ~fault:_ ~quick:_ =
  let detector =
    if buggy then sweep_detector else Ft.default_detector
  in
  let declared = ref None in
  let got = ref 0L in
  let compute p total =
    let env = Mpi.env (Mpi.world_of p) in
    for _ = 1 to 50 do
      Simtime.Env.charge env (total /. 50.0);
      Fiber.yield ()
    done
  in
  (* Poll nonblockingly so the two fibers interleave: a blocked wait is
     only re-tested once the run queue drains, by which time the compute
     phase would be over. *)
  let poll_recv p ~comm b =
    let req = Mpi.irecv p ~comm ~src:1 ~tag:0 b in
    while not (Mpi.test p req) do
      Fiber.yield ()
    done;
    ignore (Mpi.wait p req)
  in
  ignore
    (Mpi.run ~detector ~n:2 (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         if Mpi.rank p = 0 then begin
           let b = Bytes.create 8 in
           try
             poll_recv p ~comm (Bv.of_bytes b);
             got := Bytes.get_int64_le b 0
           with Ft.Proc_failed r -> declared := Some r
         end
         else begin
           compute p 500_000.0;
           let b = Bytes.create 8 in
           Bytes.set_int64_le b 0 3L;
           try Mpi.send p ~comm ~dst:0 ~tag:0 (Bv.of_bytes b)
           with Ft.Proc_failed r -> declared := Some r
         end));
  let bad =
    match !declared with
    | Some r ->
        [
          Invariant.v "planted-detector"
            "live rank %d declared dead: heartbeat timeout is shorter \
             than the compute phase"
            r;
        ]
    | None when !got <> 3L ->
        [ Invariant.v "planted-detector" "reply lost: got %Ld" !got ]
    | None -> []
  in
  ((if bad = [] then "ok" else "false-positive"), bad)

(* ------------------------------------------------------------------ *)
(* Workload: the planted lost-update race (harness self-test)          *)
(* ------------------------------------------------------------------ *)

(* Two fibers increment a shared counter through read/yield-window/write
   sections whose windows are phase-shifted: under strict round-robin
   "fast" has written (round 3) before "slow" reads (round 4), so the
   schedule is correct by accident — exactly the kind of latent race the
   explorer exists to surface. Random schedules overlap the windows and
   lose an update. The fixed variant writes without yielding inside the
   window. *)
let planted_bug_run ~buggy ~fault:_ ~quick:_ =
  let counter = ref 0 in
  let fast () =
    if buggy then begin
      let v = !counter in
      Fiber.yield ();
      Fiber.yield ();
      counter := v + 1
    end
    else begin
      Fiber.yield ();
      Fiber.yield ();
      counter := !counter + 1
    end
  in
  let slow () =
    Fiber.yield ();
    Fiber.yield ();
    Fiber.yield ();
    if buggy then begin
      let v = !counter in
      Fiber.yield ();
      counter := v + 1
    end
    else begin
      Fiber.yield ();
      counter := !counter + 1
    end
  in
  let noise () =
    for _ = 1 to 6 do
      Fiber.yield ()
    done
  in
  Fiber.run [ ("fast", fast); ("slow", slow); ("noise", noise) ];
  let bad =
    if !counter <> 2 then
      [
        Invariant.v "planted-race" "lost update: counter = %d, expected 2"
          !counter;
      ]
    else []
  in
  (string_of_int !counter, bad)

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let planted_bug ~buggy =
  {
    w_name = (if buggy then "planted_bug" else "planted_bug_fixed");
    w_faultable = false;
    w_default = false;
    w_run = planted_bug_run ~buggy;
  }

let rma_epoch_bug ~buggy =
  {
    w_name = (if buggy then "rma_fence_bug" else "rma_fence_bug_fixed");
    w_faultable = false;
    w_default = false;
    w_run = rma_epoch_run ~buggy;
  }

let planted_detector_bug ~buggy =
  {
    w_name =
      (if buggy then "planted_detector_bug" else "planted_detector_bug_fixed");
    w_faultable = false;
    w_default = false;
    w_run = planted_detector_run ~buggy;
  }

(* Not in the default set: the kill sweep (figures killsweep, CI) drives
   these across hundreds of fault seeds; the schedule-exploration default
   set stays kill-free so its digests keep comparing against the
   historical baselines. *)
let kill_workload_entries =
  [
    {
      w_name = "kill_allreduce";
      w_faultable = true;
      w_default = false;
      w_run = kill_allreduce_run;
    };
    {
      w_name = "kill_p2p";
      w_faultable = true;
      w_default = false;
      w_run = kill_p2p_run;
    };
    {
      w_name = "kill_hier_leader";
      w_faultable = true;
      w_default = false;
      w_run = kill_hier_leader_run;
    };
  ]

let kill_workloads () = kill_workload_entries

let registry =
  [
    {
      w_name = "ring";
      w_faultable = true;
      w_default = true;
      w_run = ring_run;
    };
    {
      w_name = "allreduce_chain";
      w_faultable = true;
      w_default = true;
      w_run = allreduce_chain_run;
    };
    {
      w_name = "hier_allreduce";
      w_faultable = true;
      w_default = true;
      w_run = hier_allreduce_run;
    };
    {
      w_name = "icoll_overlap";
      w_faultable = true;
      w_default = true;
      w_run = icoll_overlap_run;
    };
    {
      w_name = "osend_gc";
      w_faultable = false;
      w_default = true;
      w_run = osend_gc_run;
    };
    {
      w_name = "rma_fence";
      w_faultable = true;
      w_default = true;
      w_run = rma_fence_run;
    };
    {
      w_name = "rma_lock";
      w_faultable = true;
      w_default = true;
      w_run = rma_lock_run;
    };
    planted_bug ~buggy:true;
    planted_bug ~buggy:false;
    rma_epoch_bug ~buggy:true;
    rma_epoch_bug ~buggy:false;
    planted_detector_bug ~buggy:true;
    planted_detector_bug ~buggy:false;
  ]
  @ kill_workload_entries

let all_workloads () = registry
let default_workloads () = List.filter (fun w -> w.w_default) registry
let find n = List.find_opt (fun w -> w.w_name = n) registry

(* ------------------------------------------------------------------ *)
(* The explorer                                                        *)
(* ------------------------------------------------------------------ *)

type outcome = {
  o_workload : string;
  o_policy : Policy.t;
  o_fault_seed : int option;
  o_digest : string;
  o_violations : Invariant.violation list;
  o_trace : int list;
}

let failed o = o.o_violations <> []

let fault_plan seed =
  Fault.plan ~seed ~drop:0.02 ~duplicate:0.01 ~corrupt:0.01 ~delay:0.05 ()

let run_one ?fault_seed ?(quick = false) w pol =
  Policy.assert_deterministic
    (Printf.sprintf "Explore.run_one (%s under %s)" w.w_name (Policy.name pol));
  let record = Fiber.new_trace () in
  let fault = Option.map fault_plan fault_seed in
  let digest, violations =
    try Fiber.with_policy ~record (Policy.to_fiber pol) (fun () ->
            w.w_run ~fault ~quick)
    with
    | Fiber.Deadlock { policy; waiting; pending } ->
        ( "<deadlock>",
          [
            Invariant.v "crash" "deadlock under %s (blocked: %s)%s" policy
              (String.concat ", " waiting)
              (match pending with
              | [] -> ""
              | lines -> " pending: " ^ String.concat " | " lines);
          ] )
    | exn -> ("<crash>", [ Invariant.v "crash" "%s" (Printexc.to_string exn) ])
  in
  {
    o_workload = w.w_name;
    o_policy = pol;
    o_fault_seed = fault_seed;
    o_digest = digest;
    o_violations = violations;
    o_trace = Fiber.trace_to_list record;
  }

let minimize_failure ?fault_seed ?(quick = false) ?baseline w trace =
  let fails ds =
    let o = run_one ?fault_seed ~quick w (Policy.Replay ds) in
    o.o_violations <> []
    || match baseline with Some b -> o.o_digest <> b | None -> false
  in
  Shrink.minimize ~fails trace

type report = {
  r_runs : int;
  r_baselines : (string * string) list;
  r_failures : outcome list;
  r_shrunk : (string * Corpus.entry) list;
}

let explore ?(quick = false) ?(faults = false) ?progress ~workloads ~seeds ()
    =
  let emit o = match progress with Some f -> f o | None -> () in
  let runs = ref 0 in
  let baselines = ref [] in
  let failures = ref [] in
  let shrunk = ref [] in
  List.iter
    (fun w ->
      let base = run_one ~quick w Policy.Round_robin in
      incr runs;
      emit base;
      baselines := (w.w_name, base.o_digest) :: !baselines;
      let first_failure = ref (if failed base then Some base else None) in
      if failed base then failures := { base with o_trace = [] } :: !failures;
      let check seed fault_seed =
        let o = run_one ?fault_seed ~quick w (Policy.Seeded_random seed) in
        incr runs;
        let o =
          if o.o_violations = [] && o.o_digest <> base.o_digest then
            {
              o with
              o_violations =
                [
                  Invariant.v "digest"
                    "digest %s diverged from round-robin baseline %s"
                    o.o_digest base.o_digest;
                ];
            }
          else o
        in
        emit o;
        if failed o then begin
          failures := { o with o_trace = [] } :: !failures;
          if !first_failure = None then first_failure := Some o
        end
      in
      for seed = 1 to seeds do
        check seed None;
        if faults && w.w_faultable then
          check seed (Some (Policy.fault_seed ~schedule_seed:seed))
      done;
      match !first_failure with
      | Some o when o.o_trace <> [] ->
          let mini =
            minimize_failure ?fault_seed:o.o_fault_seed ~quick
              ~baseline:base.o_digest w o.o_trace
          in
          shrunk :=
            ( w.w_name,
              {
                Corpus.c_workload = w.w_name;
                c_expect = Corpus.Must_fail;
                c_note = "shrunk from " ^ Policy.name o.o_policy;
                c_fault = o.o_fault_seed;
                c_decisions = mini;
              } )
            :: !shrunk
      | _ -> ())
    workloads;
  {
    r_runs = !runs;
    r_baselines = List.rev !baselines;
    r_failures = List.rev !failures;
    r_shrunk = List.rev !shrunk;
  }

let replay_entry ?(quick = false) (e : Corpus.entry) =
  match find e.c_workload with
  | None -> Error (Printf.sprintf "unknown workload %S" e.c_workload)
  | Some w ->
      let o =
        run_one ?fault_seed:e.c_fault ~quick w (Policy.Replay e.c_decisions)
      in
      let describe () =
        String.concat "; "
          (List.map
             (fun viol -> Format.asprintf "%a" Invariant.pp viol)
             o.o_violations)
      in
      (match (e.c_expect, failed o) with
      | Corpus.Must_fail, true | Corpus.Must_pass, false -> Ok o
      | Corpus.Must_fail, false ->
          Error
            (Printf.sprintf
               "%s: expected the replay to fail, but no invariant was \
                violated (digest %s)"
               e.c_workload o.o_digest)
      | Corpus.Must_pass, true ->
          Error
            (Printf.sprintf "%s: expected a clean replay, got: %s"
               e.c_workload (describe ())))
