let minimize ~fails trace =
  let fails_arr a = fails (Array.to_list a) in
  let cur = ref (Array.of_list trace) in
  (* Pass 1: shortest failing prefix, halving steps. *)
  let rec trim () =
    let n = Array.length !cur in
    let try_len l =
      if l >= 0 && l < n then begin
        let cand = Array.sub !cur 0 l in
        if fails_arr cand then begin
          cur := cand;
          true
        end
        else false
      end
      else false
    in
    if n > 0 then
      if try_len (n / 2) then trim ()
      else if try_len (3 * n / 4) then trim ()
      else if try_len (n - 1) then trim ()
  in
  trim ();
  (* Pass 2: zero out chunks (0 = the round-robin choice). *)
  let sz = ref (max 1 (Array.length !cur / 2)) in
  let continue_ = ref true in
  while !continue_ do
    let i = ref 0 in
    while !i < Array.length !cur do
      let j = min (Array.length !cur) (!i + !sz) in
      let nonzero = ref false in
      for k = !i to j - 1 do
        if !cur.(k) <> 0 then nonzero := true
      done;
      if !nonzero then begin
        let cand = Array.copy !cur in
        for k = !i to j - 1 do
          cand.(k) <- 0
        done;
        if fails_arr cand then cur := cand
      end;
      i := j
    done;
    if !sz = 1 then continue_ := false else sz := !sz / 2
  done;
  (* Pass 3: strip the all-zero tail (replay pads with zeros anyway). *)
  let m = ref (Array.length !cur) in
  while !m > 0 && !cur.(!m - 1) = 0 do
    decr m
  done;
  if !m < Array.length !cur then begin
    let cand = Array.sub !cur 0 !m in
    if fails_arr cand then cur := cand
  end;
  Array.to_list !cur
