(** Invariant oracles for schedule exploration (DESIGN.md §12).

    Each oracle turns "this run was correct" into a checkable predicate
    that must hold {e whatever the schedule}:

    - {e quiescence}: when a workload finishes, no communication state
      survives — no outstanding requests, unmatched receives, unexpected
      messages or half-done rendezvous ({!Mpi_core.Mpi.quiescence_report}),
      no leaked collective-schedule progress hooks
      ({!Mpi_core.Ch3.progress_hook_count}) and no frames stranded in the
      reliable layer's retransmission queues ({!Mpi_core.Reliable.stranded});
    - {e non-overtaking}: per (source, destination, tag, context) stream,
      messages match in send order (the envelope sequence numbers a
      {!monitor} observes are strictly increasing);
    - {e pin-table emptiness}: after a rank completes its blocking waits,
      one collection later its GC holds no conditional pins and no sticky
      pins ({!pin_table});
    - schedule-independent {e digest agreement} is checked by the
      explorer itself, which compares every seeded digest to the
      round-robin baseline. *)

type violation = { inv : string;  (** invariant name *) detail : string }

val v : string -> ('a, unit, string, violation) format4 -> 'a
(** [v inv fmt ...] builds a violation (printf-style detail). *)

val pp : Format.formatter -> violation -> unit

type monitor
(** Match-order recorder: one observer per device of a world. *)

val attach : Mpi_core.Mpi.world -> monitor
(** Install a non-overtaking observer on every device of the world
    (must run before the workload's fibers). *)

val detach : monitor -> unit
(** Remove the observers. At most one monitor per world at a time. *)

val order_violations : monitor -> violation list
(** Matches observed out of send order, oldest first. *)

val quiescence : Mpi_core.Mpi.world -> violation list
(** The three queue-drain oracles above; empty on a clean world. *)

val survivor_convergence :
  survivors:int list -> (int * int array * string) list -> violation list
(** [survivor_convergence ~survivors reports] checks the ULFM guarantee
    after a kill plan: every surviving rank reported exactly one
    [(rank, final members, value)] triple, all survivors agree on the
    final membership and the value, and each survivor is a member of the
    communicator it finished on. Membership may still name a rank that
    died {e after} the last successful attempt — only agreement among
    survivors is required. *)

val pin_table : rank:int -> Vm.Gc.t -> violation list
(** Run one collection (resolving conditional pins of completed
    requests), then report any pin left in the table. Call from the
    rank's own fiber, after its last wait. *)
