(** On-disk schedule traces (the replayable corpus, DESIGN.md §12).

    A corpus entry records a workload name, an expectation and a decision
    stream, in a line-oriented text format that diffs well:

    {v
# motor schedule trace v1
workload planted_bug
expect fail
note shrunk from seeded-random(seed=7)
decisions 0 0 2 1 0 1
    v}

    [expect fail] entries are regression anchors for planted or historic
    bugs: replaying them must still produce a violation (the detector
    works). [expect pass] entries pin schedules that once failed and were
    fixed: replaying them must stay clean. [dune runtest] replays every
    entry under [test/corpus/]. *)

type expectation = Must_fail | Must_pass

type entry = {
  c_workload : string;  (** registry name, see {!Explore.find} *)
  c_expect : expectation;
  c_note : string;  (** provenance, free-form (may be empty) *)
  c_fault : int option;
      (** fault-plan seed the failing run was crossed with, if any
          (serialized as a [fault N] line) *)
  c_decisions : int list;
}

val to_string : entry -> string
val of_string : string -> entry
(** Raises [Failure] with a line diagnostic on malformed input. *)

val save : path:string -> entry -> unit
val load : path:string -> entry
(** Raises [Failure] (malformed) or [Sys_error] (unreadable). *)
