type t = Round_robin | Seeded_random of int | Replay of int list

let to_fiber = function
  | Round_robin -> Fiber.Round_robin
  | Seeded_random s -> Fiber.Seeded_random s
  | Replay ds -> Fiber.Replay (Fiber.trace_of_list ds)

let name t = Fiber.policy_name (to_fiber t)
let seed_of = function Seeded_random s -> Some s | _ -> None

let assert_deterministic what =
  if Fiber.parallel_active () then
    invalid_arg
      (Printf.sprintf
         "%s requires the deterministic cooperative scheduler; it cannot run \
          inside a Parallel (multi-domain) mode"
         what)

let fault_seed ~schedule_seed =
  (* Any fixed mixing works; it only has to decorrelate the two seed
     spaces and never produce the degenerate seed 0. *)
  1 + (((schedule_seed * 0x9e3779b1) + 0x7f4a7c15) land 0x3fffffff)
