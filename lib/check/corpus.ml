type expectation = Must_fail | Must_pass

type entry = {
  c_workload : string;
  c_expect : expectation;
  c_note : string;
  c_fault : int option;
  c_decisions : int list;
}

let magic = "# motor schedule trace v1"

let to_string e =
  let b = Buffer.create 256 in
  Buffer.add_string b magic;
  Buffer.add_char b '\n';
  Buffer.add_string b ("workload " ^ e.c_workload ^ "\n");
  Buffer.add_string b
    ("expect " ^ (match e.c_expect with Must_fail -> "fail" | Must_pass -> "pass"));
  Buffer.add_char b '\n';
  if e.c_note <> "" then Buffer.add_string b ("note " ^ e.c_note ^ "\n");
  (match e.c_fault with
  | Some s -> Buffer.add_string b ("fault " ^ string_of_int s ^ "\n")
  | None -> ());
  Buffer.add_string b
    (String.concat " " ("decisions" :: List.map string_of_int e.c_decisions));
  Buffer.add_char b '\n';
  Buffer.contents b

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | first :: rest when first = magic ->
      let workload = ref None
      and expect = ref None
      and note = ref ""
      and fault = ref None
      and decisions = ref None in
      List.iter
        (fun line ->
          match String.index_opt line ' ' with
          | _ when String.length line > 0 && line.[0] = '#' -> ()
          | None -> (
              match line with
              | "decisions" -> decisions := Some []
              | _ -> failwith ("corpus: unrecognized line: " ^ line))
          | Some i -> (
              let key = String.sub line 0 i in
              let value =
                String.sub line (i + 1) (String.length line - i - 1)
              in
              match key with
              | "workload" -> workload := Some value
              | "expect" -> (
                  match value with
                  | "fail" -> expect := Some Must_fail
                  | "pass" -> expect := Some Must_pass
                  | _ -> failwith ("corpus: bad expectation: " ^ value))
              | "note" -> note := value
              | "fault" -> (
                  match int_of_string_opt value with
                  | Some s -> fault := Some s
                  | None -> failwith ("corpus: bad fault seed: " ^ value))
              | "decisions" ->
                  decisions :=
                    Some
                      (String.split_on_char ' ' value
                      |> List.filter (fun t -> t <> "")
                      |> List.map (fun t ->
                             match int_of_string_opt t with
                             | Some d -> d
                             | None ->
                                 failwith ("corpus: bad decision: " ^ t)))
              | _ -> failwith ("corpus: unrecognized key: " ^ key)))
        rest;
      let require what = function
        | Some x -> x
        | None -> failwith ("corpus: missing " ^ what)
      in
      {
        c_workload = require "workload" !workload;
        c_expect = require "expect" !expect;
        c_note = !note;
        c_fault = !fault;
        c_decisions = require "decisions" !decisions;
      }
  | _ -> failwith "corpus: missing magic header"

let save ~path e =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string e))

let load ~path =
  of_string (In_channel.with_open_text path In_channel.input_all)
