module Mpi = Mpi_core.Mpi
module Ch3 = Mpi_core.Ch3
module Packet = Mpi_core.Packet
module Reliable = Mpi_core.Reliable

type violation = { inv : string; detail : string }

let v inv fmt = Printf.ksprintf (fun detail -> { inv; detail }) fmt
let pp fmt { inv; detail } = Format.fprintf fmt "[%s] %s" inv detail

type monitor = {
  m_world : Mpi.world;
  (* (src, dst, tag, context) -> last matched per-sender sequence number *)
  m_last : (int * int * int * int, int) Hashtbl.t;
  mutable m_bad : violation list;
}

let attach w =
  let mon = { m_world = w; m_last = Hashtbl.create 64; m_bad = [] } in
  for r = 0 to Mpi.world_size w - 1 do
    let dev = Mpi.device (Mpi.proc w r) in
    Ch3.set_match_observer dev
      (Some
         (fun (e : Packet.envelope) ->
           let key = (e.e_src, e.e_dst, e.e_tag, e.e_context) in
           (match Hashtbl.find_opt mon.m_last key with
           | Some last when e.e_seq <= last ->
               mon.m_bad <-
                 v "non-overtaking"
                   "src=%d dst=%d tag=%d ctx=%d: seq %d matched after seq %d"
                   e.e_src e.e_dst e.e_tag e.e_context e.e_seq last
                 :: mon.m_bad
           | _ -> ());
           Hashtbl.replace mon.m_last key e.e_seq))
  done;
  mon

let detach mon =
  for r = 0 to Mpi.world_size mon.m_world - 1 do
    Ch3.set_match_observer (Mpi.device (Mpi.proc mon.m_world r)) None
  done

let order_violations mon = List.rev mon.m_bad

(* Final acks and retransmission cycles land after the last fiber exits:
   nobody is left polling, and the clock no longer advances through the
   backoff deadlines. Pump every device's progress engine by hand,
   advancing the clock past the retransmit ceiling whenever nothing
   moves, until the go-back-N windows drain or give up. Only frames
   still stranded after this are a real leak. *)
let drain_reliable w t =
  let tries = ref 0 in
  while Reliable.stranded t > 0 && !tries < 64 do
    incr tries;
    let moved = ref false in
    for r = 0 to Mpi.world_size w - 1 do
      if Ch3.progress (Mpi.device (Mpi.proc w r)) then moved := true
    done;
    if not !moved then
      Simtime.Clock.advance (Mpi.env w).Simtime.Env.clock 2_000_000.0
  done

let quiescence w =
  (match Mpi.reliable_handle w with
  | Some t -> drain_reliable w t
  | None -> ());
  let leftover =
    List.map
      (fun (r, s) -> v "quiescence" "rank %d: %s" r s)
      (Mpi.quiescence_report w)
  in
  let hooks = ref [] in
  for r = Mpi.world_size w - 1 downto 0 do
    let h = Ch3.progress_hook_count (Mpi.device (Mpi.proc w r)) in
    if h > 0 then
      hooks :=
        v "coll-sched" "rank %d: %d collective progress hook(s) leaked" r h
        :: !hooks
  done;
  let stranded =
    match Mpi.reliable_handle w with
    | Some t when Reliable.stranded t > 0 ->
        [
          v "reliable" "%d frame(s) stranded in retransmission queues"
            (Reliable.stranded t);
        ]
    | _ -> []
  in
  leftover @ !hooks @ stranded

(* After a kill plan, the ULFM guarantee the recovery loop provides is
   agreement among the ranks that lived: every survivor reports a result,
   all survivors report the same final membership and the same value, and
   each survivor belongs to the communicator it ended on. Membership is
   deliberately NOT required to equal the survivor set: a rank that dies
   after the last collective completed leaves a membership that still
   names it — correctly, since no attempt failed. *)
let survivor_convergence ~survivors reports =
  let bad = ref [] in
  let push x = bad := x :: !bad in
  let show m =
    String.concat "," (List.map string_of_int (Array.to_list m))
  in
  List.iter
    (fun r ->
      match List.filter (fun (rk, _, _) -> rk = r) reports with
      | [] ->
          push
            (v "survivor-convergence"
               "surviving rank %d never reported a result" r)
      | [ _ ] -> ()
      | l ->
          push
            (v "survivor-convergence" "rank %d reported %d results" r
               (List.length l)))
    survivors;
  let surv =
    List.filter (fun (rk, _, _) -> List.mem rk survivors) reports
  in
  (match surv with
  | [] | [ _ ] -> ()
  | (r0, m0, v0) :: rest ->
      List.iter
        (fun (r, m, value) ->
          if m <> m0 then
            push
              (v "survivor-convergence"
                 "rank %d ended on members [%s], rank %d on [%s]" r (show m)
                 r0 (show m0));
          if value <> v0 then
            push
              (v "survivor-convergence"
                 "rank %d converged to %s, rank %d to %s" r value r0 v0))
        rest);
  List.iter
    (fun (r, m, _) ->
      if not (Array.exists (Int.equal r) m) then
        push
          (v "survivor-convergence"
             "rank %d is not a member of its own final communicator [%s]" r
             (show m)))
    surv;
  List.rev !bad

let pin_table ~rank gc =
  (* One collection resolves conditional pins whose requests completed;
     anything left after it is a leak. *)
  Vm.Gc.collect gc ~full:false;
  let cond = Vm.Gc.conditional_pin_count gc in
  let sticky = Vm.Gc.pinned_count gc in
  (if cond > 0 then
     [ v "pin-table" "rank %d: %d conditional pin(s) left" rank cond ]
   else [])
  @
  if sticky > 0 then
    [ v "pin-table" "rank %d: %d sticky pin(s) left" rank sticky ]
  else []
