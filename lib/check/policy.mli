(** Scheduling policies as the exploration harness names them.

    A thin, serializable layer over {!Fiber.policy}: decisions are plain
    [int list]s here (what the corpus stores), converted to {!Fiber.trace}
    at the boundary. Seed derivation for crossing schedule seeds with
    fault-plan seeds lives here so every component (explorer, CLI, tests)
    agrees on the mapping. *)

type t =
  | Round_robin
  | Seeded_random of int
  | Replay of int list  (** recorded decision stream, explorer format *)

val to_fiber : t -> Fiber.policy
val name : t -> string
(** Matches {!Fiber.policy_name} on the converted policy. *)

val seed_of : t -> int option
(** The seed of a [Seeded_random], if that's what this is. *)

val assert_deterministic : string -> unit
(** Raise [Invalid_argument] if called while a {!Fiber} parallel
    (multi-domain) run is active: schedule exploration, replay and
    shrinking are only meaningful under the deterministic cooperative
    scheduler. [what] names the operation for the diagnostic. *)

val fault_seed : schedule_seed:int -> int
(** The fault-plan seed crossed with a schedule seed: a fixed mix, so
    [explore --faults] runs are reproducible from the schedule seed
    alone. Nonzero for every input. *)
