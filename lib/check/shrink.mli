(** Greedy delta-debugging over schedule decision streams.

    A failing trace found by exploration is typically hundreds of
    decisions, almost all irrelevant: {!minimize} reduces it to the few
    decisions that actually force the failing interleaving. Three greedy
    passes, each keeping a candidate only if it still fails:

    + {e prefix trimming} — replay pads an exhausted trace with the
      round-robin choice, so truncation is always a legal mutation;
      tried in halving steps;
    + {e chunk zeroing} — rewrite spans of decisions to 0 (the
      round-robin choice) in ddmin style, chunk sizes halving down to 1;
    + {e tail stripping} — trailing zeros are equivalent to no trace.

    The result is 1-minimal-ish, not globally minimal — good enough to
    make a schedule human-readable, cheap enough to run inside a test. *)

val minimize : fails:(int list -> bool) -> int list -> int list
(** [minimize ~fails trace] assumes [fails trace = true] and returns a
    trace that still satisfies [fails]. [fails] must be deterministic
    (replay the workload under [Replay]; any invariant violation or
    crash counts as failing). *)
