(* Object-tree transport with the Transportable attribute (paper
   Section 4.2.2, Figure 5).

   Rank 0 builds a binary expression tree. The [left]/[right] child
   references are marked Transportable, so OSend flattens and ships the
   whole tree; the [cache] reference is not, so it is pruned to null on
   the wire. Rank 1 rebuilds the tree and evaluates it — identical shared
   subtrees stay shared after the trip.

   Run with: dune exec examples/tree_transport.exe *)

module World = Motor.World
module Smp = Motor.System_mp
module Om = Vm.Object_model
module Classes = Vm.Classes
module Types = Vm.Types

(* Node: op 0 = leaf (value), 1 = add, 2 = mul. *)
let node_class registry =
  let id = Classes.declare registry ~name:"Expr" in
  let floats = Classes.array_class registry (Types.Eprim Types.R8) in
  Classes.complete registry id ~transportable:true
    ~fields:
      [
        ("op", Types.Prim Types.I4, false);
        ("value", Types.Prim Types.R8, false);
        ("left", Types.Ref id, true);
        ("right", Types.Ref id, true);
        ("cache", Types.Ref floats.Classes.c_id, false);
      ]
    ()

let leaf gc mt v =
  let n = Om.alloc_instance gc mt in
  Om.set_int gc n (Classes.field mt "op") 0;
  Om.set_float gc n (Classes.field mt "value") v;
  n

let binop gc mt op l r =
  let n = Om.alloc_instance gc mt in
  Om.set_int gc n (Classes.field mt "op") op;
  Om.set_ref gc n (Classes.field mt "left") (Some l);
  Om.set_ref gc n (Classes.field mt "right") (Some r);
  n

let rec eval gc mt n =
  match Om.get_int gc n (Classes.field mt "op") with
  | 0 -> Om.get_float gc n (Classes.field mt "value")
  | op ->
      let l = Option.get (Om.get_ref gc n (Classes.field mt "left")) in
      let r = Option.get (Om.get_ref gc n (Classes.field mt "right")) in
      let lv = eval gc mt l and rv = eval gc mt r in
      Om.free gc l;
      Om.free gc r;
      if op = 1 then lv +. rv else lv *. rv

let rec count_nodes gc mt n seen =
  let addr = Om.addr_of gc n in
  if List.mem addr !seen then 0
  else begin
    seen := addr :: !seen;
    match Om.get_int gc n (Classes.field mt "op") with
    | 0 -> 1
    | _ ->
        let l = Option.get (Om.get_ref gc n (Classes.field mt "left")) in
        let r = Option.get (Om.get_ref gc n (Classes.field mt "right")) in
        let total = 1 + count_nodes gc mt l seen + count_nodes gc mt r seen in
        Om.free gc l;
        Om.free gc r;
        total
  end

let () =
  let world = World.create ~n:2 () in
  World.run world (fun ctx ->
      let gc = World.gc ctx in
      let comm = Smp.comm_world ctx in
      let mt = node_class (World.registry ctx) in
      if World.rank ctx = 0 then begin
        (* (x + y) * (x + y) with a SHARED subtree: (3 + 4) referenced
           twice. Also attach a non-transportable cache. *)
        let shared = binop gc mt 1 (leaf gc mt 3.0) (leaf gc mt 4.0) in
        let root = binop gc mt 2 shared shared in
        let cache = Om.alloc_array gc (Types.Eprim Types.R8) 16 in
        Om.set_ref gc root (Classes.field mt "cache") (Some cache);
        let seen = ref [] in
        Printf.printf "[rank 0] sending tree: %d distinct nodes, value %.1f\n"
          (count_nodes gc mt root seen)
          (eval gc mt root);
        Smp.osend ctx ~comm ~dst:1 ~tag:0 root
      end
      else begin
        let root, _ = Smp.orecv ctx ~comm ~src:0 ~tag:0 in
        let seen = ref [] in
        let nodes = count_nodes gc mt root seen in
        let v = eval gc mt root in
        let cache = Om.get_ref gc root (Classes.field mt "cache") in
        Printf.printf
          "[rank 1] received tree: %d distinct nodes (sharing preserved), \
           value %.1f, cache pruned: %b\n"
          nodes v (cache = None);
        (* Identity check: left and right must be the same object. *)
        let l = Option.get (Om.get_ref gc root (Classes.field mt "left")) in
        let r = Option.get (Om.get_ref gc root (Classes.field mt "right")) in
        Printf.printf "[rank 1] left == right: %b\n"
          (Om.same_object gc l r)
      end);
  Printf.printf "virtual time: %.1f us\n"
    (Simtime.Env.now_us (World.env world))
