(* A complete managed application: MIL assembly (the VM's portable format)
   running on every rank, calling System.MP through internal calls — the
   paper's full compile-once-run-anywhere stack, including the OO
   operations from managed code.

   Run with: dune exec examples/managed_pingpong.exe *)

let program =
  {|
  // A Packet carries a data array and a hop counter; both the array and
  // the (unused here) chain reference are Transportable.
  .class transportable Packet {
    .field transportable float64[] data
    .field transportable Packet chain
    .field int32 hops
  }

  .method Packet make_packet(int64 len) {
    .locals (Packet p)
    newobj Packet
    stloc p
    ldloc p
    ldarg len
    newarr float64
    stfld Packet::data
    ldloc p
    ret
  }

  .method void main() {
    .locals (Packet p, object got, int64 me, int64 round)
    intcall mp.rank
    stloc me
    ldloc me
    ldc.i8 0
    ceq
    brfalse echo

    // rank 0: build a packet and bounce it 3 times via OSend/ORecv
    ldc.i8 32
    call make_packet
    stloc p
    ldc.i8 0
    stloc round
  bounce:
    ldloc round
    ldc.i8 3
    clt
    brfalse done
    ldloc p
    ldc.i8 1
    ldc.i8 9
    intcall mp.osend
    ldc.i8 1
    ldc.i8 9
    intcall mp.orecv
    pop
    ldloc round
    ldc.i8 1
    add
    stloc round
    br bounce
  done:
    ldc.i8 3
    intcall sys.print_i
    intcall sys.print_nl
    intcall mp.barrier
    ret

  echo:
    ldc.i8 0
    stloc round
  echo_loop:
    ldloc round
    ldc.i8 3
    clt
    brfalse echo_done
    ldc.i8 0
    ldc.i8 9
    intcall mp.orecv
    stloc got
    ldloc got
    ldc.i8 0
    ldc.i8 9
    intcall mp.osend
    ldloc round
    ldc.i8 1
    add
    stloc round
    br echo_loop
  echo_done:
    intcall mp.barrier
    ret
  }
|}

let () =
  let world = Motor.World.create ~n:2 () in
  Motor.World.run world (fun ctx ->
      let interp = Motor.Mil_bindings.load ctx program in
      ignore (Vm.Interp.run_entry interp []);
      Printf.printf "[rank %d] managed program finished; output: %s"
        (Motor.World.rank ctx)
        (let out = Vm.Runtime.output ctx.Motor.World.rt in
         if out = "" then "(none)\n" else out));
  Printf.printf "virtual time: %.1f us\n"
    (Simtime.Env.now_us (Motor.World.env world))
