(* Quickstart: a two-rank Motor world.

   Rank 0 sends a float array with the regular (zero-copy) operations,
   then a small object tree with the OO operations; rank 1 prints what it
   got. Run with: dune exec examples/quickstart.exe *)

module World = Motor.World
module Ot = Motor.Object_transport
module Smp = Motor.System_mp
module Om = Vm.Object_model
module Classes = Vm.Classes
module Types = Vm.Types

(* A [Transportable] message class: greeting text (as a char array) and a
   payload array travel; the scratch field does not. *)
let message_class registry =
  let id = Classes.declare registry ~name:"Message" in
  let chars = Classes.array_class registry (Types.Eprim Types.Char) in
  let floats = Classes.array_class registry (Types.Eprim Types.R8) in
  Classes.complete registry id ~transportable:true
    ~fields:
      [
        ("text", Types.Ref chars.Classes.c_id, true);
        ("payload", Types.Ref floats.Classes.c_id, true);
        ("scratch", Types.Ref floats.Classes.c_id, false);
      ]
    ()

let () =
  let world = World.create ~n:2 () in
  World.run world (fun ctx ->
      let gc = World.gc ctx in
      let comm = Smp.comm_world ctx in
      let mt = message_class (World.registry ctx) in
      if World.rank ctx = 0 then begin
        (* 1. Regular MPI: a bare simple-type array, sent zero-copy. *)
        let samples = Om.alloc_array gc (Types.Eprim Types.R8) 8 in
        for i = 0 to 7 do
          Om.set_elem_float gc samples i (sqrt (float_of_int i))
        done;
        Ot.send ctx ~comm ~dst:1 ~tag:0 samples;
        (* 2. OO operation: an object tree via the custom serializer. *)
        let msg = Om.alloc_instance gc mt in
        let text = Om.alloc_array gc (Types.Eprim Types.Char) 5 in
        String.iteri
          (fun i c -> Om.set_elem_int gc text i (Char.code c))
          "hello";
        let payload = Om.alloc_array gc (Types.Eprim Types.R8) 3 in
        List.iteri
          (fun i v -> Om.set_elem_float gc payload i v)
          [ 3.14; 2.72; 1.62 ];
        Om.set_ref gc msg (Classes.field mt "text") (Some text);
        Om.set_ref gc msg (Classes.field mt "payload") (Some payload);
        Smp.osend ctx ~comm ~dst:1 ~tag:1 msg;
        Printf.printf "[rank 0] sent 8 samples and a Message\n"
      end
      else begin
        let samples = Om.alloc_array gc (Types.Eprim Types.R8) 8 in
        let st = Ot.recv ctx ~comm ~src:0 ~tag:0 samples in
        Printf.printf "[rank 1] regular recv: %d bytes, sample[4] = %.3f\n"
          st.Mpi_core.Status.bytes
          (Om.get_elem_float gc samples 4);
        let msg, _ = Smp.orecv ctx ~comm ~src:0 ~tag:1 in
        let text = Option.get (Om.get_ref gc msg (Classes.field mt "text")) in
        let chars =
          String.init (Om.array_length gc text) (fun i ->
              Char.chr (Om.get_elem_int gc text i))
        in
        let payload =
          Option.get (Om.get_ref gc msg (Classes.field mt "payload"))
        in
        Printf.printf
          "[rank 1] OO recv: text=%S, payload[0]=%.2f, scratch propagated: %b\n"
          chars
          (Om.get_elem_float gc payload 0)
          (Om.get_ref gc msg (Classes.field mt "scratch") <> None)
      end);
  Printf.printf "virtual time: %.1f us\n"
    (Simtime.Env.now_us (World.env world))
