(* Transparent process management (the paper's future work, Section 9,
   implemented here): a running Motor world spawns fresh worker ranks on
   demand — each provisioned with its own VM instance — farms tasks to
   them through the intercommunicator, and merges everyone into one
   communicator for a final collective.

   Run with: dune exec examples/dynamic_workers.exe *)

module World = Motor.World
module Ot = Motor.Object_transport
module Om = Vm.Object_model
module Types = Vm.Types
module Dynamic = Mpi_core.Dynamic
module Coll = Mpi_core.Collectives

let () =
  let world = World.create ~n:2 () in
  World.run world (fun ctx ->
      let gc = World.gc ctx in
      let parent_rank = World.rank ctx in
      (* Each spawned worker squares the numbers a parent sends it. *)
      let worker wctx ic =
        let wgc = World.gc wctx in
        let me = Mpi_core.Mpi.comm_rank wctx.World.proc ic.Dynamic.ic_local in
        let buf = Om.alloc_array wgc (Types.Eprim Types.I4) 4 in
        let st =
          Dynamic.recv wctx.World.proc ic ~src:Mpi_core.Tag_match.any_source
            ~tag:1
            (Motor.Object_transport.view_of_region wctx
               (Om.payload_region wgc buf))
        in
        for i = 0 to 3 do
          let v = Om.get_elem_int wgc buf i in
          Om.set_elem_int wgc buf i (v * v)
        done;
        Dynamic.send wctx.World.proc ic ~dst:st.Mpi_core.Status.source ~tag:2
          (Motor.Object_transport.view_of_region wctx
             (Om.payload_region wgc buf));
        Printf.printf "[worker %d] squared a batch from parent %d\n" me
          st.Mpi_core.Status.source;
        (* Workers join the merged communicator for the final barrier. *)
        let merged = Dynamic.merge wctx.World.proc ic in
        Coll.barrier wctx.World.proc merged
      in
      let ic = World.spawn ctx ~n:2 worker in
      (* Parent r feeds worker r. *)
      let buf = Om.alloc_array gc (Types.Eprim Types.I4) 4 in
      for i = 0 to 3 do
        Om.set_elem_int gc buf i (parent_rank * 10 + i)
      done;
      Dynamic.send ctx.World.proc ic ~dst:parent_rank ~tag:1
        (Motor.Object_transport.view_of_region ctx
           (Om.payload_region gc buf));
      ignore
        (Dynamic.recv ctx.World.proc ic ~src:parent_rank ~tag:2
           (Motor.Object_transport.view_of_region ctx
              (Om.payload_region gc buf)));
      Printf.printf "[parent %d] got back: %s\n" parent_rank
        (String.concat ", "
           (List.init 4 (fun i -> string_of_int (Om.get_elem_int gc buf i))));
      let merged = Dynamic.merge ctx.World.proc ic in
      Coll.barrier ctx.World.proc merged;
      if parent_rank = 0 then
        Printf.printf "all %d processes (2 original + 2 spawned) synchronised\n"
          (Mpi_core.Comm.size merged));
  Printf.printf "virtual time: %.1f us\n"
    (Simtime.Env.now_us (World.env world))
