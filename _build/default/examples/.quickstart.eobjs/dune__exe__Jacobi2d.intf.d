examples/jacobi2d.mli:
