examples/tree_transport.ml: List Motor Option Printf Simtime Vm
