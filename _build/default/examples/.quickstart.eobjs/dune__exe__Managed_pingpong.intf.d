examples/managed_pingpong.mli:
