examples/jacobi2d.ml: Float Motor Mpi_core Option Printf Simtime Vm
