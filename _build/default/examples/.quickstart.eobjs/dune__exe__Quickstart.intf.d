examples/quickstart.mli:
