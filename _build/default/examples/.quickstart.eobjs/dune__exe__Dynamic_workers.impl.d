examples/dynamic_workers.ml: List Motor Mpi_core Printf Simtime String Vm
