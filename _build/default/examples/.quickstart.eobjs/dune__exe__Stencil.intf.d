examples/stencil.mli:
