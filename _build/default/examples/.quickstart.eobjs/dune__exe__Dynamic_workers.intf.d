examples/dynamic_workers.mli:
