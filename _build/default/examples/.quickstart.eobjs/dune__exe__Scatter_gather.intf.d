examples/scatter_gather.mli:
