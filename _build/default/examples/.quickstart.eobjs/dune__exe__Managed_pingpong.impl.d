examples/managed_pingpong.ml: Motor Printf Simtime Vm
