examples/stencil.ml: Bytes Float Int64 Motor Mpi_core Printf Simtime Vm
