examples/scatter_gather.ml: Motor Option Printf Simtime Vm
