examples/quickstart.ml: Char List Motor Mpi_core Option Printf Simtime String Vm
