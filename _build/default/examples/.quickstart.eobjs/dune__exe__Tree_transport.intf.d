examples/tree_transport.mli:
