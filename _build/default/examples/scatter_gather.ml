(* Master/worker over OScatter / OGather — the operation the paper singles
   out as impossible over standard atomic serialization (Section 2.4).

   The master builds an array of Task objects (each a polynomial to
   evaluate over a range); OScatter hands each rank a contiguous
   sub-array via the split representation; workers fill in their results;
   OGather reassembles the array in rank order at the master.

   Run with: dune exec examples/scatter_gather.exe *)

module World = Motor.World
module Smp = Motor.System_mp
module Om = Vm.Object_model
module Classes = Vm.Classes
module Types = Vm.Types

let task_class registry =
  let id = Classes.declare registry ~name:"Task" in
  let floats = Classes.array_class registry (Types.Eprim Types.R8) in
  Classes.complete registry id ~transportable:true
    ~fields:
      [
        ("coeffs", Types.Ref floats.Classes.c_id, true);
        ("lo", Types.Prim Types.R8, false);
        ("hi", Types.Prim Types.R8, false);
        ("result", Types.Prim Types.R8, false);
      ]
    ()

let horner gc coeffs x =
  let n = Om.array_length gc coeffs in
  let acc = ref 0.0 in
  for i = n - 1 downto 0 do
    acc := (!acc *. x) +. Om.get_elem_float gc coeffs i
  done;
  !acc

(* Trapezoid rule over [lo, hi]. *)
let integrate gc coeffs lo hi =
  let steps = 100 in
  let h = (hi -. lo) /. float_of_int steps in
  let sum = ref ((horner gc coeffs lo +. horner gc coeffs hi) /. 2.0) in
  for i = 1 to steps - 1 do
    sum := !sum +. horner gc coeffs (lo +. (h *. float_of_int i))
  done;
  !sum *. h

let n_tasks = 10

let () =
  let world = World.create ~n:4 () in
  World.run world (fun ctx ->
      let gc = World.gc ctx in
      let comm = Smp.comm_world ctx in
      let registry = World.registry ctx in
      let mt = task_class registry in
      let f name = Classes.field mt name in
      let input =
        if World.rank ctx = 0 then begin
          let arr = Om.alloc_array gc (Types.Eref mt.Classes.c_id) n_tasks in
          for i = 0 to n_tasks - 1 do
            let task = Om.alloc_instance gc mt in
            let coeffs = Om.alloc_array gc (Types.Eprim Types.R8) 3 in
            (* integrate (1 + i*x + x^2) over [0, i+1] *)
            Om.set_elem_float gc coeffs 0 1.0;
            Om.set_elem_float gc coeffs 1 (float_of_int i);
            Om.set_elem_float gc coeffs 2 1.0;
            Om.set_ref gc task (f "coeffs") (Some coeffs);
            Om.set_float gc task (f "lo") 0.0;
            Om.set_float gc task (f "hi") (float_of_int (i + 1));
            Om.set_elem_ref gc arr i (Some task);
            Om.free gc task;
            Om.free gc coeffs
          done;
          Some arr
        end
        else None
      in
      (* Everyone (master included) receives a share of the tasks. *)
      let mine = Smp.oscatter ctx ~comm ~root:0 input in
      let share = Om.array_length gc mine in
      for i = 0 to share - 1 do
        let task = Option.get (Om.get_elem_ref gc mine i) in
        let coeffs = Option.get (Om.get_ref gc task (f "coeffs")) in
        let lo = Om.get_float gc task (f "lo") in
        let hi = Om.get_float gc task (f "hi") in
        Om.set_float gc task (f "result") (integrate gc coeffs lo hi);
        Om.free gc task;
        Om.free gc coeffs
      done;
      Printf.printf "[rank %d] solved %d tasks\n" (World.rank ctx) share;
      match Smp.ogather ctx ~comm ~root:0 mine with
      | None -> ()
      | Some all ->
          Printf.printf "[rank 0] gathered results:\n";
          for i = 0 to Om.array_length gc all - 1 do
            let task = Option.get (Om.get_elem_ref gc all i) in
            Printf.printf "  task %d: integral = %10.3f\n" i
              (Om.get_float gc task (f "result"));
            Om.free gc task
          done);
  Printf.printf "virtual time: %.1f us\n"
    (Simtime.Env.now_us (World.env world))
