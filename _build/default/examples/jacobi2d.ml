(* 2-D Jacobi solver on true multidimensional arrays — the scientific-code
   shape the paper's introduction motivates: each rank owns a strip of the
   grid as a float64[,], exchanges halo rows with neighbours through the
   offset/count array operations, and the iteration stops on a global
   residual computed with Motor's allreduce.

   Laplace equation on a [0,1]^2 plate, top edge held at 100. Run with:
   dune exec examples/jacobi2d.exe *)

module World = Motor.World
module Ot = Motor.Object_transport
module Smp = Motor.System_mp
module Om = Vm.Object_model
module Types = Vm.Types
module Cart = Mpi_core.Cart

let n_ranks = 4
let cols = 32
let rows_per_rank = 8
let max_iters = 500
let tolerance = 0.06

let () =
  let world = World.create ~n:n_ranks () in
  World.run world (fun ctx ->
      let gc = World.gc ctx in
      let world_comm = Smp.comm_world ctx in
      (* The strips form a 1-D non-periodic Cartesian grid; neighbours come
         from MPI_Cart_shift instead of hand-rolled rank arithmetic. *)
      let cart =
        match
          Cart.create ctx.World.proc world_comm ~dims:[| n_ranks |]
            ~periodic:[| false |]
        with
        | Some c -> c
        | None -> failwith "jacobi2d: every rank belongs to the grid"
      in
      let comm = Cart.comm cart in
      let r = World.rank ctx in
      (* Strip with one ghost row above and below, as a true 2-D array. *)
      let local_rows = rows_per_rank + 2 in
      let grid = Om.alloc_md_array gc (Types.Eprim Types.R8) [| local_rows; cols |] in
      let next = Om.alloc_md_array gc (Types.Eprim Types.R8) [| local_rows; cols |] in
      let at g i j = Om.md_flat_index gc g [| i; j |] in
      (* Boundary: the global top row (owned by rank 0) is hot. *)
      if r = 0 then
        for j = 0 to cols - 1 do
          Om.set_elem_float gc grid (at grid 1 j) 100.0
        done;
      (* Halo rows travel as single-row slices of the flat element space:
         row i spans elements [i*cols, (i+1)*cols). *)
      let send_row dst tag i =
        Ot.send_range ctx ~comm ~dst ~tag grid ~offset:(i * cols) ~count:cols
      in
      let recv_row src tag i =
        ignore
          (Ot.recv_range ctx ~comm ~src ~tag grid ~offset:(i * cols)
             ~count:cols)
      in
      let up, down = Cart.shift cart ctx.World.proc ~dim:0 ~disp:1 in
      let residual = ref infinity in
      let iters = ref 0 in
      while !residual > tolerance && !iters < max_iters do
        incr iters;
        (* Exchange halos (even ranks send first). *)
        let exchange () =
          let send_up () = Option.iter (fun u -> send_row u 1 1) up in
          let send_down () =
            Option.iter (fun d -> send_row d 2 rows_per_rank) down
          in
          let recv_down () =
            Option.iter (fun d -> recv_row d 1 (rows_per_rank + 1)) down
          in
          let recv_up () = Option.iter (fun u -> recv_row u 2 0) up in
          if r mod 2 = 0 then begin
            send_up ();
            send_down ();
            recv_down ();
            recv_up ()
          end
          else begin
            recv_down ();
            recv_up ();
            send_up ();
            send_down ()
          end
        in
        exchange ();
        (* Jacobi update on the interior (global top row stays clamped). *)
        let first_i = if r = 0 then 2 else 1 in
        let local_delta = ref 0.0 in
        for i = first_i to rows_per_rank do
          for j = 1 to cols - 2 do
            let v =
              0.25
              *. (Om.get_elem_float gc grid (at grid (i - 1) j)
                 +. Om.get_elem_float gc grid (at grid (i + 1) j)
                 +. Om.get_elem_float gc grid (at grid i (j - 1))
                 +. Om.get_elem_float gc grid (at grid i (j + 1)))
            in
            let old = Om.get_elem_float gc grid (at grid i j) in
            Om.set_elem_float gc next (at next i j) v;
            local_delta := Float.max !local_delta (Float.abs (v -. old))
          done
        done;
        for i = first_i to rows_per_rank do
          for j = 1 to cols - 2 do
            Om.set_elem_float gc grid (at grid i j)
              (Om.get_elem_float gc next (at next i j))
          done
        done;
        (* Global residual: allreduce the per-rank maxima. Their sum is an
           upper bound on the global maximum and also goes to zero, so it
           is a sound convergence criterion. *)
        let cell = Om.alloc_array gc (Types.Eprim Types.R8) 1 in
        Om.set_elem_float gc cell 0 !local_delta;
        Smp.allreduce_sum_f64 ctx ~comm cell;
        residual := Om.get_elem_float gc cell 0;
        Om.free gc cell
      done;
      (* Report the centre temperature of each strip. *)
      let centre =
        Om.get_elem_float gc grid (at grid (rows_per_rank / 2) (cols / 2))
      in
      Printf.printf
        "[rank %d] converged in %d iterations (residual %.5f), centre %.2f\n"
        r !iters !residual centre);
  Printf.printf "virtual time: %.1f us\n"
    (Simtime.Env.now_us (World.env world))
