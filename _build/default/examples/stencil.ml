(* 1-D heat diffusion with halo exchange: the classic HPC pattern the
   paper's regular MPI operations target — simple-type arrays moved
   zero-copy between ranks, with the offset/count overloads used to read
   and write the halo cells in place.

   The rod is split across 4 ranks; each step exchanges boundary cells
   with the neighbours, then applies the explicit update. Global energy is
   reduced with an allreduce at the end as a conservation check.

   Run with: dune exec examples/stencil.exe *)

module World = Motor.World
module Ot = Motor.Object_transport
module Smp = Motor.System_mp
module Om = Vm.Object_model
module Types = Vm.Types
module Coll = Mpi_core.Collectives

let n_ranks = 4
let cells_per_rank = 64
let alpha = 0.25
let steps = 200

let () =
  let world = World.create ~n:n_ranks () in
  World.run world (fun ctx ->
      let gc = World.gc ctx in
      let comm = Smp.comm_world ctx in
      let r = World.rank ctx in
      (* Local slab with one ghost cell at each end. *)
      let n = cells_per_rank + 2 in
      let cur = Om.alloc_array gc (Types.Eprim Types.R8) n in
      let next = Om.alloc_array gc (Types.Eprim Types.R8) n in
      (* Initial condition: a hot spike in the middle of the rod. *)
      let global_mid = (n_ranks * cells_per_rank) / 2 in
      for i = 1 to cells_per_rank do
        let gidx = (r * cells_per_rank) + i - 1 in
        if gidx = global_mid then Om.set_elem_float gc cur i 100.0
      done;
      let left = r - 1 and right = r + 1 in
      for _step = 1 to steps do
        (* Halo exchange. Interior boundary cells go out through the
           offset/count array overloads; ghost cells are written in place
           by the matching receives. Even ranks send first, odd ranks
           receive first, so the blocking exchange cannot deadlock. *)
        let send_left () =
          if left >= 0 then
            Ot.send_range ctx ~comm ~dst:left ~tag:1 cur ~offset:1 ~count:1
        in
        let send_right () =
          if right < n_ranks then
            Ot.send_range ctx ~comm ~dst:right ~tag:2 cur
              ~offset:cells_per_rank ~count:1
        in
        let recv_right () =
          if right < n_ranks then
            ignore
              (Ot.recv_range ctx ~comm ~src:right ~tag:1 cur ~offset:(n - 1)
                 ~count:1)
        in
        let recv_left () =
          if left >= 0 then
            ignore
              (Ot.recv_range ctx ~comm ~src:left ~tag:2 cur ~offset:0
                 ~count:1)
        in
        if r mod 2 = 0 then begin
          send_left ();
          send_right ();
          recv_right ();
          recv_left ()
        end
        else begin
          recv_right ();
          recv_left ();
          send_left ();
          send_right ()
        end;
        (* Explicit update. *)
        for i = 1 to cells_per_rank do
          let u = Om.get_elem_float gc cur i in
          let ul = Om.get_elem_float gc cur (i - 1) in
          let ur = Om.get_elem_float gc cur (i + 1) in
          Om.set_elem_float gc next i
            (u +. (alpha *. (ul -. (2.0 *. u) +. ur)))
        done;
        for i = 1 to cells_per_rank do
          Om.set_elem_float gc cur i (Om.get_elem_float gc next i)
        done
      done;
      (* Conservation check: global energy via allreduce. *)
      let local = ref 0.0 in
      for i = 1 to cells_per_rank do
        local := !local +. Om.get_elem_float gc cur i
      done;
      let b = Bytes.create 8 in
      Bytes.set_int64_le b 0 (Int64.bits_of_float !local);
      let total = Coll.allreduce ctx.World.proc comm ~op:Coll.sum_f64 b in
      let total = Int64.float_of_bits (Bytes.get_int64_le total 0) in
      let peak = ref 0.0 in
      for i = 1 to cells_per_rank do
        peak := Float.max !peak (Om.get_elem_float gc cur i)
      done;
      Printf.printf
        "[rank %d] after %d steps: local peak %7.4f, global energy %.3f\n" r
        steps !peak total);
  Printf.printf "virtual time: %.1f us\n"
    (Simtime.Env.now_us (World.env world))
