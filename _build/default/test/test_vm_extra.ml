(* Edge-case and feature tests for the VM beyond test_vm.ml: assembler
   corner cases, verifier rejections, interpreter faults, multidimensional
   MIL instructions, heap free-list behaviour, and GC pin bookkeeping. *)

module Om = Vm.Object_model
module Gc = Vm.Gc
module Heap = Vm.Heap
module Classes = Vm.Classes
module Types = Vm.Types
module Runtime = Vm.Runtime

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let expect_parse_error src fragment =
  let rt = Runtime.create () in
  try
    ignore (Runtime.load rt src);
    Alcotest.fail "expected Parse_error"
  with Vm.Assembler.Parse_error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "message %S mentions %S" msg fragment)
      true (contains msg fragment)

let expect_verify_error src fragment =
  let rt = Runtime.create () in
  try
    ignore (Runtime.load rt src);
    Alcotest.fail "expected Verify_error"
  with Vm.Verifier.Verify_error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "message %S mentions %S" msg fragment)
      true (contains msg fragment)

let run_main rt src =
  let interp = Runtime.load rt src in
  Vm.Interp.run_entry interp []

(* ------------------------------------------------------------------ *)
(* Assembler                                                           *)
(* ------------------------------------------------------------------ *)

let test_asm_named_args_and_locals () =
  let rt = Runtime.create () in
  let src =
    {|
  .method int64 weigh(int64 kilos, int64 grams) {
    .locals (int64 total)
    ldarg kilos
    ldc.i8 1000
    mul
    ldarg grams
    add
    stloc total
    ldloc total
    ret
  }
  .method void main() { ret }
|}
  in
  let interp = Runtime.load rt src in
  match Vm.Interp.run interp "weigh" [ Vm.Il.V_int 2L; Vm.Il.V_int 250L ] with
  | Some (Vm.Il.V_int v) -> Alcotest.(check int64) "2kg250g" 2250L v
  | _ -> Alcotest.fail "no result"

let test_asm_array_of_arrays_type () =
  let rt = Runtime.create () in
  let src =
    {|
  .method int64 main() {
    .locals (int32[][] rows, int32[] row)
    ldc.i8 3
    newarr int32[]
    stloc rows
    ldc.i8 4
    newarr int32
    stloc row
    ldloc rows
    ldc.i8 1
    ldloc row
    stelem int32[]
    ldloc rows
    ldc.i8 1
    ldelem int32[]
    ldlen
    ret
  }
|}
  in
  match run_main rt src with
  | Some (Vm.Il.V_int v) -> Alcotest.(check int64) "inner length" 4L v
  | _ -> Alcotest.fail "no result"

let test_asm_unknown_label () =
  expect_parse_error
    ".method void main() {\n  br nowhere\n  ret\n}" "unknown label"

let test_asm_duplicate_method () =
  expect_parse_error
    ".method void main() { ret }\n.method void main() { ret }"
    "duplicate method"

let test_asm_missing_operand () =
  expect_parse_error ".method void main() {\n  ldc.i8\n}" "operand"

let test_asm_unknown_field () =
  expect_parse_error
    ".class Box { .field int32 v }\n\
     .method void main() {\n\
    \  newobj Box\n\
    \  ldfld Box::w\n\
    \  pop\n\
    \  ret\n\
     }"
    "no field"

let test_asm_comments_and_blank_lines () =
  let rt = Runtime.create () in
  let src =
    "// leading comment\n\n.method int64 main() { // inline\n  ldc.i8 7 // \
     seven\n  ret\n}\n// trailing"
  in
  match run_main rt src with
  | Some (Vm.Il.V_int 7L) -> ()
  | _ -> Alcotest.fail "comment handling broke the program"

(* ------------------------------------------------------------------ *)
(* Verifier                                                            *)
(* ------------------------------------------------------------------ *)

let test_verify_ret_wrong_type () =
  expect_verify_error ".method int64 main() {\n  ldnull\n  ret\n}"
    "wrong stack shape"

let test_verify_ret_nonempty_stack () =
  expect_verify_error
    ".method void main() {\n  ldc.i8 1\n  ret\n}" "non-empty"

let test_verify_newobj_array_class () =
  (* The int32[] class is interned by the local declaration; newobj on it
     must still be rejected. *)
  expect_verify_error
    ".method void main() {\n\
    \  .locals (int32[] scratch)\n\
    \  newobj int32[]\n\
    \  pop\n\
    \  ret\n\
     }"
    "newobj on array class"

let test_verify_md_rank_checked () =
  (* newmd needs `rank` ints on the stack. *)
  expect_verify_error
    ".method void main() {\n  ldc.i8 4\n  newmd float64[,]\n  pop\n  ret\n}"
    "underflow"

let test_verify_fallthrough () =
  expect_verify_error ".method void main() {\n  ldc.i8 1\n  pop\n}"
    "fallthrough"

(* ------------------------------------------------------------------ *)
(* Interpreter                                                         *)
(* ------------------------------------------------------------------ *)

let expect_runtime_error src fragment =
  let rt = Runtime.create () in
  try
    ignore (run_main rt src);
    Alcotest.fail "expected Runtime_error"
  with Vm.Interp.Runtime_error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "message %S mentions %S" msg fragment)
      true (contains msg fragment)

let test_interp_division_by_zero () =
  expect_runtime_error
    ".method void main() {\n  ldc.i8 1\n  ldc.i8 0\n  div\n  pop\n  ret\n}"
    "division by zero"

let test_interp_negative_array_length () =
  expect_runtime_error
    ".method void main() {\n  ldc.i8 0\n  ldc.i8 1\n  sub\n  newarr int32\n  pop\n  ret\n}"
    "negative array length"

let test_interp_md_roundtrip () =
  let rt = Runtime.create () in
  let src =
    {|
  .method float64 main() {
    .locals (float64[,] m)
    ldc.i8 2
    ldc.i8 3
    newmd float64[,]
    stloc m
    ldloc m
    ldc.i8 1
    ldc.i8 2
    ldc.r8 6.5
    stelem.md float64[,]
    ldloc m
    ldc.i8 1
    ldc.i8 2
    ldelem.md float64[,]
    ret
  }
|}
  in
  match run_main rt src with
  | Some (Vm.Il.V_float v) -> Alcotest.(check (float 0.0)) "m[1,2]" 6.5 v
  | _ -> Alcotest.fail "no result"

let test_interp_md_bounds () =
  expect_runtime_error
    {|
  .method void main() {
    .locals (float64[,] m)
    ldc.i8 2
    ldc.i8 3
    newmd float64[,]
    stloc m
    ldloc m
    ldc.i8 0
    ldc.i8 3
    ldelem.md float64[,]
    pop
    ret
  }
|}
    "out of bounds"

let test_interp_md_ref_elements_traced () =
  (* Reference elements of an md array must keep objects alive through
     collections (GC tracing of K_md_array with Eref). *)
  let rt = Runtime.create () in
  let gc = rt.Runtime.gc in
  let box =
    Classes.define rt.Runtime.registry ~name:"Box"
      ~fields:[ ("v", Types.Prim Types.I4, false) ]
      ()
  in
  let grid =
    Om.alloc_md_array gc (Types.Eref box.Classes.c_id) [| 2; 2 |]
  in
  let b = Om.alloc_instance gc box in
  Om.set_int gc b (Classes.field box "v") 77;
  Om.set_elem_ref gc grid 3 (Some b);
  Om.free gc b;
  Gc.collect gc ~full:false;
  Gc.collect gc ~full:true;
  match Om.get_elem_ref gc grid 3 with
  | Some survivor ->
      Alcotest.(check int) "payload" 77
        (Om.get_int gc survivor (Classes.field box "v"))
  | None -> Alcotest.fail "md ref element lost by GC"

let test_interp_fuel () =
  let rt = Runtime.create () in
  let program =
    Vm.Assembler.assemble rt.Runtime.registry
      ".method void main() {\nspin:\n  br spin\n}"
  in
  let interp = Vm.Interp.create ~fuel:10_000 rt.Runtime.gc program in
  Vm.Syslib.register interp ~env:rt.Runtime.env ~out:rt.Runtime.out;
  Vm.Interp.verify interp;
  (try
     ignore (Vm.Interp.run_entry interp []);
     Alcotest.fail "expected fuel exhaustion"
   with Vm.Interp.Runtime_error msg ->
     Alcotest.(check bool) "out of fuel" true (contains msg "fuel"));
  Alcotest.(check bool) "counted instructions" true
    (Vm.Interp.instructions_executed interp >= 10_000)

let test_interp_starg () =
  let rt = Runtime.create () in
  let src =
    {|
  .method int64 clamp(int64 x) {
    ldarg x
    ldc.i8 100
    cgt
    brfalse done
    ldc.i8 100
    starg x
  done:
    ldarg x
    ret
  }
  .method void main() { ret }
|}
  in
  let interp = Runtime.load rt src in
  (match Vm.Interp.run interp "clamp" [ Vm.Il.V_int 500L ] with
  | Some (Vm.Il.V_int v) -> Alcotest.(check int64) "clamped" 100L v
  | _ -> Alcotest.fail "no result");
  match Vm.Interp.run interp "clamp" [ Vm.Il.V_int 31L ] with
  | Some (Vm.Il.V_int v) -> Alcotest.(check int64) "unclamped" 31L v
  | _ -> Alcotest.fail "no result"

(* ------------------------------------------------------------------ *)
(* Heap internals                                                      *)
(* ------------------------------------------------------------------ *)

let test_heap_free_list_reuse () =
  let rt = Runtime.create () in
  let gc = rt.Runtime.gc in
  let mt = Classes.object_class rt.Runtime.registry in
  ignore mt;
  (* Promote an object to elder, free it with a full GC, and check the
     space is reused by the next elder allocation. *)
  let a = Om.alloc_array gc (Types.Eprim Types.I8) 1000 in
  Gc.collect gc ~full:false;
  let addr_a = Om.addr_of gc a in
  Alcotest.(check bool) "promoted" false (Heap.in_young rt.Runtime.heap addr_a);
  let used_before = Heap.elder_used rt.Runtime.heap in
  Om.free gc a;
  Gc.collect gc ~full:true;
  let used_after = Heap.elder_used rt.Runtime.heap in
  Alcotest.(check bool) "space reclaimed" true (used_after < used_before);
  Heap.check_consistency rt.Runtime.heap

let test_heap_elder_accounting () =
  let rt = Runtime.create () in
  let gc = rt.Runtime.gc in
  Alcotest.(check int) "elder initially empty" 0
    (Heap.elder_used rt.Runtime.heap);
  let keep = Om.alloc_array gc (Types.Eprim Types.I8) 100 in
  Gc.collect gc ~full:false;
  Alcotest.(check bool) "elder grows on promotion" true
    (Heap.elder_used rt.Runtime.heap > 0);
  ignore keep

let test_heap_many_pins_consistency () =
  (* Repeated pin-driven block promotions must keep the heap parseable. *)
  let rt = Runtime.create () in
  let gc = rt.Runtime.gc in
  for round = 1 to 5 do
    let pinned = Om.alloc_array gc (Types.Eprim Types.I4) 32 in
    Om.set_elem_int gc pinned 0 round;
    Gc.pin gc pinned;
    (* Garbage plus a survivor in the same young block. *)
    for _ = 1 to 20 do
      Om.free gc (Om.alloc_array gc (Types.Eprim Types.I8) 64)
    done;
    Gc.collect gc ~full:false;
    Alcotest.(check int)
      (Printf.sprintf "round %d payload" round)
      round
      (Om.get_elem_int gc pinned 0);
    Gc.unpin gc pinned;
    Om.free gc pinned
  done;
  Gc.collect gc ~full:true;
  Heap.check_consistency rt.Runtime.heap

(* ------------------------------------------------------------------ *)
(* GC pin bookkeeping                                                  *)
(* ------------------------------------------------------------------ *)

let test_nested_pins () =
  let rt = Runtime.create () in
  let gc = rt.Runtime.gc in
  let o = Om.alloc_instance gc (Classes.object_class rt.Runtime.registry) in
  let addr = Om.addr_of gc o in
  Gc.pin gc o;
  Gc.pin gc o;
  Gc.unpin gc o;
  (* Still pinned once: must not move. *)
  Gc.collect gc ~full:false;
  Alcotest.(check int) "held by remaining pin" addr (Om.addr_of gc o);
  Gc.unpin gc o;
  Alcotest.(check int) "fully unpinned" 0 (Gc.pinned_count gc)

let test_multiple_conditional_pins_same_object () =
  let rt = Runtime.create () in
  let gc = rt.Runtime.gc in
  let o = Om.alloc_instance gc (Classes.object_class rt.Runtime.registry) in
  let a_active = ref true and b_active = ref true in
  Gc.add_conditional_pin gc o ~still_active:(fun () -> !a_active);
  Gc.add_conditional_pin gc o ~still_active:(fun () -> !b_active);
  let addr = Om.addr_of gc o in
  Gc.collect gc ~full:false;
  Alcotest.(check int) "held" addr (Om.addr_of gc o);
  a_active := false;
  Gc.collect gc ~full:false;
  Alcotest.(check int) "one request left" 1 (Gc.conditional_pin_count gc);
  Alcotest.(check int) "still held by the other" addr (Om.addr_of gc o);
  b_active := false;
  Gc.collect gc ~full:false;
  Alcotest.(check int) "all dropped" 0 (Gc.conditional_pin_count gc)

let test_handle_free_releases_root () =
  let rt = Runtime.create () in
  let gc = rt.Runtime.gc in
  let o = Om.alloc_instance gc (Classes.object_class rt.Runtime.registry) in
  Gc.collect gc ~full:false;
  Alcotest.(check int) "alive via handle" 1 (Gc.live_objects gc);
  Om.free gc o;
  Gc.collect gc ~full:true;
  Alcotest.(check int) "collected after free" 0 (Gc.live_objects gc)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_md_flat_index_bijective =
  QCheck.Test.make ~name:"md flat indexing is a bijection" ~count:60
    QCheck.(pair (int_range 1 5) (int_range 1 5))
    (fun (d0, d1) ->
      let rt = Runtime.create () in
      let gc = rt.Runtime.gc in
      let m = Om.alloc_md_array gc (Types.Eprim Types.I4) [| d0; d1 |] in
      (* Write distinct values via [i;j], read back via flat index. *)
      for i = 0 to d0 - 1 do
        for j = 0 to d1 - 1 do
          let flat = Om.md_flat_index gc m [| i; j |] in
          Om.set_elem_int gc m flat ((i * 100) + j)
        done
      done;
      let ok = ref true in
      for i = 0 to d0 - 1 do
        for j = 0 to d1 - 1 do
          let flat = Om.md_flat_index gc m [| i; j |] in
          if Om.get_elem_int gc m flat <> (i * 100) + j then ok := false
        done
      done;
      !ok)

let prop_assemble_verify_run_arithmetic =
  QCheck.Test.make
    ~name:"assembled arithmetic programs verify and compute correctly"
    ~count:60
    QCheck.(pair (int_range (-1000) 1000) (int_range (-1000) 1000))
    (fun (a, b) ->
      let rt = Runtime.create () in
      let src =
        Printf.sprintf
          ".method int64 main() {\n\
          \  ldc.i8 %d\n\
          \  ldc.i8 %d\n\
          \  add\n\
          \  ldc.i8 %d\n\
          \  mul\n\
          \  ret\n\
           }"
          a b (a - b)
      in
      match run_main rt src with
      | Some (Vm.Il.V_int v) -> Int64.to_int v = (a + b) * (a - b)
      | _ -> false)


let test_ldstr_print () =
  let rt = Runtime.create () in
  let src =
    {|
  .method void main() {
    ldstr "x=\"1\"\ttab"
    intcall sys.print_str
    intcall sys.print_nl
    ret
  }
|}
  in
  ignore (run_main rt src);
  Alcotest.(check string) "escapes handled" "x=\"1\"\ttab\n"
    (Runtime.output rt)

let test_ldstr_is_char_array () =
  let rt = Runtime.create () in
  let src =
    {|
  .method int64 main() {
    ldstr "abcd"
    ldlen
    ret
  }
|}
  in
  match run_main rt src with
  | Some (Vm.Il.V_int v) -> Alcotest.(check int64) "length 4" 4L v
  | _ -> Alcotest.fail "no result"

let test_unterminated_string () =
  expect_parse_error
    ".method void main() {\n  ldstr \"oops\n  ret\n}" "unterminated"


let test_debug_heap_inspector () =
  let rt = Runtime.create () in
  let gc = rt.Runtime.gc in
  let mt =
    Classes.define rt.Runtime.registry ~name:"Probe"
      ~fields:[ ("v", Types.Prim Types.I8, false) ]
      ()
  in
  let young = Om.alloc_instance gc mt in
  let elder = Om.alloc_array gc (Types.Eprim Types.I4) 8 in
  Gc.collect gc ~full:false;
  (* elder promoted; allocate a fresh young one *)
  let young2 = Om.alloc_instance gc mt in
  ignore young;
  ignore young2;
  ignore elder;
  let objs = Vm.Debug.objects gc in
  let by_gen g =
    List.length (List.filter (fun o -> o.Vm.Debug.generation = g) objs)
  in
  Alcotest.(check bool) "has young objects" true (by_gen `Young > 0);
  Alcotest.(check bool) "has elder objects" true (by_gen `Elder > 0);
  let hist = Vm.Debug.class_histogram gc in
  Alcotest.(check bool) "histogram names Probe" true
    (List.exists (fun (n, _, _) -> n = "Probe") hist);
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Vm.Debug.pp_heap fmt gc;
  Format.pp_print_flush fmt ();
  Alcotest.(check bool) "printable" true (Buffer.length buf > 0)

let test_debug_flags_shown () =
  let rt = Runtime.create () in
  let gc = rt.Runtime.gc in
  let o = Om.alloc_instance gc (Classes.object_class rt.Runtime.registry) in
  Gc.pin gc o;
  Gc.collect gc ~full:false;
  let objs = Vm.Debug.objects gc in
  Alcotest.(check bool) "pinned flag surfaced" true
    (List.exists (fun i -> i.Vm.Debug.pinned) objs);
  Gc.unpin gc o


let test_isinst () =
  let rt = Runtime.create () in
  let src =
    {|
  .class Cat { .field int32 lives }
  .class Dog { .field int32 barks }
  .method int64 main() {
    .locals (object x, int64 acc)
    newobj Cat
    stloc x
    ldloc x
    isinst Cat
    ldc.i8 1000
    mul
    ldloc x
    isinst Dog
    ldc.i8 100
    mul
    add
    ldloc x
    isinst System.Object
    ldc.i8 10
    mul
    add
    stloc acc
    ldnull
    isinst Cat
    ldloc acc
    add
    ret
  }
|}
  in
  match run_main rt src with
  | Some (Vm.Il.V_int v) ->
      (* Cat:1 Dog:0 Object:1 null:0 -> 1000 + 0 + 10 + 0 *)
      Alcotest.(check int64) "isinst truth table" 1010L v
  | _ -> Alcotest.fail "no result"


let test_handle_use_after_free_detected () =
  let rt = Runtime.create () in
  let gc = rt.Runtime.gc in
  let o = Om.alloc_instance gc (Classes.object_class rt.Runtime.registry) in
  Om.free gc o;
  (try
     ignore (Om.addr_of gc o);
     Alcotest.fail "expected use-after-free"
   with Invalid_argument _ -> ());
  try
    Om.free gc o;
    Alcotest.fail "expected double-free"
  with Invalid_argument _ -> ()

let () =
  Alcotest.run "vm-extra"
    [
      ( "assembler",
        [
          Alcotest.test_case "named args and locals" `Quick
            test_asm_named_args_and_locals;
          Alcotest.test_case "array-of-arrays types" `Quick
            test_asm_array_of_arrays_type;
          Alcotest.test_case "unknown label" `Quick test_asm_unknown_label;
          Alcotest.test_case "duplicate method" `Quick
            test_asm_duplicate_method;
          Alcotest.test_case "missing operand" `Quick
            test_asm_missing_operand;
          Alcotest.test_case "unknown field" `Quick test_asm_unknown_field;
          Alcotest.test_case "comments and blank lines" `Quick
            test_asm_comments_and_blank_lines;
          Alcotest.test_case "ldstr printing and escapes" `Quick
            test_ldstr_print;
          Alcotest.test_case "ldstr is a char array" `Quick
            test_ldstr_is_char_array;
          Alcotest.test_case "unterminated string" `Quick
            test_unterminated_string;
        ] );
      ( "verifier",
        [
          Alcotest.test_case "ret wrong type" `Quick
            test_verify_ret_wrong_type;
          Alcotest.test_case "ret non-empty stack" `Quick
            test_verify_ret_nonempty_stack;
          Alcotest.test_case "newobj on array class" `Quick
            test_verify_newobj_array_class;
          Alcotest.test_case "md rank arity" `Quick
            test_verify_md_rank_checked;
          Alcotest.test_case "fallthrough" `Quick test_verify_fallthrough;
        ] );
      ( "interpreter",
        [
          Alcotest.test_case "division by zero" `Quick
            test_interp_division_by_zero;
          Alcotest.test_case "negative array length" `Quick
            test_interp_negative_array_length;
          Alcotest.test_case "md array roundtrip" `Quick
            test_interp_md_roundtrip;
          Alcotest.test_case "md bounds" `Quick test_interp_md_bounds;
          Alcotest.test_case "md ref elements traced by GC" `Quick
            test_interp_md_ref_elements_traced;
          Alcotest.test_case "fuel exhaustion" `Quick test_interp_fuel;
          Alcotest.test_case "starg" `Quick test_interp_starg;
          Alcotest.test_case "isinst" `Quick test_isinst;
        ] );
      ( "heap",
        [
          Alcotest.test_case "free-list reclaims elder space" `Quick
            test_heap_free_list_reuse;
          Alcotest.test_case "elder accounting" `Quick
            test_heap_elder_accounting;
          Alcotest.test_case "repeated pin promotions stay consistent"
            `Quick test_heap_many_pins_consistency;
        ] );
      ( "debug",
        [
          Alcotest.test_case "heap inspector" `Quick
            test_debug_heap_inspector;
          Alcotest.test_case "flags surfaced" `Quick test_debug_flags_shown;
        ] );
      ( "gc pins",
        [
          Alcotest.test_case "nested pins" `Quick test_nested_pins;
          Alcotest.test_case "multiple conditional pins on one object"
            `Quick test_multiple_conditional_pins_same_object;
          Alcotest.test_case "handle free releases the root" `Quick
            test_handle_free_releases_root;
          Alcotest.test_case "use-after-free detected" `Quick
            test_handle_use_after_free_detected;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_md_flat_index_bijective;
          QCheck_alcotest.to_alcotest prop_assemble_verify_run_arithmetic;
        ] );
    ]
