(* Tests for the tooling layers: the MPE-style trace subsystem and the
   ASCII chart renderer. *)

module Mpi = Mpi_core.Mpi
module Trace = Mpi_core.Trace
module Bv = Mpi_core.Buffer_view

let test_trace_records_device_events () =
  let env = Simtime.Env.create ~cost:Simtime.Cost.native_cpp () in
  let trace = Trace.enable env in
  let w = Mpi.create_world ~env ~n:2 () in
  let comm = Mpi.comm_world w in
  let body rank () =
    let p = Mpi.proc w rank in
    let b = Bytes.create 64 in
    if rank = 0 then Mpi.send p ~comm ~dst:1 ~tag:9 (Bv.of_bytes b)
    else ignore (Mpi.recv p ~comm ~src:0 ~tag:9 (Bv.of_bytes b))
  in
  Fiber.run [ ("t0", body 0); ("t1", body 1) ];
  let events = Trace.events trace in
  let ops = List.map (fun e -> (e.Trace.rank, e.Trace.op)) events in
  Alcotest.(check bool) "sender isend recorded" true
    (List.mem (0, "isend") ops);
  Alcotest.(check bool) "receiver irecv recorded" true
    (List.mem (1, "irecv") ops);
  Alcotest.(check bool) "delivery recorded" true (List.mem (1, "eager") ops);
  (* Timestamps are monotone. *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        a.Trace.t_us <= b.Trace.t_us && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone timeline" true (monotone events)

let test_trace_off_by_default () =
  let env = Simtime.Env.create ~cost:Simtime.Cost.native_cpp () in
  Alcotest.(check bool) "no trace attached" true (Trace.find env = None);
  (* Recording without a trace must be a harmless no-op. *)
  Trace.record env ~rank:0 ~op:"x" ~detail:"y"

let test_trace_ring_buffer_drops_oldest () =
  let env = Simtime.Env.create () in
  let trace = Trace.enable ~capacity:8 env in
  for i = 1 to 20 do
    Simtime.Env.charge env 1000.0;
    Trace.record env ~rank:0 ~op:"tick" ~detail:(string_of_int i)
  done;
  Alcotest.(check int) "bounded" 8 (Trace.length trace);
  Alcotest.(check int) "dropped counted" 12 (Trace.dropped trace);
  let details = List.map (fun e -> e.Trace.detail) (Trace.events trace) in
  Alcotest.(check (list string)) "kept the newest, oldest first"
    [ "13"; "14"; "15"; "16"; "17"; "18"; "19"; "20" ]
    details;
  Trace.clear trace;
  Alcotest.(check int) "cleared" 0 (Trace.length trace)

let test_trace_rendezvous_sequence () =
  (* A rendezvous transfer must show the full RTS/CTS/DATA handshake. *)
  let env = Simtime.Env.create ~cost:Simtime.Cost.native_cpp () in
  let trace = Trace.enable env in
  let w = Mpi.create_world ~env ~n:2 () in
  let comm = Mpi.comm_world w in
  let size = 200_000 in
  let body rank () =
    let p = Mpi.proc w rank in
    let b = Bytes.create size in
    if rank = 0 then Mpi.send p ~comm ~dst:1 ~tag:0 (Bv.of_bytes b)
    else ignore (Mpi.recv p ~comm ~src:0 ~tag:0 (Bv.of_bytes b))
  in
  Fiber.run [ ("r0", body 0); ("r1", body 1) ];
  let ops = List.map (fun e -> e.Trace.op) (Trace.events trace) in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " present") true
        (List.mem expected ops))
    [ "isend/rndv"; "rts"; "cts"; "data" ]

let render_chart series =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Harness.Chart.log_log ~out:fmt ~title:"t" ~xlabel:"x" ~ylabel:"y" ~series ();
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let test_chart_renders_series () =
  let s =
    render_chart
      [
        ("up", [ (1.0, 10.0); (10.0, 100.0); (100.0, 1000.0) ]);
        ("down", [ (1.0, 1000.0); (10.0, 100.0); (100.0, 10.0) ]);
      ]
  in
  Alcotest.(check bool) "has legend" true
    (String.length s > 0
    &&
    let contains sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    contains "*=up" && contains "o=down" && contains "log scale")

let test_chart_empty_series () =
  let s = render_chart [ ("nothing", []) ] in
  Alcotest.(check bool) "handles no data" true
    (String.length s > 0)

let test_chart_skips_nonpositive () =
  (* Zero and negative values cannot be drawn on a log axis and must not
     crash the renderer. *)
  let s = render_chart [ ("mixed", [ (0.0, 5.0); (10.0, 0.0); (10.0, 5.0) ]) ] in
  Alcotest.(check bool) "rendered" true (String.length s > 0)

let () =
  Alcotest.run "tools"
    [
      ( "trace",
        [
          Alcotest.test_case "records device events" `Quick
            test_trace_records_device_events;
          Alcotest.test_case "off by default" `Quick test_trace_off_by_default;
          Alcotest.test_case "ring buffer drops oldest" `Quick
            test_trace_ring_buffer_drops_oldest;
          Alcotest.test_case "rendezvous handshake sequence" `Quick
            test_trace_rendezvous_sequence;
        ] );
      ( "chart",
        [
          Alcotest.test_case "renders series with legend" `Quick
            test_chart_renders_series;
          Alcotest.test_case "empty series" `Quick test_chart_empty_series;
          Alcotest.test_case "non-positive values skipped" `Quick
            test_chart_skips_nonpositive;
        ] );
    ]
