(* Failure-injection and fuzz tests: corrupted wire representations,
   out-of-memory during deserialization, and GC integrity over random
   object graphs under random collection schedules. *)

module Ser = Motor.Serializer
module Om = Vm.Object_model
module Gc = Vm.Gc
module Heap = Vm.Heap
module Classes = Vm.Classes
module Types = Vm.Types
module Runtime = Vm.Runtime

let node_class registry =
  match Classes.find_by_name registry "FuzzNode" with
  | Some mt -> mt
  | None ->
      let id = Classes.declare registry ~name:"FuzzNode" in
      let arr = Classes.array_class registry (Types.Eprim Types.I4) in
      Classes.complete registry id ~transportable:true
        ~fields:
          [
            ("data", Types.Ref arr.Classes.c_id, true);
            ("left", Types.Ref id, true);
            ("right", Types.Ref id, true);
            ("tag", Types.Prim Types.I4, false);
          ]
        ()

(* Build a random object graph over [n] nodes: random tree edges plus
   random extra edges (sharing and cycles), values derived from [seed]. *)
let build_graph gc registry ~n ~seed =
  let mt = node_class registry in
  let fdata = Classes.field mt "data" in
  let fleft = Classes.field mt "left" in
  let fright = Classes.field mt "right" in
  let ftag = Classes.field mt "tag" in
  let nodes =
    Array.init n (fun i ->
        let node = Om.alloc_instance gc mt in
        Om.set_int gc node ftag ((seed * 31) + i);
        let arr = Om.alloc_array gc (Types.Eprim Types.I4) (1 + (i mod 4)) in
        Om.set_elem_int gc arr 0 (i * 7);
        Om.set_ref gc node fdata (Some arr);
        Om.free gc arr;
        node)
  in
  let pick i salt = nodes.((((i * 131) + salt + seed) mod n + n) mod n) in
  Array.iteri
    (fun i node ->
      if (i + seed) mod 3 <> 0 then Om.set_ref gc node fleft (Some (pick i 1));
      if (i + seed) mod 4 <> 0 then Om.set_ref gc node fright (Some (pick i 2)))
    nodes;
  nodes

(* A structural fingerprint of the graph reachable from [root], following
   object identity (visited set) so cycles terminate. *)
let fingerprint gc registry root =
  let mt = node_class registry in
  let fdata = Classes.field mt "data" in
  let fleft = Classes.field mt "left" in
  let fright = Classes.field mt "right" in
  let ftag = Classes.field mt "tag" in
  let seen = Hashtbl.create 64 in
  let acc = Buffer.create 256 in
  let rec go o =
    let addr = Om.addr_of gc o in
    match Hashtbl.find_opt seen addr with
    | Some id -> Buffer.add_string acc (Printf.sprintf "@%d;" id)
    | None ->
        let id = Hashtbl.length seen in
        Hashtbl.replace seen addr id;
        Buffer.add_string acc (Printf.sprintf "#%d:" (Om.get_int gc o ftag));
        (match Om.get_ref gc o fdata with
        | Some arr ->
            Buffer.add_string acc
              (Printf.sprintf "d%d=%d;"
                 (Om.array_length gc arr)
                 (Om.get_elem_int gc arr 0));
            Om.free gc arr
        | None -> Buffer.add_string acc "d-;");
        (match Om.get_ref gc o fleft with
        | Some l ->
            go l;
            Om.free gc l
        | None -> Buffer.add_string acc "l-;");
        (match Om.get_ref gc o fright with
        | Some r ->
            go r;
            Om.free gc r
        | None -> Buffer.add_string acc "r-;")
  in
  go root;
  Buffer.contents acc

let test_oom_during_deserialize_is_clean () =
  (* A tiny arena cannot hold the incoming graph: the failure must be
     Out_of_memory, and the heap must stay parseable. *)
  let big_rt = Runtime.create () in
  let gc = big_rt.Runtime.gc in
  let nodes = build_graph gc big_rt.Runtime.registry ~n:20_000 ~seed:5 in
  let repr = Ser.serialize gc ~visited:Ser.Hashed nodes.(0) in
  let small_rt =
    Runtime.create ~arena_bytes:(512 * 1024) ~block_bytes:(64 * 1024) ()
  in
  ignore (node_class small_rt.Runtime.registry);
  (try
     ignore (Ser.deserialize small_rt.Runtime.gc repr);
     Alcotest.fail "expected Out_of_memory"
   with Heap.Out_of_memory -> ());
  Heap.check_consistency small_rt.Runtime.heap

let test_wrong_class_shape_rejected () =
  (* Receiver's class has a different field signature: decode must fail
     with a Serialize_error, not corrupt objects. *)
  let src_rt = Runtime.create () in
  let gc = src_rt.Runtime.gc in
  let mt =
    Classes.define src_rt.Runtime.registry ~name:"Shape"
      ~fields:[ ("x", Types.Prim Types.I8, false) ]
      ()
  in
  let o = Om.alloc_instance gc mt in
  let repr = Ser.serialize gc ~visited:Ser.Hashed o in
  let dst_rt = Runtime.create () in
  ignore
    (Classes.define dst_rt.Runtime.registry ~name:"Shape"
       ~fields:[ ("x", Types.Prim Types.R4, false) ]
       ());
  try
    ignore (Ser.deserialize dst_rt.Runtime.gc repr);
    Alcotest.fail "expected Serialize_error"
  with Ser.Serialize_error msg ->
    Alcotest.(check bool) "mentions the mismatch" true
      (String.length msg > 0)

let prop_fuzzed_representations_never_crash =
  QCheck.Test.make
    ~name:"bit-flipped representations raise Serialize_error or decode"
    ~count:300
    QCheck.(triple (int_range 1 12) (int_range 0 2000) (int_range 0 255))
    (fun (n, flip_pos, flip_val) ->
      let rt = Runtime.create () in
      let gc = rt.Runtime.gc in
      let nodes = build_graph gc rt.Runtime.registry ~n ~seed:n in
      let repr = Ser.serialize gc ~visited:Ser.Hashed nodes.(0) in
      let mutated = Bytes.copy repr in
      let pos = flip_pos mod Bytes.length mutated in
      Bytes.set mutated pos (Char.chr flip_val);
      (* Acceptable outcomes: clean decode of something, or a categorized
         error. Anything else (Invalid_argument, Failure, assert) fails. *)
      match Ser.deserialize gc mutated with
      | obj ->
          Om.free gc obj;
          true
      | exception Ser.Serialize_error _ -> true
      | exception Om.Managed_error _ -> true
      | exception Heap.Out_of_memory -> true)

let prop_truncated_representations_never_crash =
  QCheck.Test.make ~name:"truncated representations raise Serialize_error"
    ~count:150
    QCheck.(pair (int_range 1 10) (int_range 0 99))
    (fun (n, keep_pct) ->
      let rt = Runtime.create () in
      let gc = rt.Runtime.gc in
      let nodes = build_graph gc rt.Runtime.registry ~n ~seed:(n + 1) in
      let repr = Ser.serialize gc ~visited:Ser.Hashed nodes.(0) in
      let keep = Bytes.length repr * keep_pct / 100 in
      let truncated = Bytes.sub repr 0 keep in
      match Ser.deserialize gc truncated with
      | obj ->
          Om.free gc obj;
          true
      | exception Ser.Serialize_error _ -> true
      | exception Om.Managed_error _ -> true)

let prop_gc_preserves_random_graphs =
  QCheck.Test.make
    ~name:"random graphs survive random GC schedules intact" ~count:40
    QCheck.(triple (int_range 1 40) (int_range 0 100) (list (int_range 0 2)))
    (fun (n, seed, gcs) ->
      let rt = Runtime.create () in
      let gc = rt.Runtime.gc in
      let registry = rt.Runtime.registry in
      let nodes = build_graph gc registry ~n ~seed in
      let root = nodes.(0) in
      (* Drop every handle except the root: the graph must survive through
         reachability alone. *)
      Array.iteri (fun i o -> if i > 0 then Om.free gc o) nodes;
      let before = fingerprint gc registry root in
      List.iter
        (fun k ->
          (match k with
          | 0 -> Gc.collect gc ~full:false
          | 1 -> Gc.collect gc ~full:true
          | _ ->
              (* allocation churn to trigger natural collections *)
              for _ = 1 to 200 do
                Om.free gc (Om.alloc_array gc (Types.Eprim Types.I8) 64)
              done);
          Heap.check_consistency rt.Runtime.heap)
        gcs;
      let after = fingerprint gc registry root in
      before = after)

let prop_serializer_roundtrip_random_graphs =
  QCheck.Test.make
    ~name:"random graphs (cycles, sharing) roundtrip the serializer"
    ~count:60
    QCheck.(pair (int_range 1 30) (int_range 0 50))
    (fun (n, seed) ->
      let rt = Runtime.create () in
      let gc = rt.Runtime.gc in
      let registry = rt.Runtime.registry in
      let nodes = build_graph gc registry ~n ~seed in
      let root = nodes.(0) in
      let before = fingerprint gc registry root in
      let copy =
        Ser.deserialize gc (Ser.serialize gc ~visited:Ser.Linear root)
      in
      fingerprint gc registry copy = before)

let () =
  Alcotest.run "robustness"
    [
      ( "failure injection",
        [
          Alcotest.test_case "OOM during deserialize is clean" `Quick
            test_oom_during_deserialize_is_clean;
          Alcotest.test_case "wrong class shape rejected" `Quick
            test_wrong_class_shape_rejected;
        ] );
      ( "fuzz",
        [
          QCheck_alcotest.to_alcotest prop_fuzzed_representations_never_crash;
          QCheck_alcotest.to_alcotest
            prop_truncated_representations_never_crash;
        ] );
      ( "gc integrity",
        [
          QCheck_alcotest.to_alcotest prop_gc_preserves_random_graphs;
          QCheck_alcotest.to_alcotest
            prop_serializer_roundtrip_random_graphs;
        ] );
    ]
