(* Tests for the managed (MIL-visible) API surface: the reflection
   internal calls and the extended mp.* collective bindings. *)

module World = Motor.World

let run_managed ~n src =
  let world = World.create ~n () in
  let outputs = Array.make n "" in
  World.run world (fun ctx ->
      let interp = Motor.Mil_bindings.load ctx src in
      ignore (Vm.Interp.run_entry interp []);
      outputs.(World.rank ctx) <- Vm.Runtime.output ctx.World.rt);
  outputs

let test_reflection_surface () =
  let src =
    {|
  .class transportable Pair {
    .field transportable int32[] data
    .field Pair other
  }
  .method void main() {
    .locals (Pair p)
    newobj Pair
    stloc p
    ldloc p
    intcall refl.class_name
    intcall sys.print_str
    intcall sys.print_nl
    ldloc p
    intcall refl.field_count
    intcall sys.print_i
    intcall sys.print_nl
    ldloc p
    ldc.i8 0
    intcall refl.field_name
    intcall sys.print_str
    intcall sys.print_nl
    ldloc p
    ldc.i8 0
    intcall refl.is_transportable
    intcall sys.print_i
    ldloc p
    ldc.i8 1
    intcall refl.is_transportable
    intcall sys.print_i
    intcall sys.print_nl
    ldloc p
    intcall refl.is_array
    intcall sys.print_i
    ldc.i8 2
    newarr int32
    intcall refl.is_array
    intcall sys.print_i
    intcall sys.print_nl
    ret
  }
|}
  in
  let out = run_managed ~n:1 src in
  Alcotest.(check string) "reflection answers" "Pair\n2\ndata\n10\n01\n"
    out.(0)

let test_reflection_null_faults () =
  let src =
    {|
  .method void main() {
    ldnull
    intcall refl.field_count
    pop
    ret
  }
|}
  in
  let world = World.create ~n:1 () in
  World.run world (fun ctx ->
      let interp = Motor.Mil_bindings.load ctx src in
      try
        ignore (Vm.Interp.run_entry interp []);
        Alcotest.fail "expected Runtime_error"
      with Vm.Interp.Runtime_error _ -> ())

let test_managed_bcast () =
  let src =
    {|
  .method void main() {
    .locals (int32[] buf)
    ldc.i8 4
    newarr int32
    stloc buf
    intcall mp.rank
    ldc.i8 2
    ceq
    brfalse join
    ldloc buf
    ldc.i8 0
    ldc.i8 1234
    stelem int32
  join:
    ldloc buf
    ldc.i8 2
    intcall mp.bcast
    ldloc buf
    ldc.i8 0
    ldelem int32
    intcall sys.print_i
    intcall sys.print_nl
    ret
  }
|}
  in
  let out = run_managed ~n:4 src in
  Array.iteri
    (fun r s ->
      Alcotest.(check string) (Printf.sprintf "rank %d" r) "1234\n" s)
    out

let test_managed_allreduce () =
  let src =
    {|
  .method void main() {
    .locals (float64[] acc)
    ldc.i8 1
    newarr float64
    stloc acc
    ldloc acc
    ldc.i8 0
    intcall mp.rank
    ldc.i8 1
    add
    conv.r
    stelem float64
    ldloc acc
    intcall mp.allreduce.f64
    ldloc acc
    ldc.i8 0
    ldelem float64
    intcall sys.print_f
    intcall sys.print_nl
    ret
  }
|}
  in
  let out = run_managed ~n:3 src in
  Array.iteri
    (fun r s ->
      Alcotest.(check string) (Printf.sprintf "rank %d sum" r) "6\n" s)
    out

let test_reflection_costs_time () =
  (* Reflection must be visibly slower than field access: the paper's
     reason for the FieldDesc bit. *)
  let world = World.create ~n:1 () in
  World.run world (fun ctx ->
      let src =
        {|
  .class Box { .field int32 v }
  .method void main() {
    .locals (Box b)
    newobj Box
    stloc b
    ldloc b
    intcall refl.field_count
    pop
    ret
  }
|}
      in
      let env = World.env ctx.World.world in
      let interp = Motor.Mil_bindings.load ctx src in
      let t0 = Simtime.Env.now_us env in
      ignore (Vm.Interp.run_entry interp []);
      let elapsed = Simtime.Env.now_us env -. t0 in
      Alcotest.(check bool)
        (Printf.sprintf "reflection charged (%.2f us)" elapsed)
        true (elapsed >= 0.8))


let test_managed_oscatter_ogather () =
  let path =
    List.find Sys.file_exists
      [ "../examples/farm.mil"; "examples/farm.mil" ]
  in
  let src = In_channel.with_open_text path In_channel.input_all in
  let out = run_managed ~n:4 src in
  Alcotest.(check string) "root reports the gathered sum"
    "sum of squares: 204\n" out.(0);
  Alcotest.(check string) "workers are silent" "" out.(1)

let () =
  Alcotest.run "managed-api"
    [
      ( "reflection",
        [
          Alcotest.test_case "surface" `Quick test_reflection_surface;
          Alcotest.test_case "null faults" `Quick
            test_reflection_null_faults;
          Alcotest.test_case "priced as the slow path" `Quick
            test_reflection_costs_time;
        ] );
      ( "mp collectives",
        [
          Alcotest.test_case "bcast" `Quick test_managed_bcast;
          Alcotest.test_case "allreduce f64" `Quick test_managed_allreduce;
          Alcotest.test_case "oscatter/ogather (task farm)" `Quick
            test_managed_oscatter_ogather;
        ] );
    ]
