(* Tests for the comparator systems: standard serializers (opt-out
   traversal, recursion limit, block-mode bump), call gateways, and the
   managed-wrapper transport's per-operation pinning. *)

module Std = Baselines.Std_serializer
module Gate = Baselines.Call_gate
module Wt = Baselines.Wrapper_transport
module World = Motor.World
module Om = Vm.Object_model
module Gc = Vm.Gc
module Classes = Vm.Classes
module Types = Vm.Types
module Key = Simtime.Stats.Key

let with_runtime ?cost f =
  let rt = Vm.Runtime.create ?cost () in
  f rt.Vm.Runtime.gc rt.Vm.Runtime.registry rt.Vm.Runtime.env

(* A class with one transportable and one plain reference — where Motor's
   opt-in and the standard opt-out traversals disagree. *)
let pair_class registry =
  match Classes.find_by_name registry "Pair" with
  | Some mt when Array.length mt.Classes.c_fields > 0 -> mt
  | Some _ | None ->
      let id = Classes.declare registry ~name:"Pair" in
      Classes.complete registry id
        ~fields:
          [
            ("a", Types.Ref id, true);
            ("b", Types.Ref id, false);
            ("v", Types.Prim Types.I4, false);
          ]
        ()

let chain gc registry ~len =
  let mt = pair_class registry in
  let fa = Classes.field mt "a" in
  let head = ref (Om.null gc) in
  for i = len - 1 downto 0 do
    let n = Om.alloc_instance gc mt in
    Om.set_int gc n (Classes.field mt "v") i;
    if not (Om.is_null gc !head) then begin
      Om.set_ref gc n fa (Some !head);
      Om.free gc !head
    end;
    head := n
  done;
  !head

let test_opt_out_traversal () =
  with_runtime (fun gc registry _env ->
      let mt = pair_class registry in
      let x = Om.alloc_instance gc mt in
      let y = Om.alloc_instance gc mt in
      (* y hangs off the NON-transportable field b. *)
      Om.set_ref gc x (Classes.field mt "b") (Some y);
      (* Motor's opt-in serializer prunes it... *)
      let motor_repr = Motor.Serializer.serialize gc ~visited:Hashed x in
      Alcotest.(check int) "motor ships 1 object" 1
        (Motor.Serializer.object_count motor_repr);
      (* ...the standard opt-out serializer ships it. *)
      let std_repr = Std.serialize Std.clr_sscli gc x in
      Alcotest.(check int) "standard ships 2 objects" 2
        (Std.object_count std_repr))

let test_std_roundtrip () =
  with_runtime (fun gc registry _env ->
      let head = chain gc registry ~len:20 in
      let copy = Std.deserialize Std.clr_dotnet gc
          (Std.serialize Std.clr_dotnet gc head)
      in
      let mt = pair_class registry in
      let fa = Classes.field mt "a" in
      let fv = Classes.field mt "v" in
      let rec walk o i =
        Alcotest.(check int) (Printf.sprintf "node %d" i) i
          (Om.get_int gc o fv);
        match Om.get_ref gc o fa with
        | Some next -> walk next (i + 1)
        | None -> i + 1
      in
      Alcotest.(check int) "length preserved" 20 (walk copy 0))

let test_java_recursion_limit () =
  with_runtime (fun gc registry _env ->
      (* Within budget. *)
      let ok = chain gc registry ~len:500 in
      ignore (Std.serialize Std.java gc ok);
      (* Past it: the paper's stack overflow. *)
      let too_long = chain gc registry ~len:1200 in
      Alcotest.check_raises "stack overflow" Std.Stack_overflow_sim
        (fun () -> ignore (Std.serialize Std.java gc too_long)))

let test_clr_has_no_recursion_limit () =
  with_runtime (fun gc registry _env ->
      let long = chain gc registry ~len:3000 in
      let repr = Std.serialize Std.clr_sscli gc long in
      Alcotest.(check int) "all objects shipped" 3000
        (Std.object_count repr))

let test_java_block_mode_bump () =
  (* Crossing the block-data threshold must cost visibly more than scaling
     within either regime. *)
  let time_for len =
    with_runtime (fun gc registry env ->
        let head = chain gc registry ~len in
        let t0 = Simtime.Env.now_us env in
        ignore (Std.serialize Std.java gc head);
        Simtime.Env.now_us env -. t0)
  in
  let t128 = time_for 128 and t256 = time_for 256 and t512 = time_for 512 in
  let step_before = t256 /. t128 in
  let step_at = t512 /. t256 in
  Alcotest.(check bool)
    (Printf.sprintf "bump: x%.2f then x%.2f" step_before step_at)
    true
    (step_at > 1.4 *. step_before)

let test_call_gate_costs () =
  let env = Simtime.Env.create ~cost:Simtime.Cost.indiana_sscli () in
  let t0 = Simtime.Env.now_us env in
  Gate.enter Gate.Pinvoke env ~args:6;
  let pinvoke_cost = Simtime.Env.now_us env -. t0 in
  Alcotest.(check bool) "costs time" true (pinvoke_cost > 0.0);
  Alcotest.(check int) "counted" 1
    (Simtime.Stats.get env.Simtime.Env.stats Key.pinvokes);
  (* FCall (Motor) must be cheaper than either gateway. *)
  let fcall = Simtime.Cost.motor.Simtime.Cost.fcall_ns /. 1000.0 in
  Alcotest.(check bool) "fcall cheaper" true (fcall < pinvoke_cost)

let test_wrapper_pins_every_op () =
  let w = World.create ~cost:Simtime.Cost.indiana_sscli ~n:2 () in
  let comm = World.comm_world w in
  World.run w (fun ctx ->
      let gc = World.gc ctx in
      let buf = Om.alloc_array gc (Types.Eprim Types.I4) 32 in
      for _ = 1 to 5 do
        if World.rank ctx = 0 then begin
          Wt.send ~mech:Gate.Pinvoke ctx ~comm ~dst:1 ~tag:0 buf;
          ignore (Wt.recv ~mech:Gate.Pinvoke ctx ~comm ~src:1 ~tag:0 buf)
        end
        else begin
          ignore (Wt.recv ~mech:Gate.Pinvoke ctx ~comm ~src:0 ~tag:0 buf);
          Wt.send ~mech:Gate.Pinvoke ctx ~comm ~dst:0 ~tag:0 buf
        end
      done);
  let stats = (World.env w).Simtime.Env.stats in
  (* 5 iterations x 2 ops x 2 ranks. *)
  Alcotest.(check int) "20 pins" 20 (Simtime.Stats.get stats Key.pins);
  Alcotest.(check int) "20 unpins" 20 (Simtime.Stats.get stats Key.unpins);
  Alcotest.(check int) "20 p/invokes" 20
    (Simtime.Stats.get stats Key.pinvokes)

let test_wrapper_does_not_gc_poll () =
  (* A GC requested while the wrapper blocks in native code must stay
     pending until the call returns — the opposite of Motor's FCall. *)
  let w = World.create ~cost:Simtime.Cost.indiana_sscli ~n:2 () in
  let comm = World.comm_world w in
  World.run w (fun ctx ->
      let gc = World.gc ctx in
      let buf = Om.alloc_array gc (Types.Eprim Types.I4) 32 in
      if World.rank ctx = 0 then begin
        for _ = 1 to 5 do
          Fiber.yield ()
        done;
        Wt.send ~mech:Gate.Pinvoke ctx ~comm ~dst:1 ~tag:0 buf
      end
      else begin
        Gc.request_gc gc;
        ignore (Wt.recv ~mech:Gate.Pinvoke ctx ~comm ~src:0 ~tag:0 buf);
        Alcotest.(check bool) "gc still pending after native call" true
          (Gc.gc_pending gc)
      end)

let test_wrapper_serialized_roundtrip () =
  let w = World.create ~cost:Simtime.Cost.mpijava ~n:2 () in
  let comm = World.comm_world w in
  World.run w (fun ctx ->
      let gc = World.gc ctx in
      let registry = World.registry ctx in
      (* Both runtimes must know the class, as both SSCLIs would. *)
      ignore (pair_class registry);
      if World.rank ctx = 0 then begin
        let head = chain gc registry ~len:10 in
        let data = Std.serialize Std.java gc head in
        Wt.send_serialized ~mech:Gate.Jni ctx ~comm ~dst:1 ~tag:0 data
      end
      else begin
        let data = Wt.recv_serialized ~mech:Gate.Jni ctx ~comm ~src:0 ~tag:0 in
        let copy = Std.deserialize Std.java gc data in
        let mt = pair_class registry in
        Alcotest.(check int) "first value" 0
          (Om.get_int gc copy (Classes.field mt "v"))
      end)

let prop_std_and_motor_agree_on_fully_transportable =
  QCheck.Test.make
    ~name:"std and motor serializers ship the same objects when all fields \
           are transportable"
    ~count:30
    QCheck.(int_range 1 60)
    (fun len ->
      with_runtime (fun gc registry _env ->
          let mt =
            match Classes.find_by_name registry "AllT" with
            | Some mt -> mt
            | None ->
                let id = Classes.declare registry ~name:"AllT" in
                Classes.complete registry id
                  ~fields:[ ("next", Types.Ref id, true) ]
                  ()
          in
          let fnext = Classes.field mt "next" in
          let head = ref (Om.null gc) in
          for _ = 1 to len do
            let n = Om.alloc_instance gc mt in
            if not (Om.is_null gc !head) then begin
              Om.set_ref gc n fnext (Some !head);
              Om.free gc !head
            end;
            head := n
          done;
          let m = Motor.Serializer.serialize gc ~visited:Hashed !head in
          let s = Std.serialize Std.clr_dotnet gc !head in
          Motor.Serializer.object_count m = Std.object_count s))

let () =
  Alcotest.run "baselines"
    [
      ( "std serializers",
        [
          Alcotest.test_case "opt-out traversal" `Quick
            test_opt_out_traversal;
          Alcotest.test_case "roundtrip" `Quick test_std_roundtrip;
          Alcotest.test_case "java recursion limit" `Quick
            test_java_recursion_limit;
          Alcotest.test_case "clr has no recursion limit" `Quick
            test_clr_has_no_recursion_limit;
          Alcotest.test_case "java block-mode bump" `Quick
            test_java_block_mode_bump;
        ] );
      ( "call gates",
        [ Alcotest.test_case "costs and counters" `Quick test_call_gate_costs ]
      );
      ( "wrapper transport",
        [
          Alcotest.test_case "pins every operation" `Quick
            test_wrapper_pins_every_op;
          Alcotest.test_case "does not gc-poll in native code" `Quick
            test_wrapper_does_not_gc_poll;
          Alcotest.test_case "serialized roundtrip over JNI" `Quick
            test_wrapper_serialized_roundtrip;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest
            prop_std_and_motor_agree_on_fully_transportable;
        ] );
    ]
