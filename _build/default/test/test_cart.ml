(* Tests for Cartesian topologies: factorisation, coordinate mapping,
   periodic wrapping, shifts, and a real neighbour exchange on the grid. *)

module Mpi = Mpi_core.Mpi
module Cart = Mpi_core.Cart
module Comm = Mpi_core.Comm
module Bv = Mpi_core.Buffer_view

let test_dims_create () =
  Alcotest.(check (array int)) "12 in 2D" [| 4; 3 |]
    (Cart.dims_create ~nnodes:12 ~ndims:2);
  Alcotest.(check (array int)) "8 in 3D" [| 2; 2; 2 |]
    (Cart.dims_create ~nnodes:8 ~ndims:3);
  Alcotest.(check (array int)) "7 in 2D" [| 7; 1 |]
    (Cart.dims_create ~nnodes:7 ~ndims:2);
  Alcotest.(check (array int)) "1 in 1D" [| 1 |]
    (Cart.dims_create ~nnodes:1 ~ndims:1)

let test_coords_roundtrip () =
  ignore
    (Mpi.run ~n:6 (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         match
           Cart.create p comm ~dims:[| 3; 2 |]
             ~periodic:[| false; false |]
         with
         | None -> Alcotest.fail "6 ranks fit a 3x2 grid"
         | Some cart ->
             for r = 0 to 5 do
               let cs = Cart.coords cart r in
               Alcotest.(check (option int))
                 (Printf.sprintf "rank %d roundtrips" r)
                 (Some r)
                 (Cart.rank_of_coords cart cs)
             done;
             (* Row-major: rank 4 of a 3x2 grid is (2,0). *)
             Alcotest.(check (array int)) "row-major" [| 2; 0 |]
               (Cart.coords cart 4)))

let test_periodic_wrap_and_boundaries () =
  ignore
    (Mpi.run ~n:4 (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         match
           Cart.create p comm ~dims:[| 2; 2 |] ~periodic:[| true; false |]
         with
         | None -> Alcotest.fail "4 ranks fit"
         | Some cart ->
             (* Periodic dimension wraps... *)
             Alcotest.(check (option int)) "wraps" (Some 0)
               (Cart.rank_of_coords cart [| 2; 0 |]);
             (* ...the non-periodic one does not. *)
             Alcotest.(check (option int)) "clamps" None
               (Cart.rank_of_coords cart [| 0; 2 |]);
             let me = Mpi.comm_rank p (Cart.comm cart) in
             let src, dst = Cart.shift cart p ~dim:0 ~disp:1 in
             Alcotest.(check bool) "periodic shift always has neighbours"
               true
               (src <> None && dst <> None);
             let _, dst1 = Cart.shift cart p ~dim:1 ~disp:1 in
             let cs = Cart.coords cart me in
             Alcotest.(check bool) "non-periodic edge hits PROC_NULL" true
               (if cs.(1) = 1 then dst1 = None else dst1 <> None)))

let test_grid_neighbour_exchange () =
  (* Each member sends its grid rank to its +x neighbour on a periodic
     ring dimension; everyone must receive its -x neighbour's rank. *)
  ignore
    (Mpi.run ~n:6 (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         match
           Cart.create p comm ~dims:[| 3; 2 |] ~periodic:[| true; false |]
         with
         | None -> Alcotest.fail "fits"
         | Some cart ->
             let gcomm = Cart.comm cart in
             let me = Mpi.comm_rank p gcomm in
             let src, dst = Cart.shift cart p ~dim:0 ~disp:1 in
             let src = Option.get src and dst = Option.get dst in
             let outb = Bytes.create 4 and inb = Bytes.create 4 in
             Bytes.set_int32_le outb 0 (Int32.of_int me);
             ignore
               (Mpi.sendrecv p ~comm:gcomm ~dst ~send_tag:0
                  ~send:(Bv.of_bytes outb) ~src ~recv_tag:0
                  ~recv:(Bv.of_bytes inb));
             Alcotest.(check int)
               (Printf.sprintf "rank %d heard from its -x neighbour" me)
               src
               (Int32.to_int (Bytes.get_int32_le inb 0))))

let test_excess_ranks_get_none () =
  let got = Array.make 5 true in
  ignore
    (Mpi.run ~n:5 (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         let cart =
           Cart.create p comm ~dims:[| 2; 2 |] ~periodic:[| false; false |]
         in
         got.(Mpi.rank p) <- cart <> None));
  Alcotest.(check (array bool)) "rank 4 left out"
    [| true; true; true; true; false |]
    got

let prop_coords_bijective =
  QCheck.Test.make ~name:"coords and rank_of_coords are inverse" ~count:50
    QCheck.(pair (int_range 1 4) (int_range 1 4))
    (fun (d0, d1) ->
      let n = d0 * d1 in
      let ok = ref true in
      ignore
        (Mpi.run ~n (fun p ->
             let comm = Mpi.comm_world (Mpi.world_of p) in
             match
               Cart.create p comm ~dims:[| d0; d1 |]
                 ~periodic:[| false; false |]
             with
             | None -> ok := false
             | Some cart ->
                 if Mpi.rank p = 0 then
                   for r = 0 to n - 1 do
                     if Cart.rank_of_coords cart (Cart.coords cart r)
                        <> Some r
                     then ok := false
                   done));
      !ok)

let prop_dims_create_partitions =
  QCheck.Test.make ~name:"dims_create multiplies back to nnodes" ~count:100
    QCheck.(pair (int_range 1 64) (int_range 1 4))
    (fun (nnodes, ndims) ->
      let dims = Cart.dims_create ~nnodes ~ndims in
      Array.length dims = ndims
      && Array.fold_left ( * ) 1 dims = nnodes
      && Array.for_all (fun d -> d >= 1) dims)

let () =
  Alcotest.run "cart"
    [
      ( "topology",
        [
          Alcotest.test_case "dims_create" `Quick test_dims_create;
          Alcotest.test_case "coords roundtrip" `Quick
            test_coords_roundtrip;
          Alcotest.test_case "periodic wrap and boundaries" `Quick
            test_periodic_wrap_and_boundaries;
          Alcotest.test_case "grid neighbour exchange" `Quick
            test_grid_neighbour_exchange;
          Alcotest.test_case "excess ranks get none" `Quick
            test_excess_ranks_get_none;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_coords_bijective;
          QCheck_alcotest.to_alcotest prop_dims_create_partitions;
        ] );
    ]
