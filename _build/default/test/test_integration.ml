(* Cross-library integration tests: the newer MPI operations (sendrecv,
   wait_any), the shm channel, mixed-protocol ordering, large OO
   transfers, wildcard OO receives, Motor-level dynamic spawning, and the
   managed multidimensional-matrix program. *)

module Mpi = Mpi_core.Mpi
module Comm = Mpi_core.Comm
module Coll = Mpi_core.Collectives
module Bv = Mpi_core.Buffer_view
module Tm = Mpi_core.Tag_match
module World = Motor.World
module Ot = Motor.Object_transport
module Smp = Motor.System_mp
module Om = Vm.Object_model
module Gc = Vm.Gc
module Classes = Vm.Classes
module Types = Vm.Types

let payload n = Bytes.init n (fun i -> Char.chr ((i * 13 + n) land 0xff))

(* ------------------------------------------------------------------ *)
(* MPI facade additions                                                *)
(* ------------------------------------------------------------------ *)

let test_sendrecv_exchange () =
  (* Both ranks sendrecv simultaneously: must not deadlock even with
     synchronous-size messages. *)
  let size = 100_000 in
  ignore
    (Mpi.run ~n:2 (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         let other = 1 - Mpi.rank p in
         let outb = payload (size + Mpi.rank p) in
         let inb = Bytes.create (size + other) in
         let st =
           Mpi.sendrecv p ~comm ~dst:other ~send_tag:4
             ~send:(Bv.of_bytes outb) ~src:other ~recv_tag:4
             (* recv: *) ~recv:(Bv.of_bytes inb)
         in
         Alcotest.(check int) "bytes" (size + other) st.Mpi_core.Status.bytes;
         Alcotest.(check bytes) "payload" (payload (size + other)) inb))

let test_wait_any () =
  ignore
    (Mpi.run ~n:3 (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         match Mpi.rank p with
         | 0 ->
             (* Two receives; rank 2 sends first (rank 1 delays). *)
             let b1 = Bytes.create 4 and b2 = Bytes.create 4 in
             let r1 = Mpi.irecv p ~comm ~src:1 ~tag:0 (Bv.of_bytes b1) in
             let r2 = Mpi.irecv p ~comm ~src:2 ~tag:0 (Bv.of_bytes b2) in
             let first = Mpi.wait_any p [ r1; r2 ] in
             Alcotest.(check bool) "rank 2 finished first" true
               (Mpi_core.Request.id first = Mpi_core.Request.id r2);
             Mpi.wait_all p [ r1; r2 ]
         | 1 ->
             for _ = 1 to 200 do
               Fiber.yield ()
             done;
             Mpi.send p ~comm ~dst:0 ~tag:0 (Bv.of_bytes (payload 4))
         | _ -> Mpi.send p ~comm ~dst:0 ~tag:0 (Bv.of_bytes (payload 4))))

let test_shm_channel_roundtrip () =
  let received = ref Bytes.empty in
  let w =
    Mpi.run ~channel:`Shm ~n:2 (fun p ->
        let comm = Mpi.comm_world (Mpi.world_of p) in
        if Mpi.rank p = 0 then
          Mpi.send p ~comm ~dst:1 ~tag:0 (Bv.of_bytes (payload 5000))
        else begin
          let b = Bytes.create 5000 in
          ignore (Mpi.recv p ~comm ~src:0 ~tag:0 (Bv.of_bytes b));
          received := b
        end)
  in
  Alcotest.(check bytes) "payload over shm" (payload 5000) !received;
  ignore w

let test_shm_faster_than_sock () =
  let run channel =
    let w =
      Mpi.run ~channel ~n:2 (fun p ->
          let comm = Mpi.comm_world (Mpi.world_of p) in
          let b = Bytes.create 1024 in
          for _ = 1 to 10 do
            if Mpi.rank p = 0 then begin
              Mpi.send p ~comm ~dst:1 ~tag:0 (Bv.of_bytes b);
              ignore (Mpi.recv p ~comm ~src:1 ~tag:0 (Bv.of_bytes b))
            end
            else begin
              ignore (Mpi.recv p ~comm ~src:0 ~tag:0 (Bv.of_bytes b));
              Mpi.send p ~comm ~dst:0 ~tag:0 (Bv.of_bytes b)
            end
          done)
    in
    Simtime.Env.now_us (Mpi.env w)
  in
  let sock = run `Sock and shm = run `Shm in
  Alcotest.(check bool)
    (Printf.sprintf "shm (%.0fus) at least 3x faster than sock (%.0fus)" shm
       sock)
    true
    (shm *. 3.0 < sock)

let test_mixed_protocol_ordering () =
  (* Same (src, dst, tag): an eager message behind a rendezvous one must
     still match in send order. *)
  ignore
    (Mpi.run ~n:2 (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         if Mpi.rank p = 0 then begin
           Mpi.send p ~comm ~dst:1 ~tag:5 (Bv.of_bytes (payload 100_000));
           Mpi.send p ~comm ~dst:1 ~tag:5 (Bv.of_bytes (payload 16))
         end
         else begin
           let big = Bytes.create 100_000 in
           let small = Bytes.create 16 in
           (* First posted receive takes the rendezvous message even though
              the eager one may be sitting in the unexpected queue. *)
           let st1 = Mpi.recv p ~comm ~src:0 ~tag:5 (Bv.of_bytes big) in
           let st2 = Mpi.recv p ~comm ~src:0 ~tag:5 (Bv.of_bytes small) in
           Alcotest.(check int) "first is the big one" 100_000
             st1.Mpi_core.Status.bytes;
           Alcotest.(check int) "second is the small one" 16
             st2.Mpi_core.Status.bytes;
           Alcotest.(check bytes) "big intact" (payload 100_000) big;
           Alcotest.(check bytes) "small intact" (payload 16) small
         end))

let test_collectives_on_shm_match_sock () =
  let run channel =
    let acc = ref [] in
    ignore
      (Mpi.run ~channel ~n:4 (fun p ->
           let comm = Mpi.comm_world (Mpi.world_of p) in
           let b = Bytes.create 8 in
           Bytes.set_int64_le b 0 (Int64.of_int ((Mpi.rank p + 1) * 3));
           let r = Coll.allreduce p comm ~op:Coll.sum_i64 b in
           if Mpi.rank p = 0 then
             acc := [ Int64.to_int (Bytes.get_int64_le r 0) ]));
    !acc
  in
  Alcotest.(check (list int)) "same result on both channels" (run `Sock)
    (run `Shm);
  Alcotest.(check (list int)) "and it is the right sum" [ 30 ] (run `Shm)

(* ------------------------------------------------------------------ *)
(* Motor additions                                                     *)
(* ------------------------------------------------------------------ *)

let linked_class registry =
  match Classes.find_by_name registry "Linked" with
  | Some mt -> mt
  | None ->
      let id = Classes.declare registry ~name:"Linked" in
      let arr = Classes.array_class registry (Types.Eprim Types.I1) in
      Classes.complete registry id ~transportable:true
        ~fields:
          [
            ("data", Types.Ref arr.Classes.c_id, true);
            ("next", Types.Ref id, true);
          ]
        ()

let test_orecv_any_source () =
  ignore
    (let w = World.create ~n:3 () in
     World.run w (fun ctx ->
         let gc = World.gc ctx in
         let comm = Smp.comm_world ctx in
         let mt = linked_class (World.registry ctx) in
         if World.rank ctx = 0 then begin
           let seen = ref [] in
           for _ = 1 to 2 do
             let obj, st = Smp.orecv ctx ~comm ~src:Tm.any_source ~tag:3 in
             seen := st.Mpi_core.Status.source :: !seen;
             Om.free gc obj
           done;
           Alcotest.(check (list int)) "both senders arrived" [ 1; 2 ]
             (List.sort compare !seen)
         end
         else begin
           let node = Om.alloc_instance gc mt in
           Smp.osend ctx ~comm ~dst:0 ~tag:3 node
         end);
     w)

let test_osend_range_subset () =
  let w = World.create ~n:2 () in
  World.run w (fun ctx ->
      let gc = World.gc ctx in
      let comm = Smp.comm_world ctx in
      let mt = linked_class (World.registry ctx) in
      let fd = Classes.field mt "data" in
      if World.rank ctx = 0 then begin
        let arr = Om.alloc_array gc (Types.Eref mt.Classes.c_id) 8 in
        for i = 0 to 7 do
          let node = Om.alloc_instance gc mt in
          let data = Om.alloc_array gc (Types.Eprim Types.I1) 1 in
          Om.set_elem_int gc data 0 i;
          Om.set_ref gc node fd (Some data);
          Om.set_elem_ref gc arr i (Some node);
          Om.free gc node;
          Om.free gc data
        done;
        (* Ship elements [2..6). *)
        Smp.osend_range ctx ~comm ~dst:1 ~tag:0 arr ~offset:2 ~count:4
      end
      else begin
        let obj, _ = Smp.orecv ctx ~comm ~src:0 ~tag:0 in
        Alcotest.(check int) "four elements" 4 (Om.array_length gc obj);
        let first = Option.get (Om.get_elem_ref gc obj 0) in
        let data = Option.get (Om.get_ref gc first fd) in
        Alcotest.(check int) "starts at element 2" 2
          (Om.get_elem_int gc data 0)
      end)

let test_obcast_nonzero_root_large () =
  (* Large enough to take the rendezvous path inside the bcast tree. *)
  let w = World.create ~n:4 () in
  World.run w (fun ctx ->
      let gc = World.gc ctx in
      let comm = Smp.comm_world ctx in
      let mt = linked_class (World.registry ctx) in
      let fd = Classes.field mt "data" in
      let input =
        if World.rank ctx = 3 then begin
          let node = Om.alloc_instance gc mt in
          let data = Om.alloc_array gc (Types.Eprim Types.I1) 120_000 in
          Om.set_elem_int gc data 119_999 42;
          Om.set_ref gc node fd (Some data);
          Some node
        end
        else None
      in
      let obj = Smp.obcast ctx ~comm ~root:3 input in
      let data = Option.get (Om.get_ref gc obj fd) in
      Alcotest.(check int)
        (Printf.sprintf "rank %d tail byte" (World.rank ctx))
        42
        (Om.get_elem_int gc data 119_999))

let test_motor_serializer_very_deep_list () =
  (* Motor's queue-based traversal has no recursion limit: a list that
     would crash the Java model serializes fine. *)
  let rt = Vm.Runtime.create () in
  let gc = rt.Vm.Runtime.gc in
  let mt = linked_class rt.Vm.Runtime.registry in
  let fnext = Classes.field mt "next" in
  let head = ref (Om.null gc) in
  for _ = 1 to 20_000 do
    let n = Om.alloc_instance gc mt in
    if not (Om.is_null gc !head) then begin
      Om.set_ref gc n fnext (Some !head);
      Om.free gc !head
    end;
    head := n
  done;
  let repr = Motor.Serializer.serialize gc ~visited:Hashed !head in
  Alcotest.(check int) "all 20k objects" 20_000
    (Motor.Serializer.object_count repr);
  let copy = Motor.Serializer.deserialize gc repr in
  Alcotest.(check bool) "rebuilt" false (Om.is_null gc copy)

let test_fcalls_counted () =
  let w = World.create ~n:2 () in
  World.run w (fun ctx ->
      let gc = World.gc ctx in
      let comm = Smp.comm_world ctx in
      let buf = Om.alloc_array gc (Types.Eprim Types.I4) 8 in
      if World.rank ctx = 0 then Ot.send ctx ~comm ~dst:1 ~tag:0 buf
      else ignore (Ot.recv ctx ~comm ~src:0 ~tag:0 buf));
  let stats = (World.env w).Simtime.Env.stats in
  Alcotest.(check int) "one fcall per operation" 2
    (Simtime.Stats.get stats Simtime.Stats.Key.fcalls);
  Alcotest.(check int) "and no p/invokes" 0
    (Simtime.Stats.get stats Simtime.Stats.Key.pinvokes)

let test_world_spawn () =
  let w = World.create ~n:2 () in
  let echoes = ref 0 in
  World.run w (fun ctx ->
      let gc = World.gc ctx in
      let worker wctx ic =
        let wgc = World.gc wctx in
        let buf = Om.alloc_array wgc (Types.Eprim Types.I4) 2 in
        let st =
          Mpi_core.Dynamic.recv wctx.World.proc ic ~src:Tm.any_source ~tag:1
            (Ot.view_of_region wctx (Om.payload_region wgc buf))
        in
        Om.set_elem_int wgc buf 1 (Om.get_elem_int wgc buf 0 + 1);
        Mpi_core.Dynamic.send wctx.World.proc ic
          ~dst:st.Mpi_core.Status.source ~tag:2
          (Ot.view_of_region wctx (Om.payload_region wgc buf))
      in
      let ic = World.spawn ctx ~n:2 worker in
      let r = World.rank ctx in
      let buf = Om.alloc_array gc (Types.Eprim Types.I4) 2 in
      Om.set_elem_int gc buf 0 (100 + r);
      Mpi_core.Dynamic.send ctx.World.proc ic ~dst:r ~tag:1
        (Ot.view_of_region ctx (Om.payload_region gc buf));
      ignore
        (Mpi_core.Dynamic.recv ctx.World.proc ic ~src:r ~tag:2
           (Ot.view_of_region ctx (Om.payload_region gc buf)));
      Alcotest.(check int)
        (Printf.sprintf "parent %d echo" r)
        (101 + r)
        (Om.get_elem_int gc buf 1);
      incr echoes);
  Alcotest.(check int) "both parents served" 2 !echoes

let test_managed_matrix_program () =
  let path =
    List.find Sys.file_exists
      [ "../examples/matrix.mil"; "examples/matrix.mil" ]
  in
  let src = In_channel.with_open_text path In_channel.input_all in
  let w = World.create ~n:2 () in
  let out = ref "" in
  World.run w (fun ctx ->
      let interp = Motor.Mil_bindings.load ctx src in
      ignore (Vm.Interp.run_entry interp []);
      if World.rank ctx = 1 then out := Vm.Runtime.output ctx.World.rt);
  Alcotest.(check string) "trace of the transported matrix" "66\n" !out

(* ------------------------------------------------------------------ *)
(* Determinism of whole worlds                                         *)
(* ------------------------------------------------------------------ *)

let prop_world_runs_are_deterministic =
  QCheck.Test.make ~name:"identical worlds give identical virtual times"
    ~count:15
    QCheck.(pair (int_range 1 4) (int_range 1 2048))
    (fun (n, size) ->
      let run () =
        let w =
          Mpi.run ~n:(n + 1) (fun p ->
              let comm = Mpi.comm_world (Mpi.world_of p) in
              let b = Bytes.create size in
              if Mpi.rank p = 0 then
                for r = 1 to n do
                  Mpi.send p ~comm ~dst:r ~tag:0 (Bv.of_bytes b)
                done
              else
                ignore (Mpi.recv p ~comm ~src:0 ~tag:0 (Bv.of_bytes b)))
        in
        Simtime.Env.now_us (Mpi.env w)
      in
      run () = run ())

(* ------------------------------------------------------------------ *)
(* Appended: alltoall and Motor's regular collectives                  *)
(* ------------------------------------------------------------------ *)

let test_alltoall () =
  let n = 4 in
  ignore
    (Mpi.run ~n (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         let me = Mpi.rank p in
         (* Block for r carries (me, r). *)
         let send =
           Array.init n (fun r ->
               let b = Bytes.create 8 in
               Bytes.set_int32_le b 0 (Int32.of_int me);
               Bytes.set_int32_le b 4 (Int32.of_int r);
               b)
         in
         let recv = Coll.alltoall p comm ~send in
         Array.iteri
           (fun r b ->
             Alcotest.(check int)
               (Printf.sprintf "at %d: block %d sender" me r)
               r
               (Int32.to_int (Bytes.get_int32_le b 0));
             Alcotest.(check int)
               (Printf.sprintf "at %d: block %d addressee" me r)
               me
               (Int32.to_int (Bytes.get_int32_le b 4)))
           recv))

let test_motor_bcast_array () =
  let w = World.create ~n:4 () in
  World.run w (fun ctx ->
      let gc = World.gc ctx in
      let comm = Smp.comm_world ctx in
      let a = Om.alloc_array gc (Types.Eprim Types.I4) 16 in
      if World.rank ctx = 1 then
        for i = 0 to 15 do
          Om.set_elem_int gc a i (i * i)
        done;
      Smp.bcast ctx ~comm ~root:1 a;
      Alcotest.(check int)
        (Printf.sprintf "rank %d element 7" (World.rank ctx))
        49 (Om.get_elem_int gc a 7))

let test_motor_scatter_gather_array () =
  let n = 4 in
  let w = World.create ~n () in
  World.run w (fun ctx ->
      let gc = World.gc ctx in
      let comm = Smp.comm_world ctx in
      let r = World.rank ctx in
      let mine = Om.alloc_array gc (Types.Eprim Types.I4) 4 in
      let big =
        if r = 0 then begin
          let b = Om.alloc_array gc (Types.Eprim Types.I4) 16 in
          for i = 0 to 15 do
            Om.set_elem_int gc b i (1000 + i)
          done;
          Some b
        end
        else None
      in
      Smp.scatter_array ctx ~comm ~root:0 ~send:big ~recv:mine;
      Alcotest.(check int)
        (Printf.sprintf "rank %d first scattered element" r)
        (1000 + (4 * r))
        (Om.get_elem_int gc mine 0);
      (* Negate locally, gather back. *)
      for i = 0 to 3 do
        Om.set_elem_int gc mine i (-Om.get_elem_int gc mine i)
      done;
      let out =
        if r = 0 then Some (Om.alloc_array gc (Types.Eprim Types.I4) 16)
        else None
      in
      Smp.gather_array ctx ~comm ~root:0 ~send:mine ~recv:out;
      match out with
      | Some b ->
          for i = 0 to 15 do
            Alcotest.(check int)
              (Printf.sprintf "gathered %d" i)
              (-(1000 + i))
              (Om.get_elem_int gc b i)
          done
      | None -> ())

let test_motor_scatter_array_size_mismatch () =
  let w = World.create ~n:2 () in
  World.run w (fun ctx ->
      let gc = World.gc ctx in
      let comm = Smp.comm_world ctx in
      let mine = Om.alloc_array gc (Types.Eprim Types.I4) 4 in
      if World.rank ctx = 0 then begin
        let bad = Om.alloc_array gc (Types.Eprim Types.I4) 9 in
        try
          Smp.scatter_array ctx ~comm ~root:0 ~send:(Some bad) ~recv:mine;
          Alcotest.fail "expected size mismatch"
        with Ot.Transport_error _ ->
          (* Unblock the peer with a correct scatter. *)
          let good = Om.alloc_array gc (Types.Eprim Types.I4) 8 in
          Smp.scatter_array ctx ~comm ~root:0 ~send:(Some good) ~recv:mine
      end
      else Smp.scatter_array ctx ~comm ~root:0 ~send:None ~recv:mine)

let test_motor_allreduce_sum_f64 () =
  let n = 3 in
  let w = World.create ~n () in
  World.run w (fun ctx ->
      let gc = World.gc ctx in
      let comm = Smp.comm_world ctx in
      let a = Om.alloc_array gc (Types.Eprim Types.R8) 2 in
      Om.set_elem_float gc a 0 (float_of_int (World.rank ctx));
      Om.set_elem_float gc a 1 1.0;
      Smp.allreduce_sum_f64 ctx ~comm a;
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "rank %d slot 0" (World.rank ctx))
        3.0 (Om.get_elem_float gc a 0);
      Alcotest.(check (float 1e-9)) "slot 1" 3.0 (Om.get_elem_float gc a 1))



let test_many_outstanding_motor_ops_with_gc () =
  (* Several simultaneous non-blocking operations per rank on distinct
     tags, with allocation churn forcing collections while they are all
     outstanding: the conditional-pin machinery must protect every
     buffer. *)
  let batch = 12 in
  let w = World.create ~n:2 () in
  World.run w (fun ctx ->
      let gc = World.gc ctx in
      let comm = Smp.comm_world ctx in
      let other = 1 - World.rank ctx in
      let outs =
        Array.init batch (fun i ->
            let a = Om.alloc_array gc (Types.Eprim Types.I4) 16 in
            Om.set_elem_int gc a 0 (1000 + i);
            a)
      in
      let ins =
        Array.init batch (fun _ -> Om.alloc_array gc (Types.Eprim Types.I4) 16)
      in
      let rreqs =
        Array.mapi (fun i buf -> Ot.irecv ctx ~comm ~src:other ~tag:i buf) ins
      in
      let sreqs =
        Array.mapi (fun i buf -> Ot.isend ctx ~comm ~dst:other ~tag:i buf) outs
      in
      (* Churn: forces minor collections while everything is in flight. *)
      for _ = 1 to 300 do
        Om.free gc (Om.alloc_array gc (Types.Eprim Types.I8) 128)
      done;
      Array.iter (fun r -> ignore (Ot.wait ctx r)) sreqs;
      Array.iter (fun r -> ignore (Ot.wait ctx r)) rreqs;
      Array.iteri
        (fun i buf ->
          Alcotest.(check int)
            (Printf.sprintf "tag %d payload" i)
            (1000 + i)
            (Om.get_elem_int gc buf 0))
        ins)

let test_double_spawn () =
  (* Two successive collective spawns extend the world twice; each wave
     must get fresh VMs and working intercommunicators. *)
  let w = World.create ~n:2 () in
  let served = ref 0 in
  World.run w (fun ctx ->
      let gc = World.gc ctx in
      let worker wctx ic =
        let wgc = World.gc wctx in
        let buf = Om.alloc_array wgc (Types.Eprim Types.I4) 1 in
        let st =
          Mpi_core.Dynamic.recv wctx.World.proc ic ~src:Tm.any_source ~tag:1
            (Ot.view_of_region wctx (Om.payload_region wgc buf))
        in
        Om.set_elem_int wgc buf 0 (Om.get_elem_int wgc buf 0 * 2);
        Mpi_core.Dynamic.send wctx.World.proc ic
          ~dst:st.Mpi_core.Status.source ~tag:2
          (Ot.view_of_region wctx (Om.payload_region wgc buf))
      in
      let roundtrip ic v =
        let r = World.rank ctx in
        let buf = Om.alloc_array gc (Types.Eprim Types.I4) 1 in
        Om.set_elem_int gc buf 0 v;
        Mpi_core.Dynamic.send ctx.World.proc ic ~dst:r ~tag:1
          (Ot.view_of_region ctx (Om.payload_region gc buf));
        ignore
          (Mpi_core.Dynamic.recv ctx.World.proc ic ~src:r ~tag:2
             (Ot.view_of_region ctx (Om.payload_region gc buf)));
        Om.get_elem_int gc buf 0
      in
      let ic1 = World.spawn ctx ~n:2 worker in
      Alcotest.(check int) "first wave doubles" 10 (roundtrip ic1 5);
      let ic2 = World.spawn ctx ~n:2 worker in
      Alcotest.(check int) "second wave doubles" 14 (roundtrip ic2 7);
      incr served);
  Alcotest.(check int) "both parents" 2 !served;
  Alcotest.(check int) "world grew to six" 6 (Mpi_core.Mpi.world_size (World.mpi w))

let test_disassembler_roundtrips_labels () =
  let rt = Vm.Runtime.create () in
  let src = ".method void main() {\nspin:\n  ldc.i8 0\n  brtrue spin\n  ret\n}" in
  let interp = Vm.Runtime.load rt src in
  let buf = Buffer.create 128 in
  let fmt = Format.formatter_of_buffer buf in
  Vm.Il.pp_program fmt (Vm.Interp.program interp);
  Format.pp_print_flush fmt ();
  let text = Buffer.contents buf in
  Alcotest.(check bool) "mentions the branch target" true
    (String.length text > 0
    &&
    let contains sub =
      let n = String.length text and m = String.length sub in
      let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
      go 0
    in
    contains "brtrue 0" && contains "entry: main")


let test_sibling_thread_gc_served_during_polling_wait () =
  (* The paper's reason FCalls must poll (Section 5.1): another thread of
     the same process may need a collection while this one blocks in MPI.
     Here a sibling fiber sharing rank 1's VM requests a GC while the main
     fiber sits in a Motor polling wait — the wait's GC polls must serve
     it long before the receive completes. *)
  let w = World.create ~n:2 () in
  let comm = World.comm_world w in
  let served_during_wait = ref false in
  let ctx1 = World.rank_ctx w 1 in
  let fibers =
    [
      ( "rank0",
        fun () ->
          let ctx = World.rank_ctx w 0 in
          let gc = World.gc ctx in
          (* Give the receiver time to enter its wait, then send. *)
          for _ = 1 to 30 do
            Fiber.yield ()
          done;
          let a = Om.alloc_array gc (Types.Eprim Types.I4) 8 in
          Ot.send ctx ~comm ~dst:1 ~tag:0 a );
      ( "rank1-app",
        fun () ->
          let gc = World.gc ctx1 in
          let a = Om.alloc_array gc (Types.Eprim Types.I4) 8 in
          ignore (Ot.recv ctx1 ~comm ~src:0 ~tag:0 a) );
      ( "rank1-sibling",
        fun () ->
          let gc = World.gc ctx1 in
          Fiber.yield ();
          let before = Gc.minor_count gc in
          Gc.request_gc gc;
          (* Wait until someone (the polling wait) performs it. *)
          Fiber.wait_until ~label:"gc-served" (fun () ->
              Gc.minor_count gc > before);
          served_during_wait := true );
    ]
  in
  Fiber.run fibers;
  Alcotest.(check bool) "collection served while blocked in recv" true
    !served_during_wait


let test_quiescence_clean_and_dirty () =
  (* A clean ping-pong leaves no residue... *)
  let clean =
    Mpi.run ~n:2 (fun p ->
        let comm = Mpi.comm_world (Mpi.world_of p) in
        let b = Bytes.create 8 in
        if Mpi.rank p = 0 then Mpi.send p ~comm ~dst:1 ~tag:0 (Bv.of_bytes b)
        else ignore (Mpi.recv p ~comm ~src:0 ~tag:0 (Bv.of_bytes b)))
  in
  Alcotest.(check (list (pair int string))) "clean world" []
    (Mpi.quiescence_report clean);
  (* ...a lost message is reported against the right rank. *)
  let dirty =
    Mpi.run ~n:2 (fun p ->
        let comm = Mpi.comm_world (Mpi.world_of p) in
        if Mpi.rank p = 0 then
          Mpi.send p ~comm ~dst:1 ~tag:0 (Bv.of_bytes (Bytes.create 8)))
  in
  (* Let the message arrive before judging. *)
  Simtime.Env.charge (Mpi.env dirty) 1_000_000.0;
  match Mpi.quiescence_report dirty with
  | [ (rank, msg) ] ->
      Alcotest.(check int) "reported at the receiver" 1 rank;
      Alcotest.(check bool) "mentions the unexpected message" true
        (String.length msg > 0)
  | other ->
      Alcotest.fail
        (Printf.sprintf "expected one issue, got %d" (List.length other))

let () =
  Alcotest.run "integration"
    [
      ( "mpi additions",
        [
          Alcotest.test_case "sendrecv exchange" `Quick
            test_sendrecv_exchange;
          Alcotest.test_case "wait_any" `Quick test_wait_any;
          Alcotest.test_case "shm channel roundtrip" `Quick
            test_shm_channel_roundtrip;
          Alcotest.test_case "shm faster than sock" `Quick
            test_shm_faster_than_sock;
          Alcotest.test_case "mixed-protocol ordering" `Quick
            test_mixed_protocol_ordering;
          Alcotest.test_case "collectives agree across channels" `Quick
            test_collectives_on_shm_match_sock;
        ] );
      ( "motor additions",
        [
          Alcotest.test_case "orecv any_source" `Quick
            test_orecv_any_source;
          Alcotest.test_case "osend_range subset" `Quick
            test_osend_range_subset;
          Alcotest.test_case "obcast non-zero root, rendezvous size" `Quick
            test_obcast_nonzero_root_large;
          Alcotest.test_case "serializer handles very deep lists" `Quick
            test_motor_serializer_very_deep_list;
          Alcotest.test_case "fcalls counted, no p/invokes" `Quick
            test_fcalls_counted;
          Alcotest.test_case "World.spawn (transparent process mgmt)"
            `Quick test_world_spawn;
          Alcotest.test_case "managed multidim matrix program" `Quick
            test_managed_matrix_program;
          Alcotest.test_case "many outstanding ops under GC" `Quick
            test_many_outstanding_motor_ops_with_gc;
          Alcotest.test_case "double spawn" `Quick test_double_spawn;
          Alcotest.test_case "disassembler" `Quick
            test_disassembler_roundtrips_labels;
          Alcotest.test_case "sibling-thread GC served in polling wait"
            `Quick test_sibling_thread_gc_served_during_polling_wait;
          Alcotest.test_case "quiescence report" `Quick
            test_quiescence_clean_and_dirty;
        ] );
      ( "collectives additions",
        [
          Alcotest.test_case "alltoall" `Quick test_alltoall;
          Alcotest.test_case "Motor bcast (regular, zero-copy)" `Quick
            test_motor_bcast_array;
          Alcotest.test_case "Motor scatter/gather arrays" `Quick
            test_motor_scatter_gather_array;
          Alcotest.test_case "Motor scatter size mismatch" `Quick
            test_motor_scatter_array_size_mismatch;
          Alcotest.test_case "Motor allreduce sum f64" `Quick
            test_motor_allreduce_sum_f64;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_world_runs_are_deterministic ] );
    ]

