(* Unit and integration tests for the managed runtime: heap layout, the
   two-generational collector with pinning, the object model's integrity
   checks, and the MIL toolchain (assembler / verifier / interpreter). *)

(* Tiny substring helper to avoid a dependency. *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

module Om = Vm.Object_model
module Gc = Vm.Gc
module Heap = Vm.Heap
module Classes = Vm.Classes
module Types = Vm.Types
module Runtime = Vm.Runtime

let make_runtime () = Runtime.create ()

let point_class rt =
  Classes.define rt.Runtime.registry ~name:"Point"
    ~fields:
      [
        ("x", Types.Prim Types.I4, false);
        ("y", Types.Prim Types.I4, false);
        ("w", Types.Prim Types.R8, false);
      ]
    ()

let node_class rt =
  (* A linked-list node like the paper's LinkedArray (Figure 5). *)
  let id = Classes.declare rt.Runtime.registry ~name:"Node" in
  let arr = Classes.array_class rt.Runtime.registry (Types.Eprim Types.I4) in
  Classes.complete rt.Runtime.registry id ~transportable:true
    ~fields:
      [
        ("data", Types.Ref arr.Classes.c_id, true);
        ("next", Types.Ref id, true);
        ("next2", Types.Ref id, false);
      ]
    ()

(* ------------------------------------------------------------------ *)
(* Heap and object model                                               *)
(* ------------------------------------------------------------------ *)

let test_field_roundtrip () =
  let rt = make_runtime () in
  let mt = point_class rt in
  let o = Om.alloc_instance rt.Runtime.gc mt in
  let fx = Classes.field mt "x" in
  let fw = Classes.field mt "w" in
  Alcotest.(check int) "zero initialised" 0 (Om.get_int rt.Runtime.gc o fx);
  Om.set_int rt.Runtime.gc o fx (-123);
  Om.set_float rt.Runtime.gc o fw 2.5;
  Alcotest.(check int) "int roundtrip" (-123) (Om.get_int rt.Runtime.gc o fx);
  Alcotest.(check (float 0.0)) "float roundtrip" 2.5
    (Om.get_float rt.Runtime.gc o fw)

let test_field_type_confusion_rejected () =
  let rt = make_runtime () in
  let mt = point_class rt in
  let o = Om.alloc_instance rt.Runtime.gc mt in
  let fw = Classes.field mt "w" in
  (try
     ignore (Om.get_int rt.Runtime.gc o fw);
     Alcotest.fail "expected Managed_error"
   with Om.Managed_error _ -> ())

let test_foreign_field_rejected () =
  let rt = make_runtime () in
  let mt = point_class rt in
  let other =
    Classes.define rt.Runtime.registry ~name:"Other"
      ~fields:[ ("z", Types.Prim Types.I4, false) ]
      ()
  in
  let o = Om.alloc_instance rt.Runtime.gc mt in
  let fz = Classes.field other "z" in
  (try
     ignore (Om.get_int rt.Runtime.gc o fz);
     Alcotest.fail "expected Managed_error"
   with Om.Managed_error _ -> ())

let test_array_roundtrip_and_bounds () =
  let rt = make_runtime () in
  let a = Om.alloc_array rt.Runtime.gc (Types.Eprim Types.I4) 10 in
  Alcotest.(check int) "length" 10 (Om.array_length rt.Runtime.gc a);
  for i = 0 to 9 do
    Om.set_elem_int rt.Runtime.gc a i (i * i)
  done;
  Alcotest.(check int) "elem" 49 (Om.get_elem_int rt.Runtime.gc a 7);
  (try
     ignore (Om.get_elem_int rt.Runtime.gc a 10);
     Alcotest.fail "expected bounds error"
   with Om.Managed_error _ -> ());
  (try
     Om.set_elem_int rt.Runtime.gc a (-1) 0;
     Alcotest.fail "expected bounds error"
   with Om.Managed_error _ -> ())

let test_md_array () =
  let rt = make_runtime () in
  let a = Om.alloc_md_array rt.Runtime.gc (Types.Eprim Types.R8) [| 3; 4 |] in
  Alcotest.(check int) "total elems" 12 (Om.array_length rt.Runtime.gc a);
  Alcotest.(check (array int)) "dims" [| 3; 4 |] (Om.md_dims rt.Runtime.gc a);
  let idx = Om.md_flat_index rt.Runtime.gc a [| 2; 3 |] in
  Alcotest.(check int) "row-major flat index" 11 idx;
  Om.set_elem_float rt.Runtime.gc a idx 6.25;
  Alcotest.(check (float 0.0)) "md roundtrip" 6.25
    (Om.get_elem_float rt.Runtime.gc a idx);
  (try
     ignore (Om.md_flat_index rt.Runtime.gc a [| 3; 0 |]);
     Alcotest.fail "expected bounds error"
   with Om.Managed_error _ -> ())

let test_ref_field_type_check () =
  let rt = make_runtime () in
  let node = node_class rt in
  let point = point_class rt in
  let n = Om.alloc_instance rt.Runtime.gc node in
  let p = Om.alloc_instance rt.Runtime.gc point in
  let fnext = Classes.field node "next" in
  (* Storing a Point into a Node-typed slot must be rejected: this is the
     object-model integrity property of Section 2.4. *)
  (try
     Om.set_ref rt.Runtime.gc n fnext (Some p);
     Alcotest.fail "expected type mismatch"
   with Om.Managed_error _ -> ());
  let n2 = Om.alloc_instance rt.Runtime.gc node in
  Om.set_ref rt.Runtime.gc n fnext (Some n2);
  match Om.get_ref rt.Runtime.gc n fnext with
  | Some got ->
      Alcotest.(check bool) "same object" true
        (Om.same_object rt.Runtime.gc got n2)
  | None -> Alcotest.fail "next is null"

let test_payload_region_sizes () =
  let rt = make_runtime () in
  let a = Om.alloc_array rt.Runtime.gc (Types.Eprim Types.I8) 5 in
  let _, bytes = Om.payload_region rt.Runtime.gc a in
  Alcotest.(check int) "payload excludes length word" 40 bytes;
  let _, data_bytes = Om.data_region rt.Runtime.gc a in
  Alcotest.(check int) "data includes length word" 44 data_bytes

let test_elem_region_bounds () =
  let rt = make_runtime () in
  let a = Om.alloc_array rt.Runtime.gc (Types.Eprim Types.I4) 8 in
  let _, bytes = Om.elem_region rt.Runtime.gc a ~offset:2 ~count:3 in
  Alcotest.(check int) "subrange bytes" 12 bytes;
  (try
     ignore (Om.elem_region rt.Runtime.gc a ~offset:6 ~count:3);
     Alcotest.fail "expected bounds error"
   with Om.Managed_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Garbage collection                                                  *)
(* ------------------------------------------------------------------ *)

let test_minor_gc_promotes_live () =
  let rt = make_runtime () in
  let gc = rt.Runtime.gc in
  let mt = point_class rt in
  let o = Om.alloc_instance gc mt in
  let fx = Classes.field mt "x" in
  Om.set_int gc o fx 42;
  let addr_before = Om.addr_of gc o in
  Alcotest.(check bool) "starts young" true
    (Heap.in_young rt.Runtime.heap addr_before);
  Gc.collect gc ~full:false;
  let addr_after = Om.addr_of gc o in
  Alcotest.(check bool) "moved out of young" false
    (Heap.in_young rt.Runtime.heap addr_after);
  Alcotest.(check bool) "handle updated" true (addr_before <> addr_after);
  Alcotest.(check int) "contents survive" 42 (Om.get_int gc o fx)

let test_minor_gc_discards_garbage () =
  let rt = make_runtime () in
  let gc = rt.Runtime.gc in
  let mt = point_class rt in
  for _ = 1 to 100 do
    let o = Om.alloc_instance gc mt in
    Om.free gc o
  done;
  let live = Om.alloc_instance gc mt in
  Gc.collect gc ~full:false;
  Alcotest.(check int) "only survivor promoted" 1 (Gc.live_objects gc);
  ignore live

let test_gc_traces_object_graph () =
  let rt = make_runtime () in
  let gc = rt.Runtime.gc in
  let node = node_class rt in
  let fdata = Classes.field node "data" in
  let fnext = Classes.field node "next" in
  (* Build a 5-node list rooted in a single handle. *)
  let head = Om.alloc_instance gc node in
  let cur = ref head in
  for i = 1 to 4 do
    let n = Om.alloc_instance gc node in
    let arr = Om.alloc_array gc (Types.Eprim Types.I4) 4 in
    Om.set_elem_int gc arr 0 i;
    Om.set_ref gc n fdata (Some arr);
    Om.set_ref gc !cur fnext (Some n);
    if !cur != head then Om.free gc !cur;
    Om.free gc arr;
    cur := n
  done;
  if !cur != head then Om.free gc !cur;
  Gc.collect gc ~full:false;
  Gc.collect gc ~full:true;
  (* Walk the list again: 5 nodes, 4 arrays. *)
  let count = ref 1 in
  let p = ref head in
  let continue_ = ref true in
  while !continue_ do
    match Om.get_ref gc !p fnext with
    | Some n ->
        incr count;
        (match Om.get_ref gc n fdata with
        | Some arr ->
            Alcotest.(check bool) "array payload intact" true
              (Om.get_elem_int gc arr 0 >= 1);
            Om.free gc arr
        | None -> if !count > 1 then Alcotest.fail "lost data array");
        if !p != head then Om.free gc !p;
        p := n
    | None -> continue_ := false
  done;
  Alcotest.(check int) "list length preserved" 5 !count

let test_full_gc_sweeps_elder_garbage () =
  let rt = make_runtime () in
  let gc = rt.Runtime.gc in
  let mt = point_class rt in
  (* Promote 50 objects to elder, then drop half. *)
  let objs = Array.init 50 (fun _ -> Om.alloc_instance gc mt) in
  Gc.collect gc ~full:false;
  Array.iteri (fun i o -> if i mod 2 = 0 then Om.free gc o) objs;
  Gc.collect gc ~full:true;
  Alcotest.(check int) "half swept" 25 (Gc.live_objects gc);
  Heap.check_consistency rt.Runtime.heap

let test_pinned_object_does_not_move () =
  let rt = make_runtime () in
  let gc = rt.Runtime.gc in
  let mt = point_class rt in
  let o = Om.alloc_instance gc mt in
  let addr_before = Om.addr_of gc o in
  Gc.pin gc o;
  Gc.collect gc ~full:false;
  Alcotest.(check int) "pinned object stayed put" addr_before
    (Om.addr_of gc o);
  (* The whole young block must have been promoted (paper Section 5.2). *)
  Alcotest.(check bool) "block reassigned to elder" false
    (Heap.in_young rt.Runtime.heap addr_before);
  Alcotest.(check int) "promotion counted" 1
    (Simtime.Stats.get rt.Runtime.env.Simtime.Env.stats
       Simtime.Stats.Key.young_blocks_promoted);
  Gc.unpin gc o;
  Gc.collect gc ~full:true;
  Alcotest.(check int) "survives full gc too" addr_before (Om.addr_of gc o);
  Heap.check_consistency rt.Runtime.heap

let test_unpin_without_pin_rejected () =
  let rt = make_runtime () in
  let gc = rt.Runtime.gc in
  let o = Om.alloc_instance gc (point_class rt) in
  (try
     Gc.unpin gc o;
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_conditional_pin_lifecycle () =
  let rt = make_runtime () in
  let gc = rt.Runtime.gc in
  let mt = point_class rt in
  let o = Om.alloc_instance gc mt in
  let addr0 = Om.addr_of gc o in
  let active = ref true in
  Gc.add_conditional_pin gc o ~still_active:(fun () -> !active);
  Alcotest.(check int) "request registered" 1 (Gc.conditional_pin_count gc);
  (* While the operation is in flight, the object must not move. *)
  Gc.collect gc ~full:false;
  Alcotest.(check int) "held in place while active" addr0 (Om.addr_of gc o);
  Alcotest.(check int) "request kept" 1 (Gc.conditional_pin_count gc);
  (* Once the transport completes, the next mark phase drops the request
     and the object is free to move again. *)
  active := false;
  Gc.collect gc ~full:true;
  Alcotest.(check int) "request dropped" 0 (Gc.conditional_pin_count gc);
  Alcotest.(check int) "drop counted" 1
    (Simtime.Stats.get rt.Runtime.env.Simtime.Env.stats
       Simtime.Stats.Key.conditional_pins_dropped);
  Alcotest.(check int) "object survived" 1 (Gc.live_objects gc)

let test_remembered_set () =
  let rt = make_runtime () in
  let gc = rt.Runtime.gc in
  let node = node_class rt in
  let fnext = Classes.field node "next" in
  (* Promote a node to elder, then point it at a young node: only the
     write barrier can keep the young node alive across a minor GC. *)
  let old_node = Om.alloc_instance gc node in
  Gc.collect gc ~full:false;
  Alcotest.(check bool) "promoted" false
    (Heap.in_young rt.Runtime.heap (Om.addr_of gc old_node));
  let young_node = Om.alloc_instance gc node in
  Om.set_ref gc old_node fnext (Some young_node);
  Om.free gc young_node;
  (* drop the handle: the elder slot is now the only root path *)
  Gc.collect gc ~full:false;
  match Om.get_ref gc old_node fnext with
  | Some survivor ->
      Alcotest.(check bool) "survivor now elder" false
        (Heap.in_young rt.Runtime.heap (Om.addr_of gc survivor))
  | None -> Alcotest.fail "young node lost: write barrier broken"

let test_gc_pressure_many_allocations () =
  let rt = make_runtime () in
  let gc = rt.Runtime.gc in
  let node = node_class rt in
  let fnext = Classes.field node "next" in
  (* Allocate a long-lived list while churning garbage; forces many minor
     collections and some promotions. *)
  let head = Om.alloc_instance gc node in
  let cur = ref head in
  for _ = 1 to 2000 do
    let garbage = Om.alloc_array gc (Types.Eprim Types.I8) 64 in
    Om.free gc garbage;
    let n = Om.alloc_instance gc node in
    Om.set_ref gc !cur fnext (Some n);
    if !cur != head then Om.free gc !cur;
    cur := n
  done;
  if !cur != head then Om.free gc !cur;
  Alcotest.(check bool) "minor collections happened" true
    (Gc.minor_count gc > 0);
  (* Count the list length. *)
  let count = ref 1 in
  let p = ref (Gc.Handle.alloc gc (Om.addr_of gc head)) in
  let continue_ = ref true in
  while !continue_ do
    match Om.get_ref gc !p fnext with
    | Some n ->
        incr count;
        Om.free gc !p;
        p := n
    | None -> continue_ := false
  done;
  Alcotest.(check int) "no node lost under pressure" 2001 !count;
  Heap.check_consistency rt.Runtime.heap

let test_safepoint_polling () =
  let rt = make_runtime () in
  let gc = rt.Runtime.gc in
  let o = Om.alloc_instance gc (point_class rt) in
  let before = Om.addr_of gc o in
  Gc.request_gc gc;
  Alcotest.(check bool) "pending" true (Gc.gc_pending gc);
  Alcotest.(check int) "not yet run" before (Om.addr_of gc o);
  Gc.poll gc;
  Alcotest.(check bool) "ran at safepoint" false (Gc.gc_pending gc);
  Alcotest.(check bool) "object moved by the collection" true
    (before <> Om.addr_of gc o)

let test_large_object_goes_to_elder () =
  let rt = make_runtime () in
  let gc = rt.Runtime.gc in
  (* 512 KiB array: bigger than the 256 KiB young block. *)
  let a = Om.alloc_array gc (Types.Eprim Types.I8) 65536 in
  Alcotest.(check bool) "allocated outside young" false
    (Heap.in_young rt.Runtime.heap (Om.addr_of gc a));
  Om.set_elem_int gc a 65535 7;
  Alcotest.(check int) "tail element" 7 (Om.get_elem_int gc a 65535)

let test_out_of_memory () =
  let rt =
    Runtime.create ~arena_bytes:(1024 * 1024) ~block_bytes:(128 * 1024) ()
  in
  let gc = rt.Runtime.gc in
  Alcotest.check_raises "arena exhausts" Heap.Out_of_memory (fun () ->
      let keep = ref [] in
      for _ = 1 to 10_000 do
        keep := Om.alloc_array gc (Types.Eprim Types.I8) 1024 :: !keep
      done)

(* ------------------------------------------------------------------ *)
(* MIL toolchain                                                       *)
(* ------------------------------------------------------------------ *)

let fib_src =
  {|
  .method int64 fib(int64 n) {
    ldarg n
    ldc.i8 2
    clt
    brfalse recurse
    ldarg n
    ret
  recurse:
    ldarg n
    ldc.i8 1
    sub
    call fib
    ldarg n
    ldc.i8 2
    sub
    call fib
    add
    ret
  }

  .method void main() {
    ldc.i8 10
    call fib
    intcall sys.print_i
    intcall sys.print_nl
    ret
  }
|}

let test_interp_fib () =
  let rt = make_runtime () in
  let interp = Runtime.load rt fib_src in
  ignore (Vm.Interp.run_entry interp []);
  Alcotest.(check string) "fib(10) printed" "55\n" (Runtime.output rt)

let list_sum_src =
  {|
  .class transportable Node {
    .field transportable int32[] data
    .field transportable Node next
    .field int32 tag
  }

  .method Node build(int64 n) {
    .locals (Node head, Node cur, int64 i)
    ldnull
    stloc head
    ldc.i8 0
    stloc i
  loop:
    ldloc i
    ldarg n
    clt
    brfalse done
    newobj Node
    stloc cur
    ldloc cur
    ldloc head
    stfld Node::next
    ldloc cur
    ldc.i8 16
    newarr int32
    stfld Node::data
    ldloc cur
    stloc head
    ldloc i
    ldc.i8 1
    add
    stloc i
    br loop
  done:
    ldloc head
    ret
  }

  .method void main() {
    ldc.i8 5
    call build
    pop
    ret
  }
|}

let test_interp_builds_objects () =
  let rt = make_runtime () in
  let interp = Runtime.load rt list_sum_src in
  ignore (Vm.Interp.run_entry interp []);
  Alcotest.(check pass) "ran" () ()

let test_verifier_rejects_underflow () =
  let rt = make_runtime () in
  let bad = {|
  .method void main() {
    add
    ret
  }
|} in
  (try
     ignore (Runtime.load rt bad);
     Alcotest.fail "expected Verify_error"
   with Vm.Verifier.Verify_error _ -> ())

let test_verifier_rejects_type_confusion () =
  let rt = make_runtime () in
  let bad = {|
  .method void main() {
    ldc.i8 1
    ldnull
    add
    pop
    ret
  }
|} in
  (try
     ignore (Runtime.load rt bad);
     Alcotest.fail "expected Verify_error"
   with Vm.Verifier.Verify_error _ -> ())

let test_verifier_rejects_bad_merge () =
  let rt = make_runtime () in
  let bad = {|
  .method void main() {
    ldc.i8 1
    brtrue other
    ldc.i8 5
    br join
  other:
    ldnull
    br join
  join:
    pop
    ret
  }
|} in
  (try
     ignore (Runtime.load rt bad);
     Alcotest.fail "expected Verify_error"
   with Vm.Verifier.Verify_error _ -> ())

let test_interp_null_deref_faults () =
  let rt = make_runtime () in
  let src = {|
  .class Box { .field int32 v }
  .method void main() {
    ldnull
    ldfld Box::v
    pop
    ret
  }
|} in
  let interp = Runtime.load rt src in
  (try
     ignore (Vm.Interp.run_entry interp []);
     Alcotest.fail "expected Runtime_error"
   with Vm.Interp.Runtime_error _ -> ())

let test_interp_managed_stack_overflow () =
  let rt = make_runtime () in
  let src = {|
  .method void loop() {
    call loop
    ret
  }
  .method void main() {
    call loop
    ret
  }
|} in
  let interp = Runtime.load rt src in
  Alcotest.check_raises "stack overflow" Vm.Interp.Managed_stack_overflow
    (fun () -> ignore (Vm.Interp.run_entry interp []))

let test_interp_gc_during_execution () =
  let rt = make_runtime () in
  (* Allocate in a loop; GC must run and the program must still see a
     consistent list of live objects via its locals. *)
  let src = {|
  .class Cell { .field int64 v .field Cell prev }
  .method int64 main() {
    .locals (Cell cur, Cell n, int64 i, int64 sum)
    ldnull
    stloc cur
    ldc.i8 0
    stloc i
  build:
    ldloc i
    ldc.i8 30000
    clt
    brfalse sumup
    newobj Cell
    stloc n
    ldloc n
    ldloc i
    stfld Cell::v
    ldloc n
    ldloc cur
    stfld Cell::prev
    ldloc n
    stloc cur
    ldloc i
    ldc.i8 1
    add
    stloc i
    br build
  sumup:
    ldc.i8 0
    stloc sum
  walk:
    ldloc cur
    ldnull
    ceq
    brtrue done
    ldloc sum
    ldloc cur
    ldfld Cell::v
    add
    stloc sum
    ldloc cur
    ldfld Cell::prev
    stloc cur
    br walk
  done:
    ldloc sum
    ret
  }
|} in
  let interp = Runtime.load rt src in
  (match Vm.Interp.run_entry interp [] with
  | Some (Vm.Il.V_int v) ->
      (* sum 0..29999 = 449985000 *)
      Alcotest.(check int64) "sum survives GC churn" 449985000L v
  | Some _ | None -> Alcotest.fail "no result");
  Alcotest.(check bool) "collections actually happened" true
    (Gc.minor_count rt.Runtime.gc > 0)

let test_assembler_parse_error_has_line () =
  let rt = make_runtime () in
  (try
     ignore (Runtime.load rt ".method void main() {\n  bogus\n  ret\n}");
     Alcotest.fail "expected Parse_error"
   with Vm.Assembler.Parse_error msg ->
     Alcotest.(check bool) "mentions line 2" true (contains msg "line 2"))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_array_roundtrip =
  QCheck.Test.make ~name:"array contents survive arbitrary GC schedules"
    ~count:60
    QCheck.(pair (list small_int) (int_range 0 3))
    (fun (xs, gcs) ->
      let rt = make_runtime () in
      let gc = rt.Runtime.gc in
      let a =
        Om.alloc_array gc (Types.Eprim Types.I4) (List.length xs)
      in
      List.iteri (fun i x -> Om.set_elem_int gc a i x) xs;
      for i = 1 to gcs do
        Gc.collect gc ~full:(i mod 2 = 0)
      done;
      List.for_all
        (fun (i, x) -> Om.get_elem_int gc a i = x)
        (List.mapi (fun i x -> (i, x)) xs))

let prop_heap_consistent_after_random_churn =
  QCheck.Test.make ~name:"heap parses after random alloc/free/gc churn"
    ~count:40
    QCheck.(list (int_range 0 5))
    (fun ops ->
      let rt = make_runtime () in
      let gc = rt.Runtime.gc in
      let mt = point_class rt in
      let kept = ref [] in
      List.iter
        (fun op ->
          match op with
          | 0 | 1 -> kept := Om.alloc_instance gc mt :: !kept
          | 2 ->
              kept :=
                Om.alloc_array gc (Types.Eprim Types.I8) 32 :: !kept
          | 3 -> (
              match !kept with
              | o :: rest ->
                  Om.free gc o;
                  kept := rest
              | [] -> ())
          | 4 -> Gc.collect gc ~full:false
          | _ -> Gc.collect gc ~full:true)
        ops;
      Heap.check_consistency rt.Runtime.heap;
      true)

let prop_field_layout_no_overlap =
  QCheck.Test.make ~name:"field layout never overlaps" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 12) (int_range 0 6))
    (fun kinds ->
      let registry = Classes.create () in
      let ty = function
        | 0 -> Types.Prim Types.I1
        | 1 -> Types.Prim Types.I2
        | 2 -> Types.Prim Types.I4
        | 3 -> Types.Prim Types.I8
        | 4 -> Types.Prim Types.R4
        | 5 -> Types.Prim Types.R8
        | _ -> Types.Ref 1
      in
      let fields =
        List.mapi (fun i k -> (Printf.sprintf "f%d" i, ty k, false)) kinds
      in
      let mt = Classes.define registry ~name:"T" ~fields () in
      let ranges =
        Array.to_list mt.Classes.c_fields
        |> List.map (fun fd ->
               ( fd.Classes.f_offset,
                 fd.Classes.f_offset + Types.field_size fd.Classes.f_type ))
      in
      let rec no_overlap = function
        | [] -> true
        | (lo, hi) :: rest ->
            List.for_all (fun (lo', hi') -> hi <= lo' || hi' <= lo) rest
            && no_overlap rest
      in
      no_overlap ranges
      && List.for_all (fun (_, hi) -> hi <= mt.Classes.c_instance_size) ranges)

let () =
  Alcotest.run "vm"
    [
      ( "object model",
        [
          Alcotest.test_case "field roundtrip" `Quick test_field_roundtrip;
          Alcotest.test_case "field type confusion rejected" `Quick
            test_field_type_confusion_rejected;
          Alcotest.test_case "foreign field rejected" `Quick
            test_foreign_field_rejected;
          Alcotest.test_case "array roundtrip and bounds" `Quick
            test_array_roundtrip_and_bounds;
          Alcotest.test_case "multidimensional arrays" `Quick test_md_array;
          Alcotest.test_case "ref field type check" `Quick
            test_ref_field_type_check;
          Alcotest.test_case "payload region sizes" `Quick
            test_payload_region_sizes;
          Alcotest.test_case "elem region bounds" `Quick
            test_elem_region_bounds;
        ] );
      ( "gc",
        [
          Alcotest.test_case "minor gc promotes live objects" `Quick
            test_minor_gc_promotes_live;
          Alcotest.test_case "minor gc discards garbage" `Quick
            test_minor_gc_discards_garbage;
          Alcotest.test_case "traces object graphs" `Quick
            test_gc_traces_object_graph;
          Alcotest.test_case "full gc sweeps elder garbage" `Quick
            test_full_gc_sweeps_elder_garbage;
          Alcotest.test_case "pinned object does not move" `Quick
            test_pinned_object_does_not_move;
          Alcotest.test_case "unpin without pin rejected" `Quick
            test_unpin_without_pin_rejected;
          Alcotest.test_case "conditional pin lifecycle" `Quick
            test_conditional_pin_lifecycle;
          Alcotest.test_case "remembered set keeps young alive" `Quick
            test_remembered_set;
          Alcotest.test_case "survives allocation pressure" `Quick
            test_gc_pressure_many_allocations;
          Alcotest.test_case "safepoint polling" `Quick
            test_safepoint_polling;
          Alcotest.test_case "large objects go to elder" `Quick
            test_large_object_goes_to_elder;
          Alcotest.test_case "out of memory" `Quick test_out_of_memory;
        ] );
      ( "mil",
        [
          Alcotest.test_case "interp fib" `Quick test_interp_fib;
          Alcotest.test_case "interp builds objects" `Quick
            test_interp_builds_objects;
          Alcotest.test_case "verifier rejects underflow" `Quick
            test_verifier_rejects_underflow;
          Alcotest.test_case "verifier rejects type confusion" `Quick
            test_verifier_rejects_type_confusion;
          Alcotest.test_case "verifier rejects bad merge" `Quick
            test_verifier_rejects_bad_merge;
          Alcotest.test_case "null deref faults" `Quick
            test_interp_null_deref_faults;
          Alcotest.test_case "managed stack overflow" `Quick
            test_interp_managed_stack_overflow;
          Alcotest.test_case "gc during managed execution" `Quick
            test_interp_gc_during_execution;
          Alcotest.test_case "parse error carries line" `Quick
            test_assembler_parse_error_has_line;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_array_roundtrip;
          QCheck_alcotest.to_alcotest prop_heap_consistent_after_random_churn;
          QCheck_alcotest.to_alcotest prop_field_layout_no_overlap;
        ] );
    ]
