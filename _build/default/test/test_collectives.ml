(* Edge cases and properties for the collective operations: singleton
   communicators, non-zero roots, derived communicators, argument
   validation, and algebraic properties against sequential references. *)

module Mpi = Mpi_core.Mpi
module Comm = Mpi_core.Comm
module Coll = Mpi_core.Collectives
module Bv = Mpi_core.Buffer_view

let payload n = Bytes.init n (fun i -> Char.chr ((i * 3 + n) land 0xff))

let test_singleton_world_collectives () =
  (* Every collective must degenerate correctly when alone. *)
  ignore
    (Mpi.run ~n:1 (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         Coll.barrier p comm;
         let b = Bytes.copy (payload 64) in
         Coll.bcast p comm ~root:0 (Bv.of_bytes b);
         Alcotest.(check bytes) "bcast self" (payload 64) b;
         let mine = Bytes.create 16 in
         Coll.scatter p comm ~root:0
           ~parts:(Some [| Bv.of_bytes (payload 16) |])
           ~recv:(Bv.of_bytes mine);
         Alcotest.(check bytes) "scatter self" (payload 16) mine;
         let out = Bytes.create 16 in
         Coll.gather p comm ~root:0 ~send:(Bv.of_bytes mine)
           ~parts:(Some [| Bv.of_bytes out |]);
         Alcotest.(check bytes) "gather self" (payload 16) out;
         let blocks = Coll.allgather p comm ~send:(payload 8) in
         Alcotest.(check int) "one block" 1 (Array.length blocks);
         let acc = Coll.allreduce p comm ~op:Coll.sum_i32 (payload 8) in
         Alcotest.(check bytes) "allreduce identity" (payload 8) acc;
         let r = Coll.alltoall p comm ~send:[| payload 4 |] in
         Alcotest.(check bytes) "alltoall self" (payload 4) r.(0)))

let test_nonzero_roots () =
  let n = 5 in
  ignore
    (Mpi.run ~n (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         let r = Mpi.rank p in
         (* Scatter from root 3. *)
         let mine = Bytes.create 4 in
         let parts =
           if r = 3 then
             Some (Array.init n (fun i -> Bv.of_bytes (Bytes.make 4 (Char.chr (65 + i)))))
           else None
         in
         Coll.scatter p comm ~root:3 ~parts ~recv:(Bv.of_bytes mine);
         Alcotest.(check bytes)
           (Printf.sprintf "rank %d part" r)
           (Bytes.make 4 (Char.chr (65 + r)))
           mine;
         (* Reduce to root 4. *)
         let b = Bytes.create 4 in
         Bytes.set_int32_le b 0 (Int32.of_int (1 lsl r));
         match Coll.reduce p comm ~root:4 ~op:Coll.sum_i32 b with
         | Some acc ->
             Alcotest.(check int) "root is 4" 4 r;
             Alcotest.(check int) "bitmask sum" 0b11111
               (Int32.to_int (Bytes.get_int32_le acc 0))
         | None -> Alcotest.(check bool) "non-root" true (r <> 4)))

let test_collectives_on_split_comm () =
  (* Collectives must work on derived communicators with remapped ranks. *)
  let n = 6 in
  ignore
    (Mpi.run ~n (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         let r = Mpi.rank p in
         let sub = Mpi.comm_split p comm ~color:(r mod 2) ~key:r in
         let b = Bytes.create 4 in
         Bytes.set_int32_le b 0 (Int32.of_int r);
         let acc = Coll.allreduce p sub ~op:Coll.sum_i32 b in
         let expected = if r mod 2 = 0 then 0 + 2 + 4 else 1 + 3 + 5 in
         Alcotest.(check int)
           (Printf.sprintf "rank %d group sum" r)
           expected
           (Int32.to_int (Bytes.get_int32_le acc 0));
         (* Bcast from the last member of each group. *)
         let v = Bytes.create 4 in
         if Mpi.comm_rank p sub = 2 then Bytes.set_int32_le v 0 99l;
         Coll.bcast p sub ~root:2 (Bv.of_bytes v);
         Alcotest.(check int) "group bcast" 99
           (Int32.to_int (Bytes.get_int32_le v 0))))

let test_alltoall_validation () =
  ignore
    (Mpi.run ~n:2 (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         (try
            ignore (Coll.alltoall p comm ~send:[| payload 4 |]);
            Alcotest.fail "expected arity error"
          with Invalid_argument _ -> ());
         (try
            ignore
              (Coll.alltoall p comm ~send:[| payload 4; payload 8 |]);
            Alcotest.fail "expected block-size error"
          with Invalid_argument _ -> ());
         (* A correct call must still work afterwards. *)
         let r =
           Coll.alltoall p comm ~send:[| payload 4; payload 4 |]
         in
         Alcotest.(check bytes) "recovered" (payload 4) r.(0)))

let test_barrier_stress () =
  let n = 7 in
  let rounds = 25 in
  let counters = Array.make n 0 in
  ignore
    (Mpi.run ~n (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         for round = 1 to rounds do
           counters.(Mpi.rank p) <- round;
           Coll.barrier p comm;
           (* After each barrier everyone must be at the same round. *)
           Array.iteri
             (fun i c ->
               Alcotest.(check bool)
                 (Printf.sprintf "round %d rank %d sees %d" round
                    (Mpi.rank p) i)
                 true (c >= round))
             counters;
           Coll.barrier p comm
         done))

let prop_reduce_matches_sequential_fold =
  QCheck.Test.make ~name:"reduce sum equals a sequential fold" ~count:40
    QCheck.(triple (int_range 1 8) (int_range 0 7) (list small_int))
    (fun (n, root_seed, xs) ->
      let root = root_seed mod n in
      let values = Array.init n (fun r -> List.nth_opt xs r |> Option.value ~default:(r * 7)) in
      let result = ref None in
      ignore
        (Mpi.run ~n (fun p ->
             let comm = Mpi.comm_world (Mpi.world_of p) in
             let b = Bytes.create 8 in
             Bytes.set_int64_le b 0 (Int64.of_int values.(Mpi.rank p));
             match Coll.reduce p comm ~root ~op:Coll.sum_i64 b with
             | Some acc -> result := Some (Bytes.get_int64_le acc 0)
             | None -> ()));
      !result = Some (Int64.of_int (Array.fold_left ( + ) 0 values)))

let prop_bcast_delivers_everywhere =
  QCheck.Test.make ~name:"bcast delivers identical bytes at every rank"
    ~count:25
    QCheck.(triple (int_range 2 6) (int_range 1 120_000) (int_range 0 5))
    (fun (n, size, root_seed) ->
      let root = root_seed mod n in
      let ok = ref true in
      ignore
        (Mpi.run ~n (fun p ->
             let comm = Mpi.comm_world (Mpi.world_of p) in
             let b =
               if Mpi.rank p = root then Bytes.copy (payload size)
               else Bytes.create size
             in
             Coll.bcast p comm ~root (Bv.of_bytes b);
             if not (Bytes.equal b (payload size)) then ok := false));
      !ok)

let prop_allgather_collects_everyone =
  QCheck.Test.make ~name:"allgather collects every member's block in order"
    ~count:30
    QCheck.(pair (int_range 1 7) (int_range 1 64))
    (fun (n, blk) ->
      let ok = ref true in
      ignore
        (Mpi.run ~n (fun p ->
             let comm = Mpi.comm_world (Mpi.world_of p) in
             let mine = Bytes.make blk (Char.chr (48 + Mpi.rank p)) in
             let blocks = Coll.allgather p comm ~send:mine in
             Array.iteri
               (fun i b ->
                 if not (Bytes.equal b (Bytes.make blk (Char.chr (48 + i))))
                 then ok := false)
               blocks));
      !ok)

let prop_alltoall_is_transpose =
  QCheck.Test.make ~name:"alltoall is a transpose" ~count:25
    QCheck.(int_range 1 6)
    (fun n ->
      let ok = ref true in
      ignore
        (Mpi.run ~n (fun p ->
             let comm = Mpi.comm_world (Mpi.world_of p) in
             let me = Mpi.rank p in
             let send =
               Array.init n (fun r ->
                   let b = Bytes.create 2 in
                   Bytes.set b 0 (Char.chr me);
                   Bytes.set b 1 (Char.chr r);
                   b)
             in
             let recv = Coll.alltoall p comm ~send in
             Array.iteri
               (fun r b ->
                 if Char.code (Bytes.get b 0) <> r
                    || Char.code (Bytes.get b 1) <> me
                 then ok := false)
               recv));
      !ok)


let test_scan_prefix_sums () =
  let n = 5 in
  ignore
    (Mpi.run ~n (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         let r = Mpi.rank p in
         let b = Bytes.create 8 in
         Bytes.set_int64_le b 0 (Int64.of_int (r + 1));
         let acc = Coll.scan p comm ~op:Coll.sum_i64 b in
         (* inclusive prefix: 1+2+...+(r+1) *)
         let expected = (r + 1) * (r + 2) / 2 in
         Alcotest.(check int)
           (Printf.sprintf "rank %d prefix" r)
           expected
           (Int64.to_int (Bytes.get_int64_le acc 0))))

let test_scan_order_for_noncommutative () =
  (* "subtract" is not commutative: scan must fold strictly in rank
     order: ((v0 - v1) - v2) ... *)
  let n = 4 in
  let sub acc x =
    let a = Bytes.get_int64_le acc 0 and b = Bytes.get_int64_le x 0 in
    Bytes.set_int64_le acc 0 (Int64.sub a b)
  in
  ignore
    (Mpi.run ~n (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         let r = Mpi.rank p in
         let b = Bytes.create 8 in
         Bytes.set_int64_le b 0 (Int64.of_int (10 * (r + 1)));
         let acc = Coll.scan p comm ~op:sub b in
         (* prefix r: 10 - 20 - ... - 10(r+1) *)
         let expected = 10 - (List.fold_left ( + ) 0 (List.init r (fun i -> 10 * (i + 2)))) in
         Alcotest.(check int)
           (Printf.sprintf "rank %d ordered fold" r)
           expected
           (Int64.to_int (Bytes.get_int64_le acc 0))))

let test_reduce_scatter_block () =
  let n = 4 in
  ignore
    (Mpi.run ~n (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         let r = Mpi.rank p in
         (* Each member contributes [r; r; r; r] as 4 int32 blocks of 1. *)
         let b = Bytes.create (4 * n) in
         for i = 0 to n - 1 do
           Bytes.set_int32_le b (4 * i) (Int32.of_int ((r + 1) * (i + 1)))
         done;
         let mine = Coll.reduce_scatter_block p comm ~op:Coll.sum_i32 b in
         Alcotest.(check int) "block size" 4 (Bytes.length mine);
         (* Element i of the reduction is (i+1) * sum(r+1) = (i+1)*10. *)
         Alcotest.(check int)
           (Printf.sprintf "rank %d block" r)
           ((r + 1) * 10)
           (Int32.to_int (Bytes.get_int32_le mine 0))))

let test_reduce_scatter_block_validation () =
  ignore
    (Mpi.run ~n:3 (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         try
           ignore
             (Coll.reduce_scatter_block p comm ~op:Coll.sum_i32
                (Bytes.create 8));
           Alcotest.fail "expected length error"
         with Invalid_argument _ -> ()))

let test_persistent_requests () =
  let rounds = 6 in
  ignore
    (Mpi.run ~n:2 (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         let other = 1 - Mpi.rank p in
         let outb = Bytes.create 8 and inb = Bytes.create 8 in
         let psend =
           Mpi_core.Persistent.send_init p ~comm ~dst:other ~tag:2
             (Bv.of_bytes outb)
         in
         let precv =
           Mpi_core.Persistent.recv_init p ~comm ~src:other ~tag:2
             (Bv.of_bytes inb)
         in
         for round = 1 to rounds do
           Bytes.set_int64_le outb 0
             (Int64.of_int ((100 * Mpi.rank p) + round));
           ignore
             (Mpi_core.Persistent.start_all [ psend; precv ]);
           ignore (Mpi_core.Persistent.wait psend);
           ignore (Mpi_core.Persistent.wait precv);
           Alcotest.(check int)
             (Printf.sprintf "round %d payload" round)
             ((100 * other) + round)
             (Int64.to_int (Bytes.get_int64_le inb 0))
         done))

let test_persistent_restart_guard () =
  ignore
    (Mpi.run ~n:1 (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         let b = Bytes.create 4 in
         let precv =
           Mpi_core.Persistent.recv_init p ~comm ~src:0 ~tag:1
             (Bv.of_bytes b)
         in
         ignore (Mpi_core.Persistent.start precv);
         (try
            ignore (Mpi_core.Persistent.start precv);
            Alcotest.fail "expected in-flight guard"
          with Invalid_argument _ -> ());
         (* Complete it with a matching self-send. *)
         Mpi.send p ~comm ~dst:0 ~tag:1 (Bv.of_bytes (Bytes.create 4));
         ignore (Mpi_core.Persistent.wait precv);
         Alcotest.(check bool) "inactive after completion" false
           (Mpi_core.Persistent.is_active precv)))

let () =
  Alcotest.run "collectives"
    [
      ( "edges",
        [
          Alcotest.test_case "singleton world" `Quick
            test_singleton_world_collectives;
          Alcotest.test_case "non-zero roots" `Quick test_nonzero_roots;
          Alcotest.test_case "on split communicators" `Quick
            test_collectives_on_split_comm;
          Alcotest.test_case "alltoall validation" `Quick
            test_alltoall_validation;
          Alcotest.test_case "barrier stress" `Quick test_barrier_stress;
          Alcotest.test_case "scan prefix sums" `Quick
            test_scan_prefix_sums;
          Alcotest.test_case "scan order (non-commutative)" `Quick
            test_scan_order_for_noncommutative;
          Alcotest.test_case "reduce_scatter_block" `Quick
            test_reduce_scatter_block;
          Alcotest.test_case "reduce_scatter_block validation" `Quick
            test_reduce_scatter_block_validation;
          Alcotest.test_case "persistent requests" `Quick
            test_persistent_requests;
          Alcotest.test_case "persistent restart guard" `Quick
            test_persistent_restart_guard;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_reduce_matches_sequential_fold;
          QCheck_alcotest.to_alcotest prop_bcast_delivers_everywhere;
          QCheck_alcotest.to_alcotest prop_allgather_collects_everyone;
          QCheck_alcotest.to_alcotest prop_alltoall_is_transpose;
        ] );
    ]
