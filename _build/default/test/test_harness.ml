(* Tests for the experiment harness: workload drivers, the experiment
   generators, and — most importantly — the shape checks that assert the
   reproduction preserves the paper's qualitative results. The full-figure
   shape checks are `Slow tests (run in CI / `dune runtest`; they take a
   few seconds). *)

module W = Harness.Workloads
module E = Harness.Experiments
module S = Harness.Systems
module Sh = Harness.Shapes
module T = Harness.Table

let tiny = { W.iters = 12; timed = 6; trials = 1 }

let test_pingpong_bytes_all_systems () =
  List.iter
    (fun sys ->
      let us = W.pingpong_bytes ~protocol:tiny sys ~size:64 in
      Alcotest.(check bool)
        (Printf.sprintf "%s plausible small-message time (%.1f us)"
           (S.name sys) us)
        true
        (us > 10.0 && us < 200.0))
    S.fig9_systems

let test_pingpong_bytes_scales () =
  let small = W.pingpong_bytes ~protocol:tiny S.Motor_sys ~size:16 in
  let large = W.pingpong_bytes ~protocol:tiny S.Motor_sys ~size:262_144 in
  Alcotest.(check bool) "large messages cost much more" true
    (large > 20.0 *. small)

let test_pingpong_deterministic () =
  let a = W.pingpong_bytes ~protocol:tiny S.Native_cpp ~size:1024 in
  let b = W.pingpong_bytes ~protocol:tiny S.Native_cpp ~size:1024 in
  Alcotest.(check (float 1e-9)) "virtual time is reproducible" a b

let test_pingpong_objects_motor () =
  match
    W.pingpong_objects ~protocol:tiny S.Motor_sys ~total_objects:16
      ~total_data_bytes:4096
  with
  | W.Time_us us ->
      Alcotest.(check bool)
        (Printf.sprintf "plausible (%.1f us)" us)
        true
        (us > 20.0 && us < 5000.0)
  | W.Crashed msg -> Alcotest.fail msg

let test_pingpong_objects_java_crashes_when_long () =
  (match
     W.pingpong_objects S.Mpijava ~total_objects:64 ~total_data_bytes:4096
   with
  | W.Time_us _ -> ()
  | W.Crashed m -> Alcotest.fail ("should survive 64 objects: " ^ m));
  match
    W.pingpong_objects S.Mpijava ~total_objects:4096 ~total_data_bytes:4096
  with
  | W.Time_us _ -> Alcotest.fail "should crash at 4096 objects"
  | W.Crashed _ -> ()

let test_make_linked_list_distribution () =
  let rt = Vm.Runtime.create () in
  let gc = rt.Vm.Runtime.gc in
  let head =
    W.make_linked_list gc rt.Vm.Runtime.registry ~elems:5
      ~total_data_bytes:4096
  in
  (* Walk and sum data sizes: must equal the payload exactly. *)
  let mt =
    Option.get (Vm.Classes.find_by_name rt.Vm.Runtime.registry "LinkedArray")
  in
  let fa = Vm.Classes.field mt "array" in
  let fn = Vm.Classes.field mt "next" in
  let total = ref 0 in
  let count = ref 0 in
  let cur = ref head in
  let continue_ = ref true in
  while !continue_ do
    incr count;
    (match Vm.Object_model.get_ref gc !cur fa with
    | Some arr -> total := !total + Vm.Object_model.array_length gc arr
    | None -> ());
    match Vm.Object_model.get_ref gc !cur fn with
    | Some next -> cur := next
    | None -> continue_ := false
  done;
  Alcotest.(check int) "five elements" 5 !count;
  Alcotest.(check int) "payload split exactly" 4096 !total

let test_fig9_sizes_and_systems () =
  Alcotest.(check int) "17 sizes" 17 (List.length E.fig9_sizes);
  Alcotest.(check int) "5 systems" 5 (List.length S.fig9_systems);
  Alcotest.(check (list int)) "endpoints" [ 4; 262_144 ]
    [ List.hd E.fig9_sizes; List.nth E.fig9_sizes 16 ]

let test_taba_math () =
  (* Synthetic series where Motor is always 20% faster. *)
  let mk name f =
    {
      E.system = name;
      E.points =
        List.map
          (fun x -> { E.x; E.result = W.Time_us (f x) })
          [ 4; 131_072; 262_144 ];
    }
  in
  let series =
    [ mk "Motor" (fun x -> 0.8 *. float_of_int x);
      mk "Indiana SSCLI" (fun x -> float_of_int x) ]
  in
  List.iter
    (fun (r : E.taba_row) ->
      Alcotest.(check (float 1e-6)) r.E.metric 20.0 r.E.measured_pct)
    (E.taba series)

let test_tabb_fastchecked_slower () =
  match E.tabb ~protocol:tiny () with
  | [ (_, free); (_, fastchecked) ] ->
      Alcotest.(check bool)
        (Printf.sprintf "fastchecked slower (%.1f vs %.1f us)" fastchecked
           free)
        true (fastchecked > free +. 1.0)
  | _ -> Alcotest.fail "expected two rows"

let test_abl_pinning_policy () =
  match E.abl_pinning_policy ~protocol:tiny ~size:1024 () with
  | [ (_, t_always, p_always); (_, _, p_boundary); (_, t_deferred, p_deferred) ]
    ->
      Alcotest.(check bool) "deferred pins fewer" true
        (p_deferred < p_always);
      Alcotest.(check bool) "deferred not slower" true
        (t_deferred <= t_always +. 0.5);
      Alcotest.(check bool) "boundary-check <= always" true
        (p_boundary <= p_always)
  | _ -> Alcotest.fail "expected three rows"

let test_abl_call_mechanism () =
  match E.abl_call_mechanism ~protocol:tiny ~size:4 () with
  | [ (_, fcall); (_, pinvoke); (_, jni) ] ->
      Alcotest.(check bool) "fcall < pinvoke" true (fcall < pinvoke);
      Alcotest.(check bool) "pinvoke < jni" true (pinvoke < jni)
  | _ -> Alcotest.fail "expected three rows"

let test_abl_nonblocking_unpin () =
  let rows = E.abl_nonblocking_unpin () in
  let find name =
    List.find (fun (n, _, _, _) -> n = name) rows
  in
  let _, _, pins_always, _ = find "always-pin" in
  let _, _, pins_deferred, dropped = find "deferred" in
  Alcotest.(check bool) "always-pin pins" true (pins_always > 0);
  Alcotest.(check int) "deferred takes no sticky pins" 0 pins_deferred;
  Alcotest.(check bool) "conditional pins were dropped at the mark phase"
    true (dropped > 0)

let test_abl_eager_threshold_crossover () =
  let rows = E.abl_eager_threshold ~protocol:tiny () in
  (* With rendezvous forced everywhere (threshold 0), small messages pay
     the handshake; with a huge threshold large messages avoid it. *)
  let time threshold size =
    List.assoc size (List.assoc threshold rows)
  in
  Alcotest.(check bool) "handshake hurts small messages" true
    (time 0 1024 > time 1_048_576 1024 +. 5.0)


let test_abl_split_scatter () =
  let rows = E.abl_split_scatter ~elements:32 () in
  Alcotest.(check int) "three member counts" 3 (List.length rows);
  List.iter
    (fun (n, motor_us, wrapper_us) ->
      Alcotest.(check bool)
        (Printf.sprintf "split wins at %d ranks (%.0f vs %.0f us)" n
           motor_us wrapper_us)
        true
        (motor_us < wrapper_us))
    rows

let test_table_rendering () =
  let s =
    T.csv_string
      ~headers:[ "a"; "b" ]
      ~rows:[ ("row1", [ T.Num 1.5; T.Text "x,y" ]); ("row2", [ T.Missing; T.Num 2.0 ]) ]
  in
  Alcotest.(check bool) "csv quotes commas" true
    (String.length s > 0
    && String.split_on_char '\n' s |> List.length >= 3
    && String.index_opt s '"' <> None)

(* Full-figure shape checks: the reproduction's headline assertions. *)

let quick9 = { W.iters = 30; timed = 15; trials = 1 }

let test_fig9_shapes () =
  let series = E.fig9 ~protocol:quick9 () in
  let verdicts = Sh.fig9_checks series in
  Format.printf "%a@." Sh.pp_verdicts verdicts;
  Alcotest.(check bool) "all fig9 shape checks pass" true
    (Sh.all_pass verdicts)

let test_fig10_shapes () =
  let series = E.fig10 () in
  let verdicts = Sh.fig10_checks series in
  Format.printf "%a@." Sh.pp_verdicts verdicts;
  Alcotest.(check bool) "all fig10 shape checks pass" true
    (Sh.all_pass verdicts)

let () =
  Alcotest.run "harness"
    [
      ( "workloads",
        [
          Alcotest.test_case "bytes ping-pong on every system" `Quick
            test_pingpong_bytes_all_systems;
          Alcotest.test_case "times scale with size" `Quick
            test_pingpong_bytes_scales;
          Alcotest.test_case "deterministic" `Quick
            test_pingpong_deterministic;
          Alcotest.test_case "object ping-pong (Motor)" `Quick
            test_pingpong_objects_motor;
          Alcotest.test_case "object ping-pong (Java crash)" `Quick
            test_pingpong_objects_java_crashes_when_long;
          Alcotest.test_case "linked-list payload distribution" `Quick
            test_make_linked_list_distribution;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "fig9 axes" `Quick test_fig9_sizes_and_systems;
          Alcotest.test_case "taba math" `Quick test_taba_math;
          Alcotest.test_case "tabb fastchecked slower" `Quick
            test_tabb_fastchecked_slower;
          Alcotest.test_case "ablation: pinning policy" `Quick
            test_abl_pinning_policy;
          Alcotest.test_case "ablation: call mechanism" `Quick
            test_abl_call_mechanism;
          Alcotest.test_case "ablation: nonblocking unpin" `Quick
            test_abl_nonblocking_unpin;
          Alcotest.test_case "ablation: eager threshold" `Quick
            test_abl_eager_threshold_crossover;
          Alcotest.test_case "ablation: split-representation scatter" `Quick
            test_abl_split_scatter;
          Alcotest.test_case "table rendering" `Quick test_table_rendering;
        ] );
      ( "shape checks (paper reproduction)",
        [
          Alcotest.test_case "Figure 9 shapes" `Slow test_fig9_shapes;
          Alcotest.test_case "Figure 10 shapes" `Slow test_fig10_shapes;
        ] );
    ]
