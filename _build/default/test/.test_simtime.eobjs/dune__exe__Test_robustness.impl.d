test/test_robustness.ml: Alcotest Array Buffer Bytes Char Hashtbl List Motor Printf QCheck QCheck_alcotest String Vm
