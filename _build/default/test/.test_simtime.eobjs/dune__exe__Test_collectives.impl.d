test/test_collectives.ml: Alcotest Array Bytes Char Int32 Int64 List Mpi_core Option Printf QCheck QCheck_alcotest
