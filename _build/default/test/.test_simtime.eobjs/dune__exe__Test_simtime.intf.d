test/test_simtime.mli:
