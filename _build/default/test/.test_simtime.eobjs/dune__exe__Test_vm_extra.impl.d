test/test_vm_extra.ml: Alcotest Buffer Format Int64 List Printf QCheck QCheck_alcotest String Vm
