test/test_managed_api.ml: Alcotest Array In_channel List Motor Printf Simtime Sys Vm
