test/test_vm.ml: Alcotest Array Gen List Printf QCheck QCheck_alcotest Simtime String Vm
