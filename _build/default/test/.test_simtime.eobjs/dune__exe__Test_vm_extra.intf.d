test/test_vm_extra.mli:
