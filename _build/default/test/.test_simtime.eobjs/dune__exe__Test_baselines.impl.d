test/test_baselines.ml: Alcotest Array Baselines Fiber Motor Printf QCheck QCheck_alcotest Simtime Vm
