test/test_managed_api.mli:
