test/test_motor.ml: Alcotest Array Bytes Fiber List Motor Mpi_core Option Printf QCheck QCheck_alcotest Simtime Vm
