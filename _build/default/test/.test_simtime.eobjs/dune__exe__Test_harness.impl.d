test/test_harness.ml: Alcotest Format Harness List Option Printf String Vm
