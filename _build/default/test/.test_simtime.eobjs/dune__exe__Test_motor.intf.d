test/test_motor.mli:
