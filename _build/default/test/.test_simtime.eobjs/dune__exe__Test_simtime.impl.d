test/test_simtime.ml: Alcotest Float List QCheck QCheck_alcotest Simtime
