test/test_integration.ml: Alcotest Array Buffer Bytes Char Fiber Format In_channel Int32 Int64 List Motor Mpi_core Option Printf QCheck QCheck_alcotest Simtime String Sys Vm
