test/test_group.ml: Alcotest Array Bytes Int32 List Mpi_core QCheck QCheck_alcotest
