test/test_fiber.ml: Alcotest Fiber List Printf QCheck QCheck_alcotest
