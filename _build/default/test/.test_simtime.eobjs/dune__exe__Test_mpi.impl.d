test/test_mpi.ml: Alcotest Array Bytes Char Fiber Gen Int32 Int64 List Mpi_core Printf QCheck QCheck_alcotest Simtime
