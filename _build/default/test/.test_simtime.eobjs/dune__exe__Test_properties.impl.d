test/test_properties.ml: Alcotest Array Bytes Hashtbl Int32 List Motor Option Printf QCheck QCheck_alcotest Vm
