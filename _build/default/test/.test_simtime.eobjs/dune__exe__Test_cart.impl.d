test/test_cart.ml: Alcotest Array Bytes Int32 Mpi_core Option Printf QCheck QCheck_alcotest
