test/test_tools.ml: Alcotest Buffer Bytes Fiber Format Harness List Mpi_core Simtime String
