test/test_fiber.mli:
