lib/simtime/clock.mli:
