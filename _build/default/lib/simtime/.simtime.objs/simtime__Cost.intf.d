lib/simtime/cost.mli: Format
