lib/simtime/stats.ml: Format Hashtbl List String
