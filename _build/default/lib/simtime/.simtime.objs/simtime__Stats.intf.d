lib/simtime/stats.mli: Format
