lib/simtime/env.ml: Clock Cost Stats
