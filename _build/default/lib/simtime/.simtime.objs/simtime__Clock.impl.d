lib/simtime/clock.ml:
