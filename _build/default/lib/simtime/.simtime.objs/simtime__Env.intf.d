lib/simtime/env.mli: Clock Cost Stats
