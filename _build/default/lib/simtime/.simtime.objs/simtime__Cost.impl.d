lib/simtime/cost.ml: Format
