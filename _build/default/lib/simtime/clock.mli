(** Deterministic virtual clock.

    All costs in the simulation are charged to a virtual clock measured in
    nanoseconds. The clock is a plain mutable accumulator: the simulation is
    cooperative and single-threaded, so every charge is totally ordered. This
    replaces the paper's wall-clock measurements on a Pentium M testbed with a
    reproducible time base (see DESIGN.md §4). *)

type t

val create : unit -> t
(** A fresh clock at time zero. *)

val now_ns : t -> float
(** Current virtual time in nanoseconds. *)

val now_us : t -> float
(** Current virtual time in microseconds. *)

val advance : t -> float -> unit
(** [advance clock ns] moves the clock forward by [ns] nanoseconds. Negative
    charges are rejected with [Invalid_argument]. *)

val reset : t -> unit
(** Rewind to time zero. *)

val elapsed_since : t -> float -> float
(** [elapsed_since clock t0] is [now_ns clock -. t0]. *)
