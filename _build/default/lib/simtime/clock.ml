type t = { mutable now : float }

let create () = { now = 0.0 }
let now_ns t = t.now
let now_us t = t.now /. 1e3

let advance t ns =
  if ns < 0.0 then invalid_arg "Clock.advance: negative charge";
  t.now <- t.now +. ns

let reset t = t.now <- 0.0
let elapsed_since t t0 = t.now -. t0
