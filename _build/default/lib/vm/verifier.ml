exception Verify_error of string

type intcall_sig = Types.field_type list * Types.field_type option

let max_stack = 1024

let vt = Il.vtype_of_field_type

let elem_vtype = function
  | Types.Eprim (Types.R4 | Types.R8) -> Il.S_float
  | Types.Eprim _ -> Il.S_int
  | Types.Eref _ -> Il.S_ref

let verify_method registry (program : Il.program) ~intcall (m : Il.mth) =
  let fail pc fmt =
    Format.kasprintf
      (fun s ->
        raise
          (Verify_error (Printf.sprintf "%s @%d: %s" m.Il.m_name pc s)))
      fmt
  in
  let code = m.Il.m_code in
  let n = Array.length code in
  let params = Array.of_list m.Il.m_params in
  let locals = Array.of_list m.Il.m_locals in
  let in_states : Il.vtype list option array = Array.make (n + 1) None in
  let work = Queue.create () in
  let schedule pc state =
    if pc < 0 || pc > n then fail pc "branch target out of range";
    if pc = n then fail pc "fallthrough past end of method (missing ret)"
    else
      match in_states.(pc) with
      | None ->
          in_states.(pc) <- Some state;
          Queue.push pc work
      | Some prev ->
          if prev <> state then
            fail pc "inconsistent stack shapes at merge point"
  in
  let pop pc = function
    | [] -> fail pc "stack underflow"
    | x :: rest -> (x, rest)
  in
  let pop_expect pc want st =
    let got, rest = pop pc st in
    if got <> want then
      fail pc "expected %a on stack, found %a" Il.pp_vtype want Il.pp_vtype
        got;
    rest
  in
  let push pc v st =
    if List.length st >= max_stack then fail pc "stack too deep";
    v :: st
  in
  let local_type pc i =
    if i < 0 || i >= Array.length locals then fail pc "bad local index %d" i;
    locals.(i)
  in
  let param_type pc i =
    if i < 0 || i >= Array.length params then fail pc "bad arg index %d" i;
    params.(i)
  in
  let class_field pc cid fidx =
    match Classes.find registry cid with
    | exception Not_found -> fail pc "unknown class id %d" cid
    | mt -> (
        match Classes.field_by_index mt fidx with
        | fd -> fd
        | exception Invalid_argument _ ->
            fail pc "bad field index %d in %s" fidx mt.Classes.c_name)
  in
  schedule 0 [];
  while not (Queue.is_empty work) do
    let pc = Queue.pop work in
    let st =
      match in_states.(pc) with Some s -> s | None -> assert false
    in
    let continue_with st = schedule (pc + 1) st in
    match code.(pc) with
    | Il.Nop -> continue_with st
    | Il.Ldc_i _ -> continue_with (push pc Il.S_int st)
    | Il.Ldc_f _ -> continue_with (push pc Il.S_float st)
    | Il.Ldstr _ -> continue_with (push pc Il.S_ref st)
    | Il.Ldnull -> continue_with (push pc Il.S_ref st)
    | Il.Ldloc i -> continue_with (push pc (vt (local_type pc i)) st)
    | Il.Stloc i ->
        continue_with (pop_expect pc (vt (local_type pc i)) st)
    | Il.Ldarg i -> continue_with (push pc (vt (param_type pc i)) st)
    | Il.Starg i ->
        continue_with (pop_expect pc (vt (param_type pc i)) st)
    | Il.Add | Il.Sub | Il.Mul | Il.Div | Il.Rem ->
        let st = pop_expect pc Il.S_int st in
        let st = pop_expect pc Il.S_int st in
        continue_with (push pc Il.S_int st)
    | Il.Neg ->
        let st = pop_expect pc Il.S_int st in
        continue_with (push pc Il.S_int st)
    | Il.Fadd | Il.Fsub | Il.Fmul | Il.Fdiv ->
        let st = pop_expect pc Il.S_float st in
        let st = pop_expect pc Il.S_float st in
        continue_with (push pc Il.S_float st)
    | Il.Fneg ->
        let st = pop_expect pc Il.S_float st in
        continue_with (push pc Il.S_float st)
    | Il.Conv_i ->
        let st = pop_expect pc Il.S_float st in
        continue_with (push pc Il.S_int st)
    | Il.Conv_f ->
        let st = pop_expect pc Il.S_int st in
        continue_with (push pc Il.S_float st)
    | Il.Ceq -> (
        match st with
        | Il.S_ref :: Il.S_ref :: rest | Il.S_int :: Il.S_int :: rest ->
            continue_with (push pc Il.S_int rest)
        | _ -> fail pc "ceq expects two ints or two refs")
    | Il.Clt | Il.Cgt ->
        let st = pop_expect pc Il.S_int st in
        let st = pop_expect pc Il.S_int st in
        continue_with (push pc Il.S_int st)
    | Il.Fceq | Il.Fclt | Il.Fcgt ->
        let st = pop_expect pc Il.S_float st in
        let st = pop_expect pc Il.S_float st in
        continue_with (push pc Il.S_int st)
    | Il.Br target -> schedule target st
    | Il.Brtrue target | Il.Brfalse target ->
        let st = pop_expect pc Il.S_int st in
        schedule target st;
        continue_with st
    | Il.Ldfld (cid, fidx) ->
        let fd = class_field pc cid fidx in
        let st = pop_expect pc Il.S_ref st in
        continue_with (push pc (vt fd.Classes.f_type) st)
    | Il.Stfld (cid, fidx) ->
        let fd = class_field pc cid fidx in
        let st = pop_expect pc (vt fd.Classes.f_type) st in
        let st = pop_expect pc Il.S_ref st in
        continue_with st
    | Il.Isinst cid ->
        (match Classes.find registry cid with
        | exception Not_found -> fail pc "unknown class id %d" cid
        | _ -> ());
        let st = pop_expect pc Il.S_ref st in
        continue_with (push pc Il.S_int st)
    | Il.Newobj cid ->
        (match Classes.find registry cid with
        | exception Not_found -> fail pc "unknown class id %d" cid
        | mt -> (
            match mt.Classes.c_kind with
            | Classes.K_class -> ()
            | Classes.K_array _ | Classes.K_md_array _ ->
                fail pc "newobj on array class %s" mt.Classes.c_name));
        continue_with (push pc Il.S_ref st)
    | Il.Newarr _ ->
        let st = pop_expect pc Il.S_int st in
        continue_with (push pc Il.S_ref st)
    | Il.Ldlen ->
        let st = pop_expect pc Il.S_ref st in
        continue_with (push pc Il.S_int st)
    | Il.Ldelem elem ->
        let st = pop_expect pc Il.S_int st in
        let st = pop_expect pc Il.S_ref st in
        continue_with (push pc (elem_vtype elem) st)
    | Il.Stelem elem ->
        let st = pop_expect pc (elem_vtype elem) st in
        let st = pop_expect pc Il.S_int st in
        let st = pop_expect pc Il.S_ref st in
        continue_with st
    | Il.Newmd (_, rank) ->
        let st = ref st in
        for _ = 1 to rank do
          st := pop_expect pc Il.S_int !st
        done;
        continue_with (push pc Il.S_ref !st)
    | Il.Ldelem_md (elem, rank) ->
        let st = ref st in
        for _ = 1 to rank do
          st := pop_expect pc Il.S_int !st
        done;
        let st = pop_expect pc Il.S_ref !st in
        continue_with (push pc (elem_vtype elem) st)
    | Il.Stelem_md (elem, rank) ->
        let st = pop_expect pc (elem_vtype elem) st in
        let st = ref st in
        for _ = 1 to rank do
          st := pop_expect pc Il.S_int !st
        done;
        let st = pop_expect pc Il.S_ref !st in
        continue_with st
    | Il.Call mid ->
        if mid < 0 || mid >= Array.length program.Il.methods then
          fail pc "unknown method id %d" mid;
        let callee = program.Il.methods.(mid) in
        let st =
          List.fold_left
            (fun st ty -> pop_expect pc (vt ty) st)
            st
            (List.rev callee.Il.m_params)
        in
        let st =
          match callee.Il.m_ret with
          | None -> st
          | Some ty -> push pc (vt ty) st
        in
        continue_with st
    | Il.Intcall name -> (
        match intcall name with
        | None -> fail pc "unknown internal call %s" name
        | Some (param_tys, ret) ->
            let st =
              List.fold_left
                (fun st ty -> pop_expect pc (vt ty) st)
                st (List.rev param_tys)
            in
            let st =
              match ret with None -> st | Some ty -> push pc (vt ty) st
            in
            continue_with st)
    | Il.Ret -> (
        match (m.Il.m_ret, st) with
        | None, [] -> ()
        | Some ty, [ v ] when v = vt ty -> ()
        | None, _ :: _ -> fail pc "ret with non-empty stack"
        | Some _, _ -> fail pc "ret with wrong stack shape")
    | Il.Pop ->
        let _, st = pop pc st in
        continue_with st
    | Il.Dup ->
        let v, _ = pop pc st in
        continue_with (push pc v st)
  done

let verify_program registry program ~intcall =
  Array.iter (verify_method registry program ~intcall) program.Il.methods;
  if
    program.Il.entry < 0
    || program.Il.entry >= Array.length program.Il.methods
  then raise (Verify_error "entry method id out of range")
