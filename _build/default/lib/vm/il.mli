(** MIL — the runtime's processor-agnostic intermediate language.

    A small stack-based instruction set in the spirit of CIL: enough to
    write managed MPI applications (the paper's "compile once, run
    anywhere" programs) that run on this VM via {!Interp}, after static
    checking by {!Verifier}. *)

type value = V_int of int64 | V_float of float | V_ref of Heap.addr

(** Stack cell types used by the verifier. *)
type vtype = S_int | S_float | S_ref

type instr =
  | Nop
  | Ldc_i of int64
  | Ldc_f of float
  | Ldstr of string  (** allocates a char array holding the literal *)
  | Ldnull
  | Ldloc of int
  | Stloc of int
  | Ldarg of int
  | Starg of int
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Neg
  | Fadd
  | Fsub
  | Fmul
  | Fdiv
  | Fneg
  | Conv_i  (** float -> int *)
  | Conv_f  (** int -> float *)
  | Ceq
  | Clt
  | Cgt
  | Fceq
  | Fclt
  | Fcgt
  | Br of int
  | Brtrue of int
  | Brfalse of int
  | Ldfld of Types.class_id * int  (** class id, field index *)
  | Stfld of Types.class_id * int
  | Isinst of Types.class_id
      (** pops an object ref, pushes 1 if it is an instance of the class
          (or the class is System.Object), else 0; null gives 0 *)
  | Newobj of Types.class_id
  | Newarr of Types.elem  (** pops length *)
  | Ldlen
  | Ldelem of Types.elem  (** pops index, array *)
  | Stelem of Types.elem  (** pops value, index, array *)
  | Newmd of Types.elem * int
      (** true multidimensional array; pops the dimensions (first pushed
          first) *)
  | Ldelem_md of Types.elem * int  (** pops the indices, then the array *)
  | Stelem_md of Types.elem * int  (** pops value, indices, array *)
  | Call of int  (** method id *)
  | Intcall of string  (** internal (runtime) call by name *)
  | Ret
  | Pop
  | Dup

type mth = {
  m_id : int;
  m_name : string;
  m_params : Types.field_type list;
  m_ret : Types.field_type option;
  m_locals : Types.field_type list;
  m_code : instr array;
}

type program = {
  methods : mth array;  (** index = method id *)
  entry : int;  (** id of the entry method *)
}

val method_by_name : program -> string -> mth option
val vtype_of_field_type : Types.field_type -> vtype
val default_value : Types.field_type -> value
val pp_instr : Format.formatter -> instr -> unit
val pp_vtype : Format.formatter -> vtype -> unit

val pp_method : Format.formatter -> mth -> unit
(** Disassembly: one numbered instruction per line. *)

val pp_program : Format.formatter -> program -> unit
