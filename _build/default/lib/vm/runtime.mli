(** One virtual-machine instance: heap, collector, class registry, clock.

    In a simulated world each MPI rank owns one runtime instance — the
    analogue of the paper's per-process SSCLI. *)

type t = {
  env : Simtime.Env.t;
  registry : Classes.t;
  heap : Heap.t;
  gc : Gc.t;
  out : Buffer.t;  (** console output of managed programs *)
}

val create :
  ?arena_bytes:int ->
  ?block_bytes:int ->
  ?cost:Simtime.Cost.t ->
  ?env:Simtime.Env.t ->
  unit ->
  t
(** Build a runtime. Pass [env] to share a clock with other runtimes in the
    same simulated world (the usual multi-rank setup); otherwise a fresh
    environment is created with [cost] (default {!Simtime.Cost.motor}). *)

val load : t -> ?entry:string -> ?verify:bool -> string -> Interp.t
(** Assemble MIL source, create an execution context, register the base
    system library and (unless [~verify:false]) verify the program. Pass
    [~verify:false] when further internal calls (e.g. System.MP) will be
    registered before running, then call {!Interp.verify}. Raises
    [Assembler.Parse_error] or [Verifier.Verify_error]. *)

val output : t -> string
(** Managed console output so far. *)
