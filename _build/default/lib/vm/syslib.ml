let i32 = Types.Prim Types.I4
let i64 = Types.Prim Types.I8
let f64 = Types.Prim Types.R8

let register interp ~env ~out =
  let gc = Interp.gc interp in
  let heap = Gc.heap gc in
  let obj_ty =
    Types.Ref (Classes.object_class (Gc.registry gc)).Classes.c_id
  in
  let reg name sg impl = Interp.register_intcall interp name sg impl in
  reg "sys.print_str" ([ obj_ty ], None) (fun args ->
      (match args.(0) with
      | Il.V_ref a when a <> Heap.null -> (
          match (Gc.method_table_of gc a).Classes.c_kind with
          | Classes.K_array (Types.Eprim Types.Char) ->
              let data = Heap.data_of a in
              let len = Heap.get_i32 heap data in
              for i = 0 to len - 1 do
                Buffer.add_char out
                  (Char.chr (Heap.get_i16 heap (data + 4 + (2 * i)) land 0xff))
              done
          | _ ->
              raise (Interp.Runtime_error "sys.print_str: not a char array"))
      | Il.V_ref _ | Il.V_int _ | Il.V_float _ ->
          raise (Interp.Runtime_error "sys.print_str: expected a char array"));
      None);
  reg "sys.print_i" ([ i64 ], None) (fun args ->
      (match args.(0) with
      | Il.V_int v -> Buffer.add_string out (Int64.to_string v)
      | Il.V_float _ | Il.V_ref _ -> ());
      None);
  reg "sys.print_f" ([ f64 ], None) (fun args ->
      (match args.(0) with
      | Il.V_float v -> Buffer.add_string out (Printf.sprintf "%g" v)
      | Il.V_int _ | Il.V_ref _ -> ());
      None);
  reg "sys.print_c" ([ Types.Prim Types.Char ], None) (fun args ->
      (match args.(0) with
      | Il.V_int v -> Buffer.add_char out (Char.chr (Int64.to_int v land 0xff))
      | Il.V_float _ | Il.V_ref _ -> ());
      None);
  reg "sys.print_nl" ([], None) (fun _ ->
      Buffer.add_char out '\n';
      None);
  reg "sys.clock_us" ([], Some i64) (fun _ ->
      Some (Il.V_int (Int64.of_float (Simtime.Env.now_us env))));
  reg "sys.gc_collect" ([ i32 ], None) (fun args ->
      let full =
        match args.(0) with
        | Il.V_int v -> not (Int64.equal v 0L)
        | Il.V_float _ | Il.V_ref _ -> false
      in
      Gc.collect gc ~full;
      None);
  reg "sys.gc_count" ([], Some i64) (fun _ ->
      Some
        (Il.V_int (Int64.of_int (Gc.minor_count gc + Gc.full_count gc))));
  reg "sys.heap_young_used" ([], Some i64) (fun _ ->
      Some (Il.V_int (Int64.of_int (Heap.young_used heap))));
  reg "sys.heap_elder_used" ([], Some i64) (fun _ ->
      Some (Il.V_int (Int64.of_int (Heap.elder_used heap))));
  (* Reflection: dynamic access to type metadata. Deliberately priced as
     the slow path — the paper's serializer avoids exactly these calls by
     reading the Transportable bit off the FieldDesc (Section 7.5). *)
  let reflection_call_ns = 800.0 in
  let mt_of v =
    match v with
    | Il.V_ref a when a <> Heap.null -> Gc.method_table_of gc a
    | Il.V_ref _ ->
        raise (Interp.Runtime_error "reflection on a null reference")
    | Il.V_int _ | Il.V_float _ ->
        raise (Interp.Runtime_error "reflection on a non-object")
  in
  let alloc_string text =
    let len = String.length text in
    let cmt = Classes.array_class (Gc.registry gc) (Types.Eprim Types.Char) in
    let a = Gc.alloc gc ~mt:cmt ~data_bytes:(4 + (len * 2)) in
    Heap.set_i32 heap (Heap.data_of a) len;
    String.iteri
      (fun i c -> Heap.set_i16 heap (Heap.data_of a + 4 + (2 * i)) (Char.code c))
      text;
    a
  in
  reg "refl.class_name" ([ obj_ty ], Some obj_ty) (fun args ->
      Simtime.Env.charge env reflection_call_ns;
      let name = (mt_of args.(0)).Classes.c_name in
      Some (Il.V_ref (alloc_string name)));
  reg "refl.field_count" ([ obj_ty ], Some i64) (fun args ->
      Simtime.Env.charge env reflection_call_ns;
      Some
        (Il.V_int
           (Int64.of_int (Array.length (mt_of args.(0)).Classes.c_fields))));
  reg "refl.field_name" ([ obj_ty; i64 ], Some obj_ty) (fun args ->
      Simtime.Env.charge env reflection_call_ns;
      let mt = mt_of args.(0) in
      let idx =
        match args.(1) with
        | Il.V_int v -> Int64.to_int v
        | Il.V_float _ | Il.V_ref _ ->
            raise (Interp.Runtime_error "refl.field_name: bad index")
      in
      match Classes.field_by_index mt idx with
      | fd -> Some (Il.V_ref (alloc_string fd.Classes.f_name))
      | exception Invalid_argument _ ->
          raise (Interp.Runtime_error "refl.field_name: index out of range"));
  reg "refl.is_transportable" ([ obj_ty; i64 ], Some i64) (fun args ->
      Simtime.Env.charge env reflection_call_ns;
      let mt = mt_of args.(0) in
      let idx =
        match args.(1) with
        | Il.V_int v -> Int64.to_int v
        | Il.V_float _ | Il.V_ref _ ->
            raise (Interp.Runtime_error "refl.is_transportable: bad index")
      in
      match Classes.field_by_index mt idx with
      | fd ->
          Some (Il.V_int (if fd.Classes.f_transportable then 1L else 0L))
      | exception Invalid_argument _ ->
          raise
            (Interp.Runtime_error "refl.is_transportable: index out of range"));
  reg "refl.is_array" ([ obj_ty ], Some i64) (fun args ->
      Simtime.Env.charge env reflection_call_ns;
      Some
        (Il.V_int
           (match (mt_of args.(0)).Classes.c_kind with
           | Classes.K_array _ | Classes.K_md_array _ -> 1L
           | Classes.K_class -> 0L)))
