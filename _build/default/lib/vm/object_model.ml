exception Managed_error of string

type obj = Gc.Handle.t

let err fmt = Format.kasprintf (fun s -> raise (Managed_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Allocation                                                          *)
(* ------------------------------------------------------------------ *)

let alloc_instance gc (mt : Classes.method_table) =
  (match mt.Classes.c_kind with
  | Classes.K_class -> ()
  | Classes.K_array _ | Classes.K_md_array _ ->
      err "alloc_instance: %s is an array class" mt.Classes.c_name);
  let addr = Gc.alloc gc ~mt ~data_bytes:mt.Classes.c_instance_size in
  Gc.Handle.alloc gc addr

let alloc_array gc elem len =
  if len < 0 then err "alloc_array: negative length %d" len;
  let mt = Classes.array_class (Gc.registry gc) elem in
  let data_bytes = 4 + (len * Types.elem_size elem) in
  let addr = Gc.alloc gc ~mt ~data_bytes in
  let h = Gc.heap gc in
  Heap.set_i32 h (Heap.data_of addr) len;
  Gc.Handle.alloc gc addr

let alloc_md_array gc elem dims =
  let rank = Array.length dims in
  if rank < 2 then err "alloc_md_array: rank must be >= 2";
  Array.iter (fun d -> if d < 0 then err "alloc_md_array: negative dim") dims;
  let mt = Classes.md_array_class (Gc.registry gc) elem ~rank in
  let n = Array.fold_left ( * ) 1 dims in
  let data_bytes = (4 * rank) + (n * Types.elem_size elem) in
  let addr = Gc.alloc gc ~mt ~data_bytes in
  let h = Gc.heap gc in
  Array.iteri
    (fun i d -> Heap.set_i32 h (Heap.data_of addr + (4 * i)) d)
    dims;
  Gc.Handle.alloc gc addr

let null gc = Gc.Handle.alloc gc Heap.null
let free gc o = Gc.Handle.free gc o
let is_null gc o = Gc.Handle.is_null gc o
let addr_of gc o = Gc.Handle.get gc o
let class_of gc o = Gc.method_table_of gc (addr_of gc o)
let same_object gc a b = addr_of gc a = addr_of gc b

(* ------------------------------------------------------------------ *)
(* Instance fields                                                     *)
(* ------------------------------------------------------------------ *)

let field_slot gc o (fd : Classes.field_desc) =
  let addr = addr_of gc o in
  if addr = Heap.null then raise Gc.Null_reference;
  let mt = Gc.method_table_of gc addr in
  (match mt.Classes.c_kind with
  | Classes.K_class -> ()
  | Classes.K_array _ | Classes.K_md_array _ ->
      err "field access on array %s" mt.Classes.c_name);
  if
    fd.Classes.f_index >= Array.length mt.Classes.c_fields
    || mt.Classes.c_fields.(fd.Classes.f_index) != fd
  then
    err "field %s does not belong to class %s" fd.Classes.f_name
      mt.Classes.c_name;
  Heap.data_of addr + fd.Classes.f_offset

let get_int gc o fd =
  let h = Gc.heap gc in
  let slot = field_slot gc o fd in
  match fd.Classes.f_type with
  | Types.Prim Types.I1 ->
      let v = Heap.get_u8 h slot in
      if v > 127 then v - 256 else v
  | Types.Prim Types.Bool -> Heap.get_u8 h slot
  | Types.Prim Types.Char -> Heap.get_i16 h slot land 0xffff
  | Types.Prim Types.I2 -> Heap.get_i16 h slot
  | Types.Prim Types.I4 -> Heap.get_i32 h slot
  | Types.Prim Types.I8 -> Int64.to_int (Heap.get_i64 h slot)
  | Types.Prim (Types.R4 | Types.R8) | Types.Ref _ ->
      err "get_int: field %s is not integral" fd.Classes.f_name

let set_int gc o fd v =
  let h = Gc.heap gc in
  let slot = field_slot gc o fd in
  match fd.Classes.f_type with
  | Types.Prim (Types.I1 | Types.Bool) -> Heap.set_u8 h slot (v land 0xff)
  | Types.Prim (Types.I2 | Types.Char) -> Heap.set_i16 h slot v
  | Types.Prim Types.I4 -> Heap.set_i32 h slot v
  | Types.Prim Types.I8 -> Heap.set_i64 h slot (Int64.of_int v)
  | Types.Prim (Types.R4 | Types.R8) | Types.Ref _ ->
      err "set_int: field %s is not integral" fd.Classes.f_name

let get_int64 gc o fd =
  let h = Gc.heap gc in
  let slot = field_slot gc o fd in
  match fd.Classes.f_type with
  | Types.Prim Types.I8 -> Heap.get_i64 h slot
  | _ -> Int64.of_int (get_int gc o fd)

let set_int64 gc o fd v =
  let h = Gc.heap gc in
  let slot = field_slot gc o fd in
  match fd.Classes.f_type with
  | Types.Prim Types.I8 -> Heap.set_i64 h slot v
  | _ -> set_int gc o fd (Int64.to_int v)

let get_float gc o fd =
  let h = Gc.heap gc in
  let slot = field_slot gc o fd in
  match fd.Classes.f_type with
  | Types.Prim Types.R4 -> Heap.get_f32 h slot
  | Types.Prim Types.R8 -> Heap.get_f64 h slot
  | _ -> err "get_float: field %s is not floating" fd.Classes.f_name

let set_float gc o fd v =
  let h = Gc.heap gc in
  let slot = field_slot gc o fd in
  match fd.Classes.f_type with
  | Types.Prim Types.R4 -> Heap.set_f32 h slot v
  | Types.Prim Types.R8 -> Heap.set_f64 h slot v
  | _ -> err "set_float: field %s is not floating" fd.Classes.f_name

let ref_field_slot gc o fd =
  match fd.Classes.f_type with
  | Types.Ref _ -> field_slot gc o fd
  | Types.Prim _ -> err "field %s is not a reference" fd.Classes.f_name

let get_ref_addr gc o fd = Heap.get_ref (Gc.heap gc) (ref_field_slot gc o fd)

let get_ref gc o fd =
  let a = get_ref_addr gc o fd in
  if a = Heap.null then None else Some (Gc.Handle.alloc gc a)

let check_assignable gc ~slot_class ~value_addr =
  if value_addr <> Heap.null then begin
    let vmt = Gc.method_table_of gc value_addr in
    let obj_id = (Classes.object_class (Gc.registry gc)).Classes.c_id in
    if slot_class <> obj_id && vmt.Classes.c_id <> slot_class then
      err "type mismatch: cannot store %s into a ref<%d> slot"
        vmt.Classes.c_name slot_class
  end

let set_ref gc o fd value =
  let h = Gc.heap gc in
  let slot = ref_field_slot gc o fd in
  let value_addr =
    match value with None -> Heap.null | Some v -> addr_of gc v
  in
  (match fd.Classes.f_type with
  | Types.Ref cid -> check_assignable gc ~slot_class:cid ~value_addr
  | Types.Prim _ -> assert false);
  Heap.set_ref_raw h slot value_addr;
  Gc.record_write gc ~container:(addr_of gc o) ~value:value_addr ~slot

(* ------------------------------------------------------------------ *)
(* Arrays                                                              *)
(* ------------------------------------------------------------------ *)

let array_info gc o =
  let addr = addr_of gc o in
  if addr = Heap.null then raise Gc.Null_reference;
  let mt = Gc.method_table_of gc addr in
  let h = Gc.heap gc in
  let data = Heap.data_of addr in
  match mt.Classes.c_kind with
  | Classes.K_array elem ->
      let len = Heap.get_i32 h data in
      (addr, elem, len, data + 4)
  | Classes.K_md_array (elem, rank) ->
      let n = ref 1 in
      for d = 0 to rank - 1 do
        n := !n * Heap.get_i32 h (data + (4 * d))
      done;
      (addr, elem, !n, data + (4 * rank))
  | Classes.K_class -> err "%s is not an array" mt.Classes.c_name

let array_length gc o =
  let _, _, len, _ = array_info gc o in
  len

let array_elem_type gc o =
  let _, elem, _, _ = array_info gc o in
  elem

let elem_slot gc o i =
  let _, elem, len, base = array_info gc o in
  if i < 0 || i >= len then err "array index %d out of bounds [0,%d)" i len;
  (elem, base + (i * Types.elem_size elem))

let get_elem_int gc o i =
  let h = Gc.heap gc in
  match elem_slot gc o i with
  | Types.Eprim Types.I1, s ->
      let v = Heap.get_u8 h s in
      if v > 127 then v - 256 else v
  | Types.Eprim Types.Bool, s -> Heap.get_u8 h s
  | Types.Eprim Types.Char, s -> Heap.get_i16 h s land 0xffff
  | Types.Eprim Types.I2, s -> Heap.get_i16 h s
  | Types.Eprim Types.I4, s -> Heap.get_i32 h s
  | Types.Eprim Types.I8, s -> Int64.to_int (Heap.get_i64 h s)
  | (Types.Eprim (Types.R4 | Types.R8) | Types.Eref _), _ ->
      err "get_elem_int: not an integral array"

let set_elem_int gc o i v =
  let h = Gc.heap gc in
  match elem_slot gc o i with
  | Types.Eprim (Types.I1 | Types.Bool), s -> Heap.set_u8 h s (v land 0xff)
  | Types.Eprim (Types.I2 | Types.Char), s -> Heap.set_i16 h s v
  | Types.Eprim Types.I4, s -> Heap.set_i32 h s v
  | Types.Eprim Types.I8, s -> Heap.set_i64 h s (Int64.of_int v)
  | (Types.Eprim (Types.R4 | Types.R8) | Types.Eref _), _ ->
      err "set_elem_int: not an integral array"

let get_elem_int64 gc o i =
  match elem_slot gc o i with
  | Types.Eprim Types.I8, s -> Heap.get_i64 (Gc.heap gc) s
  | _ -> Int64.of_int (get_elem_int gc o i)

let set_elem_int64 gc o i v =
  match elem_slot gc o i with
  | Types.Eprim Types.I8, s -> Heap.set_i64 (Gc.heap gc) s v
  | _ -> set_elem_int gc o i (Int64.to_int v)

let get_elem_float gc o i =
  let h = Gc.heap gc in
  match elem_slot gc o i with
  | Types.Eprim Types.R4, s -> Heap.get_f32 h s
  | Types.Eprim Types.R8, s -> Heap.get_f64 h s
  | _ -> err "get_elem_float: not a floating array"

let set_elem_float gc o i v =
  let h = Gc.heap gc in
  match elem_slot gc o i with
  | Types.Eprim Types.R4, s -> Heap.set_f32 h s v
  | Types.Eprim Types.R8, s -> Heap.set_f64 h s v
  | _ -> err "set_elem_float: not a floating array"

let get_elem_ref gc o i =
  match elem_slot gc o i with
  | Types.Eref _, s ->
      let a = Heap.get_ref (Gc.heap gc) s in
      if a = Heap.null then None else Some (Gc.Handle.alloc gc a)
  | Types.Eprim _, _ -> err "get_elem_ref: not a reference array"

let set_elem_ref gc o i value =
  match elem_slot gc o i with
  | Types.Eref cid, s ->
      let value_addr =
        match value with None -> Heap.null | Some v -> addr_of gc v
      in
      check_assignable gc ~slot_class:cid ~value_addr;
      Heap.set_ref_raw (Gc.heap gc) s value_addr;
      Gc.record_write gc ~container:(addr_of gc o) ~value:value_addr ~slot:s
  | Types.Eprim _, _ -> err "set_elem_ref: not a reference array"

let md_dims gc o =
  let addr = addr_of gc o in
  if addr = Heap.null then raise Gc.Null_reference;
  let mt = Gc.method_table_of gc addr in
  match mt.Classes.c_kind with
  | Classes.K_md_array (_, rank) ->
      let h = Gc.heap gc in
      let data = Heap.data_of addr in
      Array.init rank (fun d -> Heap.get_i32 h (data + (4 * d)))
  | Classes.K_array _ | Classes.K_class ->
      err "%s is not a multidimensional array" mt.Classes.c_name

let md_flat_index gc o idx =
  let dims = md_dims gc o in
  if Array.length idx <> Array.length dims then
    err "md_flat_index: rank mismatch";
  let flat = ref 0 in
  Array.iteri
    (fun d i ->
      if i < 0 || i >= dims.(d) then
        err "md index %d out of bounds [0,%d) in dimension %d" i dims.(d) d;
      flat := (!flat * dims.(d)) + i)
    idx;
  !flat

(* ------------------------------------------------------------------ *)
(* Raw regions                                                         *)
(* ------------------------------------------------------------------ *)

let data_region gc o =
  let addr = addr_of gc o in
  if addr = Heap.null then raise Gc.Null_reference;
  let h = Gc.heap gc in
  let mt = Gc.method_table_of gc addr in
  let data = Heap.data_of addr in
  match mt.Classes.c_kind with
  | Classes.K_class -> (data, mt.Classes.c_instance_size)
  | Classes.K_array elem ->
      let len = Heap.get_i32 h data in
      (data, 4 + (len * Types.elem_size elem))
  | Classes.K_md_array (elem, rank) ->
      let n = ref 1 in
      for d = 0 to rank - 1 do
        n := !n * Heap.get_i32 h (data + (4 * d))
      done;
      (data, (4 * rank) + (!n * Types.elem_size elem))

let payload_region gc o =
  let addr = addr_of gc o in
  if addr = Heap.null then raise Gc.Null_reference;
  let h = Gc.heap gc in
  let mt = Gc.method_table_of gc addr in
  let data = Heap.data_of addr in
  match mt.Classes.c_kind with
  | Classes.K_class -> (data, mt.Classes.c_instance_size)
  | Classes.K_array elem ->
      let len = Heap.get_i32 h data in
      (data + 4, len * Types.elem_size elem)
  | Classes.K_md_array (elem, rank) ->
      let n = ref 1 in
      for d = 0 to rank - 1 do
        n := !n * Heap.get_i32 h (data + (4 * d))
      done;
      (data + (4 * rank), !n * Types.elem_size elem)

let elem_region gc o ~offset ~count =
  let _, elem, len, base = array_info gc o in
  if offset < 0 || count < 0 || offset + count > len then
    err "array range [%d,%d) out of bounds [0,%d)" offset (offset + count)
      len;
  let esz = Types.elem_size elem in
  (base + (offset * esz), count * esz)

let fill_array_bytes gc o bytes =
  let _, elem, _, _ = array_info gc o in
  if Types.elem_is_ref elem then err "fill_array_bytes: reference array";
  let addr, len = payload_region gc o in
  if Bytes.length bytes <> len then
    err "fill_array_bytes: size mismatch (%d vs %d)" (Bytes.length bytes) len;
  Heap.blit_in (Gc.heap gc) ~src:bytes ~src_off:0 ~dst:addr ~len

let read_array_bytes gc o =
  let _, elem, _, _ = array_info gc o in
  if Types.elem_is_ref elem then err "read_array_bytes: reference array";
  let addr, len = payload_region gc o in
  let b = Bytes.create len in
  Heap.blit_out (Gc.heap gc) ~src:addr ~dst:b ~dst_off:0 ~len;
  b
