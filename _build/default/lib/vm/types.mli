(** The managed type system: primitives, element types and field types.

    Mirrors the CLI's common type system at the granularity Motor needs:
    simple value types, object references, 1-D arrays and true
    multidimensional arrays (the paper chose the CLI over Java precisely for
    the latter, Section 3). *)

type prim = I1 | I2 | I4 | I8 | R4 | R8 | Bool | Char

type class_id = int
(** Index into the class registry. 0 is never a valid class id. *)

(** Array element types. *)
type elem = Eprim of prim | Eref of class_id

(** Field / local / parameter types. *)
type field_type = Prim of prim | Ref of class_id

val prim_size : prim -> int
(** Storage size in bytes. [Char] is 2 bytes, as in the CLI. *)

val elem_size : elem -> int
(** Element storage size; references are 4 bytes (32-bit managed heap). *)

val field_size : field_type -> int
val ref_size : int
val prim_name : prim -> string
val elem_is_ref : elem -> bool
val equal_field_type : field_type -> field_type -> bool
val pp_prim : Format.formatter -> prim -> unit
val pp_field_type : Format.formatter -> field_type -> unit
