(** Runtime class model: [FieldDesc], [MethodTable] and the class registry.

    These mirror the SSCLI structures the paper manipulates (Section 5.3):
    every object holds a reference to its MethodTable; each field is
    described by a FieldDesc. Motor's serializer relies on a spare
    {e Transportable} bit stored directly on the FieldDesc so that traversal
    does not have to touch slow type metadata (Section 7.5) — we model that
    bit as [f_transportable]. *)

type field_desc = {
  f_name : string;
  f_type : Types.field_type;
  f_offset : int;  (** byte offset within instance data *)
  f_index : int;
  mutable f_transportable : bool;
      (** the Transportable bit on the FieldDesc *)
}

type kind =
  | K_class
  | K_array of Types.elem  (** 1-D zero-based array *)
  | K_md_array of Types.elem * int  (** element type and rank (>= 2) *)

type method_table = {
  c_id : Types.class_id;
  c_name : string;
  c_kind : kind;
  c_fields : field_desc array;  (** empty for arrays *)
  c_instance_size : int;  (** instance data bytes (excl. header); 0 for arrays *)
  c_ref_offsets : int array;  (** ref-field offsets, for GC tracing *)
  c_has_refs : bool;
      (** true if any field holds an object reference (arrays: ref elems) *)
  c_transportable : bool ref;
      (** class-level Transportable attribute (opt-in, Section 4.2.2) *)
}

type t
(** The class registry of one runtime instance. *)

val create : unit -> t
(** Fresh registry containing only [System.Object]. *)

val object_class : t -> method_table
(** The root class, id 1, no fields. *)

val define :
  t ->
  name:string ->
  ?transportable:bool ->
  fields:(string * Types.field_type * bool) list ->
  unit ->
  method_table
(** [define t ~name ~fields ()] lays out and registers a class. Each field is
    [(name, type, transportable)]. Fields are packed in declaration order at
    naturally aligned offsets. Raises [Invalid_argument] on duplicate class
    or field names. *)

val declare : t -> name:string -> Types.class_id
(** Reserve an id for a class whose fields are not known yet (forward
    references between classes, e.g. a linked-list node). The placeholder
    has no fields; {!complete} must be called before any instance is
    allocated. Declaring an already-known name returns its id. *)

val complete :
  t ->
  Types.class_id ->
  ?transportable:bool ->
  fields:(string * Types.field_type * bool) list ->
  unit ->
  method_table
(** Fill in a declared class. Raises [Invalid_argument] if the id was not
    produced by {!declare} or was already completed. *)

val array_class : t -> Types.elem -> method_table
(** Interned 1-D array class for the element type. *)

val md_array_class : t -> Types.elem -> rank:int -> method_table
(** Interned multidimensional array class; [rank >= 2]. *)

val find : t -> Types.class_id -> method_table
(** Raises [Not_found] for an unknown id. *)

val find_by_name : t -> string -> method_table option
val field : method_table -> string -> field_desc
(** Raises [Not_found]. *)

val field_by_index : method_table -> int -> field_desc
val set_transportable : method_table -> string -> bool -> unit
val class_count : t -> int
val elem_name : t -> Types.elem -> string
val iter : t -> (method_table -> unit) -> unit
