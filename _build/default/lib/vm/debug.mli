(** Heap inspection: walk the generations and describe every object.

    Debugging aid (think SOS's DumpHeap): per-object address, generation,
    class, size and flags, plus aggregate statistics per class. *)

type object_info = {
  addr : Heap.addr;
  generation : [ `Young | `Elder ];
  class_name : string;
  total_bytes : int;
  pinned : bool;
  marked : bool;
}

val objects : Gc.t -> object_info list
(** Every live-or-not-yet-swept object, address order per generation. *)

val class_histogram : Gc.t -> (string * int * int) list
(** (class name, object count, total bytes), sorted by bytes descending. *)

val pp_heap : Format.formatter -> Gc.t -> unit
(** Object table followed by the histogram and generation totals. *)
