(** Base system-library internal calls.

    The CLI's System library is largely implemented inside the runtime and
    surfaced through InternalCall/FCall gateways (paper Section 5.1). This
    module registers the non-MPI part of that surface: console output, the
    virtual clock and explicit GC control. The message-passing internal
    calls ([mp.*]) are registered by the Motor library on top. *)

val register : Interp.t -> env:Simtime.Env.t -> out:Buffer.t -> unit
(** Registers:
    - [sys.print_i : int64 -> void] — print an integer
    - [sys.print_f : float64 -> void] — print a float
    - [sys.print_c : char -> void] — print a character
    - [sys.print_str : object -> void] — print a char array (see the
      assembler's [ldstr])
    - [sys.print_nl : void] — newline
    - [sys.clock_us : -> int64] — virtual time in microseconds
    - [sys.gc_collect : int32 -> void] — force a collection (0 minor, 1 full)
    - [sys.gc_count : -> int64] — total collections so far
    - [sys.heap_young_used : -> int64], [sys.heap_elder_used : -> int64]

    and the reflection library (metadata access, priced as the slow path
    the paper's serializer avoids):
    - [refl.class_name : object -> object] — char array of the class name
    - [refl.field_count : object -> int64]
    - [refl.field_name : object -> int64 -> object]
    - [refl.is_transportable : object -> int64 -> int64]
    - [refl.is_array : object -> int64] *)
