type prim = I1 | I2 | I4 | I8 | R4 | R8 | Bool | Char
type class_id = int
type elem = Eprim of prim | Eref of class_id
type field_type = Prim of prim | Ref of class_id

let prim_size = function
  | I1 | Bool -> 1
  | I2 | Char -> 2
  | I4 | R4 -> 4
  | I8 | R8 -> 8

let ref_size = 4

let elem_size = function Eprim p -> prim_size p | Eref _ -> ref_size
let field_size = function Prim p -> prim_size p | Ref _ -> ref_size

let prim_name = function
  | I1 -> "int8"
  | I2 -> "int16"
  | I4 -> "int32"
  | I8 -> "int64"
  | R4 -> "float32"
  | R8 -> "float64"
  | Bool -> "bool"
  | Char -> "char"

let elem_is_ref = function Eref _ -> true | Eprim _ -> false

let equal_field_type a b =
  match (a, b) with
  | Prim p, Prim q -> p = q
  | Ref c, Ref d -> c = d
  | Prim _, Ref _ | Ref _, Prim _ -> false

let pp_prim ppf p = Format.pp_print_string ppf (prim_name p)

let pp_field_type ppf = function
  | Prim p -> pp_prim ppf p
  | Ref c -> Format.fprintf ppf "ref<%d>" c
