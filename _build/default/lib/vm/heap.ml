type addr = int

let null = 0
let header_bytes = 16
let alignment = 16

exception Out_of_memory

type block_state = Free | Young | Elder

type t = {
  env : Simtime.Env.t;
  mem : Bytes.t;
  block : int;
  arena : int;
  states : block_state array;
  mutable young_base : int;
  mutable young_ptr : int;
  mutable young_limit : int;
  mutable regions : (int * int) list;  (* elder regions: (base, bytes) *)
  mutable free_list : (int * int) list;  (* elder free chunks: (addr, bytes) *)
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ?(arena_bytes = 32 * 1024 * 1024) ?(block_bytes = 256 * 1024) env =
  if not (is_power_of_two block_bytes) || block_bytes < 4096 then
    invalid_arg "Heap.create: block_bytes must be a power of two >= 4096";
  if arena_bytes mod block_bytes <> 0 || arena_bytes < 2 * block_bytes then
    invalid_arg "Heap.create: arena_bytes must be a multiple of block_bytes";
  let n_blocks = arena_bytes / block_bytes in
  let states = Array.make n_blocks Free in
  (* Block 0 is wasted so that address 0 can serve as null: the young block
     starts at block 1. *)
  states.(0) <- Elder;
  states.(1) <- Young;
  {
    env;
    mem = Bytes.make arena_bytes '\000';
    block = block_bytes;
    arena = arena_bytes;
    states;
    young_base = block_bytes;
    young_ptr = block_bytes;
    young_limit = 2 * block_bytes;
    regions = [];
    free_list = [];
  }

let env t = t.env
let mem t = t.mem
let block_bytes t = t.block
let arena_bytes t = t.arena

(* Header accessors. *)

let flag_mark = 1
let flag_pinned = 2
let flag_forwarded = 4

let get_i32 t a = Int32.to_int (Bytes.get_int32_le t.mem a)
let set_i32 t a v = Bytes.set_int32_le t.mem a (Int32.of_int v)
let mt_id t a = get_i32 t a
let set_mt_id t a v = set_i32 t a v
let flags t a = get_i32 t (a + 4)
let set_flags t a v = set_i32 t (a + 4) v
let size_of t a = get_i32 t (a + 8)
let set_size t a v = set_i32 t (a + 8) v
let aux t a = get_i32 t (a + 12)
let set_aux t a v = set_i32 t (a + 12) v
let is_free_chunk t a = mt_id t a = 0
let is_marked t a = flags t a land flag_mark <> 0

let set_bit t a bit on =
  let f = flags t a in
  set_flags t a (if on then f lor bit else f land lnot bit)

let set_marked t a on = set_bit t a flag_mark on
let is_pinned_flag t a = flags t a land flag_pinned <> 0
let set_pinned_flag t a on = set_bit t a flag_pinned on
let is_forwarded t a = flags t a land flag_forwarded <> 0
let forward_of t a = aux t a

let set_forward t a dst =
  set_bit t a flag_forwarded true;
  set_aux t a dst

let data_of a = a + header_bytes

(* Raw typed access. *)

let get_u8 t a = Char.code (Bytes.get t.mem a)
let set_u8 t a v = Bytes.set t.mem a (Char.chr (v land 0xff))
let get_i16 t a = Bytes.get_int16_le t.mem a
let set_i16 t a v = Bytes.set_int16_le t.mem a v
let get_i64 t a = Bytes.get_int64_le t.mem a
let set_i64 t a v = Bytes.set_int64_le t.mem a v
let get_f32 t a = Int32.float_of_bits (Bytes.get_int32_le t.mem a)
let set_f32 t a v = Bytes.set_int32_le t.mem a (Int32.bits_of_float v)
let get_f64 t a = Int64.float_of_bits (Bytes.get_int64_le t.mem a)
let set_f64 t a v = Bytes.set_int64_le t.mem a (Int64.bits_of_float v)
let get_ref t a = get_i32 t a
let set_ref_raw t a v = set_i32 t a v

let blit_in t ~src ~src_off ~dst ~len = Bytes.blit src src_off t.mem dst len
let blit_out t ~src ~dst ~dst_off ~len = Bytes.blit t.mem src dst dst_off len
let blit_within t ~src ~dst ~len = Bytes.blit t.mem src t.mem dst len

(* Generations and allocation. *)

let align n = (n + alignment - 1) land lnot (alignment - 1)
let total_size_for ~data_bytes = align (header_bytes + data_bytes)
let in_young t a = a >= t.young_base && a < t.young_ptr
let young_used t = t.young_ptr - t.young_base
let young_capacity t = t.young_limit - t.young_base

let elder_used t =
  let total = List.fold_left (fun acc (_, len) -> acc + len) 0 t.regions in
  let free = List.fold_left (fun acc (_, sz) -> acc + sz) 0 t.free_list in
  total - free

let install_header t a ~mt ~total =
  set_mt_id t a mt;
  set_flags t a 0;
  set_size t a total;
  set_aux t a 0;
  Bytes.fill t.mem (a + header_bytes) (total - header_bytes) '\000'

let try_alloc_young t ~mt ~data_bytes =
  let total = total_size_for ~data_bytes in
  if t.young_ptr + total > t.young_limit then None
  else begin
    let a = t.young_ptr in
    t.young_ptr <- a + total;
    install_header t a ~mt ~total;
    Some a
  end

let write_free_chunk t a size =
  set_mt_id t a 0;
  set_flags t a 0;
  set_size t a size;
  set_aux t a 0

(* Find [n] contiguous Free blocks and turn them into a new elder region
   backed by one free chunk. *)
let acquire_region t n_blocks =
  let n = Array.length t.states in
  let rec scan i run =
    if i >= n then None
    else if t.states.(i) = Free then
      if run + 1 = n_blocks then Some (i - run) else scan (i + 1) (run + 1)
    else scan (i + 1) 0
  in
  match scan 0 0 with
  | None -> false
  | Some first ->
      for i = first to first + n_blocks - 1 do
        t.states.(i) <- Elder
      done;
      let base = first * t.block in
      let len = n_blocks * t.block in
      t.regions <- (base, len) :: t.regions;
      write_free_chunk t base len;
      t.free_list <- (base, len) :: t.free_list;
      true

let alloc_from_free_list t ~mt ~total =
  let rec take acc = function
    | [] -> None
    | (a, sz) :: rest when sz >= total ->
        let remainder = sz - total in
        let rest =
          if remainder >= header_bytes then begin
            write_free_chunk t (a + total) remainder;
            (a + total, remainder) :: rest
          end
          else rest
        in
        let total = if remainder >= header_bytes then total else sz in
        install_header t a ~mt ~total;
        t.free_list <- List.rev_append acc rest;
        Some a
    | chunk :: rest -> take (chunk :: acc) rest
  in
  take [] t.free_list

let try_alloc_elder t ~mt ~data_bytes =
  let total = total_size_for ~data_bytes in
  match alloc_from_free_list t ~mt ~total with
  | Some a -> Some a
  | None ->
      let blocks_needed = (total + t.block - 1) / t.block in
      if acquire_region t blocks_needed then alloc_from_free_list t ~mt ~total
      else None

let reset_young t = t.young_ptr <- t.young_base

let promote_young_block t =
  let tail = t.young_limit - t.young_ptr in
  if tail >= header_bytes then begin
    write_free_chunk t t.young_ptr tail;
    t.free_list <- (t.young_ptr, tail) :: t.free_list
  end;
  let idx = t.young_base / t.block in
  t.states.(idx) <- Elder;
  t.regions <- (t.young_base, t.block) :: t.regions;
  (* Install a fresh young block. *)
  let n = Array.length t.states in
  let rec find i = if i >= n then None else
      if t.states.(i) = Free then Some i else find (i + 1)
  in
  match find 0 with
  | None -> raise Out_of_memory
  | Some i ->
      t.states.(i) <- Young;
      t.young_base <- i * t.block;
      t.young_ptr <- t.young_base;
      t.young_limit <- t.young_base + t.block

let free_object t a =
  let size = size_of t a in
  write_free_chunk t a size;
  t.free_list <- (a, size) :: t.free_list

let iter_young t f =
  let p = ref t.young_base in
  while !p < t.young_ptr do
    let size = size_of t !p in
    let a = !p in
    p := !p + size;
    f a
  done

let sorted_regions t =
  List.sort (fun (a, _) (b, _) -> compare a b) t.regions

let iter_elder t f =
  List.iter
    (fun (base, len) ->
      let p = ref base in
      while !p < base + len do
        let size = size_of t !p in
        let a = !p in
        p := !p + size;
        if mt_id t a <> 0 then f a
      done)
    (sorted_regions t)

let sweep_elder t ~keep =
  let freed = ref 0 in
  let new_free = ref [] in
  let flush_run run_start run_end =
    if run_end > run_start then begin
      let size = run_end - run_start in
      write_free_chunk t run_start size;
      new_free := (run_start, size) :: !new_free
    end
  in
  List.iter
    (fun (base, len) ->
      let p = ref base in
      let run_start = ref (-1) in
      while !p < base + len do
        let a = !p in
        let size = size_of t a in
        p := !p + size;
        let dead =
          is_free_chunk t a || is_forwarded t a || not (keep a)
        in
        if dead then begin
          if not (is_free_chunk t a) then freed := !freed + size;
          if !run_start < 0 then run_start := a
        end
        else begin
          if !run_start >= 0 then flush_run !run_start a;
          run_start := -1
        end
      done;
      if !run_start >= 0 then flush_run !run_start (base + len))
    (sorted_regions t);
  t.free_list <- !new_free;
  !freed

let check_consistency t =
  let check_span what base stop =
    let p = ref base in
    while !p < stop do
      let size = size_of t !p in
      if size < header_bytes || size mod alignment <> 0 then
        failwith
          (Printf.sprintf "Heap.check_consistency: bad size %d at %d in %s"
             size !p what);
      p := !p + size
    done;
    if !p <> stop then
      failwith
        (Printf.sprintf "Heap.check_consistency: overrun in %s (%d <> %d)"
           what !p stop)
  in
  check_span "young" t.young_base t.young_ptr;
  List.iter
    (fun (base, len) -> check_span "elder" base (base + len))
    (sorted_regions t)
