type value = V_int of int64 | V_float of float | V_ref of Heap.addr
type vtype = S_int | S_float | S_ref

type instr =
  | Nop
  | Ldc_i of int64
  | Ldc_f of float
  | Ldstr of string
  | Ldnull
  | Ldloc of int
  | Stloc of int
  | Ldarg of int
  | Starg of int
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Neg
  | Fadd
  | Fsub
  | Fmul
  | Fdiv
  | Fneg
  | Conv_i
  | Conv_f
  | Ceq
  | Clt
  | Cgt
  | Fceq
  | Fclt
  | Fcgt
  | Br of int
  | Brtrue of int
  | Brfalse of int
  | Ldfld of Types.class_id * int
  | Stfld of Types.class_id * int
  | Isinst of Types.class_id
  | Newobj of Types.class_id
  | Newarr of Types.elem
  | Ldlen
  | Ldelem of Types.elem
  | Stelem of Types.elem
  | Newmd of Types.elem * int
  | Ldelem_md of Types.elem * int
  | Stelem_md of Types.elem * int
  | Call of int
  | Intcall of string
  | Ret
  | Pop
  | Dup

type mth = {
  m_id : int;
  m_name : string;
  m_params : Types.field_type list;
  m_ret : Types.field_type option;
  m_locals : Types.field_type list;
  m_code : instr array;
}

type program = {
  methods : mth array;
  entry : int;
}

let method_by_name p name =
  Array.to_seq p.methods |> Seq.find (fun m -> m.m_name = name)

let vtype_of_field_type = function
  | Types.Prim (Types.R4 | Types.R8) -> S_float
  | Types.Prim _ -> S_int
  | Types.Ref _ -> S_ref

let default_value = function
  | Types.Prim (Types.R4 | Types.R8) -> V_float 0.0
  | Types.Prim _ -> V_int 0L
  | Types.Ref _ -> V_ref Heap.null

let pp_vtype ppf t =
  Format.pp_print_string ppf
    (match t with S_int -> "int" | S_float -> "float" | S_ref -> "ref")

let pp_instr ppf = function
  | Nop -> Format.pp_print_string ppf "nop"
  | Ldc_i n -> Format.fprintf ppf "ldc.i %Ld" n
  | Ldc_f f -> Format.fprintf ppf "ldc.r %g" f
  | Ldstr s -> Format.fprintf ppf "ldstr %S" s
  | Ldnull -> Format.pp_print_string ppf "ldnull"
  | Ldloc i -> Format.fprintf ppf "ldloc %d" i
  | Stloc i -> Format.fprintf ppf "stloc %d" i
  | Ldarg i -> Format.fprintf ppf "ldarg %d" i
  | Starg i -> Format.fprintf ppf "starg %d" i
  | Add -> Format.pp_print_string ppf "add"
  | Sub -> Format.pp_print_string ppf "sub"
  | Mul -> Format.pp_print_string ppf "mul"
  | Div -> Format.pp_print_string ppf "div"
  | Rem -> Format.pp_print_string ppf "rem"
  | Neg -> Format.pp_print_string ppf "neg"
  | Fadd -> Format.pp_print_string ppf "fadd"
  | Fsub -> Format.pp_print_string ppf "fsub"
  | Fmul -> Format.pp_print_string ppf "fmul"
  | Fdiv -> Format.pp_print_string ppf "fdiv"
  | Fneg -> Format.pp_print_string ppf "fneg"
  | Conv_i -> Format.pp_print_string ppf "conv.i"
  | Conv_f -> Format.pp_print_string ppf "conv.r"
  | Ceq -> Format.pp_print_string ppf "ceq"
  | Clt -> Format.pp_print_string ppf "clt"
  | Cgt -> Format.pp_print_string ppf "cgt"
  | Fceq -> Format.pp_print_string ppf "fceq"
  | Fclt -> Format.pp_print_string ppf "fclt"
  | Fcgt -> Format.pp_print_string ppf "fcgt"
  | Br l -> Format.fprintf ppf "br %d" l
  | Brtrue l -> Format.fprintf ppf "brtrue %d" l
  | Brfalse l -> Format.fprintf ppf "brfalse %d" l
  | Ldfld (c, f) -> Format.fprintf ppf "ldfld %d:%d" c f
  | Stfld (c, f) -> Format.fprintf ppf "stfld %d:%d" c f
  | Isinst c -> Format.fprintf ppf "isinst %d" c
  | Newobj c -> Format.fprintf ppf "newobj %d" c
  | Newarr _ -> Format.pp_print_string ppf "newarr"
  | Ldlen -> Format.pp_print_string ppf "ldlen"
  | Ldelem _ -> Format.pp_print_string ppf "ldelem"
  | Stelem _ -> Format.pp_print_string ppf "stelem"
  | Newmd (_, r) -> Format.fprintf ppf "newmd/%d" r
  | Ldelem_md (_, r) -> Format.fprintf ppf "ldelem.md/%d" r
  | Stelem_md (_, r) -> Format.fprintf ppf "stelem.md/%d" r
  | Call m -> Format.fprintf ppf "call %d" m
  | Intcall s -> Format.fprintf ppf "intcall %s" s
  | Ret -> Format.pp_print_string ppf "ret"
  | Pop -> Format.pp_print_string ppf "pop"
  | Dup -> Format.pp_print_string ppf "dup"

let pp_method ppf m =
  Format.fprintf ppf ".method %s  (%d params, %d locals)@." m.m_name
    (List.length m.m_params) (List.length m.m_locals);
  Array.iteri
    (fun pc instr -> Format.fprintf ppf "  %4d: %a@." pc pp_instr instr)
    m.m_code

let pp_program ppf p =
  Array.iter
    (fun m ->
      pp_method ppf m;
      Format.pp_print_newline ppf ())
    p.methods;
  Format.fprintf ppf "entry: %s@." p.methods.(p.entry).m_name
