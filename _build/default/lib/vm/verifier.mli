(** Static bytecode verification.

    Abstract interpretation of each method's stack: every instruction's
    operand types are checked, merge points must agree on stack shape, and
    fallthrough past the end of a method is rejected. Programs that verify
    cannot underflow the evaluation stack or confuse references with
    numbers at runtime — the VM-level half of the safety argument the paper
    makes for running MPI applications on a managed runtime. *)

exception Verify_error of string

type intcall_sig = Types.field_type list * Types.field_type option
(** Parameter types and optional result type of an internal call. *)

val verify_method :
  Classes.t ->
  Il.program ->
  intcall:(string -> intcall_sig option) ->
  Il.mth ->
  unit
(** Raises {!Verify_error} with a diagnostic naming the method and program
    counter on the first violation. *)

val verify_program :
  Classes.t -> Il.program -> intcall:(string -> intcall_sig option) -> unit
