type t = {
  env : Simtime.Env.t;
  registry : Classes.t;
  heap : Heap.t;
  gc : Gc.t;
  out : Buffer.t;
}

let create ?arena_bytes ?block_bytes ?cost ?env () =
  let env =
    match env with
    | Some e -> e
    | None -> Simtime.Env.create ?cost ()
  in
  let heap = Heap.create ?arena_bytes ?block_bytes env in
  let registry = Classes.create () in
  let gc = Gc.create heap registry in
  { env; registry; heap; gc; out = Buffer.create 256 }

let load t ?entry ?(verify = true) src =
  let program = Assembler.assemble t.registry ?entry src in
  let interp = Interp.create t.gc program in
  Syslib.register interp ~env:t.env ~out:t.out;
  if verify then Interp.verify interp;
  interp

let output t = Buffer.contents t.out
