type field_desc = {
  f_name : string;
  f_type : Types.field_type;
  f_offset : int;
  f_index : int;
  mutable f_transportable : bool;
}

type kind =
  | K_class
  | K_array of Types.elem
  | K_md_array of Types.elem * int

type method_table = {
  c_id : Types.class_id;
  c_name : string;
  c_kind : kind;
  c_fields : field_desc array;
  c_instance_size : int;
  c_ref_offsets : int array;
  c_has_refs : bool;
  c_transportable : bool ref;
}

type t = {
  mutable tables : method_table array;  (* index = id - 1 *)
  by_name : (string, method_table) Hashtbl.t;
  array_cache : (Types.elem, method_table) Hashtbl.t;
  md_cache : (Types.elem * int, method_table) Hashtbl.t;
  pending : (Types.class_id, unit) Hashtbl.t;  (* declared, not completed *)
}

let align n a = (n + a - 1) land lnot (a - 1)

let register t mt =
  if Hashtbl.mem t.by_name mt.c_name then
    invalid_arg ("Classes.define: duplicate class " ^ mt.c_name);
  t.tables <- Array.append t.tables [| mt |];
  Hashtbl.add t.by_name mt.c_name mt;
  mt

let layout fields =
  let n_fields = List.length fields in
  let descs = Array.make n_fields None in
  let seen = Hashtbl.create 8 in
  let offset = ref 0 in
  List.iteri
    (fun i (fname, ftype, transp) ->
      if Hashtbl.mem seen fname then
        invalid_arg ("Classes.define: duplicate field " ^ fname);
      Hashtbl.add seen fname ();
      let size = Types.field_size ftype in
      let off = align !offset size in
      offset := off + size;
      descs.(i) <-
        Some
          {
            f_name = fname;
            f_type = ftype;
            f_offset = off;
            f_index = i;
            f_transportable = transp;
          })
    fields;
  let c_fields =
    Array.map (function Some d -> d | None -> assert false) descs
  in
  let ref_offsets =
    Array.to_list c_fields
    |> List.filter_map (fun d ->
           match d.f_type with
           | Types.Ref _ -> Some d.f_offset
           | Types.Prim _ -> None)
    |> Array.of_list
  in
  (c_fields, align !offset 4, ref_offsets)

let make_class t ~name ~transportable ~fields =
  let c_fields, c_instance_size, ref_offsets = layout fields in
  register t
    {
      c_id = Array.length t.tables + 1;
      c_name = name;
      c_kind = K_class;
      c_fields;
      c_instance_size;
      c_ref_offsets = ref_offsets;
      c_has_refs = Array.length ref_offsets > 0;
      c_transportable = ref transportable;
    }

let create () =
  let t =
    {
      tables = [||];
      by_name = Hashtbl.create 64;
      array_cache = Hashtbl.create 16;
      md_cache = Hashtbl.create 8;
      pending = Hashtbl.create 8;
    }
  in
  ignore
    (make_class t ~name:"System.Object" ~transportable:false ~fields:[]);
  t

let declare t ~name =
  match Hashtbl.find_opt t.by_name name with
  | Some mt -> mt.c_id
  | None ->
      let mt =
        register t
          {
            c_id = Array.length t.tables + 1;
            c_name = name;
            c_kind = K_class;
            c_fields = [||];
            c_instance_size = 0;
            c_ref_offsets = [||];
            c_has_refs = false;
            c_transportable = ref false;
          }
      in
      Hashtbl.replace t.pending mt.c_id ();
      mt.c_id

let complete t id ?(transportable = false) ~fields () =
  if not (Hashtbl.mem t.pending id) then
    invalid_arg "Classes.complete: class was not declared (or already done)";
  Hashtbl.remove t.pending id;
  let old = t.tables.(id - 1) in
  let c_fields, c_instance_size, ref_offsets = layout fields in
  let mt =
    {
      c_id = id;
      c_name = old.c_name;
      c_kind = K_class;
      c_fields;
      c_instance_size;
      c_ref_offsets = ref_offsets;
      c_has_refs = Array.length ref_offsets > 0;
      c_transportable = ref transportable;
    }
  in
  t.tables.(id - 1) <- mt;
  Hashtbl.replace t.by_name old.c_name mt;
  mt

let object_class t = t.tables.(0)

let define t ~name ?(transportable = false) ~fields () =
  make_class t ~name ~transportable ~fields

let find t id =
  if id < 1 || id > Array.length t.tables then raise Not_found
  else t.tables.(id - 1)

let find_by_name t name = Hashtbl.find_opt t.by_name name

let elem_name t = function
  | Types.Eprim p -> Types.prim_name p
  | Types.Eref cid -> (
      match find t cid with
      | mt -> mt.c_name
      | exception Not_found -> Printf.sprintf "ref<%d>" cid)

let array_class t elem =
  match Hashtbl.find_opt t.array_cache elem with
  | Some mt -> mt
  | None ->
      let name = elem_name t elem ^ "[]" in
      let mt =
        register t
          {
            c_id = Array.length t.tables + 1;
            c_name = name;
            c_kind = K_array elem;
            c_fields = [||];
            c_instance_size = 0;
            c_ref_offsets = [||];
            c_has_refs = Types.elem_is_ref elem;
            c_transportable = ref true;
          }
      in
      Hashtbl.add t.array_cache elem mt;
      mt

let md_array_class t elem ~rank =
  if rank < 2 then invalid_arg "Classes.md_array_class: rank must be >= 2";
  match Hashtbl.find_opt t.md_cache (elem, rank) with
  | Some mt -> mt
  | None ->
      let commas = String.make (rank - 1) ',' in
      let name = Printf.sprintf "%s[%s]" (elem_name t elem) commas in
      let mt =
        register t
          {
            c_id = Array.length t.tables + 1;
            c_name = name;
            c_kind = K_md_array (elem, rank);
            c_fields = [||];
            c_instance_size = 0;
            c_ref_offsets = [||];
            c_has_refs = Types.elem_is_ref elem;
            c_transportable = ref true;
          }
      in
      Hashtbl.add t.md_cache (elem, rank) mt;
      mt

let field mt name =
  let n = Array.length mt.c_fields in
  let rec go i =
    if i >= n then raise Not_found
    else if mt.c_fields.(i).f_name = name then mt.c_fields.(i)
    else go (i + 1)
  in
  go 0

let field_by_index mt i =
  if i < 0 || i >= Array.length mt.c_fields then
    invalid_arg "Classes.field_by_index";
  mt.c_fields.(i)

let set_transportable mt name v = (field mt name).f_transportable <- v
let class_count t = Array.length t.tables
let iter t f = Array.iter f t.tables
