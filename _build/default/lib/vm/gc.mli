(** Two-generational garbage collector with pinning.

    The collector reproduces the SSCLI design the paper depends on
    (Section 5.2) and the hooks Motor adds to it (Sections 4.3, 7.4):

    - Objects allocate in a young block and are promoted to the elder
      generation when they survive a collection. The young generation is
      copy-collected (compacting); the elder generation is mark-swept and
      {e never} compacted.
    - If any pinned object lives in the young block at collection time, the
      {e whole block} is reassigned to the elder generation, a fresh young
      block is installed, and non-pinned survivors are copied out as usual.
    - {e Conditional pin requests}: a pin that depends on the status of a
      non-blocking transport operation. The collector checks the status
      during the mark phase; an operation still in flight pins its buffer
      for this cycle, a finished one is dropped from the list — the paper's
      answer to "when do we unpin a non-blocking buffer".
    - Explicit root scanners model the SSCLI's programmer-declared protected
      object pointers inside FCalls: roots are updated when objects move.

    Safepoints: collections triggered with {!request_gc} run at the next
    {!poll}, which Motor's FCalls invoke on entry, on exit and inside the
    polling-wait (Section 7.4). Allocation-triggered collections run
    immediately (the allocating thread is at a safe point by construction
    in this single-fiber-per-heap world). *)

type t

exception Null_reference

module Handle : sig
  type gc := t
  type t
  (** A GC-stable indirection to a managed object. Handles are roots: the
      referenced object stays live and the handle is updated when the object
      moves. This models both SSCLI handles and the protected object
      pointers FCalls must declare. *)

  val alloc : gc -> Heap.addr -> t
  val free : gc -> t -> unit
  val get : gc -> t -> Heap.addr
  val set : gc -> t -> Heap.addr -> unit
  val is_null : gc -> t -> bool
  val equal : t -> t -> bool
end

val create : Heap.t -> Classes.t -> t
val heap : t -> Heap.t
val registry : t -> Classes.t

(** {1 Allocation} *)

val alloc : t -> mt:Classes.method_table -> data_bytes:int -> Heap.addr
(** Allocate zeroed storage, collecting as needed. Objects too large for the
    young block go directly to the elder generation. Raises
    [Heap.Out_of_memory] when the arena is exhausted. *)

(** {1 Roots} *)

type scanner_id

val add_scanner : t -> ((Heap.addr -> Heap.addr) -> unit) -> scanner_id
(** [add_scanner gc scan] registers a root enumerator. During collection the
    collector calls [scan visit]; the enumerator must apply [visit] to every
    root slot it owns and store the result back (objects may move). *)

val remove_scanner : t -> scanner_id -> unit

val record_write : t -> container:Heap.addr -> value:Heap.addr -> slot:Heap.addr -> unit
(** Generational write barrier: remembers elder slots that point into the
    young generation. *)

(** {1 Pinning} *)

val pin : t -> Handle.t -> unit
(** Sticky pin (counted): the object will not move until {!unpin} balances
    every {!pin}. *)

val unpin : t -> Handle.t -> unit

val add_conditional_pin : t -> Handle.t -> still_active:(unit -> bool) -> unit
(** Register a mark-phase-resolved pin request for a non-blocking operation
    (paper Section 4.3). While [still_active ()] is true at collection time
    the object is pinned for that cycle; once false the request is dropped. *)

val conditional_pin_count : t -> int
val pinned_count : t -> int

(** {1 Collection} *)

val collect : t -> full:bool -> unit
val request_gc : ?full:bool -> t -> unit
(** Ask for a collection at the next safepoint ({!poll}). *)

val gc_pending : t -> bool
val poll : t -> unit
(** Safepoint: charge the poll cost and run any pending collection. *)

val minor_count : t -> int
val full_count : t -> int

val add_post_gc_hook : t -> (unit -> unit) -> unit
(** Run after every collection (Motor's buffer pool reaps unused unmanaged
    buffers here, Section 7.5). Hooks must not allocate managed memory. *)

val collection_epoch : t -> int
(** Total collections so far (minor + full). *)

(** {1 Introspection (tests, serializer)} *)

val method_table_of : t -> Heap.addr -> Classes.method_table
(** Raises {!Null_reference} on null and [Not_found] on a corrupted
    header. *)

val iter_ref_slots : t -> Heap.addr -> (Heap.addr -> unit) -> unit
(** Apply a function to the absolute address of every reference slot of an
    object (class ref-fields or ref-array elements). *)

val live_objects : t -> int
(** Walk both generations and count live objects (young objects plus
    reachable accounting is approximated by all non-free headers). For
    tests. *)
