type object_info = {
  addr : Heap.addr;
  generation : [ `Young | `Elder ];
  class_name : string;
  total_bytes : int;
  pinned : bool;
  marked : bool;
}

let info gc generation addr =
  let h = Gc.heap gc in
  let class_name =
    match Classes.find (Gc.registry gc) (Heap.mt_id h addr) with
    | mt -> mt.Classes.c_name
    | exception Not_found -> Printf.sprintf "<bad mt %d>" (Heap.mt_id h addr)
  in
  {
    addr;
    generation;
    class_name;
    total_bytes = Heap.size_of h addr;
    pinned = Heap.is_pinned_flag h addr;
    marked = Heap.is_marked h addr;
  }

let objects gc =
  let h = Gc.heap gc in
  let out = ref [] in
  Heap.iter_young h (fun a -> out := info gc `Young a :: !out);
  Heap.iter_elder h (fun a -> out := info gc `Elder a :: !out);
  List.rev !out

let class_histogram gc =
  let table = Hashtbl.create 32 in
  List.iter
    (fun o ->
      let count, bytes =
        Option.value ~default:(0, 0) (Hashtbl.find_opt table o.class_name)
      in
      Hashtbl.replace table o.class_name (count + 1, bytes + o.total_bytes))
    (objects gc);
  Hashtbl.fold (fun name (count, bytes) acc -> (name, count, bytes) :: acc)
    table []
  |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)

let pp_heap ppf gc =
  let h = Gc.heap gc in
  let objs = objects gc in
  Format.fprintf ppf "%8s %-6s %-28s %8s %s@." "addr" "gen" "class" "bytes"
    "flags";
  List.iter
    (fun o ->
      Format.fprintf ppf "%8d %-6s %-28s %8d %s%s@." o.addr
        (match o.generation with `Young -> "young" | `Elder -> "elder")
        o.class_name o.total_bytes
        (if o.pinned then "P" else "")
        (if o.marked then "M" else ""))
    objs;
  Format.fprintf ppf "@.%-28s %8s %10s@." "class" "count" "bytes";
  List.iter
    (fun (name, count, bytes) ->
      Format.fprintf ppf "%-28s %8d %10d@." name count bytes)
    (class_histogram gc);
  Format.fprintf ppf "@.young: %d / %d bytes, elder: %d bytes, %d objects@."
    (Heap.young_used h) (Heap.young_capacity h) (Heap.elder_used h)
    (List.length objs)
