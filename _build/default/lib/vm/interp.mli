(** The MIL interpreter (the execution engine standing in for the JIT).

    Each execution context owns a root scanner: reference values in live
    frames are updated when the collector moves objects, the interpreter
    analogue of jitted code's GC-tracked locals. Safepoint polling happens
    at calls and backward branches, as in the SSCLI (Section 5.2). *)

exception Runtime_error of string
exception Managed_stack_overflow

type t

type intcall_impl = Il.value array -> Il.value option
(** Implementation of an internal call. The argument array is kept
    registered as GC roots while the call runs; implementations that may
    trigger a collection must re-read reference arguments after doing so. *)

val create : ?max_depth:int -> ?fuel:int -> Gc.t -> Il.program -> t
(** [max_depth] bounds the managed call stack (default 1024); [fuel] bounds
    total instructions executed (default unlimited). *)

val gc : t -> Gc.t
val program : t -> Il.program

val register_intcall :
  t -> string -> Verifier.intcall_sig -> intcall_impl -> unit
(** Raises [Invalid_argument] on duplicate names. *)

val intcall_sig : t -> string -> Verifier.intcall_sig option
val verify : t -> unit
(** Verify the whole program against the registered internal calls. *)

val run_entry : t -> Il.value list -> Il.value option
val run : t -> string -> Il.value list -> Il.value option
(** Run a method by name. Raises {!Runtime_error} on managed faults (null
    reference, index out of bounds, division by zero, fuel exhaustion). *)

val instructions_executed : t -> int

val dispose : t -> unit
(** Unregister this context's GC root scanner. *)
