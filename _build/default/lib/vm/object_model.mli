(** Safe, typed access to managed objects.

    All operations go through GC handles, perform bounds and type checks and
    apply the generational write barrier — this layer is what guarantees the
    object-model integrity the paper argues a VM-integrated MPI must not
    break (Section 2.4): a reference slot can only ever hold null or an
    object of a compatible class, and no access can run past the end of an
    object. *)

exception Managed_error of string

type obj = Gc.Handle.t

(** {1 Allocation} *)

val alloc_instance : Gc.t -> Classes.method_table -> obj
val alloc_array : Gc.t -> Types.elem -> int -> obj
(** 1-D zero-based array; length must be >= 0. *)

val alloc_md_array : Gc.t -> Types.elem -> int array -> obj
(** True multidimensional array with the given dimensions (rank >= 2). *)

val null : Gc.t -> obj
(** A fresh handle holding the null reference. *)

val free : Gc.t -> obj -> unit
(** Release a handle (not the object). *)

(** {1 Inspection} *)

val is_null : Gc.t -> obj -> bool
val class_of : Gc.t -> obj -> Classes.method_table
(** Raises {!Gc.Null_reference} on null. *)

val addr_of : Gc.t -> obj -> Heap.addr
(** The object's current address. Only stable until the next allocation or
    safepoint — exactly the hazard pinning exists to control. *)

val same_object : Gc.t -> obj -> obj -> bool

(** {1 Instance fields} *)

val get_int : Gc.t -> obj -> Classes.field_desc -> int
(** Integral and boolean/char fields up to 32 bits (and I8 when it fits). *)

val set_int : Gc.t -> obj -> Classes.field_desc -> int -> unit
val get_int64 : Gc.t -> obj -> Classes.field_desc -> int64
val set_int64 : Gc.t -> obj -> Classes.field_desc -> int64 -> unit
val get_float : Gc.t -> obj -> Classes.field_desc -> float
val set_float : Gc.t -> obj -> Classes.field_desc -> float -> unit

val get_ref : Gc.t -> obj -> Classes.field_desc -> obj option
(** Read a reference field; [Some] wraps a {e fresh} handle the caller must
    {!free}. *)

val get_ref_addr : Gc.t -> obj -> Classes.field_desc -> Heap.addr
(** Raw variant for runtime-internal code (serializer, GC tests). *)

val set_ref : Gc.t -> obj -> Classes.field_desc -> obj option -> unit
(** Write a reference field (with class compatibility check and write
    barrier). [None] stores null. *)

(** {1 Arrays} *)

val array_length : Gc.t -> obj -> int
(** 1-D length, or total element count for a multidimensional array. *)

val array_elem_type : Gc.t -> obj -> Types.elem
val get_elem_int : Gc.t -> obj -> int -> int
val set_elem_int : Gc.t -> obj -> int -> int -> unit
val get_elem_int64 : Gc.t -> obj -> int -> int64
val set_elem_int64 : Gc.t -> obj -> int -> int64 -> unit
val get_elem_float : Gc.t -> obj -> int -> float
val set_elem_float : Gc.t -> obj -> int -> float -> unit
val get_elem_ref : Gc.t -> obj -> int -> obj option
val set_elem_ref : Gc.t -> obj -> int -> obj option -> unit

val md_dims : Gc.t -> obj -> int array
val md_flat_index : Gc.t -> obj -> int array -> int
(** Row-major flattening with per-dimension bounds checks. *)

(** {1 Raw data regions (runtime-internal)} *)

val data_region : Gc.t -> obj -> Heap.addr * int
(** [(data_addr, data_bytes)] for the whole instance data: fields of a class
    instance, or length/dims words plus elements for arrays. *)

val payload_region : Gc.t -> obj -> Heap.addr * int
(** The transportable payload: instance fields for a class instance, or the
    element storage (excluding length/dims words) for arrays. This is the
    region MPI transfers read and write; its size bounds every transfer so a
    message can never overwrite the next object. *)

val elem_region :
  Gc.t -> obj -> offset:int -> count:int -> Heap.addr * int
(** Element subrange [(addr, bytes)] of a 1-D array with bounds checks —
    the paper's offset/count overloads for array transport. *)

val fill_array_bytes : Gc.t -> obj -> Bytes.t -> unit
(** Copy [Bytes.t] into a simple-type array's payload (sizes must match). *)

val read_array_bytes : Gc.t -> obj -> Bytes.t
(** Copy a simple-type array's payload out. *)
