lib/vm/assembler.ml: Array Buffer Classes Format Hashtbl Il Int64 List Printf String Types
