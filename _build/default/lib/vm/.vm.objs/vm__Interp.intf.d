lib/vm/interp.mli: Gc Il Verifier
