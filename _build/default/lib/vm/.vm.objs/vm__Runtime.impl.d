lib/vm/runtime.ml: Assembler Buffer Classes Gc Heap Interp Simtime Syslib
