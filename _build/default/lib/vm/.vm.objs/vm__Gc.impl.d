lib/vm/gc.ml: Array Classes Hashtbl Heap List Queue Simtime Stack Types
