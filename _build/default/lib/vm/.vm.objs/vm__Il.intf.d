lib/vm/il.mli: Format Heap Types
