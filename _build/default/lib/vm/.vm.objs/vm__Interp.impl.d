lib/vm/interp.ml: Array Char Classes Format Fun Gc Hashtbl Heap Il Int64 List Option Simtime String Types Verifier
