lib/vm/gc.mli: Classes Heap
