lib/vm/il.ml: Array Format Heap List Seq Types
