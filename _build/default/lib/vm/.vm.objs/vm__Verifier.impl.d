lib/vm/verifier.ml: Array Classes Format Il List Printf Queue Types
