lib/vm/types.mli: Format
