lib/vm/syslib.mli: Buffer Interp Simtime
