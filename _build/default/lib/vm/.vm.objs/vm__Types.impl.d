lib/vm/types.ml: Format
