lib/vm/syslib.ml: Array Buffer Char Classes Gc Heap Il Int64 Interp Printf Simtime String Types
