lib/vm/debug.mli: Format Gc Heap
