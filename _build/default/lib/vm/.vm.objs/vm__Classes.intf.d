lib/vm/classes.mli: Types
