lib/vm/debug.ml: Classes Format Gc Hashtbl Heap List Option Printf
