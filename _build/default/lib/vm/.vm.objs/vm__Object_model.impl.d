lib/vm/object_model.ml: Array Bytes Classes Format Gc Heap Int64 Types
