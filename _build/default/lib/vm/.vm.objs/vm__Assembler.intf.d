lib/vm/assembler.mli: Classes Il Types
