lib/vm/heap.mli: Bytes Simtime
