lib/vm/heap.ml: Array Bytes Char Int32 Int64 List Printf Simtime
