lib/vm/object_model.mli: Bytes Classes Gc Heap Types
