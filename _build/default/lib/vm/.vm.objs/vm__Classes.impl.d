lib/vm/classes.ml: Array Hashtbl List Printf String Types
