lib/vm/runtime.mli: Buffer Classes Gc Heap Interp Simtime
