lib/vm/verifier.mli: Classes Il Types
