(** The managed heap: a flat byte arena divided into fixed-size blocks.

    Layout follows the SSCLI model the paper relies on (Section 5.2): a
    contiguous {e young} block with bump allocation, and {e elder} regions
    (runs of blocks) managed with a first-fit free list and swept without
    compaction. Objects are headers followed by instance data:

    {v
      offset 0   mt_id       (int32)  class registry id; 0 marks a free chunk
      offset 4   flags       (int32)  MARK / PINNED / FORWARDED bits
      offset 8   total_size  (int32)  aligned size including header
      offset 12  aux         (int32)  forwarding address when FORWARDED
      offset 16  instance data ...
    v}

    Addresses are byte offsets into the arena; 0 is the null reference. The
    heap is purely mechanical — all policy (when to collect, what to pin)
    lives in {!Gc}. *)

type addr = int

val null : addr
val header_bytes : int
(** 16. *)

exception Out_of_memory

type t

val create : ?arena_bytes:int -> ?block_bytes:int -> Simtime.Env.t -> t
(** Defaults: 32 MiB arena, 256 KiB blocks. [block_bytes] must divide
    [arena_bytes] and be a power of two >= 4 KiB. *)

val env : t -> Simtime.Env.t
val mem : t -> Bytes.t
val block_bytes : t -> int
val arena_bytes : t -> int

(** {1 Object headers} *)

val mt_id : t -> addr -> int
val set_mt_id : t -> addr -> int -> unit
val size_of : t -> addr -> int
(** Total aligned size including header. *)

val is_free_chunk : t -> addr -> bool
val is_marked : t -> addr -> bool
val set_marked : t -> addr -> bool -> unit
val is_pinned_flag : t -> addr -> bool
val set_pinned_flag : t -> addr -> bool -> unit
val is_forwarded : t -> addr -> bool
val forward_of : t -> addr -> addr
val set_forward : t -> addr -> addr -> unit
(** Marks [addr] forwarded to the second address. *)

val data_of : addr -> addr
(** Start of instance data ([addr + header_bytes]). *)

(** {1 Raw typed access (absolute addresses)} *)

val get_u8 : t -> addr -> int
val set_u8 : t -> addr -> int -> unit
val get_i16 : t -> addr -> int
val set_i16 : t -> addr -> int -> unit
val get_i32 : t -> addr -> int
val set_i32 : t -> addr -> int -> unit
val get_i64 : t -> addr -> int64
val set_i64 : t -> addr -> int64 -> unit
val get_f32 : t -> addr -> float
val set_f32 : t -> addr -> float -> unit
val get_f64 : t -> addr -> float
val set_f64 : t -> addr -> float -> unit
val get_ref : t -> addr -> addr
val set_ref_raw : t -> addr -> addr -> unit
(** Write a reference slot with no write barrier — {!Object_model} adds the
    barrier. *)

val blit_in : t -> src:Bytes.t -> src_off:int -> dst:addr -> len:int -> unit
val blit_out : t -> src:addr -> dst:Bytes.t -> dst_off:int -> len:int -> unit
val blit_within : t -> src:addr -> dst:addr -> len:int -> unit

(** {1 Generations and allocation} *)

val total_size_for : data_bytes:int -> int
(** Aligned total size for an object with [data_bytes] of instance data. *)

val in_young : t -> addr -> bool
(** True if [addr] lies in the currently allocated part of the young block.
    This is exactly the boundary test Motor's pinning policy performs
    (Section 7.4). *)

val young_used : t -> int
val young_capacity : t -> int
val elder_used : t -> int

val try_alloc_young : t -> mt:int -> data_bytes:int -> addr option
(** Bump-allocate in the young block; data is zeroed. [None] when full. *)

val try_alloc_elder : t -> mt:int -> data_bytes:int -> addr option
(** First-fit in the elder free list, acquiring fresh blocks as needed;
    data is zeroed. [None] when the arena is exhausted. *)

val reset_young : t -> unit
(** Empty the young block after evacuation (no pinned survivors). *)

val promote_young_block : t -> unit
(** Reassign the whole young block to the elder generation (the paper's
    pinned-young handling) and install a fresh young block. The unused tail
    becomes a free chunk; the caller must scrub dead/forwarded objects with
    {!free_object} afterwards. Raises {!Out_of_memory} if no block is free. *)

val free_object : t -> addr -> unit
(** Turn an elder object into a free chunk and push it on the free list. *)

val iter_young : t -> (addr -> unit) -> unit
(** Walk allocated young objects in address order. *)

val iter_elder : t -> (addr -> unit) -> unit
(** Walk elder objects (skipping free chunks) in address order. *)

val sweep_elder : t -> keep:(addr -> bool) -> int
(** Walk elder regions; objects failing [keep] (and forwarded corpses)
    become free chunks, adjacent chunks coalesce, and the free list is
    rebuilt. Returns bytes freed. *)

val check_consistency : t -> unit
(** Walk both generations and verify headers parse exactly to the region
    boundaries; raises [Failure] otherwise. For tests. *)
