(** Textual assembler for MIL — the portable assembly format of this VM.

    Example program:

    {v
    .class transportable Node {
      .field transportable int32[] data
      .field transportable Node next
      .field int32 tag
    }

    .method int32 sum(Node head) {
      .locals (int32 acc, Node cur)
      ldarg head
      stloc cur
    loop:
      ldloc cur
      ldnull
      ceq
      brtrue done
      ldloc cur
      ldfld Node::tag
      ldloc acc
      add
      stloc acc
      ldloc cur
      ldfld Node::next
      stloc cur
      br loop
    done:
      ldloc acc
      ret
    }
    v}

    Types: [int8 int16 int32 int64 float32 float64 bool char], class names,
    and array suffixes [T\[\]] (1-D) and [T\[,\]]/[T\[,,\]] (multidim).
    Comments run from [//] to end of line. Classes may reference each other
    in any order. Locals and arguments can be addressed by name or index.
    The entry point is the method named [main] unless overridden. *)

exception Parse_error of string

val assemble :
  Classes.t -> ?entry:string -> string -> Il.program
(** Parse and resolve a program, registering its classes into the given
    registry. Raises {!Parse_error} with a line-numbered diagnostic. *)

val parse_type : Classes.t -> string -> Types.field_type
(** Parse a type word (exposed for tests and tooling). *)
