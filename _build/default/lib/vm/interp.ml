exception Runtime_error of string
exception Managed_stack_overflow

type intcall_impl = Il.value array -> Il.value option

type frame = {
  args : Il.value array;
  locals : Il.value array;
  stack : Il.value array;
  mutable sp : int;
}

type t = {
  gc : Gc.t;
  program : Il.program;
  intcalls : (string, Verifier.intcall_sig * intcall_impl) Hashtbl.t;
  max_depth : int;
  fuel : int option;
  mutable frames : frame list;
  mutable executed : int;
  scanner : Gc.scanner_id;
}

let err fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

let scan_frames ctx visit =
  let scan_array arr limit =
    for i = 0 to limit - 1 do
      match arr.(i) with
      | Il.V_ref a when a <> Heap.null -> arr.(i) <- Il.V_ref (visit a)
      | Il.V_ref _ | Il.V_int _ | Il.V_float _ -> ()
    done
  in
  List.iter
    (fun f ->
      scan_array f.args (Array.length f.args);
      scan_array f.locals (Array.length f.locals);
      scan_array f.stack f.sp)
    ctx.frames

let create ?(max_depth = 1024) ?fuel gc program =
  let ctx_ref = ref None in
  let scanner =
    Gc.add_scanner gc (fun visit ->
        match !ctx_ref with
        | Some ctx -> scan_frames ctx visit
        | None -> ())
  in
  let ctx =
    {
      gc;
      program;
      intcalls = Hashtbl.create 32;
      max_depth;
      fuel;
      frames = [];
      executed = 0;
      scanner;
    }
  in
  ctx_ref := Some ctx;
  ctx

let dispose t = Gc.remove_scanner t.gc t.scanner

let gc t = t.gc
let program t = t.program

let register_intcall t name sg impl =
  if Hashtbl.mem t.intcalls name then
    invalid_arg ("Interp.register_intcall: duplicate " ^ name);
  Hashtbl.replace t.intcalls name (sg, impl)

let intcall_sig t name =
  Option.map fst (Hashtbl.find_opt t.intcalls name)

let verify t =
  Verifier.verify_program (Gc.registry t.gc) t.program
    ~intcall:(intcall_sig t)

let instructions_executed t = t.executed

(* Typed slot access for fields and array elements. *)

let read_slot gc slot (ftype : Types.field_type) =
  let h = Gc.heap gc in
  match ftype with
  | Types.Prim Types.I1 ->
      let v = Heap.get_u8 h slot in
      Il.V_int (Int64.of_int (if v > 127 then v - 256 else v))
  | Types.Prim Types.Bool -> Il.V_int (Int64.of_int (Heap.get_u8 h slot))
  | Types.Prim Types.Char ->
      Il.V_int (Int64.of_int (Heap.get_i16 h slot land 0xffff))
  | Types.Prim Types.I2 -> Il.V_int (Int64.of_int (Heap.get_i16 h slot))
  | Types.Prim Types.I4 -> Il.V_int (Int64.of_int (Heap.get_i32 h slot))
  | Types.Prim Types.I8 -> Il.V_int (Heap.get_i64 h slot)
  | Types.Prim Types.R4 -> Il.V_float (Heap.get_f32 h slot)
  | Types.Prim Types.R8 -> Il.V_float (Heap.get_f64 h slot)
  | Types.Ref _ -> Il.V_ref (Heap.get_ref h slot)

let write_slot gc slot (ftype : Types.field_type) v =
  let h = Gc.heap gc in
  match (ftype, v) with
  | Types.Prim (Types.I1 | Types.Bool), Il.V_int n ->
      Heap.set_u8 h slot (Int64.to_int n land 0xff)
  | Types.Prim (Types.I2 | Types.Char), Il.V_int n ->
      Heap.set_i16 h slot (Int64.to_int n)
  | Types.Prim Types.I4, Il.V_int n -> Heap.set_i32 h slot (Int64.to_int n)
  | Types.Prim Types.I8, Il.V_int n -> Heap.set_i64 h slot n
  | Types.Prim Types.R4, Il.V_float f -> Heap.set_f32 h slot f
  | Types.Prim Types.R8, Il.V_float f -> Heap.set_f64 h slot f
  | Types.Ref _, Il.V_ref a -> Heap.set_ref_raw h slot a
  | _ -> err "type confusion in slot write"

let field_type_of_elem = function
  | Types.Eprim p -> Types.Prim p
  | Types.Eref c -> Types.Ref c

let check_store_class gc cid value_addr =
  if value_addr <> Heap.null then begin
    let vmt = Gc.method_table_of gc value_addr in
    let obj_id = (Classes.object_class (Gc.registry gc)).Classes.c_id in
    if cid <> obj_id && vmt.Classes.c_id <> cid then
      err "cannot store %s into ref<%d> slot" vmt.Classes.c_name cid
  end

let as_int = function
  | Il.V_int n -> n
  | Il.V_float _ | Il.V_ref _ -> err "expected int on stack"

(* Row-major slot of an md-array element, with per-dimension bounds
   checks; the object's actual rank must match the instruction's. *)
let md_slot gc heap a elem rank idx =
  let mt = Gc.method_table_of gc a in
  (match mt.Classes.c_kind with
  | Classes.K_md_array (_, r) when r = rank -> ()
  | Classes.K_md_array (_, r) ->
      err "rank mismatch: array has rank %d, instruction expects %d" r rank
  | Classes.K_class | Classes.K_array _ ->
      err "%s is not a multidimensional array" mt.Classes.c_name);
  let data = Heap.data_of a in
  let flat = ref 0 in
  for d = 0 to rank - 1 do
    let dim = Heap.get_i32 heap (data + (4 * d)) in
    if idx.(d) < 0 || idx.(d) >= dim then
      err "index %d out of bounds [0,%d) in dimension %d" idx.(d) dim d;
    flat := (!flat * dim) + idx.(d)
  done;
  data + (4 * rank) + (!flat * Types.elem_size elem)

let as_float = function
  | Il.V_float f -> f
  | Il.V_int _ | Il.V_ref _ -> err "expected float on stack"

let as_ref = function
  | Il.V_ref a -> a
  | Il.V_int _ | Il.V_float _ -> err "expected ref on stack"

let rec exec ctx depth (m : Il.mth) args =
  if depth > ctx.max_depth then raise Managed_stack_overflow;
  let registry = Gc.registry ctx.gc in
  let heap = Gc.heap ctx.gc in
  let env = Heap.env heap in
  let instr_ns = env.Simtime.Env.cost.Simtime.Cost.managed_instr_ns in
  let frame =
    {
      args;
      locals = Array.of_list (List.map Il.default_value m.Il.m_locals);
      stack = Array.make 1024 (Il.V_int 0L);
      sp = 0;
    }
  in
  ctx.frames <- frame :: ctx.frames;
  let pop () =
    if frame.sp = 0 then err "stack underflow";
    frame.sp <- frame.sp - 1;
    frame.stack.(frame.sp)
  in
  let push v =
    if frame.sp >= Array.length frame.stack then err "stack overflow";
    frame.stack.(frame.sp) <- v;
    frame.sp <- frame.sp + 1
  in
  let code = m.Il.m_code in
  let n = Array.length code in
  let result = ref None in
  let pc = ref 0 in
  let running = ref true in
  (try
     while !running do
       if !pc >= n then err "fell off end of %s" m.Il.m_name;
       (match ctx.fuel with
       | Some max when ctx.executed >= max -> err "out of fuel"
       | Some _ | None -> ());
       ctx.executed <- ctx.executed + 1;
       if instr_ns > 0.0 then Simtime.Env.charge env instr_ns;
       let i = !pc in
       incr pc;
       match code.(i) with
       | Il.Nop -> ()
       | Il.Ldc_i v -> push (Il.V_int v)
       | Il.Ldc_f v -> push (Il.V_float v)
       | Il.Ldstr text ->
           Gc.poll ctx.gc;
           let len = String.length text in
           let mt = Classes.array_class registry (Types.Eprim Types.Char) in
           let a = Gc.alloc ctx.gc ~mt ~data_bytes:(4 + (len * 2)) in
           Heap.set_i32 heap (Heap.data_of a) len;
           String.iteri
             (fun i c ->
               Heap.set_i16 heap (Heap.data_of a + 4 + (2 * i)) (Char.code c))
             text;
           push (Il.V_ref a)
       | Il.Ldnull -> push (Il.V_ref Heap.null)
       | Il.Ldloc j -> push frame.locals.(j)
       | Il.Stloc j -> frame.locals.(j) <- pop ()
       | Il.Ldarg j -> push frame.args.(j)
       | Il.Starg j -> frame.args.(j) <- pop ()
       | Il.Add ->
           let b = as_int (pop ()) and a = as_int (pop ()) in
           push (Il.V_int (Int64.add a b))
       | Il.Sub ->
           let b = as_int (pop ()) and a = as_int (pop ()) in
           push (Il.V_int (Int64.sub a b))
       | Il.Mul ->
           let b = as_int (pop ()) and a = as_int (pop ()) in
           push (Il.V_int (Int64.mul a b))
       | Il.Div ->
           let b = as_int (pop ()) and a = as_int (pop ()) in
           if Int64.equal b 0L then err "division by zero";
           push (Il.V_int (Int64.div a b))
       | Il.Rem ->
           let b = as_int (pop ()) and a = as_int (pop ()) in
           if Int64.equal b 0L then err "division by zero";
           push (Il.V_int (Int64.rem a b))
       | Il.Neg -> push (Il.V_int (Int64.neg (as_int (pop ()))))
       | Il.Fadd ->
           let b = as_float (pop ()) and a = as_float (pop ()) in
           push (Il.V_float (a +. b))
       | Il.Fsub ->
           let b = as_float (pop ()) and a = as_float (pop ()) in
           push (Il.V_float (a -. b))
       | Il.Fmul ->
           let b = as_float (pop ()) and a = as_float (pop ()) in
           push (Il.V_float (a *. b))
       | Il.Fdiv ->
           let b = as_float (pop ()) and a = as_float (pop ()) in
           push (Il.V_float (a /. b))
       | Il.Fneg -> push (Il.V_float (-.as_float (pop ())))
       | Il.Conv_i -> push (Il.V_int (Int64.of_float (as_float (pop ()))))
       | Il.Conv_f -> push (Il.V_float (Int64.to_float (as_int (pop ()))))
       | Il.Ceq -> (
           let b = pop () and a = pop () in
           match (a, b) with
           | Il.V_int x, Il.V_int y ->
               push (Il.V_int (if Int64.equal x y then 1L else 0L))
           | Il.V_ref x, Il.V_ref y ->
               push (Il.V_int (if x = y then 1L else 0L))
           | _ -> err "ceq type confusion")
       | Il.Clt ->
           let b = as_int (pop ()) and a = as_int (pop ()) in
           push (Il.V_int (if Int64.compare a b < 0 then 1L else 0L))
       | Il.Cgt ->
           let b = as_int (pop ()) and a = as_int (pop ()) in
           push (Il.V_int (if Int64.compare a b > 0 then 1L else 0L))
       | Il.Fceq ->
           let b = as_float (pop ()) and a = as_float (pop ()) in
           push (Il.V_int (if a = b then 1L else 0L))
       | Il.Fclt ->
           let b = as_float (pop ()) and a = as_float (pop ()) in
           push (Il.V_int (if a < b then 1L else 0L))
       | Il.Fcgt ->
           let b = as_float (pop ()) and a = as_float (pop ()) in
           push (Il.V_int (if a > b then 1L else 0L))
       | Il.Br target ->
           if target <= i then Gc.poll ctx.gc;
           pc := target
       | Il.Brtrue target ->
           if not (Int64.equal (as_int (pop ())) 0L) then begin
             if target <= i then Gc.poll ctx.gc;
             pc := target
           end
       | Il.Brfalse target ->
           if Int64.equal (as_int (pop ())) 0L then begin
             if target <= i then Gc.poll ctx.gc;
             pc := target
           end
       | Il.Ldfld (cid, fidx) ->
           let a = as_ref (pop ()) in
           if a = Heap.null then err "null reference";
           let mt = Classes.find registry cid in
           let fd = Classes.field_by_index mt fidx in
           push
             (read_slot ctx.gc
                (Heap.data_of a + fd.Classes.f_offset)
                fd.Classes.f_type)
       | Il.Stfld (cid, fidx) ->
           let v = pop () in
           let a = as_ref (pop ()) in
           if a = Heap.null then err "null reference";
           let mt = Classes.find registry cid in
           let fd = Classes.field_by_index mt fidx in
           let slot = Heap.data_of a + fd.Classes.f_offset in
           (match (fd.Classes.f_type, v) with
           | Types.Ref fcid, Il.V_ref va ->
               check_store_class ctx.gc fcid va;
               Gc.record_write ctx.gc ~container:a ~value:va ~slot
           | _ -> ());
           write_slot ctx.gc slot fd.Classes.f_type v
       | Il.Isinst cid ->
           let a = as_ref (pop ()) in
           let obj_id = (Classes.object_class registry).Classes.c_id in
           let matches =
             a <> Heap.null
             && (cid = obj_id || (Gc.method_table_of ctx.gc a).Classes.c_id = cid)
           in
           push (Il.V_int (if matches then 1L else 0L))
       | Il.Newobj cid ->
           Gc.poll ctx.gc;
           let mt = Classes.find registry cid in
           let a =
             Gc.alloc ctx.gc ~mt ~data_bytes:mt.Classes.c_instance_size
           in
           push (Il.V_ref a)
       | Il.Newarr elem ->
           Gc.poll ctx.gc;
           let len = Int64.to_int (as_int (pop ())) in
           if len < 0 then err "negative array length";
           let mt = Classes.array_class registry elem in
           let data_bytes = 4 + (len * Types.elem_size elem) in
           let a = Gc.alloc ctx.gc ~mt ~data_bytes in
           Heap.set_i32 heap (Heap.data_of a) len;
           push (Il.V_ref a)
       | Il.Ldlen ->
           let a = as_ref (pop ()) in
           if a = Heap.null then err "null reference";
           push (Il.V_int (Int64.of_int (Heap.get_i32 heap (Heap.data_of a))))
       | Il.Ldelem elem ->
           let idx = Int64.to_int (as_int (pop ())) in
           let a = as_ref (pop ()) in
           if a = Heap.null then err "null reference";
           let len = Heap.get_i32 heap (Heap.data_of a) in
           if idx < 0 || idx >= len then
             err "index %d out of bounds [0,%d)" idx len;
           let slot =
             Heap.data_of a + 4 + (idx * Types.elem_size elem)
           in
           push (read_slot ctx.gc slot (field_type_of_elem elem))
       | Il.Stelem elem ->
           let v = pop () in
           let idx = Int64.to_int (as_int (pop ())) in
           let a = as_ref (pop ()) in
           if a = Heap.null then err "null reference";
           let len = Heap.get_i32 heap (Heap.data_of a) in
           if idx < 0 || idx >= len then
             err "index %d out of bounds [0,%d)" idx len;
           let slot =
             Heap.data_of a + 4 + (idx * Types.elem_size elem)
           in
           (match (elem, v) with
           | Types.Eref cid, Il.V_ref va ->
               check_store_class ctx.gc cid va;
               Gc.record_write ctx.gc ~container:a ~value:va ~slot
           | _ -> ());
           write_slot ctx.gc slot (field_type_of_elem elem) v
       | Il.Newmd (elem, rank) ->
           Gc.poll ctx.gc;
           let dims = Array.make rank 0 in
           for d = rank - 1 downto 0 do
             dims.(d) <- Int64.to_int (as_int (pop ()))
           done;
           Array.iter
             (fun d -> if d < 0 then err "negative array dimension")
             dims;
           let mt = Classes.md_array_class registry elem ~rank in
           let n = Array.fold_left ( * ) 1 dims in
           let data_bytes = (4 * rank) + (n * Types.elem_size elem) in
           let a = Gc.alloc ctx.gc ~mt ~data_bytes in
           Array.iteri
             (fun d dim -> Heap.set_i32 heap (Heap.data_of a + (4 * d)) dim)
             dims;
           push (Il.V_ref a)
       | Il.Ldelem_md (elem, rank) ->
           let idx = Array.make rank 0 in
           for d = rank - 1 downto 0 do
             idx.(d) <- Int64.to_int (as_int (pop ()))
           done;
           let a = as_ref (pop ()) in
           if a = Heap.null then err "null reference";
           let slot = md_slot ctx.gc heap a elem rank idx in
           push (read_slot ctx.gc slot (field_type_of_elem elem))
       | Il.Stelem_md (elem, rank) ->
           let v = pop () in
           let idx = Array.make rank 0 in
           for d = rank - 1 downto 0 do
             idx.(d) <- Int64.to_int (as_int (pop ()))
           done;
           let a = as_ref (pop ()) in
           if a = Heap.null then err "null reference";
           let slot = md_slot ctx.gc heap a elem rank idx in
           (match (elem, v) with
           | Types.Eref cid, Il.V_ref va ->
               check_store_class ctx.gc cid va;
               Gc.record_write ctx.gc ~container:a ~value:va ~slot
           | _ -> ());
           write_slot ctx.gc slot (field_type_of_elem elem) v
       | Il.Call mid ->
           Gc.poll ctx.gc;
           let callee = ctx.program.Il.methods.(mid) in
           let argc = List.length callee.Il.m_params in
           let cargs = Array.make argc (Il.V_int 0L) in
           for j = argc - 1 downto 0 do
             cargs.(j) <- pop ()
           done;
           (match exec ctx (depth + 1) callee cargs with
           | Some v -> push v
           | None -> ())
       | Il.Intcall name -> (
           match Hashtbl.find_opt ctx.intcalls name with
           | None -> err "unknown internal call %s" name
           | Some ((param_tys, _ret), impl) ->
               let argc = List.length param_tys in
               let cargs = Array.make argc (Il.V_int 0L) in
               for j = argc - 1 downto 0 do
                 cargs.(j) <- pop ()
               done;
               (* Protect intcall arguments across any collection the call
                  triggers by housing them in a pseudo-frame. *)
               let pseudo =
                 { args = cargs; locals = [||]; stack = [||]; sp = 0 }
               in
               ctx.frames <- pseudo :: ctx.frames;
               let res =
                 Fun.protect
                   ~finally:(fun () -> ctx.frames <- List.tl ctx.frames)
                   (fun () -> impl cargs)
               in
               (match res with Some v -> push v | None -> ()))
       | Il.Ret ->
           (match m.Il.m_ret with
           | Some _ -> result := Some (pop ())
           | None -> ());
           running := false
       | Il.Pop -> ignore (pop ())
       | Il.Dup ->
           let v = pop () in
           push v;
           push v
     done
   with e ->
     ctx.frames <- List.tl ctx.frames;
     raise e);
  ctx.frames <- List.tl ctx.frames;
  !result

let run t name args =
  match Il.method_by_name t.program name with
  | None -> err "no such method %s" name
  | Some m ->
      if List.length args <> List.length m.Il.m_params then
        err "%s expects %d arguments" name (List.length m.Il.m_params);
      exec t 0 m (Array.of_list args)

let run_entry t args =
  let m = t.program.Il.methods.(t.program.Il.entry) in
  run t m.Il.m_name args
