exception Parse_error of string

let fail line fmt =
  Format.kasprintf
    (fun s -> raise (Parse_error (Printf.sprintf "line %d: %s" line s)))
    fmt

(* ------------------------------------------------------------------ *)
(* Tokenizer                                                           *)
(* ------------------------------------------------------------------ *)

type token = { text : string; line : int }

let tokenize src =
  let tokens = ref [] in
  let lines = String.split_on_char '\n' src in
  List.iteri
    (fun lineno line ->
      let buf = Buffer.create 16 in
      let flush () =
        if Buffer.length buf > 0 then begin
          tokens :=
            { text = Buffer.contents buf; line = lineno + 1 } :: !tokens;
          Buffer.clear buf
        end
      in
      let emit c =
        flush ();
        tokens := { text = String.make 1 c; line = lineno + 1 } :: !tokens
      in
      (* Commas inside an open bracket belong to array suffixes like
         int32[,]; all others separate list items. *)
      let comma_is_suffix () =
        let s = Buffer.contents buf in
        let opens = ref 0 in
        String.iter
          (fun c ->
            if c = '[' then incr opens else if c = ']' then decr opens)
          s;
        !opens > 0
      in
      let n = String.length line in
      let i = ref 0 in
      let stop = ref false in
      while (not !stop) && !i < n do
        (match line.[!i] with
        | '"' ->
            (* String literal: consumed whole, with escapes; quotes are
               kept so the parser can recognise the token kind. *)
            flush ();
            Buffer.add_char buf '"';
            incr i;
            let closed = ref false in
            while (not !closed) && !i < n do
              (match line.[!i] with
              | '\\' when !i + 1 < n ->
                  incr i;
                  Buffer.add_char buf
                    (match line.[!i] with
                    | 'n' -> '\n'
                    | 't' -> '\t'
                    | c -> c)
              | '"' -> closed := true
              | c -> Buffer.add_char buf c);
              incr i
            done;
            if not !closed then
              raise
                (Parse_error
                   (Printf.sprintf "line %d: unterminated string literal"
                      (lineno + 1)));
            Buffer.add_char buf '"';
            flush ();
            decr i
        | '/' when !i + 1 < n && line.[!i + 1] = '/' -> stop := true
        | ' ' | '\t' | '\r' -> flush ()
        | ('{' | '}' | '(' | ')') as c -> emit c
        | ',' when not (comma_is_suffix ()) -> emit ','
        | c -> Buffer.add_char buf c);
        incr i
      done;
      flush ())
    lines;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let prim_of_name = function
  | "int8" -> Some Types.I1
  | "int16" -> Some Types.I2
  | "int32" -> Some Types.I4
  | "int64" -> Some Types.I8
  | "float32" -> Some Types.R4
  | "float64" -> Some Types.R8
  | "bool" -> Some Types.Bool
  | "char" -> Some Types.Char
  | _ -> None

(* Split "Node[][,]" into ("Node", [1; 2]): a list of array ranks applied
   innermost first. *)
let split_suffixes word =
  let n = String.length word in
  let rec base i = if i < n && word.[i] <> '[' then base (i + 1) else i in
  let stop = base 0 in
  let name = String.sub word 0 stop in
  let rec suffixes i acc =
    if i >= n then List.rev acc
    else if word.[i] = '[' then begin
      let rec close j rank =
        if j >= n then None
        else if word.[j] = ']' then Some (j + 1, rank)
        else if word.[j] = ',' then close (j + 1) (rank + 1)
        else None
      in
      match close (i + 1) 1 with
      | Some (j, rank) -> suffixes j (rank :: acc)
      | None -> raise Exit
    end
    else raise Exit
  in
  try Some (name, suffixes stop []) with Exit -> None

let parse_type registry word =
  let malformed () = raise (Parse_error ("malformed type " ^ word)) in
  match split_suffixes word with
  | None -> malformed ()
  | Some (name, ranks) ->
      let base : Types.elem =
        match prim_of_name name with
        | Some p -> Types.Eprim p
        | None ->
            let id = Classes.declare registry ~name in
            Types.Eref id
      in
      let elem =
        List.fold_left
          (fun elem rank ->
            let mt =
              if rank = 1 then Classes.array_class registry elem
              else Classes.md_array_class registry elem ~rank
            in
            Types.Eref mt.Classes.c_id)
          base ranks
      in
      (match elem with
      | Types.Eprim p -> Types.Prim p
      | Types.Eref id -> Types.Ref id)

let parse_elem_type registry line word =
  match parse_type registry word with
  | Types.Prim p -> Types.Eprim p
  | Types.Ref id -> (
      (* an array's element class *)
      match Classes.find (registry : Classes.t) id with
      | mt -> Types.Eref mt.Classes.c_id
      | exception Not_found -> fail line "unknown type %s" word)

(* ------------------------------------------------------------------ *)
(* Structural parse                                                    *)
(* ------------------------------------------------------------------ *)

type raw_field = { rf_transportable : bool; rf_type : string; rf_name : string; rf_line : int }

type raw_class = {
  rc_name : string;
  rc_transportable : bool;
  rc_fields : raw_field list;
  rc_line : int;
}

type raw_method = {
  rm_ret : string;
  rm_name : string;
  rm_params : (string * string) list;  (* type word, name *)
  rm_locals : (string * string) list;
  rm_body : token list;
  rm_line : int;
}

type cursor = { mutable toks : token list }

let peek c = match c.toks with [] -> None | t :: _ -> Some t

let next c what =
  match c.toks with
  | [] -> raise (Parse_error ("unexpected end of input, expected " ^ what))
  | t :: rest ->
      c.toks <- rest;
      t

let expect c text =
  let t = next c ("'" ^ text ^ "'") in
  if t.text <> text then fail t.line "expected '%s', found '%s'" text t.text

let parse_class c line =
  let t = next c "class name" in
  let transportable, name_tok =
    if t.text = "transportable" then (true, next c "class name")
    else (false, t)
  in
  expect c "{";
  let fields = ref [] in
  let rec loop () =
    let t = next c "'.field' or '}'" in
    if t.text = "}" then ()
    else if t.text = ".field" then begin
      let u = next c "field type" in
      let transp, ty =
        if u.text = "transportable" then (true, next c "field type")
        else (false, u)
      in
      let name = next c "field name" in
      fields :=
        {
          rf_transportable = transp;
          rf_type = ty.text;
          rf_name = name.text;
          rf_line = name.line;
        }
        :: !fields;
      loop ()
    end
    else fail t.line "expected '.field' or '}', found '%s'" t.text
  in
  loop ();
  {
    rc_name = name_tok.text;
    rc_transportable = transportable;
    rc_fields = List.rev !fields;
    rc_line = line;
  }

let parse_sig_list c what =
  expect c "(";
  let items = ref [] in
  let rec loop first =
    match peek c with
    | Some t when t.text = ")" ->
        ignore (next c ")")
    | _ ->
        if not first then expect c ",";
        let ty = next c (what ^ " type") in
        let name =
          match peek c with
          | Some t when t.text <> "," && t.text <> ")" ->
              (next c "name").text
          | _ -> Printf.sprintf "%s%d" what (List.length !items)
        in
        items := (ty.text, name) :: !items;
        loop false
  in
  loop true;
  List.rev !items

let parse_method c line =
  let ret = next c "return type" in
  let name = next c "method name" in
  let params = parse_sig_list c "param" in
  expect c "{";
  let locals =
    match peek c with
    | Some t when t.text = ".locals" ->
        ignore (next c ".locals");
        parse_sig_list c "local"
    | _ -> []
  in
  let body = ref [] in
  let rec loop () =
    let t = next c "instruction or '}'" in
    if t.text = "}" then () else begin
      body := t :: !body;
      loop ()
    end
  in
  loop ();
  {
    rm_ret = ret.text;
    rm_name = name.text;
    rm_params = params;
    rm_locals = locals;
    rm_body = List.rev !body;
    rm_line = line;
  }

let structural_parse tokens =
  let c = { toks = tokens } in
  let classes = ref [] in
  let methods = ref [] in
  let rec loop () =
    match peek c with
    | None -> ()
    | Some t when t.text = ".class" ->
        ignore (next c ".class");
        classes := parse_class c t.line :: !classes;
        loop ()
    | Some t when t.text = ".method" ->
        ignore (next c ".method");
        methods := parse_method c t.line :: !methods;
        loop ()
    | Some t -> fail t.line "expected '.class' or '.method', found '%s'" t.text
  in
  loop ();
  (List.rev !classes, List.rev !methods)

(* ------------------------------------------------------------------ *)
(* Instruction encoding                                                *)
(* ------------------------------------------------------------------ *)

(* Number of operand tokens each opcode consumes. *)
let operand_count = function
  | "ldstr"
  | "ldc.i4" | "ldc.i8" | "ldc.r8" | "ldloc" | "stloc" | "ldarg" | "starg"
  | "br" | "brtrue" | "brfalse" | "ldfld" | "stfld" | "newobj" | "newarr"
  | "ldelem" | "stelem" | "newmd" | "ldelem.md" | "stelem.md" | "isinst"
  | "call"
  | "intcall" ->
      1
  | "nop" | "ldnull" | "add" | "sub" | "mul" | "div" | "rem" | "neg"
  | "fadd" | "fsub" | "fmul" | "fdiv" | "fneg" | "conv.i" | "conv.r"
  | "ceq" | "clt" | "cgt" | "fceq" | "fclt" | "fcgt" | "ldlen" | "ret"
  | "pop" | "dup" ->
      0
  | _ -> -1

let is_label tok =
  let n = String.length tok.text in
  n > 1 && tok.text.[n - 1] = ':'

let split_field_ref line word =
  match String.index_opt word ':' with
  | Some i
    when i + 1 < String.length word
         && word.[i + 1] = ':'
         && i > 0
         && i + 2 < String.length word ->
      (String.sub word 0 i, String.sub word (i + 2) (String.length word - i - 2))
  | Some _ | None -> fail line "expected Class::field, found '%s'" word

let index_of_name line names kind name =
  match int_of_string_opt name with
  | Some i -> i
  | None -> (
      let rec go i = function
        | [] -> fail line "unknown %s '%s'" kind name
        | (_, n) :: rest -> if n = name then i else go (i + 1) rest
      in
      go 0 names)

let assemble registry ?(entry = "main") src =
  let tokens = tokenize src in
  let raw_classes, raw_methods = structural_parse tokens in
  (* Pass 1: declare all classes so fields may reference them in any order. *)
  List.iter
    (fun rc -> ignore (Classes.declare registry ~name:rc.rc_name))
    raw_classes;
  (* Pass 2: lay out fields. *)
  List.iter
    (fun rc ->
      let id =
        match Classes.find_by_name registry rc.rc_name with
        | Some mt -> mt.Classes.c_id
        | None -> assert false
      in
      let fields =
        List.map
          (fun rf ->
            (rf.rf_name, parse_type registry rf.rf_type, rf.rf_transportable))
          rc.rc_fields
      in
      match
        Classes.complete registry id ~transportable:rc.rc_transportable
          ~fields ()
      with
      | _ -> ()
      | exception Invalid_argument msg -> fail rc.rc_line "%s" msg)
    raw_classes;
  (* Methods: assign ids first so calls resolve in any order. *)
  let method_ids = Hashtbl.create 16 in
  List.iteri
    (fun i rm ->
      if Hashtbl.mem method_ids rm.rm_name then
        fail rm.rm_line "duplicate method %s" rm.rm_name;
      Hashtbl.replace method_ids rm.rm_name i)
    raw_methods;
  let parse_ret line = function
    | "void" -> None
    | w -> (
        match parse_type registry w with
        | ty -> Some ty
        | exception Parse_error m -> fail line "%s" m)
  in
  let build_method i rm =
    let params =
      List.map (fun (ty, n) -> (parse_type registry ty, n)) rm.rm_params
    in
    let locals =
      List.map (fun (ty, n) -> (parse_type registry ty, n)) rm.rm_locals
    in
    let param_names = List.map (fun (t, n) -> (t, n)) params in
    let local_names = List.map (fun (t, n) -> (t, n)) locals in
    (* First pass over the body: label addresses. *)
    let labels = Hashtbl.create 8 in
    let rec index pc = function
      | [] -> ()
      | tok :: rest when is_label tok ->
          let name = String.sub tok.text 0 (String.length tok.text - 1) in
          if Hashtbl.mem labels name then
            fail tok.line "duplicate label %s" name;
          Hashtbl.replace labels name pc;
          index pc rest
      | tok :: rest -> (
          match operand_count tok.text with
          | -1 -> fail tok.line "unknown instruction '%s'" tok.text
          | 0 -> index (pc + 1) rest
          | _ -> (
              match rest with
              | [] -> fail tok.line "missing operand for %s" tok.text
              | _ :: rest -> index (pc + 1) rest))
    in
    index 0 rm.rm_body;
    let target line name =
      match Hashtbl.find_opt labels name with
      | Some pc -> pc
      | None -> fail line "unknown label '%s'" name
    in
    let code = ref [] in
    let emit i = code := i :: !code in
    let rec emit_all = function
      | [] -> ()
      | tok :: rest when is_label tok -> emit_all rest
      | tok :: rest ->
          let operand () =
            match rest with
            | op :: _ -> op
            | [] -> fail tok.line "missing operand for %s" tok.text
          in
          let rest' =
            if operand_count tok.text = 1 then List.tl rest else rest
          in
          let line = tok.line in
          (match tok.text with
          | "nop" -> emit Il.Nop
          | "ldc.i4" | "ldc.i8" -> (
              let op = operand () in
              match Int64.of_string_opt op.text with
              | Some v -> emit (Il.Ldc_i v)
              | None -> fail line "bad integer literal '%s'" op.text)
          | "ldc.r8" -> (
              let op = operand () in
              match float_of_string_opt op.text with
              | Some v -> emit (Il.Ldc_f v)
              | None -> fail line "bad float literal '%s'" op.text)
          | "ldnull" -> emit Il.Ldnull
          | "ldstr" -> (
              let op = operand () in
              let t = op.text in
              let len = String.length t in
              if len >= 2 && t.[0] = '"' && t.[len - 1] = '"' then
                emit (Il.Ldstr (String.sub t 1 (len - 2)))
              else fail line "ldstr expects a string literal")
          | "ldloc" ->
              emit (Il.Ldloc (index_of_name line local_names "local" (operand ()).text))
          | "stloc" ->
              emit (Il.Stloc (index_of_name line local_names "local" (operand ()).text))
          | "ldarg" ->
              emit (Il.Ldarg (index_of_name line param_names "argument" (operand ()).text))
          | "starg" ->
              emit (Il.Starg (index_of_name line param_names "argument" (operand ()).text))
          | "add" -> emit Il.Add
          | "sub" -> emit Il.Sub
          | "mul" -> emit Il.Mul
          | "div" -> emit Il.Div
          | "rem" -> emit Il.Rem
          | "neg" -> emit Il.Neg
          | "fadd" -> emit Il.Fadd
          | "fsub" -> emit Il.Fsub
          | "fmul" -> emit Il.Fmul
          | "fdiv" -> emit Il.Fdiv
          | "fneg" -> emit Il.Fneg
          | "conv.i" -> emit Il.Conv_i
          | "conv.r" -> emit Il.Conv_f
          | "ceq" -> emit Il.Ceq
          | "clt" -> emit Il.Clt
          | "cgt" -> emit Il.Cgt
          | "fceq" -> emit Il.Fceq
          | "fclt" -> emit Il.Fclt
          | "fcgt" -> emit Il.Fcgt
          | "br" -> emit (Il.Br (target line (operand ()).text))
          | "brtrue" -> emit (Il.Brtrue (target line (operand ()).text))
          | "brfalse" -> emit (Il.Brfalse (target line (operand ()).text))
          | "ldfld" | "stfld" -> (
              let cls, fld = split_field_ref line (operand ()).text in
              match Classes.find_by_name registry cls with
              | None -> fail line "unknown class %s" cls
              | Some mt -> (
                  match Classes.field mt fld with
                  | fd ->
                      if tok.text = "ldfld" then
                        emit (Il.Ldfld (mt.Classes.c_id, fd.Classes.f_index))
                      else
                        emit (Il.Stfld (mt.Classes.c_id, fd.Classes.f_index))
                  | exception Not_found ->
                      fail line "class %s has no field %s" cls fld))
          | "newobj" -> (
              let op = operand () in
              match Classes.find_by_name registry op.text with
              | Some mt -> emit (Il.Newobj mt.Classes.c_id)
              | None -> fail line "unknown class %s" op.text)
          | "isinst" -> (
              let op = operand () in
              match parse_type registry op.text with
              | Types.Ref id -> emit (Il.Isinst id)
              | Types.Prim _ ->
                  fail line "isinst needs a class or array type")
          | "newarr" ->
              emit (Il.Newarr (parse_elem_type registry line (operand ()).text))
          | "ldlen" -> emit Il.Ldlen
          | "ldelem" ->
              emit (Il.Ldelem (parse_elem_type registry line (operand ()).text))
          | "stelem" ->
              emit (Il.Stelem (parse_elem_type registry line (operand ()).text))
          | "newmd" | "ldelem.md" | "stelem.md" -> (
              (* Operand is the md-array class name, e.g. float64[,]. *)
              let op = operand () in
              match parse_type registry op.text with
              | Types.Ref id -> (
                  match (Classes.find registry id).Classes.c_kind with
                  | Classes.K_md_array (elem, rank) ->
                      emit
                        (match tok.text with
                        | "newmd" -> Il.Newmd (elem, rank)
                        | "ldelem.md" -> Il.Ldelem_md (elem, rank)
                        | _ -> Il.Stelem_md (elem, rank))
                  | Classes.K_class | Classes.K_array _ ->
                      fail line "%s is not a multidimensional array type"
                        op.text)
              | Types.Prim _ ->
                  fail line "%s is not a multidimensional array type" op.text)
          | "call" -> (
              let op = operand () in
              match Hashtbl.find_opt method_ids op.text with
              | Some id -> emit (Il.Call id)
              | None -> fail line "unknown method %s" op.text)
          | "intcall" -> emit (Il.Intcall (operand ()).text)
          | "ret" -> emit Il.Ret
          | "pop" -> emit Il.Pop
          | "dup" -> emit Il.Dup
          | other -> fail line "unknown instruction '%s'" other);
          emit_all rest'
    in
    emit_all rm.rm_body;
    {
      Il.m_id = i;
      m_name = rm.rm_name;
      m_params = List.map fst params;
      m_ret = parse_ret rm.rm_line rm.rm_ret;
      m_locals = List.map fst locals;
      m_code = Array.of_list (List.rev !code);
    }
  in
  let methods = Array.of_list (List.mapi build_method raw_methods) in
  let entry_id =
    match Hashtbl.find_opt method_ids entry with
    | Some id -> id
    | None ->
        raise (Parse_error (Printf.sprintf "no entry method '%s'" entry))
  in
  { Il.methods; entry = entry_id }
