lib/core/buffer_pool.ml: Bytes List Simtime Vm
