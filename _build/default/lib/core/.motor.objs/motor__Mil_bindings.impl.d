lib/core/mil_bindings.ml: Array Fun Int64 Mpi_core Object_transport System_mp Vm World
