lib/core/buffer_pool.mli: Bytes Vm
