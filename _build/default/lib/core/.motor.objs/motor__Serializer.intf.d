lib/core/serializer.mli: Bytes Vm
