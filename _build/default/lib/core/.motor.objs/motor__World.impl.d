lib/core/world.ml: Array Buffer_pool Fiber List Mpi_core Pinning Printf Serializer Simtime Vm
