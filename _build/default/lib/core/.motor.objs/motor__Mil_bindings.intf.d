lib/core/mil_bindings.mli: Vm World
