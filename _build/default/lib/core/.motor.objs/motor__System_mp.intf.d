lib/core/system_mp.mli: Mpi_core Object_transport Vm World
