lib/core/object_transport.mli: Mpi_core Vm World
