lib/core/world.mli: Buffer_pool Mpi_core Pinning Serializer Simtime Vm
