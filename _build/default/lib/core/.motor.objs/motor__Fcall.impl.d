lib/core/fcall.ml: Mpi_core Simtime Vm
