lib/core/object_transport.ml: Bytes Fcall Format Mpi_core Pinning Simtime Vm World
