lib/core/system_mp.ml: Array Buffer_pool Bytes Fcall Int64 List Mpi_core Object_transport Printf Serializer Vm World
