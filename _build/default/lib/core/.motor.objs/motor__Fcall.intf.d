lib/core/fcall.mli: Mpi_core Vm
