lib/core/serializer.ml: Array Buffer Bytes Format Hashtbl Int32 List Queue Simtime String Vm
