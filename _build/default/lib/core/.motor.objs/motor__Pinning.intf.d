lib/core/pinning.mli: Mpi_core Vm
