lib/core/pinning.ml: Mpi_core Simtime Vm
