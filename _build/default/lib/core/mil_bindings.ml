module Il = Vm.Il
module Om = Vm.Object_model
module Gc = Vm.Gc
module Types = Vm.Types

let i64 = Types.Prim Types.I8

let as_int = function
  | Il.V_int v -> Int64.to_int v
  | Il.V_float _ | Il.V_ref _ ->
      raise (Vm.Interp.Runtime_error "mp: expected integer argument")

let register interp ctx =
  let gc = World.gc ctx in
  let obj_ty = Types.Ref (Vm.Classes.object_class (Gc.registry gc)).Vm.Classes.c_id in
  let comm = System_mp.comm_world ctx in
  let reg name sg impl = Vm.Interp.register_intcall interp name sg impl in
  let with_obj v f =
    match v with
    | Il.V_ref a when a <> Vm.Heap.null ->
        let h = Gc.Handle.alloc gc a in
        Fun.protect ~finally:(fun () -> Gc.Handle.free gc h) (fun () -> f h)
    | Il.V_ref _ ->
        raise (Vm.Interp.Runtime_error "mp: null object argument")
    | Il.V_int _ | Il.V_float _ ->
        raise (Vm.Interp.Runtime_error "mp: expected object argument")
  in
  reg "mp.rank" ([], Some i64) (fun _ ->
      Some (Il.V_int (Int64.of_int (World.rank ctx))));
  reg "mp.size" ([], Some i64) (fun _ ->
      Some (Il.V_int (Int64.of_int (Mpi_core.Comm.size comm))));
  reg "mp.send" ([ obj_ty; i64; i64 ], None) (fun args ->
      with_obj args.(0) (fun obj ->
          Object_transport.send ctx ~comm ~dst:(as_int args.(1))
            ~tag:(as_int args.(2)) obj);
      None);
  reg "mp.recv" ([ obj_ty; i64; i64 ], None) (fun args ->
      with_obj args.(0) (fun obj ->
          ignore
            (Object_transport.recv ctx ~comm ~src:(as_int args.(1))
               ~tag:(as_int args.(2)) obj));
      None);
  reg "mp.osend" ([ obj_ty; i64; i64 ], None) (fun args ->
      with_obj args.(0) (fun obj ->
          System_mp.osend ctx ~comm ~dst:(as_int args.(1))
            ~tag:(as_int args.(2)) obj);
      None);
  reg "mp.orecv" ([ i64; i64 ], Some obj_ty) (fun args ->
      let obj, _st =
        System_mp.orecv ctx ~comm ~src:(as_int args.(0))
          ~tag:(as_int args.(1))
      in
      let addr = Om.addr_of gc obj in
      Om.free gc obj;
      Some (Il.V_ref addr));
  reg "mp.barrier" ([], None) (fun _ ->
      System_mp.barrier ctx comm;
      None);
  reg "mp.bcast" ([ obj_ty; i64 ], None) (fun args ->
      with_obj args.(0) (fun obj ->
          System_mp.bcast ctx ~comm ~root:(as_int args.(1)) obj);
      None);
  reg "mp.allreduce.f64" ([ obj_ty ], None) (fun args ->
      with_obj args.(0) (fun obj -> System_mp.allreduce_sum_f64 ctx ~comm obj);
      None);
  (* OO collectives: the root passes its array, the rest pass null. *)
  let opt_obj v f =
    match v with
    | Il.V_ref a when a <> Vm.Heap.null ->
        let h = Gc.Handle.alloc gc a in
        Fun.protect
          ~finally:(fun () -> Gc.Handle.free gc h)
          (fun () -> f (Some h))
    | Il.V_ref _ -> f None
    | Il.V_int _ | Il.V_float _ ->
        raise (Vm.Interp.Runtime_error "mp: expected object argument")
  in
  let return_obj obj =
    let addr = Om.addr_of gc obj in
    Om.free gc obj;
    Some (Il.V_ref addr)
  in
  reg "mp.oscatter" ([ obj_ty; i64 ], Some obj_ty) (fun args ->
      opt_obj args.(0) (fun input ->
          return_obj
            (System_mp.oscatter ctx ~comm ~root:(as_int args.(1)) input)));
  reg "mp.ogather" ([ obj_ty; i64 ], Some obj_ty) (fun args ->
      with_obj args.(0) (fun obj ->
          match System_mp.ogather ctx ~comm ~root:(as_int args.(1)) obj with
          | Some combined -> return_obj combined
          | None -> Some (Il.V_ref Vm.Heap.null)))

let load ctx ?entry src =
  let interp = Vm.Runtime.load ctx.World.rt ?entry ~verify:false src in
  register interp ctx;
  Vm.Interp.verify interp;
  interp
