(** Motor's custom serialization mechanism (paper Section 7.5).

    Produces a flat object-tree representation with two parts: a {e type
    table} of class information and {e object data} laid out side by side,
    each record prefixed by an internal type reference; object references
    are exchanged for local ids, and references to objects excluded from
    the serialization become null.

    Traversal is driven by the Transportable bit on the runtime's
    [FieldDesc] (no metadata reflection): transportable reference fields
    are followed recursively, other reference fields serialize as null,
    and array elements always propagate.

    The structure used to record visited objects is selectable: [Linear]
    is the paper's implementation (a linear list whose quadratic search
    cost shows in Figure 10 beyond ~2048 objects); [Hashed] is the
    "efficient structure" the paper leaves as future work, kept here as an
    ablation.

    A {e split representation} — several independently deserializable
    segments produced from one array without building intermediate
    sub-arrays — supports the OScatter/OGather collectives. *)

exception Serialize_error of string

type visited_strategy = Linear | Hashed

val serialize :
  Vm.Gc.t -> visited:visited_strategy -> Vm.Object_model.obj -> Bytes.t

val serialize_array_slice :
  Vm.Gc.t ->
  visited:visited_strategy ->
  Vm.Object_model.obj ->
  offset:int ->
  count:int ->
  Bytes.t
(** Serialize a slice of a reference array as a standalone representation
    whose root is an array of [count] elements. Used for the offset/count
    OSend overloads and by {!split}. *)

val deserialize : Vm.Gc.t -> Bytes.t -> Vm.Object_model.obj
(** Rebuild the object graph in this runtime's heap; returns a fresh
    handle to the root (a null handle if the root was null). Classes are
    resolved by name against the receiving registry and their field
    signatures validated; mismatches raise {!Serialize_error}. *)

val split :
  Vm.Gc.t ->
  visited:visited_strategy ->
  Vm.Object_model.obj ->
  parts:int ->
  Bytes.t array
(** Split representation of a reference array: [parts] segments covering
    the elements contiguously and as evenly as possible (earlier segments
    take the remainder), each independently deserializable. *)

val concat_arrays : Vm.Gc.t -> Vm.Object_model.obj list -> Vm.Object_model.obj
(** Rebuild a single array from deserialized segment roots (the gather
    direction). All segments must be reference arrays with the same
    element class. *)

val object_count : Bytes.t -> int
(** Number of object records in a representation (tests, stats). *)
