type t = {
  ctx : int;
  ctx_coll : int;
  members : int array;
}

let make ~ctx ~members =
  if Array.length members = 0 then invalid_arg "Comm.make: empty group";
  { ctx; ctx_coll = ctx + 1; members }

let size t = Array.length t.members

let world_rank_of t r =
  if r < 0 || r >= Array.length t.members then
    invalid_arg (Printf.sprintf "Comm.world_rank_of: rank %d out of range" r);
  t.members.(r)

let comm_rank_of t world_rank =
  let n = Array.length t.members in
  let rec go i =
    if i >= n then None
    else if t.members.(i) = world_rank then Some i
    else go (i + 1)
  in
  go 0

let pp ppf t =
  Format.fprintf ppf "comm{ctx=%d; members=[%s]}" t.ctx
    (String.concat ";"
       (Array.to_list (Array.map string_of_int t.members)))
