type kind =
  | P_send of { dst : int; tag : int }
  | P_recv of { src : int; tag : int }

type t = {
  p : Mpi.proc;
  comm : Comm.t;
  kind : kind;
  buf : Buffer_view.t;
  mutable current : Request.t option;
}

let send_init p ~comm ~dst ~tag buf =
  { p; comm; kind = P_send { dst; tag }; buf; current = None }

let recv_init p ~comm ~src ~tag buf =
  { p; comm; kind = P_recv { src; tag }; buf; current = None }

let is_active t =
  match t.current with
  | Some req -> not (Request.is_complete req)
  | None -> false

let start t =
  if is_active t then
    invalid_arg "Persistent.start: previous instance still in flight";
  let req =
    match t.kind with
    | P_send { dst; tag } -> Mpi.isend t.p ~comm:t.comm ~dst ~tag t.buf
    | P_recv { src; tag } -> Mpi.irecv t.p ~comm:t.comm ~src ~tag t.buf
  in
  t.current <- Some req;
  req

let start_all ts = List.map start ts

let wait t =
  match t.current with
  | None -> invalid_arg "Persistent.wait: never started"
  | Some req -> Mpi.wait t.p req

let proc t = t.p
