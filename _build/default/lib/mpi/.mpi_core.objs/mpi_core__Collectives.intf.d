lib/mpi/collectives.mli: Buffer_view Bytes Comm Mpi
