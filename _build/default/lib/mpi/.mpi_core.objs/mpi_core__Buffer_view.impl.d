lib/mpi/buffer_view.ml: Bytes
