lib/mpi/group.ml: Array Collectives Comm Format Hashtbl List Mpi Printf String
