lib/mpi/mpi.mli: Buffer_view Ch3 Comm Hashtbl Request Simtime Status
