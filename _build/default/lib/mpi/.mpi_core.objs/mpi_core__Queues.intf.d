lib/mpi/queues.mli: Buffer_view Bytes Packet Request Simtime Tag_match
