lib/mpi/dynamic.ml: Array Ch3 Comm Fiber Hashtbl Mpi Printf Status Tag_match
