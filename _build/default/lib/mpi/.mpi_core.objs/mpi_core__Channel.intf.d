lib/mpi/channel.mli: Packet Simtime
