lib/mpi/request.ml: List Status
