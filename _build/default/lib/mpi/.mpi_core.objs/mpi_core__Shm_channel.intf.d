lib/mpi/shm_channel.mli: Channel Simtime
