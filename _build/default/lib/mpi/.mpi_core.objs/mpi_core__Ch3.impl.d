lib/mpi/ch3.ml: Buffer_view Bytes Channel Hashtbl Packet Printf Queues Request Simtime Status Tag_match Trace
