lib/mpi/packet.ml: Bytes Printf
