lib/mpi/group.mli: Comm Format Mpi
