lib/mpi/persistent.ml: Buffer_view Comm List Mpi Request
