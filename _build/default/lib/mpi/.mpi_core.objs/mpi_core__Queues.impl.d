lib/mpi/queues.ml: Buffer_view Bytes List Packet Request Simtime Tag_match
