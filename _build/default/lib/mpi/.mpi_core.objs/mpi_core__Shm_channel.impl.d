lib/mpi/shm_channel.ml: Channel Simtime
