lib/mpi/tag_match.mli: Format Packet
