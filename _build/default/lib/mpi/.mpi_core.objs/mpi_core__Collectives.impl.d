lib/mpi/collectives.ml: Array Buffer_view Bytes Ch3 Comm Float Int32 Int64 List Mpi Simtime
