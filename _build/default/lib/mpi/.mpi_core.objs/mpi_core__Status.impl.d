lib/mpi/status.ml: Format
