lib/mpi/request.mli: Status
