lib/mpi/channel.ml: Array Fiber Float Hashtbl Packet Printf Simtime
