lib/mpi/mpi.ml: Array Buffer_view Bytes Ch3 Channel Comm Fiber Hashtbl Int32 List Option Packet Printf Queues Request Shm_channel Simtime Sock_channel Status String Tag_match
