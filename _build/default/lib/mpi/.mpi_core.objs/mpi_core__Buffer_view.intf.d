lib/mpi/buffer_view.mli: Bytes
