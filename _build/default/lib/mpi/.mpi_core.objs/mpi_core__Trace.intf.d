lib/mpi/trace.mli: Format Simtime
