lib/mpi/cart.ml: Array Comm Fun Group List Mpi
