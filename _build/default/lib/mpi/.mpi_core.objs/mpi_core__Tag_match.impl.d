lib/mpi/tag_match.ml: Format Packet
