lib/mpi/ch3.mli: Buffer_view Channel Queues Request Simtime
