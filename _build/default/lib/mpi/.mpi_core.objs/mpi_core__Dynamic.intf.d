lib/mpi/dynamic.mli: Buffer_view Comm Mpi Status
