lib/mpi/packet.mli: Bytes
