lib/mpi/cart.mli: Comm Mpi
