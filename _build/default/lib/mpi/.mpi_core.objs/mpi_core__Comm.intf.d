lib/mpi/comm.mli: Format
