lib/mpi/comm.ml: Array Format Printf String
