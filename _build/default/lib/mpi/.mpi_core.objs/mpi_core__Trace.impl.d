lib/mpi/trace.ml: Array Format List Simtime
