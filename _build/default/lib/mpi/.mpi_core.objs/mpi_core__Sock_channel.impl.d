lib/mpi/sock_channel.ml: Channel Simtime
