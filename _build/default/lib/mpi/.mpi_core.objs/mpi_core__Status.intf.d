lib/mpi/status.mli: Format
