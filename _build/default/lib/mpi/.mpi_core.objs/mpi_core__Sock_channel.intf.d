lib/mpi/sock_channel.mli: Channel Simtime
