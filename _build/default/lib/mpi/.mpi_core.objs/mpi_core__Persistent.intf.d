lib/mpi/persistent.mli: Buffer_view Comm Mpi Request Status
