type t = {
  len : int;
  blit_to : pos:int -> dst:Bytes.t -> dst_off:int -> len:int -> unit;
  blit_from : pos:int -> src:Bytes.t -> src_off:int -> len:int -> unit;
}

let length t = t.len

let of_bytes_sub b ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Buffer_view.of_bytes_sub: range out of bounds";
  {
    len;
    blit_to =
      (fun ~pos ~dst ~dst_off ~len:n -> Bytes.blit b (off + pos) dst dst_off n);
    blit_from =
      (fun ~pos ~src ~src_off ~len:n -> Bytes.blit src src_off b (off + pos) n);
  }

let of_bytes b = of_bytes_sub b ~off:0 ~len:(Bytes.length b)

let read_all t =
  let out = Bytes.create t.len in
  t.blit_to ~pos:0 ~dst:out ~dst_off:0 ~len:t.len;
  out

let write_all t src =
  if Bytes.length src <> t.len then
    invalid_arg "Buffer_view.write_all: size mismatch";
  t.blit_from ~pos:0 ~src ~src_off:0 ~len:t.len
