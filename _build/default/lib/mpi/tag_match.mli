(** Envelope matching: (source, tag, context) with wildcards. *)

val any_source : int
val any_tag : int

type pattern = {
  m_src : int;  (** world rank or {!any_source} *)
  m_tag : int;  (** tag or {!any_tag} *)
  m_context : int;
}

val matches : pattern -> Packet.envelope -> bool
val pp_pattern : Format.formatter -> pattern -> unit
