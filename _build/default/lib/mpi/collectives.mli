(** Collective operations, built over point-to-point on the communicator's
    collective context (so they can never match user receives).

    Algorithms follow MPICH2's defaults: dissemination barrier, binomial
    broadcast and reduce, linear (v-capable) scatter/gather, ring
    allgather. *)

val barrier : Mpi.proc -> Comm.t -> unit

val bcast : Mpi.proc -> Comm.t -> root:int -> Buffer_view.t -> unit
(** Every member passes a buffer of the same length; on non-roots it is
    overwritten. *)

val scatter :
  Mpi.proc -> Comm.t -> root:int -> parts:Buffer_view.t array option ->
  recv:Buffer_view.t -> unit
(** [parts] is [Some arr] (one source per member, in communicator-rank
    order; sizes may differ, making this scatterv) at the root and [None]
    elsewhere. *)

val gather :
  Mpi.proc -> Comm.t -> root:int -> send:Buffer_view.t ->
  parts:Buffer_view.t array option -> unit
(** Dual of {!scatter}: [parts] is [Some arr] at the root. *)

val allgather : Mpi.proc -> Comm.t -> send:Bytes.t -> Bytes.t array
(** Ring allgather of equal-size blocks; returns one block per member in
    communicator-rank order. *)

val alltoall : Mpi.proc -> Comm.t -> send:Bytes.t array -> Bytes.t array
(** Personalised all-to-all of equal-size blocks: [send.(r)] goes to
    member [r]; the result's element [r] came from member [r]. All blocks
    must have the same length. *)

val reduce :
  Mpi.proc -> Comm.t -> root:int -> op:(Bytes.t -> Bytes.t -> unit) ->
  Bytes.t -> Bytes.t option
(** Binomial-tree reduction: [op acc x] folds [x] into [acc] in place.
    Returns [Some result] at the root, [None] elsewhere. The input is not
    modified. *)

val allreduce :
  Mpi.proc -> Comm.t -> op:(Bytes.t -> Bytes.t -> unit) -> Bytes.t -> Bytes.t

val scan :
  Mpi.proc -> Comm.t -> op:(Bytes.t -> Bytes.t -> unit) -> Bytes.t -> Bytes.t
(** Inclusive prefix reduction ([MPI_Scan]): member [r] receives the fold
    of members [0..r], in rank order (the operator need not commute). *)

val reduce_scatter_block :
  Mpi.proc -> Comm.t -> op:(Bytes.t -> Bytes.t -> unit) -> Bytes.t -> Bytes.t
(** [MPI_Reduce_scatter_block]: element-wise reduce the input (whose length
    must be size x block) and return this member's block of the result. *)

(** {1 Predefined reduction operators} *)

val sum_f64 : Bytes.t -> Bytes.t -> unit
val sum_i32 : Bytes.t -> Bytes.t -> unit
val sum_i64 : Bytes.t -> Bytes.t -> unit
val max_f64 : Bytes.t -> Bytes.t -> unit
val min_f64 : Bytes.t -> Bytes.t -> unit
val max_i32 : Bytes.t -> Bytes.t -> unit
