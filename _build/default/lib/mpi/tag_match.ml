let any_source = -1
let any_tag = -1

type pattern = {
  m_src : int;
  m_tag : int;
  m_context : int;
}

let matches p (e : Packet.envelope) =
  p.m_context = e.Packet.e_context
  && (p.m_src = any_source || p.m_src = e.Packet.e_src)
  && (p.m_tag = any_tag || p.m_tag = e.Packet.e_tag)

let pp_pattern ppf p =
  Format.fprintf ppf "{src=%d; tag=%d; ctx=%d}" p.m_src p.m_tag p.m_context
