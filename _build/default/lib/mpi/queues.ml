type posted = {
  p_pattern : Tag_match.pattern;
  p_sink : Buffer_view.t;
  p_req : Request.t;
}

type unexpected =
  | U_eager of Packet.envelope * Bytes.t
  | U_rts of Packet.envelope * int

type t = {
  env : Simtime.Env.t;
  mutable posted : posted list;  (* in post order *)
  mutable unexpected : unexpected list;  (* in arrival order *)
}

let create env = { env; posted = []; unexpected = [] }

let post_recv t p = t.posted <- t.posted @ [ p ]

let charge_probe t =
  Simtime.Env.charge t.env t.env.Simtime.Env.cost.queue_probe_ns

let take_posted t envelope =
  let rec go acc = function
    | [] -> None
    | p :: rest ->
        charge_probe t;
        if Tag_match.matches p.p_pattern envelope then begin
          t.posted <- List.rev_append acc rest;
          Some p
        end
        else go (p :: acc) rest
  in
  go [] t.posted

let add_unexpected t u =
  Simtime.Env.count t.env Simtime.Stats.Key.unexpected_msgs;
  t.unexpected <- t.unexpected @ [ u ]

let envelope_of = function U_eager (e, _) -> e | U_rts (e, _) -> e

let take_unexpected t pattern =
  let rec go acc = function
    | [] -> None
    | u :: rest ->
        charge_probe t;
        if Tag_match.matches pattern (envelope_of u) then begin
          t.unexpected <- List.rev_append acc rest;
          Some u
        end
        else go (u :: acc) rest
  in
  go [] t.unexpected

let peek_unexpected t pattern =
  let rec go = function
    | [] -> None
    | u :: rest ->
        charge_probe t;
        if Tag_match.matches pattern (envelope_of u) then
          Some (envelope_of u)
        else go rest
  in
  go t.unexpected

let posted_length t = List.length t.posted
let unexpected_length t = List.length t.unexpected
