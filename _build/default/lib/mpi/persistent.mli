(** Persistent communication requests ([MPI_Send_init] /
    [MPI_Recv_init] / [MPI_Start] / [MPI_Startall]).

    A persistent request captures the argument list of a point-to-point
    operation once; each {!start} launches a fresh instance. The classic
    use is a fixed communication pattern repeated every iteration (halo
    exchanges), where re-validating arguments each step is waste. *)

type t

val send_init :
  Mpi.proc -> comm:Comm.t -> dst:int -> tag:int -> Buffer_view.t -> t

val recv_init :
  Mpi.proc -> comm:Comm.t -> src:int -> tag:int -> Buffer_view.t -> t

val start : t -> Request.t
(** Launch an instance. Raises [Invalid_argument] if the previous instance
    of this persistent request is still in flight. *)

val start_all : t list -> Request.t list
val wait : t -> Status.t option
(** Wait for the current instance ([MPI_Wait] on the persistent handle). *)

val is_active : t -> bool
(** An instance is in flight and incomplete. *)

val proc : t -> Mpi.proc
